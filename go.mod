module cornflakes

go 1.24
