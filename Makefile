.PHONY: check test bench

# Full gate: vet + build + race-enabled tests (includes the 100-scenario
# fault-injection soak).
check:
	./scripts/check.sh

# Quick loop: skips the soak and other -short-gated sweeps.
test:
	go test -short ./...

bench:
	go test -bench=. -benchmem
