.PHONY: check check-fast test bench bench-raw trace-demo

# Full gate: vet + build + race-enabled tests (includes the 100-scenario
# fault-injection soak).
check:
	./scripts/check.sh

# Fast gate: vet + build + -short tests. Sweeps are skipped, but the
# overload experiment still exercises its smallest sweep point and the
# batching smoke + burst-cap-1 determinism gate run, so the
# graceful-degradation and batched-datapath contracts stay covered on
# every run.
check-fast:
	go vet ./...
	go build ./...
	go test -short ./...

# Quick loop: skips the soak and other -short-gated sweeps.
test:
	go test -short ./...

# Serial + parallel benchmark passes folded into the next BENCH_<n>.json
# (index derived from the committed BENCH_*.json sequence; see
# scripts/bench.sh for the gap check and BENCHTIME/OUT env knobs).
# `make bench-raw` keeps the old direct run.
bench:
	./scripts/bench.sh

bench-raw:
	go test -bench=. -benchmem

# Traced overload run: writes artifacts/trace-trace.json, a Chrome
# trace-event file of per-request span timelines (open it in
# chrome://tracing or https://ui.perfetto.dev).
trace-demo:
	go run ./cmd/cf-bench -exp trace -quick -trace artifacts
