.PHONY: check check-fast test bench bench-raw trace-demo profile

# Experiment to profile with `make profile` (any id from cf-bench -list).
PROFILE_EXP ?= fig3

# Full gate: vet + build + race-enabled tests (includes the 100-scenario
# fault-injection soak).
check:
	./scripts/check.sh

# Fast gate: vet + build + -short tests. Sweeps are skipped, but the
# overload experiment still exercises its smallest sweep point and the
# batching smoke + burst-cap-1 determinism gate run, so the
# graceful-degradation and batched-datapath contracts stay covered on
# every run.
check-fast:
	go vet ./...
	go build ./...
	go test -short ./...

# Quick loop: skips the soak and other -short-gated sweeps.
test:
	go test -short ./...

# Serial + parallel benchmark passes folded into the next BENCH_<n>.json
# (index derived from the committed BENCH_*.json sequence; see
# scripts/bench.sh for the gap check and BENCHTIME/OUT env knobs).
# `make bench-raw` keeps the old direct run.
bench:
	./scripts/bench.sh

bench-raw:
	go test -bench=. -benchmem

# Profile one experiment's serial hot loop (default fig3; override with
# PROFILE_EXP=fig5 etc.). Writes artifacts/<exp>-{cpu,mem}.prof and prints
# the top CPU consumers. Drill in with:
#   go tool pprof artifacts/$(PROFILE_EXP)-cpu.prof
#   go tool pprof -sample_index=alloc_objects artifacts/$(PROFILE_EXP)-mem.prof
profile:
	mkdir -p artifacts
	go run ./cmd/cf-bench -exp $(PROFILE_EXP) -quick -parallel 1 \
		-cpuprofile artifacts/$(PROFILE_EXP)-cpu.prof \
		-memprofile artifacts/$(PROFILE_EXP)-mem.prof
	go tool pprof -top -nodecount 20 artifacts/$(PROFILE_EXP)-cpu.prof

# Traced overload run: writes artifacts/trace-trace.json, a Chrome
# trace-event file of per-request span timelines (open it in
# chrome://tracing or https://ui.perfetto.dev).
trace-demo:
	go run ./cmd/cf-bench -exp trace -quick -trace artifacts
