// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation (each regenerates the result at Quick scale and fails
// if a shape check breaks), plus micro-benchmarks of the serialization
// library itself.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Regenerate a single figure's data with more detail via:
//
//	go run ./cmd/cf-bench -exp fig7
package cornflakes_test

import (
	"testing"

	"cornflakes/internal/baselines"
	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/experiments"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
)

// benchExperiment regenerates one table/figure per iteration and reports
// its wall-clock cost. Shape-check failures fail the benchmark: the
// benchmark suite doubles as the reproduction gate.
//
// Sweep fan-out follows CF_PARALLEL: unset (or 0) uses GOMAXPROCS workers,
// CF_PARALLEL=1 forces the serial path. CF_PARTITION runs each multi-node
// sweep point on the partitioned engine (per-node event queues between
// lookahead barriers). scripts/bench.sh runs the suite all three ways and
// records the ratios in the BENCH_*.json record; the reports themselves
// are byte-identical on every axis (see determinism_test.go and
// partition_test.go).
func benchExperiment(b *testing.B, id string) {
	fn, ok := experiments.All()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := experiments.Quick()
	sc.Workers = experiments.WorkersFromEnv()
	sc.Partition = experiments.PartitionFromEnv()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := fn(sc)
		if fails := rep.Failed(); len(fails) > 0 {
			b.Fatalf("experiment %s shape checks failed: %v", id, fails)
		}
	}
}

func BenchmarkFig2EchoApproaches(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3SGMicrobench(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig5ThresholdHeatmap(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6GoogleCurves(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7TwitterKV(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8RedisTwitter(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9TCPEcho(b *testing.B)            { benchExperiment(b, "fig9") }
func BenchmarkFig10NICGenerality(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11CycleBreakdown(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12HybridTwitter(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13MulticoreScaling(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkTable1GoogleThroughput(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkTable2CDNThroughput(b *testing.B)    { benchExperiment(b, "tab2") }
func BenchmarkTable3RedisCommands(b *testing.B)    { benchExperiment(b, "tab3") }
func BenchmarkTable4HybridVsSGOnly(b *testing.B)   { benchExperiment(b, "tab4") }
func BenchmarkTable5SerializeAndSend(b *testing.B) { benchExperiment(b, "tab5") }
func BenchmarkExtAdaptiveThreshold(b *testing.B)   { benchExperiment(b, "ext-adaptive") }
func BenchmarkExtArenaAblation(b *testing.B)       { benchExperiment(b, "ext-arena") }
func BenchmarkExtSegmentation(b *testing.B)        { benchExperiment(b, "ext-segment") }
func BenchmarkExtMulticoreKV(b *testing.B)         { benchExperiment(b, "ext-multicore") }
func BenchmarkClusterScaleout(b *testing.B)        { benchExperiment(b, "cluster") }
func BenchmarkChaosFaults(b *testing.B)            { benchExperiment(b, "chaos") }
func BenchmarkRpcChains(b *testing.B)              { benchExperiment(b, "rpc") }

// --- Library micro-benchmarks: real wall-clock cost of this Go
// implementation (the virtual-time substrate measures the modelled system;
// these measure the code itself). ---

func benchCtx() *core.Ctx {
	alloc := mem.NewAllocator()
	arena := mem.NewArena(256 << 10)
	meter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	return core.NewCtx(alloc, arena, meter)
}

func BenchmarkCFPtrCopyPath(b *testing.B) {
	ctx := benchCtx()
	data := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.NewCFPtr(data)
		if i%1024 == 0 {
			ctx.Arena.Reset()
		}
	}
}

func BenchmarkCFPtrZeroCopyPath(b *testing.B) {
	ctx := benchCtx()
	buf := ctx.Alloc.Alloc(2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ctx.NewCFPtr(buf.Bytes())
		p.Release(ctx.Meter)
	}
}

func buildGetM(ctx *core.Ctx, val []byte) msgs.GetM {
	m := msgs.NewGetM(ctx)
	m.SetId(7)
	m.AppendKeys(ctx.NewCFPtr([]byte("benchmark-key-000000000000000")))
	m.AppendVals(ctx.NewCFPtr(val))
	return m
}

func BenchmarkCornflakesMarshal(b *testing.B) {
	ctx := benchCtx()
	val := ctx.Alloc.Alloc(2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := buildGetM(ctx, val.Bytes())
		out := core.Marshal(m.Obj())
		m.Release()
		ctx.Arena.Reset()
		_ = out
	}
}

func BenchmarkCornflakesDeserialize(b *testing.B) {
	ctx := benchCtx()
	val := ctx.Alloc.Alloc(2048)
	m := buildGetM(ctx, val.Bytes())
	data := core.Marshal(m.Obj())
	buf := ctx.Alloc.Alloc(len(data))
	copy(buf.Bytes(), data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ctx.DeserializeBytes(msgs.GetMSchema, buf.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		_ = got.GetBytesElem(2, 0)
	}
}

func benchDoc() *baselines.Doc {
	d := baselines.NewDoc(msgs.GetMSchema)
	d.SetInt(0, 7)
	d.AddBytes(1, []byte("benchmark-key-000000000000000"), 0)
	d.AddBytes(2, make([]byte, 2048), 0)
	return d
}

func BenchmarkProtoliteMarshal(b *testing.B) {
	m := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	d := benchDoc()
	buf := make([]byte, baselines.ProtoSize(d, m))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.ProtoMarshal(d, buf, 0, m)
	}
}

func BenchmarkFBLiteBuild(b *testing.B) {
	m := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	d := benchDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.FBBuild(d, m)
	}
}

func BenchmarkCapnpLiteBuild(b *testing.B) {
	m := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	d := benchDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.CapnpBuild(d, m)
	}
}

func BenchmarkPinnedAllocFree(b *testing.B) {
	alloc := mem.NewAllocator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := alloc.Alloc(2048)
		buf.DecRef()
	}
}

func BenchmarkRecoverPtr(b *testing.B) {
	alloc := mem.NewAllocator()
	buf := alloc.Alloc(4096)
	view := buf.Bytes()[512:1536]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := alloc.RecoverPtr(view)
		if !ok {
			b.Fatal("recover failed")
		}
		r.DecRef()
	}
}
