// Command benchjson folds `go test -bench -benchmem` outputs — one serial
// (CF_PARALLEL=1), one parallel (CF_PARALLEL=0 → GOMAXPROCS), and
// optionally one partitioned (CF_PARTITION=1, per-node event queues) —
// into a single JSON perf record (BENCH_N.json). The record is the repo's
// perf trajectory: each PR appends a file, so regressions in wall-clock or
// allocation discipline are visible in review rather than discovered later.
//
// Usage:
//
//	benchjson -serial serial.txt -parallel parallel.txt \
//	    -partitioned partitioned.txt -prev BENCH_9.json -out BENCH_10.json
//
// -prev points at the previous committed record: each benchmark present in
// both records gains speedup_vs_prev (prev serial / current serial) and
// allocs_vs_prev (current − prev allocs/op), and the record totals gain
// total_speedup_vs_prev over the matched set. Times compare whatever hosts
// produced the two records; allocs/op is host-independent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// benchLine matches `BenchmarkName-8  4  123456 ns/op  7890 B/op  12 allocs/op`
// (the -benchmem columns are optional).
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

type sample struct {
	NsOp     float64
	BOp      int64
	AllocsOp int64
}

func parse(path string) (map[string]sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := map[string]sample{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		s := sample{}
		s.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			s.BOp, _ = strconv.ParseInt(m[3], 10, 64)
			s.AllocsOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if _, seen := out[m[1]]; !seen {
			order = append(order, m[1])
		}
		out[m[1]] = s
	}
	return out, order, sc.Err()
}

type entry struct {
	Name               string  `json:"name"`
	SerialNsOp         float64 `json:"serial_ns_op"`
	ParallelNsOp       float64 `json:"parallel_ns_op,omitempty"`
	SpeedupParallel    float64 `json:"speedup_parallel,omitempty"`
	PartitionedNsOp    float64 `json:"partitioned_ns_op,omitempty"`
	SpeedupPartitioned float64 `json:"speedup_partitioned,omitempty"`
	SerialBOp          int64   `json:"serial_b_op"`
	SerialAllocsOp     int64   `json:"serial_allocs_op"`
	ParallelAllocsOp   int64   `json:"parallel_allocs_op,omitempty"`
	// SpeedupVsPrev compares this record's serial time against the same
	// benchmark in the -prev record (prev / current; >1 is faster now).
	// AllocsVsPrev is the allocs/op delta (current − prev; negative is
	// leaner). Both are wall-clock-honest: they compare runs on whatever
	// hosts produced the two records, so read them alongside the notes.
	SpeedupVsPrev float64 `json:"speedup_vs_prev,omitempty"`
	AllocsVsPrev  *int64  `json:"allocs_vs_prev,omitempty"`
}

type record struct {
	Schema        string  `json:"schema"`
	GeneratedAt   string  `json:"generated_at"`
	GoVersion     string  `json:"go_version"`
	HostCores     int     `json:"host_cores"`
	Workers       int     `json:"parallel_workers"`
	Note          string  `json:"note,omitempty"`
	PrevRecord    string  `json:"prev_record,omitempty"`
	Benchmarks    []entry `json:"benchmarks"`
	TotalSerial   float64 `json:"total_serial_ns"`
	TotalParall   float64 `json:"total_parallel_ns"`
	TotalSpeedup  float64 `json:"total_speedup"`
	TotalPartit   float64 `json:"total_partitioned_ns,omitempty"`
	SpeedupPartit float64 `json:"total_speedup_partitioned,omitempty"`
	SpeedupVsPrev float64 `json:"total_speedup_vs_prev,omitempty"`
}

// loadPrev reads an earlier record for speedup_vs_prev comparisons.
func loadPrev(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

func main() {
	serialPath := flag.String("serial", "", "bench output with CF_PARALLEL=1")
	parallelPath := flag.String("parallel", "", "bench output with CF_PARALLEL unset (GOMAXPROCS workers)")
	partitionedPath := flag.String("partitioned", "", "bench output with CF_PARTITION=1 (per-node event-queue shards)")
	out := flag.String("out", "", "output JSON path (stdout if empty)")
	note := flag.String("note", "", "free-form context (host caveats, scale)")
	prevPath := flag.String("prev", "", "previous BENCH_*.json to compute speedup_vs_prev against")
	flag.Parse()
	if *serialPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -serial is required")
		os.Exit(2)
	}
	serial, order, err := parse(*serialPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	parallel := map[string]sample{}
	if *parallelPath != "" {
		parallel, _, err = parse(*parallelPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	partitioned := map[string]sample{}
	if *partitionedPath != "" {
		partitioned, _, err = parse(*partitionedPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	var prev *record
	prevByName := map[string]entry{}
	if *prevPath != "" {
		prev, err = loadPrev(*prevPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, e := range prev.Benchmarks {
			prevByName[e.Name] = e
		}
	}
	rec := record{
		Schema:      "cornflakes-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		HostCores:   runtime.NumCPU(),
		Workers:     runtime.GOMAXPROCS(0),
		Note:        *note,
	}
	serialOfPartit := 0.0
	prevSerialMatched, curSerialMatched := 0.0, 0.0
	for _, name := range order {
		s := serial[name]
		e := entry{
			Name:           name,
			SerialNsOp:     s.NsOp,
			SerialBOp:      s.BOp,
			SerialAllocsOp: s.AllocsOp,
		}
		rec.TotalSerial += s.NsOp
		if p, ok := parallel[name]; ok {
			e.ParallelNsOp = p.NsOp
			e.ParallelAllocsOp = p.AllocsOp
			if p.NsOp > 0 {
				e.SpeedupParallel = s.NsOp / p.NsOp
			}
			rec.TotalParall += p.NsOp
		}
		if p, ok := partitioned[name]; ok {
			e.PartitionedNsOp = p.NsOp
			if p.NsOp > 0 {
				e.SpeedupPartitioned = s.NsOp / p.NsOp
			}
			rec.TotalPartit += p.NsOp
			serialOfPartit += s.NsOp
		}
		if pe, ok := prevByName[name]; ok && pe.SerialNsOp > 0 && s.NsOp > 0 {
			e.SpeedupVsPrev = pe.SerialNsOp / s.NsOp
			d := s.AllocsOp - pe.SerialAllocsOp
			e.AllocsVsPrev = &d
			prevSerialMatched += pe.SerialNsOp
			curSerialMatched += s.NsOp
		}
		rec.Benchmarks = append(rec.Benchmarks, e)
	}
	if rec.TotalParall > 0 {
		rec.TotalSpeedup = rec.TotalSerial / rec.TotalParall
	}
	// The partitioned pass covers only the multi-node benchmarks, so its
	// total speedup compares against the serial time of those same
	// benchmarks, not the whole suite.
	if rec.TotalPartit > 0 {
		rec.SpeedupPartit = serialOfPartit / rec.TotalPartit
	}
	// Like the partitioned total: compare only the benchmarks present in
	// both records, so a renamed or added benchmark can't skew the ratio.
	if prev != nil && curSerialMatched > 0 {
		rec.PrevRecord = *prevPath
		rec.SpeedupVsPrev = prevSerialMatched / curSerialMatched
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, total speedup x%.2f", *out, len(rec.Benchmarks), rec.TotalSpeedup)
	if rec.SpeedupVsPrev > 0 {
		fmt.Printf(", x%.2f vs %s", rec.SpeedupVsPrev, rec.PrevRecord)
	}
	fmt.Println(")")
}
