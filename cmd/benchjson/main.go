// Command benchjson folds `go test -bench -benchmem` outputs — one serial
// (CF_PARALLEL=1), one parallel (CF_PARALLEL=0 → GOMAXPROCS), and
// optionally one partitioned (CF_PARTITION=1, per-node event queues) —
// into a single JSON perf record (BENCH_N.json). The record is the repo's
// perf trajectory: each PR appends a file, so regressions in wall-clock or
// allocation discipline are visible in review rather than discovered later.
//
// Usage:
//
//	benchjson -serial serial.txt -parallel parallel.txt \
//	    -partitioned partitioned.txt -out BENCH_9.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// benchLine matches `BenchmarkName-8  4  123456 ns/op  7890 B/op  12 allocs/op`
// (the -benchmem columns are optional).
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

type sample struct {
	NsOp     float64
	BOp      int64
	AllocsOp int64
}

func parse(path string) (map[string]sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := map[string]sample{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		s := sample{}
		s.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			s.BOp, _ = strconv.ParseInt(m[3], 10, 64)
			s.AllocsOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if _, seen := out[m[1]]; !seen {
			order = append(order, m[1])
		}
		out[m[1]] = s
	}
	return out, order, sc.Err()
}

type entry struct {
	Name               string  `json:"name"`
	SerialNsOp         float64 `json:"serial_ns_op"`
	ParallelNsOp       float64 `json:"parallel_ns_op,omitempty"`
	SpeedupParallel    float64 `json:"speedup_parallel,omitempty"`
	PartitionedNsOp    float64 `json:"partitioned_ns_op,omitempty"`
	SpeedupPartitioned float64 `json:"speedup_partitioned,omitempty"`
	SerialBOp          int64   `json:"serial_b_op"`
	SerialAllocsOp     int64   `json:"serial_allocs_op"`
	ParallelAllocsOp   int64   `json:"parallel_allocs_op,omitempty"`
}

type record struct {
	Schema        string  `json:"schema"`
	GeneratedAt   string  `json:"generated_at"`
	GoVersion     string  `json:"go_version"`
	HostCores     int     `json:"host_cores"`
	Workers       int     `json:"parallel_workers"`
	Note          string  `json:"note,omitempty"`
	Benchmarks    []entry `json:"benchmarks"`
	TotalSerial   float64 `json:"total_serial_ns"`
	TotalParall   float64 `json:"total_parallel_ns"`
	TotalSpeedup  float64 `json:"total_speedup"`
	TotalPartit   float64 `json:"total_partitioned_ns,omitempty"`
	SpeedupPartit float64 `json:"total_speedup_partitioned,omitempty"`
}

func main() {
	serialPath := flag.String("serial", "", "bench output with CF_PARALLEL=1")
	parallelPath := flag.String("parallel", "", "bench output with CF_PARALLEL unset (GOMAXPROCS workers)")
	partitionedPath := flag.String("partitioned", "", "bench output with CF_PARTITION=1 (per-node event-queue shards)")
	out := flag.String("out", "", "output JSON path (stdout if empty)")
	note := flag.String("note", "", "free-form context (host caveats, scale)")
	flag.Parse()
	if *serialPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -serial is required")
		os.Exit(2)
	}
	serial, order, err := parse(*serialPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	parallel := map[string]sample{}
	if *parallelPath != "" {
		parallel, _, err = parse(*parallelPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	partitioned := map[string]sample{}
	if *partitionedPath != "" {
		partitioned, _, err = parse(*partitionedPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	rec := record{
		Schema:      "cornflakes-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		HostCores:   runtime.NumCPU(),
		Workers:     runtime.GOMAXPROCS(0),
		Note:        *note,
	}
	serialOfPartit := 0.0
	for _, name := range order {
		s := serial[name]
		e := entry{
			Name:           name,
			SerialNsOp:     s.NsOp,
			SerialBOp:      s.BOp,
			SerialAllocsOp: s.AllocsOp,
		}
		rec.TotalSerial += s.NsOp
		if p, ok := parallel[name]; ok {
			e.ParallelNsOp = p.NsOp
			e.ParallelAllocsOp = p.AllocsOp
			if p.NsOp > 0 {
				e.SpeedupParallel = s.NsOp / p.NsOp
			}
			rec.TotalParall += p.NsOp
		}
		if p, ok := partitioned[name]; ok {
			e.PartitionedNsOp = p.NsOp
			if p.NsOp > 0 {
				e.SpeedupPartitioned = s.NsOp / p.NsOp
			}
			rec.TotalPartit += p.NsOp
			serialOfPartit += s.NsOp
		}
		rec.Benchmarks = append(rec.Benchmarks, e)
	}
	if rec.TotalParall > 0 {
		rec.TotalSpeedup = rec.TotalSerial / rec.TotalParall
	}
	// The partitioned pass covers only the multi-node benchmarks, so its
	// total speedup compares against the serial time of those same
	// benchmarks, not the whole suite.
	if rec.TotalPartit > 0 {
		rec.SpeedupPartit = serialOfPartit / rec.TotalPartit
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, total speedup x%.2f)\n", *out, len(rec.Benchmarks), rec.TotalSpeedup)
}
