// Command cf-redis runs the mini-Redis on the simulated testbed with
// either its native RESP serialization or Cornflakes serialization, and
// prints measured throughput and latency.
//
// Usage:
//
//	cf-redis -mode resp -rate 200000
//	cf-redis -mode cornflakes -workload ycsb4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/redis"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

func main() {
	modeName := flag.String("mode", "cornflakes", "resp | cornflakes")
	workload := flag.String("workload", "twitter", "twitter | ycsb4096 | lrange")
	rate := flag.Float64("rate", 200_000, "offered load, requests/s")
	ms := flag.Int("ms", 20, "measurement window, simulated milliseconds")
	keys := flag.Int("keys", 3000, "preloaded keys")
	flag.Parse()

	var mode redis.Mode
	switch strings.ToLower(*modeName) {
	case "resp", "redis":
		mode = redis.ModeRESP
	case "cornflakes", "cf":
		mode = redis.ModeCornflakes
	default:
		fmt.Fprintf(os.Stderr, "cf-redis: unknown mode %q\n", *modeName)
		os.Exit(1)
	}

	var gen workloads.Generator
	switch strings.ToLower(*workload) {
	case "twitter":
		gen = workloads.NewTwitter(*keys, 1)
	case "ycsb4096":
		gen = workloads.NewYCSB(*keys, 4096, 1)
	case "lrange":
		gen = workloads.NewYCSB(*keys, 2048, 2)
	default:
		fmt.Fprintf(os.Stderr, "cf-redis: unknown workload %q\n", *workload)
		os.Exit(1)
	}

	tb := driver.NewTestbed(nic.MellanoxCX6())
	srv := driver.NewRedisServer(tb.Server, mode)
	fmt.Printf("preloading %d records...\n", len(gen.Records()))
	srv.Preload(gen.Records())

	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: driver.NewRedisClient(tb.Client, mode),
		RatePerS: *rate,
		Warmup:   2 * sim.Millisecond,
		Measure:  sim.Time(*ms) * sim.Millisecond,
		Seed:     1,
	})

	fmt.Printf("\n%s serving %s\n", mode, gen.Name())
	fmt.Printf("  offered:   %10.0f req/s\n", res.OfferedRps)
	fmt.Printf("  achieved:  %10.0f req/s (%.2f Gbps)\n", res.AchievedRps, res.AchievedGbps)
	fmt.Printf("  latency:   p50 %v   p99 %v\n", res.Latency.Quantile(0.5), res.Latency.Quantile(0.99))
	fmt.Printf("  commands:  %d handled, %d errors\n", srv.R.Handled, srv.R.Errors+srv.Errors)
	fmt.Printf("  zero-copy: %d scatter-gather entries\n", tb.Server.UDP.TxZCEntries)
}
