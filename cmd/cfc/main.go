// Command cfc is the Cornflakes schema compiler: it reads a Protobuf-subset
// schema file and emits Go source with a runtime schema plus typed
// getter/setter wrappers per message (the equivalent of the paper's Rust
// code generation module, §4).
//
// Usage:
//
//	cfc -in schema.proto -out messages.gen.go -pkg msgs
//
// With -out omitted, the generated source is written to stdout.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"

	"cornflakes/internal/schema"
)

func main() {
	in := flag.String("in", "", "input .proto schema file (required)")
	out := flag.String("out", "", "output .go file (default stdout)")
	pkg := flag.String("pkg", "msgs", "Go package name for generated code")
	flag.Parse()

	if err := run(*in, *out, *pkg); err != nil {
		fmt.Fprintln(os.Stderr, "cfc:", err)
		os.Exit(1)
	}
}

func run(in, out, pkg string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	src, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	f, err := schema.Parse(string(src))
	if err != nil {
		return err
	}
	code, err := schema.Generate(f, pkg)
	if err != nil {
		return err
	}
	formatted, err := format.Source([]byte(code))
	if err != nil {
		return fmt.Errorf("internal error: generated code does not parse: %w", err)
	}
	if out == "" {
		_, err = os.Stdout.Write(formatted)
		return err
	}
	return os.WriteFile(out, formatted, 0o644)
}
