// Command cf-bench regenerates the paper's tables and figures on the
// simulated substrate and prints them with shape checks.
//
// Usage:
//
//	cf-bench -exp fig2            # one experiment
//	cf-bench -exp all             # everything (takes a while)
//	cf-bench -exp tab1 -quick     # reduced scale
//	cf-bench -batch               # the batched-datapath sweep (-exp batching)
//	cf-bench -cluster             # the multi-node scale-out grid (-exp cluster)
//	cf-bench -chaos               # crash/flap/gray fault scenarios (-exp chaos)
//	cf-bench -rpc                 # serializer-aware RPC chains over the rack (-exp rpc)
//	cf-bench -exp fig7 -parallel 4  # fan sweep points across 4 goroutines
//	cf-bench -exp fig3 -quick -parallel 1 -cpuprofile cpu.prof
//	cf-bench -exp fig5 -quick -parallel 1 -memprofile mem.prof
//
// -cpuprofile/-memprofile write pprof profiles of the experiment runs (use
// -parallel 1 so samples land on the serial hot loops rather than sweep
// workers); `make profile` wraps the common invocation.
//
// -parallel (default GOMAXPROCS) only changes wall-clock: sweep points run
// on independent testbeds and merge in point order, so reports are
// byte-identical at any width (gated by TestSerialParallelFingerprints).
//
// -partition runs each multi-node sweep point (cluster, chaos, rpc) on the
// parallel-in-time engine: every node owns its own event-queue shard and
// shards advance concurrently between lookahead barriers. Also only
// wall-clock: the partitioned total event order equals the serial order
// (gated by TestSerialPartitionedFingerprints).
//
// Experiment ids: fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 tab1 tab2 tab3 tab4 tab5.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"cornflakes/internal/experiments"
)

func main() {
	// Indirection so the profile-flushing defers run even when shape
	// checks fail: os.Exit directly in this body would skip them.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	batch := flag.Bool("batch", false, "shorthand for -exp batching (batched RX/TX datapath sweep)")
	cluster := flag.Bool("cluster", false, "shorthand for -exp cluster (multi-node ToR-switch scale-out grid)")
	chaos := flag.Bool("chaos", false, "shorthand for -exp chaos (node crash/recovery, port flaps, gray failure)")
	rpcExp := flag.Bool("rpc", false, "shorthand for -exp rpc (serializer-aware RPC chains: depth × load, fan-out, NIC offload)")
	quick := flag.Bool("quick", false, "reduced scale (faster, noisier)")
	list := flag.Bool("list", false, "list experiment ids")
	csvDir := flag.String("csv", "", "also write each report's table to <dir>/<id>.csv")
	traceDir := flag.String("trace", "", "enable per-request tracing on experiments that support it and write each report's artifacts (Chrome trace JSON) to <dir>")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"sweep fan-out width: independent sweep points run on up to N goroutines (1 = serial); reports are byte-identical at any width")
	partition := flag.Bool("partition", false,
		"run each multi-node sweep point on the parallel-in-time engine (per-node event-queue shards between lookahead barriers); reports are byte-identical either way")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file after the runs (alloc_space shows the serialization-path allocators)")
	flag.Parse()

	all := experiments.All()
	if *list {
		ids := make([]string, 0, len(all))
		for id := range all {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return 0
	}

	sc := experiments.Full()
	if *quick {
		sc = experiments.Quick()
	}
	sc.Trace = *traceDir != ""
	sc.Workers = *parallel
	sc.Partition = *partition
	if *batch {
		*exp = "batching"
	}
	if *cluster {
		*exp = "cluster"
	}
	if *chaos {
		*exp = "chaos"
	}
	if *rpcExp {
		*exp = "rpc"
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cf-bench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cf-bench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cf-bench: wrote CPU profile %s (go tool pprof %s)\n", *cpuprofile, *cpuprofile)
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cf-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreached allocations so alloc_space is complete
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "cf-bench:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "cf-bench: wrote allocation profile %s (go tool pprof -sample_index=alloc_space %s)\n", path, path)
		}()
	}

	done, total := 0, 1
	run := func(id string) bool {
		fn, ok := all[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "cf-bench: unknown experiment %q\n", id)
			return false
		}
		done++
		fmt.Fprintf(os.Stderr, "[%d/%d] %s (workers=%d) ...\n", done, total, id, sc.Workers)
		start := time.Now()
		rep := fn(sc)
		fmt.Println(rep)
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "cf-bench:", err)
			} else if err := os.WriteFile(
				filepath.Join(*csvDir, rep.ID+".csv"), []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "cf-bench:", err)
			}
		}
		if *traceDir != "" && len(rep.Artifacts) > 0 {
			if err := os.MkdirAll(*traceDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "cf-bench:", err)
			} else {
				names := make([]string, 0, len(rep.Artifacts))
				for name := range rep.Artifacts {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					path := filepath.Join(*traceDir, rep.ID+"-"+name)
					if err := os.WriteFile(path, rep.Artifacts[name], 0o644); err != nil {
						fmt.Fprintln(os.Stderr, "cf-bench:", err)
					} else {
						fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", path)
					}
				}
			}
		}
		return len(rep.Failed()) == 0
	}

	okAll := true
	if *exp == "all" {
		ids := make([]string, 0, len(all))
		for id := range all {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		total = len(ids)
		for _, id := range ids {
			if !run(id) {
				okAll = false
			}
		}
	} else {
		okAll = run(*exp)
	}
	if !okAll {
		return 1
	}
	return 0
}
