// Command cf-kv runs the custom key-value store on the simulated testbed
// with a chosen serialization system and workload, and prints the measured
// throughput and latency distribution.
//
// Usage:
//
//	cf-kv -system cornflakes -workload twitter -rate 400000 -ms 20
//	cf-kv -system protobuf -workload ycsb -threshold 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cornflakes/internal/core"
	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

func main() {
	system := flag.String("system", "cornflakes", "cornflakes | protobuf | flatbuffers | capnproto")
	workload := flag.String("workload", "twitter", "ycsb | google | twitter | cdn")
	rate := flag.Float64("rate", 400_000, "offered load, requests/s")
	ms := flag.Int("ms", 20, "measurement window, simulated milliseconds")
	keys := flag.Int("keys", 4000, "preloaded keys/objects")
	threshold := flag.Int("threshold", core.DefaultThreshold, "zero-copy threshold in bytes (0 = always, -1 = never)")
	nicName := flag.String("nic", "cx6", "cx5 | cx6 | e810")
	flag.Parse()

	sys, err := parseSystem(*system)
	if err != nil {
		fatal(err)
	}
	gen, err := parseWorkload(*workload, *keys)
	if err != nil {
		fatal(err)
	}
	profile, err := parseNIC(*nicName)
	if err != nil {
		fatal(err)
	}

	tb := driver.NewTestbed(profile)
	srv := driver.NewKVServer(tb.Server, sys)
	switch {
	case *threshold < 0:
		tb.Server.Ctx.Threshold = core.ThresholdAllCopy
	default:
		tb.Server.Ctx.Threshold = *threshold
	}
	fmt.Printf("preloading %d records (%s)...\n", len(gen.Records()), gen.Name())
	srv.Preload(gen.Records())

	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: driver.NewKVClient(tb.Client, sys),
		RatePerS: *rate,
		Warmup:   2 * sim.Millisecond,
		Measure:  sim.Time(*ms) * sim.Millisecond,
		Seed:     1,
	})

	fmt.Printf("\n%s on %s over %s\n", sys, gen.Name(), profile.Name)
	fmt.Printf("  offered:    %10.0f req/s\n", res.OfferedRps)
	fmt.Printf("  achieved:   %10.0f req/s (%.2f Gbps of responses)\n", res.AchievedRps, res.AchievedGbps)
	fmt.Printf("  latency:    p50 %v   p99 %v   max %v\n",
		res.Latency.Quantile(0.5), res.Latency.Quantile(0.99), res.Latency.Max())
	fmt.Printf("  server:     %d requests handled, %d errors, core %.0f%% busy\n",
		srv.Handled, srv.Errors, tb.Server.Core.Utilization()*100)
	fmt.Printf("  zero-copy:  %d scatter-gather entries posted\n", tb.Server.UDP.TxZCEntries)
	if res.BadResponses > 0 {
		fmt.Printf("  WARNING: %d bad responses\n", res.BadResponses)
	}
}

func parseSystem(s string) (driver.System, error) {
	switch strings.ToLower(s) {
	case "cornflakes", "cf":
		return driver.SysCornflakes, nil
	case "protobuf", "pb":
		return driver.SysProtobuf, nil
	case "flatbuffers", "fb":
		return driver.SysFlatBuffers, nil
	case "capnproto", "capnp", "cp":
		return driver.SysCapnProto, nil
	}
	return 0, fmt.Errorf("unknown system %q", s)
}

func parseWorkload(w string, keys int) (workloads.Generator, error) {
	switch strings.ToLower(w) {
	case "ycsb":
		return workloads.NewYCSB(keys, 1024, 2), nil
	case "google":
		return workloads.NewGoogle(keys, 8, 1), nil
	case "twitter":
		return workloads.NewTwitter(keys, 1), nil
	case "cdn":
		return workloads.NewCDN(keys, 8000, 256<<10, 1), nil
	}
	return nil, fmt.Errorf("unknown workload %q", w)
}

func parseNIC(n string) (nic.Profile, error) {
	switch strings.ToLower(n) {
	case "cx5":
		return nic.MellanoxCX5Ex(), nil
	case "cx6":
		return nic.MellanoxCX6(), nil
	case "e810", "intel":
		return nic.IntelE810(), nil
	}
	return nic.Profile{}, fmt.Errorf("unknown NIC %q", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cf-kv:", err)
	os.Exit(1)
}
