// faults: TCP-lite against a hostile wire. Each scenario wraps the link in
// a seeded faults.Plan — random and bursty loss, reordering, duplication,
// delay jitter, and payload corruption (caught by the NIC's frame check
// sequence) — then drives the echo and KV workloads to completion and
// checks the three soak invariants: every request completes, every payload
// byte-matches, and every refcount drains back to baseline. The same seeds
// replay the same scenario bit-for-bit, so any failure here is a one-line
// reproduction.
//
// Run with:
//
//	go run ./examples/faults
package main

import (
	"fmt"

	"cornflakes/internal/experiments"
)

func main() {
	fmt.Println("Fault-injection soak: TCP-lite under adversarial links")
	fmt.Println()

	// A few hand-picked seeds from the 100-scenario sweep, spanning mild
	// jitter-only links through heavy bursty loss with corruption.
	seeds := []uint64{1, 17, 42, 77, 100}
	fmt.Println("  workload  result")
	ok := true
	for _, seed := range seeds {
		for _, res := range []experiments.SoakResult{
			experiments.SoakEcho(seed),
			experiments.SoakKV(seed),
		} {
			status := "ok  "
			if !res.OK() {
				status = "FAIL"
				ok = false
			}
			fmt.Printf("  %s  %v\n", status, res)
		}
	}
	fmt.Println()

	// The full sweep, as run by `go test ./internal/experiments -run TestSoak`
	// and cf-bench: 100 seeded scenarios per workload.
	rep := experiments.Soak(experiments.Quick())
	fmt.Println(rep)

	if !ok || len(rep.Failed()) > 0 {
		fmt.Println("invariants violated — see failures above")
		return
	}
	fmt.Println("All scenarios quiesced with intact payloads and zero leaked slots:")
	fmt.Println("the §3 use-after-free guarantee holds across loss, reordering,")
	fmt.Println("duplication and corruption, not just the clean-wire fast path.")
}
