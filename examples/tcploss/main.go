// tcploss: the memory-safety story end to end. A client sends
// cfc-generated GetM objects over the TCP-lite stack while the wire drops
// frames; the application frees its buffers immediately after send_object,
// yet retransmissions deliver intact data because refcounts hold the pinned
// buffers until cumulative acknowledgement — the use-after-free guarantee
// of §3, extended across retransmission.
//
// Run with:
//
//	go run ./examples/tcploss
package main

import (
	"bytes"
	"fmt"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	pa, pb := nic.Link(eng, nic.MellanoxCX6(), nic.MellanoxCX6(), 1500*sim.Nanosecond)

	newNode := func(port *nic.Port) (*core.Ctx, *netstack.TCPConn) {
		alloc := mem.NewAllocator()
		meter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
		ctx := core.NewCtx(alloc, mem.NewArena(64<<10), meter)
		return ctx, netstack.NewTCPConn(eng, port, alloc, meter)
	}
	sctx, sTCP := newNode(pa)
	rctx, rTCP := newNode(pb)

	// Drop every third data frame.
	n := 0
	pa.InjectLoss = func(data []byte) bool {
		if len(data) > netstack.TCPHeaderLen {
			n++
			return n%3 == 0
		}
		return false
	}

	const messages = 10
	received := 0
	rTCP.SetRecvHandler(func(p *mem.Buf) {
		m, err := msgs.DeserializeGetM(rctx, p)
		if err != nil {
			panic(err)
		}
		want := bytes.Repeat([]byte{byte(m.Id())}, 2048)
		if !bytes.Equal(m.Vals(0), want) {
			panic(fmt.Sprintf("message %d corrupted after retransmission!", m.Id()))
		}
		received++
		m.Release()
	})

	for i := 0; i < messages; i++ {
		// Value in pinned memory, as a KV store would hold it.
		val := sctx.Alloc.Alloc(2048)
		for j := range val.Bytes() {
			val.Bytes()[j] = byte(i)
		}
		m := msgs.NewGetM(sctx)
		m.SetId(uint64(i))
		m.AppendVals(sctx.NewCFPtr(val.Bytes()))
		if err := sTCP.SendObject(m.Obj()); err != nil {
			panic(err)
		}
		// Free everything immediately — the TCP stack's references keep
		// the data alive until it is acknowledged.
		m.Release()
		val.DecRef()
		sctx.Arena.Reset()
	}

	eng.Run()

	fmt.Printf("sent %d messages, received %d intact\n", messages, received)
	fmt.Printf("frames dropped by the wire: %d, TCP retransmissions: %d\n",
		pa.DroppedFrames, sTCP.Retransmits)
	fmt.Printf("pinned slots still allocated on sender: %d (all reclaimed)\n",
		sctx.Alloc.Stats().SlotsInUse)
	if received != messages || sctx.Alloc.Stats().SlotsInUse != 0 {
		panic("safety property violated")
	}
	fmt.Println("use-after-free protection held across loss and retransmission ✓")
}
