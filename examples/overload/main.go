// overload: a Cornflakes KV server pushed to 2.5× its measured capacity.
// The interesting part is not the knee of the throughput curve — the paper
// plots that — but what happens past it. This demo runs the overload sweep
// and shows the degradation ladder engaging in order: past the high-water
// mark the serializer demotes zero-copy fields to copies (so overload
// cannot hold store memory hostage), past the shed thresholds the server
// answers with cheap prebuilt rejection replies instead of queueing, the
// bounded allocator caps pinned occupancy outright, and the client's
// deadline-and-retry policy disposes of every request explicitly. Nothing
// hangs, nothing leaks, and every request ends as exactly one of
// completed, shed, or timed out.
//
// Run with:
//
//	go run ./examples/overload
package main

import (
	"fmt"

	"cornflakes/internal/experiments"
)

func main() {
	fmt.Println("Overload: graceful degradation past the capacity knee")
	fmt.Println()

	// Three hand-picked operating points around a rough capacity estimate:
	// comfortable, at the knee, and far past it. The full sweep below
	// derives its rates from a measured estimate instead.
	fmt.Println("  offered rps  completed  shed  timed out  fallbacks  peak/cap slots")
	sc := experiments.Quick()
	for _, rate := range []float64{100_000, 1_000_000, 4_000_000} {
		p := experiments.OverloadAt(sc, rate)
		fmt.Printf("  %11.0f  %9d  %4d  %9d  %9d  %d/%d\n",
			p.Res.OfferedRps, p.Res.Completed, p.Res.Shed, p.Res.TimedOut,
			p.Fallbacks, p.PeakSlots, p.CapSlots)
		if leak := p.FinalSlots - p.BaseSlots; leak != 0 {
			fmt.Printf("               LEAK: %d slots above baseline after drain\n", leak)
		}
	}
	fmt.Println()

	// The full sweep, as run by `go test ./internal/experiments -run
	// TestOverload` and cf-bench: geometric rates from 0.3× to 2.5× of the
	// measured capacity, with the graceful-degradation contract checked at
	// every point.
	rep := experiments.Overload(sc)
	fmt.Println(rep)

	if len(rep.Failed()) > 0 {
		fmt.Println("degradation contract violated — see failed checks above")
		return
	}
	fmt.Println("Past the knee the server kept its pinned pool bounded, shed load")
	fmt.Println("explicitly, and drained back to baseline: overload degrades the")
	fmt.Println("service by policy (copy fallback, shed replies, client timeouts),")
	fmt.Println("never by accident (unbounded queues, pinned-memory exhaustion,")
	fmt.Println("or requests that simply vanish).")
}
