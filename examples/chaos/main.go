// chaos: the rack under fire. A deployment's interesting failures are not
// clean stops — shards crash mid-burst and reboot with cold caches, switch
// ports flap, and gray nodes keep answering at 6× their healthy service
// time, too slow to use but never slow enough to be declared dead.
//
// This demo shows the two client-side defenses the chaos experiment
// checks. Failover routing sends attempt k of a request to replica
// (rotation+k) mod R, so a retry is guaranteed to land away from the shard
// that just ate its predecessor. Hedged requests fire a second copy at a
// different replica once an attempt outlives the healthy tail, and the
// first reply wins — the only defense that helps against gray failure,
// where nothing ever times out decisively.
//
// Every frame is audited: posted == delivered + wire-dropped + corrupted +
// downed-port + host-down, exactly, through any storm.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"fmt"

	"cornflakes/internal/experiments"
)

func main() {
	fmt.Println("Chaos: crash/recovery, port flaps and gray failure on the rack")
	fmt.Println()

	sc := experiments.Quick()

	// Kill one of four shards mid-run, recover it cold, and watch goodput
	// over time: the completions-per-bucket trace dips while the shard is
	// dead and re-converges after recovery.
	fmt.Println("  kill-one-shard point (failover routing on):")
	p := experiments.ChaosCrashPoint(sc, 250_000, true)
	fmt.Printf("    crashes/recoveries: %d/%d   work killed by the crash: %d reqs + %d frames\n",
		p.Sched.Crashes, p.Sched.Recoveries, p.DownDrops, p.Ledger.HostDownDrops)
	fmt.Printf("    goodput trace (completions per %d-slice of the window):\n      ", len(p.Buckets))
	for _, b := range p.Buckets {
		fmt.Printf("%6d", b)
	}
	fmt.Println()
	quarter := len(p.Buckets) / 4
	mean := func(lo, hi int) float64 {
		var s uint64
		for _, v := range p.Buckets[lo:hi] {
			s += v
		}
		return float64(s) / float64(hi-lo)
	}
	fmt.Printf("    pre-crash mean %.0f/bucket, final-quarter mean %.0f/bucket\n",
		mean(0, quarter), mean(len(p.Buckets)-quarter, len(p.Buckets)))
	fmt.Printf("    frame conservation gap: %d (zero = no silent loss)\n", p.SilentLoss())
	fmt.Println()

	// The same crash without failover: retries re-hit the dead owner until
	// it recovers, so more of them exhaust their deadline ladder.
	ctl := experiments.ChaosCrashPoint(sc, 250_000, false)
	var foTimeouts, ctlTimeouts uint64
	for _, r := range p.Results {
		foTimeouts += r.TimedOut
	}
	for _, r := range ctl.Results {
		ctlTimeouts += r.TimedOut
	}
	fmt.Printf("  same crash, no failover: %d timeouts vs %d with failover\n",
		ctlTimeouts, foTimeouts)
	fmt.Println()

	// The full scenario set, as run by `go test ./internal/experiments
	// -run TestChaos` and `cf-bench -chaos`: the crash ladder, a two-port
	// flap storm composed with a lossy/corrupting client link, and the
	// gray-failure triplet where hedging recovers the tail that plain
	// timeouts cannot.
	rep := experiments.Chaos(sc)
	fmt.Println(rep)
}
