// cluster: the sharded rack. One server is a microsecond-scale KV shard;
// a deployment is N of them behind a top-of-rack switch, with clients
// routing by the same consistent-hash ring that placed the keys. This
// demo shows the two things that composition has to get right.
//
// First, scaling: at a fixed per-node load, adding shards should add
// goodput almost linearly — the switch fans frames out to independent
// shards, so four nodes serve ~4× what one does.
//
// Second, skew: Zipf-popular keys concentrate on whichever shard owns
// them. The same aggregate load that a balanced mix absorbs cleanly
// pushes the hot shard past its sustainable rate — timeouts engage and
// the tail explodes — while every other shard idles. Rotating reads
// across R replicas takes the hot shard back under the line.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"

	"cornflakes/internal/experiments"
)

func main() {
	fmt.Println("Cluster: sharded KV over a simulated ToR switch")
	fmt.Println()

	sc := experiments.Quick()

	// Scaling: the same per-client load against 1, 2, and 4 shards (one
	// client per shard), all through the switch.
	fmt.Println("  nodes  offered/client rps  agg goodput rps  worst p99 µs")
	for _, n := range []int{1, 2, 4} {
		p := experiments.ClusterAt(sc, n, sc.StoreKeys, 800_000, 0.3, 1, 7)
		fmt.Printf("  %5d  %18.0f  %15.0f  %12.1f\n",
			n, 800_000.0, p.AggGoodput(), p.WorstP99().Seconds()*1e6)
	}
	fmt.Println()

	// Skew: balanced vs Zipf-hot vs Zipf-hot with R=3 read spreading, at
	// the same per-client rate on a 4-shard rack.
	fmt.Println("  workload          R  agg goodput rps  timeout %  eff p99 µs")
	for _, c := range []struct {
		name  string
		theta float64
		r     int
	}{
		{"balanced θ=0.30", 0.3, 1},
		{"skewed   θ=0.99", 0.99, 1},
		{"spread   θ=0.99", 0.99, 3},
	} {
		p := experiments.ClusterAt(sc, 4, 400, 1_850_000, c.theta, c.r, 7)
		fmt.Printf("  %s  %d  %15.0f  %9.1f  %10.1f\n",
			c.name, c.r, p.AggGoodput(), 100*p.TimeoutFrac(),
			p.EffectiveP99().Seconds()*1e6)
	}
	fmt.Println()

	// The full grid, as run by `go test ./internal/experiments -run
	// TestCluster` and `cf-bench -cluster`: node counts × a per-client
	// load ladder, plus the hot-shard triplet and its checks.
	rep := experiments.Cluster(sc)
	fmt.Println(rep)
}
