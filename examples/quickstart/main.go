// Quickstart: define a schema, build a hybrid Cornflakes object, send it
// over the simulated zero-copy stack, and deserialize it on the other side.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

func main() {
	// 1. A schema, exactly like Listing 1 of the paper: a multi-get
	//    message with a list of keys and a list of values.
	getM := &core.Schema{Name: "GetM", Fields: []core.Field{
		{Name: "id", Kind: core.KindInt},
		{Name: "keys", Kind: core.KindBytesList},
		{Name: "vals", Kind: core.KindBytesList},
	}}
	if err := getM.Validate(); err != nil {
		panic(err)
	}

	// 2. A simulated machine: event engine, a NIC pair, and per-node
	//    resources (pinned allocator, arena, cache model, cost meter).
	eng := sim.NewEngine()
	sender, receiver := nic.Link(eng, nic.MellanoxCX6(), nic.MellanoxCX6(), 1500*sim.Nanosecond)

	newNode := func(port *nic.Port) (*core.Ctx, *netstack.UDP) {
		alloc := mem.NewAllocator()
		meter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
		ctx := core.NewCtx(alloc, mem.NewArena(64<<10), meter)
		return ctx, netstack.NewUDP(eng, port, alloc, meter)
	}
	sctx, sUDP := newNode(sender)
	rctx, rUDP := newNode(receiver)

	// 3. Application data. A large value lives in pinned (DMA-safe)
	//    memory, like a key-value store's values would.
	bigValue := sctx.Alloc.Alloc(2048)
	for i := range bigValue.Bytes() {
		bigValue.Bytes()[i] = byte('A' + i%26)
	}

	// 4. Build the object. Small fields copy; the 2048-byte pinned field
	//    is at the default 512-byte threshold, so its CFPtr recovers the
	//    pinned buffer and will be scatter-gathered with no copy.
	msg := core.NewMessage(getM, sctx)
	msg.SetInt(0, 42)
	msg.AppendBytes(1, sctx.NewCFPtr([]byte("a-small-key"))) // copied
	big := sctx.NewCFPtr(bigValue.Bytes())                   // zero-copy
	msg.AppendBytes(2, big)
	fmt.Printf("large field zero-copy: %v (refcount now %d)\n",
		big.IsZeroCopy(), bigValue.Refcount())

	// 5. Receive side: deserialize (zero-copy) and read the fields.
	rUDP.SetRecvHandler(func(p *mem.Buf) {
		got, err := rctx.Deserialize(getM, p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("received id=%d key=%q value[0:26]=%q (%d bytes)\n",
			got.GetInt(0), got.GetBytesElem(1, 0),
			got.GetBytesElem(2, 0)[:26], len(got.GetBytesElem(2, 0)))
		got.Release()
	})

	// 6. Combined serialize-and-send: no explicit "serialize" call; the
	//    stack writes the header + copied fields into a DMA buffer and
	//    posts the big field as its own scatter-gather entry.
	if err := sUDP.SendObject(msg); err != nil {
		panic(err)
	}
	// The application may release immediately: the NIC holds references
	// until DMA completes (use-after-free protection).
	msg.Release()
	fmt.Printf("after send_object + release: refcount %d (NIC still reading)\n",
		bigValue.Refcount())

	eng.Run() // drain the simulated world

	fmt.Printf("after DMA completion: refcount %d\n", bigValue.Refcount())
	fmt.Printf("sender CPU time modelled: %v (%d zero-copy entries posted)\n",
		sUDP.Meter.DrainTime(), sUDP.TxZCEntries)
}
