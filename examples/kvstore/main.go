// kvstore: the paper's headline comparison in miniature. A key-value store
// serves the Twitter cache trace with Cornflakes and with each baseline
// serializer on the identical simulated testbed, and prints per-system
// throughput — reproducing the Figure 7 ordering.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

func main() {
	fmt.Println("Twitter cache trace on the custom KV store (single simulated core)")
	fmt.Println()

	var cornflakes, protobuf float64
	for _, sys := range driver.AllSystems() {
		gen := workloads.NewTwitter(3000, 7)
		tb := driver.NewTestbed(nic.MellanoxCX6())
		srv := driver.NewKVServer(tb.Server, sys)
		srv.Preload(gen.Records())

		res := loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: gen, Client: driver.NewKVClient(tb.Client, sys),
			RatePerS: 500_000,
			Warmup:   2 * sim.Millisecond,
			Measure:  15 * sim.Millisecond,
			Seed:     7,
		})
		// Capacity from the stable operating point: achieved / utilization.
		capacity := res.AchievedRps / tb.Server.Core.Utilization()
		fmt.Printf("  %-12s %8.0f req/s capacity   p99 %-10v zero-copy entries: %d\n",
			sys, capacity, res.Latency.Quantile(0.99), tb.Server.UDP.TxZCEntries)
		switch sys {
		case driver.SysCornflakes:
			cornflakes = capacity
		case driver.SysProtobuf:
			protobuf = capacity
		}
	}
	fmt.Printf("\nCornflakes vs Protobuf: %+.1f%% (paper: +15.4%% on this trace)\n",
		(cornflakes-protobuf)/protobuf*100)
}
