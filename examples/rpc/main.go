// rpc: serializer-aware microservice chains on the rack. A request fans
// through a frontend, a line of mid tiers, and a layer of leaves; every
// hop decodes its inbound call and encodes its outbound one through the
// same cost-modelled serializers the single-node figures use. Mid tiers
// therefore marshal twice per unit of app work — the chain tax Cornflakes
// attacks — and a depth-4 chain pays 14 marshal units per request where a
// single tier pays 2.
//
// The demo runs three contrasts:
//
//  1. depth 1 vs depth 4 at the same per-tier load: watch latency stack
//     per hop and the per-request serialization bill grow superlinearly;
//  2. fan-out 2 at the deepest tier: fan-in waits on the slowest child,
//     so the tail amplifies further;
//  3. the RPCAcc-style deployment: each tier's serialization runs on a
//     NIC-side engine and the host-core bill collapses.
//
// Run with:
//
//	go run ./examples/rpc
package main

import (
	"fmt"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/driver"
	"cornflakes/internal/fabric"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/rpc"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
	"math/rand/v2"
)

type constGen struct{}

func (constGen) Name() string                      { return "rpc-const" }
func (constGen) Records() []workloads.KV           { return nil }
func (constGen) Next(*rand.Rand) workloads.Request { return workloads.Request{Op: workloads.OpGet} }

func run(depth, fanout int, offload bool, rate float64) (loadgen.Result, *rpc.Chain) {
	c := rpc.NewChain(rpc.ChainConfig{
		Sys: driver.SysCornflakes, Profile: nic.MellanoxCX6(), Cache: cachesim.DefaultConfig(),
		Fabric: fabric.Config{}, Depth: depth, Fanout: fanout,
		AppCycles: 1500, ReqBytes: 64, FwdBytes: 64, RespBytes: 128,
		CallTimeout: 250 * sim.Microsecond,
		Offload:     offload,
	})
	res := loadgen.Run(loadgen.Config{
		Eng: c.Eng, EP: c.Client.N.UDP, Gen: constGen{}, Client: c.Client,
		RatePerS: rate,
		Warmup:   200 * sim.Microsecond, Measure: 2 * sim.Millisecond,
		Seed: 7, ClientID: 1,
		Retry: loadgen.RetryPolicy{Deadline: 800 * sim.Microsecond, MaxRetries: 1,
			Backoff: 60 * sim.Microsecond, MaxBackoff: 240 * sim.Microsecond},
		ShedID: driver.ShedID,
	})
	c.Eng.Run()
	return res, c
}

func serPerReq(c *rpc.Chain, completed uint64) float64 {
	rec, _ := c.HostReceipt()
	if completed == 0 {
		return 0
	}
	return (rec.Cycles[costmodel.CatSerialize] + rec.Cycles[costmodel.CatDeserialize]) /
		float64(completed)
}

func main() {
	fmt.Println("RPC chains: every hop pays its marshalling through the cost model")
	fmt.Println()

	const rate = 300_000

	// 1. Latency stacks per hop; serialization per request grows faster
	// than depth because mid tiers marshal on both the call and the reply
	// path.
	fmt.Println("  chain depth at matched load:")
	for _, d := range []int{1, 2, 4} {
		res, c := run(d, 0, false, rate)
		fmt.Printf("    depth %d: p50 %8v  p99 %8v  ser+des %5.0f cy/req\n",
			d, res.P50(), res.P99(), serPerReq(c, res.Completed))
	}
	fmt.Println()

	// 2. Fan-out: the deepest tier calls two leaves and waits for both, so
	// the reply is hostage to the slower child.
	res, c := run(4, 2, false, rate)
	fmt.Printf("  depth 4 + fan-out 2: p50 %v, p99 %v (fan-in waits on the slowest leaf)\n",
		res.P50(), res.P99())
	hostRec, handled := c.HostReceipt()
	fmt.Printf("    host serialize bill: %.0f cy over %d handled calls\n",
		hostRec.Cycles[costmodel.CatSerialize], handled)
	fmt.Println()

	// 3. Offload: same chain, serialization charged to per-tier NIC-side
	// engines (the RPCAcc/Dagger deployment) — the host-core bill
	// collapses and the cycles reappear on the engines' receipts.
	ores, oc := run(4, 2, true, rate)
	oHost, _ := oc.HostReceipt()
	oOff, _ := oc.OffloadReceipt()
	fmt.Printf("  same chain, NIC-side serialization: p50 %v, p99 %v\n", ores.P50(), ores.P99())
	fmt.Printf("    host serialize bill %.0f cy; NIC engines carried %.0f cy\n",
		oHost.Cycles[costmodel.CatSerialize],
		oOff.Cycles[costmodel.CatSerialize]+oOff.Cycles[costmodel.CatDeserialize])
	fmt.Println()
	fmt.Println("  (full grid with shape checks: go run ./cmd/cf-bench -rpc)")
}
