// adaptive: the §7 "dynamic zero-copy threshold" extension in action. Two
// servers serve the same YCSB workload with 512-byte values — one whose
// store dwarfs the cache (refcount touches miss; zero-copy bookkeeping is
// expensive) and one whose store fits in cache (metadata stays warm;
// zero-copy is cheap even for small fields). The adaptive controller
// converges to a different threshold on each, without configuration.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

func converge(name string, keys, startThreshold int, cacheCfg cachesim.Config) {
	gen := workloads.NewYCSB(keys, 512, 2)
	tb := driver.NewTestbedCfg(nic.MellanoxCX6(), cacheCfg)
	srv := driver.NewKVServer(tb.Server, driver.SysCornflakes)
	tb.Server.Ctx.Threshold = startThreshold
	srv.Adaptive = core.NewAdaptiveThreshold(tb.Server.Ctx)
	srv.Preload(gen.Records())
	start := tb.Server.Ctx.Threshold

	loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: driver.NewKVClient(tb.Client, driver.SysCornflakes),
		RatePerS: 400_000,
		Warmup:   sim.Millisecond,
		Measure:  20 * sim.Millisecond,
		Seed:     5,
	})
	fmt.Printf("  %-28s threshold %4d → %4d bytes (%d adjustments)\n",
		name, start, tb.Server.Ctx.Threshold, srv.Adaptive.Adjustments)
}

func main() {
	fmt.Println("Adaptive zero-copy threshold (§7 future-work extension)")
	fmt.Println()
	// Misconfigured thresholds self-correct. A store that dwarfs the L3
	// keeps refcount metadata cold, so a too-low threshold (zero-copy for
	// everything) rises toward the measured crossover; a cache-resident
	// store keeps metadata warm, so a too-high threshold (copying
	// everything) falls.
	small := cachesim.DefaultConfig()
	small.L3.Size = 512 << 10 // 512 KiB L3: a 32k-key store dwarfs it
	converge("DRAM-resident store (cold)", 32_000, 64, small)

	big := cachesim.DefaultConfig() // 16 MiB L3: a 400-key store fits
	converge("cache-resident store (warm)", 400, 4096, big)

	fmt.Println("\nCold metadata pushes the threshold up (copies beat misses);")
	fmt.Println("warm metadata pulls it down (scatter-gather is nearly free).")
}
