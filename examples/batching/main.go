// batching: the batched RX/TX datapath, shown at the two ends of its
// trade. A NIC doorbell and a per-packet RX poll cost the same whether
// they move one packet or thirty-two, so a server with backlog should
// amortize them — ring the TX doorbell once per burst of gather lists,
// charge the RX poll once per drain. The catch is latency: a server that
// waits to fill batches punishes light load. The adaptive policy here
// never waits — each drain serves exactly the backlog that exists, up to
// the cap — so bursts collapse to one when the queue is empty and grow on
// their own past saturation.
//
// This demo runs the same configuration at the same three offered loads
// with batching off (burst cap 1, the legacy datapath bit for bit) and on
// (cap 16), and prints goodput, p99 and the realized burst sizes side by
// side. Then it runs the full sweep with its contract checks.
//
// Run with:
//
//	go run ./examples/batching
package main

import (
	"fmt"

	"cornflakes/internal/experiments"
)

func main() {
	fmt.Println("Batching: adaptive RX/TX bursts — amortization without a latency tax")
	fmt.Println()

	// Three operating points: light load, near the knee, and deep
	// overload. Burst cap 1 is the unbatched baseline.
	fmt.Println("  offered rps   burst  goodput rps  p99 µs  mean burst  doorbells/frame")
	sc := experiments.Quick()
	for _, rate := range []float64{50_000, 2_000_000, 6_000_000} {
		for _, burst := range []int{1, 16} {
			p := experiments.BatchingAt(sc, burst, rate)
			fmt.Printf("  %11.0f  %6d  %11.0f  %6.1f  %10.2f  %15.2f\n",
				p.Res.OfferedRps, burst, p.Res.AchievedRps,
				p.Res.P99().Seconds()*1e6, p.MeanBurst(), p.DoorbellsPerFrame())
		}
	}
	fmt.Println()

	// The full grid, as run by `go test ./internal/experiments -run
	// TestBatching` and `cf-bench -batch`: burst caps {1,4,16} against a
	// geometric load ladder from 0.2× to 1.5× of the measured capacity.
	rep := experiments.Batching(sc)
	fmt.Println(rep)

	if len(rep.Failed()) > 0 {
		fmt.Println("batching contract violated — see failed checks above")
		return
	}
	fmt.Println("Under overload the wide burst cap buys double-digit goodput from")
	fmt.Println("doorbell and poll amortization alone; at light load the bursts")
	fmt.Println("collapse to one and the p99 tracks the unbatched baseline. The")
	fmt.Println("burst size is not a tuning knob to get wrong — it is an upper")
	fmt.Println("bound the backlog fills on its own.")
}
