// redis: the §6.2.2 integration. The mini-Redis serves GET/MGET/LRANGE over
// the same simulated kernel-bypass stack with its handwritten RESP
// serialization and with Cornflakes serialization, and prints the gain per
// command shape (Table 3 in miniature).
//
// Run with:
//
//	go run ./examples/redis
package main

import (
	"fmt"
	"math/rand/v2"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/redis"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// mget2 issues two-key MGETs over a YCSB store.
type mget2 struct{ inner *workloads.YCSB }

func (g mget2) Name() string            { return "mget-2" }
func (g mget2) Records() []workloads.KV { return g.inner.Records() }
func (g mget2) Next(r *rand.Rand) workloads.Request {
	a, b := g.inner.Next(r), g.inner.Next(r)
	return workloads.Request{Op: workloads.OpGetM, Keys: [][]byte{a.Keys[0], b.Keys[0]}}
}

// get1 issues single-key GETs.
type get1 struct{ inner *workloads.YCSB }

func (g get1) Name() string            { return "get" }
func (g get1) Records() []workloads.KV { return g.inner.Records() }
func (g get1) Next(r *rand.Rand) workloads.Request {
	q := g.inner.Next(r)
	return workloads.Request{Op: workloads.OpGet, Keys: q.Keys}
}

func main() {
	fmt.Println("mini-Redis, YCSB with 4096-byte payloads (Table 3 in miniature)")
	fmt.Println()

	shapes := []struct {
		name string
		gen  workloads.Generator
	}{
		{"get (1x4096B)", get1{workloads.NewYCSB(1500, 4096, 1)}},
		{"mget-2 (2x2048B)", mget2{workloads.NewYCSB(1500, 2048, 1)}},
		{"lrange-2 (2x2048B)", workloads.NewYCSB(1500, 2048, 2)},
	}
	capacity := func(mode redis.Mode, gen workloads.Generator) float64 {
		tb := driver.NewTestbed(nic.MellanoxCX6())
		srv := driver.NewRedisServer(tb.Server, mode)
		srv.Preload(gen.Records())
		res := loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: gen, Client: driver.NewRedisClient(tb.Client, mode),
			RatePerS: 100_000,
			Warmup:   2 * sim.Millisecond,
			Measure:  10 * sim.Millisecond,
			Seed:     9,
		})
		return res.AchievedRps / tb.Server.Core.Utilization()
	}
	for _, sh := range shapes {
		resp := capacity(redis.ModeRESP, sh.gen)
		cf := capacity(redis.ModeCornflakes, sh.gen)
		fmt.Printf("  %-20s Redis %7.0f req/s   +Cornflakes %7.0f req/s   gain %+.1f%%\n",
			sh.name, resp, cf, (cf-resp)/resp*100)
	}
	fmt.Println("\npaper: get +15%, mget-2 +15.9%, lrange-2 +40.1%")
}
