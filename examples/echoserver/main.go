// echoserver: the §2 motivation experiment. An echo server bounces a
// two-field message back with each manual datapath (no serialization,
// zero-copy scatter-gather, one copy, two copies) and with each library,
// showing where serialization cycles go.
//
// Run with:
//
//	go run ./examples/echoserver
package main

import (
	"fmt"
	"math/rand/v2"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

type nopGen struct{}

func (nopGen) Name() string            { return "echo" }
func (nopGen) Records() []workloads.KV { return nil }
func (nopGen) Next(r *rand.Rand) workloads.Request {
	return workloads.Request{}
}

func main() {
	fmt.Println("Echo server, two 2048-byte fields (Figure 2 in miniature)")
	fmt.Println()
	arms := []struct {
		name string
		mode driver.EchoMode
		sys  driver.System
	}{
		{"no serialization", driver.EchoNoSer, driver.SysCornflakes},
		{"zero-copy", driver.EchoZeroCopy, driver.SysCornflakes},
		{"one-copy", driver.EchoOneCopy, driver.SysCornflakes},
		{"two-copy", driver.EchoTwoCopy, driver.SysCornflakes},
		{"Cornflakes", driver.EchoLib, driver.SysCornflakes},
		{"Protobuf", driver.EchoLib, driver.SysProtobuf},
		{"FlatBuffers", driver.EchoLib, driver.SysFlatBuffers},
		{"Cap'n Proto", driver.EchoLib, driver.SysCapnProto},
	}
	for _, a := range arms {
		tb := driver.NewTestbed(nic.MellanoxCX6())
		driver.NewEchoServer(tb.Server, a.mode, a.sys, 2048, 2)
		client := &driver.EchoClient{Mode: a.mode, Sys: a.sys, N: tb.Client, FieldSize: 2048, NumFields: 2}
		loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: nopGen{}, Client: client,
			RatePerS: 300_000,
			Warmup:   2 * sim.Millisecond,
			Measure:  10 * sim.Millisecond,
			Seed:     3,
		})
		perReq := sim.Time(float64(tb.Server.Core.BusyTime) / float64(tb.Server.Core.JobsDone))
		capGbps := 4104 * 8 / perReq.Nanoseconds()
		fmt.Printf("  %-17s %8v per echo  →  ~%.0f Gbps single-core ceiling\n", a.name, perReq, capGbps)
	}
}
