// trace: where did the microseconds go? The paper's argument is made with
// cycle breakdowns (Fig 9–11), but run-level aggregates cannot explain a
// p99 outlier — was it queueing, a lost frame, a shed-and-retry ladder, or
// a copy fallback? This demo attaches the per-request tracing layer to an
// overloaded Cornflakes KV server, prints the span timelines of the
// slowest requests, and writes the whole run as a Chrome trace-event file
// you can open in chrome://tracing or https://ui.perfetto.dev.
//
// Run with:
//
//	go run ./examples/trace
package main

import (
	"fmt"
	"os"

	"cornflakes/internal/costmodel"
	"cornflakes/internal/experiments"
	"cornflakes/internal/trace"
)

func main() {
	fmt.Println("Trace: per-request span timelines under overload")
	fmt.Println()

	// One traced run at a rate well past the Quick-scale capacity: plenty
	// of queueing, shedding and retries to look at. Retain 1 in 8 measured
	// requests plus the 5 slowest.
	sc := experiments.Quick()
	run := experiments.TracedOverloadRun(sc, 2_000_000, trace.Config{
		SampleEvery: 8, SlowestK: 5,
	})
	res := run.Res
	fmt.Printf("offered %.0f rps: %d sent, %d completed, %d shed, %d timed out, %d retries\n",
		res.OfferedRps, res.Sent, res.Completed, res.Shed, res.TimedOut, res.Retries)
	fmt.Printf("retained %d of %d measured flows (sampling keeps memory bounded; the\n",
		len(run.Tracer.Retained()), res.Sent)
	fmt.Println("slowest are always kept — the tail is what a breakdown exists to explain)")
	fmt.Println()

	// The slowest requests, phase by phase. Every timeline is gapless and
	// sums exactly to the request's end-to-end latency: the simulator's
	// virtual clock is exact, so the accounting is too.
	for _, f := range run.Tracer.Slowest() {
		fmt.Println(trace.Summary(f))
		for _, s := range f.Spans() {
			fmt.Printf("  %-14s %10v  (at %v)\n", s.Label, s.Dur(), s.Start)
		}
		for _, n := range f.Notes {
			fmt.Printf("  note: %s\n", n)
		}
	}
	fmt.Println()

	// The tracer aggregates every server receipt — retained or not — so its
	// run-level cycle breakdown matches the server's own accounting exactly.
	agg, n := run.Tracer.Aggregate()
	fmt.Printf("cycle breakdown over %d handled requests (== server accounting: %v):\n",
		n, agg == run.RunReceipt)
	for cat, cy := range agg.Cycles {
		if cy > 0 {
			fmt.Printf("  %-12v %14.0f cycles\n", costmodel.Category(cat), cy)
		}
	}
	fmt.Println()

	const out = "trace.json"
	if err := os.WriteFile(out, run.JSON, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes) — open it in chrome://tracing or ui.perfetto.dev:\n",
		out, len(run.JSON))
	fmt.Println("one track per retained request, a parallel track of per-category CPU")
	fmt.Println("receipts, and counter tracks for the server's health gauges (occupancy,")
	fmt.Println("queue depth, shed and fallback counts) sampled every 100 µs.")
}
