#!/bin/sh
# Full pre-merge gate: vet, build everything, then the test suite under the
# race detector (the fault-injection soak included). Use `go test -short`
# directly for a quicker loop that skips the soak.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== golden trace export (byte-stable Chrome trace JSON)"
go test ./internal/experiments -run 'TestTraceGoldenExport|TestTraceProperties'

echo "== batching determinism gate (burst cap 1 bit-identical to unbatched) + smoke"
go test -short ./internal/experiments -run 'TestBatchingGoldenAtB1|TestBatchingSmoke'

echo "== cluster fabric smoke (2-shard rack end to end through the ToR switch)"
go test -short ./internal/experiments -run 'TestClusterSmoke'
go test -short ./internal/driver -run 'TestClusterEndToEnd|TestClusterWireIDsDisjoint|TestClusterTopologyGrowthStable'

echo "== chaos smoke (kill-one-shard point: crash/recovery, failover, frame ledger)"
go test -short ./internal/experiments -run 'TestChaosSmoke|TestChaosDeterministic'
go test -short ./internal/driver -run 'TestClusterCrashRecovery|TestCrashDrainsPending|TestFailoverRouting'
go test -short ./internal/loadgen -run 'TestHedge|TestBucketCompleted'

echo "== rpc chain smoke (call/reply framing, fan-in, shed propagation, NIC offload)"
go test -short ./internal/rpc -run 'TestSingleHopAllSystems|TestShedPropagatesUpstream|TestFanInLateReplyProperty|TestOffloadMovesSerializationOffHost'

echo "== parallel-harness fingerprint gate (serial == parallel across every experiment, rpc included)"
go test ./internal/experiments -run 'TestSerialParallelFingerprints|TestFingerprintSensitivity'

echo "== partitioned-engine fingerprint gate (serial == per-node event-queue shards: cluster, chaos, rpc)"
go test ./internal/experiments -run 'TestSerialPartitionedFingerprints|TestPartitionComposesWithWorkers'

echo "== partitioned-engine race smoke (GOMAXPROCS=4 forces the shard worker pool even on 1-core hosts)"
GOMAXPROCS=4 go test -race ./internal/sim -run 'TestPartitioned|TestShardStop|TestSingleShard'
GOMAXPROCS=4 go test -race -timeout 20m ./internal/experiments -run 'TestSerialPartitionedFingerprints'

echo "== zero-alloc hot-path pins (DES engine, core, meter, cache fill, frame path, range walk, message pool)"
go test ./internal/sim ./internal/costmodel ./internal/nic ./internal/cachesim ./internal/core -run 'AllocFree|TestTimerStaleAfterRecycle'

echo "== go test -race ./... (includes the parallel sweep smoke)"
# The experiments package runs every reproduction at Quick scale; under the
# race detector that outgrew go test's default 10-minute per-package limit.
go test -race -timeout 45m ./...

echo "== check OK"
