#!/bin/sh
# Benchmark harness: runs the per-experiment benchmarks three ways — serial
# (CF_PARALLEL=1), parallel (CF_PARALLEL=0 → GOMAXPROCS sweep workers), and
# partitioned (CF_PARALLEL=1 CF_PARTITION=1 → the multi-node experiments on
# per-node event-queue shards) — plus the DES hot-path micro-benchmarks,
# and folds the results into a JSON perf record via cmd/benchjson. Both
# speedup ratios only exceed ~1.0 on multi-core hosts (sweep points fan out
# across goroutines; shards run on worker goroutines between lookahead
# barriers); the allocs/op columns are deterministic on any host.
#
# The output index is derived from the committed BENCH_*.json sequence:
# latest index + 1. A hard-coded OUT default silently reused one index
# across PRs (BENCH_6/BENCH_7 were claimed but never committed), so the
# derivation refuses to run when the committed sequence has a gap — a gap
# means a PR claimed a record it never produced, and that has to be
# reconciled explicitly, not papered over.
#
# Env knobs:
#   BENCHTIME  go test -benchtime for the experiment passes (default 2x)
#   OUT        output JSON path (default BENCH_<latest committed + 1>.json)
#   PREV       previous record for the speedup_vs_prev columns (default
#              BENCH_<latest committed>.json; set PREV= to skip)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"

latest=0
earliest=0
for f in $(git ls-files 'BENCH_*.json'); do
    idx="${f#BENCH_}"
    idx="${idx%.json}"
    case "$idx" in
        *[!0-9]*|'') echo "bench.sh: unparseable bench record name: $f" >&2; exit 1 ;;
    esac
    idx=$((idx + 0))
    if [ "$idx" -gt "$latest" ]; then latest="$idx"; fi
    if [ "$earliest" -eq 0 ] || [ "$idx" -lt "$earliest" ]; then earliest="$idx"; fi
done

if [ -z "${OUT:-}" ]; then
    if [ "$latest" -eq 0 ]; then
        echo "bench.sh: no committed BENCH_*.json found; set OUT explicitly" >&2
        exit 1
    fi
    # Contiguity is checked from the earliest committed record, not from 1:
    # the repo history may be anchored mid-sequence (this tree starts at
    # BENCH_5), and records before the anchor were never claimed here.
    i="$earliest"
    while [ "$i" -le "$latest" ]; do
        if ! git ls-files --error-unmatch "BENCH_$i.json" >/dev/null 2>&1; then
            echo "bench.sh: committed bench sequence has a gap: BENCH_$i.json is missing" >&2
            echo "bench.sh: a past PR claimed a record it never committed; reconcile the" >&2
            echo "bench.sh: sequence (see CHANGES.md) or set OUT explicitly to override" >&2
            exit 1
        fi
        i=$((i + 1))
    done
    OUT="BENCH_$((latest + 1)).json"
fi

# The previous committed record anchors the PR-over-PR speedup_vs_prev
# columns; PREV= (explicitly empty) skips the comparison.
if [ -z "${PREV+set}" ] && [ "$latest" -gt 0 ]; then
    PREV="BENCH_$latest.json"
fi

mkdir -p artifacts

echo "== serial pass (CF_PARALLEL=1, benchtime=$BENCHTIME)"
CF_PARALLEL=1 go test -run '^$' -bench '^Benchmark(Fig|Table|Ext|Cluster|Chaos|Rpc)' \
    -benchmem -benchtime "$BENCHTIME" . | tee artifacts/bench-serial.txt

echo "== DES hot-path micro-benchmarks (serial only)"
go test -run '^$' -bench '^Benchmark(EngineScheduleDispatch|CoreServeJob)$' \
    -benchmem ./internal/sim | tee -a artifacts/bench-serial.txt

echo "== parallel pass (CF_PARALLEL=0 -> GOMAXPROCS workers, benchtime=$BENCHTIME)"
CF_PARALLEL=0 go test -run '^$' -bench '^Benchmark(Fig|Table|Ext|Cluster|Chaos|Rpc)' \
    -benchmem -benchtime "$BENCHTIME" . | tee artifacts/bench-parallel.txt

echo "== partitioned pass (CF_PARTITION=1 -> per-node event-queue shards, benchtime=$BENCHTIME)"
# Serial sweep fan-out isolates the partition axis: only the multi-node
# experiments build partitioned racks, so only those are run here.
CF_PARALLEL=1 CF_PARTITION=1 go test -run '^$' -bench '^Benchmark(Cluster|Chaos|Rpc)' \
    -benchmem -benchtime "$BENCHTIME" . | tee artifacts/bench-partitioned.txt

echo "== fold into $OUT"
go run ./cmd/benchjson \
    -serial artifacts/bench-serial.txt \
    -parallel artifacts/bench-parallel.txt \
    -partitioned artifacts/bench-partitioned.txt \
    ${PREV:+-prev "$PREV"} \
    -out "$OUT" \
    -note "Quick scale; parallel pass uses GOMAXPROCS sweep workers and the partitioned pass runs per-node event-queue shards, so speedup_parallel and speedup_partitioned are ~1.0 on single-core hosts (see host_cores) and grow with cores; reports are byte-identical on both axes (fingerprint gates in scripts/check.sh). speedup_vs_prev compares wall-clock against the previous committed record, which may have been taken on a different/differently-loaded host — read it alongside allocs_vs_prev, which is deterministic everywhere."
