#!/bin/sh
# Benchmark harness: runs the per-experiment benchmarks twice — serial
# (CF_PARALLEL=1) and parallel (CF_PARALLEL=0 → GOMAXPROCS workers) — plus
# the DES hot-path micro-benchmarks, and folds the results into a JSON perf
# record via cmd/benchjson. The parallel-vs-serial ratio only exceeds ~1.0
# on multi-core hosts (sweep points fan out across goroutines); the
# allocs/op columns are deterministic on any host.
#
# Env knobs:
#   BENCHTIME  go test -benchtime for the experiment passes (default 2x)
#   OUT        output JSON path (default BENCH_7.json)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
OUT="${OUT:-BENCH_7.json}"
mkdir -p artifacts

echo "== serial pass (CF_PARALLEL=1, benchtime=$BENCHTIME)"
CF_PARALLEL=1 go test -run '^$' -bench '^Benchmark(Fig|Table|Ext|Cluster|Chaos)' \
    -benchmem -benchtime "$BENCHTIME" . | tee artifacts/bench-serial.txt

echo "== DES hot-path micro-benchmarks (serial only)"
go test -run '^$' -bench '^Benchmark(EngineScheduleDispatch|CoreServeJob)$' \
    -benchmem ./internal/sim | tee -a artifacts/bench-serial.txt

echo "== parallel pass (CF_PARALLEL=0 -> GOMAXPROCS workers, benchtime=$BENCHTIME)"
CF_PARALLEL=0 go test -run '^$' -bench '^Benchmark(Fig|Table|Ext|Cluster|Chaos)' \
    -benchmem -benchtime "$BENCHTIME" . | tee artifacts/bench-parallel.txt

echo "== fold into $OUT"
go run ./cmd/benchjson \
    -serial artifacts/bench-serial.txt \
    -parallel artifacts/bench-parallel.txt \
    -out "$OUT" \
    -note "Quick scale; parallel pass uses GOMAXPROCS sweep workers, so speedup_parallel is ~1.0 on single-core hosts and grows with cores; reports are byte-identical at any width (fingerprint gate in scripts/check.sh)."
