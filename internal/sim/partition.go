// Conservative parallel-in-time execution: a PartitionedEngine coordinates
// several shard Engines — one per topology partition (a rack node, a
// client, the switch) — so one big topology can use every host core while
// remaining bit-identical to the serial engine.
//
// The synchronization protocol is classic conservative PDES with a global
// lookahead window. Every simulated interaction between partitions crosses
// a link with at least `lookahead` of delay (wire propagation), so an
// event executing at time t on one shard can only schedule onto another
// shard at t+lookahead or later. Each round the coordinator:
//
//  1. drains every shard's cross-event inbox into its heap (the barrier —
//     nothing runs while this happens);
//  2. finds T, the earliest pending event across all shards;
//  3. runs every shard with work in [T, T+lookahead) concurrently — the
//     window is exclusive at the top because an event executing at
//     T+lookahead-1 may emit a cross event landing exactly at T+lookahead;
//  4. waits for all of them (the next barrier).
//
// Within a round, shards touch only their own engine's heap and their own
// partition's component state; the single cross-shard channel is AtFrom's
// mutex-protected inbox. Determinism does not depend on goroutine
// scheduling: every event — local or merged — carries a total-order key
// (at, schedAt, src rank, per-source seq), so each shard's heap pops in
// the same order no matter how the inbox appends interleaved, and that
// order matches the serial engine's (time, seq) order (see event's doc
// comment). The experiments' fingerprint gate pins the equivalence
// byte-for-byte; scripts/check.sh runs it under the race detector.
package sim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner is the engine surface the harness drives a run through. Both
// *Engine and *PartitionedEngine satisfy it, so testbeds expose one Exec
// handle and the experiments never branch on the engine mode.
type Runner interface {
	Now() Time
	Run() Time
	RunUntil(deadline Time) Time
	Stop()
	Pending() int
	Processed() uint64
}

var (
	_ Runner = (*Engine)(nil)
	_ Runner = (*PartitionedEngine)(nil)
)

// PartitionedEngine runs a set of shard Engines under lookahead barriers.
// Build it with NewPartitionedEngine, create the shards with NewShard
// while wiring the topology, then drive it exactly like an Engine. With a
// single shard it degenerates to the serial engine running in windows —
// same events, same order, same clocks.
type PartitionedEngine struct {
	shards    []*Engine
	lookahead Time
	now       Time
	stopped   atomic.Bool
	active    []*Engine // per-round scratch
}

// NewPartitionedEngine builds a coordinator with the given lookahead: the
// minimum cross-partition delay, i.e. a lower bound on how far ahead of
// the globally earliest event every shard may safely run. It must not
// exceed the smallest delay of any link that crosses a partition boundary;
// larger is faster (wider windows, fewer barriers), zero still terminates
// (every round executes exactly one timestamp).
func NewPartitionedEngine(lookahead Time) *PartitionedEngine {
	if lookahead < 0 {
		lookahead = 0
	}
	return &PartitionedEngine{lookahead: lookahead}
}

// NewShard creates the next partition's engine. Call during topology
// construction, before the first Run. The creation order fixes each
// shard's rank, which is part of the deterministic event key — so, like
// switch plug-in order, it is part of a scenario's identity.
func (p *PartitionedEngine) NewShard() *Engine {
	e := &Engine{rank: int32(len(p.shards)), owner: p}
	p.shards = append(p.shards, e)
	return e
}

// Shards returns the number of partitions.
func (p *PartitionedEngine) Shards() int { return len(p.shards) }

// Lookahead returns the configured lookahead bound.
func (p *PartitionedEngine) Lookahead() Time { return p.lookahead }

// Now returns the coordinator clock: the latest executed event time after
// Run, the deadline after an uninterrupted RunUntil. Between calls it is
// only advanced at barriers, never mid-round.
func (p *PartitionedEngine) Now() Time { return p.now }

// Stop makes the run return at the current round's barrier. Like
// Engine.Stop it is sticky until a run observes it, and each run consumes
// at most one stop. (The serial engine stops after the current *event*;
// the partitioned engine can only stop after the current *round* — within
// a round there is no global order to stop at.)
func (p *PartitionedEngine) Stop() { p.stopped.Store(true) }

// Run executes events until no work remains on any shard or Stop is
// called, and returns the time of the latest executed event.
func (p *PartitionedEngine) Run() Time { return p.run(0, false) }

// RunUntil executes events with timestamps ≤ deadline, then advances every
// shard clock (and the coordinator clock) to the deadline, mirroring
// Engine.RunUntil — including leaving the clocks at the last executed
// event when stopped.
func (p *PartitionedEngine) RunUntil(deadline Time) Time { return p.run(deadline, true) }

// Pending returns the queued event count across all shards and inboxes.
func (p *PartitionedEngine) Pending() int {
	n := 0
	for _, s := range p.shards {
		n += s.Pending()
		s.inboxMu.Lock()
		n += len(s.inbox)
		s.inboxMu.Unlock()
	}
	return n
}

// Processed returns the total events executed across all shards.
func (p *PartitionedEngine) Processed() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.processed
	}
	return n
}

// shardWork is one round's assignment for one shard.
type shardWork struct {
	s     *Engine
	limit Time
}

const maxTime = Time(math.MaxInt64)

// run is the round loop behind Run and RunUntil. Worker goroutines live
// only for the duration of this call: they are spawned on entry when more
// than one can be useful and torn down on every exit path, so a sweep
// harness building thousands of partitioned testbeds leaks nothing.
func (p *PartitionedEngine) run(deadline Time, bounded bool) Time {
	nw := runtime.GOMAXPROCS(0)
	if nw > len(p.shards) {
		nw = len(p.shards)
	}
	var (
		workCh chan shardWork
		wg     sync.WaitGroup
	)
	if nw > 1 {
		workCh = make(chan shardWork)
		for i := 0; i < nw; i++ {
			go func() {
				for w := range workCh {
					w.s.runWindow(w.limit)
					wg.Done()
				}
			}()
		}
		defer close(workCh)
	}

	for !p.stopped.Load() {
		// Barrier: merge cross events, find the global next-event time.
		T := maxTime
		for _, s := range p.shards {
			s.drainInbox()
			if at, ok := s.nextAt(); ok && at < T {
				T = at
			}
		}
		if T == maxTime || (bounded && T > deadline) {
			break
		}
		limit := T + p.lookahead
		if limit <= T {
			// Zero lookahead (or addition past the Time range): execute the
			// earliest timestamp only. Correct, just one round per instant.
			limit = T + 1
		}
		if bounded && limit > deadline {
			// The deadline is inclusive (RunUntil executes events at exactly
			// the deadline); the window top is exclusive.
			limit = deadline + 1
		}
		active := p.active[:0]
		for _, s := range p.shards {
			if at, ok := s.nextAt(); ok && at < limit {
				active = append(active, s)
			}
		}
		p.active = active
		if nw <= 1 || len(active) == 1 {
			for _, s := range active {
				s.runWindow(limit)
			}
			continue
		}
		wg.Add(len(active))
		for _, s := range active {
			workCh <- shardWork{s: s, limit: limit}
		}
		wg.Wait()
	}

	stopped := p.stopped.Load()
	now := p.now
	for _, s := range p.shards {
		if s.now > now {
			now = s.now
		}
	}
	if bounded && !stopped {
		if now < deadline {
			now = deadline
		}
		for _, s := range p.shards {
			if s.now < deadline {
				s.now = deadline
			}
		}
	}
	p.now = now
	p.stopped.Store(false)
	for _, s := range p.shards {
		s.stopped = false
	}
	return now
}
