// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate clock for the whole repository: the simulated
// NIC, caches, cores, and load generators all advance a single virtual
// timeline measured in picoseconds. Determinism is guaranteed by a strict
// (time, sequence) ordering of events, so two runs with the same seed produce
// identical results.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
)

// Time is a point on (or a span of) the virtual timeline, in picoseconds.
// Picosecond resolution lets CPU-cycle costs (≈357 ps at 2.8 GHz) round-trip
// through the clock without accumulating error over billions of events.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromNanos converts a nanosecond count to a Time.
func FromNanos(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// FromMicros converts a microsecond count to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// FromSeconds converts a second count to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a scheduled callback. Ties between events at the same instant
// break by (schedAt, src, seq): the virtual time the event was scheduled
// at, the rank of the engine that scheduled it, then its per-engine
// sequence number. On a lone engine this collapses to the historical
// earlier-scheduled-fires-first order — seq increases monotonically with
// scheduling order, schedAt is nondecreasing along it, and src is constant
// — so the extended key is behavior-neutral serially. It exists for the
// partitioned engine, where events merged from several shards need a total
// order that no shard's execution interleaving can perturb.
type event struct {
	at      Time
	schedAt Time
	src     int32
	seq     uint64
	fn      func()
	// index within the heap, maintained by heap.Interface methods so that
	// cancellation can remove an event in O(log n). Events parked on the
	// ready ring instead of the heap use the negative sentinels below.
	index int
	// gen is bumped every time the event struct is recycled through the
	// engine's free list, so a Timer holding a stale *event (one that fired
	// or was cancelled, then reused for an unrelated callback) can detect
	// the reuse and refuse to cancel someone else's event.
	gen uint64
}

// index sentinels for events not resident in the heap.
const (
	idxFree          = -1 // recycled or fired; not queued anywhere
	idxRing          = -2 // live on the ready ring
	idxRingCancelled = -3 // cancelled while on the ring; recycled at dequeue
)

// eventLess is the four-part deterministic key ordering from the heap,
// usable on any two events regardless of which structure holds them.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].schedAt != h[j].schedAt {
		return h[i].schedAt < h[j].schedAt
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated components run on the engine's goroutine.
// (A partitioned run gives every shard its own Engine; cross-shard
// scheduling goes through AtFrom's mutex-protected inbox, never the heap.)
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	// processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// free is a per-engine free list of event structs. The engine is
	// single-goroutine by contract, so a plain slice (no sync.Pool locking)
	// makes steady-state scheduling allocation-free: every fired or
	// cancelled event returns here and the next At reuses it.
	free []*event

	// ready is the deferred-dispatch ring ahead of the heap: events
	// scheduled at exactly Now() — the common After(0)/At(Now()) case, and
	// by construction also the current heap minimum's timestamp whenever
	// the heap holds same-instant work — are appended here in O(1) instead
	// of paying a heap sift. Ring entries all carry (at=now, schedAt=now,
	// src=rank) with strictly increasing seq, so the ring is always sorted
	// by the four-part key, and the clock cannot advance past them (the
	// dispatcher always fires the key-minimum of ring head vs heap min, and
	// every ring entry's at equals the current clock). Cancellation leaves
	// a tombstone (index = idxRingCancelled) that the dispatcher recycles
	// at dequeue, since ring entries have no heap index to remove by.
	ready     []*event
	readyHead int
	readyLive int
	// noRing forces every event through the heap; test-only, for
	// differencing ring dispatch against the heap-only reference order.
	noRing bool

	// Shard identity, zero-valued on a plain engine: rank orders this
	// shard among its siblings (part of the deterministic event key) and
	// owner points at the coordinating PartitionedEngine. The inbox
	// receives cross-shard events from AtFrom; it is the only
	// engine-internal state touched from other goroutines, and only under
	// inboxMu. The coordinator drains it into the heap at round barriers.
	rank       int32
	owner      *PartitionedEngine
	inboxMu    sync.Mutex
	inbox      []crossEvent
	inboxSpare []crossEvent
}

// crossEvent is one cross-shard scheduling request, carrying the full
// deterministic sort key assigned at the source: the merged heap order
// depends only on the keys, never on the mutex interleaving of appends.
type crossEvent struct {
	at      Time
	schedAt Time
	src     int32
	seq     uint64
	fn      func()
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer identifies a scheduled event so it can be cancelled. The zero Timer
// is invalid. The gen snapshot ties the Timer to one particular use of the
// (recycled) event struct.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint64
}

// Cancel removes the pending event. It reports whether the event was still
// pending (false when it already fired or was cancelled before).
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen {
		return false
	}
	switch {
	case t.ev.index >= 0:
		heap.Remove(&t.e.events, t.ev.index)
		t.e.recycle(t.ev)
		return true
	case t.ev.index == idxRing:
		// Ring entries have no heap index; tombstone in place and let the
		// dispatcher recycle the struct when it reaches the ring head.
		t.ev.index = idxRingCancelled
		t.ev.fn = nil
		t.e.readyLive--
		return true
	}
	return false
}

// Pending reports whether the timer's event has not yet fired or been
// cancelled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && (t.ev.index >= 0 || t.ev.index == idxRing)
}

// recycle returns a fired or cancelled event to the free list. Bumping gen
// invalidates every Timer that still points at the struct; dropping fn
// releases the closure (and whatever it captures) immediately instead of
// pinning it until the struct is reused.
func (e *Engine) recycle(ev *event) {
	ev.index = idxFree
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a modelling bug, and silently reordering time would
// corrupt every downstream measurement.
//
// Scheduling at exactly the current time takes the ready-ring fast path:
// the event's key (at=now, schedAt=now, src=rank, fresh seq) is strictly
// greater than every ring entry already queued and orders against heap
// events purely by the four-part key the dispatcher compares, so dispatch
// order — and therefore every report — is identical to the heap-only path.
func (e *Engine) At(at Time, fn func()) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.newEvent(at, e.now, e.rank, e.seq, fn)
	e.seq++
	if at == e.now && !e.noRing {
		ev.index = idxRing
		e.ready = append(e.ready, ev)
		e.readyLive++
	} else {
		heap.Push(&e.events, ev)
	}
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// ringHead returns the first live ring entry, lazily recycling tombstones,
// or nil when the ring is empty.
func (e *Engine) ringHead() *event {
	for e.readyHead < len(e.ready) {
		ev := e.ready[e.readyHead]
		if ev.index != idxRingCancelled {
			return ev
		}
		e.ready[e.readyHead] = nil
		e.readyHead++
		e.recycle(ev)
	}
	e.ready = e.ready[:0]
	e.readyHead = 0
	return nil
}

// ringAdvance removes the current ring head (which the caller obtained from
// ringHead).
func (e *Engine) ringAdvance() {
	e.ready[e.readyHead] = nil
	e.readyHead++
	e.readyLive--
	if e.readyHead == len(e.ready) {
		e.ready = e.ready[:0]
		e.readyHead = 0
	}
}

// peekNext returns the next event in deterministic key order across the
// ready ring and the heap, without removing it. Nil when none are pending.
func (e *Engine) peekNext() *event {
	rev := e.ringHead()
	if len(e.events) == 0 {
		return rev
	}
	hev := e.events[0]
	if rev == nil || eventLess(hev, rev) {
		return hev
	}
	return rev
}

// popKnown removes ev, which the caller just obtained from peekNext.
func (e *Engine) popKnown(ev *event) {
	if ev.index >= 0 {
		heap.Pop(&e.events)
		return
	}
	e.ringAdvance()
}

// nextAt reports the timestamp of the next pending event, ring included.
// Heap-peeking call sites (RunUntil, runWindow, the partitioned
// coordinator's barrier scans) must use this instead of reading events[0]
// directly.
func (e *Engine) nextAt() (Time, bool) {
	ev := e.peekNext()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// newEvent takes an event struct off the free list (or allocates one) and
// fills in the full sort key.
func (e *Engine) newEvent(at, schedAt Time, src int32, seq uint64, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.schedAt, ev.src, ev.seq, ev.fn = at, schedAt, src, seq, fn
	} else {
		ev = &event{at: at, schedAt: schedAt, src: src, seq: seq, fn: fn}
	}
	return ev
}

// AtFrom schedules fn on e at absolute time at, on behalf of code running
// on the src engine. With src == e (or either engine outside a partitioned
// run) it is exactly At. Across shards of one PartitionedEngine it appends
// a cross event to e's inbox instead of touching e's heap: the event
// carries (at, src.now, src.rank, src.seq) as its deterministic sort key,
// and the coordinator merges it into e's heap at the next round barrier.
// The destination time must respect the partition lookahead: at least
// src.now plus the coordinator's lookahead, checked when the inbox drains.
func (e *Engine) AtFrom(src *Engine, at Time, fn func()) {
	if src == e || e.owner == nil || src.owner != e.owner {
		e.At(at, fn)
		return
	}
	ce := crossEvent{at: at, schedAt: src.now, src: src.rank, seq: src.seq, fn: fn}
	src.seq++
	e.inboxMu.Lock()
	e.inbox = append(e.inbox, ce)
	e.inboxMu.Unlock()
}

// drainInbox merges queued cross events into the heap. Called only by the
// coordinator between rounds (never concurrently with the shard running).
// An event landing before the shard's clock means a sender violated the
// lookahead bound — a modelling bug exactly like scheduling in the past.
func (e *Engine) drainInbox() {
	e.inboxMu.Lock()
	pending := e.inbox
	e.inbox = e.inboxSpare[:0]
	e.inboxMu.Unlock()
	for i := range pending {
		ce := &pending[i]
		if ce.at < e.now {
			panic(fmt.Sprintf("sim: cross-shard event at %v before shard now %v (lookahead violated)", ce.at, e.now))
		}
		heap.Push(&e.events, e.newEvent(ce.at, ce.schedAt, ce.src, ce.seq, ce.fn))
		ce.fn = nil // release the closure promptly on reuse
	}
	e.inboxSpare = pending[:0]
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
// Pending events stay queued and a later Run call resumes them. A Stop
// issued while the engine is not running is sticky: the next Run or
// RunUntil observes it and returns before executing anything. Each run
// consumes at most one stop — the flag clears when a run returns. On a
// shard of a PartitionedEngine, Stop also stops the coordinator (the whole
// partitioned run ends at the current round's barrier).
func (e *Engine) Stop() {
	e.stopped = true
	if e.owner != nil {
		e.owner.Stop()
	}
}

// Run executes events in timestamp order until no events remain or Stop is
// called. It returns the time of the last executed event.
func (e *Engine) Run() Time {
	for !e.stopped {
		ev := e.peekNext()
		if ev == nil {
			break
		}
		e.popKnown(ev)
		e.now = ev.at
		e.processed++
		fn := ev.fn
		// Recycle before firing: fn may schedule new events, and letting it
		// reuse this struct immediately keeps the free list at its
		// steady-state size.
		e.recycle(ev)
		fn()
	}
	e.stopped = false
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain
// queued. A Stop — pending from before the call, or fired mid-run — leaves
// the clock at the last executed event rather than jumping it to the
// deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.stopped {
		ev := e.peekNext()
		if ev == nil || ev.at > deadline {
			break
		}
		e.popKnown(ev)
		e.now = ev.at
		e.processed++
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	e.stopped = false
	return e.now
}

// runWindow executes events with timestamps strictly below limit, leaving
// the clock at the last executed event. It is the per-round shard step of
// a partitioned run: the coordinator guarantees (via the lookahead bound)
// that no cross-shard event can still land inside [now, limit), so the
// window is safe to execute without consulting any other shard.
func (e *Engine) runWindow(limit Time) {
	for !e.stopped {
		ev := e.peekNext()
		if ev == nil || ev.at >= limit {
			break
		}
		e.popKnown(ev)
		e.now = ev.at
		e.processed++
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
}

// Pending returns the number of queued events (ring and heap; cancelled
// ring tombstones are excluded).
func (e *Engine) Pending() int { return len(e.events) + e.readyLive }
