// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate clock for the whole repository: the simulated
// NIC, caches, cores, and load generators all advance a single virtual
// timeline measured in picoseconds. Determinism is guaranteed by a strict
// (time, sequence) ordering of events, so two runs with the same seed produce
// identical results.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point on (or a span of) the virtual timeline, in picoseconds.
// Picosecond resolution lets CPU-cycle costs (≈357 ps at 2.8 GHz) round-trip
// through the clock without accumulating error over billions of events.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromNanos converts a nanosecond count to a Time.
func FromNanos(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// FromMicros converts a microsecond count to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// FromSeconds converts a second count to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant: earlier-scheduled events fire first.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// index within the heap, maintained by heap.Interface methods so that
	// cancellation can remove an event in O(log n).
	index int
	// gen is bumped every time the event struct is recycled through the
	// engine's free list, so a Timer holding a stale *event (one that fired
	// or was cancelled, then reused for an unrelated callback) can detect
	// the reuse and refuse to cancel someone else's event.
	gen uint64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated components run on the engine's goroutine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	// processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// free is a per-engine free list of event structs. The engine is
	// single-goroutine by contract, so a plain slice (no sync.Pool locking)
	// makes steady-state scheduling allocation-free: every fired or
	// cancelled event returns here and the next At reuses it.
	free []*event
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer identifies a scheduled event so it can be cancelled. The zero Timer
// is invalid. The gen snapshot ties the Timer to one particular use of the
// (recycled) event struct.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint64
}

// Cancel removes the pending event. It reports whether the event was still
// pending (false when it already fired or was cancelled before).
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.index < 0 || t.ev.gen != t.gen {
		return false
	}
	heap.Remove(&t.e.events, t.ev.index)
	t.e.recycle(t.ev)
	return true
}

// Pending reports whether the timer's event has not yet fired or been
// cancelled.
func (t Timer) Pending() bool { return t.ev != nil && t.ev.index >= 0 && t.ev.gen == t.gen }

// recycle returns a fired or cancelled event to the free list. Bumping gen
// invalidates every Timer that still points at the struct; dropping fn
// releases the closure (and whatever it captures) immediately instead of
// pinning it until the struct is reused.
func (e *Engine) recycle(ev *event) {
	ev.index = -1
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a modelling bug, and silently reordering time would
// corrupt every downstream measurement.
func (e *Engine) At(at Time, fn func()) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.events, ev)
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
// Pending events stay queued and a later Run call resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until no events remain or Stop is
// called. It returns the time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.processed++
		fn := ev.fn
		// Recycle before firing: fn may schedule new events, and letting it
		// reuse this struct immediately keeps the free list at its
		// steady-state size.
		e.recycle(ev)
		fn()
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		e.processed++
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
