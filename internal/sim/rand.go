package sim

// Rand is a small, seeded, allocation-free PRNG (SplitMix64). The fault
// model and soak harness use it instead of math/rand or wall-clock entropy
// so that a scenario is fully determined by its seed: the same seed always
// produces the same drop/reorder/corruption schedule, which is what makes
// a fault-injection failure replayable.
//
// SplitMix64 passes BigCrush, has a full 2^64 period, and — unlike a
// shared math/rand source — every consumer can Fork its own independent
// stream so adding a draw in one component never perturbs another.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds, including
// adjacent integers, yield statistically independent streams.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Duration returns a uniform Time in [0, max). A non-positive max returns 0.
func (r *Rand) Duration(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(r.Uint64() % uint64(max))
}

// Fork derives an independent generator from this one's seed and a label.
// Two forks of the same parent with different labels never correlate, so
// e.g. the two directions of a faulty link can consume draws at different
// rates without affecting each other.
func (r *Rand) Fork(label uint64) *Rand {
	// Mix the label through one SplitMix64 round so Fork(0) and Fork(1)
	// land far apart in the sequence.
	z := r.state + 0x9E3779B97F4A7C15*(label+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return &Rand{state: z ^ (z >> 31)}
}
