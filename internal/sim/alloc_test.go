package sim

import "testing"

// The DES hot loop must not allocate in steady state: every experiment
// schedules millions of events, and per-event garbage was the dominant
// host-side cost before the engine grew its free list. These pins fail the
// suite if scheduling, dispatch, or the core's completion path regresses
// to allocating again.

// TestScheduleDispatchAllocFree pins 0 allocs/event on the steady-state
// schedule→fire loop: after warmup the heap slice, the event free list,
// and the (pre-created) callback are all reused.
func TestScheduleDispatchAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the free list and heap capacity.
	for i := 0; i < 64; i++ {
		e.After(Nanosecond, fn)
	}
	e.Run()
	const perRun = 100
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < perRun; i++ {
			e.After(Time(i)*Nanosecond, fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+dispatch allocated %.2f allocs per %d events (want 0)", allocs, perRun)
	}
}

// TestCancelRecyclesAllocFree pins the cancel path: schedule + cancel must
// recycle the event without garbage.
func TestCancelRecyclesAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 8; i++ {
		e.After(Nanosecond, fn).Cancel()
	}
	allocs := testing.AllocsPerRun(100, func() {
		tm := e.After(Nanosecond, fn)
		if !tm.Cancel() {
			t.Fatal("cancel failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocated %.2f allocs (want 0)", allocs)
	}
}

// TestCoreJobAllocFree pins the core's dispatch/completion path: submitting
// and serving a pre-built job must not allocate (the completion callback is
// bound once at NewCore, not per job).
func TestCoreJobAllocFree(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	job := Job{Run: func() Time { return Nanosecond }}
	// Warm queue capacity and the event free list.
	for i := 0; i < 8; i++ {
		c.Submit(job)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		c.Submit(job)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("core submit+serve allocated %.2f allocs per job (want 0)", allocs)
	}
}

// TestTimerStaleAfterRecycle verifies the generation guard: once an event
// fires and its struct is recycled into a new event, Timers for the old use
// must read as spent and must not cancel the new event.
func TestTimerStaleAfterRecycle(t *testing.T) {
	e := NewEngine()
	fired := 0
	t1 := e.After(Nanosecond, func() { fired++ })
	e.Run()
	if t1.Pending() {
		t.Fatal("fired timer still pending")
	}
	if t1.Cancel() {
		t.Fatal("fired timer cancelled")
	}
	// The recycled struct now backs a different event.
	t2 := e.After(Nanosecond, func() { fired++ })
	if t1.Cancel() {
		t.Fatal("stale timer cancelled the recycled event")
	}
	if !t2.Pending() {
		t.Fatal("new event lost")
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
}

// BenchmarkEngineScheduleDispatch measures the raw event-loop cost: one
// schedule + one dispatch per iteration.
func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Nanosecond, fn)
		e.Run()
	}
}

// BenchmarkCoreServeJob measures submit→serve→complete for one job.
func BenchmarkCoreServeJob(b *testing.B) {
	e := NewEngine()
	c := NewCore(e)
	job := Job{Run: func() Time { return Nanosecond }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Submit(job)
		e.Run()
	}
}
