package sim

import "testing"

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	if NewRand(42).Uint64() == NewRand(43).Uint64() {
		t.Error("adjacent seeds produced identical first draw")
	}
}

func TestRandForkIndependence(t *testing.T) {
	root := NewRand(7)
	f0, f1 := root.Fork(0), root.Fork(1)
	// Forks must differ from each other and drawing from one must not
	// perturb the other (each fork owns its state).
	want := NewRand(7).Fork(1).Uint64()
	for i := 0; i < 100; i++ {
		f0.Uint64()
	}
	if f1.Uint64() != want {
		t.Error("draining fork 0 perturbed fork 1")
	}
	same := 0
	x, y := NewRand(7).Fork(0), NewRand(7).Fork(1)
	for i := 0; i < 100; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("forks 0 and 1 collided on %d/100 draws", same)
	}
}

func TestRandBounds(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn(7) = %d", n)
		}
		if d := r.Duration(5 * Microsecond); d < 0 || d >= 5*Microsecond {
			t.Fatalf("Duration = %v out of [0,5us)", d)
		}
	}
	if r.Duration(0) != 0 {
		t.Error("Duration(0) nonzero")
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandFloat64Spread(t *testing.T) {
	// Coarse uniformity: each decile should get a plausible share.
	r := NewRand(123)
	var decile [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		decile[int(r.Float64()*10)]++
	}
	for i, c := range decile {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("decile %d has %d samples, want ~%d", i, c, n/10)
		}
	}
}
