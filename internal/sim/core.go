package sim

// Job is a unit of work submitted to a Core. Run executes when the core
// picks the job up and returns the service time the job occupies the core
// for; Done (optional) fires when that service time elapses; Start
// (optional) fires when the core picks the job up, just before Run, with
// the time the job was submitted — so queue wait (pickup − submission) is
// observable per job, which the per-request tracer needs.
type Job struct {
	Run   func() Time
	Done  func()
	Start func(enqueuedAt Time)
	// ExternalWait marks a job whose submitter accounts queue waits itself
	// through AccountWait — a batch drainer serving several requests per
	// dispatch, where the job-level wait (pickup − submission of the
	// drainer) describes none of the requests inside the batch. Dispatch
	// skips the built-in QueueWait/MaxQueueWait accounting for such jobs so
	// per-request waits are recorded exactly once.
	ExternalWait bool
}

// queuedJob pairs a job with its submission time so queue wait can be
// accounted when the job is dispatched.
type queuedJob struct {
	job Job
	enq Time
}

// Core models a single CPU core as a FIFO queueing server. Work arrives via
// Submit; the core serves one job at a time, charging the virtual clock the
// service time each job's Run reports. This mirrors the paper's single-core
// server setup (§6.1): a busy-spinning core that handles one packet at a
// time, with overload visible as queue growth (rising tail latency) or RX
// drops.
type Core struct {
	eng *Engine
	// q[qh:] holds the waiting jobs: dispatch advances qh instead of
	// shifting the slice (the shift made deep overload queues O(n²) — one
	// typedslicecopy of the whole backlog per job served). Spent entries
	// are zeroed as they are passed so the backing array pins nothing.
	q    []queuedJob
	qh   int
	busy bool
	// busySince marks the start of the current busy period; BusyTime only
	// accumulates completed busy periods, so mid-period accounting comes
	// from busyElapsed instead of pre-crediting a job's full service time.
	busySince Time

	// MaxQueue bounds the number of waiting jobs; submissions beyond it are
	// dropped (counted in Dropped). Zero means unbounded. A bound models the
	// finite RX descriptor ring: under overload a kernel-bypass server drops
	// packets rather than queueing forever.
	MaxQueue int

	// Statistics.
	BusyTime Time // completed busy periods only; see Utilization
	JobsDone uint64
	Dropped  uint64
	// QueueWait accumulates submission→dispatch wait across all dispatched
	// jobs; MaxQueueWait is the worst single wait. Together with Job.Start
	// these make queue delay a first-class, per-job observable rather than
	// something inferred from tail latency.
	QueueWait    Time
	MaxQueueWait Time

	// curDone holds the Done hook of the job in service. The core serves one
	// job at a time, so a single slot (plus the one pre-bound onDone closure
	// below) replaces the per-job completion closure dispatch used to
	// allocate — the dominant per-job allocation on the hot path.
	curDone func()
	onDone  func()
}

// NewCore returns an idle core bound to eng.
func NewCore(eng *Engine) *Core {
	c := &Core{eng: eng}
	c.onDone = c.complete
	return c
}

// Submit enqueues a job. It reports false if the queue bound rejected it.
func (c *Core) Submit(j Job) bool {
	if c.MaxQueue > 0 && len(c.q)-c.qh >= c.MaxQueue {
		c.Dropped++
		return false
	}
	c.q = append(c.q, queuedJob{job: j, enq: c.eng.Now()})
	if !c.busy {
		c.busy = true
		c.busySince = c.eng.Now()
		c.dispatch()
	}
	return true
}

// QueueLen returns the number of jobs waiting (not including the one in
// service).
func (c *Core) QueueLen() int { return len(c.q) - c.qh }

// AccountWait records the queue wait of one request served inside a batch
// job (submitted with ExternalWait): the time from the request's arrival to
// the batch dispatch, plus the service of the batch members ahead of it.
// Without this, waits for requests 2..B of a B-request batch would be
// invisible in QueueWait/MaxQueueWait and the stats would understate
// queueing exactly when batching creates it.
func (c *Core) AccountWait(w Time) {
	c.QueueWait += w
	if w > c.MaxQueueWait {
		c.MaxQueueWait = w
	}
}

// NoteDrop counts a request dropped by a queue bound enforced outside the
// core (the batched path's RX ring), so Dropped stays the single drop
// counter whichever datapath is active.
func (c *Core) NoteDrop() { c.Dropped++ }

// Busy reports whether a job is currently in service.
func (c *Core) Busy() bool { return c.busy }

// busyElapsed is the busy time actually elapsed by now: completed busy
// periods plus the in-progress one. Unlike the pre-fix accounting (which
// credited a job's full service time at dispatch), this never counts time
// that has not passed yet.
func (c *Core) busyElapsed() Time {
	b := c.BusyTime
	if c.busy {
		b += c.eng.Now() - c.busySince
	}
	return b
}

// Utilization returns the fraction of time the core has been busy since the
// start of the simulation. It is exact at every instant — sampling mid-job
// counts only the portion of the job already served, so the value can never
// overshoot 1 and never decreases while the core stays busy.
func (c *Core) Utilization() float64 {
	now := c.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(c.busyElapsed()) / float64(now)
}

func (c *Core) dispatch() {
	if c.qh == len(c.q) {
		// Busy period over: bank it and rewind the drained queue so the
		// backing array is reused from the front.
		c.q, c.qh = c.q[:0], 0
		c.BusyTime += c.eng.Now() - c.busySince
		c.busy = false
		return
	}
	qj := c.q[c.qh]
	c.q[c.qh] = queuedJob{}
	c.qh++
	if c.qh == len(c.q) {
		c.q, c.qh = c.q[:0], 0
	}

	if !qj.job.ExternalWait {
		wait := c.eng.Now() - qj.enq
		c.QueueWait += wait
		if wait > c.MaxQueueWait {
			c.MaxQueueWait = wait
		}
	}
	if qj.job.Start != nil {
		qj.job.Start(qj.enq)
	}
	d := qj.job.Run()
	if d < 0 {
		d = 0
	}
	c.curDone = qj.job.Done
	c.eng.After(d, c.onDone)
}

// complete fires when the in-service job's service time elapses.
func (c *Core) complete() {
	c.JobsDone++
	done := c.curDone
	c.curDone = nil
	if done != nil {
		done()
	}
	c.dispatch()
}
