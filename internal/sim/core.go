package sim

// Job is a unit of work submitted to a Core. Run executes when the core
// picks the job up and returns the service time the job occupies the core
// for; Done (optional) fires when that service time elapses.
type Job struct {
	Run  func() Time
	Done func()
}

// Core models a single CPU core as a FIFO queueing server. Work arrives via
// Submit; the core serves one job at a time, charging the virtual clock the
// service time each job's Run reports. This mirrors the paper's single-core
// server setup (§6.1): a busy-spinning core that handles one packet at a
// time, with overload visible as queue growth (rising tail latency) or RX
// drops.
type Core struct {
	eng  *Engine
	q    []Job
	busy bool

	// MaxQueue bounds the number of waiting jobs; submissions beyond it are
	// dropped (counted in Dropped). Zero means unbounded. A bound models the
	// finite RX descriptor ring: under overload a kernel-bypass server drops
	// packets rather than queueing forever.
	MaxQueue int

	// Statistics.
	BusyTime Time
	JobsDone uint64
	Dropped  uint64
}

// NewCore returns an idle core bound to eng.
func NewCore(eng *Engine) *Core {
	return &Core{eng: eng}
}

// Submit enqueues a job. It reports false if the queue bound rejected it.
func (c *Core) Submit(j Job) bool {
	if c.MaxQueue > 0 && len(c.q) >= c.MaxQueue {
		c.Dropped++
		return false
	}
	c.q = append(c.q, j)
	if !c.busy {
		c.dispatch()
	}
	return true
}

// QueueLen returns the number of jobs waiting (not including the one in
// service).
func (c *Core) QueueLen() int { return len(c.q) }

// Busy reports whether a job is currently in service.
func (c *Core) Busy() bool { return c.busy }

// Utilization returns the fraction of time the core has been busy since the
// start of the simulation.
func (c *Core) Utilization() float64 {
	if c.eng.Now() == 0 {
		return 0
	}
	return float64(c.BusyTime) / float64(c.eng.Now())
}

func (c *Core) dispatch() {
	if len(c.q) == 0 {
		c.busy = false
		return
	}
	c.busy = true
	j := c.q[0]
	// Shift rather than reslice forever so the backing array is reused.
	copy(c.q, c.q[1:])
	c.q = c.q[:len(c.q)-1]

	d := j.Run()
	if d < 0 {
		d = 0
	}
	c.BusyTime += d
	c.eng.After(d, func() {
		c.JobsDone++
		if j.Done != nil {
			j.Done()
		}
		c.dispatch()
	})
}
