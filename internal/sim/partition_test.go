package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// ppNode is one end of the ping-pong fixture. Its log is appended only by
// events executing on its own engine, so partitioned runs write it
// race-free and the content is a pure function of the event order.
type ppNode struct {
	eng *Engine
	log []string
}

// pingPong wires two nodes exchanging messages over a fixed cross-node
// delay: two independent streams ("ab" starting at a, "ba" starting at b)
// bounce back and forth for the given number of hops. Works identically
// with both nodes on one plain engine (AtFrom degenerates to At) or on two
// shards of a PartitionedEngine.
func pingPong(a, b *ppNode, delay Time, hops int) {
	var send func(from, to *ppNode, name string, n int)
	send = func(from, to *ppNode, name string, n int) {
		if n >= hops {
			return
		}
		to.eng.AtFrom(from.eng, from.eng.Now()+delay, func() {
			to.log = append(to.log, fmt.Sprintf("%s@%v#%d", name, to.eng.Now(), n))
			send(to, from, name, n+1)
		})
	}
	a.eng.At(0, func() { send(a, b, "ab", 0) })
	b.eng.At(0, func() { send(b, a, "ba", 0) })
}

// serialPingPong replays the identical exchange with both nodes on one
// plain engine and returns the two logs.
func serialPingPong(delay Time, hops int) (alog, blog []string) {
	e := NewEngine()
	a, b := &ppNode{eng: e}, &ppNode{eng: e}
	pingPong(a, b, delay, hops)
	e.Run()
	return a.log, b.log
}

func diffLogs(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s event %d: got %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestPartitionedMatchesSerial pins the core contract: a partitioned
// exchange executes the same events at the same times in the same order as
// the identical serial schedule.
func TestPartitionedMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const delay, hops = 500 * Nanosecond, 50
	p := NewPartitionedEngine(delay)
	a, b := &ppNode{eng: p.NewShard()}, &ppNode{eng: p.NewShard()}
	pingPong(a, b, delay, hops)
	end := p.Run()

	wantA, wantB := serialPingPong(delay, hops)
	diffLogs(t, "node a", a.log, wantA)
	diffLogs(t, "node b", b.log, wantB)
	if wantEnd := Time(hops) * delay; end != wantEnd {
		t.Errorf("Run returned %v, want %v", end, wantEnd)
	}
	if p.Processed() == 0 || p.Pending() != 0 {
		t.Errorf("processed=%d pending=%d after full run", p.Processed(), p.Pending())
	}
}

// TestPartitionedDeterministicAcrossWidths runs the same topology single-
// threaded and wide; the logs must be identical because event order is
// fixed by the (at, schedAt, src, seq) key, not by goroutine scheduling.
func TestPartitionedDeterministicAcrossWidths(t *testing.T) {
	const delay, hops = 300 * Nanosecond, 40
	run := func(procs int) ([]string, []string) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		p := NewPartitionedEngine(delay)
		a, b := &ppNode{eng: p.NewShard()}, &ppNode{eng: p.NewShard()}
		pingPong(a, b, delay, hops)
		p.Run()
		return a.log, b.log
	}
	a1, b1 := run(1)
	a8, b8 := run(8)
	diffLogs(t, "node a", a8, a1)
	diffLogs(t, "node b", b8, b1)
}

// TestPartitionedRunUntil mirrors the serial RunUntil contract on the
// coordinator: inclusive deadline, clocks advanced to it, later events kept.
func TestPartitionedRunUntil(t *testing.T) {
	const delay = 1 * Microsecond
	p := NewPartitionedEngine(delay)
	a, b := p.NewShard(), p.NewShard()
	var fired []string
	a.At(2*Microsecond, func() { fired = append(fired, "a2") })
	b.At(3*Microsecond, func() {
		fired = append(fired, "b3")
		a.AtFrom(b, b.Now()+delay, func() { fired = append(fired, "a4") })
	})
	b.At(5*Microsecond, func() { fired = append(fired, "b5") })

	// Deadline exactly on the cross event: it must execute (inclusive).
	if got := p.RunUntil(4 * Microsecond); got != 4*Microsecond {
		t.Fatalf("RunUntil returned %v, want 4µs", got)
	}
	if want := []string{"a2", "b3", "a4"}; fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if a.Now() != 4*Microsecond || b.Now() != 4*Microsecond {
		t.Errorf("shard clocks %v/%v, want both at the deadline", a.Now(), b.Now())
	}
	if p.Pending() != 1 {
		t.Fatalf("pending %d, want the 5µs event", p.Pending())
	}
	p.Run()
	if fired[len(fired)-1] != "b5" {
		t.Errorf("resumed run did not execute the queued event: %v", fired)
	}
}

// TestPartitionedStickyStop mirrors the serial sticky-Stop contract: a stop
// issued before Run is observed by it (nothing executes), consumed by it,
// and a second Run proceeds normally.
func TestPartitionedStickyStop(t *testing.T) {
	p := NewPartitionedEngine(Microsecond)
	a := p.NewShard()
	ran := 0
	a.At(Microsecond, func() { ran++ })

	p.Stop()
	p.Run()
	if ran != 0 {
		t.Fatalf("pre-run Stop was lost: %d events executed", ran)
	}
	p.Run()
	if ran != 1 {
		t.Fatalf("stop was not consumed: second run executed %d events", ran)
	}
}

// TestShardStopStopsCoordinator pins Stop's escalation: a component calling
// Stop on its own shard mid-run ends the whole partitioned run at the
// round's barrier, and RunUntil then leaves clocks un-jumped.
func TestShardStopStopsCoordinator(t *testing.T) {
	const delay = 1 * Microsecond
	p := NewPartitionedEngine(delay)
	a, b := p.NewShard(), p.NewShard()
	var late int
	a.At(Microsecond, func() { a.Stop() })
	b.At(10*Microsecond, func() { late++ })

	p.RunUntil(20 * Microsecond)
	if late != 0 {
		t.Fatalf("run continued past a shard Stop: late event fired")
	}
	if p.Now() >= 10*Microsecond {
		t.Errorf("coordinator clock %v jumped toward the deadline despite Stop", p.Now())
	}
	// The stop is consumed; a resumed run finishes the queue.
	p.RunUntil(20 * Microsecond)
	if late != 1 || p.Now() != 20*Microsecond {
		t.Errorf("resume after Stop: late=%d now=%v, want 1 and 20µs", late, p.Now())
	}
}

// TestLookaheadViolationPanics guards the conservative contract: a
// cross-shard event landing closer than the lookahead (here: in the past
// of a shard that already advanced) must panic loudly, not corrupt time.
func TestLookaheadViolationPanics(t *testing.T) {
	p := NewPartitionedEngine(10 * Microsecond) // lookahead wider than the real link
	a, b := p.NewShard(), p.NewShard()
	a.At(0, func() {
		// Claims a 1µs link inside a 10µs-lookahead partition: b may already
		// be past 1µs when the round ends.
		b.AtFrom(a, a.Now()+Microsecond, func() {})
	})
	b.At(2*Microsecond, func() {})
	b.At(4*Microsecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	p.Run()
}

// TestAtFromOutsidePartitionIsAt pins the degenerate cases: same engine or
// plain engines — AtFrom must behave exactly like At so component code can
// use it unconditionally.
func TestAtFromOutsidePartitionIsAt(t *testing.T) {
	e1, e2 := NewEngine(), NewEngine()
	ran := 0
	e1.AtFrom(e1, Microsecond, func() { ran++ })   // same engine
	e1.AtFrom(e2, 2*Microsecond, func() { ran++ }) // both plain
	e1.Run()
	if ran != 2 {
		t.Fatalf("AtFrom outside a partition executed %d of 2 events", ran)
	}
	if e1.Pending() != 0 {
		t.Errorf("events left in heap: %d", e1.Pending())
	}
}

// TestSingleShardBitIdentical runs a nontrivial self-scheduling workload on
// a lone shard and on a plain engine; clocks, processed counts, and the
// trace must agree exactly.
func TestSingleShardBitIdentical(t *testing.T) {
	workload := func(e *Engine) *[]Time {
		trace := &[]Time{}
		var step func(n int)
		step = func(n int) {
			if n >= 64 {
				return
			}
			e.After(Time(100+n*7)*Nanosecond, func() {
				*trace = append(*trace, e.Now())
				step(n + 1)
			})
		}
		step(0)
		return trace
	}

	plain := NewEngine()
	wantTrace := workload(plain)
	wantEnd := plain.Run()

	p := NewPartitionedEngine(Microsecond)
	s := p.NewShard()
	gotTrace := workload(s)
	gotEnd := p.Run()

	if gotEnd != wantEnd {
		t.Fatalf("end clock %v, want %v", gotEnd, wantEnd)
	}
	if p.Processed() != plain.Processed() {
		t.Fatalf("processed %d, want %d", p.Processed(), plain.Processed())
	}
	if fmt.Sprint(*gotTrace) != fmt.Sprint(*wantTrace) {
		t.Fatalf("traces differ:\nshard: %v\nplain: %v", *gotTrace, *wantTrace)
	}
}
