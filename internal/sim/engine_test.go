package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromNanos(1).Nanoseconds(); got != 1 {
		t.Errorf("FromNanos(1).Nanoseconds() = %v, want 1", got)
	}
	if got := FromMicros(2.5); got != 2500*Nanosecond {
		t.Errorf("FromMicros(2.5) = %v, want 2500ns", got)
	}
	if got := FromSeconds(1); got != Second {
		t.Errorf("FromSeconds(1) = %v, want %v", got, Second)
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Error("unit ladder broken")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{3 * Microsecond, "3.000us"},
		{2 * Millisecond, "2.000ms"},
		{Second, "1.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("Run returned %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v", order)
	}
}

func TestEngineTieBreakBySubmission(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of submission order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("nested schedule hits = %v, want [10 15]", hits)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	now := e.RunUntil(25)
	if now != 25 {
		t.Errorf("RunUntil returned %v, want 25", now)
	}
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("after resume fired %v, want all 4", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, func() { count++; e.Stop() })
	e.At(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (stopped after first event)", count)
	}
	e.Run()
	if count != 2 {
		t.Errorf("count = %d after resume, want 2", count)
	}
}

// TestStopStickyBetweenRuns is the regression test for the lost-Stop bug:
// Run/RunUntil used to reset the stopped flag on entry, so a Stop issued
// while the engine was idle (harness teardown, a fault plan arming between
// windows) was silently dropped and the next run executed everything.
func TestStopStickyBetweenRuns(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, func() { count++ })

	e.Stop() // engine not running: must stick until the next run observes it
	e.Run()
	if count != 0 {
		t.Fatalf("pre-run Stop was lost: %d events executed", count)
	}
	// The observed stop is consumed; the run after it proceeds normally.
	e.Run()
	if count != 1 {
		t.Fatalf("stop was not consumed: resumed run executed %d events, want 1", count)
	}
}

// TestStopStickyBeforeRunUntil is the RunUntil half of the regression: the
// pending stop must both suppress execution and keep the clock from
// jumping to the deadline.
func TestStopStickyBeforeRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, func() { count++ })
	e.Stop()
	if now := e.RunUntil(100); now != 0 || count != 0 {
		t.Fatalf("pre-run Stop lost by RunUntil: now=%v count=%d, want 0 and 0", now, count)
	}
	if now := e.RunUntil(100); now != 100 || count != 1 {
		t.Fatalf("resume after Stop: now=%v count=%d, want 100 and 1", now, count)
	}
}

// TestRunUntilDeadlineInclusive pins the boundary: an event scheduled
// exactly at the deadline executes in this run, not the next.
func TestRunUntilDeadlineInclusive(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(25, func() { fired = append(fired, Time(25)) })
	e.At(26, func() { fired = append(fired, Time(26)) })
	if now := e.RunUntil(25); now != 25 {
		t.Errorf("RunUntil returned %v, want 25", now)
	}
	if len(fired) != 1 || fired[0] != 25 {
		t.Errorf("fired %v, want exactly the deadline event", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want the post-deadline event", e.Pending())
	}
}

// TestRunUntilStopMidRunKeepsClock: a Stop fired by an event inside a
// RunUntil window must leave the clock at that event, not jump it to the
// deadline — the stopper's view of "now" is the whole point of stopping.
func TestRunUntilStopMidRunKeepsClock(t *testing.T) {
	e := NewEngine()
	e.At(10, func() { e.Stop() })
	e.At(20, func() {})
	if now := e.RunUntil(100); now != 10 {
		t.Errorf("RunUntil returned %v after mid-run Stop, want 10", now)
	}
	if e.Now() != 10 {
		t.Errorf("clock %v, want pinned at the stopping event", e.Now())
	}
	if now := e.RunUntil(100); now != 100 || e.Pending() != 0 {
		t.Errorf("resume: now=%v pending=%d, want 100 and 0", now, e.Pending())
	}
}

// TestRunUntilPastDeadline: a deadline at or before Now executes nothing
// and never moves the clock backwards.
func TestRunUntilPastDeadline(t *testing.T) {
	e := NewEngine()
	e.At(50, func() {})
	e.Run()
	if e.Now() != 50 {
		t.Fatalf("setup: clock %v, want 50", e.Now())
	}
	count := 0
	e.At(60, func() { count++ })
	if now := e.RunUntil(40); now != 50 || count != 0 {
		t.Errorf("RunUntil(40) from 50: now=%v count=%d, want clock held at 50 and nothing run", now, count)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Pending() {
		t.Error("timer should be pending before Run")
	}
	if !tm.Cancel() {
		t.Error("first Cancel should succeed")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(10, func() {})
	e.Run()
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
	if tm.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestTimerCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	var timers []Timer
	for i := 0; i < 20; i++ {
		i := i
		timers = append(timers, e.At(Time(i*10), func() { fired = append(fired, i) }))
	}
	// Cancel every third timer.
	for i := 0; i < 20; i += 3 {
		timers[i].Cancel()
	}
	e.Run()
	for _, v := range fired {
		if v%3 == 0 {
			t.Errorf("cancelled event %d fired", v)
		}
	}
	if len(fired) != 13 {
		t.Errorf("fired %d events, want 13", len(fired))
	}
	// Remaining events must still fire in order.
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Errorf("out of order after cancellations: %v", fired)
		}
	}
}

// Property: for any set of non-negative delays, events fire in nondecreasing
// time order and the engine processes exactly one event per schedule.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			e.After(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return e.Processed() == uint64(len(delays))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoreFIFOAndBusyTime(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	var done []int
	for i := 0; i < 3; i++ {
		i := i
		c.Submit(Job{
			Run:  func() Time { return 100 },
			Done: func() { done = append(done, i) },
		})
	}
	e.Run()
	if len(done) != 3 || done[0] != 0 || done[1] != 1 || done[2] != 2 {
		t.Errorf("completion order %v, want [0 1 2]", done)
	}
	if c.BusyTime != 300 {
		t.Errorf("BusyTime = %v, want 300", c.BusyTime)
	}
	if c.JobsDone != 3 {
		t.Errorf("JobsDone = %d, want 3", c.JobsDone)
	}
	if e.Now() != 300 {
		t.Errorf("clock = %v, want 300 (serialized service)", e.Now())
	}
}

func TestCoreQueueBoundDrops(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	c.MaxQueue = 2
	accepted := 0
	// First Submit starts service immediately (not queued); next two queue;
	// the rest drop.
	for i := 0; i < 6; i++ {
		if c.Submit(Job{Run: func() Time { return 10 }}) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Errorf("accepted %d, want 3 (1 in service + 2 queued)", accepted)
	}
	if c.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", c.Dropped)
	}
	e.Run()
	if c.JobsDone != 3 {
		t.Errorf("JobsDone = %d, want 3", c.JobsDone)
	}
}

func TestCoreWorkArrivingWhileBusy(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	var completions []Time
	e.At(0, func() {
		c.Submit(Job{Run: func() Time { return 100 }, Done: func() { completions = append(completions, e.Now()) }})
	})
	// Arrives mid-service of the first job; must wait.
	e.At(50, func() {
		c.Submit(Job{Run: func() Time { return 100 }, Done: func() { completions = append(completions, e.Now()) }})
	})
	e.Run()
	if len(completions) != 2 || completions[0] != 100 || completions[1] != 200 {
		t.Errorf("completions = %v, want [100 200]", completions)
	}
	if got := c.Utilization(); got != 1.0 {
		t.Errorf("utilization = %v, want 1.0", got)
	}
}

func TestCoreNegativeServiceClamped(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	c.Submit(Job{Run: func() Time { return -5 }})
	e.Run()
	if c.BusyTime != 0 {
		t.Errorf("BusyTime = %v, want 0 for clamped negative service", c.BusyTime)
	}
}
