package sim

import "testing"

// Regression: Utilization sampled mid-job must count only the portion of the
// job already served. The pre-fix accounting credited the whole service time
// at dispatch, so a core 10 ns into a 1 µs job at t=20 ns reported
// utilization 50 — not a fraction at all.
func TestUtilizationNeverOvershoots(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	e.At(10, func() {
		c.Submit(Job{Run: func() Time { return 1000 }})
	})
	samples := []Time{5, 20, 500, 1010, 2000}
	for _, at := range samples {
		at := at
		e.At(at, func() {
			u := c.Utilization()
			if u < 0 || u > 1 {
				t.Errorf("Utilization() at t=%v = %v, want within [0,1]", at, u)
			}
		})
	}
	e.Run()
	// After the run: busy 10→1010 out of 2000 observed ns.
	if got := c.BusyTime; got != 1000 {
		t.Errorf("BusyTime = %v, want 1000", got)
	}
}

// Utilization is monotone non-decreasing while the core stays busy, and
// exact at every sampled instant.
func TestUtilizationExactMidJob(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	c.Submit(Job{Run: func() Time { return 100 }})
	e.At(50, func() {
		if u := c.Utilization(); u != 1.0 {
			t.Errorf("Utilization() halfway through the only job = %v, want 1.0", u)
		}
	})
	e.At(200, func() {
		if u := c.Utilization(); u != 0.5 {
			t.Errorf("Utilization() at t=200 after 100 busy = %v, want 0.5", u)
		}
	})
	e.Run()
}

// Job.Start reports the submission time at dispatch, making queue wait a
// per-job observable; QueueWait/MaxQueueWait aggregate it.
func TestQueueWaitObservable(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	var starts []Time // enqueuedAt values in dispatch order
	mk := func() Job {
		return Job{
			Start: func(enq Time) { starts = append(starts, enq) },
			Run:   func() Time { return 100 },
		}
	}
	e.At(0, func() { c.Submit(mk()) })  // dispatched at 0, wait 0
	e.At(10, func() { c.Submit(mk()) }) // dispatched at 100, wait 90
	e.At(20, func() { c.Submit(mk()) }) // dispatched at 200, wait 180
	e.Run()
	want := []Time{0, 10, 20}
	if len(starts) != len(want) {
		t.Fatalf("Start fired %d times, want %d", len(starts), len(want))
	}
	for i, enq := range starts {
		if enq != want[i] {
			t.Errorf("Start[%d] enqueuedAt = %v, want %v", i, enq, want[i])
		}
	}
	if c.QueueWait != 0+90+180 {
		t.Errorf("QueueWait = %v, want 270", c.QueueWait)
	}
	if c.MaxQueueWait != 180 {
		t.Errorf("MaxQueueWait = %v, want 180", c.MaxQueueWait)
	}
}

// ExternalWait jobs are excluded from the built-in wait accounting: the
// submitter records per-request waits itself through AccountWait, and the
// combination must never double-count.
func TestExternalWaitAccounting(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	// An ordinary job occupies the core so the drainer-style job queues.
	e.At(0, func() { c.Submit(Job{Run: func() Time { return 100 }}) })
	e.At(10, func() {
		c.Submit(Job{ExternalWait: true, Run: func() Time {
			// Dispatch at t=100; the submitter accounts two batch members.
			c.AccountWait(90)  // first member waited submission→dispatch
			c.AccountWait(140) // second waited that plus the first's service
			return 50
		}})
	})
	e.Run()
	// Only the explicit AccountWait calls may land in the stats: the
	// ordinary job waited 0, the drainer's own 90 ns job-level wait is
	// skipped (it describes no request).
	if c.QueueWait != 90+140 {
		t.Errorf("QueueWait = %v, want 230 (AccountWait only)", c.QueueWait)
	}
	if c.MaxQueueWait != 140 {
		t.Errorf("MaxQueueWait = %v, want 140", c.MaxQueueWait)
	}
	if c.JobsDone != 2 {
		t.Errorf("JobsDone = %v, want 2", c.JobsDone)
	}
}

// NoteDrop counts ring-bound drops enforced outside the core in the same
// Dropped counter Submit uses.
func TestNoteDrop(t *testing.T) {
	e := NewEngine()
	c := NewCore(e)
	c.MaxQueue = 1
	c.Submit(Job{Run: func() Time { return 100 }}) // in service
	c.Submit(Job{Run: func() Time { return 100 }}) // queued
	if ok := c.Submit(Job{Run: func() Time { return 100 }}); ok {
		t.Fatal("queue bound not enforced")
	}
	c.NoteDrop() // an external RX-ring drop
	if c.Dropped != 2 {
		t.Errorf("Dropped = %v, want 2 (one Submit rejection + one NoteDrop)", c.Dropped)
	}
	e.Run()
}
