package sim

import (
	"math/rand"
	"testing"
)

// TestRingOrderMatchesHeapKey pins the dispatcher's merge order: an event
// scheduled earlier for time t (heap, schedAt < t) must fire before an
// event scheduled at time t for time t (ring, schedAt == t), and ring
// entries fire in scheduling order — exactly the four-part key order the
// heap alone would have produced.
func TestRingOrderMatchesHeapKey(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() {
		// Scheduled at t=10 for t=10: ring entries.
		e.At(10, func() { got = append(got, 3) })
		e.At(10, func() { got = append(got, 4) })
		got = append(got, 1)
	})
	// Scheduled at t=0 for t=10: heap entry with smaller schedAt — must fire
	// between the first t=10 event and the ring entries it spawned.
	e.At(10, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestRingCancel covers tombstoning: cancelling a ring entry must stop it
// firing, keep Pending consistent, and not disturb later ring entries.
func TestRingCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	var cancelled bool
	e.At(5, func() {
		tm := e.At(5, func() { t.Error("cancelled ring event fired") })
		keep := e.At(5, func() { fired++ })
		if e.Pending() < 2 {
			t.Errorf("Pending() = %d before cancel, want ≥ 2", e.Pending())
		}
		cancelled = tm.Cancel()
		if tm.Pending() {
			t.Error("timer still pending after ring cancel")
		}
		if !keep.Pending() {
			t.Error("uncancelled ring timer lost")
		}
		if tm.Cancel() {
			t.Error("second Cancel returned true")
		}
	})
	e.Run()
	if !cancelled || fired != 1 {
		t.Fatalf("cancelled=%v fired=%d, want true/1", cancelled, fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
}

// TestRingRunUntilBoundary checks ring entries at exactly the RunUntil
// deadline fire (the deadline is inclusive), including entries created by
// an event executing at the deadline itself.
func TestRingRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(7, func() {
		e.At(7, func() { fired++ })
	})
	e.RunUntil(7)
	if fired != 1 {
		t.Fatalf("ring entry at the deadline fired %d times, want 1", fired)
	}
	// At(Now()) outside a run parks on the ring; the next run must fire it.
	e.At(e.Now(), func() { fired++ })
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("setup-time ring entry: fired %d, want 2", fired)
	}
}

// ringWorkload drives one engine through a seeded randomized mix of
// zero-delay scheduling (the ring path), positive-delay scheduling, and
// cancellations — every event fires more seeded work — and returns the
// fired-ID sequence plus the final clock.
func ringWorkload(e *Engine, seed int64) ([]int, Time) {
	rng := rand.New(rand.NewSource(seed))
	var fired []int
	var timers []Timer
	id := 0
	var step func(depth int)
	step = func(depth int) {
		if depth > 6 {
			return
		}
		n := rng.Intn(4)
		for k := 0; k < n; k++ {
			switch rng.Intn(6) {
			case 0, 1:
				myID := id
				id++
				timers = append(timers, e.At(e.Now(), func() { fired = append(fired, myID); step(depth + 1) }))
			case 2, 3:
				myID := id
				id++
				d := Time(1 + rng.Intn(20))
				timers = append(timers, e.At(e.Now()+d, func() { fired = append(fired, myID); step(depth + 1) }))
			case 4:
				if len(timers) > 0 {
					timers[rng.Intn(len(timers))].Cancel()
				}
			case 5:
				myID := id
				id++
				timers = append(timers, e.After(0, func() { fired = append(fired, myID); step(depth + 1) }))
			}
		}
	}
	for i := 0; i < 40; i++ {
		myID := id
		id++
		at := Time(rng.Intn(50))
		timers = append(timers, e.At(at, func() { fired = append(fired, myID); step(0) }))
	}
	end := e.Run()
	return fired, end
}

// TestRingRandomizedAgainstHeapOnly differences ring dispatch against the
// heap-only engine (noRing) over identically-seeded randomized workloads:
// the fired sequence, final clock, processed count, and pending count must
// match exactly — the ring is a mechanical fast path, not a reordering.
func TestRingRandomizedAgainstHeapOnly(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		ring := NewEngine()
		heapOnly := NewEngine()
		heapOnly.noRing = true
		gotFired, gotEnd := ringWorkload(ring, seed)
		wantFired, wantEnd := ringWorkload(heapOnly, seed)
		if gotEnd != wantEnd {
			t.Fatalf("seed %d: final clock %v, heap-only %v", seed, gotEnd, wantEnd)
		}
		if ring.Processed() != heapOnly.Processed() {
			t.Fatalf("seed %d: processed %d, heap-only %d", seed, ring.Processed(), heapOnly.Processed())
		}
		if len(gotFired) != len(wantFired) {
			t.Fatalf("seed %d: fired %d events, heap-only %d", seed, len(gotFired), len(wantFired))
		}
		for i := range wantFired {
			if gotFired[i] != wantFired[i] {
				t.Fatalf("seed %d: fired[%d] = %d, heap-only %d", seed, i, gotFired[i], wantFired[i])
			}
		}
		if ring.Pending() != heapOnly.Pending() {
			t.Fatalf("seed %d: pending %d, heap-only %d", seed, ring.Pending(), heapOnly.Pending())
		}
	}
}
