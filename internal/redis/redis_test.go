package redis

import (
	"bytes"
	"testing"

	"cornflakes/internal/baselines"
	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/kvstore"
	"cornflakes/internal/mem"
)

func newServer(mode Mode) (*Server, *costmodel.Meter) {
	alloc := mem.NewAllocator()
	meter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	store := kvstore.New(alloc, meter)
	return New(store, mode), meter
}

func respCmd(m *costmodel.Meter, args ...string) []byte {
	var bs [][]byte
	for _, a := range args {
		bs = append(bs, []byte(a))
	}
	return baselines.RESPEncodeCommand(m, bs...)
}

func parseReply(t *testing.T, m *costmodel.Meter, reply []byte) baselines.RESPValue {
	t.Helper()
	if len(reply) < 8 {
		t.Fatalf("reply missing id frame: %q", reply)
	}
	reply = reply[8:] // strip the request-id frame
	v, n, err := baselines.RESPParse(reply, m)
	if err != nil {
		t.Fatalf("reply parse: %v (%q)", err, reply)
	}
	if n != len(reply) {
		t.Fatalf("trailing bytes in reply %q", reply)
	}
	return v
}

func TestRESPGetSet(t *testing.T) {
	s, m := newServer(ModeRESP)
	reply, _, ok := s.HandleRESP(1, respCmd(m, "SET", "k1", "hello"))
	if !ok {
		t.Fatal("set failed")
	}
	v := parseReply(t, m, reply)
	if v.Type != baselines.RESPSimple || string(v.Str) != "OK" {
		t.Errorf("SET reply %+v", v)
	}
	reply, _, _ = s.HandleRESP(1, respCmd(m, "GET", "k1"))
	v = parseReply(t, m, reply)
	if v.Type != baselines.RESPBulk || string(v.Str) != "hello" {
		t.Errorf("GET reply %+v", v)
	}
	reply, _, _ = s.HandleRESP(1, respCmd(m, "GET", "missing"))
	if v = parseReply(t, m, reply); v.Type != baselines.RESPNull {
		t.Errorf("missing GET reply %+v", v)
	}
}

func TestRESPMGet(t *testing.T) {
	s, m := newServer(ModeRESP)
	s.HandleRESP(1, respCmd(m, "SET", "a", "va"))
	s.HandleRESP(1, respCmd(m, "SET", "b", "vb"))
	reply, _, _ := s.HandleRESP(1, respCmd(m, "MGET", "a", "nope", "b"))
	v := parseReply(t, m, reply)
	if v.Type != baselines.RESPArray || len(v.Array) != 3 {
		t.Fatalf("MGET reply %+v", v)
	}
	if string(v.Array[0].Str) != "va" || v.Array[1].Type != baselines.RESPNull || string(v.Array[2].Str) != "vb" {
		t.Errorf("MGET contents wrong: %+v", v.Array)
	}
}

func TestRESPListOps(t *testing.T) {
	s, m := newServer(ModeRESP)
	reply, _, _ := s.HandleRESP(1, respCmd(m, "RPUSH", "l", "one", "two"))
	if v := parseReply(t, m, reply); v.Type != baselines.RESPInteger || v.Int != 2 {
		t.Fatalf("RPUSH reply %+v", v)
	}
	reply, _, _ = s.HandleRESP(1, respCmd(m, "RPUSH", "l", "three"))
	if v := parseReply(t, m, reply); v.Int != 3 {
		t.Fatalf("second RPUSH reply %+v", v)
	}
	reply, _, _ = s.HandleRESP(1, respCmd(m, "LRANGE", "l", "0", "-1"))
	v := parseReply(t, m, reply)
	if v.Type != baselines.RESPArray || len(v.Array) != 3 {
		t.Fatalf("LRANGE reply %+v", v)
	}
	want := []string{"one", "two", "three"}
	for i, w := range want {
		if string(v.Array[i].Str) != w {
			t.Errorf("element %d = %q, want %q", i, v.Array[i].Str, w)
		}
	}
}

func TestRESPErrors(t *testing.T) {
	s, m := newServer(ModeRESP)
	cases := [][]byte{
		respCmd(m, "NOSUCHCMD", "x"),
		respCmd(m, "GET"),         // arity
		respCmd(m, "SET", "k"),    // arity
		respCmd(m, "LRANGE", "k"), // arity
		respCmd(m, "RPUSH", "k"),  // arity
	}
	for i, cmd := range cases {
		reply, _, ok := s.HandleRESP(1, cmd)
		if !ok {
			continue // rejected outright is fine
		}
		if v := parseReply(t, m, reply); v.Type != baselines.RESPError {
			t.Errorf("case %d: reply %+v, want error", i, v)
		}
	}
	if _, _, ok := s.HandleRESP(1, []byte("garbage")); ok {
		t.Error("garbage accepted")
	}
}

func TestCFGet(t *testing.T) {
	s, _ := newServer(ModeCornflakes)
	s.Store.Put([]byte("k"), bytes.Repeat([]byte{7}, 2048))
	r := s.HandleCF(CmdGet, CFRequest{ID: 9, Key: []byte("k")})
	if r.ID != 9 || len(r.Vals) != 1 || r.Vals[0] == nil || r.Vals[0].Len() != 2048 {
		t.Errorf("CF GET reply %+v", r)
	}
	r = s.HandleCF(CmdGet, CFRequest{ID: 10, Key: []byte("none")})
	if len(r.Vals) != 1 || r.Vals[0] != nil {
		t.Errorf("CF GET miss reply %+v", r)
	}
}

func TestCFMGetAndLRange(t *testing.T) {
	s, _ := newServer(ModeCornflakes)
	s.Store.Put([]byte("a"), []byte("va"))
	s.Store.Put([]byte("b"), []byte("vb"))
	s.Store.Put([]byte("list"), []byte("x"), []byte("y"))
	r := s.HandleCF(CmdMGet, CFRequest{ID: 1, Keys: [][]byte{[]byte("a"), []byte("b")}})
	if !r.Multi || len(r.Vals) != 2 {
		t.Errorf("CF MGET reply %+v", r)
	}
	r = s.HandleCF(CmdLRange, CFRequest{ID: 2, Key: []byte("list")})
	if !r.Multi || len(r.Vals) != 2 || string(r.Vals[1].Bytes()) != "y" {
		t.Errorf("CF LRANGE reply %+v", r)
	}
}

func TestCFSet(t *testing.T) {
	s, _ := newServer(ModeCornflakes)
	r := s.HandleCF(CmdSet, CFRequest{ID: 3, Key: []byte("k"), Val: []byte("v")})
	if !r.OK {
		t.Error("CF SET not acknowledged")
	}
	if got := s.Store.Get([]byte("k")); got == nil || string(got.Bytes()) != "v" {
		t.Error("CF SET did not store")
	}
}

func TestCFUnknownCommand(t *testing.T) {
	s, _ := newServer(ModeCornflakes)
	before := s.Errors
	s.HandleCF(99, CFRequest{ID: 1})
	if s.Errors != before+1 {
		t.Error("unknown command not counted as error")
	}
}

func TestRequestFraming(t *testing.T) {
	m := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	payload := EncodeRESPRequest(m, 0xABCD, []byte("GET"), []byte("key"))
	id, cmd, ok := DecodeRESPRequest(payload)
	if !ok || id != 0xABCD {
		t.Fatalf("framing broken: id=%x ok=%v", id, ok)
	}
	v, _, err := baselines.RESPParse(cmd, m)
	if err != nil || v.Type != baselines.RESPArray || string(v.Array[0].Str) != "GET" {
		t.Errorf("embedded command wrong: %+v, %v", v, err)
	}
	if _, _, ok := DecodeRESPRequest([]byte{1, 2}); ok {
		t.Error("short frame accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeRESP.String() != "Redis" || ModeCornflakes.String() != "Redis+Cornflakes" {
		t.Error("mode strings wrong")
	}
}
