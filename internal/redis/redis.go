// Package redis implements the mini-Redis of §6.2.2: a server speaking the
// Redis serialization protocol (RESP) whose GET / SET / MGET / LRANGE /
// RPUSH commands can alternatively use Cornflakes serialization. As in the
// paper, both variants run over the same simulated UDP kernel-bypass stack
// ("the Redis baseline was modified to use the Cornflakes networking
// stack"), so the only difference between the modes is serialization.
package redis

import (
	"strings"

	"cornflakes/internal/baselines"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/kvstore"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/wire"
)

// Mode selects the serialization backend.
type Mode int

const (
	// ModeRESP is Redis's handwritten serialization: every reply value is
	// copied into a contiguous client output buffer.
	ModeRESP Mode = iota
	// ModeCornflakes serializes replies as Cornflakes objects, zero-copying
	// values at or above the threshold.
	ModeCornflakes
)

func (m Mode) String() string {
	if m == ModeRESP {
		return "Redis"
	}
	return "Redis+Cornflakes"
}

// Per-command Redis application overheads. redisCmdCy models everything
// Redis does around serialization — command-table dispatch, dict access
// with incremental rehashing hooks, robj management, expiry checks, event
// loop bookkeeping — which dominates the per-request budget and is why the
// paper's serialization gains inside Redis (+8.8% on Twitter, +15–40% on
// 4 kB YCSB payloads) are an order of magnitude smaller than on the lean
// custom store. redisObjCy is the extra robj indirection per touched value.
const (
	redisCmdCy = 6000
	redisObjCy = 150
)

// Server is the mini-Redis. It is transport-agnostic: the driver package
// wires HandleRESP/HandleCF to the simulated UDP stack and serializes the
// Reply with the selected backend.
type Server struct {
	Store *kvstore.Store
	Mode  Mode

	// Wiring (set by New).
	meter *costmodel.Meter
	// w is the persistent client output buffer: like Redis, the reply
	// buffer is reused across requests, so it stays cache-warm.
	w *baselines.RESPWriter

	// Handlers installed by the driver glue (driver.RedisServer) call
	// HandleRESP / HandleCF.
	Handled, Errors uint64
}

// New builds a server over the given store.
func New(store *kvstore.Store, mode Mode) *Server {
	return &Server{Store: store, Mode: mode, meter: store.Meter, w: baselines.NewRESPWriter(store.Meter)}
}

// Reply is the server's answer: either a contiguous RESP buffer or a list
// of value buffers for Cornflakes serialization.
type Reply struct {
	// RESP reply (ModeRESP).
	Buf []byte
	Sim uint64
	// Cornflakes reply (ModeCornflakes): the id plus value buffers to
	// serialize (nil-able slots are omitted), and whether the reply is a
	// multi-value (GetM/LRANGE shaped) response.
	ID    uint64
	Vals  []*mem.Buf
	Multi bool
	OK    bool // write acknowledgement
}

// HandleRESP executes one RESP command and returns the framed reply
// bytes: the 8-byte request id followed by the RESP reply, composed in the
// server's persistent output buffer.
func (s *Server) HandleRESP(id uint64, cmd []byte) ([]byte, uint64, bool) {
	m := s.meter
	s.Handled++
	m.Charge(redisCmdCy)
	v, _, err := baselines.RESPParse(cmd, m)
	if err != nil || v.Type != baselines.RESPArray || len(v.Array) == 0 {
		s.Errors++
		return nil, 0, false
	}
	w := s.w
	w.Reset()
	var idb [8]byte
	wire.PutU64(idb[:], id)
	w.Buf = append(w.Buf, idb[:]...)
	name := strings.ToUpper(string(v.Array[0].Str))
	args := v.Array[1:]
	switch name {
	case "GET":
		if len(args) != 1 {
			w.WriteError("ERR wrong number of arguments for 'get'")
			break
		}
		val := s.Store.Get(args[0].Str)
		if val == nil {
			w.WriteNull()
			break
		}
		m.Charge(redisObjCy)
		// Redis serialization: the value is copied into the reply buffer.
		w.WriteBulk(val.Bytes(), val.SimAddr())
	case "SET":
		if len(args) != 2 {
			w.WriteError("ERR wrong number of arguments for 'set'")
			break
		}
		if s.Store.TryPut(args[0].Str, args[1].Str) != nil {
			// Same contract as real Redis at maxmemory: an explicit OOM
			// error, never a silent drop.
			w.WriteError("OOM command not allowed when used memory > 'maxmemory'")
			break
		}
		w.WriteSimple("OK")
	case "MGET":
		w.WriteArrayHeader(len(args))
		for _, a := range args {
			val := s.Store.Get(a.Str)
			if val == nil {
				w.WriteNull()
				continue
			}
			m.Charge(redisObjCy)
			w.WriteBulk(val.Bytes(), val.SimAddr())
		}
	case "LRANGE":
		if len(args) != 3 {
			w.WriteError("ERR wrong number of arguments for 'lrange'")
			break
		}
		vals := s.Store.GetList(args[0].Str)
		// The canonical workload asks for the whole list (0 .. -1).
		w.WriteArrayHeader(len(vals))
		for _, val := range vals {
			m.Charge(redisObjCy)
			w.WriteBulk(val.Bytes(), val.SimAddr())
		}
	case "RPUSH":
		if len(args) < 2 {
			w.WriteError("ERR wrong number of arguments for 'rpush'")
			break
		}
		items := make([][]byte, 0, len(args)-1)
		for _, a := range args[1:] {
			items = append(items, a.Str)
		}
		n, err := s.Store.TryAppend(args[0].Str, items...)
		if err != nil {
			w.WriteError("OOM command not allowed when used memory > 'maxmemory'")
			break
		}
		w.WriteInteger(int64(n))
	default:
		s.Errors++
		w.WriteError("ERR unknown command '" + name + "'")
	}
	return w.Buf, w.Sim(), true
}

// HandleCF executes one Cornflakes-mode command and returns the reply
// description for the driver to serialize with the Cornflakes object API.
func (s *Server) HandleCF(op byte, req CFRequest) Reply {
	m := s.meter
	s.Handled++
	m.Charge(redisCmdCy)
	switch op {
	case CmdGet:
		val := s.Store.Get(req.Key)
		if val != nil {
			m.Charge(redisObjCy)
		}
		return Reply{ID: req.ID, Vals: []*mem.Buf{val}}
	case CmdMGet:
		vals := make([]*mem.Buf, 0, len(req.Keys))
		for _, k := range req.Keys {
			v := s.Store.Get(k)
			if v != nil {
				m.Charge(redisObjCy)
				vals = append(vals, v)
			}
		}
		return Reply{ID: req.ID, Vals: vals, Multi: true}
	case CmdLRange:
		vals := s.Store.GetList(req.Key)
		for range vals {
			m.Charge(redisObjCy)
		}
		return Reply{ID: req.ID, Vals: vals, Multi: true}
	case CmdSet:
		if s.Store.TryPut(req.Key, req.Val) != nil {
			// OK stays false: the driver reports the write as refused.
			return Reply{ID: req.ID}
		}
		return Reply{ID: req.ID, OK: true}
	default:
		s.Errors++
		return Reply{ID: req.ID}
	}
}

// Cornflakes-mode command bytes.
const (
	CmdGet byte = iota + 1
	CmdMGet
	CmdLRange
	CmdSet
)

// CFRequest is a decoded Cornflakes-mode command.
type CFRequest struct {
	ID   uint64
	Key  []byte
	Keys [][]byte
	Val  []byte
}

// EncodeRESPRequest frames a client command: 8-byte id, then the RESP
// array (the id tag is the RPC framing the UDP transport needs; Redis over
// TCP relies on connection ordering instead).
func EncodeRESPRequest(m *costmodel.Meter, id uint64, args ...[]byte) []byte {
	cmd := baselines.RESPEncodeCommand(m, args...)
	out := make([]byte, 8+len(cmd))
	wire.PutU64(out, id)
	copy(out[8:], cmd)
	return out
}

// DecodeRESPRequest splits a framed request into id and command bytes.
func DecodeRESPRequest(payload []byte) (uint64, []byte, bool) {
	if len(payload) < 9 {
		return 0, nil, false
	}
	return wire.GetU64(payload), payload[8:], true
}

// Schemas used by the Cornflakes mode (shared with the KV application).
var (
	GetRespSchema     = msgs.GetRespSchema
	GetListRespSchema = msgs.GetListRespSchema
)
