package mem

import "testing"

// Table-driven boundary coverage for the pointer-recovery trio —
// RecoverPtr, IsPinned, SimAddrOf — at the edges where an off-by-one in
// the slab arithmetic would corrupt memory safety: the first and last byte
// of a slab, pointers in adjacent slabs, slices spanning slot boundaries,
// ordinary heap memory, and empty slices.
func TestPointerRecoveryBoundaries(t *testing.T) {
	type fixture struct {
		a *Allocator
		// slabA and slabB are two dedicated single-slot slabs (every byte
		// of the slab belongs to the slot), so "slab edge" and "slot edge"
		// coincide and both are exercised.
		slabA, slabB *Buf
		// multi is a slot inside a many-slot slab, for cross-slot spans.
		multi *Buf
		heap  []byte
	}
	newFixture := func() *fixture {
		a := NewAllocator()
		return &fixture{
			a:     a,
			slabA: a.Alloc(2 << 20),
			slabB: a.Alloc(2 << 20),
			multi: a.Alloc(64),
			heap:  make([]byte, 256),
		}
	}

	cases := []struct {
		name        string
		slice       func(f *fixture) []byte
		wantRecover bool
		wantPinned  bool
		// wantSim returns the expected SimAddrOf result; nil means "just
		// check the unpinned range".
		wantSim func(f *fixture) uint64
	}{
		{
			name:        "first byte of slab",
			slice:       func(f *fixture) []byte { return f.slabA.Bytes()[:1] },
			wantRecover: true,
			wantPinned:  true,
			wantSim:     func(f *fixture) uint64 { return f.slabA.SimAddr() },
		},
		{
			name:        "last byte of slab",
			slice:       func(f *fixture) []byte { return f.slabA.Bytes()[f.slabA.Len()-1:] },
			wantRecover: true,
			wantPinned:  true,
			wantSim:     func(f *fixture) uint64 { return f.slabA.SimAddr() + uint64(f.slabA.Len()) - 1 },
		},
		{
			name:        "entire slab",
			slice:       func(f *fixture) []byte { return f.slabA.Bytes() },
			wantRecover: true,
			wantPinned:  true,
			wantSim:     func(f *fixture) uint64 { return f.slabA.SimAddr() },
		},
		{
			name:        "adjacent slab resolves to its own base",
			slice:       func(f *fixture) []byte { return f.slabB.Bytes()[:1] },
			wantRecover: true,
			wantPinned:  true,
			wantSim:     func(f *fixture) uint64 { return f.slabB.SimAddr() },
		},
		{
			name:        "last byte of adjacent slab",
			slice:       func(f *fixture) []byte { return f.slabB.Bytes()[f.slabB.Len()-1:] },
			wantRecover: true,
			wantPinned:  true,
			wantSim:     func(f *fixture) uint64 { return f.slabB.SimAddr() + uint64(f.slabB.Len()) - 1 },
		},
		{
			name: "span across a slot boundary",
			slice: func(f *fixture) []byte {
				// A slice beginning inside multi's slot and running into the
				// next slot of the same slab: not a single allocation.
				s := f.multi.slab.data
				base := int(f.multi.slot) * f.multi.slab.slotSize
				return s[base+32 : base+96]
			},
			wantRecover: false,
			wantPinned:  false,
			// SimAddrOf still maps the base pointer through the slab (it
			// models address translation, not allocation validity), so the
			// span gets a pinned-range address even though recovery fails.
			wantSim: func(f *fixture) uint64 {
				base := int(f.multi.slot) * f.multi.slab.slotSize
				return f.multi.slab.simBase + uint64(base+32)
			},
		},
		{
			name:        "unpinned heap slice",
			slice:       func(f *fixture) []byte { return f.heap },
			wantRecover: false,
			wantPinned:  false,
		},
		{
			name:        "empty slice",
			slice:       func(f *fixture) []byte { return nil },
			wantRecover: false,
			wantPinned:  false,
			wantSim:     func(f *fixture) uint64 { return SimUnpinnedBase },
		},
		{
			name:        "empty but non-nil slice",
			slice:       func(f *fixture) []byte { return make([]byte, 0) },
			wantRecover: false,
			wantPinned:  false,
			wantSim:     func(f *fixture) uint64 { return SimUnpinnedBase },
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture()
			p := tc.slice(f)

			if got := f.a.IsPinned(p); got != tc.wantPinned {
				t.Errorf("IsPinned = %v, want %v", got, tc.wantPinned)
			}

			before := f.a.Stats()
			r, ok := f.a.RecoverPtr(p)
			if ok != tc.wantRecover {
				t.Fatalf("RecoverPtr ok = %v, want %v", ok, tc.wantRecover)
			}
			if ok {
				if r.Len() != len(p) {
					t.Errorf("recovered len = %d, want %d", r.Len(), len(p))
				}
				if want := f.a.SimAddrOf(p); r.SimAddr() != want {
					t.Errorf("recovered sim %x, SimAddrOf says %x", r.SimAddr(), want)
				}
				r.DecRef()
			} else if f.a.Stats().RecoverMisses != before.RecoverMisses+1 {
				t.Error("miss not counted")
			}

			sim := f.a.SimAddrOf(p)
			if tc.wantSim != nil {
				if want := tc.wantSim(f); sim != want {
					t.Errorf("SimAddrOf = %x, want %x", sim, want)
				}
			} else if tc.wantPinned {
				if sim < SimDataBase || sim >= SimUnpinnedBase {
					t.Errorf("pinned SimAddrOf %x outside data range", sim)
				}
			} else if len(p) > 0 {
				if sim < SimUnpinnedBase || sim >= SimMetaBase {
					t.Errorf("unpinned SimAddrOf %x outside unpinned range", sim)
				}
			}

			// Refcount hygiene: neither probe may leave references behind.
			f.slabA.DecRef()
			f.slabB.DecRef()
			f.multi.DecRef()
			if got := f.a.Stats().SlotsInUse; got != 0 {
				t.Errorf("SlotsInUse after teardown = %d (leaked reference)", got)
			}
		})
	}
}
