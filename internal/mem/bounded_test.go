package mem

import (
	"errors"
	"testing"
)

func TestTryAllocCapEnforced(t *testing.T) {
	a := NewAllocator()
	a.SetCap(3)
	if a.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", a.Cap())
	}
	var bufs []*Buf
	for i := 0; i < 3; i++ {
		b, err := a.TryAlloc(64)
		if err != nil {
			t.Fatalf("alloc %d under cap failed: %v", i, err)
		}
		bufs = append(bufs, b)
	}
	if _, err := a.TryAlloc(64); !errors.Is(err, ErrNoMem) {
		t.Fatalf("alloc over cap: err = %v, want ErrNoMem", err)
	}
	if got := a.Stats().AllocFailures; got != 1 {
		t.Errorf("AllocFailures = %d, want 1", got)
	}
	// Freeing a slot restores capacity.
	bufs[0].DecRef()
	b, err := a.TryAlloc(64)
	if err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
	b.DecRef()
	for _, b := range bufs[1:] {
		b.DecRef()
	}
	if got := a.Stats().SlotsInUse; got != 0 {
		t.Errorf("SlotsInUse after drain = %d", got)
	}
	if got := a.Stats().PeakSlotsInUse; got != 3 {
		t.Errorf("PeakSlotsInUse = %d, want 3", got)
	}
}

func TestAllocPanicsOverCap(t *testing.T) {
	a := NewAllocator()
	a.SetCap(1)
	b := a.Alloc(64)
	defer b.DecRef()
	defer func() {
		if recover() == nil {
			t.Error("Alloc over cap did not panic")
		}
	}()
	a.Alloc(64)
}

func TestOccupancy(t *testing.T) {
	a := NewAllocator()
	if got := a.Occupancy(); got != 0 {
		t.Errorf("uncapped Occupancy = %v, want 0", got)
	}
	a.SetCap(4)
	b1 := a.Alloc(64)
	b2 := a.Alloc(64)
	if got := a.Occupancy(); got != 0.5 {
		t.Errorf("Occupancy = %v, want 0.5", got)
	}
	b1.DecRef()
	b2.DecRef()
	if got := a.Occupancy(); got != 0 {
		t.Errorf("Occupancy after drain = %v, want 0", got)
	}
	a.SetCap(0)
	if got := a.Occupancy(); got != 0 {
		t.Errorf("Occupancy after cap removal = %v, want 0", got)
	}
}

func TestSlabGauges(t *testing.T) {
	a := NewAllocator()
	// One slab of the 64 B class holds many slots; a 3 MiB allocation gets
	// a dedicated slab of its own class.
	small := a.Alloc(64)
	big := a.Alloc(3 << 20)
	st := a.Stats()
	if st.Slabs != 2 {
		t.Errorf("Slabs = %d, want 2", st.Slabs)
	}
	counts := a.SlabCounts()
	if counts[64] != 1 {
		t.Errorf("SlabCounts[64] = %d, want 1", counts[64])
	}
	if counts[4<<20] != 1 {
		t.Errorf("SlabCounts[4MiB] = %d, want 1 (got %v)", counts[4<<20], counts)
	}
	small.DecRef()
	big.DecRef()
	// Slabs are retained after free: the gauges track pinned footprint, not
	// live slots.
	if got := a.Stats().Slabs; got != 2 {
		t.Errorf("Slabs after free = %d, want 2", got)
	}
}

// The peak gauge must track the true high-water mark through an
// alloc/free interleaving, not just the final state.
func TestPeakSlotsHighWater(t *testing.T) {
	a := NewAllocator()
	b1, b2, b3 := a.Alloc(64), a.Alloc(64), a.Alloc(64)
	b1.DecRef()
	b2.DecRef()
	b4 := a.Alloc(64)
	if got := a.Stats().PeakSlotsInUse; got != 3 {
		t.Errorf("PeakSlotsInUse = %d, want 3", got)
	}
	if got := a.Stats().SlotsInUse; got != 2 {
		t.Errorf("SlotsInUse = %d, want 2", got)
	}
	b3.DecRef()
	b4.DecRef()
}
