package mem

import "fmt"

// Arena is a bump allocator for the copied-data vectors inside CFPtr
// objects. The paper (§3.2.2) uses "efficient arena allocation for the
// vectors inside CFPtr that offer fast allocation and mass deallocation";
// this is that allocator. Arena memory is ordinary unpinned memory — data
// placed here is always copied again into a DMA-safe buffer at send time —
// but it carries simulated addresses so the cache model sees the copies.
type Arena struct {
	chunks    [][]byte // normal chunks, each exactly chunkSize bytes
	simBases  []uint64
	big       [][]byte // oversized dedicated chunks, dropped on Reset
	cur       int      // index of the active normal chunk
	off       int      // bump offset within the active chunk
	chunkSize int
	// simCursor hands out simulated addresses for new chunks.
	simCursor uint64

	// Allocs counts Alloc calls since the last Reset, for tests and cost
	// accounting.
	Allocs uint64
}

// SimArenaBase is the simulated address range for arena chunks, disjoint
// from pinned data and metadata ranges.
const SimArenaBase = 0x0000_7000_0000_0000

// NewArena creates an arena with the given chunk size (rounded up to 4 KiB
// minimum).
func NewArena(chunkSize int) *Arena {
	if chunkSize < 4096 {
		chunkSize = 4096
	}
	return &Arena{chunkSize: chunkSize, simCursor: SimArenaBase}
}

// View is a chunk of arena memory with its simulated address.
type View struct {
	Data []byte
	Sim  uint64
}

// Alloc returns n bytes of arena memory. The bytes are valid until the next
// Reset. Requests larger than the chunk size get a dedicated chunk.
func (a *Arena) Alloc(n int) View {
	if n < 0 {
		panic(fmt.Sprintf("mem: Arena.Alloc(%d)", n))
	}
	a.Allocs++
	if n == 0 {
		return View{}
	}
	if n > a.chunkSize {
		data := make([]byte, n)
		sim := a.simCursor
		a.simCursor += uint64(n)
		a.simCursor = (a.simCursor + 4095) &^ 4095
		a.big = append(a.big, data)
		return View{Data: data, Sim: sim}
	}
	if len(a.chunks) == 0 || a.off+n > a.chunkSize {
		a.grow()
	}
	c := a.chunks[a.cur]
	v := View{Data: c[a.off : a.off+n : a.off+n], Sim: a.simBases[a.cur] + uint64(a.off)}
	a.off += n
	// Keep bump allocations 8-byte aligned like a production arena.
	a.off = (a.off + 7) &^ 7
	return v
}

func (a *Arena) grow() {
	if len(a.chunks) > 0 && a.cur+1 < len(a.chunks) {
		// Reuse a chunk recycled by Reset.
		a.cur++
		a.off = 0
		return
	}
	data := make([]byte, a.chunkSize)
	a.chunks = append(a.chunks, data)
	a.simBases = append(a.simBases, a.simCursor)
	a.simCursor += uint64(a.chunkSize)
	a.cur = len(a.chunks) - 1
	a.off = 0
}

// Reset frees every allocation at once (mass deallocation). Normal chunk
// memory is retained for reuse with stable simulated addresses, which
// models a warm arena whose lines stay cached between requests; oversized
// chunks are discarded.
func (a *Arena) Reset() {
	a.cur = 0
	a.off = 0
	a.big = nil
	a.Allocs = 0
}

// Footprint returns the total bytes held by the arena.
func (a *Arena) Footprint() int {
	total := 0
	for _, c := range a.chunks {
		total += len(c)
	}
	for _, c := range a.big {
		total += len(c)
	}
	return total
}
