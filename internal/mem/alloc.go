// Package mem implements the DMA-safe (pinned) memory layer of Cornflakes:
// a power-of-two slab allocator, reference-counted buffer views (RcBuf in
// the paper, Buf here), and pointer recovery that maps an arbitrary []byte
// back to its containing pinned allocation (recover_ptr, Listing 2).
//
// Two address spaces coexist:
//
//   - Real addresses: every pinned slab is an ordinary Go []byte, so
//     serializers move real bytes and RecoverPtr performs a genuine address
//     range lookup on the slice's data pointer. Slabs are retained by the
//     allocator for its lifetime, and Go's GC is non-moving, so the lookup
//     is sound.
//   - Simulated physical addresses: each slab, each refcount word, and each
//     arena chunk is assigned a stable simulated address used by
//     internal/cachesim to model data and metadata cache misses. Performance
//     modelling never depends on real addresses.
//
// In the paper the NIC can only DMA pinned pages; here "pinned" means
// "allocated from this allocator", and the simulated NIC refuses (and the
// serialization layer transparently copies) anything else — the memory
// transparency property of §2.3.
package mem

import (
	"errors"
	"fmt"
	"sort"
	"unsafe"
)

// ErrNoMem is returned by TryAlloc when the allocator's configured capacity
// cap is exhausted. Pinned memory is a finite resource on a real NIC host
// (registered pages the IOMMU knows about); a caller seeing ErrNoMem must
// degrade — copy instead of pin, shed the request, or drop the frame — and
// must not leak any references it already holds.
var ErrNoMem = errors.New("mem: pinned memory cap exhausted")

const (
	// MinClass is the smallest slot size: one cache line.
	MinClass = 64
	// MaxClass is the largest slotted size; larger requests get a dedicated
	// slab of their exact (rounded) size.
	MaxClass = 1 << 24 // 16 MiB
	// slabTarget is the target byte size of one slab; the slot count per
	// slab is derived from it.
	slabTarget = 1 << 20 // 1 MiB
	// refcountBytes is the simulated footprint of one refcount word. Each
	// refcount lives on its own simulated cache line to model the metadata
	// miss the paper attributes to zero-copy bookkeeping (§2.3): refcounts
	// for different buffers do not share lines.
	refcountBytes = 64
)

// slab is one contiguous pinned region divided into equal slots.
type slab struct {
	data     []byte
	realBase uintptr
	simBase  uint64
	// simRefBase is the simulated address of slot 0's refcount word.
	simRefBase uint64
	slotSize   int
	slots      int
	refcnts    []int32
	free       []int32 // free slot indices (LIFO)
	class      *sizeClass
	alloc      *Allocator // owning allocator (stats + Buf free list)
}

type sizeClass struct {
	size  int
	slabs []*slab
	// partial lists slabs that have at least one free slot.
	partial []*slab
}

// Stats summarises allocator state.
type Stats struct {
	BytesPinned    int64 // total bytes of pinned slabs
	SlotsInUse     int64
	PeakSlotsInUse int64 // high-water mark of SlotsInUse over the allocator's lifetime
	Slabs          int64 // slab count across all size classes
	Allocs, Frees  uint64
	AllocFailures  uint64 // TryAlloc calls refused by the capacity cap
	RecoverHits    uint64
	RecoverMisses  uint64
	DedicatedSlabs int64
}

// Allocator is the pinned-memory allocator. It is not safe for concurrent
// use: the simulation is single-threaded, and the paper's stack is likewise
// a single-core datapath (§6.6 shards allocators per core).
type Allocator struct {
	classes map[int]*sizeClass
	// byReal is kept sorted by realBase for RecoverPtr binary search.
	byReal []*slab
	// simCursor hands out simulated data addresses; simRefCursor hands out
	// simulated metadata addresses from a disjoint range so data and
	// metadata never share cache lines.
	simCursor    uint64
	simRefCursor uint64
	stats        Stats
	// capSlots bounds SlotsInUse when positive; TryAlloc fails with
	// ErrNoMem at the bound instead of growing a new slab. Zero means
	// unbounded (the pre-overload-hardening behaviour).
	capSlots int64
	// bufFree recycles Buf view structs: a view whose final reference is
	// dropped (refcount reaches zero) parks here and the next
	// TryAlloc/RecoverPtr/SubView reuses it instead of allocating. Views
	// whose DecRef was not the last reference are NOT recycled — another
	// holder may still alias the struct. The allocator is single-goroutine
	// by contract, so a plain slice suffices. Parked views have slab nil,
	// so a (contract-violating) use after the final DecRef fails fast.
	bufFree []*Buf
}

// SimDataBase and SimMetaBase separate the simulated address ranges for
// buffer data and refcount metadata. SimUnpinnedBase is the range used to
// derive stable pseudo-addresses for ordinary (unpinned) Go memory so the
// cache model can still see accesses to it; SimScratchBase is the window
// the per-meter bump allocator (costmodel.Meter.AllocSimAddr) assigns
// fresh heap chunks from.
const (
	SimDataBase     = 0x0000_1000_0000_0000
	SimUnpinnedBase = 0x0000_4000_0000_0000
	SimScratchBase  = 0x0000_6000_0000_0000
	SimMetaBase     = 0x0000_F000_0000_0000
)

// UnpinnedSimAddr returns a deterministic simulated address for unpinned
// memory, derived from an FNV-1a hash of its contents folded into a 1 TiB
// window. Hashing contents rather than the real heap address keeps whole
// runs reproducible across processes: real addresses vary with heap layout,
// and feeding them to the cache model made cycle counts jitter between
// otherwise identical runs. Buffers with identical bytes alias — which is
// harmless here (payloads embed unique request ids) and, for true repeats
// like retransmitted frames, models the buffer reuse a real allocator does.
// Buffers that are mutated in place cannot hash their contents; they keep
// an address assigned at allocation (costmodel.Meter.AllocSimAddr).
func UnpinnedSimAddr(p []byte) uint64 {
	if len(p) == 0 {
		return SimUnpinnedBase
	}
	h := uint64(14695981039346656037)
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return SimUnpinnedBase + (h & 0xFF_FFFF_FFFF) // fold into a 1 TiB window
}


// NewAllocator returns an empty pinned allocator.
func NewAllocator() *Allocator {
	return &Allocator{
		classes:      make(map[int]*sizeClass),
		simCursor:    SimDataBase,
		simRefCursor: SimMetaBase,
	}
}

// roundClass rounds size up to the allocator's slot size for it.
func roundClass(size int) int {
	if size <= MinClass {
		return MinClass
	}
	// next power of two
	c := MinClass
	for c < size {
		c <<= 1
	}
	return c
}

// SetCap bounds the number of pinned slots that may be in use at once;
// zero or negative removes the bound. The cap models the finite pinned
// pool of a kernel-bypass host: once it is set, hot paths must allocate
// with TryAlloc and handle ErrNoMem.
func (a *Allocator) SetCap(slots int64) {
	if slots < 0 {
		slots = 0
	}
	a.capSlots = slots
}

// Cap returns the configured slot cap (0 = unbounded).
func (a *Allocator) Cap() int64 { return a.capSlots }

// Occupancy returns the fraction of the cap currently in use, in [0, 1].
// An uncapped allocator reports 0: without a bound there is no pressure
// signal, and pressure-aware callers stay on the fast path.
func (a *Allocator) Occupancy() float64 {
	if a.capSlots <= 0 {
		return 0
	}
	occ := float64(a.stats.SlotsInUse) / float64(a.capSlots)
	if occ > 1 {
		occ = 1
	}
	return occ
}

// Alloc returns a pinned buffer of at least size bytes with refcount 1.
// The returned view's length is exactly size. Alloc panics on size <= 0
// (zero-length pinned buffers have no slot identity) and on cap
// exhaustion: infallible callers — preload, tests, uncapped clients — use
// it, while every hot path on a capped allocator must use TryAlloc.
func (a *Allocator) Alloc(size int) *Buf {
	b, err := a.TryAlloc(size)
	if err != nil {
		panic(fmt.Sprintf("mem: Alloc(%d) over cap %d: %v", size, a.capSlots, err))
	}
	return b
}

// TryAlloc is Alloc with the capacity cap enforced as a failure rather
// than a panic: it returns ErrNoMem when the cap is reached, counting the
// refusal in Stats.AllocFailures. Callers own exactly the reference of a
// successful return and nothing on failure.
func (a *Allocator) TryAlloc(size int) (*Buf, error) {
	if size <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d)", size))
	}
	if a.capSlots > 0 && a.stats.SlotsInUse >= a.capSlots {
		a.stats.AllocFailures++
		return nil, ErrNoMem
	}
	class := roundClass(size)
	sc := a.classes[class]
	if sc == nil {
		sc = &sizeClass{size: class}
		a.classes[class] = sc
	}
	var s *slab
	for len(sc.partial) > 0 {
		cand := sc.partial[len(sc.partial)-1]
		if len(cand.free) > 0 {
			s = cand
			break
		}
		sc.partial = sc.partial[:len(sc.partial)-1]
	}
	if s == nil {
		s = a.newSlab(sc)
		sc.partial = append(sc.partial, s)
	}
	slot := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.refcnts[slot] = 1
	a.stats.Allocs++
	a.stats.SlotsInUse++
	if a.stats.SlotsInUse > a.stats.PeakSlotsInUse {
		a.stats.PeakSlotsInUse = a.stats.SlotsInUse
	}
	return a.getBuf(s, slot, int(slot)*s.slotSize, size), nil
}

// getBuf takes a Buf view struct off the free list (or allocates one) and
// points it at the given slot view.
func (a *Allocator) getBuf(s *slab, slot int32, off, n int) *Buf {
	if k := len(a.bufFree); k > 0 {
		b := a.bufFree[k-1]
		a.bufFree[k-1] = nil
		a.bufFree = a.bufFree[:k-1]
		b.slab, b.slot, b.off, b.n = s, slot, off, n
		return b
	}
	return &Buf{slab: s, slot: slot, off: off, n: n}
}

func (a *Allocator) newSlab(sc *sizeClass) *slab {
	slots := slabTarget / sc.size
	if slots < 1 {
		slots = 1
		a.stats.DedicatedSlabs++
	}
	data := make([]byte, sc.size*slots)
	s := &slab{
		data:       data,
		realBase:   uintptr(unsafe.Pointer(unsafe.SliceData(data))),
		simBase:    a.simCursor,
		simRefBase: a.simRefCursor,
		slotSize:   sc.size,
		slots:      slots,
		refcnts:    make([]int32, slots),
		free:       make([]int32, 0, slots),
		class:      sc,
		alloc:      a,
	}
	a.simCursor += uint64(len(data))
	// Pad the sim range so distinct slabs never share a modelled line.
	a.simCursor = (a.simCursor + 4095) &^ 4095
	a.simRefCursor += uint64(slots * refcountBytes)
	a.simRefCursor = (a.simRefCursor + 4095) &^ 4095
	for i := slots - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	sc.slabs = append(sc.slabs, s)
	a.stats.BytesPinned += int64(len(data))
	a.stats.Slabs++

	// Insert into the sorted-by-real-address table.
	i := sort.Search(len(a.byReal), func(i int) bool { return a.byReal[i].realBase >= s.realBase })
	a.byReal = append(a.byReal, nil)
	copy(a.byReal[i+1:], a.byReal[i:])
	a.byReal[i] = s
	return s
}

// findSlab locates the slab containing the real address p, if any.
func (a *Allocator) findSlab(p uintptr) *slab {
	i := sort.Search(len(a.byReal), func(i int) bool { return a.byReal[i].realBase > p })
	if i == 0 {
		return nil
	}
	s := a.byReal[i-1]
	if p < s.realBase+uintptr(len(s.data)) {
		return s
	}
	return nil
}

// RecoverPtr maps an arbitrary byte slice to the pinned allocation that
// contains it. On success it returns a view covering exactly p with the
// allocation's refcount incremented (the caller owns one reference). On
// failure — p is empty, not inside pinned memory, or the containing slot is
// free — it returns (nil, false) and the caller must copy.
//
// This is recover_ptr from Listing 2: "a map lookup and fast arithmetic".
func (a *Allocator) RecoverPtr(p []byte) (*Buf, bool) {
	if len(p) == 0 {
		a.stats.RecoverMisses++
		return nil, false
	}
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(p)))
	s := a.findSlab(addr)
	if s == nil {
		a.stats.RecoverMisses++
		return nil, false
	}
	off := int(addr - s.realBase)
	if off+len(p) > len(s.data) {
		// Slice straddles the slab end; cannot be a single allocation.
		a.stats.RecoverMisses++
		return nil, false
	}
	slot := int32(off / s.slotSize)
	if off+len(p) > (int(slot)+1)*s.slotSize {
		// Straddles two slots: not a single allocation either.
		a.stats.RecoverMisses++
		return nil, false
	}
	if s.refcnts[slot] <= 0 {
		// Slot currently free: the pointer is stale.
		a.stats.RecoverMisses++
		return nil, false
	}
	s.refcnts[slot]++
	a.stats.RecoverHits++
	return a.getBuf(s, slot, off, len(p)), true
}

// IsPinned reports whether p lies entirely within one live pinned
// allocation, without touching any refcount.
func (a *Allocator) IsPinned(p []byte) bool {
	if len(p) == 0 {
		return false
	}
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(p)))
	s := a.findSlab(addr)
	if s == nil {
		return false
	}
	off := int(addr - s.realBase)
	slot := off / s.slotSize
	return off+len(p) <= len(s.data) &&
		off+len(p) <= (slot+1)*s.slotSize &&
		s.refcnts[slot] > 0
}

// SimAddrOf returns the simulated address of p's first byte: the pinned
// mapping when p lies in a live pinned allocation, otherwise the unpinned
// pseudo-address. It is simulation infrastructure — unlike RecoverPtr it
// touches no refcount and models no cost.
func (a *Allocator) SimAddrOf(p []byte) uint64 {
	if len(p) == 0 {
		return SimUnpinnedBase
	}
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(p)))
	if s := a.findSlab(addr); s != nil {
		return s.simBase + uint64(addr-s.realBase)
	}
	return UnpinnedSimAddr(p)
}

// Stats returns a copy of the allocator counters.
func (a *Allocator) Stats() Stats { return a.stats }

// SlabCounts returns the number of slabs per size class — the gauge an
// operator watches to see which class a leak or a cap-sizing problem lives
// in. The map is freshly built on every call.
func (a *Allocator) SlabCounts() map[int]int {
	out := make(map[int]int, len(a.classes))
	for size, sc := range a.classes {
		if len(sc.slabs) > 0 {
			out[size] = len(sc.slabs)
		}
	}
	return out
}

// Buf is a reference-counted view of a pinned allocation — the paper's
// RcBuf {data_pointer, offset, len, refcnt}. Multiple Bufs may view the
// same allocation; the slot returns to the free list when the shared
// refcount reaches zero.
type Buf struct {
	slab *slab
	slot int32
	off  int // byte offset of the view within the slab
	n    int
}

// Bytes returns the view's backing bytes. The slice remains valid while the
// caller holds a reference.
func (b *Buf) Bytes() []byte { return b.slab.data[b.off : b.off+b.n] }

// Len returns the view length.
func (b *Buf) Len() int { return b.n }

// Cap returns the number of bytes from the view start to the end of the
// slot — the writable headroom of the allocation.
func (b *Buf) Cap() int { return (int(b.slot)+1)*b.slab.slotSize - b.off }

// SimAddr returns the simulated physical address of the view's first byte.
func (b *Buf) SimAddr() uint64 { return b.slab.simBase + uint64(b.off) }

// RefcountSimAddr returns the simulated address of the allocation's
// refcount word — the metadata location whose cache behaviour dominates the
// zero-copy bookkeeping cost (§2.3).
func (b *Buf) RefcountSimAddr() uint64 {
	return b.slab.simRefBase + uint64(b.slot)*refcountBytes
}

// Refcount returns the current reference count of the allocation.
func (b *Buf) Refcount() int32 { return b.slab.refcnts[b.slot] }

// IncRef adds a reference. Panics if the allocation is already free.
func (b *Buf) IncRef() {
	if b.slab.refcnts[b.slot] <= 0 {
		panic("mem: IncRef on freed buffer")
	}
	b.slab.refcnts[b.slot]++
}

// DecRef drops a reference, returning the slot to the allocator free list
// when the count reaches zero. Panics on double free.
func (b *Buf) DecRef() {
	rc := b.slab.refcnts[b.slot]
	if rc <= 0 {
		panic("mem: DecRef on freed buffer (double free)")
	}
	b.slab.refcnts[b.slot] = rc - 1
	if rc-1 == 0 {
		s := b.slab
		s.free = append(s.free, b.slot)
		if len(s.free) == 1 {
			s.class.partial = append(s.class.partial, s)
		}
		st := statsOwner(s)
		st.Frees++
		st.SlotsInUse--
		// The final reference is gone: no live holder may touch this view
		// again, so the struct itself recycles through the allocator's Buf
		// free list. slab nil-s out so a stale use panics instead of
		// silently reading whatever allocation reuses the struct.
		b.slab = nil
		s.alloc.bufFree = append(s.alloc.bufFree, b)
	}
}

// SubView returns a new view of n bytes starting off bytes into b, sharing
// (and incrementing) the refcount.
func (b *Buf) SubView(off, n int) *Buf {
	if off < 0 || n < 0 || off+n > b.n {
		panic(fmt.Sprintf("mem: SubView(%d, %d) out of range of %d-byte view", off, n, b.n))
	}
	b.IncRef()
	return b.slab.alloc.getBuf(b.slab, b.slot, b.off+off, n)
}

// Resize shrinks or grows the view in place within the slot's capacity.
// It is used by receive paths that allocate a full-MTU buffer and trim it
// to the received length.
func (b *Buf) Resize(n int) {
	if n < 0 || n > b.Cap() {
		panic(fmt.Sprintf("mem: Resize(%d) beyond capacity %d", n, b.Cap()))
	}
	b.n = n
}

// statsOwner walks back to the Allocator stats through the slab.
func statsOwner(s *slab) *Stats { return &s.alloc.stats }
