package mem

import (
	"testing"
	"testing/quick"
)

func TestArenaBasic(t *testing.T) {
	a := NewArena(4096)
	v1 := a.Alloc(100)
	v2 := a.Alloc(100)
	if len(v1.Data) != 100 || len(v2.Data) != 100 {
		t.Fatal("wrong lengths")
	}
	v1.Data[0] = 1
	v2.Data[0] = 2
	if v1.Data[0] != 1 {
		t.Error("allocations alias")
	}
	if v2.Sim <= v1.Sim {
		t.Error("sim addresses not increasing within a chunk")
	}
	if a.Allocs != 2 {
		t.Errorf("Allocs = %d, want 2", a.Allocs)
	}
}

func TestArenaAlignment(t *testing.T) {
	a := NewArena(4096)
	a.Alloc(3)
	v := a.Alloc(8)
	if v.Sim%8 != 0 {
		t.Errorf("allocation not 8-byte aligned: sim %x", v.Sim)
	}
}

func TestArenaZeroAlloc(t *testing.T) {
	a := NewArena(4096)
	v := a.Alloc(0)
	if v.Data != nil {
		t.Error("zero alloc returned data")
	}
}

func TestArenaNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Alloc did not panic")
		}
	}()
	NewArena(4096).Alloc(-1)
}

func TestArenaGrowsAcrossChunks(t *testing.T) {
	a := NewArena(4096)
	v1 := a.Alloc(3000)
	v2 := a.Alloc(3000) // doesn't fit in remaining space; new chunk
	if v1.Sim/4096 == v2.Sim/4096 && v2.Sim-v1.Sim < 3000 {
		t.Error("second allocation overlaps first")
	}
	if a.Footprint() < 8192 {
		t.Errorf("footprint = %d, want >= 8192", a.Footprint())
	}
}

func TestArenaOversized(t *testing.T) {
	a := NewArena(4096)
	v := a.Alloc(10000)
	if len(v.Data) != 10000 {
		t.Fatal("oversized alloc wrong size")
	}
	// Normal allocation still works and does not overlap.
	v2 := a.Alloc(100)
	v2.Data[0] = 7
	if v.Data[0] == 7 {
		t.Error("oversized and normal chunks alias")
	}
}

func TestArenaResetReusesChunks(t *testing.T) {
	a := NewArena(4096)
	v1 := a.Alloc(100)
	sim1 := v1.Sim
	foot := a.Footprint()
	a.Reset()
	v2 := a.Alloc(100)
	if v2.Sim != sim1 {
		t.Errorf("after Reset sim addr %x, want reuse of %x", v2.Sim, sim1)
	}
	if a.Footprint() != foot {
		t.Errorf("Reset changed footprint %d -> %d", foot, a.Footprint())
	}
	if a.Allocs != 1 {
		t.Errorf("Allocs after reset = %d, want 1", a.Allocs)
	}
}

func TestArenaResetDropsOversized(t *testing.T) {
	a := NewArena(4096)
	a.Alloc(100000)
	a.Reset()
	if a.Footprint() > 4096 {
		t.Errorf("oversized chunk retained after Reset: footprint %d", a.Footprint())
	}
}

func TestArenaMinChunk(t *testing.T) {
	a := NewArena(1)
	if a.chunkSize != 4096 {
		t.Errorf("chunkSize = %d, want clamped to 4096", a.chunkSize)
	}
}

// Property: allocations between resets never overlap in simulated address
// space.
func TestArenaNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena(8192)
		type span struct{ lo, hi uint64 }
		var live []span
		for _, s := range sizes {
			n := int(s % 10000)
			if n == 0 {
				continue
			}
			v := a.Alloc(n)
			lo, hi := v.Sim, v.Sim+uint64(n)
			for _, sp := range live {
				if lo < sp.hi && sp.lo < hi {
					return false
				}
			}
			live = append(live, span{lo, hi})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
