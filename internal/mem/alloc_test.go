package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(100)
	if b.Len() != 100 {
		t.Errorf("Len = %d, want 100", b.Len())
	}
	if b.Refcount() != 1 {
		t.Errorf("fresh refcount = %d, want 1", b.Refcount())
	}
	if b.Cap() < 128 {
		t.Errorf("Cap = %d, want >= 128 (power-of-two slot)", b.Cap())
	}
	if len(b.Bytes()) != 100 {
		t.Errorf("Bytes len = %d", len(b.Bytes()))
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
	}()
	NewAllocator().Alloc(0)
}

func TestRoundClass(t *testing.T) {
	cases := map[int]int{1: 64, 64: 64, 65: 128, 512: 512, 513: 1024, 9000: 16384}
	for in, want := range cases {
		if got := roundClass(in); got != want {
			t.Errorf("roundClass(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestDistinctAllocationsDoNotOverlap(t *testing.T) {
	a := NewAllocator()
	b1 := a.Alloc(64)
	b2 := a.Alloc(64)
	b1.Bytes()[0] = 0xAA
	b2.Bytes()[0] = 0xBB
	if b1.Bytes()[0] != 0xAA {
		t.Error("allocations share memory")
	}
	if b1.SimAddr() == b2.SimAddr() {
		t.Error("allocations share a simulated address")
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(256)
	sim := b.SimAddr()
	b.DecRef()
	if got := a.Stats(); got.Frees != 1 || got.SlotsInUse != 0 {
		t.Errorf("stats after free = %+v", got)
	}
	// The freed slot is reused (LIFO free list).
	b2 := a.Alloc(256)
	if b2.SimAddr() != sim {
		t.Errorf("freed slot not reused: sim %x vs %x", b2.SimAddr(), sim)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(64)
	b.DecRef()
	defer func() {
		if recover() == nil {
			t.Error("double DecRef did not panic")
		}
	}()
	b.DecRef()
}

func TestIncRefOnFreedPanics(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(64)
	b.DecRef()
	defer func() {
		if recover() == nil {
			t.Error("IncRef on freed buffer did not panic")
		}
	}()
	b.IncRef()
}

func TestRefcountKeepsSlotAlive(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(64)
	b.IncRef() // e.g. the NIC holds a reference during DMA
	b.DecRef() // application frees
	if a.Stats().SlotsInUse != 1 {
		t.Error("slot freed while a reference was outstanding")
	}
	b.DecRef() // NIC completion
	if a.Stats().SlotsInUse != 0 {
		t.Error("slot not freed after last reference dropped")
	}
}

func TestSubViewSharesRefcount(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(512)
	for i := range b.Bytes() {
		b.Bytes()[i] = byte(i)
	}
	v := b.SubView(100, 50)
	if b.Refcount() != 2 {
		t.Errorf("refcount after SubView = %d, want 2", b.Refcount())
	}
	if v.Len() != 50 || v.Bytes()[0] != byte(100) {
		t.Errorf("SubView contents wrong: len=%d first=%d", v.Len(), v.Bytes()[0])
	}
	if v.SimAddr() != b.SimAddr()+100 {
		t.Error("SubView sim address not offset correctly")
	}
	b.DecRef()
	if a.Stats().SlotsInUse != 1 {
		t.Error("slot freed while SubView alive")
	}
	v.DecRef()
	if a.Stats().SlotsInUse != 0 {
		t.Error("slot not freed after all views dropped")
	}
}

func TestSubViewBoundsPanics(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(64)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range SubView did not panic")
		}
	}()
	b.SubView(60, 10)
}

func TestResize(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(100) // slot is 128
	b.Resize(128)
	if b.Len() != 128 {
		t.Errorf("Len after grow = %d", b.Len())
	}
	b.Resize(10)
	if b.Len() != 10 {
		t.Errorf("Len after shrink = %d", b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Resize beyond capacity did not panic")
		}
	}()
	b.Resize(129)
}

func TestRecoverPtrExact(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(1024)
	r, ok := a.RecoverPtr(b.Bytes())
	if !ok {
		t.Fatal("RecoverPtr failed on pinned bytes")
	}
	if b.Refcount() != 2 {
		t.Errorf("refcount = %d, want 2 (RecoverPtr takes a reference)", b.Refcount())
	}
	if r.SimAddr() != b.SimAddr() || r.Len() != b.Len() {
		t.Error("recovered view does not match original")
	}
	r.DecRef()
	b.DecRef()
}

func TestRecoverPtrInterior(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(2048)
	inner := b.Bytes()[300:700]
	r, ok := a.RecoverPtr(inner)
	if !ok {
		t.Fatal("RecoverPtr failed on interior slice")
	}
	if r.SimAddr() != b.SimAddr()+300 || r.Len() != 400 {
		t.Errorf("interior recovery wrong: sim+%d len=%d", r.SimAddr()-b.SimAddr(), r.Len())
	}
	r.DecRef()
	b.DecRef()
}

func TestRecoverPtrUnpinned(t *testing.T) {
	a := NewAllocator()
	a.Alloc(64) // make sure slabs exist
	heap := make([]byte, 100)
	if _, ok := a.RecoverPtr(heap); ok {
		t.Error("RecoverPtr succeeded on ordinary heap memory")
	}
	if _, ok := a.RecoverPtr(nil); ok {
		t.Error("RecoverPtr succeeded on nil")
	}
	if a.Stats().RecoverMisses == 0 {
		t.Error("misses not counted")
	}
}

func TestRecoverPtrStaleSlot(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(64)
	raw := b.Bytes()
	b.DecRef()
	if _, ok := a.RecoverPtr(raw); ok {
		t.Error("RecoverPtr succeeded on a freed slot (stale pointer)")
	}
}

func TestRecoverPtrCrossSlot(t *testing.T) {
	a := NewAllocator()
	b1 := a.Alloc(64)
	_ = a.Alloc(64)
	// Construct a slice spanning past b1's slot inside the slab.
	slabBytes := b1.slab.data
	span := slabBytes[int(b1.slot)*64+32 : int(b1.slot)*64+96]
	if _, ok := a.RecoverPtr(span); ok {
		t.Error("RecoverPtr succeeded on a slice spanning two slots")
	}
}

func TestIsPinned(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(128)
	if !a.IsPinned(b.Bytes()) {
		t.Error("IsPinned false for pinned bytes")
	}
	if a.IsPinned(make([]byte, 10)) {
		t.Error("IsPinned true for heap bytes")
	}
	if b.Refcount() != 1 {
		t.Error("IsPinned must not touch refcounts")
	}
}

func TestLargeAllocation(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(3 << 20) // larger than one slab target
	if b.Len() != 3<<20 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Bytes()[3<<20-1] = 1
	r, ok := a.RecoverPtr(b.Bytes()[1<<20 : 2<<20])
	if !ok {
		t.Error("RecoverPtr failed inside large allocation")
	} else {
		r.DecRef()
	}
	b.DecRef()
}

func TestSimAddressRangesDisjoint(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(4096)
	if b.SimAddr() < SimDataBase || b.SimAddr() >= SimMetaBase {
		t.Errorf("data sim addr %x outside data range", b.SimAddr())
	}
	if b.RefcountSimAddr() < SimMetaBase {
		t.Errorf("refcount sim addr %x not in metadata range", b.RefcountSimAddr())
	}
}

func TestRefcountAddrsDistinctLines(t *testing.T) {
	a := NewAllocator()
	b1 := a.Alloc(64)
	b2 := a.Alloc(64)
	if b1.RefcountSimAddr()/64 == b2.RefcountSimAddr()/64 {
		t.Error("two refcounts share a simulated cache line")
	}
}

// Property: after any sequence of alloc/free pairs, live allocations never
// overlap in simulated address space and stats balance.
func TestAllocatorProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewAllocator()
		type span struct{ lo, hi uint64 }
		var live []span
		var bufs []*Buf
		for _, s := range sizes {
			size := int(s%8192) + 1
			b := a.Alloc(size)
			lo, hi := b.SimAddr(), b.SimAddr()+uint64(b.Len())
			for _, sp := range live {
				if lo < sp.hi && sp.lo < hi {
					return false // overlap
				}
			}
			live = append(live, span{lo, hi})
			bufs = append(bufs, b)
		}
		for _, b := range bufs {
			b.DecRef()
		}
		st := a.Stats()
		return st.SlotsInUse == 0 && st.Allocs == uint64(len(sizes)) && st.Frees == uint64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: RecoverPtr on any sub-slice of a live allocation succeeds and
// recovers the right range.
func TestRecoverPtrProperty(t *testing.T) {
	a := NewAllocator()
	b := a.Alloc(8192)
	f := func(off, n uint16) bool {
		o := int(off) % 8192
		ln := int(n)%(8192-o) + 1
		r, ok := a.RecoverPtr(b.Bytes()[o : o+ln])
		if !ok {
			return false
		}
		good := r.SimAddr() == b.SimAddr()+uint64(o) && r.Len() == ln
		r.DecRef()
		return good
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Stale-pointer semantics under slot reuse: once a slot is freed and
// reallocated, RecoverPtr on an old raw pointer recovers the *new*
// allocation. This matches the paper's model — use-after-free protection
// comes from holding references, not from detecting stale raw pointers.
func TestRecoverPtrAfterSlotReuse(t *testing.T) {
	a := NewAllocator()
	b1 := a.Alloc(128)
	raw := b1.Bytes()
	b1.DecRef()
	b2 := a.Alloc(128) // LIFO free list: same slot
	copy(b2.Bytes(), "new-occupant")
	r, ok := a.RecoverPtr(raw)
	if !ok {
		t.Fatal("recover failed on reused slot")
	}
	if r.SimAddr() != b2.SimAddr() {
		t.Error("recovered view does not alias the new occupant")
	}
	r.DecRef()
	b2.DecRef()
}

func TestManySlabsSortedLookup(t *testing.T) {
	a := NewAllocator()
	// Force many slabs across several size classes, then verify RecoverPtr
	// still resolves correctly for each.
	var bufs []*Buf
	for i := 0; i < 200; i++ {
		size := 64 << (i % 5) // 64..1024
		bufs = append(bufs, a.Alloc(size*17%MaxClass+1))
	}
	for i, b := range bufs {
		r, ok := a.RecoverPtr(b.Bytes())
		if !ok || r.SimAddr() != b.SimAddr() {
			t.Fatalf("buffer %d not recovered correctly", i)
		}
		r.DecRef()
	}
	for _, b := range bufs {
		b.DecRef()
	}
	if a.Stats().SlotsInUse != 0 {
		t.Error("leak after mass free")
	}
}

func TestSimAddrOfUnpinnedStable(t *testing.T) {
	a := NewAllocator()
	heap := make([]byte, 256)
	s1 := a.SimAddrOf(heap)
	s2 := a.SimAddrOf(heap)
	if s1 != s2 {
		t.Error("unpinned sim address not stable")
	}
	if s1 < SimUnpinnedBase || s1 >= SimMetaBase {
		t.Errorf("unpinned sim address %x outside its range", s1)
	}
	if a.SimAddrOf(nil) != SimUnpinnedBase {
		t.Error("nil slice should map to the range base")
	}
	pinned := a.Alloc(64)
	if a.SimAddrOf(pinned.Bytes()) != pinned.SimAddr() {
		t.Error("pinned SimAddrOf disagrees with Buf.SimAddr")
	}
}
