// Package kvstore implements the custom key-value store of §6.1.2: string
// keys mapping to values that are single pinned buffers, linked lists of
// pinned buffers, or vectors of pinned buffers. Values live in DMA-safe
// memory so responses can be sent zero-copy; puts replace values with
// allocate-and-pointer-swap rather than updating in place, which is the
// application pattern Cornflakes' memory safety model requires (§4): an
// old value freed by a put survives until in-flight sends complete, via its
// refcount.
package kvstore

import (
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
)

// simBucketBase is the simulated address range for hash-bucket metadata;
// each entry's bucket word lives on its own line so lookup cache behaviour
// scales with the key population, as in the real store.
const simBucketBase = 0x0000_9000_0000_0000

// entry is one key's storage.
type entry struct {
	key       []byte
	keySim    uint64
	bucketSim uint64
	vals      []*mem.Buf
}

// Store is the storage engine. Not safe for concurrent use (single-core
// datapath; §6.6 shards stores across cores).
type Store struct {
	Alloc *mem.Allocator
	Meter *costmodel.Meter

	m         map[string]*entry
	simCursor uint64

	// Stats.
	Gets, Puts, Misses uint64
	ValueBytes         int64
}

// New creates an empty store over the given pinned allocator.
func New(alloc *mem.Allocator, meter *costmodel.Meter) *Store {
	return &Store{Alloc: alloc, Meter: meter, m: make(map[string]*entry), simCursor: simBucketBase}
}

// Len returns the number of keys.
func (s *Store) Len() int { return len(s.m) }

// lookup charges the hash-table probe: hash arithmetic, the bucket line,
// and the stored key comparison.
func (s *Store) lookup(key []byte) *entry {
	m := s.Meter
	m.Charge(m.CPU.HashProbeCy)
	e := s.m[string(key)]
	if e == nil {
		// A miss still walks the bucket.
		m.AccessWord(s.simCursor) // cold probe of an empty bucket region
		return nil
	}
	m.AccessWord(e.bucketSim)
	m.Access(e.keySim, len(e.key))
	return e
}

// PutBuf stores pinned buffers as the key's value, taking over the caller's
// references. Any previous value is released by pointer swap: if the old
// buffers are in flight on the NIC, their refcounts keep them alive.
func (s *Store) PutBuf(key []byte, vals ...*mem.Buf) {
	s.Puts++
	e := s.lookup(key)
	if e == nil {
		keyCopy := append([]byte(nil), key...)
		e = &entry{
			key:       keyCopy,
			keySim:    mem.UnpinnedSimAddr(keyCopy),
			bucketSim: s.simCursor,
		}
		s.simCursor += 64
		s.m[string(key)] = e
		s.Meter.Charge(s.Meter.CPU.HeapAllocCy)
	} else {
		for _, old := range e.vals {
			s.ValueBytes -= int64(old.Len())
			s.Meter.MetadataAccess(old.RefcountSimAddr())
			old.DecRef()
		}
		e.vals = e.vals[:0]
	}
	for _, v := range vals {
		e.vals = append(e.vals, v)
		s.ValueBytes += int64(v.Len())
	}
}

// Put copies data into freshly allocated pinned buffers and stores them.
// Each element of vals becomes one non-contiguous buffer (the linked-list /
// vector value shapes of §6.1.2). Empty elements are skipped: a pinned
// allocation needs at least one byte of slot identity. Put panics if the
// pinned pool is capped and full; the request path uses TryPut.
func (s *Store) Put(key []byte, vals ...[]byte) {
	if err := s.TryPut(key, vals...); err != nil {
		panic("kvstore: Put: " + err.Error())
	}
}

// TryPut is Put with a failable allocation path: if the pinned pool cannot
// hold the new value, it releases any buffers allocated so far and returns
// mem.ErrNoMem with the store unchanged — the existing value under key (if
// any) is kept, not clobbered by a partial write.
func (s *Store) TryPut(key []byte, vals ...[]byte) error {
	bufs, err := s.allocValue(vals)
	if err != nil {
		return err
	}
	s.PutBuf(key, bufs...)
	return nil
}

// allocValue copies vals into fresh pinned buffers, all-or-nothing.
func (s *Store) allocValue(vals [][]byte) ([]*mem.Buf, error) {
	bufs := make([]*mem.Buf, 0, len(vals))
	for _, v := range vals {
		if len(v) == 0 {
			continue
		}
		b, err := s.Alloc.TryAlloc(len(v))
		if err != nil {
			for _, got := range bufs {
				got.DecRef()
			}
			return nil, err
		}
		s.Meter.Charge(s.Meter.CPU.DMABufAllocCy)
		s.Meter.Copy(s.Alloc.SimAddrOf(v), b.SimAddr(), len(v))
		copy(b.Bytes(), v)
		bufs = append(bufs, b)
	}
	return bufs, nil
}

// Get returns the first buffer of the key's value, or nil. The returned
// buffer is the store's copy — callers wanting to keep it across a put must
// take their own reference (CFPtr construction does this automatically).
func (s *Store) Get(key []byte) *mem.Buf {
	s.Gets++
	e := s.lookup(key)
	if e == nil || len(e.vals) == 0 {
		s.Misses++
		return nil
	}
	return e.vals[0]
}

// GetList returns all buffers of the key's value in order, or nil.
func (s *Store) GetList(key []byte) []*mem.Buf {
	s.Gets++
	e := s.lookup(key)
	if e == nil {
		s.Misses++
		return nil
	}
	return e.vals
}

// GetIndex returns the idx'th buffer of the key's value, or nil. Walking to
// the index charges one metadata touch per hop (linked-list traversal).
func (s *Store) GetIndex(key []byte, idx int) *mem.Buf {
	s.Gets++
	e := s.lookup(key)
	if e == nil || idx < 0 || idx >= len(e.vals) {
		s.Misses++
		return nil
	}
	for i := 0; i < idx; i++ {
		s.Meter.MetadataAccess(e.vals[i].RefcountSimAddr())
	}
	return e.vals[idx]
}

// Append copies data into fresh pinned buffers and appends them to the
// key's value list (creating the key if needed) — the RPUSH path of the
// Redis integration. It returns the new list length. Append panics if the
// pinned pool is capped and full; the request path uses TryAppend.
func (s *Store) Append(key []byte, vals ...[]byte) int {
	n, err := s.TryAppend(key, vals...)
	if err != nil {
		panic("kvstore: Append: " + err.Error())
	}
	return n
}

// TryAppend is Append with a failable allocation path: on mem.ErrNoMem no
// elements are appended (all-or-nothing) and the existing list — including
// a key entry created by this call — is left as it was.
func (s *Store) TryAppend(key []byte, vals ...[]byte) (int, error) {
	bufs, err := s.allocValue(vals)
	if err != nil {
		return 0, err
	}
	s.Puts++
	e := s.lookup(key)
	if e == nil {
		keyCopy := append([]byte(nil), key...)
		e = &entry{
			key:       keyCopy,
			keySim:    mem.UnpinnedSimAddr(keyCopy),
			bucketSim: s.simCursor,
		}
		s.simCursor += 64
		s.m[string(key)] = e
		s.Meter.Charge(s.Meter.CPU.HeapAllocCy)
	}
	for _, b := range bufs {
		e.vals = append(e.vals, b)
		s.ValueBytes += int64(b.Len())
	}
	return len(e.vals), nil
}

// Delete removes a key, releasing the store's value references.
func (s *Store) Delete(key []byte) bool {
	e := s.lookup(key)
	if e == nil {
		return false
	}
	for _, v := range e.vals {
		s.ValueBytes -= int64(v.Len())
		s.Meter.MetadataAccess(v.RefcountSimAddr())
		v.DecRef()
	}
	delete(s.m, string(e.key))
	return true
}
