package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
)

func newStore() *Store {
	alloc := mem.NewAllocator()
	meter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	return New(alloc, meter)
}

func TestPutGet(t *testing.T) {
	s := newStore()
	s.Put([]byte("k1"), []byte("value-one"))
	v := s.Get([]byte("k1"))
	if v == nil || string(v.Bytes()) != "value-one" {
		t.Fatalf("Get = %v", v)
	}
	if s.Get([]byte("nope")) != nil {
		t.Error("missing key returned a value")
	}
	if s.Misses != 1 || s.Gets != 2 || s.Puts != 1 {
		t.Errorf("stats: %+v gets=%d puts=%d misses=%d", s, s.Gets, s.Puts, s.Misses)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPutList(t *testing.T) {
	s := newStore()
	s.Put([]byte("list"), []byte("a"), []byte("bb"), []byte("ccc"))
	vals := s.GetList([]byte("list"))
	if len(vals) != 3 {
		t.Fatalf("list len %d", len(vals))
	}
	for i, want := range []string{"a", "bb", "ccc"} {
		if string(vals[i].Bytes()) != want {
			t.Errorf("elem %d = %q", i, vals[i].Bytes())
		}
	}
	if v := s.GetIndex([]byte("list"), 2); v == nil || string(v.Bytes()) != "ccc" {
		t.Error("GetIndex wrong")
	}
	if s.GetIndex([]byte("list"), 5) != nil {
		t.Error("out-of-range index returned value")
	}
	if s.GetIndex([]byte("list"), -1) != nil {
		t.Error("negative index returned value")
	}
}

func TestValuesArePinned(t *testing.T) {
	s := newStore()
	s.Put([]byte("k"), bytes.Repeat([]byte{7}, 1024))
	v := s.Get([]byte("k"))
	if !s.Alloc.IsPinned(v.Bytes()) {
		t.Error("stored value is not in DMA-safe memory")
	}
}

func TestPutReplacePointerSwap(t *testing.T) {
	s := newStore()
	s.Put([]byte("k"), []byte("old-value"))
	old := s.Get([]byte("k"))
	// Simulate an in-flight send holding a reference.
	old.IncRef()
	s.Put([]byte("k"), []byte("new-value"))
	// The store dropped its reference, but the in-flight one keeps the old
	// data intact (no in-place update).
	if string(old.Bytes()) != "old-value" {
		t.Error("old value mutated by put (in-place update)")
	}
	if string(s.Get([]byte("k")).Bytes()) != "new-value" {
		t.Error("new value not visible")
	}
	old.DecRef()
	if s.Alloc.Stats().SlotsInUse != 1 {
		t.Errorf("slots in use = %d, want 1 (old slot freed after last ref)", s.Alloc.Stats().SlotsInUse)
	}
}

func TestValueBytesAccounting(t *testing.T) {
	s := newStore()
	s.Put([]byte("a"), make([]byte, 100))
	s.Put([]byte("b"), make([]byte, 50), make([]byte, 25))
	if s.ValueBytes != 175 {
		t.Errorf("ValueBytes = %d", s.ValueBytes)
	}
	s.Put([]byte("a"), make([]byte, 10))
	if s.ValueBytes != 85 {
		t.Errorf("ValueBytes after replace = %d", s.ValueBytes)
	}
	s.Delete([]byte("b"))
	if s.ValueBytes != 10 {
		t.Errorf("ValueBytes after delete = %d", s.ValueBytes)
	}
}

func TestDelete(t *testing.T) {
	s := newStore()
	s.Put([]byte("k"), []byte("v"))
	if !s.Delete([]byte("k")) {
		t.Error("delete failed")
	}
	if s.Delete([]byte("k")) {
		t.Error("double delete succeeded")
	}
	if s.Get([]byte("k")) != nil {
		t.Error("deleted key readable")
	}
	if s.Alloc.Stats().SlotsInUse != 0 {
		t.Error("value buffer leaked after delete")
	}
}

func TestPutBufTransfersOwnership(t *testing.T) {
	s := newStore()
	b := s.Alloc.Alloc(64)
	copy(b.Bytes(), "direct")
	s.PutBuf([]byte("k"), b)
	if b.Refcount() != 1 {
		t.Errorf("refcount = %d, want 1 (store took over the caller's ref)", b.Refcount())
	}
	s.Delete([]byte("k"))
	if s.Alloc.Stats().SlotsInUse != 0 {
		t.Error("buffer leaked")
	}
}

func TestGetChargesLookupCosts(t *testing.T) {
	s := newStore()
	s.Put([]byte("key-with-some-length"), make([]byte, 512))
	s.Meter.Drain()
	s.Get([]byte("key-with-some-length"))
	if s.Meter.Drain() <= 0 {
		t.Error("get charged nothing")
	}
}

// Property: after any interleaving of puts, replaces and deletes, the store
// contents match a reference map and no buffers leak.
func TestStoreMatchesReferenceMap(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Val []byte
		Del bool
	}) bool {
		s := newStore()
		ref := map[string][]byte{}
		for _, op := range ops {
			key := []byte(fmt.Sprintf("key-%d", op.Key%16))
			if op.Del {
				delete(ref, string(key))
				s.Delete(key)
			} else {
				v := append([]byte(nil), op.Val...)
				ref[string(key)] = v
				if len(v) == 0 {
					v = []byte{0} // store requires non-empty allocations
					ref[string(key)] = v
				}
				s.Put(key, v)
			}
		}
		for k, want := range ref {
			got := s.Get([]byte(k))
			if got == nil || !bytes.Equal(got.Bytes(), want) {
				return false
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		// Every key deleted → no leaks.
		for k := range ref {
			s.Delete([]byte(k))
		}
		return s.Alloc.Stats().SlotsInUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAppend(t *testing.T) {
	s := newStore()
	if n := s.Append([]byte("l"), []byte("a")); n != 1 {
		t.Errorf("first append -> %d", n)
	}
	if n := s.Append([]byte("l"), []byte("bb"), []byte("ccc")); n != 3 {
		t.Errorf("second append -> %d", n)
	}
	vals := s.GetList([]byte("l"))
	if len(vals) != 3 || string(vals[2].Bytes()) != "ccc" {
		t.Errorf("list contents wrong: %d elems", len(vals))
	}
	if s.ValueBytes != 6 {
		t.Errorf("ValueBytes = %d, want 6", s.ValueBytes)
	}
	// Empty elements are skipped.
	if n := s.Append([]byte("l"), nil); n != 3 {
		t.Errorf("empty append -> %d, want 3", n)
	}
	// Append interacts correctly with Put (replace).
	s.Put([]byte("l"), []byte("z"))
	if got := s.GetList([]byte("l")); len(got) != 1 || string(got[0].Bytes()) != "z" {
		t.Error("Put after Append did not replace")
	}
}

func TestGetListMiss(t *testing.T) {
	s := newStore()
	if s.GetList([]byte("missing")) != nil {
		t.Error("missing key returned a list")
	}
	if s.Misses != 1 {
		t.Errorf("Misses = %d", s.Misses)
	}
}
