package core

import (
	"cornflakes/internal/mem"
	"cornflakes/internal/wire"
)

// Marshal assembles the complete serialized object into a fresh byte slice:
// header region, then copied data, then zero-copy data. The networking
// stack never calls this — it writes the header and copy region into a DMA
// buffer and lets the NIC gather the zero-copy entries (§3.2.3) — but tests,
// tools, and the non-scatter-gather fallback path use it, and its output is
// byte-identical to what a receiver sees after NIC gather.
func Marshal(obj Obj) []byte {
	l := obj.Layout()
	out := make([]byte, l.ObjectLen())
	obj.WriteHeader(out)
	cur := l.HeaderLen
	obj.IterateCopyEntries(func(data []byte, sim uint64) {
		copy(out[cur:], data)
		cur += len(data)
	})
	obj.IterateZCEntries(func(buf *mem.Buf) {
		copy(out[cur:], buf.Bytes())
		cur += buf.Len()
	})
	return out
}

// PeekID extracts field 0 of a serialized message when it is a present
// integer field — the request/response id convention every RPC schema in
// this repository follows. Load generators use it to match responses to
// outstanding requests without knowing the response schema.
func PeekID(data []byte) (uint64, bool) {
	if len(data) < 4 {
		return 0, false
	}
	words := int(wire.GetU32(data))
	if words <= 0 || words > 1024 {
		return 0, false
	}
	fixed := 4 + 4*words
	if len(data) < fixed+wire.EntrySize {
		return 0, false
	}
	if wire.GetU32(data[4:])&1 == 0 {
		return 0, false // field 0 absent
	}
	return wire.GetU64(data[fixed:]), true
}
