package core

import "testing"

// TestMessagePoolAllocFree pins the per-request Message recycling added for
// the serialization hot loop: once a schema's pool is warm, build→release
// on the send side and deserialize→release on the receive side must not
// allocate. These are the two Message lifecycles every simulated request
// crosses (request decode on the server, response build on the server).
func TestMessagePoolAllocFree(t *testing.T) {
	c := newTestCtx()
	s := kvSchema()

	t.Run("send", func(t *testing.T) {
		cycle := func() {
			m := NewMessage(s, c)
			m.SetInt(0, 7)
			m.AppendBytes(1, c.NewCFPtrCopy([]byte("key-bytes")))
			m.Release()
		}
		for i := 0; i < 8; i++ {
			cycle()
			c.Arena.Reset()
		}
		allocs := testing.AllocsPerRun(100, func() {
			cycle()
			c.Arena.Reset()
		})
		if allocs != 0 {
			t.Fatalf("send-side message cycle allocated %.2f allocs (want 0)", allocs)
		}
	})

	t.Run("recv", func(t *testing.T) {
		m := NewMessage(s, c)
		m.SetInt(0, 7)
		m.AppendBytes(1, c.NewCFPtrCopy([]byte("key-bytes")))
		data := Marshal(m)
		m.Release()
		buf := c.Alloc.Alloc(len(data))
		copy(buf.Bytes(), data)
		cycle := func() {
			buf.IncRef() // Deserialize takes over a reference; keep ours
			got, err := c.Deserialize(s, buf)
			if err != nil {
				t.Fatal(err)
			}
			got.Release()
		}
		for i := 0; i < 8; i++ {
			cycle()
		}
		allocs := testing.AllocsPerRun(100, cycle)
		if allocs != 0 {
			t.Fatalf("recv-side message cycle allocated %.2f allocs (want 0)", allocs)
		}
		buf.DecRef()
	})
}
