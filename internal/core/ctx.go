package core

import (
	"math"

	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
)

// Threshold values for the scatter-gather heuristic (§3.2.1, §5).
const (
	// DefaultThreshold is the empirically measured 512-byte crossover: only
	// bytes/string fields at least this large are sent zero-copy.
	DefaultThreshold = 512
	// ThresholdAllZeroCopy makes every field take the scatter-gather path
	// (the "threshold configured to 0" arm of the §5 study).
	ThresholdAllZeroCopy = 0
	// ThresholdAllCopy makes every field copy (the "threshold configured to
	// infinity" arm).
	ThresholdAllCopy = math.MaxInt
)

// Ctx binds the serialization library to one core's resources: the pinned
// allocator (DMA-safe memory + pointer recovery), the arena for copied
// CFPtr vectors, the cost meter, and the configured zero-copy threshold.
type Ctx struct {
	Alloc     *mem.Allocator
	Arena     *mem.Arena
	Meter     *costmodel.Meter
	Threshold int

	// DisableArena makes the copy path use general-purpose heap
	// allocations instead of the arena — the ablation for the paper's
	// Table 1 footnote ("the Cornflakes implementation uses arena
	// allocation for vectors inside generated data structures, which this
	// Protobuf implementation does not provide").
	DisableArena bool

	// HighWater, when positive, makes the zero-copy decision
	// pressure-aware: once pinned-pool occupancy reaches this fraction,
	// fields that would be sent zero-copy are copied instead. Zero-copy
	// pins the slot until DMA (and, over TCP-lite, ACK) completes, so
	// under pressure copying trades CPU cycles for shorter slot
	// lifetimes and keeps the pool from exhausting. Zero disables the
	// check (and an uncapped allocator always reports zero occupancy).
	HighWater float64

	// Fallbacks counts fields demoted from zero-copy to copy by the
	// HighWater check.
	Fallbacks uint64

	// msgPool recycles Message structs per schema: Release parks a
	// terminally-released message here and NewMessage/Deserialize reuse it,
	// field-value capacity included — the request loop's Messages stop
	// hitting the heap once the pool reaches steady state. A Ctx belongs to
	// one simulated core (single goroutine), so the pool needs no locking.
	msgPool map[*Schema][]*Message
}

// getMsg pops a pooled message for schema, or returns nil.
func (c *Ctx) getMsg(schema *Schema) *Message {
	pool := c.msgPool[schema]
	k := len(pool)
	if k == 0 {
		return nil
	}
	m := pool[k-1]
	pool[k-1] = nil
	c.msgPool[schema] = pool[:k-1]
	return m
}

// putMsg parks a released message for reuse.
func (c *Ctx) putMsg(m *Message) {
	if c.msgPool == nil {
		c.msgPool = make(map[*Schema][]*Message)
	}
	c.msgPool[m.schema] = append(c.msgPool[m.schema], m)
}

// NewCtx builds a context with the default 512-byte threshold.
func NewCtx(alloc *mem.Allocator, arena *mem.Arena, meter *costmodel.Meter) *Ctx {
	return &Ctx{Alloc: alloc, Arena: arena, Meter: meter, Threshold: DefaultThreshold}
}

// CFPtr is the hybrid smart pointer (Listing 3): it holds either a
// zero-copy reference into a pinned allocation (with the allocation's
// refcount incremented) or data copied into an arena-backed vector. The
// constructor is agnostic to where the input bytes live; the decision and
// all bookkeeping happen at construction time (§3.2.1), so each field costs
// either a data cache touch (copy) or a metadata cache touch (refcount) —
// never both.
type CFPtr struct {
	data []byte
	sim  uint64
	zc   *mem.Buf // non-nil for the zero-copy variant; owns one reference
}

// NewCFPtr constructs a CFPtr from arbitrary bytes, applying the size
// threshold and the memory-transparency check:
//
//  1. len(data) < threshold            → copy into the arena
//  2. data inside a live pinned alloc  → zero-copy (refcount incremented)
//  3. otherwise (non-DMA-safe memory)  → copy into the arena
func (c *Ctx) NewCFPtr(data []byte) CFPtr {
	m := c.Meter
	m.Charge(m.CPU.PerFieldCy)
	if len(data) >= c.Threshold {
		if c.HighWater > 0 && c.Alloc.Occupancy() >= c.HighWater {
			// Pinned pool is nearly full: degrade this field to the copy
			// encoding rather than pinning another slot (graceful
			// degradation toward d=0 behavior under overload).
			c.Fallbacks++
			return c.copyPtr(data)
		}
		m.Charge(m.CPU.RegistryLookupCy)
		if buf, ok := c.Alloc.RecoverPtr(data); ok {
			// Refcount increment: the metadata access whose cache misses
			// motivate the hybrid design (§2.3).
			m.MetadataAccess(buf.RefcountSimAddr())
			return CFPtr{data: buf.Bytes(), sim: buf.SimAddr(), zc: buf}
		}
		// Not DMA-safe: fall through to copy (memory transparency).
	}
	return c.copyPtr(data)
}

// NewCFPtrCopy always copies, bypassing the heuristic (used for fields the
// application knows are mutable in place, and by tests).
func (c *Ctx) NewCFPtrCopy(data []byte) CFPtr {
	c.Meter.Charge(c.Meter.CPU.PerFieldCy)
	return c.copyPtr(data)
}

func (c *Ctx) copyPtr(data []byte) CFPtr {
	m := c.Meter
	var v mem.View
	if c.DisableArena {
		// Heap path: a fresh allocation per field, cold destination lines.
		b := make([]byte, len(data))
		v = mem.View{Data: b, Sim: m.AllocSimAddr(len(data))}
		m.Charge(m.CPU.HeapAllocCy)
	} else {
		v = c.Arena.Alloc(len(data))
		m.Charge(m.CPU.ArenaAllocCy)
	}
	if len(data) > 0 {
		m.Copy(c.Alloc.SimAddrOf(data), v.Sim, len(data))
		copy(v.Data, data)
	}
	return CFPtr{data: v.Data, sim: v.Sim}
}

// ZeroCopyPtrFromBuf wraps an already-recovered pinned buffer view. The
// CFPtr takes over the caller's reference (no additional increment).
func ZeroCopyPtrFromBuf(buf *mem.Buf) CFPtr {
	return CFPtr{data: buf.Bytes(), sim: buf.SimAddr(), zc: buf}
}

// Len returns the payload length.
func (p CFPtr) Len() int { return len(p.data) }

// Bytes returns the payload view.
func (p CFPtr) Bytes() []byte { return p.data }

// Sim returns the payload's simulated address.
func (p CFPtr) Sim() uint64 { return p.sim }

// IsZeroCopy reports whether the pointer took the scatter-gather path.
func (p CFPtr) IsZeroCopy() bool { return p.zc != nil }

// ZCBuf returns the underlying pinned buffer for zero-copy pointers, or nil.
func (p CFPtr) ZCBuf() *mem.Buf { return p.zc }

// Release drops the zero-copy reference, if any. The meter records the
// refcount update. Releasing a copy-variant pointer is a no-op (arena
// memory is mass-freed by Arena.Reset).
func (p CFPtr) Release(m *costmodel.Meter) {
	if p.zc != nil {
		m.MetadataAccess(p.zc.RefcountSimAddr())
		p.zc.DecRef()
	}
}
