package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
)

func newTestCtx() *Ctx {
	alloc := mem.NewAllocator()
	arena := mem.NewArena(64 << 10)
	meter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	return NewCtx(alloc, arena, meter)
}

// roundTrip marshals a send-mode message and deserializes it into a
// recv-mode view, as the receiver of a NIC-gathered frame would.
func roundTrip(t *testing.T, c *Ctx, m *Message) *Message {
	t.Helper()
	data := Marshal(m)
	buf := c.Alloc.Alloc(len(data))
	copy(buf.Bytes(), data)
	got, err := c.Deserialize(m.Schema(), buf)
	if err != nil {
		t.Fatalf("Deserialize: %v", err)
	}
	return got
}

func TestSchemaValidate(t *testing.T) {
	nested := &Schema{Name: "Inner", Fields: []Field{{Name: "x", Kind: KindInt}}}
	good := &Schema{Name: "M", Fields: []Field{
		{Name: "a", Kind: KindInt},
		{Name: "b", Kind: KindBytes},
		{Name: "c", Kind: KindNested, Nested: nested},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	bad := []*Schema{
		nil,
		{Name: "", Fields: []Field{{Name: "a", Kind: KindInt}}},
		{Name: "E", Fields: nil},
		{Name: "D", Fields: []Field{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}},
		{Name: "N", Fields: []Field{{Name: "n", Kind: KindNested}}},                    // missing nested schema
		{Name: "X", Fields: []Field{{Name: "x", Kind: KindInt, Nested: nested}}},       // spurious nested schema
		{Name: "K", Fields: []Field{{Name: "k", Kind: FieldKind(99)}}},                 // unknown kind
		{Name: "B", Fields: []Field{{Name: "b", Kind: KindNested, Nested: &Schema{}}}}, // invalid nested
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestSchemaRecursive(t *testing.T) {
	s := &Schema{Name: "Tree"}
	s.Fields = []Field{
		{Name: "v", Kind: KindInt},
		{Name: "kids", Kind: KindNestedList, Nested: s},
	}
	if err := s.Validate(); err != nil {
		t.Errorf("recursive schema rejected: %v", err)
	}
}

func TestFieldIndex(t *testing.T) {
	s := &Schema{Name: "M", Fields: []Field{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindBytes}}}
	if s.FieldIndex("b") != 1 || s.FieldIndex("zz") != -1 {
		t.Error("FieldIndex wrong")
	}
	if s.NumFields() != 2 {
		t.Error("NumFields wrong")
	}
}

func TestCFPtrSmallCopies(t *testing.T) {
	c := newTestCtx()
	pinned := c.Alloc.Alloc(4096)
	small := pinned.Bytes()[:100] // pinned but below threshold
	p := c.NewCFPtr(small)
	if p.IsZeroCopy() {
		t.Error("100B field took zero-copy path (threshold 512)")
	}
	if pinned.Refcount() != 1 {
		t.Error("copy path touched the refcount")
	}
	if !bytes.Equal(p.Bytes(), small) {
		t.Error("copied data differs")
	}
}

func TestCFPtrLargePinnedZeroCopies(t *testing.T) {
	c := newTestCtx()
	pinned := c.Alloc.Alloc(4096)
	p := c.NewCFPtr(pinned.Bytes()[:1024])
	if !p.IsZeroCopy() {
		t.Fatal("1024B pinned field did not take zero-copy path")
	}
	if pinned.Refcount() != 2 {
		t.Errorf("refcount = %d, want 2 after recovery", pinned.Refcount())
	}
	p.Release(c.Meter)
	if pinned.Refcount() != 1 {
		t.Errorf("refcount = %d after release, want 1", pinned.Refcount())
	}
}

func TestCFPtrLargeUnpinnedCopies(t *testing.T) {
	c := newTestCtx()
	heap := make([]byte, 2048) // large but NOT DMA-safe
	p := c.NewCFPtr(heap)
	if p.IsZeroCopy() {
		t.Error("unpinned memory took zero-copy path (memory transparency violated)")
	}
}

func TestCFPtrThresholdBoundary(t *testing.T) {
	c := newTestCtx()
	pinned := c.Alloc.Alloc(4096)
	at := c.NewCFPtr(pinned.Bytes()[:512])
	below := c.NewCFPtr(pinned.Bytes()[:511])
	if !at.IsZeroCopy() {
		t.Error("field of exactly threshold size should zero-copy")
	}
	if below.IsZeroCopy() {
		t.Error("field below threshold should copy")
	}
	at.Release(c.Meter)
}

func TestCFPtrAllCopyThreshold(t *testing.T) {
	c := newTestCtx()
	c.Threshold = ThresholdAllCopy
	pinned := c.Alloc.Alloc(8192)
	if c.NewCFPtr(pinned.Bytes()).IsZeroCopy() {
		t.Error("threshold=∞ still zero-copied")
	}
}

func TestCFPtrAllZeroCopyThreshold(t *testing.T) {
	c := newTestCtx()
	c.Threshold = ThresholdAllZeroCopy
	pinned := c.Alloc.Alloc(64)
	p := c.NewCFPtr(pinned.Bytes()[:16])
	if !p.IsZeroCopy() {
		t.Error("threshold=0 did not zero-copy a small pinned field")
	}
	p.Release(c.Meter)
}

func TestCFPtrEmpty(t *testing.T) {
	c := newTestCtx()
	p := c.NewCFPtr(nil)
	if p.Len() != 0 || p.IsZeroCopy() {
		t.Error("empty CFPtr wrong")
	}
	p.Release(c.Meter) // must not panic
}

func TestCFPtrCopyCheaperThanZCMeterAccounting(t *testing.T) {
	c := newTestCtx()
	pinned := c.Alloc.Alloc(4096)
	c.Meter.Drain()
	c.NewCFPtr(pinned.Bytes()[:1024])
	if c.Meter.MetadataTouch == 0 {
		t.Error("zero-copy construction did not touch metadata")
	}
	if c.Meter.Drain() <= 0 {
		t.Error("zero-copy construction charged nothing")
	}
}

// --- Message round trips ---

func kvSchema() *Schema {
	return &Schema{Name: "GetM", Fields: []Field{
		{Name: "id", Kind: KindInt},
		{Name: "keys", Kind: KindBytesList},
		{Name: "vals", Kind: KindBytesList},
	}}
}

func TestRoundTripScalars(t *testing.T) {
	c := newTestCtx()
	s := &Schema{Name: "M", Fields: []Field{
		{Name: "a", Kind: KindInt},
		{Name: "b", Kind: KindBytes},
		{Name: "s", Kind: KindString},
	}}
	m := NewMessage(s, c)
	m.SetInt(0, 42)
	m.SetBytes(1, c.NewCFPtr([]byte("payload-bytes")))
	m.SetString(2, c.NewCFPtr([]byte("héllo wörld")))

	got := roundTrip(t, c, m)
	if !got.Has(0) || !got.Has(1) || !got.Has(2) {
		t.Fatal("fields missing")
	}
	if got.GetInt(0) != 42 {
		t.Errorf("int = %d", got.GetInt(0))
	}
	if !bytes.Equal(got.GetBytes(1), []byte("payload-bytes")) {
		t.Errorf("bytes = %q", got.GetBytes(1))
	}
	str, err := got.GetString(2)
	if err != nil || str != "héllo wörld" {
		t.Errorf("string = %q, %v", str, err)
	}
}

func TestRoundTripAbsentFields(t *testing.T) {
	c := newTestCtx()
	s := kvSchema()
	m := NewMessage(s, c)
	m.SetInt(0, 7)
	got := roundTrip(t, c, m)
	if !got.Has(0) || got.Has(1) || got.Has(2) {
		t.Error("presence wrong")
	}
}

func TestRoundTripLists(t *testing.T) {
	c := newTestCtx()
	s := &Schema{Name: "L", Fields: []Field{
		{Name: "nums", Kind: KindIntList},
		{Name: "blobs", Kind: KindBytesList},
		{Name: "tags", Kind: KindStringList},
	}}
	m := NewMessage(s, c)
	for i := 0; i < 5; i++ {
		m.AppendInt(0, uint64(i*i))
		m.AppendBytes(1, c.NewCFPtr([]byte(fmt.Sprintf("blob-%d", i))))
		m.AppendString(2, c.NewCFPtr([]byte(fmt.Sprintf("tag-%d", i))))
	}
	got := roundTrip(t, c, m)
	if got.ListLen(0) != 5 || got.ListLen(1) != 5 || got.ListLen(2) != 5 {
		t.Fatalf("list lens %d %d %d", got.ListLen(0), got.ListLen(1), got.ListLen(2))
	}
	for i := 0; i < 5; i++ {
		if got.GetIntElem(0, i) != uint64(i*i) {
			t.Errorf("nums[%d] = %d", i, got.GetIntElem(0, i))
		}
		if want := fmt.Sprintf("blob-%d", i); string(got.GetBytesElem(1, i)) != want {
			t.Errorf("blobs[%d] = %q", i, got.GetBytesElem(1, i))
		}
		if s, err := got.GetStringElem(2, i); err != nil || s != fmt.Sprintf("tag-%d", i) {
			t.Errorf("tags[%d] = %q, %v", i, s, err)
		}
	}
}

func TestRoundTripNested(t *testing.T) {
	c := newTestCtx()
	inner := &Schema{Name: "Inner", Fields: []Field{
		{Name: "x", Kind: KindInt},
		{Name: "data", Kind: KindBytes},
	}}
	outer := &Schema{Name: "Outer", Fields: []Field{
		{Name: "name", Kind: KindBytes},
		{Name: "one", Kind: KindNested, Nested: inner},
		{Name: "many", Kind: KindNestedList, Nested: inner},
	}}
	m := NewMessage(outer, c)
	m.SetBytes(0, c.NewCFPtr([]byte("outer-name")))
	sub := NewMessage(inner, c)
	sub.SetInt(0, 99)
	sub.SetBytes(1, c.NewCFPtr([]byte("inner-data")))
	m.SetNested(1, sub)
	for i := 0; i < 3; i++ {
		e := NewMessage(inner, c)
		e.SetInt(0, uint64(1000+i))
		e.SetBytes(1, c.NewCFPtr([]byte(fmt.Sprintf("elem-%d", i))))
		m.AppendNested(2, e)
	}

	got := roundTrip(t, c, m)
	if string(got.GetBytes(0)) != "outer-name" {
		t.Errorf("name = %q", got.GetBytes(0))
	}
	gsub := got.GetNested(1)
	if gsub.GetInt(0) != 99 || string(gsub.GetBytes(1)) != "inner-data" {
		t.Errorf("nested = %d %q", gsub.GetInt(0), gsub.GetBytes(1))
	}
	if got.ListLen(2) != 3 {
		t.Fatalf("nested list len %d", got.ListLen(2))
	}
	for i := 0; i < 3; i++ {
		e := got.GetNestedElem(2, i)
		if e.GetInt(0) != uint64(1000+i) || string(e.GetBytes(1)) != fmt.Sprintf("elem-%d", i) {
			t.Errorf("elem %d = %d %q", i, e.GetInt(0), e.GetBytes(1))
		}
	}
}

func TestRoundTripMixedCopyAndZeroCopy(t *testing.T) {
	c := newTestCtx()
	s := kvSchema()
	// Two large pinned values (zero-copy) interleaved with small keys
	// (copied).
	v1 := c.Alloc.Alloc(1024)
	v2 := c.Alloc.Alloc(2048)
	for i := range v1.Bytes() {
		v1.Bytes()[i] = 0x11
	}
	for i := range v2.Bytes() {
		v2.Bytes()[i] = 0x22
	}
	m := NewMessage(s, c)
	m.SetInt(0, 5)
	m.AppendBytes(1, c.NewCFPtr([]byte("key-one")))
	m.AppendBytes(1, c.NewCFPtr([]byte("key-two")))
	m.AppendBytes(2, c.NewCFPtr(v1.Bytes()))
	m.AppendBytes(2, c.NewCFPtr(v2.Bytes()))

	l := m.Layout()
	if l.NumZC != 2 {
		t.Errorf("NumZC = %d, want 2", l.NumZC)
	}
	if l.NumCopy != 2 {
		t.Errorf("NumCopy = %d, want 2", l.NumCopy)
	}
	if l.ZCLen != 3072 {
		t.Errorf("ZCLen = %d, want 3072", l.ZCLen)
	}

	got := roundTrip(t, c, m)
	if string(got.GetBytesElem(1, 0)) != "key-one" || string(got.GetBytesElem(1, 1)) != "key-two" {
		t.Error("keys wrong")
	}
	if !bytes.Equal(got.GetBytesElem(2, 0), v1.Bytes()) {
		t.Error("val1 wrong")
	}
	if !bytes.Equal(got.GetBytesElem(2, 1), v2.Bytes()) {
		t.Error("val2 wrong")
	}
	m.Release()
	if v1.Refcount() != 1 || v2.Refcount() != 1 {
		t.Errorf("refcounts after release: %d %d", v1.Refcount(), v2.Refcount())
	}
}

func TestObjectLenMatchesMarshal(t *testing.T) {
	c := newTestCtx()
	s := kvSchema()
	m := NewMessage(s, c)
	m.SetInt(0, 1)
	m.AppendBytes(1, c.NewCFPtr(bytes.Repeat([]byte("k"), 40)))
	v := c.Alloc.Alloc(700)
	m.AppendBytes(2, c.NewCFPtr(v.Bytes()))
	if got := len(Marshal(m)); got != m.Layout().ObjectLen() {
		t.Errorf("Marshal len %d != ObjectLen %d", got, m.Layout().ObjectLen())
	}
}

func TestEmptyBytesField(t *testing.T) {
	c := newTestCtx()
	s := &Schema{Name: "E", Fields: []Field{{Name: "b", Kind: KindBytes}}}
	m := NewMessage(s, c)
	m.SetBytes(0, c.NewCFPtr(nil))
	got := roundTrip(t, c, m)
	if !got.Has(0) || len(got.GetBytes(0)) != 0 {
		t.Error("empty bytes field broken")
	}
}

func TestDeserializeRejectsCorruptHeader(t *testing.T) {
	c := newTestCtx()
	s := kvSchema()
	m := NewMessage(s, c)
	m.SetInt(0, 1)
	m.AppendBytes(1, c.NewCFPtr([]byte("key")))
	data := Marshal(m)

	// Corrupt the list table offset to point outside the object.
	for mut := 0; mut < len(data); mut++ {
		bad := append([]byte(nil), data...)
		bad[mut] ^= 0xFF
		buf := c.Alloc.Alloc(len(bad))
		copy(buf.Bytes(), bad)
		msg, err := c.Deserialize(s, buf)
		// Either rejected, or accepted with in-bounds (possibly garbage)
		// fields — never a panic / out-of-bounds read.
		if err == nil {
			for i := range s.Fields {
				if !msg.Has(i) {
					continue
				}
				switch s.Fields[i].Kind {
				case KindInt:
					_ = msg.GetInt(i)
				case KindBytesList:
					for j := 0; j < msg.ListLen(i); j++ {
						_ = msg.GetBytesElem(i, j)
					}
				}
			}
			msg.Release()
		} else {
			buf.DecRef()
		}
	}
}

func TestDeserializeTruncated(t *testing.T) {
	c := newTestCtx()
	s := kvSchema()
	m := NewMessage(s, c)
	m.SetInt(0, 1)
	m.AppendBytes(1, c.NewCFPtr([]byte("some-key-data")))
	data := Marshal(m)
	for n := 0; n < len(data); n++ {
		if n == 0 {
			continue
		}
		buf := c.Alloc.Alloc(n)
		copy(buf.Bytes(), data[:n])
		if msg, err := c.Deserialize(s, buf); err == nil {
			// Acceptable only if every referenced range still fits.
			msg.Release()
		} else {
			buf.DecRef()
		}
	}
}

func TestRecvMessageIsImmutable(t *testing.T) {
	c := newTestCtx()
	m := NewMessage(kvSchema(), c)
	m.SetInt(0, 1)
	got := roundTrip(t, c, m)
	defer func() {
		if recover() == nil {
			t.Error("mutating a recv message did not panic")
		}
	}()
	got.SetInt(0, 2)
}

func TestSendMessageGetterPanics(t *testing.T) {
	c := newTestCtx()
	m := NewMessage(kvSchema(), c)
	defer func() {
		if recover() == nil {
			t.Error("getter on send message did not panic")
		}
	}()
	m.GetInt(0)
}

func TestUTF8ValidationDeferred(t *testing.T) {
	c := newTestCtx()
	s := &Schema{Name: "S", Fields: []Field{{Name: "s", Kind: KindString}}}
	m := NewMessage(s, c)
	m.SetString(0, c.NewCFPtr([]byte{0xFF, 0xFE, 0x41}))
	// Deserialization succeeds — validation is deferred.
	got := roundTrip(t, c, m)
	if _, err := got.GetString(0); err == nil {
		t.Error("invalid UTF-8 accepted on access")
	}
}

func TestReleaseRecvBufFreesWhenLastRef(t *testing.T) {
	c := newTestCtx()
	m := NewMessage(kvSchema(), c)
	m.SetInt(0, 9)
	data := Marshal(m)
	buf := c.Alloc.Alloc(len(data))
	copy(buf.Bytes(), data)
	got, err := c.Deserialize(kvSchema(), buf)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Alloc.Stats().SlotsInUse
	got.Release()
	if c.Alloc.Stats().SlotsInUse != before-1 {
		t.Error("recv buffer not freed by Release")
	}
}

// Echo pattern: zero-copy fields built from views into the received buffer
// keep the buffer alive after the receive view is released.
func TestEchoKeepsRecvBufferAliveViaCFPtr(t *testing.T) {
	c := newTestCtx()
	s := kvSchema()
	m := NewMessage(s, c)
	payload := bytes.Repeat([]byte{0xAB}, 2048)
	m.AppendBytes(2, c.NewCFPtr(payload))
	data := Marshal(m)
	buf := c.Alloc.Alloc(len(data))
	copy(buf.Bytes(), data)
	got, err := c.Deserialize(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	// Build an echo response zero-copying out of the received buffer.
	view := got.GetBytesElem(2, 0)
	p := c.NewCFPtr(view)
	if !p.IsZeroCopy() {
		t.Fatal("view into received pinned buffer did not recover")
	}
	got.Release() // drop the receive reference
	if buf.Refcount() != 1 {
		t.Fatalf("refcount = %d, want 1 (CFPtr keeps it alive)", buf.Refcount())
	}
	if !bytes.Equal(p.Bytes(), payload) {
		t.Error("payload corrupted")
	}
	p.Release(c.Meter)
	if c.Alloc.Stats().SlotsInUse != 0 {
		t.Error("buffer leaked after final release")
	}
}

// Property: random messages over the KV schema round-trip exactly, at every
// threshold setting.
func TestRoundTripProperty(t *testing.T) {
	thresholds := []int{ThresholdAllZeroCopy, DefaultThreshold, ThresholdAllCopy}
	f := func(id uint64, keys [][]byte, valSizes []uint16) bool {
		for _, th := range thresholds {
			c := newTestCtx()
			c.Threshold = th
			s := kvSchema()
			m := NewMessage(s, c)
			m.SetInt(0, id)
			for _, k := range keys {
				m.AppendBytes(1, c.NewCFPtr(k))
			}
			var wantVals [][]byte
			for _, vs := range valSizes {
				n := int(vs%4096) + 1
				v := c.Alloc.Alloc(n)
				for i := range v.Bytes() {
					v.Bytes()[i] = byte(n + i)
				}
				wantVals = append(wantVals, append([]byte(nil), v.Bytes()...))
				m.AppendBytes(2, c.NewCFPtr(v.Bytes()))
			}
			data := Marshal(m)
			buf := c.Alloc.Alloc(len(data) + 1)
			buf.Resize(len(data))
			copy(buf.Bytes(), data)
			got, err := c.Deserialize(s, buf)
			if err != nil {
				return false
			}
			if got.GetInt(0) != id {
				return false
			}
			if got.ListLen(1) != len(keys) || got.ListLen(2) != len(wantVals) {
				return false
			}
			for i, k := range keys {
				if !bytes.Equal(got.GetBytesElem(1, i), k) {
					return false
				}
			}
			for i, v := range wantVals {
				if !bytes.Equal(got.GetBytesElem(2, i), v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the hybrid partition invariant — every pinned field ≥ threshold
// is zero-copy, everything else is copied.
func TestHybridPartitionProperty(t *testing.T) {
	f := func(sizes []uint16, threshold uint16) bool {
		c := newTestCtx()
		c.Threshold = int(threshold)
		for _, sz := range sizes {
			n := int(sz%8192) + 1
			v := c.Alloc.Alloc(n)
			p := c.NewCFPtr(v.Bytes())
			if want := n >= int(threshold); p.IsZeroCopy() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	build := func() []byte {
		c := newTestCtx()
		m := NewMessage(kvSchema(), c)
		m.SetInt(0, 3)
		m.AppendBytes(1, c.NewCFPtr([]byte("alpha")))
		v := c.Alloc.Alloc(600)
		for i := range v.Bytes() {
			v.Bytes()[i] = byte(i)
		}
		m.AppendBytes(2, c.NewCFPtr(v.Bytes()))
		return Marshal(m)
	}
	if !bytes.Equal(build(), build()) {
		t.Error("marshal not deterministic")
	}
}

func TestFieldKindStrings(t *testing.T) {
	kinds := []FieldKind{KindInt, KindBytes, KindString, KindNested, KindIntList, KindBytesList, KindStringList, KindNestedList}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	if FieldKind(42).String() != "FieldKind(42)" {
		t.Error("unknown kind string wrong")
	}
	if !KindBytesList.IsList() || KindBytes.IsList() {
		t.Error("IsList wrong")
	}
	if !KindString.IsPtrKind() || KindInt.IsPtrKind() {
		t.Error("IsPtrKind wrong")
	}
}

func TestWrongKindPanics(t *testing.T) {
	c := newTestCtx()
	m := NewMessage(kvSchema(), c)
	defer func() {
		if recover() == nil {
			t.Error("SetBytes on int field did not panic")
		}
	}()
	m.SetBytes(0, c.NewCFPtr([]byte("x")))
}

func TestNestedSchemaMismatchPanics(t *testing.T) {
	c := newTestCtx()
	inner := &Schema{Name: "I", Fields: []Field{{Name: "x", Kind: KindInt}}}
	other := &Schema{Name: "O", Fields: []Field{{Name: "x", Kind: KindInt}}}
	outer := &Schema{Name: "M", Fields: []Field{{Name: "n", Kind: KindNested, Nested: inner}}}
	m := NewMessage(outer, c)
	sub := NewMessage(other, c)
	defer func() {
		if recover() == nil {
			t.Error("schema mismatch did not panic")
		}
	}()
	m.SetNested(0, sub)
}
