package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"cornflakes/internal/mem"
)

// buildRandomTree builds a random message over a nested schema, returning
// the message; depth bounds recursion.
func buildRandomTree(c *Ctx, inner, outer *Schema, r *rand.Rand, depth int) *Message {
	m := NewMessage(outer, c)
	if r.IntN(2) == 0 {
		m.SetInt(0, r.Uint64())
	}
	for i := 0; i < r.IntN(4); i++ {
		n := r.IntN(1200) + 1
		v := c.Alloc.Alloc(n)
		for j := 0; j < n; j += 63 {
			v.Bytes()[j] = byte(r.Uint32())
		}
		m.AppendBytes(1, c.NewCFPtr(v.Bytes()))
	}
	if depth > 0 {
		for i := 0; i < r.IntN(3); i++ {
			sub := NewMessage(inner, c)
			sub.SetInt(0, r.Uint64())
			if r.IntN(2) == 0 {
				sub.SetBytes(1, c.NewCFPtr([]byte("nested-data")))
			}
			m.AppendNested(2, sub)
		}
	}
	return m
}

func nestedTestSchemas() (*Schema, *Schema) {
	inner := &Schema{Name: "Inner", Fields: []Field{
		{Name: "x", Kind: KindInt},
		{Name: "d", Kind: KindBytes},
	}}
	outer := &Schema{Name: "Outer", Fields: []Field{
		{Name: "id", Kind: KindInt},
		{Name: "blobs", Kind: KindBytesList},
		{Name: "subs", Kind: KindNestedList, Nested: inner},
	}}
	return inner, outer
}

// Property: Layout().ObjectLen() always equals len(Marshal()) — the
// serialize-and-send path sizes DMA buffers from the layout, so any
// mismatch would corrupt frames.
func TestObjectLenEqualsMarshalLen(t *testing.T) {
	inner, outer := nestedTestSchemas()
	r := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 60; i++ {
		c := newTestCtx()
		m := buildRandomTree(c, inner, outer, r, 1)
		if got, want := len(Marshal(m)), m.Layout().ObjectLen(); got != want {
			t.Fatalf("iteration %d: Marshal len %d != ObjectLen %d", i, got, want)
		}
	}
}

// Property: the layout's copy/ZC entry counts match what the iterators
// actually yield, in every threshold configuration.
func TestLayoutCountsMatchIterators(t *testing.T) {
	inner, outer := nestedTestSchemas()
	r := rand.New(rand.NewPCG(13, 14))
	for _, th := range []int{ThresholdAllZeroCopy, DefaultThreshold, ThresholdAllCopy} {
		for i := 0; i < 30; i++ {
			c := newTestCtx()
			c.Threshold = th
			m := buildRandomTree(c, inner, outer, r, 1)
			l := m.Layout()
			nCopy, nZC, copyBytes, zcBytes := 0, 0, 0, 0
			m.IterateCopyEntries(func(data []byte, _ uint64) { nCopy++; copyBytes += len(data) })
			m.IterateZCEntries(func(b *mem.Buf) { nZC++; zcBytes += b.Len() })
			if nCopy != l.NumCopy || nZC != l.NumZC {
				t.Fatalf("th=%d: counts (%d,%d) vs layout (%d,%d)", th, nCopy, nZC, l.NumCopy, l.NumZC)
			}
			if copyBytes != l.CopyLen || zcBytes != l.ZCLen {
				t.Fatalf("th=%d: bytes (%d,%d) vs layout (%d,%d)", th, copyBytes, zcBytes, l.CopyLen, l.ZCLen)
			}
		}
	}
}

func TestDeepNesting(t *testing.T) {
	c := newTestCtx()
	s := &Schema{Name: "Tree"}
	s.Fields = []Field{
		{Name: "v", Kind: KindInt},
		{Name: "kid", Kind: KindNested, Nested: s},
	}
	// Build a 12-deep chain.
	leaf := NewMessage(s, c)
	leaf.SetInt(0, 0)
	cur := leaf
	for i := 1; i <= 12; i++ {
		parent := NewMessage(s, c)
		parent.SetInt(0, uint64(i))
		parent.SetNested(1, cur)
		cur = parent
	}
	got := roundTrip(t, c, cur)
	for i := 12; i >= 0; i-- {
		if got.GetInt(0) != uint64(i) {
			t.Fatalf("depth %d: value %d", i, got.GetInt(0))
		}
		if i > 0 {
			got = got.GetNested(1)
		}
	}
}

func TestDeserializeBytesClientPath(t *testing.T) {
	c := newTestCtx()
	m := NewMessage(kvSchema(), c)
	m.SetInt(0, 1234)
	m.AppendBytes(2, c.NewCFPtr(bytes.Repeat([]byte{9}, 800)))
	data := Marshal(m)
	got, err := c.DeserializeBytes(kvSchema(), data)
	if err != nil {
		t.Fatal(err)
	}
	if got.GetInt(0) != 1234 || len(got.GetBytesElem(2, 0)) != 800 {
		t.Error("client-path decode wrong")
	}
	got.Release() // no buffer reference: must be a no-op
}

func TestPeekID(t *testing.T) {
	c := newTestCtx()
	m := NewMessage(kvSchema(), c)
	m.SetInt(0, 0xABCDEF)
	m.AppendBytes(1, c.NewCFPtr([]byte("k")))
	data := Marshal(m)
	id, ok := PeekID(data)
	if !ok || id != 0xABCDEF {
		t.Errorf("PeekID = (%x, %v)", id, ok)
	}
	// Absent id field.
	m2 := NewMessage(kvSchema(), c)
	m2.AppendBytes(1, c.NewCFPtr([]byte("k")))
	if _, ok := PeekID(Marshal(m2)); ok {
		t.Error("PeekID succeeded with absent field 0")
	}
	// Garbage inputs must not panic.
	for _, bad := range [][]byte{nil, {1}, {0, 0, 0, 0}, bytes.Repeat([]byte{0xFF}, 16)} {
		PeekID(bad)
	}
}

func TestMessageResetReuse(t *testing.T) {
	c := newTestCtx()
	m := NewMessage(kvSchema(), c)
	m.SetInt(0, 1)
	m.AppendBytes(1, c.NewCFPtr([]byte("first")))
	first := Marshal(m)
	m.Reset()
	m.SetInt(0, 2)
	m.AppendBytes(2, c.NewCFPtr([]byte("second-use")))
	second := Marshal(m)
	if bytes.Equal(first, second) {
		t.Error("reset message produced identical bytes")
	}
	got, err := c.DeserializeBytes(kvSchema(), second)
	if err != nil {
		t.Fatal(err)
	}
	if got.GetInt(0) != 2 || got.ListLen(1) != 0 || got.ListLen(2) != 1 {
		t.Error("stale fields survived Reset")
	}
}

func TestMarshalHugeObject(t *testing.T) {
	c := newTestCtx()
	s := kvSchema()
	m := NewMessage(s, c)
	// 1 MB across 128 zero-copy fields: far beyond any frame, exercised by
	// Marshal and the Segmenter.
	for i := 0; i < 128; i++ {
		v := c.Alloc.Alloc(8192)
		v.Bytes()[0] = byte(i)
		m.AppendBytes(2, c.NewCFPtr(v.Bytes()))
	}
	data := Marshal(m)
	if len(data) != m.Layout().ObjectLen() {
		t.Fatal("length mismatch on huge object")
	}
	got, err := c.DeserializeBytes(s, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if got.GetBytesElem(2, i)[0] != byte(i) {
			t.Fatalf("element %d corrupted", i)
		}
	}
}
