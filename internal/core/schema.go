// Package core implements the Cornflakes serialization library: hybrid
// copy/zero-copy smart pointers (CFPtr, §3.1), the per-field size-threshold
// heuristic (§3.2.1), dynamic messages over runtime schemas, and the
// CornflakesObj protocol the co-designed networking stack consumes for
// combined serialize-and-send (§3.2.3).
package core

import (
	"fmt"
	"strings"
)

// FieldKind enumerates the field types the prototype supports: "base
// integer types, strings, bytes, nested objects, and lists of strings,
// bytes or nested objects" (§4), plus integer lists.
type FieldKind int

const (
	KindInt FieldKind = iota
	KindBytes
	KindString
	KindNested
	KindIntList
	KindBytesList
	KindStringList
	KindNestedList
)

func (k FieldKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindBytes:
		return "bytes"
	case KindString:
		return "string"
	case KindNested:
		return "nested"
	case KindIntList:
		return "repeated int"
	case KindBytesList:
		return "repeated bytes"
	case KindStringList:
		return "repeated string"
	case KindNestedList:
		return "repeated nested"
	default:
		return fmt.Sprintf("FieldKind(%d)", int(k))
	}
}

// IsList reports whether the kind is a repeated field.
func (k FieldKind) IsList() bool {
	switch k {
	case KindIntList, KindBytesList, KindStringList, KindNestedList:
		return true
	}
	return false
}

// IsPtrKind reports whether values of this kind are carried as CFPtr
// payloads (bytes or strings, scalar or repeated).
func (k FieldKind) IsPtrKind() bool {
	switch k {
	case KindBytes, KindString, KindBytesList, KindStringList:
		return true
	}
	return false
}

// Field is one schema field. Field indexes are positional (the paper reuses
// Protobuf's schema language; field numbers map to positions here).
type Field struct {
	Name   string
	Kind   FieldKind
	Nested *Schema // required for KindNested and KindNestedList
}

// Schema describes a message type at runtime. Generated code (cmd/cfc)
// compiles schemas to typed Go structs; the dynamic Message in this package
// interprets them directly.
type Schema struct {
	Name   string
	Fields []Field
}

// Validate checks structural invariants, recursing through nested schemas.
func (s *Schema) Validate() error {
	return s.validate(map[*Schema]bool{})
}

func (s *Schema) validate(seen map[*Schema]bool) error {
	if s == nil {
		return fmt.Errorf("core: nil schema")
	}
	if seen[s] {
		return nil // already being validated (recursive schemas are legal)
	}
	seen[s] = true
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("core: schema with empty name")
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("core: schema %s has no fields", s.Name)
	}
	names := map[string]bool{}
	for i, f := range s.Fields {
		if strings.TrimSpace(f.Name) == "" {
			return fmt.Errorf("core: schema %s field %d has empty name", s.Name, i)
		}
		if names[f.Name] {
			return fmt.Errorf("core: schema %s has duplicate field %q", s.Name, f.Name)
		}
		names[f.Name] = true
		switch f.Kind {
		case KindNested, KindNestedList:
			if f.Nested == nil {
				return fmt.Errorf("core: schema %s field %q is nested but has no nested schema", s.Name, f.Name)
			}
			if err := f.Nested.validate(seen); err != nil {
				return err
			}
		case KindInt, KindBytes, KindString, KindIntList, KindBytesList, KindStringList:
			if f.Nested != nil {
				return fmt.Errorf("core: schema %s field %q has a nested schema but kind %v", s.Name, f.Name, f.Kind)
			}
		default:
			return fmt.Errorf("core: schema %s field %q has unknown kind %d", s.Name, f.Name, int(f.Kind))
		}
	}
	return nil
}

// FieldIndex returns the index of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// NumFields returns the number of schema fields.
func (s *Schema) NumFields() int { return len(s.Fields) }
