package core

import "cornflakes/internal/mem"

// COWPtr is the write-protected smart pointer sketched in §7 ("Cornflakes
// could provide a library of smart pointers for developers where writes to
// the smart pointer automatically trigger new allocations and raw pointer
// swaps"). It wraps a pinned value that may be in flight on the NIC:
// reads see the current buffer; Update allocates a fresh pinned buffer and
// swaps the pointer, so in-flight DMA keeps reading the old (refcounted)
// data and the application can never mutate bytes the NIC is sending.
//
// This turns the paper's write-protection problem into the free-protection
// problem the refcounts already solve, at the cost of one allocation per
// update — exactly the "allocations and pointer swaps" tradeoff §4
// describes for porting object stores.
type COWPtr struct {
	ctx *Ctx
	buf *mem.Buf
}

// NewCOWPtr allocates a pinned buffer holding a copy of data.
func (c *Ctx) NewCOWPtr(data []byte) *COWPtr {
	b := c.Alloc.Alloc(len(data))
	c.Meter.Charge(c.Meter.CPU.DMABufAllocCy)
	c.Meter.Copy(c.Alloc.SimAddrOf(data), b.SimAddr(), len(data))
	copy(b.Bytes(), data)
	return &COWPtr{ctx: c, buf: b}
}

// Bytes returns the current value. The view is stable only until the next
// Update; senders should capture it through NewCFPtr (which takes a
// reference) rather than holding the slice.
func (p *COWPtr) Bytes() []byte { return p.buf.Bytes() }

// Buf returns the current pinned buffer (no reference transferred).
func (p *COWPtr) Buf() *mem.Buf { return p.buf }

// Ptr builds a zero-copy CFPtr for the current value, taking a reference
// that survives any subsequent Update.
func (p *COWPtr) Ptr() CFPtr {
	m := p.ctx.Meter
	m.Charge(m.CPU.PerFieldCy)
	m.MetadataAccess(p.buf.RefcountSimAddr())
	// SubView takes the reference the CFPtr will own.
	return ZeroCopyPtrFromBuf(p.buf.SubView(0, p.buf.Len()))
}

// Update replaces the value: a fresh pinned buffer is allocated, filled,
// and swapped in; the old buffer's reference is dropped (it is freed once
// all in-flight sends complete). The old bytes are never written.
func (p *COWPtr) Update(data []byte) {
	c := p.ctx
	nb := c.Alloc.Alloc(len(data))
	c.Meter.Charge(c.Meter.CPU.DMABufAllocCy)
	c.Meter.Copy(c.Alloc.SimAddrOf(data), nb.SimAddr(), len(data))
	copy(nb.Bytes(), data)
	old := p.buf
	p.buf = nb
	c.Meter.MetadataAccess(old.RefcountSimAddr())
	old.DecRef()
}

// Release drops the pointer's reference to the current buffer.
func (p *COWPtr) Release() {
	p.ctx.Meter.MetadataAccess(p.buf.RefcountSimAddr())
	p.buf.DecRef()
	p.buf = nil
}
