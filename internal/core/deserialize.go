package core

import (
	"fmt"
	"unicode/utf8"

	"cornflakes/internal/mem"
	"cornflakes/internal/wire"
)

// Deserialize wraps a received pinned buffer as a read-only Message view.
//
// Deserialization is zero-copy (§2): getters return views into the received
// buffer. The header region and every entry range are validated eagerly —
// corrupt input is rejected here, so getters cannot read out of bounds —
// but field *data* is untouched and UTF-8 validation of string fields is
// deferred to first access (§6.4), which is why Cornflakes' deserialization
// slice in the Figure 11 cycle breakdown is shorter than the baselines'.
//
// The Message takes over the caller's reference on buf; Release drops it.
func (c *Ctx) Deserialize(schema *Schema, buf *mem.Buf) (*Message, error) {
	m, err := c.deserializeView(schema, buf, buf.Bytes(), buf.SimAddr(), 0)
	if err != nil {
		return nil, err
	}
	m.rbuf = buf
	return m, nil
}

// DeserializeBytes wraps a plain byte slice as a read-only Message view —
// the client-side decode path, where the payload is not in pinned memory.
// Release on the result is a no-op (no buffer reference to drop).
func (c *Ctx) DeserializeBytes(schema *Schema, data []byte) (*Message, error) {
	return c.deserializeView(schema, nil, data, mem.UnpinnedSimAddr(data), 0)
}

// deserializeView parses one message header at base, validating recursively.
func (c *Ctx) deserializeView(schema *Schema, buf *mem.Buf, obj []byte, simBase uint64, base int) (*Message, error) {
	hdr, err := wire.Parse(obj, base, len(schema.Fields))
	if err != nil {
		return nil, err
	}
	meter := c.Meter
	// The parse touches the bitmap and entry lines of this header.
	meter.Access(simBase+uint64(base), hdr.Len())

	m := c.getMsg(schema)
	if m == nil {
		m = &Message{schema: schema, ctx: c}
	} else {
		m.pooled = false
		m.rbuf = nil
		if m.vals != nil {
			// The pooled struct last served send-mode; its values were
			// cleared at Release, so the slice can be carried dormant.
			for i := range m.vals {
				m.vals[i].clear()
			}
		}
	}
	m.recv, m.rhdr, m.rsim = true, hdr, simBase
	for i, f := range schema.Fields {
		if !hdr.Present(i) {
			continue
		}
		meter.Charge(meter.CPU.PerFieldCy)
		switch f.Kind {
		case KindInt:
			// Inline; nothing to validate.
		case KindBytes, KindString:
			off, n := hdr.Ptr(i)
			if err := hdr.CheckRange(off, n); err != nil {
				return nil, fmt.Errorf("field %s.%s: %w", schema.Name, f.Name, err)
			}
		case KindIntList:
			off, count := hdr.Ptr(i)
			if _, err := wire.NewListTable(obj, int(off), int(count)); err != nil {
				return nil, fmt.Errorf("field %s.%s: %w", schema.Name, f.Name, err)
			}
			meter.Access(simBase+uint64(off), int(count)*wire.EntrySize)
		case KindBytesList, KindStringList:
			off, count := hdr.Ptr(i)
			lt, err := wire.NewListTable(obj, int(off), int(count))
			if err != nil {
				return nil, fmt.Errorf("field %s.%s: %w", schema.Name, f.Name, err)
			}
			meter.Access(simBase+uint64(off), int(count)*wire.EntrySize)
			for j := 0; j < lt.Count(); j++ {
				eOff, eLen := lt.ElemPtr(j)
				if err := hdr.CheckRange(eOff, eLen); err != nil {
					return nil, fmt.Errorf("field %s.%s[%d]: %w", schema.Name, f.Name, j, err)
				}
			}
		case KindNested:
			off, _ := hdr.Ptr(i)
			sub, err := c.deserializeView(f.Nested, buf, obj, simBase, int(off))
			if err != nil {
				return nil, fmt.Errorf("field %s.%s: %w", schema.Name, f.Name, err)
			}
			// The view existed only to validate; park it so recursive
			// validation cycles the pool instead of draining it.
			sub.park()
		case KindNestedList:
			off, count := hdr.Ptr(i)
			lt, err := wire.NewListTable(obj, int(off), int(count))
			if err != nil {
				return nil, fmt.Errorf("field %s.%s: %w", schema.Name, f.Name, err)
			}
			meter.Access(simBase+uint64(off), int(count)*wire.EntrySize)
			for j := 0; j < lt.Count(); j++ {
				eOff, _ := lt.ElemPtr(j)
				sub, err := c.deserializeView(f.Nested, buf, obj, simBase, int(eOff))
				if err != nil {
					return nil, fmt.Errorf("field %s.%s[%d]: %w", schema.Name, f.Name, j, err)
				}
				sub.park()
			}
		}
	}
	return m, nil
}

func (m *Message) mustRecv() {
	if !m.recv {
		panic("core: getter on a send-mode message (use setters' values directly)")
	}
}

// Has reports whether field i is present in the received message.
func (m *Message) Has(i int) bool {
	m.mustRecv()
	m.field(i, 1<<m.schema.Fields[i].Kind)
	return m.rhdr.Present(i)
}

// GetInt reads an integer field. Absent fields read as zero (proto3
// semantics).
func (m *Message) GetInt(i int) uint64 {
	m.mustRecv()
	m.field(i, 1<<KindInt)
	if !m.rhdr.Present(i) {
		return 0
	}
	return m.rhdr.Int(i)
}

// GetBytes returns a zero-copy view of a bytes field (nil when absent).
// The view is valid while the root message holds the receive buffer.
func (m *Message) GetBytes(i int) []byte {
	m.mustRecv()
	m.field(i, 1<<KindBytes)
	if !m.rhdr.Present(i) {
		return nil
	}
	off, n := m.rhdr.Ptr(i)
	return m.rhdr.Object()[off : off+n : off+n]
}

// GetString returns a string field (empty when absent), performing the
// deferred UTF-8 validation (charged per byte).
func (m *Message) GetString(i int) (string, error) {
	m.mustRecv()
	m.field(i, 1<<KindString)
	if !m.rhdr.Present(i) {
		return "", nil
	}
	off, n := m.rhdr.Ptr(i)
	return m.validateString(int(off), int(n))
}

// ListLen returns the element count of a repeated field (0 when absent).
func (m *Message) ListLen(i int) int {
	m.mustRecv()
	m.field(i, 1<<KindIntList|1<<KindBytesList|1<<KindStringList|1<<KindNestedList)
	if !m.rhdr.Present(i) {
		return 0
	}
	_, count := m.rhdr.Ptr(i)
	return int(count)
}

// GetIntElem reads element j of a repeated integer field.
func (m *Message) GetIntElem(i, j int) uint64 {
	m.mustRecv()
	m.field(i, 1<<KindIntList)
	return m.listTable(i).ElemInt(j)
}

// GetBytesElem returns a zero-copy view of element j of a repeated bytes
// field.
func (m *Message) GetBytesElem(i, j int) []byte {
	m.mustRecv()
	m.field(i, 1<<KindBytesList)
	off, n := m.listTable(i).ElemPtr(j)
	return m.rhdr.Object()[off : off+n : off+n]
}

// GetStringElem returns element j of a repeated string field with deferred
// UTF-8 validation.
func (m *Message) GetStringElem(i, j int) (string, error) {
	m.mustRecv()
	m.field(i, 1<<KindStringList)
	off, n := m.listTable(i).ElemPtr(j)
	return m.validateString(int(off), int(n))
}

// GetNested returns a read-only view of a nested message field (nil when
// absent). The view shares the root's receive buffer.
func (m *Message) GetNested(i int) *Message {
	m.mustRecv()
	f := m.field(i, 1<<KindNested)
	if !m.rhdr.Present(i) {
		return nil
	}
	off, _ := m.rhdr.Ptr(i)
	return m.nestedView(f.Nested, int(off))
}

// GetNestedElem returns a read-only view of element j of a repeated nested
// field.
func (m *Message) GetNestedElem(i, j int) *Message {
	m.mustRecv()
	f := m.field(i, 1<<KindNestedList)
	eOff, _ := m.listTable(i).ElemPtr(j)
	return m.nestedView(f.Nested, int(eOff))
}

func (m *Message) nestedView(schema *Schema, base int) *Message {
	hdr, err := wire.Parse(m.rhdr.Object(), base, len(schema.Fields))
	if err != nil {
		// Validated at Deserialize time; a failure here is a library bug.
		panic(fmt.Sprintf("core: nested header invalid after validation: %v", err))
	}
	return &Message{schema: schema, ctx: m.ctx, recv: true, rhdr: hdr, rsim: m.rsim}
}

func (m *Message) listTable(i int) wire.ListTable {
	off, count := m.rhdr.Ptr(i)
	lt, err := wire.NewListTable(m.rhdr.Object(), int(off), int(count))
	if err != nil {
		panic(fmt.Sprintf("core: list table invalid after validation: %v", err))
	}
	return lt
}

func (m *Message) validateString(off, n int) (string, error) {
	b := m.rhdr.Object()[off : off+n : off+n]
	meter := m.ctx.Meter
	meter.Charge(float64(n) * meter.CPU.UTF8ValidateCyPerByte)
	meter.Access(m.rsim+uint64(off), n)
	if !utf8.Valid(b) {
		return "", fmt.Errorf("core: field contains invalid UTF-8")
	}
	return string(b), nil
}
