package core

import (
	"fmt"

	"cornflakes/internal/mem"
	"cornflakes/internal/wire"
)

// Layout summarises a serialized object's shape. The networking stack uses
// it to size DMA buffers and decide scatter-gather entry counts before any
// bytes are written (§3.2.3: "the networking stack first calculates the
// object size and number of copy and zero-copy entries").
type Layout struct {
	// HeaderLen is the header region: message headers, nested headers and
	// list tables.
	HeaderLen int
	// CopyLen / ZCLen are the bytes of copied and zero-copy field data.
	CopyLen, ZCLen int
	// NumCopy / NumZC count data entries of each variant.
	NumCopy, NumZC int
	// Fields and Elems count present fields and list elements across the
	// object tree, for serialization cost accounting.
	Fields, Elems int
}

// ObjectLen is the total serialized size.
func (l Layout) ObjectLen() int { return l.HeaderLen + l.CopyLen + l.ZCLen }

// Obj is the CornflakesObj protocol (Listing 1): instead of a serialize
// call producing a buffer, objects expose their layout, write their header
// region, and iterate copy and zero-copy entries so the co-designed
// networking stack can serialize directly into transmit descriptors.
type Obj interface {
	Layout() Layout
	// WriteHeader writes the complete header region into dst (which has at
	// least Layout().HeaderLen bytes and represents object offset 0).
	WriteHeader(dst []byte)
	// IterateCopyEntries yields each copied payload in layout order; the
	// stack copies them contiguously after the header region.
	IterateCopyEntries(fn func(data []byte, sim uint64))
	// IterateZCEntries yields each zero-copy buffer in layout order; the
	// stack posts one scatter-gather entry per buffer.
	IterateZCEntries(fn func(buf *mem.Buf))
}

// fieldVal holds one field's send-side value.
type fieldVal struct {
	set  bool
	i    uint64
	ptrs []CFPtr
	ints []uint64
	msgs []*Message
}

// clear empties the value but keeps the slice capacity, so a reused
// message's repeated fields append without reallocating. The element clears
// drop the buffer and sub-message references a parked value must not pin.
func (v *fieldVal) clear() {
	clear(v.ptrs)
	clear(v.msgs)
	v.ptrs = v.ptrs[:0]
	v.ints = v.ints[:0]
	v.msgs = v.msgs[:0]
	v.set = false
	v.i = 0
}

// Message is the dynamic (runtime-schema) Cornflakes object. A Message is
// either send-mode (built with setters, then passed to SendObject) or
// recv-mode (returned by Deserialize, read with getters); the two modes
// mirror the generated-code interface in Listing 1.
type Message struct {
	schema *Schema
	ctx    *Ctx

	// Send side.
	vals []fieldVal

	// Recv side.
	recv bool
	rbuf *mem.Buf // nil for nested views, which share the root's buffer
	rhdr wire.Header
	rsim uint64 // simulated address of the object's first byte

	// pooled marks a message parked in its Ctx's pool; it guards against a
	// double Release double-parking the same struct.
	pooled bool
}

// NewMessage returns an empty send-mode message, reusing a pooled struct
// from the Ctx when one is available.
func NewMessage(schema *Schema, ctx *Ctx) *Message {
	if m := ctx.getMsg(schema); m != nil {
		m.pooled = false
		m.recv = false
		m.rbuf, m.rhdr, m.rsim = nil, wire.Header{}, 0
		if m.vals == nil {
			// The pooled struct served a recv view before; give it send state.
			m.vals = make([]fieldVal, len(schema.Fields))
		}
		return m
	}
	return &Message{schema: schema, ctx: ctx, vals: make([]fieldVal, len(schema.Fields))}
}

// Schema returns the message's schema.
func (m *Message) Schema() *Schema { return m.schema }

// IsRecv reports whether the message is a received (read-only) view.
func (m *Message) IsRecv() bool { return m.recv }

// kindSet is a bitmask of acceptable FieldKinds. field takes a mask rather
// than a variadic list: the variadic slice escaped to the heap through the
// panic path's Sprintf, putting one allocation on every getter and setter —
// the hottest calls in the library.
type kindSet uint32

func (s kindSet) String() string {
	out := ""
	for k := FieldKind(0); k < 32; k++ {
		if s&(1<<k) != 0 {
			if out != "" {
				out += "|"
			}
			out += k.String()
		}
	}
	return out
}

func (m *Message) field(i int, want kindSet) *Field {
	if i < 0 || i >= len(m.schema.Fields) {
		panic(fmt.Sprintf("core: field %d out of range in %s", i, m.schema.Name))
	}
	f := &m.schema.Fields[i]
	if want&(1<<f.Kind) != 0 {
		return f
	}
	panic(fmt.Sprintf("core: field %s.%s has kind %v, not %v", m.schema.Name, f.Name, f.Kind, want))
}

func (m *Message) mustSend() {
	if m.recv {
		panic("core: cannot mutate a received message")
	}
}

// SetInt sets an integer field.
func (m *Message) SetInt(i int, v uint64) {
	m.mustSend()
	m.field(i, 1<<KindInt)
	m.vals[i].set = true
	m.vals[i].i = v
}

// SetBytes sets a bytes field.
func (m *Message) SetBytes(i int, p CFPtr) {
	m.mustSend()
	m.field(i, 1<<KindBytes)
	m.vals[i].set = true
	m.vals[i].ptrs = append(m.vals[i].ptrs[:0], p)
}

// SetString sets a string field.
func (m *Message) SetString(i int, p CFPtr) {
	m.mustSend()
	m.field(i, 1<<KindString)
	m.vals[i].set = true
	m.vals[i].ptrs = append(m.vals[i].ptrs[:0], p)
}

// AppendBytes appends to a repeated bytes field.
func (m *Message) AppendBytes(i int, p CFPtr) {
	m.mustSend()
	m.field(i, 1<<KindBytesList)
	m.vals[i].set = true
	m.vals[i].ptrs = append(m.vals[i].ptrs, p)
}

// AppendString appends to a repeated string field.
func (m *Message) AppendString(i int, p CFPtr) {
	m.mustSend()
	m.field(i, 1<<KindStringList)
	m.vals[i].set = true
	m.vals[i].ptrs = append(m.vals[i].ptrs, p)
}

// AppendInt appends to a repeated integer field.
func (m *Message) AppendInt(i int, v uint64) {
	m.mustSend()
	m.field(i, 1<<KindIntList)
	m.vals[i].set = true
	m.vals[i].ints = append(m.vals[i].ints, v)
}

// SetNested sets a nested message field. The nested message must use the
// field's nested schema.
func (m *Message) SetNested(i int, sub *Message) {
	m.mustSend()
	f := m.field(i, 1<<KindNested)
	if sub.schema != f.Nested {
		panic(fmt.Sprintf("core: nested message schema %s, want %s", sub.schema.Name, f.Nested.Name))
	}
	m.vals[i].set = true
	m.vals[i].msgs = append(m.vals[i].msgs[:0], sub)
}

// AppendNested appends to a repeated nested field.
func (m *Message) AppendNested(i int, sub *Message) {
	m.mustSend()
	f := m.field(i, 1<<KindNestedList)
	if sub.schema != f.Nested {
		panic(fmt.Sprintf("core: nested message schema %s, want %s", sub.schema.Name, f.Nested.Name))
	}
	m.vals[i].set = true
	m.vals[i].msgs = append(m.vals[i].msgs, sub)
}

// numPresent counts send-side set fields.
func (m *Message) numPresent() int {
	n := 0
	for i := range m.vals {
		if m.vals[i].set {
			n++
		}
	}
	return n
}

// Layout implements Obj by walking the object tree (send-mode only).
func (m *Message) Layout() Layout {
	m.mustSend()
	var l Layout
	m.addLayout(&l)
	return l
}

func addPtrToLayout(l *Layout, p CFPtr) {
	if p.IsZeroCopy() {
		l.ZCLen += p.Len()
		l.NumZC++
	} else {
		l.CopyLen += p.Len()
		l.NumCopy++
	}
}

func (m *Message) addLayout(l *Layout) {
	l.HeaderLen += wire.HeaderLen(len(m.schema.Fields), m.numPresent())
	for i := range m.vals {
		v := &m.vals[i]
		if !v.set {
			continue
		}
		l.Fields++
		switch m.schema.Fields[i].Kind {
		case KindInt:
			// Inline in the header entry.
		case KindBytes, KindString:
			addPtrToLayout(l, v.ptrs[0])
		case KindIntList:
			l.HeaderLen += len(v.ints) * wire.EntrySize
			l.Elems += len(v.ints)
		case KindBytesList, KindStringList:
			l.HeaderLen += len(v.ptrs) * wire.EntrySize
			l.Elems += len(v.ptrs)
			for _, p := range v.ptrs {
				addPtrToLayout(l, p)
			}
		case KindNested:
			v.msgs[0].addLayout(l)
		case KindNestedList:
			l.HeaderLen += len(v.msgs) * wire.EntrySize
			l.Elems += len(v.msgs)
			for _, sub := range v.msgs {
				sub.addLayout(l)
			}
		}
	}
}

// serializer tracks the three cursors of the object layout while the header
// region is written: aux (header region bump pointer), copy-data offset and
// zero-copy-data offset.
type serializer struct {
	obj     []byte
	aux     int
	copyOff int
	zcOff   int
}

func (s *serializer) allocAux(n int) int {
	off := s.aux
	s.aux += n
	if s.aux > len(s.obj) {
		panic(fmt.Sprintf("core: header region overflow (%d > %d)", s.aux, len(s.obj)))
	}
	return off
}

// place assigns a data offset to a CFPtr payload according to its variant.
// The assignment order matches IterateCopyEntries/IterateZCEntries exactly:
// both are the same depth-first schema-order walk.
func (s *serializer) place(p CFPtr) uint32 {
	if p.IsZeroCopy() {
		off := s.zcOff
		s.zcOff += p.Len()
		return uint32(off)
	}
	off := s.copyOff
	s.copyOff += p.Len()
	return uint32(off)
}

// WriteHeader implements Obj.
func (m *Message) WriteHeader(dst []byte) {
	m.mustSend()
	l := m.Layout()
	s := &serializer{obj: dst[:l.HeaderLen], copyOff: l.HeaderLen, zcOff: l.HeaderLen + l.CopyLen}
	base := s.allocAux(wire.HeaderLen(len(m.schema.Fields), m.numPresent()))
	m.writeMsg(s, base)
}

func (m *Message) writeMsg(s *serializer, base int) {
	hdr := wire.NewWriter(s.obj, base, len(m.schema.Fields))
	for i := range m.vals {
		if m.vals[i].set {
			hdr.SetPresent(i)
		}
	}
	for i := range m.vals {
		v := &m.vals[i]
		if !v.set {
			continue
		}
		switch m.schema.Fields[i].Kind {
		case KindInt:
			hdr.PutInt(i, v.i)
		case KindBytes, KindString:
			p := v.ptrs[0]
			hdr.PutPtr(i, s.place(p), uint32(p.Len()))
		case KindIntList:
			tb := s.allocAux(len(v.ints) * wire.EntrySize)
			hdr.PutPtr(i, uint32(tb), uint32(len(v.ints)))
			lt, err := wire.NewListTable(s.obj, tb, len(v.ints))
			if err != nil {
				panic(err)
			}
			for j, x := range v.ints {
				lt.PutElemInt(j, x)
			}
		case KindBytesList, KindStringList:
			tb := s.allocAux(len(v.ptrs) * wire.EntrySize)
			hdr.PutPtr(i, uint32(tb), uint32(len(v.ptrs)))
			lt, err := wire.NewListTable(s.obj, tb, len(v.ptrs))
			if err != nil {
				panic(err)
			}
			for j, p := range v.ptrs {
				lt.PutElemPtr(j, s.place(p), uint32(p.Len()))
			}
		case KindNested:
			sub := v.msgs[0]
			ownLen := wire.HeaderLen(len(sub.schema.Fields), sub.numPresent())
			sb := s.allocAux(ownLen)
			hdr.PutPtr(i, uint32(sb), uint32(ownLen))
			sub.writeMsg(s, sb)
		case KindNestedList:
			tb := s.allocAux(len(v.msgs) * wire.EntrySize)
			hdr.PutPtr(i, uint32(tb), uint32(len(v.msgs)))
			lt, err := wire.NewListTable(s.obj, tb, len(v.msgs))
			if err != nil {
				panic(err)
			}
			for j, sub := range v.msgs {
				ownLen := wire.HeaderLen(len(sub.schema.Fields), sub.numPresent())
				sb := s.allocAux(ownLen)
				lt.PutElemPtr(j, uint32(sb), uint32(ownLen))
				sub.writeMsg(s, sb)
			}
		}
	}
}

// IterateCopyEntries implements Obj. The walk order matches place().
func (m *Message) IterateCopyEntries(fn func(data []byte, sim uint64)) {
	m.walkPtrs(func(p CFPtr) {
		if !p.IsZeroCopy() {
			fn(p.Bytes(), p.Sim())
		}
	})
}

// IterateZCEntries implements Obj. The walk order matches place().
func (m *Message) IterateZCEntries(fn func(buf *mem.Buf)) {
	m.walkPtrs(func(p CFPtr) {
		if p.IsZeroCopy() {
			fn(p.ZCBuf())
		}
	})
}

// walkPtrs visits every CFPtr in the object tree in the canonical
// serialization order: schema order, list elements in order, nested
// messages inline at their field position.
func (m *Message) walkPtrs(fn func(p CFPtr)) {
	for i := range m.vals {
		v := &m.vals[i]
		if !v.set {
			continue
		}
		switch m.schema.Fields[i].Kind {
		case KindBytes, KindString, KindBytesList, KindStringList:
			for _, p := range v.ptrs {
				fn(p)
			}
		case KindNested, KindNestedList:
			for _, sub := range v.msgs {
				sub.walkPtrs(fn)
			}
		}
	}
}

// Release drops every zero-copy reference the message holds (send side) and
// the received buffer (recv side, root view only). Applications call it
// once per request, after SendObject; the NIC holds its own references for
// in-flight DMA, so releasing immediately after send is safe — the
// use-after-free guarantee of §3.
func (m *Message) Release() {
	if m.recv {
		if m.rbuf != nil {
			m.ctx.Meter.MetadataAccess(m.rbuf.RefcountSimAddr())
			m.rbuf.DecRef()
			m.rbuf = nil
			// Only the root pinned view is parked: its Release is the
			// terminal event of the request's decode. Nested and unpinned
			// views have no-op Releases and stay heap-managed.
			m.park()
		}
		return
	}
	m.walkPtrs(func(p CFPtr) { p.Release(m.ctx.Meter) })
	for i := range m.vals {
		m.vals[i].clear()
	}
	m.park()
}

// park returns the message to its Ctx's pool, once.
func (m *Message) park() {
	if m.pooled {
		return
	}
	m.pooled = true
	m.rhdr = wire.Header{} // drop the view into the received bytes
	m.ctx.putMsg(m)
}

// Reset clears all send-side state without releasing references (for reuse
// after Release).
func (m *Message) Reset() {
	m.mustSend()
	for i := range m.vals {
		m.vals[i].clear()
	}
}

var _ Obj = (*Message)(nil)
