package core

import "cornflakes/internal/costmodel"

// AdaptiveThreshold implements the paper's §7 "Static zero-copy threshold"
// future-work item: instead of a fixed 512-byte threshold, the controller
// observes the realized cost of each path and adjusts the threshold toward
// the empirical crossover.
//
// The mechanism follows §3.2.1's constraint that the decision must stay
// per-field and cheap: the controller only updates between requests (from
// the meter's aggregate counters), never on the per-field fast path. The
// signal is the metadata miss rate: when refcount touches mostly miss
// (high memory pressure, large working sets), zero-copy bookkeeping costs
// a full DRAM access and the threshold should rise; when metadata stays
// cached, zero-copy is cheap even for smaller fields and the threshold can
// fall.
type AdaptiveThreshold struct {
	ctx *Ctx

	// Min and Max clamp the threshold (bytes).
	Min, Max int
	// Step is the multiplicative adjustment per observation window.
	Step float64
	// Window is the number of metadata touches per adjustment.
	Window uint64

	// Controller state.
	lastTouches uint64
	lastMisses  uint64
	// Adjustments counts threshold changes, for tests and reporting.
	Adjustments uint64
}

// NewAdaptiveThreshold attaches a controller to a context. The context's
// current threshold is the starting point.
func NewAdaptiveThreshold(ctx *Ctx) *AdaptiveThreshold {
	return &AdaptiveThreshold{
		ctx:    ctx,
		Min:    64,
		Max:    4096,
		Step:   1.25,
		Window: 256,
	}
}

// missCostCy estimates the average metadata access cost over the window.
func (a *AdaptiveThreshold) missCostCy(m *costmodel.Meter, touches, misses uint64) float64 {
	if touches == 0 {
		return 0
	}
	missRate := float64(misses) / float64(touches)
	// A miss costs a DRAM access; a hit costs an L1/L2 access (~8 cycles).
	return missRate*280 + (1-missRate)*8
}

// crossoverBytes computes where copy cost equals zero-copy cost given the
// observed metadata access cost — the analytical form of §5.3's factor
// list: zero-copy pays fixed bookkeeping plus the metadata access; copy
// pays per-byte work plus line fills.
func (a *AdaptiveThreshold) crossoverBytes(m *costmodel.Meter, metaCy float64) int {
	cpu := m.CPU
	zcFixed := cpu.RegistryLookupCy + cpu.SGPostCy + cpu.CompletionCy + 2*metaCy
	// Copy cost per byte: SIMD copy twice plus amortized line fills
	// (streamed source fill ≈ 12 cy / 64 B, warm destination ≈ 4 cy / 64 B,
	// second copy both warm).
	perByte := 2*cpu.CopyPerByteCy + (12.0+3*4.0)/64.0
	fixed := cpu.ArenaAllocCy + 2*cpu.CopySetupCy
	// First-line demand miss on a cold source.
	coldStart := 280.0
	bytes := (zcFixed + coldStart - fixed) / perByte
	// The cold-start miss applies to both paths' first touch in different
	// ways; dampen toward the empirical range.
	bytes *= 0.5
	return int(bytes)
}

// Observe updates the threshold from the meter's counters; call it once
// per request (or less often). It is O(1).
func (a *AdaptiveThreshold) Observe() {
	m := a.ctx.Meter
	touches := m.MetadataTouch - a.lastTouches
	if touches < a.Window {
		return
	}
	misses := m.MetadataMisses - a.lastMisses
	a.lastTouches = m.MetadataTouch
	a.lastMisses = m.MetadataMisses

	metaCy := a.missCostCy(m, touches, misses)
	target := a.crossoverBytes(m, metaCy)
	cur := a.ctx.Threshold
	switch {
	case target > int(float64(cur)*1.1):
		cur = int(float64(cur) * a.Step)
	case target < int(float64(cur)*0.9):
		cur = int(float64(cur) / a.Step)
	default:
		return
	}
	if cur < a.Min {
		cur = a.Min
	}
	if cur > a.Max {
		cur = a.Max
	}
	if cur != a.ctx.Threshold {
		a.ctx.Threshold = cur
		a.Adjustments++
	}
}
