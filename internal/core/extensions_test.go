package core

import (
	"bytes"
	"testing"
)

// --- AdaptiveThreshold (§7 "Static zero-copy threshold") ---

func TestAdaptiveThresholdRaisesUnderColdMetadata(t *testing.T) {
	c := newTestCtx()
	c.Threshold = 128
	at := NewAdaptiveThreshold(c)
	at.Window = 64
	// Touch metadata at always-cold addresses: every refcount access
	// misses, so the crossover moves up and the threshold should rise.
	addr := uint64(0xF100_0000_0000)
	for i := 0; i < 4000; i++ {
		c.Meter.MetadataAccess(addr + uint64(i*4096))
		at.Observe()
	}
	if c.Threshold <= 128 {
		t.Errorf("threshold = %d, want raised above 128 under all-miss metadata", c.Threshold)
	}
	if at.Adjustments == 0 {
		t.Error("no adjustments recorded")
	}
	if c.Threshold > at.Max {
		t.Errorf("threshold %d exceeds Max %d", c.Threshold, at.Max)
	}
}

func TestAdaptiveThresholdLowersUnderWarmMetadata(t *testing.T) {
	c := newTestCtx()
	c.Threshold = 4096
	at := NewAdaptiveThreshold(c)
	at.Window = 64
	// Hammer one metadata line: everything hits, zero-copy is cheap, so
	// the threshold should fall.
	addr := uint64(0xF100_0000_0000)
	for i := 0; i < 4000; i++ {
		c.Meter.MetadataAccess(addr)
		at.Observe()
	}
	if c.Threshold >= 4096 {
		t.Errorf("threshold = %d, want lowered below 4096 under all-hit metadata", c.Threshold)
	}
	if c.Threshold < at.Min {
		t.Errorf("threshold %d below Min %d", c.Threshold, at.Min)
	}
}

func TestAdaptiveThresholdStableWithoutTraffic(t *testing.T) {
	c := newTestCtx()
	at := NewAdaptiveThreshold(c)
	before := c.Threshold
	for i := 0; i < 100; i++ {
		at.Observe() // no metadata touches: below the window, no change
	}
	if c.Threshold != before {
		t.Error("threshold changed without observations")
	}
}

func TestAdaptiveThresholdConverges(t *testing.T) {
	c := newTestCtx()
	c.Threshold = DefaultThreshold
	at := NewAdaptiveThreshold(c)
	at.Window = 64
	// Mixed hit/miss traffic: after convergence the threshold should
	// settle (no unbounded oscillation amplitude growth).
	addr := uint64(0xF100_0000_0000)
	var last int
	settled := 0
	for i := 0; i < 20000; i++ {
		// ~50% miss pattern: alternate a hot line and fresh lines.
		if i%2 == 0 {
			c.Meter.MetadataAccess(addr)
		} else {
			c.Meter.MetadataAccess(addr + uint64(i)*4096)
		}
		at.Observe()
		if c.Threshold == last {
			settled++
		} else {
			settled = 0
			last = c.Threshold
		}
	}
	if c.Threshold < at.Min || c.Threshold > at.Max {
		t.Errorf("threshold %d escaped [%d, %d]", c.Threshold, at.Min, at.Max)
	}
}

// --- COWPtr (§7 write-protected smart pointers) ---

func TestCOWPtrBasics(t *testing.T) {
	c := newTestCtx()
	p := c.NewCOWPtr([]byte("version-one"))
	if string(p.Bytes()) != "version-one" {
		t.Fatalf("initial value %q", p.Bytes())
	}
	if !c.Alloc.IsPinned(p.Bytes()) {
		t.Error("COW value not in pinned memory")
	}
	p.Release()
	if c.Alloc.Stats().SlotsInUse != 0 {
		t.Error("buffer leaked after release")
	}
}

func TestCOWPtrUpdateNeverMutatesInFlight(t *testing.T) {
	c := newTestCtx()
	c.Threshold = 0 // force zero-copy for small test values
	p := c.NewCOWPtr(bytes.Repeat([]byte{0xAA}, 600))

	// Simulate a send in flight: the CFPtr holds a reference like the NIC
	// would.
	inFlight := p.Ptr()
	if !inFlight.IsZeroCopy() {
		t.Fatal("COW Ptr should be zero-copy")
	}
	oldBytes := inFlight.Bytes()

	// The application updates the value mid-flight.
	p.Update(bytes.Repeat([]byte{0xBB}, 600))

	// In-flight data is untouched; new readers see the new value.
	for _, b := range oldBytes {
		if b != 0xAA {
			t.Fatal("in-flight bytes mutated by Update (write protection violated)")
		}
	}
	if p.Bytes()[0] != 0xBB {
		t.Error("new value not visible")
	}

	// Dropping the in-flight reference frees the old buffer.
	inFlight.Release(c.Meter)
	p.Release()
	if c.Alloc.Stats().SlotsInUse != 0 {
		t.Errorf("slots in use = %d after all releases", c.Alloc.Stats().SlotsInUse)
	}
}

func TestCOWPtrManyUpdates(t *testing.T) {
	c := newTestCtx()
	p := c.NewCOWPtr([]byte{1})
	var holds []CFPtr
	for i := 2; i <= 20; i++ {
		holds = append(holds, p.Ptr())
		p.Update(bytes.Repeat([]byte{byte(i)}, i))
	}
	// Every held version observes its own snapshot.
	for i, h := range holds {
		want := byte(i + 1)
		if h.Bytes()[0] != want {
			t.Errorf("snapshot %d = %d, want %d", i, h.Bytes()[0], want)
		}
	}
	for _, h := range holds {
		h.Release(c.Meter)
	}
	p.Release()
	if c.Alloc.Stats().SlotsInUse != 0 {
		t.Error("versions leaked")
	}
}

func TestCOWPtrInMessage(t *testing.T) {
	c := newTestCtx()
	c.Threshold = 0
	s := kvSchema()
	p := c.NewCOWPtr(bytes.Repeat([]byte{0x11}, 700))
	m := NewMessage(s, c)
	m.AppendBytes(2, p.Ptr())
	p.Update(bytes.Repeat([]byte{0x22}, 700)) // swap while "queued"
	data := Marshal(m)
	buf := c.Alloc.Alloc(len(data))
	copy(buf.Bytes(), data)
	got, err := c.Deserialize(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GetBytesElem(2, 0)[0] != 0x11 {
		t.Error("message captured post-update bytes")
	}
	m.Release()
	got.Release()
	p.Release()
}
