package core

import "testing"

// FuzzDeserialize throws arbitrary bytes at the Cornflakes wire-format
// deserializer (and the getters of anything it accepts). Invariant: no
// panics, no out-of-bounds reads, errors for anything inconsistent.
// Fuzz further with:
//
//	go test -fuzz FuzzDeserialize -fuzztime 30s ./internal/core
func FuzzDeserialize(f *testing.F) {
	// Seed with a valid message.
	{
		c := newTestCtx()
		m := NewMessage(kvSchema(), c)
		m.SetInt(0, 7)
		m.AppendBytes(1, c.NewCFPtr([]byte("seed-key")))
		v := c.Alloc.Alloc(600)
		m.AppendBytes(2, c.NewCFPtr(v.Bytes()))
		f.Add(Marshal(m))
	}
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})

	inner, outer := nestedTestSchemas()
	_ = inner
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, schema := range []*Schema{kvSchema(), outer} {
			c := newTestCtx()
			msg, err := c.DeserializeBytes(schema, data)
			if err != nil {
				continue
			}
			// Anything accepted must be fully readable without panics.
			for i, fdef := range schema.Fields {
				if !msg.Has(i) {
					continue
				}
				switch fdef.Kind {
				case KindInt:
					_ = msg.GetInt(i)
				case KindBytes:
					_ = msg.GetBytes(i)
				case KindString:
					_, _ = msg.GetString(i)
				case KindIntList:
					for j := 0; j < msg.ListLen(i); j++ {
						_ = msg.GetIntElem(i, j)
					}
				case KindBytesList:
					for j := 0; j < msg.ListLen(i); j++ {
						_ = msg.GetBytesElem(i, j)
					}
				case KindStringList:
					for j := 0; j < msg.ListLen(i); j++ {
						_, _ = msg.GetStringElem(i, j)
					}
				case KindNested:
					sub := msg.GetNested(i)
					if sub != nil {
						_ = sub.GetInt(0)
					}
				case KindNestedList:
					for j := 0; j < msg.ListLen(i); j++ {
						_ = msg.GetNestedElem(i, j).GetInt(0)
					}
				}
			}
		}
	})
}
