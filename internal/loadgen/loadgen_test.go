package loadgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
	"cornflakes/internal/workloads"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got < 49*sim.Microsecond || got > 52*sim.Microsecond {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(0.99); got < 98*sim.Microsecond || got > 100*sim.Microsecond {
		t.Errorf("p99 = %v", got)
	}
	if h.Max() != 100*sim.Microsecond {
		t.Errorf("max = %v", h.Max())
	}
	if got := h.Mean(); got != sim.Time(50500)*sim.Nanosecond {
		t.Errorf("mean = %v", got)
	}
	if h.String() == "" {
		t.Error("empty String")
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile nonzero")
	}
	h.Record(-5)
	if h.Count() != 1 {
		t.Error("negative sample dropped")
	}
	h.Record(30 * sim.Millisecond) // overflow bucket
	if got := h.Quantile(1.0); got != 30*sim.Millisecond {
		t.Errorf("overflow quantile = %v", got)
	}
	h.Record(2 * sim.Second)
	if h.Quantile(2.0) != 2*sim.Second { // clamped p
		t.Error("p>1 not clamped")
	}
	h.Quantile(-1) // must not panic
}

func TestHistogramQuantileOverflowAndSingles(t *testing.T) {
	// Single sample: every quantile is that sample's bucket edge (or the
	// max, once it lands in the overflow bucket).
	h := NewHistogram()
	h.Record(3 * sim.Microsecond)
	for _, p := range []float64{0.01, 0.5, 0.99, 1.0} {
		got := h.Quantile(p)
		if got < 3*sim.Microsecond || got > 3*sim.Microsecond+histBucketSize {
			t.Errorf("single-sample Quantile(%v) = %v", p, got)
		}
	}

	// Mixed in-range and overflow samples: low quantiles resolve from the
	// buckets, while any quantile landing in the overflow tail reports the
	// observed max rather than a fictitious bucket edge.
	h = NewHistogram()
	for i := 0; i < 90; i++ {
		h.Record(10 * sim.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(20 * sim.Millisecond) // past the 16.384 ms bucket range
	}
	if got := h.Quantile(0.5); got > 11*sim.Microsecond {
		t.Errorf("p50 = %v, want ~10us from the bucketed mass", got)
	}
	if got := h.Quantile(0.99); got != 20*sim.Millisecond {
		t.Errorf("p99 = %v, want the observed max for overflow samples", got)
	}
	if got := h.Quantile(1.0); got != 20*sim.Millisecond {
		t.Errorf("p100 = %v, want observed max", got)
	}

	// All samples in overflow: every quantile is the max.
	h = NewHistogram()
	h.Record(17 * sim.Millisecond)
	h.Record(25 * sim.Millisecond)
	if got := h.Quantile(0.5); got != 25*sim.Millisecond {
		t.Errorf("all-overflow p50 = %v, want max", got)
	}
}

// echoFixture wires an echo server with a fixed service time to a client.
type echoFixture struct {
	eng     *sim.Engine
	client  *netstack.UDP
	server  *netstack.UDP
	core    *sim.Core
	service sim.Time
}

func newEchoFixture(service sim.Time) *echoFixture {
	eng := sim.NewEngine()
	pc, ps := nic.Link(eng, nic.MellanoxCX6(), nic.MellanoxCX6(), sim.FromNanos(1000))
	cAlloc, sAlloc := mem.NewAllocator(), mem.NewAllocator()
	cMeter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	sMeter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	f := &echoFixture{
		eng:     eng,
		client:  netstack.NewUDP(eng, pc, cAlloc, cMeter),
		server:  netstack.NewUDP(eng, ps, sAlloc, sMeter),
		core:    sim.NewCore(eng),
		service: service,
	}
	f.core.MaxQueue = 4096
	f.server.SetRecvHandler(func(p *mem.Buf) {
		ok := f.core.Submit(sim.Job{
			Run: func() sim.Time {
				defer p.DecRef()
				data := append([]byte(nil), p.Bytes()...)
				f.server.SendContiguous(data, mem.UnpinnedSimAddr(data))
				return f.service
			},
		})
		if !ok {
			p.DecRef()
		}
	})
	return f
}

// idClient is a trivial single-step client: 8-byte id + padding.
type idClient struct{ pad int }

func (c idClient) Steps(workloads.Request) int { return 1 }
func (c idClient) BuildStep(id uint64, _ workloads.Request, _ int) []byte {
	b := make([]byte, 8+c.pad)
	wire.PutU64(b, id)
	return b
}
func (c idClient) ResponseID(p []byte) (uint64, error) {
	if len(p) < 8 {
		return 0, fmt.Errorf("short response")
	}
	return wire.GetU64(p), nil
}

// genConst issues one fixed request shape.
type genConst struct{}

func (genConst) Name() string                      { return "const" }
func (genConst) Records() []workloads.KV           { return nil }
func (genConst) Next(*rand.Rand) workloads.Request { return workloads.Request{Op: workloads.OpGet} }

func TestRunUnderload(t *testing.T) {
	f := newEchoFixture(1 * sim.Microsecond) // capacity 1M rps
	res := Run(Config{
		Eng: f.eng, EP: f.client, Gen: genConst{}, Client: idClient{pad: 56},
		RatePerS: 50_000, Warmup: 2 * sim.Millisecond, Measure: 20 * sim.Millisecond, Seed: 1,
	})
	if math.Abs(res.AchievedRps-res.OfferedRps)/res.OfferedRps > 0.10 {
		t.Errorf("underload: achieved %v vs offered %v", res.AchievedRps, res.OfferedRps)
	}
	if res.BadResponses != 0 {
		t.Errorf("bad responses: %d", res.BadResponses)
	}
	// RTT should be small: ~2µs propagation + service + wire.
	if p50 := res.Latency.Quantile(0.5); p50 > 20*sim.Microsecond {
		t.Errorf("p50 = %v, too high for underload", p50)
	}
}

func TestRunOverload(t *testing.T) {
	f := newEchoFixture(10 * sim.Microsecond) // capacity 100k rps
	res := Run(Config{
		Eng: f.eng, EP: f.client, Gen: genConst{}, Client: idClient{pad: 56},
		RatePerS: 400_000, Warmup: 2 * sim.Millisecond, Measure: 20 * sim.Millisecond, Seed: 2,
	})
	// Achieved must saturate near the service capacity, far below offered.
	if res.AchievedRps > 130_000 {
		t.Errorf("achieved %v exceeds server capacity", res.AchievedRps)
	}
	if res.AchievedRps < 60_000 {
		t.Errorf("achieved %v too low (expected ~100k)", res.AchievedRps)
	}
	// Overload must show in the tail.
	if res.Latency.Quantile(0.99) < 50*sim.Microsecond {
		t.Errorf("p99 = %v, expected congestion", res.Latency.Quantile(0.99))
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		f := newEchoFixture(2 * sim.Microsecond)
		return Run(Config{
			Eng: f.eng, EP: f.client, Gen: genConst{}, Client: idClient{pad: 24},
			RatePerS: 100_000, Warmup: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 7,
		})
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Latency.Quantile(0.99) != b.Latency.Quantile(0.99) {
		t.Errorf("runs differ: %+v vs %+v", a.Completed, b.Completed)
	}
}

func TestSweep(t *testing.T) {
	// Synthetic server with capacity 100: achieved = min(offered, 100).
	run := func(rate float64) Result {
		ach := rate
		if ach > 100 {
			ach = 100
		}
		return Result{OfferedRps: rate, AchievedRps: ach, Latency: NewHistogram()}
	}
	points, best := Sweep([]float64{50, 90, 100, 150, 300}, run)
	if len(points) != 5 {
		t.Fatal("wrong point count")
	}
	if best.AchievedRps != 100 {
		t.Errorf("best achieved = %v, want 100", best.AchievedRps)
	}
	// All overloaded: fall back to max achieved.
	_, best = Sweep([]float64{300, 400}, run)
	if best.AchievedRps != 100 {
		t.Errorf("fallback best = %v", best.AchievedRps)
	}
}

func TestGeometricRates(t *testing.T) {
	rates := GeometricRates(100, 1600, 5)
	if len(rates) != 5 || rates[0] != 100 {
		t.Fatalf("rates = %v", rates)
	}
	if math.Abs(rates[4]-1600) > 1 {
		t.Errorf("last rate = %v", rates[4])
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Error("rates not increasing")
		}
	}
	if got := GeometricRates(1, 10, 1); len(got) != 1 || got[0] != 10 {
		t.Errorf("degenerate ladder = %v", got)
	}
}
