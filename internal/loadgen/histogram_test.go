package loadgen

import (
	"math/rand/v2"
	"testing"

	"cornflakes/internal/sim"
)

// Regression: a quantile must never exceed the observed maximum. Before the
// clamp, a single 100 ns sample reported p50 = 250 ns (the bucket's upper
// edge) — larger than Max().
func TestQuantileClampedToMax(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * sim.Nanosecond)
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != 100*sim.Nanosecond {
			t.Errorf("Quantile(%v) = %v, want 100ns (the only sample)", p, q)
		}
	}
}

// Regression: samples past the last bucket land in the overflow bucket; the
// quantile there is the observed maximum, not zero or a bucket edge.
func TestQuantileAllSamplesInOverflow(t *testing.T) {
	h := NewHistogram()
	big := sim.Time(histBuckets)*histBucketSize + 5*sim.Millisecond
	h.Record(big)
	h.Record(big + sim.Millisecond)
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != big+sim.Millisecond {
			t.Errorf("Quantile(%v) = %v, want the observed max %v", p, q, big+sim.Millisecond)
		}
	}
}

// Regression: quantiles interpolate within a bucket instead of reporting the
// bucket's upper edge. Four samples recorded low in bucket 0 must yield a p50
// of half a bucket width, not the full 250 ns edge — the edge bias inflated
// P50 by up to one bucket at this resolution.
func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 4; i++ {
		h.Record(240 * sim.Nanosecond) // all in bucket 0, near its top
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{0.25, histBucketSize / 4},
		{0.50, histBucketSize / 2},
		{0.75, 3 * histBucketSize / 4},
		{1.00, 240 * sim.Nanosecond}, // upper edge clamps to the observed max
	}
	for _, c := range cases {
		if q := h.Quantile(c.p); q != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, q, c.want)
		}
	}
}

// Boundary: one sample recorded exactly on a bucket edge lands in the upper
// bucket, and every quantile still reports the sample itself (interpolation
// reaches the bucket's far edge and the Max() clamp pulls it back).
func TestQuantileOneSampleAtExactEdge(t *testing.T) {
	h := NewHistogram()
	h.Record(histBucketSize) // exactly 250 ns: first slot of bucket 1
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != histBucketSize {
			t.Errorf("Quantile(%v) = %v, want %v (the only sample)", p, q, histBucketSize)
		}
	}
}

// Boundary: with mass split evenly across two adjacent buckets, the median
// falls exactly on the shared bucket edge and higher quantiles interpolate
// into the second bucket.
func TestQuantileExactEdgeBetweenBuckets(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * sim.Nanosecond) // bucket 0
	h.Record(200 * sim.Nanosecond) // bucket 0
	h.Record(300 * sim.Nanosecond) // bucket 1
	h.Record(400 * sim.Nanosecond) // bucket 1
	if q := h.Quantile(0.5); q != histBucketSize {
		t.Errorf("Quantile(0.5) = %v, want the shared edge %v", q, histBucketSize)
	}
	if q := h.Quantile(0.75); q != histBucketSize+histBucketSize/2 {
		t.Errorf("Quantile(0.75) = %v, want %v", q, histBucketSize+histBucketSize/2)
	}
}

// Property: Quantile(p) <= Max() for arbitrary recorded distributions, and
// quantiles are monotone non-decreasing in p.
func TestQuantileNeverExceedsMax(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 0))
	ps := []float64{0.001, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram()
		n := 1 + r.IntN(200)
		for i := 0; i < n; i++ {
			// Spread across regimes: sub-bucket, mid-range, and overflow.
			var d sim.Time
			switch r.IntN(3) {
			case 0:
				d = sim.Time(r.Int64N(int64(histBucketSize)))
			case 1:
				d = sim.Time(r.Int64N(int64(sim.Millisecond)))
			default:
				d = sim.Time(histBuckets)*histBucketSize + sim.Time(r.Int64N(int64(sim.Millisecond)))
			}
			h.Record(d)
		}
		prev := sim.Time(0)
		for _, p := range ps {
			q := h.Quantile(p)
			if q > h.Max() {
				t.Fatalf("trial %d: Quantile(%v) = %v exceeds Max() = %v", trial, p, q, h.Max())
			}
			if q < prev {
				t.Fatalf("trial %d: Quantile(%v) = %v below Quantile at smaller p (%v)", trial, p, q, prev)
			}
			prev = q
		}
	}
}
