package loadgen

import (
	"testing"

	"cornflakes/internal/mem"
	"cornflakes/internal/sim"
)

// parityEndpoint swallows every odd send (the primaries) and echoes the
// even ones (the hedges) after echoDelay — a server whose first answer is
// always lost, isolating the hedge-wins path.
type parityEndpoint struct {
	eng       *sim.Engine
	alloc     *mem.Allocator
	recv      func(*mem.Buf)
	echoDelay sim.Time
	sent      int
}

func (d *parityEndpoint) SetRecvHandler(fn func(*mem.Buf)) { d.recv = fn }

func (d *parityEndpoint) SendContiguous(payload []byte, _ uint64) error {
	d.sent++
	if d.sent%2 == 1 {
		return nil
	}
	reply := append([]byte(nil), payload...)
	d.eng.After(d.echoDelay, func() {
		buf := d.alloc.Alloc(len(reply))
		copy(buf.Bytes(), reply)
		d.recv(buf)
	})
	return nil
}

func hedgeCfg(eng *sim.Engine, ep Endpoint) Config {
	return Config{
		Eng: eng, EP: ep, Gen: genConst{}, Client: idClient{},
		// 100 µs spacing vs ≤ 50 µs resolution: flows never interleave, so
		// the parity endpoint's odd/even split cleanly means primary/hedge.
		RatePerS: 10_000, Warmup: 0, Measure: sim.Millisecond, Seed: 3,
		Retry: RetryPolicy{
			Deadline:   50 * sim.Microsecond,
			MaxRetries: 2,
			Backoff:    10 * sim.Microsecond,
			MaxBackoff: 40 * sim.Microsecond,
		},
		Hedge:  HedgePolicy{Delay: 10 * sim.Microsecond},
		ShedID: testShedID,
	}
}

// A server that loses every primary: each flow is rescued by its hedge, so
// hedges launch for every flow, every win is a hedge win, and the lost
// primaries waste nothing.
func TestHedgeRescuesLostPrimaries(t *testing.T) {
	eng := sim.NewEngine()
	d := &parityEndpoint{eng: eng, alloc: mem.NewAllocator(), echoDelay: 2 * sim.Microsecond}
	res := Run(hedgeCfg(eng, d))
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Completed != res.Sent {
		t.Errorf("completed %d of %d (timedout=%d)", res.Completed, res.Sent, res.TimedOut)
	}
	if res.Hedges != res.Sent {
		t.Errorf("hedges launched = %d, want one per flow (%d)", res.Hedges, res.Sent)
	}
	if res.HedgeWins != res.Sent {
		t.Errorf("hedge wins = %d, want %d — every primary was lost", res.HedgeWins, res.Sent)
	}
	if res.HedgeWasted != 0 {
		t.Errorf("hedge wasted = %d; lost primaries never reply", res.HedgeWasted)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d; hedges resolved well before the deadline", res.Retries)
	}
}

// A server that answers everything, slower than the hedge delay: both
// racers reply, the primary wins, and the hedge's reply is retired as
// HedgeWasted — never a second completion (satellite a).
func TestHedgeLoserRetiredAsWasted(t *testing.T) {
	eng := sim.NewEngine()
	d := &deafEndpoint{eng: eng, alloc: mem.NewAllocator(), echoDelay: 30 * sim.Microsecond}
	res := Run(hedgeCfg(eng, d))
	if res.Completed != res.Sent {
		t.Errorf("completed %d of %d", res.Completed, res.Sent)
	}
	if res.Hedges != res.Sent {
		t.Errorf("hedges = %d, want %d (30 µs echo > 10 µs hedge delay)", res.Hedges, res.Sent)
	}
	// Primary sent at t answers at t+30; hedge sent at t+10 answers at
	// t+40: primary always wins, hedge reply always lands on a decided race.
	if res.HedgeWins != 0 {
		t.Errorf("hedge wins = %d, want 0", res.HedgeWins)
	}
	if res.HedgeWasted != res.Hedges {
		t.Errorf("hedge wasted = %d, want every losing reply (%d)", res.HedgeWasted, res.Hedges)
	}
	if res.LateResponses != 0 || res.BadResponses != 0 {
		t.Errorf("wasted replies misclassified: late=%d bad=%d", res.LateResponses, res.BadResponses)
	}
}

// A server slower than the deadline: the shared deadline abandons both
// racers together, the flow times out, and both replies come back Late —
// not wasted (no race was decided), not bad (satellite a).
func TestHedgeSharedDeadline(t *testing.T) {
	eng := sim.NewEngine()
	d := &deafEndpoint{eng: eng, alloc: mem.NewAllocator(), echoDelay: 200 * sim.Microsecond}
	cfg := hedgeCfg(eng, d)
	cfg.Retry.MaxRetries = 0
	res := Run(cfg)
	if res.TimedOut != res.Sent || res.Completed != 0 {
		t.Errorf("timedout=%d completed=%d of sent=%d", res.TimedOut, res.Completed, res.Sent)
	}
	if res.Hedges != res.Sent {
		t.Errorf("hedges = %d, want %d", res.Hedges, res.Sent)
	}
	// Both the primary's and the hedge's replies arrive after the timeout.
	if res.LateResponses != 2*res.Sent {
		t.Errorf("late = %d, want both racers' replies (%d)", res.LateResponses, 2*res.Sent)
	}
	if res.HedgeWasted != 0 {
		t.Errorf("wasted = %d; an undecided race wastes nothing", res.HedgeWasted)
	}
	if res.HedgeWins != 0 || res.BadResponses != 0 {
		t.Errorf("wins=%d bad=%d, want 0/0", res.HedgeWins, res.BadResponses)
	}
}

// Regression (hedge × retry double-scheduling audit): when a hedged pair's
// shared deadline expires with BOTH racers still outstanding and retries
// remaining, exactly one retry is scheduled for the pair — never one per
// racer — and every straggler reply classifies Late, never as a second
// completion. The chaos gray triplet exercises this path but never pins the
// retry count; this does, deterministically.
func TestHedgedPairExpiryRetriesOnce(t *testing.T) {
	eng := sim.NewEngine()
	// 200 µs echo > 50 µs deadline: every pair (first attempt and its one
	// retry) expires with both racers in flight, then all replies straggle in.
	d := &deafEndpoint{eng: eng, alloc: mem.NewAllocator(), echoDelay: 200 * sim.Microsecond}
	cfg := hedgeCfg(eng, d)
	cfg.Retry.MaxRetries = 1
	res := Run(cfg)
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	// The pin: one expired hedged pair schedules exactly one retry. A
	// double-schedule (one per racer) would double this.
	if res.Retries != res.Sent {
		t.Errorf("retries = %d, want exactly one per flow (%d)", res.Retries, res.Sent)
	}
	// Both the first attempt and its retry hedge (10 µs delay < 50 µs
	// deadline), so each flow launches exactly two hedges.
	if res.Hedges != 2*res.Sent {
		t.Errorf("hedges = %d, want two per flow (%d)", res.Hedges, 2*res.Sent)
	}
	if res.TimedOut != res.Sent || res.Completed != 0 {
		t.Errorf("timedout=%d completed=%d of sent=%d — straggler replies must never complete an expired flow",
			res.TimedOut, res.Completed, res.Sent)
	}
	// All four racers (2 attempts × 2 racers) eventually answer, after the
	// flow is gone: Late, not wasted (no race was decided), not bad.
	if res.LateResponses != 4*res.Sent {
		t.Errorf("late = %d, want all four racers' replies (%d)", res.LateResponses, 4*res.Sent)
	}
	if res.HedgeWasted != 0 || res.HedgeWins != 0 || res.BadResponses != 0 {
		t.Errorf("wasted=%d wins=%d bad=%d, want 0/0/0", res.HedgeWasted, res.HedgeWins, res.BadResponses)
	}
	if got := res.Completed + res.Shed + res.TimedOut + res.Unresolved; got != res.Sent {
		t.Errorf("disposal not exact: sent=%d resolved=%d", res.Sent, got)
	}
}

// routeRec records every announced failover route index.
type routeRec struct {
	idClient
	routes []int
}

func (c *routeRec) RouteAttempt(a int) { c.routes = append(c.routes, a) }

// Regression: a retry after an expired hedged pair must route PAST the
// replica slot the hedge already consumed. Each flow here sends four racers
// (primary, hedge, retry primary, retry hedge) which must announce route
// indices 0,1,2,3 — before the fix the retry re-announced index 1, re-hitting
// the hedge's replica under failover routing.
func TestHedgeRetryRouteSkipsConsumedSlot(t *testing.T) {
	eng := sim.NewEngine()
	d := &deafEndpoint{eng: eng, alloc: mem.NewAllocator(), echoDelay: 200 * sim.Microsecond}
	cfg := hedgeCfg(eng, d)
	cfg.Retry.MaxRetries = 1
	rec := &routeRec{}
	cfg.Client = rec
	res := Run(cfg)
	counts := map[int]int{}
	for _, a := range rec.routes {
		counts[a]++
	}
	n := int(res.Sent)
	if len(rec.routes) != 4*n {
		t.Fatalf("announced %d routes, want 4 per flow (%d)", len(rec.routes), 4*n)
	}
	for slot := 0; slot < 4; slot++ {
		if counts[slot] != n {
			t.Errorf("route slot %d announced %d times, want once per flow (%d); counts=%v",
				slot, counts[slot], n, counts)
		}
	}
}

// A server faster than the hedge delay: the hedge timer is disarmed before
// it fires, so no hedges launch at all.
func TestHedgeNotLaunchedWhenFast(t *testing.T) {
	eng := sim.NewEngine()
	d := &deafEndpoint{eng: eng, alloc: mem.NewAllocator(), echoDelay: 2 * sim.Microsecond}
	res := Run(hedgeCfg(eng, d))
	if res.Completed != res.Sent {
		t.Errorf("completed %d of %d", res.Completed, res.Sent)
	}
	if res.Hedges != 0 || res.HedgeWins != 0 || res.HedgeWasted != 0 {
		t.Errorf("hedging engaged on a fast server: %d/%d/%d", res.Hedges, res.HedgeWins, res.HedgeWasted)
	}
}

// Hedged runs replay bit for bit from the same seed, and disposal stays
// exact through the hedge machinery.
func TestHedgeDeterministicAndExact(t *testing.T) {
	run := func() Result {
		eng := sim.NewEngine()
		d := &deafEndpoint{
			eng: eng, alloc: mem.NewAllocator(),
			dropFirst: 7, slowFirst: 5, slowDelay: 35 * sim.Microsecond,
			echoDelay: 12 * sim.Microsecond,
		}
		cfg := hedgeCfg(eng, d)
		cfg.Hedge.Jitter = 8 * sim.Microsecond
		return Run(cfg)
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.TimedOut != b.TimedOut ||
		a.Hedges != b.Hedges || a.HedgeWins != b.HedgeWins ||
		a.HedgeWasted != b.HedgeWasted || a.LateResponses != b.LateResponses {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
	if got := a.Completed + a.Shed + a.TimedOut + a.Unresolved; got != a.Sent {
		t.Errorf("accounting: sent=%d resolved=%d", a.Sent, got)
	}
	if a.Hedges == 0 {
		t.Error("mixed scenario launched no hedges")
	}
}

// Buckets slice the measurement window: completions land in order, sum to
// at most Completed (drain-window completions are unbucketed), and the
// slice length matches the config.
func TestBucketCompleted(t *testing.T) {
	eng := sim.NewEngine()
	d := &deafEndpoint{eng: eng, alloc: mem.NewAllocator(), echoDelay: 2 * sim.Microsecond}
	cfg := hedgeCfg(eng, d)
	cfg.Buckets = 8
	cfg.RatePerS = 200_000 // ~25 completions per 125 µs bucket
	res := Run(cfg)
	if len(res.BucketCompleted) != 8 {
		t.Fatalf("bucket count = %d, want 8", len(res.BucketCompleted))
	}
	var sum uint64
	for _, n := range res.BucketCompleted {
		sum += n
	}
	if sum == 0 || sum > res.Completed {
		t.Errorf("bucket sum = %d vs completed %d", sum, res.Completed)
	}
	// 10k rps over 8 buckets of 125 µs: every bucket should see traffic.
	for i, n := range res.BucketCompleted {
		if n == 0 {
			t.Errorf("bucket %d empty (%v)", i, res.BucketCompleted)
		}
	}
}
