package loadgen

import (
	"testing"

	"cornflakes/internal/mem"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
)

// deafEndpoint swallows a configurable prefix of requests, then starts
// echoing them back after echoDelay. It drives the timeout/retry machinery
// without a full netstack.
type deafEndpoint struct {
	eng       *sim.Engine
	alloc     *mem.Allocator
	recv      func(*mem.Buf)
	dropFirst int // swallow this many sends before answering any
	slowFirst int // answer this many sends (after drops) with slowDelay
	slowDelay sim.Time
	echoDelay sim.Time
	shedAll   bool // answer with shed replies instead of echoes
	sent      int
}

func (d *deafEndpoint) SetRecvHandler(fn func(*mem.Buf)) { d.recv = fn }

func (d *deafEndpoint) SendContiguous(payload []byte, _ uint64) error {
	d.sent++
	if d.sent <= d.dropFirst {
		return nil
	}
	var reply []byte
	if d.shedAll {
		reply = append([]byte{0xEE}, payload[:8]...)
	} else {
		reply = append([]byte(nil), payload...)
	}
	delay := d.echoDelay
	if d.sent <= d.dropFirst+d.slowFirst {
		delay = d.slowDelay
	}
	d.eng.After(delay, func() {
		buf := d.alloc.Alloc(len(reply))
		copy(buf.Bytes(), reply)
		d.recv(buf)
	})
	return nil
}

// testShedID mirrors driver.ShedID for the deafEndpoint's framing.
func testShedID(p []byte) (uint64, bool) {
	if len(p) != 9 || p[0] != 0xEE {
		return 0, false
	}
	return wire.GetU64(p[1:]), true
}

func retryCfg(d *deafEndpoint) Config {
	return Config{
		Eng: d.eng, EP: d, Gen: genConst{}, Client: idClient{},
		RatePerS: 100_000, Warmup: 0, Measure: sim.Millisecond, Seed: 3,
		Retry: RetryPolicy{
			Deadline:   20 * sim.Microsecond,
			MaxRetries: 3,
			Backoff:    10 * sim.Microsecond,
			MaxBackoff: 40 * sim.Microsecond,
		},
		ShedID: testShedID,
	}
}

// A dead server: every measured request must end as TimedOut, none hang.
func TestRetryAllTimeout(t *testing.T) {
	d := &deafEndpoint{eng: sim.NewEngine(), alloc: mem.NewAllocator(), dropFirst: 1 << 30}
	res := Run(retryCfg(d))
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.TimedOut != res.Sent || res.Completed != 0 || res.Unresolved != 0 {
		t.Errorf("accounting: sent=%d completed=%d timedout=%d unresolved=%d",
			res.Sent, res.Completed, res.TimedOut, res.Unresolved)
	}
	// Every flow retries MaxRetries times before giving up.
	if res.Retries == 0 {
		t.Error("no retries recorded")
	}
	// Zero-completion guard: the quantile path must yield an explicit zero.
	if res.P99() != 0 {
		t.Errorf("P99 of zero completions = %v, want 0", res.P99())
	}
	if res.AchievedRps != 0 || res.AchievedGbps != 0 {
		t.Errorf("zero-goodput point reports achieved %v rps / %v gbps",
			res.AchievedRps, res.AchievedGbps)
	}
}

// A server that wakes up after dropping the first few requests: the dropped
// ones recover via retry and complete.
func TestRetryRecovers(t *testing.T) {
	d := &deafEndpoint{
		eng: sim.NewEngine(), alloc: mem.NewAllocator(),
		dropFirst: 5, echoDelay: 2 * sim.Microsecond,
	}
	res := Run(retryCfg(d))
	if res.Completed != res.Sent {
		t.Errorf("completed %d of %d sent (timedout=%d unresolved=%d)",
			res.Completed, res.Sent, res.TimedOut, res.Unresolved)
	}
	if res.Retries == 0 {
		t.Error("expected the dropped requests to be retried")
	}
	if res.BadResponses != 0 {
		t.Errorf("bad responses: %d", res.BadResponses)
	}
}

// Shed replies classify separately from completions and are terminal.
func TestShedClassified(t *testing.T) {
	d := &deafEndpoint{
		eng: sim.NewEngine(), alloc: mem.NewAllocator(),
		shedAll: true, echoDelay: 2 * sim.Microsecond,
	}
	res := Run(retryCfg(d))
	if res.Shed != res.Sent || res.Completed != 0 {
		t.Errorf("shed=%d completed=%d of sent=%d", res.Shed, res.Completed, res.Sent)
	}
	if res.Retries != 0 {
		t.Errorf("shed flows retried %d times; shed must be terminal", res.Retries)
	}
	if res.BadResponses != 0 {
		t.Errorf("shed replies misclassified as bad: %d", res.BadResponses)
	}
}

// A late response (after the deadline re-sent the request) must count as
// Late, not Bad, and the flow completes exactly once via the retry.
func TestLateResponseAfterRetry(t *testing.T) {
	d := &deafEndpoint{
		eng: sim.NewEngine(), alloc: mem.NewAllocator(),
		// The first send's reply outlives the 20 µs deadline, so its flow
		// retries; the retry (a later send) is answered fast and
		// completes, then the slow original reply lands on an expired id.
		slowFirst: 1, slowDelay: 30 * sim.Microsecond,
		echoDelay: 2 * sim.Microsecond,
	}
	cfg := retryCfg(d)
	cfg.RatePerS = 10_000
	res := Run(cfg)
	if res.Completed != res.Sent {
		t.Errorf("completed %d of %d", res.Completed, res.Sent)
	}
	if res.LateResponses == 0 {
		t.Error("expected late responses from the slow first attempts")
	}
	if res.BadResponses != 0 {
		t.Errorf("late responses misclassified as bad: %d", res.BadResponses)
	}
}

// Retry schedules are replayable: identical seeds give identical outcomes.
func TestRetryDeterministic(t *testing.T) {
	run := func() Result {
		d := &deafEndpoint{
			eng: sim.NewEngine(), alloc: mem.NewAllocator(),
			dropFirst: 20, echoDelay: 25 * sim.Microsecond,
		}
		return Run(retryCfg(d))
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.TimedOut != b.TimedOut ||
		a.Retries != b.Retries || a.LateResponses != b.LateResponses {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestBackoffCapped(t *testing.T) {
	p := RetryPolicy{Backoff: 10, MaxBackoff: 35}
	want := []sim.Time{10, 20, 35, 35}
	for k, w := range want {
		if got := p.backoffFor(k); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", k, got, w)
		}
	}
	uncapped := RetryPolicy{Backoff: 10}
	if got := uncapped.backoffFor(3); got != 80 {
		t.Errorf("uncapped backoffFor(3) = %v, want 80", got)
	}
}

// stampingEndpoint is a deafEndpoint that records the engine time of every
// send, exposing the retry schedule (arrivals + jittered retransmits).
type stampingEndpoint struct {
	deafEndpoint
	stamps []sim.Time
}

func (d *stampingEndpoint) SendContiguous(payload []byte, id uint64) error {
	d.stamps = append(d.stamps, d.eng.Now())
	return d.deafEndpoint.SendContiguous(payload, id)
}

// TestRetryJitterPerClientStream pins satellite 3: the retry-jitter PRNG is
// an independent sub-stream per ClientID, so (a) two clients with the same
// seed but different ids produce different retransmit schedules, (b) the
// same id reproduces its schedule exactly, and (c) ClientID 0 keeps the
// historical root stream (same schedule as before the field existed).
func TestRetryJitterPerClientStream(t *testing.T) {
	schedule := func(clientID uint64) []sim.Time {
		d := &stampingEndpoint{deafEndpoint: deafEndpoint{
			eng: sim.NewEngine(), alloc: mem.NewAllocator(), dropFirst: 1 << 30,
		}}
		cfg := retryCfg(&d.deafEndpoint)
		cfg.EP = d
		cfg.ClientID = clientID
		Run(cfg)
		return d.stamps
	}
	a0, a1, a2 := schedule(0), schedule(1), schedule(2)
	b1 := schedule(1)
	if len(a1) != len(b1) {
		t.Fatalf("same ClientID, different send counts: %d vs %d", len(a1), len(b1))
	}
	for i := range a1 {
		if a1[i] != b1[i] {
			t.Fatalf("ClientID 1 schedule not reproducible at send %d: %v vs %v", i, a1[i], b1[i])
		}
	}
	same := func(x, y []sim.Time) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	// Arrivals share the workload stream, so the schedules can only differ
	// in the jittered retransmits — but differ they must.
	if same(a0, a1) || same(a0, a2) || same(a1, a2) {
		t.Error("distinct ClientIDs produced identical retransmit schedules; jitter streams are shared")
	}
}
