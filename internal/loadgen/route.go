package loadgen

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping keys to shard indexes. Each shard
// owns vnodes points on a 64-bit circle; a key belongs to the first point
// at or clockwise of its hash. With enough virtual nodes per shard the key
// space splits near-evenly, and growing the ring from n to n+1 shards moves
// only ≈1/(n+1) of the keys — the property that makes shard counts sweepable
// without reshuffling the whole store.
type Ring struct {
	hashes []uint64 // sorted point positions
	owner  []int    // owner[i] is the shard owning hashes[i]
	shards int
}

// NewRing builds a ring over the given shard count. vnodes ≤ 0 selects the
// default of 256 points per shard (arc-length imbalance shrinks as
// 1/√vnodes; 256 keeps shard key shares within a few percent of even,
// which the cluster scaling checks rely on).
func NewRing(shards, vnodes int) *Ring {
	if shards <= 0 {
		panic(fmt.Sprintf("loadgen: NewRing(%d, %d)", shards, vnodes))
	}
	if vnodes <= 0 {
		vnodes = 256
	}
	type point struct {
		hash  uint64
		shard int
	}
	pts := make([]point, 0, shards*vnodes)
	var label [8]byte
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			label[0], label[1], label[2], label[3] = byte(s), byte(s>>8), byte(s>>16), byte(s>>24)
			label[4], label[5], label[6], label[7] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			// FNV over labels differing in two byte positions yields nearly
			// arithmetic hashes (clustered arcs); the finalizer decorrelates.
			pts = append(pts, point{hash: mix64(fnv64a(label[:])), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the ring is
		// identical no matter the sort's internals.
		return pts[i].shard < pts[j].shard
	})
	r := &Ring{
		hashes: make([]uint64, len(pts)),
		owner:  make([]int, len(pts)),
		shards: shards,
	}
	for i, p := range pts {
		r.hashes[i] = p.hash
		r.owner[i] = p.shard
	}
	return r
}

// Shards returns the shard count the ring was built over.
func (r *Ring) Shards() int { return r.shards }

// Shard returns the shard owning key.
func (r *Ring) Shard(key []byte) int {
	return r.owner[r.slot(keyPoint(key))]
}

// keyPoint maps a key to its position on the circle. FNV alone clusters
// near-identical keys (fixed-prefix, fixed-width numerics) into a narrow
// arc — the high bits barely move — so the finalizer spreads them the same
// way it spreads the vnode labels.
func keyPoint(key []byte) uint64 {
	return mix64(fnv64a(key))
}

// slot returns the index of the first point at or clockwise of h.
func (r *Ring) slot(h uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap: past the last point, the first point owns it
	}
	return i
}

// Replicas appends the R distinct shards holding key — the owner first,
// then successor shards clockwise — to dst and returns it. R is clamped to
// the shard count. Passing a reused dst keeps the per-request routing
// decision allocation-free.
func (r *Ring) Replicas(dst []int, key []byte, R int) []int {
	if R > r.shards {
		R = r.shards
	}
	if R < 1 {
		R = 1
	}
	start := r.slot(keyPoint(key))
	base := len(dst)
	for i := 0; len(dst)-base < R; i++ {
		s := r.owner[(start+i)%len(r.hashes)]
		seen := false
		for _, have := range dst[base:] {
			if have == s {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, s)
		}
	}
	return dst
}

// Rotation returns a per-key deterministic base offset into the key's
// replica set, decorrelated from the ring position (different finalizer
// input). Failover routing picks replica (Rotation+attempt) mod R: every
// attempt of one request agrees on the base, consecutive attempts are
// guaranteed distinct replicas, and no cross-request state is consumed —
// so a retry or hedge always lands somewhere new without perturbing any
// other request's routing.
func (r *Ring) Rotation(key []byte) uint64 {
	return mix64(fnv64a(key) ^ 0xFA170FE2)
}

// fnv64a is the 64-bit FNV-1a hash, the same function the shard-tag
// dispatcher in driver uses, so routing is consistent across layers.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection on uint64.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}
