package loadgen

import (
	"math"
	"math/rand/v2"

	"cornflakes/internal/mem"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// Client adapts one serialization system's request/response encoding to
// the load generator. A workload request may take several sequential steps
// (the CDN workload fetches an object's sub-objects one after another).
type Client interface {
	// Steps returns how many request/response exchanges req needs (≥ 1).
	Steps(req workloads.Request) int
	// BuildStep encodes step s of req; the returned payload must carry id
	// so the matching response can be identified.
	BuildStep(id uint64, req workloads.Request, s int) []byte
	// ResponseID extracts the id from a response payload.
	ResponseID(payload []byte) (uint64, error)
}

// Endpoint is the client-side transport: both *netstack.UDP and
// *netstack.TCPConn satisfy it.
type Endpoint interface {
	SendContiguous(payload []byte, sim uint64) error
	SetRecvHandler(fn func(payload *mem.Buf))
}

// Config drives one load generation run.
type Config struct {
	Eng *sim.Engine
	// EP is the client-side endpoint (its meter is the client's own CPU,
	// which is not the measured resource — the paper's load generator has
	// 16 threads on a dedicated machine).
	EP       Endpoint
	Gen      workloads.Generator
	Client   Client
	RatePerS float64 // offered load in requests (objects) per second
	Warmup   sim.Time
	Measure  sim.Time
	Seed     uint64
}

// Result summarises one run.
type Result struct {
	OfferedRps float64
	// SentRps is the realized offered load: requests actually issued in
	// the measurement window per second (Poisson noise makes it differ
	// from OfferedRps on short windows).
	SentRps      float64
	AchievedRps  float64
	AchievedGbps float64 // response payload bits per second in the window
	Latency      *Histogram
	Sent         uint64 // requests issued in the measurement window
	Completed    uint64
	BadResponses uint64
}

// flow tracks one in-progress (possibly multi-step) request.
type flow struct {
	req      workloads.Request
	step     int
	start    sim.Time
	measured bool
}

// Run executes one open-loop run and returns the measured result.
func Run(cfg Config) Result {
	eng := cfg.Eng
	r := rand.New(rand.NewPCG(cfg.Seed, 0x10AD))
	res := Result{OfferedRps: cfg.RatePerS, Latency: NewHistogram()}

	interarrival := func() sim.Time {
		// Exponential interarrival for a Poisson process.
		u := r.Float64()
		if u <= 0 {
			u = 1e-12
		}
		return sim.FromSeconds(-math.Log(u) / cfg.RatePerS)
	}

	var (
		nextID     uint64
		flows      = map[uint64]*flow{}
		respBytes  uint64
		measureEnd = cfg.Warmup + cfg.Measure
	)

	sendStep := func(f *flow) {
		id := nextID
		nextID++
		flows[id] = f
		payload := cfg.Client.BuildStep(id, f.req, f.step)
		cfg.EP.SendContiguous(payload, mem.UnpinnedSimAddr(payload))
	}

	cfg.EP.SetRecvHandler(func(p *mem.Buf) {
		defer p.DecRef()
		now := eng.Now()
		id, err := cfg.Client.ResponseID(p.Bytes())
		if err != nil {
			res.BadResponses++
			return
		}
		f, ok := flows[id]
		if !ok {
			res.BadResponses++
			return
		}
		delete(flows, id)
		f.step++
		if f.step < cfg.Client.Steps(f.req) {
			sendStep(f)
			if f.measured {
				respBytes += uint64(p.Len())
			}
			return
		}
		if f.measured && now <= measureEnd {
			res.Completed++
			respBytes += uint64(p.Len())
			res.Latency.Record(now - f.start)
		}
	})

	var arrive func()
	arrive = func() {
		now := eng.Now()
		if now >= measureEnd {
			return
		}
		req := cfg.Gen.Next(r)
		f := &flow{req: req, start: now, measured: now >= cfg.Warmup}
		if f.measured {
			res.Sent++
		}
		sendStep(f)
		eng.After(interarrival(), arrive)
	}
	eng.After(interarrival(), arrive)

	// Run to the end of the measurement window plus a drain period so
	// in-flight responses are counted.
	eng.RunUntil(measureEnd + 2*sim.Millisecond)

	res.SentRps = float64(res.Sent) / cfg.Measure.Seconds()
	res.AchievedRps = float64(res.Completed) / cfg.Measure.Seconds()
	res.AchievedGbps = float64(respBytes) * 8 / cfg.Measure.Seconds() / 1e9
	return res
}

// Sweep runs the given run function across offered loads and returns every
// point plus the highest achieved load among points where achieved ≥ 95% of
// offered (the paper's reporting rule).
func Sweep(rates []float64, run func(rate float64) Result) (points []Result, best Result) {
	for _, rate := range rates {
		res := run(rate)
		points = append(points, res)
		if res.AchievedRps >= 0.95*res.OfferedRps && res.AchievedRps > best.AchievedRps {
			best = res
		}
	}
	// If nothing met the 95% rule (all overloaded), report the highest
	// achieved load like the paper's "highest achieved throughput across
	// all offered loads".
	if best.AchievedRps == 0 {
		for _, p := range points {
			if p.AchievedRps > best.AchievedRps {
				best = p
			}
		}
	}
	return points, best
}

// GeometricRates builds a rate ladder from lo to hi with the given number
// of steps (inclusive), spaced geometrically.
func GeometricRates(lo, hi float64, steps int) []float64 {
	if steps < 2 {
		return []float64{hi}
	}
	rates := make([]float64, steps)
	ratio := math.Pow(hi/lo, 1/float64(steps-1))
	v := lo
	for i := range rates {
		rates[i] = v
		v *= ratio
	}
	return rates
}
