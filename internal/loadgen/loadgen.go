package loadgen

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"cornflakes/internal/mem"
	"cornflakes/internal/sim"
	"cornflakes/internal/trace"
	"cornflakes/internal/workloads"
)

// Client adapts one serialization system's request/response encoding to
// the load generator. A workload request may take several sequential steps
// (the CDN workload fetches an object's sub-objects one after another).
type Client interface {
	// Steps returns how many request/response exchanges req needs (≥ 1).
	Steps(req workloads.Request) int
	// BuildStep encodes step s of req; the returned payload must carry id
	// so the matching response can be identified.
	BuildStep(id uint64, req workloads.Request, s int) []byte
	// ResponseID extracts the id from a response payload.
	ResponseID(payload []byte) (uint64, error)
}

// Endpoint is the client-side transport: both *netstack.UDP and
// *netstack.TCPConn satisfy it.
type Endpoint interface {
	SendContiguous(payload []byte, sim uint64) error
	SetRecvHandler(fn func(payload *mem.Buf))
}

// RetryPolicy gives requests a virtual-time deadline and capped
// exponential backoff with jitter. The zero value disables timeouts:
// requests wait forever, the pre-overload-work behavior. Jitter is drawn
// from a sim.Rand forked off the run seed, so retry schedules are
// bit-for-bit replayable.
type RetryPolicy struct {
	// Deadline is the per-attempt timeout. Zero disables the policy.
	Deadline sim.Time
	// MaxRetries is the number of re-sends after the first attempt. The
	// budget is per flow, shared across a multi-step request's steps.
	MaxRetries int
	// Backoff is the base delay before retry k, doubled each retry
	// (Backoff, 2·Backoff, 4·Backoff, …) and capped at MaxBackoff.
	Backoff sim.Time
	// MaxBackoff caps the exponential growth. Zero means no cap.
	MaxBackoff sim.Time
}

// enabled reports whether the policy arms timers at all.
func (p RetryPolicy) enabled() bool { return p.Deadline > 0 }

// HedgePolicy arms hedged requests: if an attempt has not resolved after
// Delay (plus seeded jitter up to Jitter), a second copy of the request is
// fired — at a different replica when the client routes by attempt — and
// the first reply wins. The loser's reply is retired as HedgeWasted, never
// double-completed. The zero value disables hedging; a disabled policy
// adds no events and draws no randomness, so existing runs replay bit for
// bit.
type HedgePolicy struct {
	// Delay is how long an attempt may run before its hedge fires. It
	// should sit near the healthy p99 — early enough to rescue tail
	// requests, late enough that most requests never hedge.
	Delay sim.Time
	// Jitter adds a uniform [0, Jitter) draw to each hedge delay so
	// synchronized clients do not hedge in phase.
	Jitter sim.Time
}

// enabled reports whether hedge timers are armed at all.
func (p HedgePolicy) enabled() bool { return p.Delay > 0 }

// AttemptRouter is implemented by clients whose routing wants the attempt
// index: the generator announces attempt k (0 = first try; retries and
// hedges increment) immediately before the corresponding BuildStep, so a
// failover-routing client can steer each attempt to a different replica.
type AttemptRouter interface {
	RouteAttempt(attempt int)
}

// backoffFor returns the capped backoff before retry k (0-based).
func (p RetryPolicy) backoffFor(k int) sim.Time {
	b := p.Backoff
	for i := 0; i < k; i++ {
		b *= 2
		if p.MaxBackoff > 0 && b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// Config drives one load generation run.
type Config struct {
	// Eng is the engine the client's activity is scheduled on — in a
	// partitioned topology, the client node's own shard.
	Eng *sim.Engine
	// Exec, when set, is what Run/RunMany drive instead of Eng — a
	// partitioned topology's coordinator (driver.Rack.Exec). Scheduling
	// stays on Eng; only the run loop moves. Nil means drive Eng directly,
	// the serial behavior.
	Exec sim.Runner
	// EP is the client-side endpoint (its meter is the client's own CPU,
	// which is not the measured resource — the paper's load generator has
	// 16 threads on a dedicated machine).
	EP       Endpoint
	Gen      workloads.Generator
	Client   Client
	RatePerS float64 // offered load in requests (objects) per second
	Warmup   sim.Time
	Measure  sim.Time
	Seed     uint64

	// Retry configures per-request deadlines and retries (zero = off).
	Retry RetryPolicy
	// Hedge configures hedged requests (zero = off). A hedge shares its
	// primary's deadline: if neither copy answers before the attempt's
	// deadline, both are abandoned together and the retry ladder proceeds.
	Hedge HedgePolicy
	// Buckets, when > 0, slices the measurement window into this many
	// equal time buckets and counts completions per bucket
	// (Result.BucketCompleted) — the goodput-over-time trace a recovery
	// check needs to see a crash dip and re-convergence.
	Buckets int
	// ShedID, when set, classifies a payload as an explicit server
	// rejection and extracts its request id (wired to driver.ShedID).
	// Shed flows are terminal — retrying work the server just refused
	// would amplify the overload the shed exists to relieve.
	ShedID func(p []byte) (uint64, bool)

	// Tracer, when set, records a span timeline for every flow: the client
	// marks sends, backoffs and terminal outcomes here, and registers each
	// attempt's wire id so the instrumented transport layers (NIC observer,
	// server dispatch) can attribute their marks to the owning flow.
	Tracer *trace.Tracer

	// ClientID distinguishes concurrent load generators sharing one engine
	// (a cluster run). Client c's wire ids live in [c<<48, (c+1)<<48), so
	// replies and trace attributions can never collide across clients, and
	// the retry-jitter PRNG is forked per client so adding a node to a
	// topology never perturbs another client's random sequence. Zero — a
	// solo run — preserves the historical id and jitter streams bit for bit.
	ClientID uint64
}

// Result summarises one run. With the retry policy enabled the accounting
// for measured requests is exact: Sent == Completed + Shed + TimedOut +
// Unresolved, so overload runs terminate with every request explicitly
// disposed. (Without it, completions are only counted inside the
// measurement window, the historical throughput-curve semantics.)
type Result struct {
	OfferedRps float64
	// SentRps is the realized offered load: requests actually issued in
	// the measurement window per second (Poisson noise makes it differ
	// from OfferedRps on short windows).
	SentRps      float64
	AchievedRps  float64
	AchievedGbps float64 // response payload bits per second in the window
	Latency      *Histogram
	Sent         uint64 // requests issued in the measurement window
	Completed    uint64
	BadResponses uint64

	// Shed counts measured requests ended by an explicit server
	// rejection; TimedOut counts measured requests that exhausted their
	// deadline and retry budget.
	Shed     uint64
	TimedOut uint64
	// Retries counts re-send attempts across all flows (warmup included).
	Retries uint64
	// LateResponses counts responses (including duplicate and shed
	// replies) that arrived for a flow already completed or abandoned.
	LateResponses uint64
	// Unresolved counts measured requests still in flight when the run's
	// drain window closed — always zero when the retry policy is enabled.
	Unresolved uint64

	// Hedge accounting (warmup included, like Retries). Hedges counts
	// second attempts launched; HedgeWins counts flows whose hedge (not
	// primary) answered first; HedgeWasted counts replies that arrived for
	// the losing side of a decided race. Every hedged flow still disposes
	// exactly once, so Sent == Completed + Shed + TimedOut + Unresolved
	// holds unchanged.
	Hedges      uint64
	HedgeWins   uint64
	HedgeWasted uint64

	// BucketCompleted, when Config.Buckets > 0, counts completions per
	// equal slice of the measurement window (completions landing in the
	// drain window are not bucketed).
	BucketCompleted []uint64
}

// P99 returns the 99th-percentile latency, or 0 when no requests
// completed — the explicit zero-goodput point of a fully overloaded run,
// rather than a division by zero.
func (r Result) P99() sim.Time {
	if r.Latency == nil || r.Latency.Count() == 0 {
		return 0
	}
	return r.Latency.Quantile(0.99)
}

// P50 returns the median latency, with the same zero-when-empty
// convention as P99.
func (r Result) P50() sim.Time {
	if r.Latency == nil || r.Latency.Count() == 0 {
		return 0
	}
	return r.Latency.Quantile(0.50)
}

// flow tracks one in-progress (possibly multi-step) request.
type flow struct {
	req      workloads.Request
	step     int
	start    sim.Time
	measured bool
	// attempts is the number of retries consumed (per flow, not per step).
	attempts int
	// route is the failover route index of the current primary. It tracks
	// attempts except that an expired hedged pair advances it by two: the
	// hedge consumed the next replica slot, so the retry must not re-route
	// to the replica the hedge already tried.
	route int
	// timer is the pending deadline for the current attempt.
	timer sim.Timer
	// hedgeTimer is the pending hedge launch for the current attempt.
	hedgeTimer sim.Timer
	// primaryID/hedgeID are the wire ids of the current attempt's two
	// racers; hedged marks that the hedge was actually launched.
	primaryID uint64
	hedgeID   uint64
	hedged    bool
	// tr is the flow's trace record (nil when tracing is off).
	tr *trace.Flow
}

// Runner is one in-flight load generation run. Start schedules all of a
// run's activity on the engine and returns immediately; the caller drives
// the engine (to at least Horizon()) and then calls Finish. This split lets
// a cluster testbed start M clients on one shared engine, run the engine
// once, and collect every client's result — Run composes the two for the
// historical single-client call shape.
type Runner struct {
	cfg       Config
	res       Result
	flows     map[uint64]*flow
	respBytes uint64
	horizon   sim.Time
	// flowPool recycles flow structs whose request reached a terminal
	// outcome (completed, shed, or timed out with no retries left). Every
	// terminal path cancels the flow's timers and unregisters its wire ids
	// first, so a parked flow has no live references.
	flowPool []*flow
}

func (ru *Runner) getFlow() *flow {
	if k := len(ru.flowPool); k > 0 {
		f := ru.flowPool[k-1]
		ru.flowPool = ru.flowPool[:k-1]
		return f
	}
	return &flow{}
}

func (ru *Runner) putFlow(f *flow) {
	*f = flow{}
	ru.flowPool = append(ru.flowPool, f)
}

// Run executes one open-loop run and returns the measured result.
func Run(cfg Config) Result {
	ru := Start(cfg)
	cfg.runner().RunUntil(ru.Horizon())
	return ru.Finish()
}

// runner returns what drives the engine loop: Exec when set, else Eng.
func (cfg Config) runner() sim.Runner {
	if cfg.Exec != nil {
		return cfg.Exec
	}
	return cfg.Eng
}

// Start schedules one open-loop run on cfg.Eng and returns its Runner.
func Start(cfg Config) *Runner {
	eng := cfg.Eng
	r := rand.New(rand.NewPCG(cfg.Seed, 0x10AD))
	ru := &Runner{
		cfg:   cfg,
		res:   Result{OfferedRps: cfg.RatePerS, Latency: NewHistogram()},
		flows: map[uint64]*flow{},
	}
	if cfg.Buckets > 0 {
		ru.res.BucketCompleted = make([]uint64, cfg.Buckets)
	}
	res := &ru.res

	interarrival := func() sim.Time {
		// Exponential interarrival for a Poisson process.
		u := r.Float64()
		if u <= 0 {
			u = 1e-12
		}
		return sim.FromSeconds(-math.Log(u) / cfg.RatePerS)
	}

	var (
		nextID     = cfg.ClientID << 48
		flows      = ru.flows
		expired    = map[uint64]bool{} // ids whose flow ended or was re-sent
		wasted     = map[uint64]bool{} // loser ids of decided hedge races
		measureEnd = cfg.Warmup + cfg.Measure
		// jitter is independent of the workload stream so enabling retries
		// does not perturb which requests are generated. Each cluster client
		// forks its own sub-stream off the shared label space; a solo run
		// (ClientID 0) keeps the historical root stream.
		jitter = sim.NewRand(cfg.Seed ^ 0xBACC0FF)
		// hedgeRng feeds only hedge-delay jitter, on its own sub-stream, so
		// enabling hedging never perturbs the retry-jitter sequence (and a
		// disabled hedge policy draws nothing at all).
		hedgeRng = sim.NewRand(cfg.Seed ^ 0x4ED9E)
	)
	if cfg.ClientID != 0 {
		jitter = jitter.Fork(cfg.ClientID)
		hedgeRng = hedgeRng.Fork(cfg.ClientID)
	}

	// announce tells an attempt-routing client which attempt index the next
	// BuildStep belongs to. Nil for plain clients — no behavior change.
	router, _ := cfg.Client.(AttemptRouter)
	announce := func(attempt int) {
		if router != nil {
			router.RouteAttempt(attempt)
		}
	}

	var sendStep func(f *flow)

	// launchHedge fires the second racer of f's current attempt, routed as
	// route index route+1 so failover routing picks a different replica
	// than the primary.
	launchHedge := func(f *flow) {
		hid := nextID
		nextID++
		flows[hid] = f
		f.hedgeID = hid
		f.hedged = true
		res.Hedges++
		cfg.Tracer.Attempt(f.tr, hid, eng.Now())
		announce(f.route + 1)
		payload := cfg.Client.BuildStep(hid, f.req, f.step)
		cfg.EP.SendContiguous(payload, mem.UnpinnedSimAddr(payload))
	}

	sendStep = func(f *flow) {
		id := nextID
		nextID++
		flows[id] = f
		f.primaryID = id
		f.hedged = false
		// Register the attempt before posting: the NIC observer's marks for
		// this frame resolve through the wire id registered here.
		cfg.Tracer.Attempt(f.tr, id, eng.Now())
		announce(f.route)
		payload := cfg.Client.BuildStep(id, f.req, f.step)
		cfg.EP.SendContiguous(payload, mem.UnpinnedSimAddr(payload))
		if cfg.Hedge.enabled() {
			delay := cfg.Hedge.Delay + hedgeRng.Duration(cfg.Hedge.Jitter)
			f.hedgeTimer = eng.After(delay, func() {
				if flows[id] != f {
					return // primary already resolved; no hedge needed
				}
				launchHedge(f)
			})
		}
		if cfg.Retry.enabled() {
			f.timer = eng.After(cfg.Retry.Deadline, func() {
				if flows[id] != f {
					return // resolved in the meantime
				}
				delete(flows, id)
				expired[id] = true
				// The hedge shares its primary's deadline: abandon the
				// launched copy (its reply counts Late) or disarm the
				// pending launch, so one timeout disposes the whole race.
				f.hedgeTimer.Cancel()
				if f.hedged {
					if flows[f.hedgeID] == f {
						delete(flows, f.hedgeID)
						expired[f.hedgeID] = true
						cfg.Tracer.AttemptEnd(f.hedgeID)
					}
					f.hedged = false
					f.route++ // the hedge consumed the next failover slot
				}
				willRetry := f.attempts < cfg.Retry.MaxRetries
				cfg.Tracer.Timeout(f.tr, id, eng.Now(), willRetry)
				if !willRetry {
					if f.measured {
						res.TimedOut++
					}
					cfg.Tracer.EndFlow(f.tr, eng.Now(), trace.OutcomeTimedOut)
					ru.putFlow(f)
					return
				}
				// Capped exponential backoff plus jitter of up to half the
				// backoff, so synchronized clients do not retry in phase.
				bo := cfg.Retry.backoffFor(f.attempts)
				f.attempts++
				f.route++
				res.Retries++
				delay := bo + jitter.Duration(bo/2)
				if delay <= 0 {
					delay = 1 // After(0) would re-enter sendStep inline
				}
				eng.After(delay, func() { sendStep(f) })
			})
		}
	}

	// resolve ends the current attempt's bookkeeping for a delivered id.
	// When the attempt was a two-racer hedge, the loser's wire id is
	// retired as wasted — its reply, if it ever arrives, is hedge waste,
	// never a second completion.
	resolve := func(id uint64, f *flow) {
		f.timer.Cancel()
		f.hedgeTimer.Cancel()
		delete(flows, id)
		expired[id] = true
		cfg.Tracer.AttemptEnd(id)
		if f.hedged {
			if id == f.hedgeID {
				res.HedgeWins++
			}
			loser := f.primaryID
			if id == f.primaryID {
				loser = f.hedgeID
			}
			if flows[loser] == f {
				delete(flows, loser)
				wasted[loser] = true
				cfg.Tracer.AttemptEnd(loser)
			}
			f.hedged = false
		}
	}

	cfg.EP.SetRecvHandler(func(p *mem.Buf) {
		defer p.DecRef()
		now := eng.Now()
		// Shed replies carry their own framing and never parse as a
		// serialized response, so classify them first.
		if cfg.ShedID != nil {
			if id, ok := cfg.ShedID(p.Bytes()); ok {
				f, ok := flows[id]
				if !ok {
					switch {
					case wasted[id]:
						res.HedgeWasted++
					case expired[id]:
						res.LateResponses++
					default:
						res.BadResponses++
					}
					return
				}
				resolve(id, f)
				if f.measured {
					res.Shed++
				}
				cfg.Tracer.EndFlow(f.tr, now, trace.OutcomeShed)
				ru.putFlow(f)
				return
			}
		}
		id, err := cfg.Client.ResponseID(p.Bytes())
		if err != nil {
			res.BadResponses++
			return
		}
		f, ok := flows[id]
		if !ok {
			switch {
			case wasted[id]:
				// The losing side of a decided hedge race answered: the
				// redundancy cost of hedging, counted, never a second
				// completion.
				res.HedgeWasted++
			case expired[id]:
				// A response for an attempt we already resolved or retried:
				// expected under timeouts (the original and the retry can
				// both be answered), not a protocol error.
				res.LateResponses++
			default:
				res.BadResponses++
			}
			return
		}
		resolve(id, f)
		f.step++
		if f.step < cfg.Client.Steps(f.req) {
			sendStep(f)
			if f.measured {
				ru.respBytes += uint64(p.Len())
			}
			return
		}
		if f.measured && (now <= measureEnd || cfg.Retry.enabled()) {
			// With the retry policy on, completions landing in the drain
			// window still count, keeping the disposal accounting exact
			// (sent == completed + shed + timed-out). Without it, the
			// historical window-only semantics are preserved.
			res.Completed++
			ru.respBytes += uint64(p.Len())
			res.Latency.Record(now - f.start)
			if len(res.BucketCompleted) > 0 && now < measureEnd {
				i := int(int64(now-cfg.Warmup) * int64(len(res.BucketCompleted)) / int64(cfg.Measure))
				if i < 0 {
					i = 0
				}
				if i >= len(res.BucketCompleted) {
					i = len(res.BucketCompleted) - 1
				}
				res.BucketCompleted[i]++
			}
		}
		cfg.Tracer.EndFlow(f.tr, now, trace.OutcomeCompleted)
		ru.putFlow(f)
	})

	var arrive func()
	arrive = func() {
		now := eng.Now()
		if now >= measureEnd {
			return
		}
		req := cfg.Gen.Next(r)
		f := ru.getFlow()
		f.req, f.start, f.measured = req, now, now >= cfg.Warmup
		if f.measured {
			res.Sent++
		}
		f.tr = cfg.Tracer.BeginFlow(now, f.measured)
		sendStep(f)
		eng.After(interarrival(), arrive)
	}
	eng.After(interarrival(), arrive)

	// The run is complete at the end of the measurement window plus a drain
	// period so in-flight responses are counted. With retries enabled the
	// drain must cover the worst-case ladder of a request issued at the
	// window's edge: every attempt's deadline plus every capped backoff
	// (jitter adds at most half a backoff each).
	drain := 2 * sim.Millisecond
	if cfg.Retry.enabled() {
		worst := cfg.Retry.Deadline
		for k := 0; k < cfg.Retry.MaxRetries; k++ {
			bo := cfg.Retry.backoffFor(k)
			worst += bo + bo/2 + cfg.Retry.Deadline
		}
		drain += worst
	}
	ru.horizon = measureEnd + drain
	return ru
}

// Horizon returns the virtual time the engine must reach before Finish:
// the measurement window plus the run's drain period.
func (ru *Runner) Horizon() sim.Time { return ru.horizon }

// Finish sweeps abandoned flows and computes the run's rates. Call it once,
// after the engine has run to at least Horizon().
func (ru *Runner) Finish() Result {
	cfg, res := ru.cfg, &ru.res

	// Whatever is still pending went neither way; with timeouts enabled
	// the drain window above guarantees this is empty. Iterate in sorted id
	// order so the tracer's abandonment records — and therefore a trace
	// export — stay deterministic.
	ids := make([]uint64, 0, len(ru.flows))
	for id := range ru.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := ru.flows[id]
		if f.measured {
			res.Unresolved++
		}
		cfg.Tracer.EndFlow(f.tr, cfg.Eng.Now(), trace.OutcomeAbandoned)
	}

	res.SentRps = float64(res.Sent) / cfg.Measure.Seconds()
	res.AchievedRps = float64(res.Completed) / cfg.Measure.Seconds()
	res.AchievedGbps = float64(ru.respBytes) * 8 / cfg.Measure.Seconds() / 1e9
	return ru.res
}

// RunMany executes several runs concurrently on one shared engine: every
// config is started, the engine is driven once to the latest horizon, and
// each run is finished. All configs must share the same Eng; give each a
// distinct ClientID so wire-id spaces and retry-jitter streams stay
// disjoint across the clients.
func RunMany(cfgs []Config) []Result {
	if len(cfgs) == 0 {
		return nil
	}
	runners := make([]*Runner, len(cfgs))
	for i, cfg := range cfgs {
		runners[i] = Start(cfg)
	}
	var horizon sim.Time
	for _, ru := range runners {
		if ru.Horizon() > horizon {
			horizon = ru.Horizon()
		}
	}
	cfgs[0].runner().RunUntil(horizon)
	out := make([]Result, len(runners))
	for i, ru := range runners {
		out[i] = ru.Finish()
	}
	return out
}

// Sweep runs the given run function across offered loads and returns every
// point plus the highest achieved load among points where achieved ≥ 95% of
// offered (the paper's reporting rule).
func Sweep(rates []float64, run func(rate float64) Result) (points []Result, best Result) {
	return SweepN(rates, 1, run)
}

// SweepN is Sweep with the ladder points measured concurrently on up to
// workers goroutines. Each call to run must be independent (every
// experiment runner builds a fresh engine and testbed per point, so they
// are); points come back in ladder order and the best-point selection runs
// over that ordered slice, so the result is identical at any width.
func SweepN(rates []float64, workers int, run func(rate float64) Result) (points []Result, best Result) {
	points = make([]Result, len(rates))
	if workers > len(rates) {
		workers = len(rates)
	}
	if workers <= 1 {
		for i, rate := range rates {
			points[i] = run(rate)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for k := 0; k < workers; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(rates) {
						return
					}
					points[i] = run(rates[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, res := range points {
		if res.AchievedRps >= 0.95*res.OfferedRps && res.AchievedRps > best.AchievedRps {
			best = res
		}
	}
	// If nothing met the 95% rule (all overloaded), report the highest
	// achieved load like the paper's "highest achieved throughput across
	// all offered loads".
	if best.AchievedRps == 0 {
		for _, p := range points {
			if p.AchievedRps > best.AchievedRps {
				best = p
			}
		}
	}
	return points, best
}

// GeometricRates builds a rate ladder from lo to hi with the given number
// of steps (inclusive), spaced geometrically.
func GeometricRates(lo, hi float64, steps int) []float64 {
	if steps < 2 {
		return []float64{hi}
	}
	rates := make([]float64, steps)
	ratio := math.Pow(hi/lo, 1/float64(steps-1))
	v := lo
	for i := range rates {
		rates[i] = v
		v *= ratio
	}
	return rates
}
