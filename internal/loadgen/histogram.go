// Package loadgen implements the measurement methodology of §6.1: an
// open-loop Poisson load generator over the simulated network, latency
// histograms with microsecond buckets, and offered-load sweeps that report
// throughput-vs-p99 curves and the highest achieved load (points where
// achieved load is within 95% of offered load).
package loadgen

import (
	"fmt"

	"cornflakes/internal/sim"
)

// Histogram records latencies in 250 ns buckets up to 16 ms, with an
// overflow bucket, mirroring the paper's histogram-based measurement (at
// finer grain, since some compared stacks differ by under a microsecond).
type Histogram struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      sim.Time
	max      sim.Time
}

const (
	histBuckets    = 65536 // 16.384 ms at 250 ns per bucket
	histBucketSize = 250 * sim.Nanosecond
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, histBuckets)}
}

// Record adds one latency sample.
func (h *Histogram) Record(d sim.Time) {
	if d < 0 {
		d = 0
	}
	i := int(d / histBucketSize)
	if i >= len(h.buckets) {
		h.overflow++
	} else {
		h.buckets[i]++
	}
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average latency.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Quantile returns the p-quantile (0 < p <= 1) at bucket resolution;
// samples in the overflow bucket report as the observed maximum.
func (h *Histogram) Quantile(p float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		p = 1e-9
	}
	if p > 1 {
		p = 1
	}
	target := uint64(p * float64(h.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			// Interpolate within the bucket instead of reporting its upper
			// edge: with r of the bucket's c samples at or below the target
			// rank, the quantile sits r/c of the way through the bucket.
			// Reporting the edge biased every quantile upward by up to one
			// bucket width — visible as inflated P50 at this 250 ns grain.
			r := target - (cum - c)
			q := sim.Time(i)*histBucketSize + sim.Time(uint64(histBucketSize)*r/c)
			// Clamp to the observed maximum: a single 100 ns sample must
			// report p50 = 100 ns, not the 250 ns bucket edge — a quantile
			// may never exceed Max().
			if q > h.max {
				q = h.max
			}
			return q
		}
	}
	// All remaining mass is in the overflow bucket; the observed maximum is
	// the tightest statement the histogram can make.
	return h.max
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v max=%v", h.count, h.Quantile(0.50), h.Quantile(0.99), h.max)
}
