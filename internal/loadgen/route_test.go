package loadgen

import (
	"fmt"
	"testing"
)

func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 20000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		s := r.Shard([]byte(fmt.Sprintf("user%026d", i)))
		if s < 0 || s >= shards {
			t.Fatalf("shard %d out of range", s)
		}
		counts[s]++
	}
	want := keys / shards
	for s, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("shard %d owns %d keys, want ≈%d", s, c, want)
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(8, 32), NewRing(8, 32)
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("ring not deterministic for %q", k)
		}
	}
}

func TestRingReplicas(t *testing.T) {
	r := NewRing(5, 16)
	var scratch []int
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("rep-key-%d", i))
		scratch = r.Replicas(scratch[:0], k, 3)
		if len(scratch) != 3 {
			t.Fatalf("replicas = %v, want 3 shards", scratch)
		}
		if scratch[0] != r.Shard(k) {
			t.Fatalf("first replica %d is not the owner %d", scratch[0], r.Shard(k))
		}
		seen := map[int]bool{}
		for _, s := range scratch {
			if seen[s] {
				t.Fatalf("duplicate shard in replicas %v", scratch)
			}
			seen[s] = true
		}
	}
	// R clamps to the shard count, and R<1 means primary only.
	if got := r.Replicas(nil, []byte("x"), 99); len(got) != 5 {
		t.Errorf("R=99 gave %d replicas, want 5", len(got))
	}
	if got := r.Replicas(nil, []byte("x"), 0); len(got) != 1 {
		t.Errorf("R=0 gave %d replicas, want 1", len(got))
	}
}

// Consistent hashing's defining property: growing the ring moves only a
// small fraction of keys (≈1/(n+1)), unlike mod-n hashing which moves
// nearly all of them.
func TestRingGrowthMovesFewKeys(t *testing.T) {
	const keys = 10000
	r4, r5 := NewRing(4, 64), NewRing(5, 64)
	moved := 0
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("grow-key-%d", i))
		if r4.Shard(k) != r5.Shard(k) {
			moved++
		}
	}
	if frac := float64(moved) / keys; frac > 0.35 {
		t.Errorf("growing 4→5 shards moved %v of keys, want ≈0.20", frac)
	}
}

func TestRingInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0, 1) accepted")
		}
	}()
	NewRing(0, 1)
}
