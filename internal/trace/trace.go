// Package trace records per-request span timelines on the virtual clock.
//
// The Cornflakes argument is made with cycle breakdowns (§2, Fig 9–11):
// knowing where each microsecond goes is the product. The run-aggregated
// costmodel.Receipt can say how the average request spent its cycles, but a
// p99 outlier is unexplainable from aggregates — was it queueing,
// retransmission, copy fallback, or a shed-and-retry ladder? In a simulator
// every event already happens at an exact virtual instant, so exact
// per-request timelines are nearly free; this package collects them.
//
// The model is a mark chain: instrumented layers append (timestamp, label)
// marks to a flow as the request passes through them, where each label names
// the phase that *begins* at that instant. At EndFlow the marks are sorted
// and tiled into spans — consecutive marks bound each span — so a flow's
// span timeline is gapless by construction and sums exactly to its
// end-to-end latency. CPU work is attached separately: the server's
// per-request costmodel.Receipt becomes a sequence of per-category service
// spans laid out from the dispatch instant, a parallel track that explains
// what the core did while the wire-level timeline shows where the request
// waited.
//
// Sampling keeps a run's memory bounded without losing the tail: every Nth
// measured request is retained, and a min-heap keeps the K slowest measured
// requests regardless of sampling — tail outliers are always captured.
// Receipts are aggregated across *all* observed requests (retained or not),
// so the tracer's aggregate reproduces the run-level Fig 11 breakdown
// exactly.
package trace

import (
	"container/heap"
	"fmt"
	"sort"

	"cornflakes/internal/costmodel"
	"cornflakes/internal/sim"
)

// Phase labels used by the instrumented layers. Each label names the phase
// beginning at its mark's instant.
const (
	// PhaseSend begins when the client posts the request to its stack; it
	// covers client-side TX descriptor and DMA time.
	PhaseSend = "client.send"
	// PhaseReqWire begins at request DMA completion; it covers wire
	// serialization of the request frame.
	PhaseReqWire = "net.req.wire"
	// PhaseReqProp begins when the request frame has left the wire; it
	// covers propagation (wire + switch) to the server.
	PhaseReqProp = "net.req.prop"
	// PhaseQueue begins at server frame delivery; it covers the core queue
	// wait until dispatch.
	PhaseQueue = "srv.queue"
	// PhaseHandle begins at core dispatch. The simulated server posts its
	// reply at the dispatch instant (service time manifests as queueing for
	// later requests), so this phase covers the response's DMA gather.
	PhaseHandle = "srv.handle"
	// PhaseShed begins when admission control rejects the request at
	// delivery time; it covers the prebuilt shed reply's DMA gather.
	PhaseShed = "srv.shed"
	// PhaseRspWire begins at response DMA completion; wire serialization.
	PhaseRspWire = "net.rsp.wire"
	// PhaseRspProp begins when the response frame has left the wire;
	// propagation back to the client, ending at flow completion.
	PhaseRspProp = "net.rsp.prop"
	// PhaseBackoff begins when an attempt's deadline expires with retries
	// remaining; it covers the backoff until the next attempt's PhaseSend.
	PhaseBackoff = "client.backoff"
)

// Outcome classifies how a flow ended, mirroring the loadgen's exact
// disposal accounting.
type Outcome int

const (
	OutcomeCompleted Outcome = iota
	OutcomeShed
	OutcomeTimedOut
	OutcomeAbandoned
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeShed:
		return "shed"
	case OutcomeTimedOut:
		return "timed-out"
	default:
		return "abandoned"
	}
}

// Mark is one timestamped phase boundary.
type Mark struct {
	At    sim.Time
	Label string
}

// Span is one tiled phase interval.
type Span struct {
	Label      string
	Start, End sim.Time
}

// Dur returns the span length.
func (s Span) Dur() sim.Time { return s.End - s.Start }

// ServiceSpan is one category's share of a request's metered CPU work, laid
// out sequentially from the dispatch instant. These live on a separate
// track from the wire-level spans: the simulated server posts its reply at
// dispatch, so CPU time is not on the request's own critical path.
type ServiceSpan struct {
	Cat        costmodel.Category
	Start, End sim.Time
	Cycles     float64
}

// Flow is one traced request (one loadgen flow, possibly spanning several
// attempts and steps).
type Flow struct {
	// Seq is the tracer-assigned flow number, in BeginFlow order.
	Seq uint64
	// Start and End bound the flow on the virtual clock.
	Start, End sim.Time
	Measured   bool
	Outcome    Outcome
	// Attempts counts sends, including retransmissions of the flow.
	Attempts int
	// Notes are free-form annotations (retransmits, fallbacks, drops).
	Notes []string
	// Service holds the per-category CPU spans from the server's receipt.
	Service []ServiceSpan
	// Receipt sums the server receipts attributed to this flow.
	Receipt costmodel.Receipt

	marks   []Mark
	wireIDs []uint64 // attempt ids registered for this flow, for cleanup
	ended   bool
}

// Dur returns the flow's end-to-end latency (0 until EndFlow).
func (f *Flow) Dur() sim.Time {
	if !f.ended {
		return 0
	}
	return f.End - f.Start
}

// Spans tiles the flow's marks into a gapless timeline covering exactly
// [Start, End]. Only meaningful after EndFlow.
func (f *Flow) Spans() []Span {
	if len(f.marks) == 0 {
		return []Span{{Label: "untraced", Start: f.Start, End: f.End}}
	}
	spans := make([]Span, 0, len(f.marks)+1)
	if f.marks[0].At > f.Start {
		spans = append(spans, Span{Label: "pre", Start: f.Start, End: f.marks[0].At})
	}
	for i, mk := range f.marks {
		end := f.End
		if i+1 < len(f.marks) {
			end = f.marks[i+1].At
		}
		spans = append(spans, Span{Label: mk.Label, Start: mk.At, End: end})
	}
	return spans
}

// Config parameterises a Tracer.
type Config struct {
	// SampleEvery retains every Nth measured flow (1 retains all; 0 is
	// treated as 1).
	SampleEvery int
	// SlowestK always retains the K slowest measured flows, regardless of
	// sampling — the tail outliers a breakdown exists to explain.
	SlowestK int
	// CPU converts receipt cycles into virtual time for service spans.
	CPU costmodel.CPU
}

// attemptRef maps a wire id to its flow while the attempt is live. A dead
// attempt (resolved, retried, or timed out) stays mapped but inert, so a
// late or duplicate response cannot append marks after the fact.
type attemptRef struct {
	f    *Flow
	live bool
}

// Tracer collects flows. All methods are nil-receiver-safe so call sites in
// hot paths can stay unconditional.
type Tracer struct {
	cfg      Config
	seq      uint64
	measured uint64 // measured flows begun, for the sampling counter
	attempts map[uint64]*attemptRef

	sampled []*Flow
	slow    slowHeap

	agg      costmodel.Receipt
	aggCount uint64

	// DroppedMarks counts marks addressed to unknown or dead attempts —
	// late replies, duplicates, and frames observed after their flow ended.
	DroppedMarks uint64
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	return &Tracer{cfg: cfg, attempts: map[uint64]*attemptRef{}}
}

// BeginFlow starts tracing one request flow.
func (t *Tracer) BeginFlow(now sim.Time, measured bool) *Flow {
	if t == nil {
		return nil
	}
	f := &Flow{Seq: t.seq, Start: now, Measured: measured}
	t.seq++
	return f
}

// Attempt registers one send attempt of f under the given wire id and marks
// the attempt's PhaseSend. Wire ids are the loadgen's request ids — unique
// within a run, so no two live attempts share one.
func (t *Tracer) Attempt(f *Flow, wireID uint64, now sim.Time) {
	if t == nil || f == nil || f.ended {
		return
	}
	f.Attempts++
	f.wireIDs = append(f.wireIDs, wireID)
	t.attempts[wireID] = &attemptRef{f: f, live: true}
	f.marks = append(f.marks, Mark{At: now, Label: PhaseSend})
}

// Mark appends a phase boundary to the flow owning the live attempt with
// the given wire id. Marks for unknown or dead attempts are counted and
// dropped: a late reply must not extend a timeline that already ended.
func (t *Tracer) Mark(wireID uint64, at sim.Time, label string) {
	if t == nil {
		return
	}
	ref, ok := t.attempts[wireID]
	if !ok || !ref.live || ref.f.ended {
		t.DroppedMarks++
		return
	}
	ref.f.marks = append(ref.f.marks, Mark{At: at, Label: label})
}

// Note attaches a free-form annotation via a wire id; dead attempts still
// accept notes (a retransmitted frame's fate is worth recording) as long as
// the flow has not ended.
func (t *Tracer) Note(wireID uint64, text string) {
	if t == nil {
		return
	}
	ref, ok := t.attempts[wireID]
	if !ok || ref.f.ended {
		return
	}
	ref.f.Notes = append(ref.f.Notes, text)
}

// NoteFlow attaches an annotation directly to a flow.
func (t *Tracer) NoteFlow(f *Flow, text string) {
	if t == nil || f == nil || f.ended {
		return
	}
	f.Notes = append(f.Notes, text)
}

// AttemptEnd retires a wire id once its response has been consumed: later
// marks for it (duplicates, shed replies racing a real reply) are dropped.
func (t *Tracer) AttemptEnd(wireID uint64) {
	if t == nil {
		return
	}
	if ref, ok := t.attempts[wireID]; ok {
		ref.live = false
	}
}

// Timeout retires a wire id at deadline expiry and, when the flow will
// retry, marks the backoff phase beginning now.
func (t *Tracer) Timeout(f *Flow, wireID uint64, now sim.Time, willRetry bool) {
	if t == nil {
		return
	}
	if ref, ok := t.attempts[wireID]; ok {
		ref.live = false
	}
	if f == nil || f.ended {
		return
	}
	if willRetry {
		f.marks = append(f.marks, Mark{At: now, Label: PhaseBackoff})
	}
}

// ServiceReceipt attributes one server receipt to the flow owning the live
// attempt with the given wire id, laying the per-category cycles out as
// service spans from the dispatch instant. The receipt always feeds the
// run-level aggregate, found flow or not.
func (t *Tracer) ServiceReceipt(wireID uint64, dispatchAt sim.Time, rec costmodel.Receipt) {
	if t == nil {
		return
	}
	t.agg.Add(rec)
	t.aggCount++
	ref, ok := t.attempts[wireID]
	if !ok || !ref.live || ref.f.ended {
		return
	}
	f := ref.f
	f.Receipt.Add(rec)
	at := dispatchAt
	for cat := costmodel.Category(0); cat < costmodel.NumCategories; cat++ {
		cy := rec.Cycles[cat]
		if cy == 0 {
			continue
		}
		d := t.cfg.CPU.Cycles(cy)
		f.Service = append(f.Service, ServiceSpan{Cat: cat, Start: at, End: at + d, Cycles: cy})
		at += d
	}
}

// AggregateOnly feeds a receipt into the run-level aggregate without
// attributing it to any flow (unparseable requests, work between requests).
func (t *Tracer) AggregateOnly(rec costmodel.Receipt) {
	if t == nil {
		return
	}
	t.agg.Add(rec)
	t.aggCount++
}

// Aggregate returns the summed receipts across every observed request and
// how many receipts contributed. Because every receipt is fed exactly once,
// this equals the run-level breakdown a KVServer.OnReceipt accumulator sees.
func (t *Tracer) Aggregate() (costmodel.Receipt, uint64) {
	if t == nil {
		return costmodel.Receipt{}, 0
	}
	return t.agg, t.aggCount
}

// EndFlow finishes a flow: marks are finalized (sorted, clipped to the
// flow's bounds), retention is decided, and the flow's wire ids are
// released. Calling it twice is a no-op.
func (t *Tracer) EndFlow(f *Flow, now sim.Time, outcome Outcome) {
	if t == nil || f == nil || f.ended {
		return
	}
	f.End = now
	f.Outcome = outcome
	f.ended = true
	// A NIC observer records marks for instants it already knows the frame
	// will reach (TxDone, DeliverAt); if the flow ended first — a timeout
	// racing an in-flight response — those marks lie beyond End and would
	// break the tiling invariant. Clip them.
	kept := f.marks[:0]
	for _, mk := range f.marks {
		if mk.At <= f.End {
			kept = append(kept, mk)
		}
	}
	f.marks = kept
	sort.SliceStable(f.marks, func(i, j int) bool { return f.marks[i].At < f.marks[j].At })

	for _, id := range f.wireIDs {
		delete(t.attempts, id)
	}
	f.wireIDs = nil

	if !f.Measured {
		return
	}
	t.measured++
	if (t.measured-1)%uint64(t.cfg.SampleEvery) == 0 {
		t.sampled = append(t.sampled, f)
	}
	if t.cfg.SlowestK > 0 {
		if t.slow.Len() < t.cfg.SlowestK {
			heap.Push(&t.slow, f)
		} else if slowLess(t.slow[0], f) {
			t.slow[0] = f
			heap.Fix(&t.slow, 0)
		}
	}
}

// Retained returns the flows kept by sampling plus the slowest-K set,
// deduplicated and sorted by Seq.
func (t *Tracer) Retained() []*Flow {
	if t == nil {
		return nil
	}
	seen := map[uint64]bool{}
	out := make([]*Flow, 0, len(t.sampled)+t.slow.Len())
	for _, f := range t.sampled {
		if !seen[f.Seq] {
			seen[f.Seq] = true
			out = append(out, f)
		}
	}
	for _, f := range t.slow {
		if !seen[f.Seq] {
			seen[f.Seq] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Slowest returns the retained slowest-K flows, slowest first.
func (t *Tracer) Slowest() []*Flow {
	if t == nil {
		return nil
	}
	out := append([]*Flow(nil), t.slow...)
	sort.Slice(out, func(i, j int) bool { return slowLess(out[j], out[i]) })
	return out
}

// Summary formats a one-line description of a flow.
func Summary(f *Flow) string {
	return fmt.Sprintf("req %d: %s in %v over %d attempt(s)", f.Seq, f.Outcome, f.Dur(), f.Attempts)
}

// slowLess orders flows by duration, ties broken by Seq (higher Seq first,
// so the heap deterministically keeps the earliest flows among equals).
func slowLess(a, b *Flow) bool {
	if a.Dur() != b.Dur() {
		return a.Dur() < b.Dur()
	}
	return a.Seq > b.Seq
}

// slowHeap is a min-heap of flows by duration: the root is the fastest of
// the kept slow set, the first to be evicted.
type slowHeap []*Flow

func (h slowHeap) Len() int            { return len(h) }
func (h slowHeap) Less(i, j int) bool  { return slowLess(h[i], h[j]) }
func (h slowHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slowHeap) Push(x interface{}) { *h = append(*h, x.(*Flow)) }
func (h *slowHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
