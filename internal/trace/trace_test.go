package trace

import (
	"bytes"
	"testing"

	"cornflakes/internal/costmodel"
	"cornflakes/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

// A flow's span timeline must tile [Start, End] gaplessly: each span begins
// where the previous ended, and the durations sum to the flow's latency
// exactly (not just within tolerance — the virtual clock is exact).
func TestSpansGaplessAndExact(t *testing.T) {
	tr := New(Config{SampleEvery: 1, SlowestK: 0, CPU: costmodel.DefaultCPU()})
	f := tr.BeginFlow(us(10), true)
	tr.Attempt(f, 7, us(10))
	tr.Mark(7, us(12), PhaseReqWire)
	tr.Mark(7, us(13), PhaseReqProp)
	tr.Mark(7, us(15), PhaseQueue)
	tr.Mark(7, us(20), PhaseHandle)
	tr.Mark(7, us(22), PhaseRspWire)
	tr.Mark(7, us(23), PhaseRspProp)
	tr.AttemptEnd(7)
	tr.EndFlow(f, us(25), OutcomeCompleted)

	spans := f.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	if spans[0].Start != f.Start {
		t.Errorf("first span starts at %v, want flow start %v", spans[0].Start, f.Start)
	}
	if spans[len(spans)-1].End != f.End {
		t.Errorf("last span ends at %v, want flow end %v", spans[len(spans)-1].End, f.End)
	}
	var sum sim.Time
	for i, s := range spans {
		sum += s.Dur()
		if i > 0 && s.Start != spans[i-1].End {
			t.Errorf("gap: span %d starts at %v, previous ended at %v", i, s.Start, spans[i-1].End)
		}
	}
	if sum != f.Dur() {
		t.Errorf("span durations sum to %v, want exactly the flow latency %v", sum, f.Dur())
	}
}

// Marks addressed to a retired attempt (late reply, duplicate) must not
// land; marks recorded for instants past the flow's end (an in-flight
// response racing a timeout) are clipped at EndFlow.
func TestLateAndPostEndMarksDropped(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	f := tr.BeginFlow(us(0), true)
	tr.Attempt(f, 1, us(0))
	tr.Mark(1, us(2), PhaseReqWire)
	// The NIC observer knows delivery happens at us(30) — after the flow
	// will have timed out.
	tr.Mark(1, us(30), PhaseQueue)
	tr.Timeout(f, 1, us(10), false)
	tr.EndFlow(f, us(10), OutcomeTimedOut)

	for _, s := range f.Spans() {
		if s.End > f.End || s.Start < f.Start {
			t.Errorf("span %+v escapes [%v, %v]", s, f.Start, f.End)
		}
	}
	before := tr.DroppedMarks
	tr.Mark(1, us(11), PhaseRspProp) // late reply for the dead attempt
	if tr.DroppedMarks != before+1 {
		t.Errorf("late mark was not dropped (DroppedMarks %d → %d)", before, tr.DroppedMarks)
	}
}

// Sampling keeps every Nth measured flow; the slowest-K heap keeps tail
// outliers regardless of the sampling phase.
func TestSamplingRetainsSlowest(t *testing.T) {
	tr := New(Config{SampleEvery: 10, SlowestK: 3})
	var slowSeqs []uint64
	for i := 0; i < 100; i++ {
		f := tr.BeginFlow(us(int64(i)*100), true)
		tr.Attempt(f, uint64(i), us(int64(i)*100))
		// Flows 13, 57, 91 are the outliers; none is a multiple of 10.
		dur := int64(10)
		if i == 13 || i == 57 || i == 91 {
			dur = 500 + int64(i)
			slowSeqs = append(slowSeqs, f.Seq)
		}
		tr.EndFlow(f, us(int64(i)*100+dur), OutcomeCompleted)
	}
	retained := map[uint64]bool{}
	for _, f := range tr.Retained() {
		retained[f.Seq] = true
	}
	for _, seq := range slowSeqs {
		if !retained[seq] {
			t.Errorf("slow flow %d missing from the retained set at 1/10 sampling", seq)
		}
	}
	// Every 10th flow is retained by sampling: 0, 10, ..., 90.
	for i := uint64(0); i < 100; i += 10 {
		if !retained[i] {
			t.Errorf("sampled flow %d missing from the retained set", i)
		}
	}
	slow := tr.Slowest()
	if len(slow) != 3 {
		t.Fatalf("Slowest() returned %d flows, want 3", len(slow))
	}
	if slow[0].Seq != 91 || slow[1].Seq != 57 || slow[2].Seq != 13 {
		t.Errorf("Slowest() order = %d,%d,%d, want 91,57,13", slow[0].Seq, slow[1].Seq, slow[2].Seq)
	}
}

// Every receipt feeds the aggregate exactly once — attributed to a flow or
// not — so the tracer's aggregate matches an OnReceipt accumulator.
func TestAggregateCountsEveryReceipt(t *testing.T) {
	tr := New(Config{SampleEvery: 1000, CPU: costmodel.DefaultCPU()})
	var want costmodel.Receipt
	f := tr.BeginFlow(0, true)
	tr.Attempt(f, 1, 0)

	r1 := costmodel.Receipt{}
	r1.Cycles[costmodel.CatApp] = 100
	r1.Cycles[costmodel.CatTx] = 50
	tr.ServiceReceipt(1, us(5), r1)
	want.Add(r1)

	r2 := costmodel.Receipt{}
	r2.Cycles[costmodel.CatShed] = 30
	tr.AggregateOnly(r2)
	want.Add(r2)

	r3 := costmodel.Receipt{}
	r3.Cycles[costmodel.CatRx] = 9
	tr.ServiceReceipt(999, us(6), r3) // unknown wire id: aggregate only
	want.Add(r3)

	got, n := tr.Aggregate()
	if n != 3 {
		t.Errorf("aggregate count = %d, want 3", n)
	}
	if got != want {
		t.Errorf("aggregate = %+v, want %+v", got, want)
	}
	if f.Receipt != r1 {
		t.Errorf("flow receipt = %+v, want only the attributed %+v", f.Receipt, r1)
	}
	// Service spans tile sequentially from the dispatch instant.
	if len(f.Service) != 2 {
		t.Fatalf("service spans = %d, want 2", len(f.Service))
	}
	if f.Service[0].Start != us(5) || f.Service[1].Start != f.Service[0].End {
		t.Errorf("service spans not contiguous from dispatch: %+v", f.Service)
	}
}

// The registry's tick chain is bounded: an engine Run() that drains every
// event terminates, with samples only through the configured horizon.
func TestRegistryBoundedSampling(t *testing.T) {
	eng := sim.NewEngine()
	reg := NewRegistry()
	v := 0.0
	reg.Register("v", func() float64 { v++; return v })
	reg.SampleUntil(eng, us(10), us(100))
	eng.Run() // must terminate
	samples := reg.Samples()
	if len(samples) != 11 { // t = 0, 10, ..., 100
		t.Fatalf("got %d samples, want 11", len(samples))
	}
	if samples[0].At != 0 || samples[10].At != us(100) {
		t.Errorf("sample horizon [%v, %v], want [0, %v]", samples[0].At, samples[10].At, us(100))
	}
}

// Export is deterministic: identical tracer state renders identical bytes.
func TestExportDeterministic(t *testing.T) {
	build := func() ([]byte, []byte) {
		tr := New(Config{SampleEvery: 1, SlowestK: 2, CPU: costmodel.DefaultCPU()})
		reg := NewRegistry()
		x := 0.0
		reg.Register("g", func() float64 { x += 1.5; return x })
		reg.SampleNow(us(1))
		reg.SampleNow(us(2))
		for i := 0; i < 3; i++ {
			f := tr.BeginFlow(us(int64(i)), true)
			tr.Attempt(f, uint64(i), us(int64(i)))
			tr.Mark(uint64(i), us(int64(i))+us(1), PhaseQueue)
			rec := costmodel.Receipt{}
			rec.Cycles[costmodel.CatApp] = float64(10 * (i + 1))
			tr.ServiceReceipt(uint64(i), us(int64(i))+us(1), rec)
			tr.NoteFlow(f, "note")
			tr.EndFlow(f, us(int64(i))+us(3), OutcomeCompleted)
		}
		return Export(tr, reg), Export(tr, reg)
	}
	a1, a2 := build()
	b1, _ := build()
	if !bytes.Equal(a1, a2) {
		t.Error("two exports of the same tracer differ")
	}
	if !bytes.Equal(a1, b1) {
		t.Error("exports of identically-built tracers differ")
	}
	if len(a1) == 0 || a1[0] != '{' {
		t.Errorf("export does not look like a JSON object: %q", a1[:min(len(a1), 40)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
