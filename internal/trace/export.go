package trace

import (
	"bytes"
	"fmt"
	"strings"

	"cornflakes/internal/sim"
)

// Chrome trace-event export: the JSON object format consumed by
// chrome://tracing and https://ui.perfetto.dev. One process groups the
// request timelines (one thread per retained flow), a second groups the
// per-request server-CPU receipt spans, and a third carries the registry's
// gauge samples as counter tracks.
//
// The writer emits JSON by hand with integer-only arithmetic for
// timestamps (trace ts/dur are microseconds; sim.Time is picoseconds, so
// fractions are exact six-digit decimals). Nothing iterates a map, so the
// output is byte-stable for a deterministic run — stable enough to pin
// with a golden-file test.

const (
	pidRequests = 1
	pidService  = 2
	pidGauges   = 3
)

// usec formats a virtual-clock instant or duration as trace microseconds
// with exact picosecond precision, using only integer math.
func usec(t sim.Time) string {
	if t < 0 {
		t = 0
	}
	return fmt.Sprintf("%d.%06d", t/sim.Microsecond, t%sim.Microsecond)
}

// jsonEscape escapes a label for embedding in a JSON string literal.
func jsonEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

type eventWriter struct {
	buf   bytes.Buffer
	first bool
}

func (w *eventWriter) event(fields string) {
	if !w.first {
		w.buf.WriteString(",\n")
	}
	w.first = false
	w.buf.WriteString("{")
	w.buf.WriteString(fields)
	w.buf.WriteString("}")
}

func (w *eventWriter) meta(name, value string, pid, tid int) {
	w.event(fmt.Sprintf(`"name":"%s","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}`,
		name, pid, tid, jsonEscape(value)))
}

// Export renders the tracer's retained flows plus the registry's samples
// (reg may be nil) as a Chrome trace-event JSON document.
func Export(t *Tracer, reg *Registry) []byte {
	var flows []*Flow
	if t != nil {
		flows = t.Retained()
	}
	w := &eventWriter{first: true}
	w.meta("process_name", "requests", pidRequests, 0)
	w.meta("process_name", "server core (receipts)", pidService, 0)
	if reg != nil && len(reg.gauges) > 0 {
		w.meta("process_name", "gauges", pidGauges, 0)
	}

	for _, f := range flows {
		tid := int(f.Seq) + 1
		w.meta("thread_name",
			fmt.Sprintf("req %d %s %s (%d att)", f.Seq, f.Outcome, f.Dur(), f.Attempts),
			pidRequests, tid)
		for _, s := range f.Spans() {
			w.event(fmt.Sprintf(`"name":"%s","cat":"phase","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d`,
				jsonEscape(s.Label), usec(s.Start), usec(s.Dur()), pidRequests, tid))
		}
		for _, n := range f.Notes {
			// Notes have no duration; pin each at the flow start as an
			// instant event so annotations survive in the viewer.
			w.event(fmt.Sprintf(`"name":"%s","cat":"note","ph":"i","ts":%s,"pid":%d,"tid":%d,"s":"t"`,
				jsonEscape(n), usec(f.Start), pidRequests, tid))
		}
		if len(f.Service) > 0 {
			w.meta("thread_name", fmt.Sprintf("req %d cycles", f.Seq), pidService, tid)
			for _, s := range f.Service {
				w.event(fmt.Sprintf(`"name":"%s","cat":"receipt","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"cycles":%.1f}`,
					s.Cat, usec(s.Start), usec(s.End-s.Start), pidService, tid, s.Cycles))
			}
		}
	}

	if reg != nil {
		for gi, g := range reg.gauges {
			for _, s := range reg.samples {
				w.event(fmt.Sprintf(`"name":"%s","ph":"C","ts":%s,"pid":%d,"tid":0,"args":{"value":%s}`,
					jsonEscape(g.Name), usec(s.At), pidGauges, formatGauge(s.Values[gi])))
			}
		}
	}

	var out bytes.Buffer
	out.WriteString("{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[\n")
	out.Write(w.buf.Bytes())
	out.WriteString("\n]}\n")
	return out.Bytes()
}

// formatGauge renders a gauge value compactly and deterministically:
// integral values print without a fraction, others with fixed precision.
func formatGauge(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6f", v)
}
