package trace

import "cornflakes/internal/sim"

// Gauge is one named metric read on demand.
type Gauge struct {
	Name string
	Fn   func() float64
}

// Sample is one cadence tick: every gauge's value at one virtual instant,
// in registration order.
type Sample struct {
	At     sim.Time
	Values []float64
}

// Registry snapshots a fixed set of gauges at a fixed virtual-time cadence,
// giving a traced run its counter tracks (memory occupancy, shed counts,
// copy fallbacks, core utilization, drops) alongside the request timelines.
type Registry struct {
	gauges  []Gauge
	samples []Sample
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a gauge. Registration order is the export order, so callers
// register deterministically (no map iteration).
func (r *Registry) Register(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.gauges = append(r.gauges, Gauge{Name: name, Fn: fn})
}

// SampleNow takes one snapshot at the current virtual time.
func (r *Registry) SampleNow(now sim.Time) {
	if r == nil {
		return
	}
	s := Sample{At: now, Values: make([]float64, len(r.gauges))}
	for i, g := range r.gauges {
		s.Values[i] = g.Fn()
	}
	r.samples = append(r.samples, s)
}

// SampleUntil schedules snapshots every `every` from now through `until`
// inclusive. The tick chain is bounded — each tick schedules the next only
// while it is due at or before `until` — so an engine Run() that drains all
// events still terminates.
func (r *Registry) SampleUntil(eng *sim.Engine, every, until sim.Time) {
	if r == nil || every <= 0 {
		return
	}
	var tick func()
	tick = func() {
		now := eng.Now()
		r.SampleNow(now)
		if now+every <= until {
			eng.After(every, tick)
		}
	}
	eng.After(0, tick)
}

// Samples returns the collected snapshots in time order.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	return r.samples
}

// Gauges returns the registered gauges in registration order.
func (r *Registry) Gauges() []Gauge {
	if r == nil {
		return nil
	}
	return r.gauges
}
