package wire

import (
	"testing"
	"testing/quick"
)

func TestBitmapWords(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 32: 1, 33: 2, 64: 2, 65: 3}
	for n, want := range cases {
		if got := BitmapWords(n); got != want {
			t.Errorf("BitmapWords(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHeaderLen(t *testing.T) {
	// 3 fields, 2 present: 4 (word count) + 4 (1 word) + 2*8.
	if got := HeaderLen(3, 2); got != 24 {
		t.Errorf("HeaderLen(3,2) = %d, want 24", got)
	}
	if got := HeaderLen(40, 0); got != 4+8 {
		t.Errorf("HeaderLen(40,0) = %d, want 12", got)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	const nFields = 5
	obj := make([]byte, 256)
	w := NewWriter(obj, 0, nFields)
	w.SetPresent(0)
	w.SetPresent(2)
	w.SetPresent(4)
	w.PutInt(0, 0xDEADBEEFCAFE)
	w.PutPtr(2, 100, 50)
	w.PutPtr(4, 150, 7)

	r, err := Parse(obj, 0, nFields)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Present(0) || r.Present(1) || !r.Present(2) || r.Present(3) || !r.Present(4) {
		t.Error("presence bits wrong")
	}
	if r.NumPresent() != 3 {
		t.Errorf("NumPresent = %d, want 3", r.NumPresent())
	}
	if got := r.Int(0); got != 0xDEADBEEFCAFE {
		t.Errorf("Int(0) = %x", got)
	}
	if off, n := r.Ptr(2); off != 100 || n != 50 {
		t.Errorf("Ptr(2) = (%d, %d)", off, n)
	}
	if off, n := r.Ptr(4); off != 150 || n != 7 {
		t.Errorf("Ptr(4) = (%d, %d)", off, n)
	}
	if r.Len() != HeaderLen(nFields, 3) {
		t.Errorf("Len = %d, want %d", r.Len(), HeaderLen(nFields, 3))
	}
}

func TestEntryOffsetsAreRankBased(t *testing.T) {
	obj := make([]byte, 256)
	w := NewWriter(obj, 0, 8)
	w.SetPresent(3)
	w.SetPresent(6)
	if w.EntryOffset(3) != FixedLen(8) {
		t.Errorf("first present field entry at %d, want %d", w.EntryOffset(3), FixedLen(8))
	}
	if w.EntryOffset(6) != FixedLen(8)+EntrySize {
		t.Errorf("second present field entry at %d", w.EntryOffset(6))
	}
}

func TestEntryOffsetAbsentPanics(t *testing.T) {
	obj := make([]byte, 64)
	w := NewWriter(obj, 0, 4)
	defer func() {
		if recover() == nil {
			t.Error("EntryOffset on absent field did not panic")
		}
	}()
	w.EntryOffset(1)
}

func TestFieldRangePanics(t *testing.T) {
	obj := make([]byte, 64)
	w := NewWriter(obj, 0, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range field did not panic")
		}
	}()
	w.SetPresent(4)
}

func TestNonZeroBase(t *testing.T) {
	obj := make([]byte, 256)
	const base = 64
	w := NewWriter(obj, base, 2)
	w.SetPresent(1)
	w.PutPtr(1, 200, 10)
	r, err := Parse(obj, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if off, n := r.Ptr(1); off != 200 || n != 10 {
		t.Errorf("Ptr = (%d,%d)", off, n)
	}
	if r.Base() != base {
		t.Errorf("Base = %d", r.Base())
	}
}

func TestParseValidation(t *testing.T) {
	obj := make([]byte, 64)
	NewWriter(obj, 0, 4)
	// Wrong field count: bitmap word mismatch only triggers past 32 fields;
	// corrupt the word count instead.
	PutU32(obj, 9)
	if _, err := Parse(obj, 0, 4); err == nil {
		t.Error("corrupt bitmap word count accepted")
	}
	// Header base beyond the object.
	if _, err := Parse(obj, 100, 4); err == nil {
		t.Error("out-of-range base accepted")
	}
	// Truncated entries: 4 fields all present needs 4+4+32 bytes.
	small := make([]byte, 10)
	w := NewWriter(small[:8], 0, 4)
	_ = w
	tiny := make([]byte, 8)
	NewWriter(tiny, 0, 4)
	// Mark all 4 present directly in the bitmap word.
	PutU32(tiny[4:], 0xF)
	if _, err := Parse(tiny, 0, 4); err == nil {
		t.Error("truncated entry region accepted")
	}
	if _, err := Parse(obj, 0, -1); err == nil {
		t.Error("negative field count accepted")
	}
	if _, err := Parse(obj, 0, MaxFields+1); err == nil {
		t.Error("huge field count accepted")
	}
}

func TestCheckRange(t *testing.T) {
	obj := make([]byte, 100)
	w := NewWriter(obj, 0, 1)
	if err := w.CheckRange(90, 10); err != nil {
		t.Errorf("valid range rejected: %v", err)
	}
	if err := w.CheckRange(90, 11); err == nil {
		t.Error("overflowing range accepted")
	}
	if err := w.CheckRange(^uint32(0), ^uint32(0)); err == nil {
		t.Error("wrapping range accepted")
	}
}

func TestManyFieldsBitmap(t *testing.T) {
	const nFields = 100 // 4 bitmap words
	obj := make([]byte, 4+16+nFields*EntrySize)
	w := NewWriter(obj, 0, nFields)
	for i := 0; i < nFields; i += 7 {
		w.SetPresent(i)
	}
	r, err := Parse(obj, 0, nFields)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nFields; i++ {
		want := i%7 == 0
		if r.Present(i) != want {
			t.Errorf("Present(%d) = %v, want %v", i, r.Present(i), want)
		}
	}
	if r.NumPresent() != 15 {
		t.Errorf("NumPresent = %d, want 15", r.NumPresent())
	}
}

func TestListTable(t *testing.T) {
	obj := make([]byte, 200)
	tb, err := NewListTable(obj, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	tb.PutElemPtr(0, 100, 10)
	tb.PutElemPtr(1, 110, 20)
	tb.PutElemInt(2, 777)
	if off, n := tb.ElemPtr(0); off != 100 || n != 10 {
		t.Errorf("elem 0 = (%d,%d)", off, n)
	}
	if off, n := tb.ElemPtr(1); off != 110 || n != 20 {
		t.Errorf("elem 1 = (%d,%d)", off, n)
	}
	if v := tb.ElemInt(2); v != 777 {
		t.Errorf("elem 2 = %d", v)
	}
	if tb.Count() != 3 {
		t.Errorf("Count = %d", tb.Count())
	}
}

func TestListTableBounds(t *testing.T) {
	obj := make([]byte, 32)
	if _, err := NewListTable(obj, 16, 3); err == nil {
		t.Error("overflowing table accepted")
	}
	if _, err := NewListTable(obj, -1, 1); err == nil {
		t.Error("negative offset accepted")
	}
	tb, _ := NewListTable(obj, 0, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range element did not panic")
		}
	}()
	tb.ElemPtr(2)
}

// Property: for any presence pattern and values, writing then parsing
// recovers exactly the same fields.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(present uint16, vals [16]uint64) bool {
		const nFields = 16
		obj := make([]byte, HeaderLen(nFields, nFields))
		w := NewWriter(obj, 0, nFields)
		for i := 0; i < nFields; i++ {
			if present&(1<<i) != 0 {
				w.SetPresent(i)
			}
		}
		for i := 0; i < nFields; i++ {
			if present&(1<<i) != 0 {
				w.PutInt(i, vals[i])
			}
		}
		r, err := Parse(obj, 0, nFields)
		if err != nil {
			return false
		}
		for i := 0; i < nFields; i++ {
			if r.Present(i) != (present&(1<<i) != 0) {
				return false
			}
			if r.Present(i) && r.Int(i) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrimitives(t *testing.T) {
	b := make([]byte, 8)
	PutU32(b, 0x01020304)
	if b[0] != 4 || GetU32(b) != 0x01020304 {
		t.Error("u32 not little-endian round trip")
	}
	PutU64(b, 0x0102030405060708)
	if b[0] != 8 || GetU64(b) != 0x0102030405060708 {
		t.Error("u64 not little-endian round trip")
	}
}
