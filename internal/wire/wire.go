// Package wire implements the Cornflakes wire format (paper §3.3, Fig. 4).
//
// A serialized object is laid out as:
//
//	Object := HeaderRegion | CopyData | ZeroCopyData
//
// where ZeroCopyData is appended by the NIC's gather engine at transmit
// time, so the receiver always sees one contiguous object. The HeaderRegion
// for a message starts with a u32 bitmap word count and a presence bitmap,
// followed by one fixed 8-byte entry per *present* field, in schema order:
//
//	integer fields:        u64 value inline (ints are always copied into
//	                       the header regardless of the threshold, §5 fn.5)
//	bytes/string fields:   u32 absolute offset, u32 length
//	nested message fields: u32 absolute offset (of the nested header), u32
//	                       header-region length
//	list fields:           u32 absolute offset (of the list table), u32
//	                       element count
//
// List tables and nested headers also live in the HeaderRegion; element
// entries use the same 8-byte (offset, length) format, and integer-list
// tables hold u64 values inline. All offsets are absolute within the
// serialized object, and all integers are little-endian — like Cap'n Proto
// and FlatBuffers, Cornflakes does not encode or compress values (§2).
package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// EntrySize is the fixed size of one field entry in the header.
const EntrySize = 8

// MaxFields bounds the schema size we accept; the format itself allows
// 2^32×8 fields (paper fn.4), but a sane bound catches corrupt headers.
const MaxFields = 1 << 16

// BitmapWords returns the number of 32-bit bitmap words for a schema with
// nFields fields.
func BitmapWords(nFields int) int { return (nFields + 31) / 32 }

// FixedLen returns the length of the bitmap-word-count prefix plus bitmap
// for a schema with nFields fields.
func FixedLen(nFields int) int { return 4 + 4*BitmapWords(nFields) }

// HeaderLen returns the size of a message's own header (excluding nested
// headers and list tables): fixed part plus one entry per present field.
func HeaderLen(nFields, nPresent int) int {
	return FixedLen(nFields) + nPresent*EntrySize
}

// PutU32/GetU32/PutU64/GetU64 are the little-endian primitive accessors.
func PutU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func GetU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func PutU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func GetU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// Header is a view over one message header within a serialized object.
// The same type serves writing (over a zeroed destination) and reading
// (over received bytes).
type Header struct {
	// obj is the full object buffer; all offsets in entries are absolute
	// within it.
	obj []byte
	// base is the offset of this header within obj.
	base    int
	nFields int
	words   int
}

// NewWriter prepares a header for writing at obj[base:]. The bitmap region
// must be zero (freshly allocated or cleared); NewWriter writes the bitmap
// word count.
func NewWriter(obj []byte, base, nFields int) Header {
	h := Header{obj: obj, base: base, nFields: nFields, words: BitmapWords(nFields)}
	PutU32(obj[base:], uint32(h.words))
	for i := 0; i < h.words; i++ {
		PutU32(obj[base+4+4*i:], 0)
	}
	return h
}

// Parse reads a header at obj[base:] for a schema with nFields fields,
// validating the bitmap word count and bounds.
func Parse(obj []byte, base, nFields int) (Header, error) {
	if nFields < 0 || nFields > MaxFields {
		return Header{}, fmt.Errorf("wire: invalid field count %d", nFields)
	}
	if base < 0 || base+4 > len(obj) {
		return Header{}, fmt.Errorf("wire: header base %d out of range (object %d bytes)", base, len(obj))
	}
	words := int(GetU32(obj[base:]))
	if words != BitmapWords(nFields) {
		return Header{}, fmt.Errorf("wire: bitmap words %d, want %d for %d fields", words, BitmapWords(nFields), nFields)
	}
	h := Header{obj: obj, base: base, nFields: nFields, words: words}
	if base+h.fixedLen() > len(obj) {
		return Header{}, fmt.Errorf("wire: truncated bitmap")
	}
	if end := base + h.Len(); end > len(obj) {
		return Header{}, fmt.Errorf("wire: truncated entries: header needs %d bytes, object has %d after base", h.Len(), len(obj)-base)
	}
	return h, nil
}

func (h Header) fixedLen() int { return 4 + 4*h.words }

// Base returns the header's absolute offset within the object.
func (h Header) Base() int { return h.base }

// Len returns the header's own length: fixed part plus entries for the
// fields currently marked present.
func (h Header) Len() int { return h.fixedLen() + h.NumPresent()*EntrySize }

// SetPresent marks field i present. Writers must mark every present field
// before writing any entry, because entry positions depend on the ranks of
// present fields.
func (h Header) SetPresent(i int) {
	h.checkField(i)
	w := h.base + 4 + 4*(i/32)
	PutU32(h.obj[w:], GetU32(h.obj[w:])|1<<(i%32))
}

// Present reports whether field i is present.
func (h Header) Present(i int) bool {
	h.checkField(i)
	w := h.base + 4 + 4*(i/32)
	return GetU32(h.obj[w:])&(1<<(i%32)) != 0
}

// NumPresent counts present fields.
func (h Header) NumPresent() int {
	n := 0
	for w := 0; w < h.words; w++ {
		n += bits.OnesCount32(GetU32(h.obj[h.base+4+4*w:]))
	}
	return n
}

// rank returns how many fields with index < i are present.
func (h Header) rank(i int) int {
	n := 0
	full := i / 32
	for w := 0; w < full; w++ {
		n += bits.OnesCount32(GetU32(h.obj[h.base+4+4*w:]))
	}
	if rem := uint(i % 32); rem > 0 {
		mask := uint32(1)<<rem - 1
		n += bits.OnesCount32(GetU32(h.obj[h.base+4+4*full:]) & mask)
	}
	return n
}

// EntryOffset returns the absolute offset within the object of field i's
// entry. The field must be present.
func (h Header) EntryOffset(i int) int {
	if !h.Present(i) {
		panic(fmt.Sprintf("wire: EntryOffset of absent field %d", i))
	}
	return h.base + h.fixedLen() + h.rank(i)*EntrySize
}

// PutInt writes an integer field inline.
func (h Header) PutInt(i int, v uint64) {
	PutU64(h.obj[h.EntryOffset(i):], v)
}

// Int reads an integer field.
func (h Header) Int(i int) uint64 {
	return GetU64(h.obj[h.EntryOffset(i):])
}

// PutPtr writes an (offset, length/count) entry.
func (h Header) PutPtr(i int, off, length uint32) {
	e := h.EntryOffset(i)
	PutU32(h.obj[e:], off)
	PutU32(h.obj[e+4:], length)
}

// Ptr reads an (offset, length/count) entry.
func (h Header) Ptr(i int) (off, length uint32) {
	e := h.EntryOffset(i)
	return GetU32(h.obj[e:]), GetU32(h.obj[e+4:])
}

// CheckRange validates that an (off, length) pair from an entry lies within
// the object, guarding getters against corrupt or malicious headers.
func (h Header) CheckRange(off, length uint32) error {
	end := uint64(off) + uint64(length)
	if end > uint64(len(h.obj)) {
		return fmt.Errorf("wire: range [%d, %d) outside %d-byte object", off, end, len(h.obj))
	}
	return nil
}

// Object returns the full object buffer the header views.
func (h Header) Object() []byte { return h.obj }

func (h Header) checkField(i int) {
	if i < 0 || i >= h.nFields {
		panic(fmt.Sprintf("wire: field %d out of range (%d fields)", i, h.nFields))
	}
}

// ListTable is a view over a list's element table within an object.
type ListTable struct {
	obj   []byte
	off   int // absolute offset of the table
	count int
}

// NewListTable views a table of count entries at absolute offset off.
func NewListTable(obj []byte, off, count int) (ListTable, error) {
	if off < 0 || count < 0 || off+count*EntrySize > len(obj) {
		return ListTable{}, fmt.Errorf("wire: list table [%d, +%d entries) outside %d-byte object", off, count, len(obj))
	}
	return ListTable{obj: obj, off: off, count: count}, nil
}

// Count returns the number of elements.
func (t ListTable) Count() int { return t.count }

// PutElemPtr writes element j's (offset, length) pair.
func (t ListTable) PutElemPtr(j int, off, length uint32) {
	e := t.elem(j)
	PutU32(t.obj[e:], off)
	PutU32(t.obj[e+4:], length)
}

// ElemPtr reads element j's (offset, length) pair.
func (t ListTable) ElemPtr(j int) (off, length uint32) {
	e := t.elem(j)
	return GetU32(t.obj[e:]), GetU32(t.obj[e+4:])
}

// PutElemInt writes element j of an integer list.
func (t ListTable) PutElemInt(j int, v uint64) { PutU64(t.obj[t.elem(j):], v) }

// ElemInt reads element j of an integer list.
func (t ListTable) ElemInt(j int) uint64 { return GetU64(t.obj[t.elem(j):]) }

func (t ListTable) elem(j int) int {
	if j < 0 || j >= t.count {
		panic(fmt.Sprintf("wire: list element %d out of range (count %d)", j, t.count))
	}
	return t.off + j*EntrySize
}
