package driver

import (
	"cornflakes/internal/baselines"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/sim"
)

// TCPEchoMode selects the Figure 9 TCP echo datapath.
type TCPEchoMode int

const (
	// TCPEchoRaw is the "raw packet echo" L3-forwarder floor: the payload
	// goes straight back with no deserialization.
	TCPEchoRaw TCPEchoMode = iota
	// TCPEchoFlatBuffers deserializes and reserializes with fblite.
	TCPEchoFlatBuffers
	// TCPEchoCornflakes deserializes and reserializes with Cornflakes,
	// echoing large fields zero-copy out of the receive buffer.
	TCPEchoCornflakes
)

func (m TCPEchoMode) String() string {
	switch m {
	case TCPEchoRaw:
		return "Raw packet echo"
	case TCPEchoFlatBuffers:
		return "FlatBuffers"
	default:
		return "Cornflakes"
	}
}

// TCPEchoServer is the echo application over the TCP-lite stack (§6.2.3:
// the Demikernel TCP integration).
type TCPEchoServer struct {
	N    *Node
	Mode TCPEchoMode

	Handled, Errors uint64
}

// NewTCPEchoServer attaches the server to the node's TCP connection.
func NewTCPEchoServer(n *Node, mode TCPEchoMode) *TCPEchoServer {
	s := &TCPEchoServer{N: n, Mode: mode}
	n.TCP.SetRecvHandler(s.onPayload)
	return s
}

func (s *TCPEchoServer) onPayload(p *mem.Buf) {
	ok := s.N.Core.Submit(sim.Job{Run: func() sim.Time {
		s.handle(p)
		s.N.Arena.Reset()
		return s.N.Meter.DrainTime()
	}})
	if !ok {
		p.DecRef()
	}
}

func (s *TCPEchoServer) handle(p *mem.Buf) {
	s.Handled++
	m := s.N.Meter
	ctx := s.N.Ctx
	switch s.Mode {
	case TCPEchoRaw:
		if err := s.N.TCP.SendContiguous(p.Bytes(), p.SimAddr()); err != nil {
			s.Errors++
		}
		p.DecRef()

	case TCPEchoFlatBuffers:
		req, err := baselines.FBDecode(msgs.GetMSchema, p.Bytes(), p.SimAddr(), m)
		if err != nil {
			s.Errors++
			p.DecRef()
			return
		}
		resp := baselines.NewDoc(msgs.GetMSchema)
		resp.SetInt(0, req.F[0].I)
		for j, v := range req.F[2].B {
			resp.AddBytes(2, v, req.F[2].Sim[j])
		}
		buf, bufSim := baselines.FBBuildSim(resp, m)
		if err := s.N.TCP.SendContiguous(buf, bufSim); err != nil {
			s.Errors++
		}
		p.DecRef()

	case TCPEchoCornflakes:
		req, err := msgs.DeserializeGetM(ctx, p)
		if err != nil {
			s.Errors++
			p.DecRef()
			return
		}
		resp := msgs.NewGetM(ctx)
		resp.SetId(req.Id())
		n := req.ValsLen()
		for j := 0; j < n; j++ {
			resp.AppendVals(ctx.NewCFPtr(req.Vals(j)))
		}
		if err := s.N.TCP.SendObject(resp.Obj()); err != nil {
			s.Errors++
		}
		resp.Release()
		req.Release()
	}
}
