package driver

import (
	"fmt"

	"cornflakes/internal/baselines"
	"cornflakes/internal/core"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/trace"
)

// Tracer wiring: the trace package identifies a request by its wire id (the
// loadgen's request id), so every layer that observes a frame needs a cheap
// way to peek the id out of raw payload bytes. Requests carry a one-byte op
// tag ahead of the serialized body; responses are the bare serialized
// object, or a ShedReply.

// peekRequestID extracts the request id from a framed request payload (op
// byte + serialized body) without a metered deserialization.
func peekRequestID(sys System, p []byte) (uint64, bool) {
	if len(p) < 2 {
		return 0, false
	}
	body := p[1:]
	switch sys {
	case SysCornflakes:
		return core.PeekID(body)
	case SysProtobuf:
		return baselines.ProtoPeekID(body)
	case SysFlatBuffers:
		return baselines.FBPeekID(body)
	default:
		return baselines.CapnpPeekID(body)
	}
}

// peekResponseID extracts the request id from a response payload — a
// ShedReply or a bare serialized response object.
func peekResponseID(sys System, p []byte) (uint64, bool) {
	if id, ok := ShedID(p); ok {
		return id, true
	}
	switch sys {
	case SysCornflakes:
		return core.PeekID(p)
	case SysProtobuf:
		return baselines.ProtoPeekID(p)
	case SysFlatBuffers:
		return baselines.FBPeekID(p)
	default:
		return baselines.CapnpPeekID(p)
	}
}

// AttachTracer wires a tracer into a testbed's transport layers, using the
// given peek functions to map frames back to request ids:
//
//   - the client NIC port's Observer marks each request's TX chain
//     (PhaseReqWire at DMA completion, PhaseReqProp at wire exit, PhaseQueue
//     at server delivery) and notes frames lost on the wire;
//   - the server NIC port's Observer marks the response TX chain
//     (PhaseRspWire, PhaseRspProp) for replies and shed replies alike;
//   - RX-side drops (runt frames, buffer exhaustion) and TCP-lite RTO
//     retransmissions become notes on the owning flow.
//
// Frames whose id cannot be peeked (ACKs, corrupted frames) are skipped.
// The hooks are pure observation: no timing or buffer behaviour changes.
func AttachTracer(tb *Testbed, tr *trace.Tracer,
	peekReq, peekResp func(p []byte) (uint64, bool)) {

	hdrLen := netstack.PacketHeaderLen
	if tb.Client.TCP != nil {
		hdrLen = netstack.TCPHeaderLen
	}
	payloadOf := func(frame []byte) ([]byte, bool) {
		if len(frame) <= hdrLen {
			return nil, false
		}
		return frame[hdrLen:], true
	}

	clientPort(tb).Observer = func(r nic.TxRecord) {
		p, ok := payloadOf(r.Data)
		if !ok {
			return
		}
		id, ok := peekReq(p)
		if !ok {
			return
		}
		if r.Dropped {
			tr.Note(id, "request frame lost on the wire")
			return
		}
		tr.Mark(id, r.DMADone, trace.PhaseReqWire)
		tr.Mark(id, r.TxDone, trace.PhaseReqProp)
		tr.Mark(id, r.DeliverAt, trace.PhaseQueue)
	}
	serverPort(tb).Observer = func(r nic.TxRecord) {
		p, ok := payloadOf(r.Data)
		if !ok {
			return
		}
		id, ok := peekResp(p)
		if !ok {
			return
		}
		if r.Dropped {
			tr.Note(id, "response frame lost on the wire")
			return
		}
		tr.Mark(id, r.DMADone, trace.PhaseRspWire)
		tr.Mark(id, r.TxDone, trace.PhaseRspProp)
	}

	if tb.Server.UDP != nil {
		tb.Server.UDP.OnDrop = func(p []byte, reason string) {
			if id, ok := peekReq(p); ok {
				tr.Note(id, "request dropped at server RX: "+reason)
			}
		}
	}
	if tb.Client.UDP != nil {
		tb.Client.UDP.OnDrop = func(p []byte, reason string) {
			if id, ok := peekResp(p); ok {
				tr.Note(id, "response dropped at client RX: "+reason)
			}
		}
	}
	if tb.Client.TCP != nil {
		tb.Client.TCP.OnRetransmit = func(p []byte) {
			if id, ok := peekReq(p); ok {
				tr.Note(id, "request retransmitted (RTO)")
			}
		}
	}
	if tb.Server.TCP != nil {
		tb.Server.TCP.OnRetransmit = func(p []byte) {
			if id, ok := peekResp(p); ok {
				tr.Note(id, "response retransmitted (RTO)")
			}
		}
	}
}

// AttachKVTracer wires a tracer through every layer of a KV testbed: the
// transport hooks of AttachTracer with the KV codecs' peek functions, plus
// the server-side hooks (PhaseHandle at core dispatch, PhaseShed on
// admission-control rejection, per-request receipts) via KVServer.Trace.
func AttachKVTracer(tb *Testbed, srv *KVServer, tr *trace.Tracer) {
	sys := srv.Sys
	AttachTracer(tb, tr,
		func(p []byte) (uint64, bool) { return peekRequestID(sys, p) },
		func(p []byte) (uint64, bool) { return peekResponseID(sys, p) })
	srv.Trace = tr
}

// RegisterServerGauges registers the standard server-health gauges on a
// registry, in a fixed deterministic order: pinned-memory occupancy, core
// load and queueing, admission-control and fallback activity, and stack
// drop counters.
func RegisterServerGauges(reg *trace.Registry, tb *Testbed, srv *KVServer) {
	alloc := tb.Server.Alloc
	c := tb.Server.Core
	ctx := tb.Server.Ctx
	reg.Register("server.mem.slots", func() float64 { return float64(alloc.Stats().SlotsInUse) })
	reg.Register("server.mem.peak", func() float64 { return float64(alloc.Stats().PeakSlotsInUse) })
	reg.Register("server.mem.occupancy", func() float64 { return alloc.Occupancy() })
	reg.Register("server.core.util", func() float64 { return c.Utilization() })
	// PendingDepth, not Core.QueueLen: on the batched datapath requests wait
	// in the server's software RX ring, which the core queue alone misses.
	// Unbatched the two are identical (the ring stays empty).
	reg.Register("server.core.queue", func() float64 { return float64(srv.PendingDepth()) })
	reg.Register("server.core.dropped", func() float64 { return float64(c.Dropped) })
	reg.Register("server.shed", func() float64 { return float64(srv.Shed) })
	reg.Register("server.fallbacks", func() float64 { return float64(ctx.Fallbacks) })
	if u := tb.Server.UDP; u != nil {
		reg.Register("server.udp.rx_nomem", func() float64 { return float64(u.RxNoMem) })
		reg.Register("server.udp.tx_nomem", func() float64 { return float64(u.TxNoMem) })
	}
}

// clientPort and serverPort reach through whichever stack a node runs.
func clientPort(tb *Testbed) *nic.Port { return nodePort(tb.Client) }
func serverPort(tb *Testbed) *nic.Port { return nodePort(tb.Server) }

func nodePort(n *Node) *nic.Port {
	if n.TCP != nil {
		return n.TCP.Port
	}
	if n.UDP != nil {
		return n.UDP.Port
	}
	panic(fmt.Sprintf("driver: node %p has no stack", n))
}
