package driver

import (
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/fabric"
	"cornflakes/internal/faults"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// TestClusterCrashRecovery drives a crash/recovery through a live cluster:
// the crashed shard drops in-flight and arriving work loudly, restarts
// cold, and the frame ledger still balances to zero at quiesce.
func TestClusterCrashRecovery(t *testing.T) {
	gen := clusterGen(300)
	c := NewClusterTestbed(2, 2, SysCornflakes, nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
	c.Preload(gen.Records(), 2)

	// Crash shard 0 a quarter into the measure window, recover halfway.
	sched := faults.ScheduleNodePlan(c.Eng, faults.NodeFaultPlan{
		Seed: 5,
		Crashes: []faults.NodeCrash{{
			Node: 0, At: sim.Millisecond, Downtime: sim.Millisecond / 2,
		}},
	}, c.FaultNodes(), c.Switch)

	cfgs := make([]loadgen.Config, 2)
	clients := make([]*ClusterKVClient, 2)
	for i := range cfgs {
		clients[i] = c.NewClient(i, SysCornflakes, 2)
		clients[i].Failover = true
		cfgs[i] = clusterCfg(c, i, clients[i], gen, 100_000, 77)
	}
	results := loadgen.RunMany(cfgs)
	c.Eng.Run() // quiesce: late replies, in-flight frames, recovery timer

	if sched.Crashes != 1 || sched.Recoveries != 1 {
		t.Fatalf("schedule = %+v, want 1 crash / 1 recovery", sched)
	}
	srv := c.Servers[0]
	if srv.Down {
		t.Error("shard 0 still down after recovery")
	}
	if srv.Recoveries != 1 {
		t.Errorf("shard 0 recoveries = %d, want 1", srv.Recoveries)
	}
	// The dead window must have discarded something, and loudly: frames
	// that reached the crashed host count as host-down drops, work already
	// accepted counts as server-side down drops.
	if srv.N.UDP.RxDownDrops == 0 {
		t.Error("no host-down drops despite a 0.5 ms dead window under load")
	}
	// A cold restart flushes the cache: the recovered shard must miss again.
	if cs := srv.N.Cache.Stats(); cs[0].Misses == 0 {
		t.Error("no cache misses after cold restart")
	}
	for i, res := range results {
		if got := res.Completed + res.Shed + res.TimedOut + res.Unresolved; got != res.Sent {
			t.Errorf("client %d accounting: sent=%d resolved=%d", i, res.Sent, got)
		}
		if res.Completed == 0 {
			t.Errorf("client %d completed nothing", i)
		}
		if res.BadResponses != 0 {
			t.Errorf("client %d: %d bad responses", i, res.BadResponses)
		}
	}
	// Every frame in the topology is accounted for — nothing vanished
	// silently through the crash.
	if loss := c.Ledger().SilentLoss(0, 0); loss != 0 {
		t.Errorf("silent frame loss through crash: %d (ledger %+v)", loss, c.Ledger())
	}
}

// TestCrashDrainsPending pins the in-flight-drop contract directly: work
// sitting in the server's rx queue at crash time is discarded and counted,
// never served after the restart.
func TestCrashDrainsPending(t *testing.T) {
	gen := clusterGen(100)
	c := NewClusterTestbed(1, 1, SysCornflakes, nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
	c.Preload(gen.Records(), 1)
	srv := c.Servers[0]
	srv.EnableBatching(8) // backlog parks in the software RX ring

	cl := c.NewClient(0, SysCornflakes, 1)
	cfg := clusterCfg(c, 0, cl, gen, 3_000_000, 13)
	cfg.Warmup, cfg.Measure = 0, sim.Millisecond

	// Crash just after load starts and never recover: everything parked in
	// the RX ring must die with the process, counted, immediately. (Work
	// already queued on the core discards when its job fires while down.)
	c.Eng.At(50*sim.Microsecond, func() {
		if len(srv.rxq) == 0 {
			t.Error("no RX-ring backlog at crash time; rate too low to pin the drain")
		}
		srv.Crash()
		if len(srv.rxq) != 0 {
			t.Errorf("RX ring holds %d requests after crash, want 0", len(srv.rxq))
		}
		if srv.DownDrops == 0 {
			t.Error("crash drained the ring without counting DownDrops")
		}
	})
	res := loadgen.Run(cfg)
	c.Eng.Run()

	if srv.DownDrops == 0 {
		t.Error("crash discarded nothing")
	}
	if res.Completed == 0 {
		t.Error("nothing completed before the crash")
	}
	if got := res.Completed + res.Shed + res.TimedOut + res.Unresolved; got != res.Sent {
		t.Errorf("accounting: sent=%d resolved=%d", res.Sent, got)
	}
	if loss := c.Ledger().SilentLoss(0, 0); loss != 0 {
		t.Errorf("silent frame loss: %d", loss)
	}
}

// TestGraySlowdownScales pins the gray-failure primitive: SetGray(k)
// multiplies the modelled service time by k and SetGray(1) restores it.
func TestGraySlowdownScales(t *testing.T) {
	c := NewClusterTestbed(1, 1, SysCornflakes, nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
	srv := c.Servers[0]
	base := srv.scaled(100 * sim.Microsecond)
	if base != 100*sim.Microsecond {
		t.Fatalf("healthy scaled(100µs) = %v", base)
	}
	srv.SetGray(6)
	if got := srv.scaled(100 * sim.Microsecond); got != 600*sim.Microsecond {
		t.Errorf("gray×6 scaled(100µs) = %v, want 600µs", got)
	}
	srv.SetGray(0.5) // ≤ 1 restores healthy
	if got := srv.scaled(100 * sim.Microsecond); got != 100*sim.Microsecond {
		t.Errorf("restored scaled(100µs) = %v, want 100µs", got)
	}
}

// TestFailoverRouting pins attempt-indexed replica selection: consecutive
// attempts of one read land on distinct replicas, attempt 0 is stable, and
// the non-failover path is untouched.
func TestFailoverRouting(t *testing.T) {
	gen := clusterGen(100)
	c := NewClusterTestbed(4, 1, SysCornflakes, nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
	c.Preload(gen.Records(), 2)

	cl := c.NewClient(0, SysCornflakes, 2)
	cl.Failover = true
	key := gen.Records()[0].Key
	read := workloads.Request{Op: workloads.OpGetList, Keys: [][]byte{key}}

	dst := func(attempt int) byte {
		cl.RouteAttempt(attempt)
		cl.BuildStep(1, read, 0)
		return cl.udp.DstAddr
	}
	a0, a1 := dst(0), dst(1)
	if a0 == a1 {
		t.Errorf("attempts 0 and 1 routed to the same replica %d", a0)
	}
	// R=2: attempt 2 wraps back to attempt 0's replica; attempt 0 replays.
	if a2 := dst(2); a2 != a0 {
		t.Errorf("attempt 2 = %d, want wrap to %d", a2, a0)
	}
	if again := dst(0); again != a0 {
		t.Errorf("attempt 0 not stable: %d then %d", a0, again)
	}
	// Writes ignore the attempt index: always the owner.
	put := workloads.Request{Op: workloads.OpPut, Keys: [][]byte{key}, Vals: [][]byte{{1}}}
	owner := c.ServerAddrs[c.Ring.Shard(key)]
	for attempt := 0; attempt < 3; attempt++ {
		cl.RouteAttempt(attempt)
		cl.BuildStep(2, put, 0)
		if cl.udp.DstAddr != owner {
			t.Errorf("put attempt %d routed to %d, want owner %d", attempt, cl.udp.DstAddr, owner)
		}
	}
}
