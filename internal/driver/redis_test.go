package driver

import (
	"testing"

	"cornflakes/internal/loadgen"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/redis"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

func runRedis(t *testing.T, mode redis.Mode, gen workloads.Generator, rate float64) (loadgen.Result, *RedisServer) {
	t.Helper()
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewRedisServer(tb.Server, mode)
	srv.Preload(gen.Records())
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: NewRedisClient(tb.Client, mode),
		RatePerS: rate, Warmup: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 11,
	})
	return res, srv
}

func TestRedisEndToEndBothModes(t *testing.T) {
	gen := workloads.NewTwitter(300, 5)
	for _, mode := range []redis.Mode{redis.ModeRESP, redis.ModeCornflakes} {
		t.Run(mode.String(), func(t *testing.T) {
			res, srv := runRedis(t, mode, gen, 30_000)
			if srv.Errors != 0 || srv.R.Errors != 0 {
				t.Errorf("server errors: %d/%d", srv.Errors, srv.R.Errors)
			}
			if res.BadResponses != 0 {
				t.Errorf("bad responses: %d", res.BadResponses)
			}
			if res.Completed == 0 {
				t.Fatal("nothing completed")
			}
		})
	}
}

func TestRedisMGetLRange(t *testing.T) {
	// YCSB with 2x2048B values exercises LRANGE (the Table 3 shape).
	gen := workloads.NewYCSB(100, 2048, 2)
	for _, mode := range []redis.Mode{redis.ModeRESP, redis.ModeCornflakes} {
		res, srv := runRedis(t, mode, gen, 20_000)
		if srv.Errors != 0 || res.BadResponses != 0 || res.Completed == 0 {
			t.Errorf("%s: errors=%d bad=%d done=%d", mode, srv.Errors, res.BadResponses, res.Completed)
		}
		if mode == redis.ModeCornflakes && srv.N.UDP.TxZCEntries == 0 {
			t.Error("Cornflakes mode sent no zero-copy entries for 2048B values")
		}
		if mode == redis.ModeRESP && srv.N.UDP.TxZCEntries != 0 {
			t.Error("RESP mode should never scatter-gather")
		}
	}
}

// The §6.2.2 headline: for value sizes where zero-copy wins, Cornflakes
// serialization inside Redis costs fewer cycles per request than Redis's
// handwritten RESP serialization.
func TestRedisCornflakesCheaperOnLargeValues(t *testing.T) {
	gen := workloads.NewYCSB(200, 4096, 1)
	perReq := func(mode redis.Mode) float64 {
		tb := NewTestbed(nic.MellanoxCX6())
		srv := NewRedisServer(tb.Server, mode)
		srv.Preload(gen.Records())
		loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: gen, Client: NewRedisClient(tb.Client, mode),
			RatePerS: 20_000, Warmup: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 12,
		})
		return float64(tb.Server.Core.BusyTime) / float64(tb.Server.Core.JobsDone)
	}
	resp, cf := perReq(redis.ModeRESP), perReq(redis.ModeCornflakes)
	if cf >= resp {
		t.Errorf("Cornflakes per-request time (%.0f ps) should beat RESP (%.0f ps) on 4096B values", cf, resp)
	}
}

// Full-content validation through the RESP mode: the reply payload parses
// as RESP and carries the stored value.
func TestRedisRESPReplyContents(t *testing.T) {
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewRedisServer(tb.Server, redis.ModeRESP)
	srv.Preload([]workloads.KV{{Key: []byte("only-key"), Vals: [][]byte{[]byte("only-value")}}})
	var gotID uint64
	var gotVal string
	tb.Client.UDP.SetRecvHandler(func(p *mem.Buf) {
		id, v, err := ParseRESPReply(tb.Client.Meter, p.Bytes())
		if err != nil {
			t.Errorf("reply parse: %v", err)
		} else {
			gotID = id
			gotVal = string(v.Str)
		}
		p.DecRef()
	})
	client := NewRedisClient(tb.Client, redis.ModeRESP)
	payload := client.BuildStep(321, workloads.Request{Op: workloads.OpGet, Keys: [][]byte{[]byte("only-key")}}, 0)
	tb.Client.UDP.SendContiguous(payload, 0)
	tb.Eng.Run()
	if gotID != 321 || gotVal != "only-value" {
		t.Errorf("reply = (%d, %q)", gotID, gotVal)
	}
}
