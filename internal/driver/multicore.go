package driver

import (
	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// Multi-core KV server: the paper's §6.6 shows the copy/scatter-gather
// microbenchmark scaling linearly across cores and argues "our end-to-end
// results should extrapolate to multiple cores", but leaves "a full
// multicore implementation to future work". This file is that future work:
// K cores with private L1/L2 over a shared L3, per-core stores sharded by
// key, per-core arenas/meters/allocator-free-lists, all behind one NIC
// port with RSS-style dispatch.
//
// Requests carry a one-byte shard tag after the op byte (clients compute
// it from the key, standing in for NIC RSS hashing); responses flow out of
// each core's own transmit path onto the shared port, so wire and DMA
// contention are shared while CPU work is fully parallel.

// MultiKVServer runs one KVServer per core behind a shared port.
type MultiKVServer struct {
	Cores []*KVServer
	port  *nic.Port
}

// NewMultiKVServer builds nCores servers. Each core gets its own node
// resources; caches share one L3 (§6.6's topology).
func NewMultiKVServer(eng *sim.Engine, port *nic.Port, nCores int, sys System, cacheCfg cachesim.Config) *MultiKVServer {
	m := &MultiKVServer{port: port}
	base := cachesim.New(cacheCfg)
	for i := 0; i < nCores; i++ {
		cache := base
		if i > 0 {
			cache = cachesim.NewShared(cacheCfg, base)
		}
		alloc := mem.NewAllocator()
		arena := mem.NewArena(256 << 10)
		meter := costmodel.NewMeter(costmodel.DefaultCPU(), cache)
		n := &Node{
			Eng:   eng,
			Alloc: alloc,
			Arena: arena,
			Cache: cache,
			Meter: meter,
			Ctx:   core.NewCtx(alloc, arena, meter),
			Core:  sim.NewCore(eng),
		}
		n.Core.MaxQueue = rxRingDepth
		// Each core owns a UDP transmit context on the shared port. The
		// receive handler it installs is immediately superseded by the
		// dispatcher below.
		n.UDP = netstack.NewUDP(eng, port, alloc, meter)
		m.Cores = append(m.Cores, NewKVServer(n, sys))
	}
	port.SetHandler(m.onFrame)
	return m
}

// onFrame is the RSS dispatcher: it reads the shard tag, places the
// payload in the owning core's pinned memory (the NIC steers DMA writes to
// per-core RX rings), and delivers it to that core's server.
func (m *MultiKVServer) onFrame(f *nic.Frame) {
	if len(f.Data) <= netstack.PacketHeaderLen+2 {
		return
	}
	payload := f.Data[netstack.PacketHeaderLen:]
	shard := int(payload[0]) % len(m.Cores)
	srv := m.Cores[shard]
	srv.N.Meter.Charge(srv.N.Meter.CPU.RxPacketCy)
	buf := srv.N.Alloc.Alloc(len(payload) - 1)
	copy(buf.Bytes(), payload[1:]) // DMA write into the core's RX buffer
	srv.Deliver(buf)
}

// Preload shards records across cores by the same tag the clients use.
func (m *MultiKVServer) Preload(recs []workloads.KV) {
	perCore := make([][]workloads.KV, len(m.Cores))
	for _, r := range recs {
		s := int(shardOf(r.Key, len(m.Cores)))
		perCore[s] = append(perCore[s], r)
	}
	for i, srv := range m.Cores {
		srv.Preload(perCore[i])
	}
}

// Utilization returns the mean core utilization.
func (m *MultiKVServer) Utilization() float64 {
	u := 0.0
	for _, srv := range m.Cores {
		u += srv.N.Core.Utilization()
	}
	return u / float64(len(m.Cores))
}

// Errors sums per-core error counters.
func (m *MultiKVServer) Errors() uint64 {
	e := uint64(0)
	for _, srv := range m.Cores {
		e += srv.Errors
	}
	return e
}

// shardOf maps a key to a core (FNV-1a, the stand-in for NIC RSS).
func shardOf(key []byte, nCores int) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return h % uint32(nCores)
}

// MultiKVClient wraps a KVClient, prefixing the shard tag the dispatcher
// consumes.
type MultiKVClient struct {
	Inner  *KVClient
	NCores int
}

// Steps implements loadgen.Client.
func (c *MultiKVClient) Steps(req workloads.Request) int { return c.Inner.Steps(req) }

// BuildStep implements loadgen.Client: [op][shard][serialized request].
func (c *MultiKVClient) BuildStep(id uint64, req workloads.Request, step int) []byte {
	inner := c.Inner.BuildStep(id, req, step)
	out := make([]byte, 1, len(inner)+1)
	out[0] = inner[0] // op byte stays first for KVServer.handle
	out = append(out, byte(shardOf(req.Keys[0], c.NCores)))
	out = append(out, inner[1:]...)
	// Swap so the dispatcher sees [shard] first and strips it, leaving
	// [op][request] for the server.
	out[0], out[1] = out[1], out[0]
	return out
}

// ResponseID implements loadgen.Client.
func (c *MultiKVClient) ResponseID(p []byte) (uint64, error) { return c.Inner.ResponseID(p) }
