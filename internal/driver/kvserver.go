package driver

import (
	"fmt"

	"cornflakes/internal/baselines"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/kvstore"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/netstack"
	"cornflakes/internal/sim"
	"cornflakes/internal/trace"
	"cornflakes/internal/workloads"
)

// KVServer is the custom key-value store application of §6.1.2, serving
// get / multi-get / list / indexed-get / put requests with a pluggable
// serialization system. One instance runs per server core.
type KVServer struct {
	N     *Node
	Store *kvstore.Store
	Sys   System

	// UseSGArray switches Cornflakes to the non-combined serialize-and-send
	// path (the Table 5 ablation).
	UseSGArray bool

	// OnReceipt, when set, receives the per-request cycle breakdown
	// (Figure 11).
	OnReceipt func(r costmodel.Receipt)

	// Trace, when set, receives per-request marks (queue dispatch, shed)
	// and the same receipts OnReceipt sees, attributed to the owning flow
	// by peeked request id. Wire it with AttachKVTracer.
	Trace *trace.Tracer

	// Adaptive, when set, adjusts the zero-copy threshold between requests
	// from observed metadata cache behaviour (the §7 dynamic-threshold
	// extension).
	Adaptive *core.AdaptiveThreshold

	// Seg, when set, routes requests and responses through the
	// segmentation layer, lifting the one-jumbo-frame object limit
	// (the §3.2.3 segmentation extension).
	Seg *netstack.Segmenter

	// Admission control: beyond these thresholds the server sheds incoming
	// requests with an explicit ShedReply instead of queueing them. Zero
	// disables a check. ShedQueue bounds Core.QueueLen (keep the RX ring
	// from starving ACK and completion traffic); ShedWater is a pinned-pool
	// occupancy fraction (refuse work the send path could not complete).
	ShedQueue int
	ShedWater float64

	// MaxBurst, when ≥ 2, enables the batched RX/TX datapath (EnableBatching
	// wires it): arriving requests queue in a software RX ring and one core
	// job drains up to MaxBurst of them, amortizing the per-job dispatch,
	// the poll-loop share of the RX cost, and — through a bracketed TX batch
	// flushed at the end of the burst — the reply doorbells. The burst is
	// adaptive by construction: the drainer serves min(backlog, MaxBurst),
	// so it collapses to single-request service at low load and only grows
	// with genuine backlog. At MaxBurst ≤ 1 (or on TCP/segmented servers)
	// the legacy unbatched path runs, bit-identical to before.
	MaxBurst int

	// OffloadSer models an RPCAcc/Dagger-style NIC serialization engine:
	// each request's serialize + deserialize cycles are charged to the
	// device instead of the host core, so they leave the core's capacity
	// budget (the receipt still records them — the work happens, it just
	// runs NIC-side). OffloadedTime accumulates the service time moved off
	// the host, the observable the Fig 10 offload row divides out.
	OffloadSer    bool
	OffloadedTime sim.Time
	lastSerCy     float64

	// Fault state (driven by faults.ScheduleNodePlan through the FaultNode
	// interface). Down marks the node crashed: arriving requests are
	// discarded (counted in DownDrops) and the netstack mirrors the state so
	// frames die at RX with exact accounting. Slowdown > 1 is gray failure —
	// the node keeps answering, but every service time is scaled by it, the
	// degraded-not-dead mode plain timeouts handle worst.
	Down     bool
	Slowdown float64

	// rxq is the batched path's software RX ring: requests waiting for the
	// drainer, bounded by Core.MaxQueue like the core's own queue.
	rxq []batchedReq
	// drainerArmed notes that a drainer job is already submitted, so each
	// backlog needs only one.
	drainerArmed bool

	// Stats.
	Handled, Errors uint64
	// Shed counts requests rejected by admission control (each one got an
	// explicit reply, or is counted in ShedReplyErrs when even the reply
	// could not be sent).
	Shed uint64
	// ShedReplyErrs counts shed replies the stack refused to transmit; the
	// client's timeout covers this case.
	ShedReplyErrs uint64
	// DownDrops counts requests the crash discarded: work parked in the RX
	// ring when the node died, plus queued-but-unserved core jobs that fire
	// while down. Recoveries counts cold restarts.
	DownDrops  uint64
	Recoveries uint64
	// Batch stats: Batches counts drainer runs, BatchedReqs the requests
	// they served (mean burst = BatchedReqs/Batches), MaxBatch the largest
	// single burst — the observable for "adaptive sizing engaged".
	Batches     uint64
	BatchedReqs uint64
	MaxBatch    int
}

// batchedReq is one request parked in the batched datapath's software RX
// ring, carrying the identity peeked at arrival and the arrival time so the
// drainer can account its true queue wait, plus the requester's fabric
// address so the reply goes back through the right switch port.
type batchedReq struct {
	p      *mem.Buf
	tid    uint64
	traced bool
	enq    sim.Time
	src    byte
}

// NewKVServer attaches a KV server to the node's stack: UDP normally, or
// the TCP-lite stack when the node was built with one (the fault-injection
// soak drives the KV workload over lossy TCP links).
func NewKVServer(n *Node, sys System) *KVServer {
	s := &KVServer{N: n, Store: kvstore.New(n.Alloc, n.Meter), Sys: sys}
	if n.TCP != nil {
		n.TCP.SetRecvHandler(s.onPayload)
	} else {
		n.UDP.SetRecvHandler(s.onPayload)
	}
	return s
}

// NewSegmentedKVServer attaches a KV server whose requests and responses
// travel through the segmentation layer: responses of any size are
// supported, so e.g. a whole CDN object ships in one exchange instead of
// one request per jumbo-frame sub-object.
func NewSegmentedKVServer(n *Node, sys System) *KVServer {
	s := &KVServer{N: n, Store: kvstore.New(n.Alloc, n.Meter), Sys: sys}
	s.Seg = netstack.NewSegmenter(n.UDP)
	s.Seg.SetRecvHandler(s.onPayload)
	return s
}

// Preload loads records into the store and clears measurement state so
// preloading work is not billed to any request.
//
// Allocation is interleaved across records segment-by-segment so that the
// buffers of one multi-segment value are non-contiguous in memory — the
// paper's store is explicit that "individual values are allocated
// non-contiguously" (§5.1), and contiguity would let the prefetcher make
// both copies and refcount walks unrealistically cheap.
func (s *KVServer) Preload(recs []workloads.KV) {
	maxSegs := 0
	for _, r := range recs {
		if len(r.Vals) > maxSegs {
			maxSegs = len(r.Vals)
		}
	}
	bufs := make([][]*mem.Buf, len(recs))
	for seg := 0; seg < maxSegs; seg++ {
		for i := range recs {
			if seg >= len(recs[i].Vals) || len(recs[i].Vals[seg]) == 0 {
				continue
			}
			v := recs[i].Vals[seg]
			b := s.N.Alloc.Alloc(len(v))
			copy(b.Bytes(), v)
			bufs[i] = append(bufs[i], b)
		}
	}
	for i, r := range recs {
		s.Store.PutBuf(r.Key, bufs[i]...)
	}
	s.N.Meter.Drain()
	s.N.Meter.TakeReceipt()
}

// Deliver injects a request payload directly (used by the multi-core
// dispatcher, which performs its own RX handling).
func (s *KVServer) Deliver(p *mem.Buf) { s.onPayload(p) }

// EnableBatching turns on the batched RX/TX datapath with the given burst
// cap and tells the UDP stack to split its RX charge accordingly. A cap of
// 1 (or less) selects the legacy unbatched path — that is the adaptive
// floor, and the determinism gate relies on it being bit-identical.
func (s *KVServer) EnableBatching(maxBurst int) {
	s.MaxBurst = maxBurst
	if s.N.UDP != nil {
		s.N.UDP.RxBatched = s.batched()
	}
}

// batched reports whether the batched datapath is active. TCP and
// segmented servers always use the legacy path: their replies flow through
// connection state the TX batch bracket does not cover.
func (s *KVServer) batched() bool {
	return s.MaxBurst >= 2 && s.N.TCP == nil && s.Seg == nil
}

// Crash kills the node: the netstack starts discarding arriving frames
// (counted there in RxDownDrops) and every request parked in the software
// RX ring dies with the process — dropped with exact accounting, never
// served. A job already executing on the core at the crash instant
// completes (the model's jobs are atomic units of service); queued core
// jobs that fire while down are discarded by the Down check in their Run.
func (s *KVServer) Crash() {
	s.Down = true
	if s.N.UDP != nil {
		s.N.UDP.Down = true
	}
	for i := range s.rxq {
		s.DownDrops++
		s.rxq[i].p.DecRef()
		s.rxq[i] = batchedReq{}
	}
	s.rxq = s.rxq[:0]
}

// Recover restarts the node cold: the netstack accepts frames again and
// the cache-hierarchy state is flushed — a rebooted machine has no warm
// lines, so post-recovery requests pay cold-cache service costs until the
// working set re-warms. The store itself survives (modelling durable or
// replicated data); what a crash loses is in-flight work and cache heat.
func (s *KVServer) Recover() {
	s.Down = false
	if s.N.UDP != nil {
		s.N.UDP.Down = false
	}
	s.N.Cache.Flush()
	s.Recoveries++
}

// SetGray sets the gray-failure service-time multiplier; k ≤ 1 restores
// healthy service.
func (s *KVServer) SetGray(slowdown float64) {
	if slowdown <= 1 {
		s.Slowdown = 0
		return
	}
	s.Slowdown = slowdown
}

// hostTime deducts the offloaded serialization share from one request's
// drained service time (a no-op unless OffloadSer is set). It must run on
// the drain taken right after handle, while lastSerCy still describes that
// request's receipt; the deduction is clamped so frame-delivery work folded
// into the same drain can never go negative.
func (s *KVServer) hostTime(d sim.Time) sim.Time {
	if !s.OffloadSer {
		return d
	}
	off := s.N.Meter.CPU.Cycles(s.lastSerCy)
	s.lastSerCy = 0
	if off > d {
		off = d
	}
	s.OffloadedTime += off
	return d - off
}

// scaled applies the gray-failure multiplier to one service time.
func (s *KVServer) scaled(d sim.Time) sim.Time {
	if s.Slowdown > 1 {
		return sim.Time(float64(d) * s.Slowdown)
	}
	return d
}

// PendingDepth is the server's total request backlog: the batched path's
// software RX ring plus the core's own queue. On the unbatched path the
// ring is always empty, so this equals Core.QueueLen — admission control
// and the queue-depth gauge use it so both datapaths shed and report on
// the same signal.
func (s *KVServer) PendingDepth() int { return len(s.rxq) + s.N.Core.QueueLen() }

func (s *KVServer) onPayload(p *mem.Buf) {
	// Capture the requester's fabric address now: by the time the core job
	// runs (or the drainer reaches the request), later frames will have
	// overwritten the stack's RxSrc. Zero outside a fabric topology.
	var src byte
	if s.N.UDP != nil {
		src = s.N.UDP.RxSrc
	}
	if (s.ShedQueue > 0 && s.PendingDepth() >= s.ShedQueue) ||
		(s.ShedWater > 0 && s.N.Alloc.Occupancy() >= s.ShedWater) {
		s.setReplyAddr(src)
		s.shed(p)
		return
	}
	// Peek the request id once (unmetered — tracing is observability, not
	// modelled work) so the dispatch mark and the receipt can be attributed
	// to the owning flow.
	var tid uint64
	traced := false
	if s.Trace != nil {
		tid, traced = s.reqID(p.Bytes())
	}
	if s.batched() {
		s.enqueue(p, tid, traced, src)
		return
	}
	ok := s.N.Core.Submit(sim.Job{
		Start: func(enqueuedAt sim.Time) {
			if traced {
				s.Trace.Mark(tid, s.N.Eng.Now(), trace.PhaseHandle)
			}
		},
		Run: func() sim.Time {
			if s.Down {
				// The node crashed after this request was queued: the work
				// dies with the process, costing no (dead) CPU.
				s.DownDrops++
				p.DecRef()
				return 0
			}
			s.setReplyAddr(src)
			s.handle(p, tid, traced)
			return s.scaled(s.hostTime(s.N.Meter.DrainTime()))
		},
	})
	if !ok {
		if traced {
			s.Trace.Note(tid, "request dropped: rx ring overflow")
		}
		p.DecRef() // RX ring overflow: drop
	}
}

// enqueue parks a request in the software RX ring and makes sure a drainer
// job is pending. The ring honours the same bound as the core queue
// (Core.MaxQueue — the RX descriptor ring depth), with overflow counted in
// the same Dropped stat.
func (s *KVServer) enqueue(p *mem.Buf, tid uint64, traced bool, src byte) {
	c := s.N.Core
	if c.MaxQueue > 0 && len(s.rxq) >= c.MaxQueue {
		c.NoteDrop()
		if traced {
			s.Trace.Note(tid, "request dropped: rx ring overflow")
		}
		p.DecRef()
		return
	}
	s.rxq = append(s.rxq, batchedReq{p: p, tid: tid, traced: traced, enq: s.N.Eng.Now(), src: src})
	s.armDrainer()
}

// setReplyAddr points the stack's next sends at the requester's fabric
// address. Outside a fabric topology src is always zero, leaving the
// header bytes exactly as single-link testbeds always wrote them.
func (s *KVServer) setReplyAddr(src byte) {
	if s.N.UDP != nil {
		s.N.UDP.DstAddr = src
	}
}

// armDrainer submits one drainer job unless one is already pending. The
// job carries ExternalWait: the drainer accounts each request's wait
// itself, because the job-level wait describes the drainer, not the
// requests it will serve.
func (s *KVServer) armDrainer() {
	if s.drainerArmed {
		return
	}
	s.drainerArmed = true
	if !s.N.Core.Submit(sim.Job{ExternalWait: true, Run: s.drain}) {
		s.drainerArmed = false // queue bound hit; the backlog re-arms on next arrival
	}
}

// drain is one batched core job: it serves min(backlog, MaxBurst) requests
// back to back, bracketing their replies in a TX batch flushed at the end,
// and returns the summed service time. Per-request accounting is kept
// exact: request i's queue wait is its time in the ring plus the service
// of the i−1 batch members ahead of it (AccountWait), and each request's
// receipt is taken by handle as usual — the flush's doorbell cycles land
// in the drain total so the core stays busy for every cycle charged.
func (s *KVServer) drain() sim.Time {
	s.drainerArmed = false
	b := len(s.rxq)
	if b > s.MaxBurst {
		b = s.MaxBurst
	}
	if b == 0 {
		return 0
	}
	m := s.N.Meter
	t0 := s.N.Eng.Now()
	// One poll-loop iteration for the whole burst: the share onFrame
	// withheld per frame (RxBatched).
	m.Charge(m.CPU.RxPollCy)
	flush := b > 1
	if flush {
		s.N.UDP.BeginTxBatch()
	}
	var total, cum sim.Time
	for i := 0; i < b; i++ {
		r := s.rxq[i]
		s.N.Core.AccountWait(t0 - r.enq + cum)
		if r.traced {
			s.Trace.Mark(r.tid, t0, trace.PhaseHandle)
			if flush {
				s.Trace.Note(r.tid, fmt.Sprintf("batched: burst=%d pos=%d", b, i))
			}
		}
		// Reply headers are written at send time inside handle, so pointing
		// the stack at this request's source here is sufficient even though
		// the TX batch flushes after the burst.
		s.setReplyAddr(r.src)
		s.handle(r.p, r.tid, r.traced)
		d := s.scaled(s.hostTime(m.DrainTime()))
		cum += d
		total += d
	}
	// Shift the served requests out, zeroing the tail so the backing array
	// does not pin buffers.
	n := copy(s.rxq, s.rxq[b:])
	for i := n; i < len(s.rxq); i++ {
		s.rxq[i] = batchedReq{}
	}
	s.rxq = s.rxq[:n]
	if flush {
		prev := m.SetCategory(costmodel.CatTx)
		if err := s.N.UDP.FlushTx(); err != nil {
			s.Errors++
		}
		m.SetCategory(prev)
		total += s.scaled(m.DrainTime())
	}
	s.Batches++
	s.BatchedReqs += uint64(b)
	if b > s.MaxBatch {
		s.MaxBatch = b
	}
	if len(s.rxq) > 0 {
		s.armDrainer()
	}
	return total
}

// reqID peeks the request id out of a framed request payload without a
// full (metered) deserialization — just enough to address a shed reply.
func (s *KVServer) reqID(p []byte) (uint64, bool) {
	return peekRequestID(s.Sys, p)
}

// shed rejects a request with an explicit ShedReply. The check runs at
// frame-delivery time (before the request consumes a core slot), so the
// reply costs the server only the peek and a header-sized send — that is
// the point: shedding must stay cheap when the server cannot afford work.
func (s *KVServer) shed(p *mem.Buf) {
	defer p.DecRef()
	id, ok := s.reqID(p.Bytes())
	if !ok {
		// Unparseable request: no id to address, nothing to reply to.
		s.Shed++
		s.ShedReplyErrs++
		return
	}
	s.shedReplyTo(id)
}

// shedReplyTo sends the explicit rejection for a request id, counting it.
// Also used mid-handling when a put's allocation fails: the client gets a
// shed reply instead of a dropped request.
//
// The work is billed to CatShed: the fast path runs at frame-delivery time,
// when the meter still carries whatever category the previous request left
// active — without the explicit category, overload-regime breakdowns would
// smear shed cycles across unrelated buckets.
func (s *KVServer) shedReplyTo(id uint64) {
	m := s.N.Meter
	prev := m.SetCategory(costmodel.CatShed)
	defer m.SetCategory(prev)
	if s.Trace != nil {
		s.Trace.Mark(id, s.N.Eng.Now(), trace.PhaseShed)
	}
	s.Shed++
	reply := ShedReply(id)
	sim := mem.UnpinnedSimAddr(reply)
	var err error
	switch {
	case s.Seg != nil:
		err = s.Seg.SendContiguous(reply, sim)
	case s.N.TCP != nil:
		err = s.N.TCP.SendContiguous(reply, sim)
	default:
		// The UDP fast path: prebuilt reply, batched posting. Shedding has
		// to cost far less than serving or it cannot relieve the core.
		err = s.N.UDP.SendPrebuilt(reply, sim)
	}
	if err != nil {
		s.ShedReplyErrs++
	}
}

// handle serves one request at its dispatch instant. tid/traced carry the
// request id peeked at submit time, so the receipt can be attributed to the
// owning flow (Run executes synchronously at dispatch, so Now() inside the
// deferred block is still the dispatch instant the service spans tile
// from).
func (s *KVServer) handle(p *mem.Buf, tid uint64, traced bool) {
	m := s.N.Meter
	s.Handled++
	fb0 := s.N.Ctx.Fallbacks
	defer func() {
		// Mass-free the per-request copied vectors (§3.2.2) and attribute
		// inter-request work (completions, next RX) to the rx bucket.
		s.N.Arena.Reset()
		rec := m.TakeReceipt()
		s.lastSerCy = rec.Cycles[costmodel.CatSerialize] + rec.Cycles[costmodel.CatDeserialize]
		if s.OnReceipt != nil {
			s.OnReceipt(rec)
		}
		if s.Trace != nil {
			if traced {
				if fb := s.N.Ctx.Fallbacks - fb0; fb > 0 {
					s.Trace.Note(tid, fmt.Sprintf("copy fallback: %d field(s) demoted under pressure", fb))
				}
				s.Trace.ServiceReceipt(tid, s.N.Eng.Now(), rec)
			} else {
				s.Trace.AggregateOnly(rec)
			}
		}
		if s.Adaptive != nil {
			s.Adaptive.Observe()
		}
		m.SetCategory(costmodel.CatRx)
	}()
	if p.Len() < 2 {
		s.Errors++
		p.DecRef()
		return
	}
	op := p.Bytes()[0]
	if s.Sys == SysCornflakes {
		body := p.SubView(1, p.Len()-1)
		p.DecRef()
		s.handleCF(op, body)
		return
	}
	s.handleDoc(op, p)
}

// sendObj transmits a Cornflakes object on the configured path. The
// segmentation and SG-array ablation paths are UDP-only; a TCP-attached
// server uses the connection's combined serialize-and-send.
func (s *KVServer) sendObj(obj core.Obj) {
	var err error
	switch {
	case s.Seg != nil:
		err = s.Seg.SendObjectSegmented(obj)
	case s.UseSGArray:
		err = s.N.UDP.SendObjectViaSGArray(obj)
	case s.N.TCP != nil:
		err = s.N.TCP.SendObject(obj)
	default:
		err = s.N.UDP.SendObject(obj)
	}
	if err != nil {
		s.Errors++
	}
}

func (s *KVServer) handleCF(op byte, body *mem.Buf) {
	m := s.N.Meter
	ctx := s.N.Ctx
	m.SetCategory(costmodel.CatDeserialize)
	switch op {
	case OpByteGet:
		req, err := msgs.DeserializeGetReq(ctx, body)
		if err != nil {
			s.Errors++
			body.DecRef()
			return
		}
		m.SetCategory(costmodel.CatApp)
		val := s.Store.Get(req.Key())
		m.SetCategory(costmodel.CatSerialize)
		resp := msgs.NewGetResp(ctx)
		resp.SetId(req.Id())
		if val != nil {
			resp.SetVal(ctx.NewCFPtr(val.Bytes()))
		}
		s.sendObj(resp.Obj())
		m.SetCategory(costmodel.CatTx)
		resp.Release()
		req.Release()

	case OpByteGetM:
		req, err := msgs.DeserializeGetM(ctx, body)
		if err != nil {
			s.Errors++
			body.DecRef()
			return
		}
		resp := msgs.NewGetM(ctx)
		resp.SetId(req.Id())
		n := req.KeysLen()
		for j := 0; j < n; j++ {
			m.SetCategory(costmodel.CatApp)
			val := s.Store.Get(req.Keys(j))
			m.SetCategory(costmodel.CatSerialize)
			if val != nil {
				resp.AppendVals(ctx.NewCFPtr(val.Bytes()))
			}
		}
		m.SetCategory(costmodel.CatSerialize)
		s.sendObj(resp.Obj())
		m.SetCategory(costmodel.CatTx)
		resp.Release()
		req.Release()

	case OpByteGetList:
		req, err := msgs.DeserializeGetListReq(ctx, body)
		if err != nil {
			s.Errors++
			body.DecRef()
			return
		}
		m.SetCategory(costmodel.CatApp)
		vals := s.Store.GetList(req.Key())
		m.SetCategory(costmodel.CatSerialize)
		resp := msgs.NewGetListResp(ctx)
		resp.SetId(req.Id())
		for _, v := range vals {
			resp.AppendVals(ctx.NewCFPtr(v.Bytes()))
		}
		s.sendObj(resp.Obj())
		m.SetCategory(costmodel.CatTx)
		resp.Release()
		req.Release()

	case OpByteGetIndex:
		req, err := msgs.DeserializeGetListReq(ctx, body)
		if err != nil {
			s.Errors++
			body.DecRef()
			return
		}
		m.SetCategory(costmodel.CatApp)
		val := s.Store.GetIndex(req.Key(), int(req.Index()))
		m.SetCategory(costmodel.CatSerialize)
		resp := msgs.NewGetResp(ctx)
		resp.SetId(req.Id())
		if val != nil {
			resp.SetVal(ctx.NewCFPtr(val.Bytes()))
		}
		s.sendObj(resp.Obj())
		m.SetCategory(costmodel.CatTx)
		resp.Release()
		req.Release()

	case OpBytePut:
		req, err := msgs.DeserializePutReq(ctx, body)
		if err != nil {
			s.Errors++
			body.DecRef()
			return
		}
		m.SetCategory(costmodel.CatApp)
		if err := s.Store.TryPut(req.Key(), req.Val()); err != nil {
			// Pinned pool full: the store is unchanged; tell the client
			// explicitly instead of dropping the request.
			m.SetCategory(costmodel.CatTx)
			s.shedReplyTo(req.Id())
			req.Release()
			return
		}
		m.SetCategory(costmodel.CatSerialize)
		resp := msgs.NewPutResp(ctx)
		resp.SetId(req.Id())
		resp.SetOk(1)
		s.sendObj(resp.Obj())
		m.SetCategory(costmodel.CatTx)
		resp.Release()
		req.Release()

	default:
		s.Errors++
		body.DecRef()
	}
}

// reqSchema maps an op byte to its request schema.
func reqSchema(op byte) *core.Schema {
	switch op {
	case OpByteGet:
		return msgs.GetReqSchema
	case OpByteGetM:
		return msgs.GetMSchema
	case OpByteGetList, OpByteGetIndex:
		return msgs.GetListReqSchema
	case OpBytePut:
		return msgs.PutReqSchema
	}
	return nil
}

func (s *KVServer) decodeDoc(schema *core.Schema, data []byte, sim uint64) (*baselines.Doc, error) {
	m := s.N.Meter
	switch s.Sys {
	case SysProtobuf:
		return baselines.ProtoUnmarshal(schema, data, sim, m)
	case SysFlatBuffers:
		return baselines.FBDecode(schema, data, sim, m)
	default:
		return baselines.CapnpDecode(schema, data, sim, m)
	}
}

func (s *KVServer) sendDoc(d *baselines.Doc) {
	m := s.N.Meter
	var err error
	switch s.Sys {
	case SysProtobuf:
		// Protobuf serializes from its structs directly into DMA-safe
		// memory (§6.1.3): one copy of field data.
		size := baselines.ProtoSize(d, m)
		err = s.N.UDP.SendWith(size, func(dst []byte, dstSim uint64) int {
			return baselines.ProtoMarshal(d, dst, dstSim, m)
		})
	case SysFlatBuffers:
		buf, bufSim := baselines.FBBuildSim(d, m)
		err = s.N.UDP.SendContiguous(buf, bufSim)
	default:
		cm := baselines.CapnpBuild(d, m)
		segs, sims := baselines.CapnpFlatten(cm)
		err = s.N.UDP.SendSegments(segs, sims)
	}
	if err != nil {
		s.Errors++
	}
}

// docBytes safely extracts a scalar bytes field from a decoded request.
func docBytes(d *baselines.Doc, i int) []byte {
	if i < len(d.F) && len(d.F[i].B) > 0 {
		return d.F[i].B[0]
	}
	return nil
}

func (s *KVServer) handleDoc(op byte, p *mem.Buf) {
	m := s.N.Meter
	defer p.DecRef()
	data := p.Bytes()[1:]
	sim := p.SimAddr() + 1
	schema := reqSchema(op)
	if schema == nil {
		s.Errors++
		return
	}
	m.SetCategory(costmodel.CatDeserialize)
	req, err := s.decodeDoc(schema, data, sim)
	if err != nil {
		s.Errors++
		return
	}
	id := req.F[0].I

	switch op {
	case OpByteGet:
		m.SetCategory(costmodel.CatApp)
		val := s.Store.Get(docBytes(req, 1))
		m.SetCategory(costmodel.CatSerialize)
		resp := baselines.NewDoc(msgs.GetRespSchema)
		resp.SetInt(0, id)
		if val != nil {
			resp.SetBytes(1, val.Bytes(), val.SimAddr())
		}
		s.sendDoc(resp)

	case OpByteGetM:
		resp := baselines.NewDoc(msgs.GetMSchema)
		resp.SetInt(0, id)
		for _, k := range req.F[1].B {
			m.SetCategory(costmodel.CatApp)
			val := s.Store.Get(k)
			m.SetCategory(costmodel.CatSerialize)
			if val != nil {
				resp.AddBytes(2, val.Bytes(), val.SimAddr())
			}
		}
		s.sendDoc(resp)

	case OpByteGetList:
		m.SetCategory(costmodel.CatApp)
		vals := s.Store.GetList(docBytes(req, 1))
		m.SetCategory(costmodel.CatSerialize)
		resp := baselines.NewDoc(msgs.GetListRespSchema)
		resp.SetInt(0, id)
		for _, v := range vals {
			resp.AddBytes(1, v.Bytes(), v.SimAddr())
		}
		s.sendDoc(resp)

	case OpByteGetIndex:
		m.SetCategory(costmodel.CatApp)
		val := s.Store.GetIndex(docBytes(req, 1), int(req.F[2].I))
		m.SetCategory(costmodel.CatSerialize)
		resp := baselines.NewDoc(msgs.GetRespSchema)
		resp.SetInt(0, id)
		if val != nil {
			resp.SetBytes(1, val.Bytes(), val.SimAddr())
		}
		s.sendDoc(resp)

	case OpBytePut:
		m.SetCategory(costmodel.CatApp)
		if err := s.Store.TryPut(docBytes(req, 1), docBytes(req, 2)); err != nil {
			m.SetCategory(costmodel.CatTx)
			s.shedReplyTo(id)
			return
		}
		m.SetCategory(costmodel.CatSerialize)
		resp := baselines.NewDoc(msgs.PutRespSchema)
		resp.SetInt(0, id)
		resp.SetInt(1, 1)
		s.sendDoc(resp)

	default:
		s.Errors++
	}
	m.SetCategory(costmodel.CatTx)
}
