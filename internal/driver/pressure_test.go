package driver

import (
	"bytes"
	"testing"

	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/nic"
	"cornflakes/internal/workloads"
)

// Regression pin for the pressure-aware copy fallback: when the server's
// pinned pool is nearly exhausted, a Cornflakes response that would have
// gone zero-copy must be demoted to copy encoding and still reach the
// client intact — pressure on the send path means a fallback, never a
// dropped reply.
func TestPressureFallsBackToCopyNotDrop(t *testing.T) {
	rec := workloads.KV{
		Key:  []byte("pressure-key"),
		Vals: [][]byte{bytes.Repeat([]byte{0xAB}, 1024)}, // ≥ threshold: zero-copy by default
	}

	run := func(pressured bool) (got []byte, zcEntries uint64, fallbacks uint64) {
		tb := NewTestbed(nic.MellanoxCX6())
		srv := NewKVServer(tb.Server, SysCornflakes)
		srv.Preload([]workloads.KV{rec})

		base := tb.Server.Alloc.Stats().SlotsInUse
		if pressured {
			// A pool with just enough headroom for the RX buffer and the
			// response's first TX buffer, already past the high-water mark
			// the moment any request is in flight.
			capSlots := base + 3
			tb.Server.Alloc.SetCap(capSlots)
			tb.Server.Ctx.HighWater = float64(base) / float64(capSlots)
		}

		client := NewKVClient(tb.Client, SysCornflakes)
		tb.Client.UDP.SetRecvHandler(func(p *mem.Buf) {
			defer p.DecRef()
			m, err := tb.Client.Ctx.DeserializeBytes(msgs.GetListRespSchema, p.Bytes())
			if err != nil {
				t.Errorf("pressured=%v: decode: %v", pressured, err)
				return
			}
			if m.ListLen(1) == 1 {
				got = append([]byte(nil), m.GetBytesElem(1, 0)...)
			}
		})
		payload := client.BuildStep(1, workloads.Request{
			Op: workloads.OpGetList, Keys: [][]byte{rec.Key},
		}, 0)
		tb.Client.UDP.SendContiguous(payload, mem.UnpinnedSimAddr(payload))
		tb.Eng.Run()
		return got, tb.Server.UDP.TxZCEntries, tb.Server.Ctx.Fallbacks
	}

	normal, zcNormal, fbNormal := run(false)
	if !bytes.Equal(normal, rec.Vals[0]) {
		t.Fatal("baseline: response value corrupted or missing")
	}
	if zcNormal == 0 || fbNormal != 0 {
		t.Fatalf("baseline should serve zero-copy without fallbacks (zc=%d fallbacks=%d)",
			zcNormal, fbNormal)
	}

	pressured, zcPressured, fbPressured := run(true)
	if !bytes.Equal(pressured, rec.Vals[0]) {
		t.Fatal("under pressure the reply was dropped or corrupted; want a copied reply")
	}
	if fbPressured == 0 {
		t.Error("no fallback recorded despite occupancy past the high-water mark")
	}
	if zcPressured != 0 {
		t.Errorf("%d zero-copy entries sent under pressure; all fields should be demoted to copies",
			zcPressured)
	}
}
