package driver

import (
	"testing"

	"cornflakes/internal/loadgen"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// runKVBatched is runKV with the batched datapath enabled at the given
// burst cap.
func runKVBatched(t *testing.T, burst int, rate float64) (loadgen.Result, *KVServer) {
	t.Helper()
	gen := workloads.NewYCSB(200, 1024, 1)
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewKVServer(tb.Server, SysCornflakes)
	srv.EnableBatching(burst)
	srv.Preload(gen.Records())
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: NewKVClient(tb.Client, SysCornflakes),
		RatePerS: rate, Warmup: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 42,
	})
	return res, srv
}

// TestBatchedEndToEnd: the batched datapath serves a mixed load correctly —
// every response intact, no server errors, no leaked batches.
func TestBatchedEndToEnd(t *testing.T) {
	res, srv := runKVBatched(t, 16, 100_000)
	if srv.Errors != 0 || res.BadResponses != 0 {
		t.Errorf("errors=%d bad=%d", srv.Errors, res.BadResponses)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if srv.Batches == 0 || srv.BatchedReqs != srv.Handled {
		t.Errorf("batch stats: batches=%d batchedReqs=%d handled=%d",
			srv.Batches, srv.BatchedReqs, srv.Handled)
	}
	if len(srv.rxq) != 0 {
		t.Errorf("%d requests stranded in the RX ring after drain", len(srv.rxq))
	}
}

// TestBatchedLowLoadParity: at low load the adaptive burst collapses to 1,
// so the batched datapath's latency must track the unbatched baseline
// closely (the ≤5% p99 budget the batching experiment enforces; here we
// pin the mechanism — bursts of one — plus a generous latency bound).
func TestBatchedLowLoadParity(t *testing.T) {
	const rate = 20_000 // ~2% of single-core capacity: no backlog forms
	base, _ := runKV(t, SysCornflakes, workloads.NewYCSB(200, 1024, 1), rate)
	res, srv := runKVBatched(t, 16, rate)
	if srv.MaxBatch > 2 {
		t.Errorf("MaxBatch = %d at low load, want bursts to collapse toward 1", srv.MaxBatch)
	}
	bp, rp := base.Latency.Quantile(0.99), res.Latency.Quantile(0.99)
	if rp > bp*105/100 {
		t.Errorf("low-load p99: batched %v vs unbatched %v (>5%% penalty)", rp, bp)
	}
}

// TestBatchedAdaptiveGrowsUnderLoad: past capacity the backlog drives the
// burst up toward the cap.
func TestBatchedAdaptiveGrowsUnderLoad(t *testing.T) {
	_, srv := runKVBatched(t, 16, 10_000_000) // far past single-core capacity
	if srv.MaxBatch < 8 {
		t.Errorf("MaxBatch = %d under heavy overload, want the burst to grow toward 16", srv.MaxBatch)
	}
	if srv.Batches == 0 || srv.BatchedReqs/srv.Batches < 2 {
		t.Errorf("mean burst %.1f under overload, want > 2",
			float64(srv.BatchedReqs)/float64(srv.Batches))
	}
}

// TestIntraBatchWaitAccounted pins the satellite-3 fix: when one drainer
// job serves several requests, requests 2..B wait not just for the batch
// dispatch but for the members ahead of them, and that wait must land in
// Core.QueueWait. The scenario is fully deterministic: the core is blocked
// by a dummy job while three requests arrive, then one burst serves all
// three.
func TestIntraBatchWaitAccounted(t *testing.T) {
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewKVServer(tb.Server, SysCornflakes)
	srv.EnableBatching(16)
	srv.Preload(workloads.NewYCSB(8, 256, 1).Records())

	// Block the core from t=1µs for 10µs.
	block := 10 * sim.Microsecond
	tb.Eng.At(1*sim.Microsecond, func() {
		tb.Server.Core.Submit(sim.Job{Run: func() sim.Time { return block }})
	})
	// Three requests arrive while the core is blocked. Deliver injects at
	// the server directly, so arrival instants are exact.
	cl := NewKVClient(tb.Client, SysCornflakes)
	key := workloads.NewYCSB(8, 256, 1).Records()[0].Key
	mkReq := func() *mem.Buf {
		req := cl.BuildStep(7, workloads.Request{Op: workloads.OpGet, Keys: [][]byte{key}}, 0)
		b := tb.Server.Alloc.Alloc(len(req))
		copy(b.Bytes(), req)
		return b
	}
	var enq []sim.Time
	for _, at := range []sim.Time{2 * sim.Microsecond, 3 * sim.Microsecond, 4 * sim.Microsecond} {
		at := at
		tb.Eng.At(at, func() {
			srv.Deliver(mkReq())
			enq = append(enq, at)
		})
	}
	tb.Eng.Run()

	if srv.Handled != 3 {
		t.Fatalf("handled %d requests, want 3", srv.Handled)
	}
	if srv.Batches != 1 || srv.MaxBatch != 3 {
		t.Fatalf("batches=%d maxBatch=%d, want one burst of 3", srv.Batches, srv.MaxBatch)
	}
	// Dispatch happens when the blocking job finishes at t=11µs. The
	// dispatch-only wait (what the pre-fix accounting would record at best)
	// is Σ(t0 − enq_i); the intra-batch fix adds the service of the members
	// ahead of each request, so QueueWait must strictly exceed it.
	t0 := 11 * sim.Microsecond
	dispatchOnly := sim.Time(0)
	for _, e := range enq {
		dispatchOnly += t0 - e
	}
	got := tb.Server.Core.QueueWait
	if got <= dispatchOnly {
		t.Errorf("QueueWait = %v, want > %v (dispatch-only): intra-batch waits missing", got, dispatchOnly)
	}
	if tb.Server.Core.MaxQueueWait < t0-enq[0] {
		t.Errorf("MaxQueueWait = %v, want ≥ first request's dispatch wait %v",
			tb.Server.Core.MaxQueueWait, t0-enq[0])
	}
}
