package driver

import (
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// The §7 dynamic-threshold extension, end to end: a badly misconfigured
// threshold self-corrects toward the measured crossover while the server
// serves real traffic.
func TestAdaptiveThresholdSelfCorrects(t *testing.T) {
	run := func(startThreshold, keys, l3 int) int {
		cfg := cachesim.DefaultConfig()
		cfg.L3.Size = l3
		gen := workloads.NewYCSB(keys, 512, 2)
		tb := NewTestbedCfg(nic.MellanoxCX6(), cfg)
		srv := NewKVServer(tb.Server, SysCornflakes)
		tb.Server.Ctx.Threshold = startThreshold
		srv.Adaptive = core.NewAdaptiveThreshold(tb.Server.Ctx)
		srv.Preload(gen.Records())
		res := loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: gen, Client: NewKVClient(tb.Client, SysCornflakes),
			RatePerS: 300_000, Warmup: sim.Millisecond, Measure: 15 * sim.Millisecond, Seed: 6,
		})
		if srv.Errors != 0 || res.BadResponses != 0 {
			t.Fatalf("errors during adaptive run: %d/%d", srv.Errors, res.BadResponses)
		}
		return tb.Server.Ctx.Threshold
	}

	// Cold store, threshold starts far too low: must rise substantially.
	coldFinal := run(64, 16_000, 512<<10)
	if coldFinal < 200 {
		t.Errorf("cold-store threshold stayed at %d, want risen toward ~512", coldFinal)
	}
	// Warm store, threshold starts far too high: must fall substantially.
	warmFinal := run(4096, 400, 16<<20)
	if warmFinal > 1500 {
		t.Errorf("warm-store threshold stayed at %d, want fallen toward ~512", warmFinal)
	}
}

func TestAdaptiveStaysDisabledByDefault(t *testing.T) {
	gen := workloads.NewYCSB(200, 512, 1)
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewKVServer(tb.Server, SysCornflakes)
	srv.Preload(gen.Records())
	before := tb.Server.Ctx.Threshold
	loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: NewKVClient(tb.Client, SysCornflakes),
		RatePerS: 100_000, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 6,
	})
	if tb.Server.Ctx.Threshold != before {
		t.Error("threshold moved without an adaptive controller attached")
	}
}
