package driver

import (
	"bytes"
	"fmt"
	"testing"

	"cornflakes/internal/baselines"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// Cross-system consistency: the same store queried through every
// serialization system must return byte-identical values. This pins the
// whole functional layer — request encoding, server dispatch, response
// serialization, client decode — across all four wire formats.
func TestAllSystemsReturnIdenticalData(t *testing.T) {
	// Fixed records with distinctive contents.
	var recs []workloads.KV
	for i := 0; i < 8; i++ {
		recs = append(recs, workloads.KV{
			Key: []byte(fmt.Sprintf("ckey-%02d", i)),
			Vals: [][]byte{
				bytes.Repeat([]byte{byte(i + 1)}, 300+i*137),
				bytes.Repeat([]byte{byte(0xA0 + i)}, 900+i*53),
			},
		})
	}

	fetch := func(sys System, key []byte) [][]byte {
		tb := NewTestbed(nic.MellanoxCX6())
		srv := NewKVServer(tb.Server, sys)
		srv.Preload(recs)
		client := NewKVClient(tb.Client, sys)
		var vals [][]byte
		tb.Client.UDP.SetRecvHandler(func(p *mem.Buf) {
			defer p.DecRef()
			switch sys {
			case SysCornflakes:
				m, err := tb.Client.Ctx.DeserializeBytes(msgs.GetListRespSchema, p.Bytes())
				if err != nil {
					t.Errorf("%s: decode: %v", sys, err)
					return
				}
				for j := 0; j < m.ListLen(1); j++ {
					vals = append(vals, append([]byte(nil), m.GetBytesElem(1, j)...))
				}
			case SysProtobuf:
				d, err := baselines.ProtoUnmarshal(msgs.GetListRespSchema, p.Bytes(), 0, tb.Client.Meter)
				if err != nil {
					t.Errorf("%s: decode: %v", sys, err)
					return
				}
				for _, b := range d.F[1].B {
					vals = append(vals, append([]byte(nil), b...))
				}
			case SysFlatBuffers:
				d, err := baselines.FBDecode(msgs.GetListRespSchema, p.Bytes(), 0, tb.Client.Meter)
				if err != nil {
					t.Errorf("%s: decode: %v", sys, err)
					return
				}
				for _, b := range d.F[1].B {
					vals = append(vals, append([]byte(nil), b...))
				}
			default:
				d, err := baselines.CapnpDecode(msgs.GetListRespSchema, p.Bytes(), 0, tb.Client.Meter)
				if err != nil {
					t.Errorf("%s: decode: %v", sys, err)
					return
				}
				for _, b := range d.F[1].B {
					vals = append(vals, append([]byte(nil), b...))
				}
			}
		})
		payload := client.BuildStep(1, workloads.Request{
			Op: workloads.OpGetList, Keys: [][]byte{key},
		}, 0)
		tb.Client.UDP.SendContiguous(payload, mem.UnpinnedSimAddr(payload))
		tb.Eng.Run()
		return vals
	}

	for _, rec := range recs {
		reference := fetch(SysCornflakes, rec.Key)
		if len(reference) != len(rec.Vals) {
			t.Fatalf("cornflakes returned %d values for %s, want %d", len(reference), rec.Key, len(rec.Vals))
		}
		for j := range rec.Vals {
			if !bytes.Equal(reference[j], rec.Vals[j]) {
				t.Fatalf("cornflakes value %d of %s differs from stored data", j, rec.Key)
			}
		}
		for _, sys := range []System{SysProtobuf, SysFlatBuffers, SysCapnProto} {
			got := fetch(sys, rec.Key)
			if len(got) != len(reference) {
				t.Fatalf("%s returned %d values for %s, want %d", sys, len(got), rec.Key, len(reference))
			}
			for j := range reference {
				if !bytes.Equal(got[j], reference[j]) {
					t.Fatalf("%s value %d of %s differs from cornflakes", sys, j, rec.Key)
				}
			}
		}
	}
}

// The Figure 11 receipt plumbing: per-request receipts must cover all the
// work (sum over receipts ≈ core busy time).
func TestReceiptsAccountForBusyTime(t *testing.T) {
	gen := workloads.NewYCSB(200, 1024, 2)
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewKVServer(tb.Server, SysCornflakes)
	var totalCy float64
	srv.OnReceipt = func(r costmodel.Receipt) { totalCy += r.Total() }
	srv.Preload(gen.Records())
	loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: NewKVClient(tb.Client, SysCornflakes),
		RatePerS: 50_000, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 8,
	})
	busyCy := tb.Server.Core.BusyTime.Nanoseconds() * tb.Server.Meter.CPU.FreqGHz
	if totalCy == 0 || busyCy == 0 {
		t.Fatal("no work recorded")
	}
	ratio := totalCy / busyCy
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("receipts cover %.2fx of core busy time, want ~1.0", ratio)
	}
}

// Adaptive + segmented + COW combined smoke: the extensions compose.
func TestExtensionsCompose(t *testing.T) {
	tb := NewTestbed(nic.MellanoxCX6())
	ctx := tb.Server.Ctx
	cow := ctx.NewCOWPtr(bytes.Repeat([]byte{1}, 2048))
	m := core.NewMessage(msgs.GetRespSchema, ctx)
	m.SetInt(0, 1)
	m.SetBytes(1, cow.Ptr())
	cow.Update(bytes.Repeat([]byte{2}, 2048))
	if err := tb.Server.UDP.SendObject(m); err != nil {
		t.Fatal(err)
	}
	var got []byte
	tb.Client.UDP.SetRecvHandler(func(p *mem.Buf) {
		msg, err := tb.Client.Ctx.DeserializeBytes(msgs.GetRespSchema, p.Bytes())
		if err == nil {
			got = append([]byte(nil), msg.GetBytes(1)...)
		}
		p.DecRef()
	})
	tb.Eng.Run()
	if len(got) != 2048 || got[0] != 1 {
		t.Error("COW snapshot not preserved through send")
	}
	m.Release()
	cow.Release()
}
