package driver

import (
	"cornflakes/internal/cachesim"
	"cornflakes/internal/fabric"
	"cornflakes/internal/faults"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// The chaos layer drives the topology through these interfaces; keep the
// implementations honest at compile time.
var (
	_ faults.FaultNode = (*KVServer)(nil)
	_ faults.PortAdmin = (*fabric.Switch)(nil)
)

// ClusterTestbed is the topology composer behind the cluster experiments:
// N sharded KV servers and M load-generator clients on one Rack. It
// generalizes Testbed's back-to-back pair to the rack the paper's
// "millions of users" deployments actually run in; the switch plumbing,
// node construction, and frame ledger live on the embedded Rack so other
// scenario families (RPC chains, cache tiers) compose the same way.
type ClusterTestbed struct {
	*Rack
	// Servers[i] is the KV shard reachable at ServerAddrs[i].
	Servers     []*KVServer
	ServerAddrs []byte
	// Clients[i] is a load-generator endpoint at ClientAddrs[i].
	Clients     []*Node
	ClientAddrs []byte
	// Ring maps keys to server indexes; clients and Preload share it, so
	// routing and placement always agree.
	Ring *loadgen.Ring
}

// NewClusterTestbed builds the topology: nServers KV shards (with the
// given serialization system and cache config) and nClients generator
// endpoints behind one switch. A zero fabric.Config takes the defaults
// (100 Gbps ToR ports, 300 ns switching latency, 256-frame output queues).
// Servers plug in before clients, so shard fabric addresses stay 1..n.
func NewClusterTestbed(nServers, nClients int, sys System, profile nic.Profile, cacheCfg cachesim.Config, fcfg fabric.Config) *ClusterTestbed {
	return NewClusterTestbedOn(NewRack(fcfg), nServers, nClients, sys, profile, cacheCfg)
}

// NewClusterTestbedOn builds the same topology on a caller-provided empty
// rack — the seam the parallel-in-time mode enters through: pass
// NewRackPartitioned(fcfg) and every shard server and client lands on its
// own event-queue partition, with identical construction order (and hence
// identical fingerprints) to the serial build.
func NewClusterTestbedOn(r *Rack, nServers, nClients int, sys System, profile nic.Profile, cacheCfg cachesim.Config) *ClusterTestbed {
	c := &ClusterTestbed{
		Rack: r,
		Ring: loadgen.NewRing(nServers, 0),
	}
	for i := 0; i < nServers; i++ {
		n, addr := c.AddNode(profile, cacheCfg)
		c.Servers = append(c.Servers, NewKVServer(n, sys))
		c.ServerAddrs = append(c.ServerAddrs, addr)
	}
	for i := 0; i < nClients; i++ {
		n, addr := c.AddNode(profile, cachesim.DefaultConfig())
		c.Clients = append(c.Clients, n)
		c.ClientAddrs = append(c.ClientAddrs, addr)
	}
	return c
}

// Preload partitions records across the shards by the ring, placing each
// record on its owner plus the next replicas-1 distinct shards clockwise
// (the same replica set ClusterKVClient's read spreading draws from).
// replicas ≤ 1 means primary-only placement.
func (c *ClusterTestbed) Preload(recs []workloads.KV, replicas int) {
	parts := make([][]workloads.KV, len(c.Servers))
	var scratch []int
	for _, rec := range recs {
		scratch = c.Ring.Replicas(scratch[:0], rec.Key, replicas)
		for _, s := range scratch {
			parts[s] = append(parts[s], rec)
		}
	}
	for i, srv := range c.Servers {
		srv.Preload(parts[i])
	}
}

// FaultNodes exposes the shards as the fault surface a
// faults.NodeFaultPlan drives: ScheduleNodePlan(eng, plan, tb.FaultNodes(),
// tb.Switch) arms a whole chaos scenario against this testbed.
func (c *ClusterTestbed) FaultNodes() []faults.FaultNode {
	nodes := make([]faults.FaultNode, len(c.Servers))
	for i, s := range c.Servers {
		nodes[i] = s
	}
	return nodes
}

// ServerEngines returns each shard server's engine, index-aligned with
// FaultNodes — faults.ScheduleNodePlanOn needs them so a partitioned run
// arms each node's crash/recovery/gray events on that node's own shard.
// On a serial testbed every entry is the rack engine.
func (c *ClusterTestbed) ServerEngines() []*sim.Engine {
	engs := make([]*sim.Engine, len(c.Servers))
	for i, s := range c.Servers {
		engs[i] = s.N.Eng
	}
	return engs
}

// NewClient builds the consistent-hash-routed client for client index i.
// replicas ≥ 2 enables R-way read spreading: reads rotate across the key's
// replica set (writes always go to the owner), which both spreads hot-key
// load and gives retries a different replica to try.
func (c *ClusterTestbed) NewClient(i int, sys System, replicas int) *ClusterKVClient {
	return &ClusterKVClient{
		Inner:  NewKVClient(c.Clients[i], sys),
		udp:    c.Clients[i].UDP,
		ring:   c.Ring,
		addrs:  c.ServerAddrs,
		R:      replicas,
		Routed: make([]uint64, len(c.Servers)),
	}
}

// ClusterKVClient wraps a KVClient with consistent-hash routing: building
// a request step aims the client's UDP stack at the owning shard's fabric
// address, so the frame the stack emits is addressed before it leaves.
// (The same side-effect-at-build-time idiom the multi-core dispatcher's
// shard tag uses, lifted from payload bytes to the packet header.)
type ClusterKVClient struct {
	Inner *KVClient
	udp   *netstack.UDP
	ring  *loadgen.Ring
	addrs []byte
	// R is the read-spread width: reads rotate over the key's R-replica
	// set. ≤ 1 routes everything to the owner.
	R int
	// Failover switches read routing from global round-robin spreading to
	// attempt-indexed replica selection: attempt k of a request goes to
	// replica (Ring.Rotation(key)+k) mod R, so a retry or hedge is
	// guaranteed a different replica than the attempt that failed —
	// timeouts rotate *away* from a dead or gray owner instead of
	// re-hitting it. Writes still always go to the owner.
	Failover bool
	// Routed counts steps routed to each server index.
	Routed []uint64

	attempt int
	spread  uint64
	scratch []int
}

// RouteAttempt implements loadgen.AttemptRouter: the generator announces
// the attempt index (0 = first try, +1 per retry or hedge) before each
// BuildStep, and failover routing folds it into the replica choice.
func (c *ClusterKVClient) RouteAttempt(attempt int) { c.attempt = attempt }

// Steps implements loadgen.Client.
func (c *ClusterKVClient) Steps(req workloads.Request) int { return c.Inner.Steps(req) }

// ResponseID implements loadgen.Client.
func (c *ClusterKVClient) ResponseID(p []byte) (uint64, error) { return c.Inner.ResponseID(p) }

// BuildStep routes the request and encodes it. Reads under R ≥ 2 rotate
// deterministically across the replica set, so a retry of a timed-out
// request can land on a different replica than the original attempt.
// Writes always hit the owner; spread replicas of a written key serve
// stale reads until re-placed (the read-spread sweeps are read-only).
func (c *ClusterKVClient) BuildStep(id uint64, req workloads.Request, step int) []byte {
	shard := 0
	if len(req.Keys) > 0 {
		r := c.R
		if r < 1 {
			r = 1
		}
		c.scratch = c.ring.Replicas(c.scratch[:0], req.Keys[0], r)
		pick := 0
		if len(c.scratch) > 1 && req.Op != workloads.OpPut {
			if c.Failover {
				// Attempt-indexed: all attempts of one request share the
				// key's rotation base, consecutive attempts land on distinct
				// replicas, and no cross-request counter is consumed — the
				// non-failover path below stays bit-identical when off.
				pick = int((c.ring.Rotation(req.Keys[0]) + uint64(c.attempt)) % uint64(len(c.scratch)))
			} else {
				pick = int(c.spread % uint64(len(c.scratch)))
				c.spread++
			}
		}
		shard = c.scratch[pick]
	}
	c.udp.DstAddr = c.addrs[shard]
	c.Routed[shard]++
	return c.Inner.BuildStep(id, req, step)
}
