package driver

import (
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/fabric"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// idRecordingClient wraps a loadgen.Client and records every wire id built.
type idRecordingClient struct {
	loadgen.Client
	ids []uint64
}

func (c *idRecordingClient) BuildStep(id uint64, req workloads.Request, step int) []byte {
	c.ids = append(c.ids, id)
	return c.Client.BuildStep(id, req, step)
}

func clusterGen(nKeys int) *workloads.YCSB {
	return workloads.NewYCSBTheta(nKeys, 256, 2, 0.3)
}

func clusterCfg(c *ClusterTestbed, i int, cl loadgen.Client, gen workloads.Generator, rate float64, seed uint64) loadgen.Config {
	return loadgen.Config{
		Eng: c.Eng, EP: c.Clients[i].UDP,
		Gen: gen, Client: cl,
		RatePerS: rate,
		Warmup:   sim.Millisecond / 2,
		Measure:  2 * sim.Millisecond,
		Seed:     seed + uint64(i),
		ClientID: uint64(i + 1),
		Retry: loadgen.RetryPolicy{
			Deadline: 150 * sim.Microsecond, MaxRetries: 2,
			Backoff: 20 * sim.Microsecond, MaxBackoff: 160 * sim.Microsecond,
		},
		ShedID: ShedID,
	}
}

// TestClusterEndToEnd drives 2 clients against 2 shards through the switch
// and checks routing, reply delivery, and exact per-client accounting.
func TestClusterEndToEnd(t *testing.T) {
	gen := clusterGen(300)
	c := NewClusterTestbed(2, 2, SysCornflakes, nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
	c.Preload(gen.Records(), 1)

	cfgs := make([]loadgen.Config, 2)
	clients := make([]*ClusterKVClient, 2)
	for i := range cfgs {
		clients[i] = c.NewClient(i, SysCornflakes, 1)
		cfgs[i] = clusterCfg(c, i, clients[i], gen, 40_000, 77)
	}
	results := loadgen.RunMany(cfgs)

	var handled uint64
	for _, srv := range c.Servers {
		handled += srv.Handled
	}
	if handled == 0 {
		t.Fatal("servers handled nothing")
	}
	for i, res := range results {
		if res.Completed == 0 {
			t.Errorf("client %d completed nothing", i)
		}
		if res.BadResponses != 0 {
			t.Errorf("client %d: %d bad responses — replies crossed clients", i, res.BadResponses)
		}
		if got := res.Completed + res.Shed + res.TimedOut + res.Unresolved; got != res.Sent {
			t.Errorf("client %d accounting: sent=%d resolved=%d", i, res.Sent, got)
		}
		if res.Unresolved != 0 {
			t.Errorf("client %d: %d unresolved with retry policy on", i, res.Unresolved)
		}
		// Both shards must have been exercised by each client (theta=0.3
		// over 300 keys cannot land on one shard only).
		for s, n := range clients[i].Routed {
			if n == 0 {
				t.Errorf("client %d never routed to shard %d", i, s)
			}
		}
	}
	if c.Switch.Misrouted() != 0 {
		t.Errorf("switch misrouted %d frames", c.Switch.Misrouted())
	}
	total := c.Switch.TotalStats()
	if total.InFrames == 0 || total.OutFrames == 0 {
		t.Error("no traffic crossed the switch")
	}
}

// TestClusterWireIDsDisjoint pins the satellite-1 fix: concurrent clients'
// wire ids live in disjoint ClientID<<48 spaces, so a reply or a trace
// attribution can never name two flows at once.
func TestClusterWireIDsDisjoint(t *testing.T) {
	gen := clusterGen(200)
	c := NewClusterTestbed(2, 2, SysCornflakes, nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
	c.Preload(gen.Records(), 1)

	recs := make([]*idRecordingClient, 2)
	cfgs := make([]loadgen.Config, 2)
	for i := range cfgs {
		recs[i] = &idRecordingClient{Client: c.NewClient(i, SysCornflakes, 1)}
		cfgs[i] = clusterCfg(c, i, recs[i], gen, 30_000, 99)
	}
	loadgen.RunMany(cfgs)

	seen := map[uint64]int{}
	for i, rc := range recs {
		if len(rc.ids) == 0 {
			t.Fatalf("client %d built no requests", i)
		}
		base := uint64(i+1) << 48
		for _, id := range rc.ids {
			if id>>48 != uint64(i+1) {
				t.Fatalf("client %d wire id %#x outside its space [%#x, %#x)", i, id, base, base+1<<48)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("wire id %#x used by both client %d and client %d", id, prev, i)
			}
			seen[id] = i
		}
	}
}

// clusterClientResults runs a fixed 2-shard workload with nClients plugged
// into the switch, where only the first two offer load; any further client
// is a silent port — present in the topology but never started. Returns
// the two active clients' results.
func clusterClientResults(t *testing.T, nClients int) []loadgen.Result {
	t.Helper()
	gen := clusterGen(250)
	c := NewClusterTestbed(2, nClients, SysCornflakes, nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
	c.Preload(gen.Records(), 1)
	cfgs := make([]loadgen.Config, 2)
	for i := range cfgs {
		// Past two shards' combined capacity: queues build, deadlines
		// fire, and the retry-jitter stream is genuinely exercised.
		cfgs[i] = clusterCfg(c, i, c.NewClient(i, SysCornflakes, 1), gen, 1_800_000, 55)
	}
	return loadgen.RunMany(cfgs)
}

// TestClusterTopologyGrowthStable pins satellites 1+3 end to end: plugging
// an extra (idle) client into the rack must not perturb the existing
// clients' ids, retry jitter, or anything else — their results stay
// bit-identical under topology growth.
func TestClusterTopologyGrowthStable(t *testing.T) {
	base := clusterClientResults(t, 2)
	grown := clusterClientResults(t, 3)
	for i := range base {
		a, b := base[i], grown[i]
		if a.Sent != b.Sent || a.Completed != b.Completed || a.Shed != b.Shed ||
			a.TimedOut != b.TimedOut || a.Retries != b.Retries ||
			a.LateResponses != b.LateResponses || a.P99() != b.P99() || a.P50() != b.P50() {
			t.Errorf("client %d result changed when an idle client joined:\n  2 clients: %+v\n  3 clients: %+v", i, a, b)
		}
		if a.Retries == 0 {
			t.Errorf("client %d saw no retries; the jitter stream went unexercised", i)
		}
		if a.Completed == 0 {
			t.Errorf("client %d completed nothing; overload is too deep to be meaningful", i)
		}
	}
}

// TestClusterReadSpread checks R-way read spreading: with replicas=2 a
// single hot key's reads split across two shards instead of one.
func TestClusterReadSpread(t *testing.T) {
	gen := clusterGen(100)
	c := NewClusterTestbed(4, 1, SysCornflakes, nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
	c.Preload(gen.Records(), 2)

	cl := c.NewClient(0, SysCornflakes, 2)
	hot := workloads.Request{Op: workloads.OpGetList, Keys: [][]byte{gen.Records()[0].Key}}
	for i := 0; i < 100; i++ {
		cl.BuildStep(uint64(i), hot, 0)
	}
	touched := 0
	for _, n := range cl.Routed {
		if n > 0 {
			touched++
		}
	}
	if touched != 2 {
		t.Errorf("hot key touched %d shards with R=2, want exactly 2 (routed=%v)", touched, cl.Routed)
	}
	// Writes must stay on the owner: a put of the same key routes one shard.
	put := workloads.Request{Op: workloads.OpPut, Keys: hot.Keys, Vals: [][]byte{{1}}}
	before := append([]uint64(nil), cl.Routed...)
	for i := 0; i < 10; i++ {
		cl.BuildStep(uint64(1000+i), put, 0)
	}
	putShards := 0
	for s, n := range cl.Routed {
		if n > before[s] {
			putShards++
			if s != c.Ring.Shard(hot.Keys[0]) {
				t.Errorf("put routed to non-owner shard %d", s)
			}
		}
	}
	if putShards != 1 {
		t.Errorf("puts touched %d shards, want 1", putShards)
	}
}
