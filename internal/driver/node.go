// Package driver composes the substrate into runnable client/server
// testbeds: per-node resource bundles (allocator, arena, cache, meter,
// stack, core), key-value servers and client codecs for Cornflakes and
// every baseline serializer, and echo servers for the §2 motivation and
// Figure 9 TCP experiments. The experiments package builds every table and
// figure from these pieces.
package driver

import (
	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
)

// System identifies a serialization system under test.
type System int

const (
	SysCornflakes System = iota
	SysProtobuf
	SysFlatBuffers
	SysCapnProto
)

func (s System) String() string {
	switch s {
	case SysCornflakes:
		return "Cornflakes"
	case SysProtobuf:
		return "Protobuf"
	case SysFlatBuffers:
		return "FlatBuffers"
	case SysCapnProto:
		return "Cap'n Proto"
	default:
		return "unknown"
	}
}

// AllSystems lists the four compared systems in the paper's table order.
func AllSystems() []System {
	return []System{SysCornflakes, SysProtobuf, SysFlatBuffers, SysCapnProto}
}

// Request op tags: one framing byte ahead of the serialized request names
// the operation, like an RPC method id.
const (
	OpByteGet byte = iota + 1
	OpByteGetM
	OpByteGetList
	OpByteGetIndex
	OpBytePut
)

// ShedByte marks an admission-control rejection: a 9-byte reply of
// ShedByte followed by the request id, little-endian. The marker is
// deliberately outside every serializer's valid leading byte (a Cornflakes
// response starts with a small LE word count, Protobuf with a field tag) so
// clients can classify shed replies before attempting deserialization. An
// explicit reply — rather than a silent drop — lets the client retry or
// give up immediately instead of burning its full timeout.
const ShedByte byte = 0xEE

// shedReplyLen is ShedByte + 8-byte id.
const shedReplyLen = 9

// ShedReply builds the rejection reply for a request id.
func ShedReply(id uint64) []byte {
	p := make([]byte, shedReplyLen)
	p[0] = ShedByte
	wire.PutU64(p[1:], id)
	return p
}

// ShedID reports whether p is a shed reply and, if so, the request id.
func ShedID(p []byte) (uint64, bool) {
	if len(p) != shedReplyLen || p[0] != ShedByte {
		return 0, false
	}
	return wire.GetU64(p[1:]), true
}

// Node bundles one machine's resources.
type Node struct {
	Eng   *sim.Engine
	Alloc *mem.Allocator
	Arena *mem.Arena
	Cache *cachesim.Hierarchy
	Meter *costmodel.Meter
	Ctx   *core.Ctx
	UDP   *netstack.UDP
	TCP   *netstack.TCPConn
	Core  *sim.Core
}

// rxRingDepth bounds the server's pending-request queue, modelling the RX
// descriptor ring: overload drops packets instead of queueing unboundedly.
const rxRingDepth = 1024

// NewNode builds a node on the given NIC port. Pass useTCP to attach the
// TCP-lite stack instead of UDP.
func NewNode(eng *sim.Engine, port *nic.Port, useTCP bool) *Node {
	return NewNodeCfg(eng, port, useTCP, cachesim.DefaultConfig())
}

// NewNodeCfg is NewNode with an explicit cache configuration; experiments
// shrink the modelled L3 so scaled-down stores keep the paper's
// working-set-vs-cache ratios.
func NewNodeCfg(eng *sim.Engine, port *nic.Port, useTCP bool, cacheCfg cachesim.Config) *Node {
	alloc := mem.NewAllocator()
	arena := mem.NewArena(256 << 10)
	cache := cachesim.New(cacheCfg)
	meter := costmodel.NewMeter(costmodel.DefaultCPU(), cache)
	n := &Node{
		Eng:   eng,
		Alloc: alloc,
		Arena: arena,
		Cache: cache,
		Meter: meter,
		Ctx:   core.NewCtx(alloc, arena, meter),
		Core:  sim.NewCore(eng),
	}
	n.Core.MaxQueue = rxRingDepth
	if useTCP {
		n.TCP = netstack.NewTCPConn(eng, port, alloc, meter)
	} else {
		n.UDP = netstack.NewUDP(eng, port, alloc, meter)
	}
	return n
}

// Testbed is a client and server pair joined by one link, mirroring the
// back-to-back machine pairs of §6.1.1.
type Testbed struct {
	Eng    *sim.Engine
	Client *Node
	Server *Node
}

// propagation models wire plus switch latency one way.
const propagation = 1500 * sim.Nanosecond

// NewTestbed builds a UDP testbed with the given NIC profile on both ends.
func NewTestbed(profile nic.Profile) *Testbed {
	return NewTestbedCfg(profile, cachesim.DefaultConfig())
}

// NewTestbedCfg builds a UDP testbed with an explicit server cache config.
func NewTestbedCfg(profile nic.Profile, cacheCfg cachesim.Config) *Testbed {
	eng := sim.NewEngine()
	pc, ps := nic.Link(eng, profile, profile, propagation)
	return &Testbed{
		Eng:    eng,
		Client: NewNode(eng, pc, false),
		Server: NewNodeCfg(eng, ps, false, cacheCfg),
	}
}

// NewTCPTestbed builds a TCP testbed.
func NewTCPTestbed(profile nic.Profile) *Testbed {
	eng := sim.NewEngine()
	pc, ps := nic.Link(eng, profile, profile, propagation)
	return &Testbed{
		Eng:    eng,
		Client: NewNode(eng, pc, true),
		Server: NewNode(eng, ps, true),
	}
}
