package driver

import (
	"cornflakes/internal/cachesim"
	"cornflakes/internal/fabric"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

// Rack is the pluggable topology composer under every multi-node testbed:
// N nodes, each on its own NIC, plugged into one simulated ToR switch on
// one engine. It owns nothing KV-shaped — a node becomes a KV shard, an
// RPC service, a cache tier, or a load generator by what its owner attaches
// to it, so new scenario families (service chains, tiered delivery) compose
// here instead of re-deriving switch plumbing. ClusterTestbed builds its
// sharded rack on top; internal/rpc builds call graphs the same way.
type Rack struct {
	// Eng is the switch's engine. Serial racks put every node on it too;
	// partitioned racks give each node its own shard, so components built
	// directly on r.Eng (rather than on a node's engine) live in the
	// switch's partition.
	Eng    *sim.Engine
	Switch *fabric.Switch
	// Exec is the handle the harness drives the run through: Eng itself on
	// a serial rack, the partition coordinator on a partitioned one.
	Exec sim.Runner
	// Nodes[i] sits at fabric address Addrs[i], in AddNode order. The
	// switch hands out addresses 1..n in plug-in order, so topology
	// construction order is part of a scenario's deterministic identity.
	Nodes []*Node
	Addrs []byte

	part *sim.PartitionedEngine
}

// NewRack builds an empty rack: one engine, one ToR switch. A zero
// fabric.Config takes the defaults (100 Gbps ports, 300 ns switching
// latency, 256-frame output queues).
func NewRack(fcfg fabric.Config) *Rack {
	eng := sim.NewEngine()
	return &Rack{Eng: eng, Exec: eng, Switch: fabric.New(eng, fcfg)}
}

// NewRackPartitioned builds a rack in parallel-in-time mode: the switch
// gets its own event-queue shard, every AddNode gets another, and Exec is
// the coordinator that runs them concurrently between lookahead barriers.
// The lookahead is the link propagation delay — the minimum time any event
// on one partition needs to affect another, since every cross-partition
// interaction traverses a link (DESIGN.md §17). Same topology, same
// construction order, same fingerprints as NewRack; only wall-clock
// parallelism differs.
func NewRackPartitioned(fcfg fabric.Config) *Rack {
	part := sim.NewPartitionedEngine(propagation)
	eng := part.NewShard()
	return &Rack{Eng: eng, Exec: part, part: part, Switch: fabric.New(eng, fcfg)}
}

// Partitioned reports whether the rack runs in parallel-in-time mode.
func (r *Rack) Partitioned() bool { return r.part != nil }

// nodeEngine returns the engine the next node should live on: a fresh
// shard in partitioned mode, the rack engine otherwise.
func (r *Rack) nodeEngine() *sim.Engine {
	if r.part != nil {
		return r.part.NewShard()
	}
	return r.Eng
}

// AddNode plugs a fresh UDP node into the switch and returns it with its
// fabric address. In partitioned mode the node (NIC, stack, core, cache)
// lives on its own shard; only its link to the switch crosses partitions.
func (r *Rack) AddNode(profile nic.Profile, cacheCfg cachesim.Config) (*Node, byte) {
	eng := r.nodeEngine()
	port, addr := r.Switch.PlugInOn(eng, profile, propagation)
	n := NewNodeCfg(eng, port, false, cacheCfg)
	n.UDP.LocalAddr = addr
	r.Nodes = append(r.Nodes, n)
	r.Addrs = append(r.Addrs, addr)
	return n, addr
}

// FrameLedger sums every frame counter in the topology, stage by stage, so
// a chaos scenario can prove no frame was lost silently: every posted
// frame must be accounted as delivered, wire-dropped, FCS-discarded,
// downed-port-discarded, switch-tail-dropped, misrouted, or host-down
// dropped. "Up" is endpoint→switch, "Down" is switch→endpoint.
type FrameLedger struct {
	// Up direction, summed over all endpoint NICs.
	EndpointTx  uint64 // frames posted by endpoints
	UpDelivered uint64 // reached the switch NIC intact
	UpDropped   uint64 // lost on the up wire (injector)
	UpFCS       uint64 // corrupted on the up wire, discarded by the switch NIC

	// Inside the switch.
	SwitchIn      uint64 // frames the switch ingressed
	DownedIngress uint64 // arrived on an admin-down port
	Misrouted     uint64 // no route for the destination byte
	SwitchOut     uint64 // forwarded onto an egress link
	EgressDrops   uint64 // tail-dropped at a full output queue
	DownedEgress  uint64 // egress port was admin-down

	// Down direction, summed over all switch-side link ports.
	DownDelivered uint64 // reached the endpoint NIC intact
	DownDropped   uint64 // lost on the down wire (injector)
	DownFCS       uint64 // corrupted on the down wire, discarded by the endpoint NIC

	// At the endpoints.
	EndpointRx    uint64 // frames the endpoint stacks saw (incl. host-down)
	HostDownDrops uint64 // frames that arrived at a crashed host
}

// Ledger gathers the FrameLedger over every node in the rack. Call it only
// after the engine has quiesced (Eng.Run()): frames still inside the switch
// pipeline or on a wire would read as conservation gaps.
func (r *Rack) Ledger() FrameLedger {
	var l FrameLedger
	for i, n := range r.Nodes {
		l.add(r.Addrs[i], n.UDP, r.Switch)
	}
	l.Misrouted = r.Switch.Misrouted()
	return l
}

func (l *FrameLedger) add(addr byte, u *netstack.UDP, sw *fabric.Switch) {
	ep := u.Port
	lp := sw.LinkPort(addr)
	ps := sw.Stats(addr)
	l.EndpointTx += ep.TxFrames
	l.UpDelivered += ep.DeliveredFrames
	l.UpDropped += ep.DroppedFrames
	l.UpFCS += lp.RxFCSErrors
	l.SwitchIn += ps.InFrames
	l.DownedIngress += ps.DownedIngress
	l.SwitchOut += ps.OutFrames
	l.EgressDrops += ps.EgressDrops
	l.DownedEgress += ps.DownedEgress
	l.DownDelivered += lp.DeliveredFrames
	l.DownDropped += lp.DroppedFrames
	l.DownFCS += ep.RxFCSErrors
	l.EndpointRx += u.RxPackets + u.RxDownDrops
	l.HostDownDrops += u.RxDownDrops
}

// SilentLoss returns the total conservation gap across the four frame
// stages — zero when every frame is accounted for. dupUp/dupDown are the
// injector duplication counts for the up and down wires (duplicates are
// distinct arrivals the post-time counters never saw).
func (l FrameLedger) SilentLoss(dupUp, dupDown uint64) int64 {
	gap := func(in, out uint64) int64 {
		d := int64(in) - int64(out)
		if d < 0 {
			d = -d
		}
		return d
	}
	up := gap(l.EndpointTx+dupUp, l.UpDelivered+l.UpDropped+l.UpFCS)
	sw := gap(l.SwitchIn, l.DownedIngress+l.Misrouted+l.SwitchOut+l.EgressDrops+l.DownedEgress)
	down := gap(l.SwitchOut+dupDown, l.DownDelivered+l.DownDropped+l.DownFCS)
	host := gap(l.DownDelivered, l.EndpointRx)
	return up + sw + down + host
}
