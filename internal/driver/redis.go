package driver

import (
	"fmt"

	"cornflakes/internal/baselines"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/kvstore"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/redis"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
	"cornflakes/internal/workloads"
)

// RedisServer wires the mini-Redis onto a node's UDP stack. In ModeRESP
// requests are [8-byte id | RESP command] and replies [8-byte id | RESP
// reply]; in ModeCornflakes requests and replies are Cornflakes objects
// with a leading command byte, exactly like the KV application.
type RedisServer struct {
	N     *Node
	R     *redis.Server
	Store *kvstore.Store

	Errors uint64
}

// NewRedisServer builds the server in the given mode.
func NewRedisServer(n *Node, mode redis.Mode) *RedisServer {
	store := kvstore.New(n.Alloc, n.Meter)
	s := &RedisServer{N: n, R: redis.New(store, mode), Store: store}
	n.UDP.SetRecvHandler(s.onPayload)
	return s
}

// Preload loads records and clears metering state. Like KVServer.Preload,
// multi-segment values are allocated non-contiguously.
func (s *RedisServer) Preload(recs []workloads.KV) {
	maxSegs := 0
	for _, r := range recs {
		if len(r.Vals) > maxSegs {
			maxSegs = len(r.Vals)
		}
	}
	bufs := make([][]*mem.Buf, len(recs))
	for seg := 0; seg < maxSegs; seg++ {
		for i := range recs {
			if seg >= len(recs[i].Vals) || len(recs[i].Vals[seg]) == 0 {
				continue
			}
			v := recs[i].Vals[seg]
			b := s.N.Alloc.Alloc(len(v))
			copy(b.Bytes(), v)
			bufs[i] = append(bufs[i], b)
		}
	}
	for i, r := range recs {
		s.Store.PutBuf(r.Key, bufs[i]...)
	}
	s.N.Meter.Drain()
	s.N.Meter.TakeReceipt()
}

func (s *RedisServer) onPayload(p *mem.Buf) {
	ok := s.N.Core.Submit(sim.Job{Run: func() sim.Time {
		s.handle(p)
		s.N.Arena.Reset()
		s.N.Meter.SetCategory(costmodel.CatRx)
		return s.N.Meter.DrainTime()
	}})
	if !ok {
		p.DecRef()
	}
}

func (s *RedisServer) handle(p *mem.Buf) {
	if s.R.Mode == redis.ModeRESP {
		defer p.DecRef()
		id, cmd, ok := redis.DecodeRESPRequest(p.Bytes())
		if !ok {
			s.Errors++
			return
		}
		reply, sim, ok := s.R.HandleRESP(id, cmd)
		if !ok {
			s.Errors++
			return
		}
		// The reply (already id-framed) goes out on the contiguous-buffer
		// datapath Redis uses (§6.1.3).
		if err := s.N.UDP.SendContiguous(reply, sim); err != nil {
			s.Errors++
		}
		return
	}
	s.handleCF(p)
}

func (s *RedisServer) handleCF(p *mem.Buf) {
	ctx := s.N.Ctx
	m := s.N.Meter
	if p.Len() < 2 {
		s.Errors++
		p.DecRef()
		return
	}
	op := p.Bytes()[0]
	body := p.SubView(1, p.Len()-1)
	p.DecRef()

	var req redis.CFRequest
	m.SetCategory(costmodel.CatDeserialize)
	switch op {
	case redis.CmdGet, redis.CmdLRange:
		msg, err := msgs.DeserializeGetReq(ctx, body)
		if err != nil {
			s.Errors++
			body.DecRef()
			return
		}
		req = redis.CFRequest{ID: msg.Id(), Key: msg.Key()}
		defer msg.Release()
	case redis.CmdMGet:
		msg, err := msgs.DeserializeGetM(ctx, body)
		if err != nil {
			s.Errors++
			body.DecRef()
			return
		}
		req = redis.CFRequest{ID: msg.Id()}
		for j := 0; j < msg.KeysLen(); j++ {
			req.Keys = append(req.Keys, msg.Keys(j))
		}
		defer msg.Release()
	case redis.CmdSet:
		msg, err := msgs.DeserializePutReq(ctx, body)
		if err != nil {
			s.Errors++
			body.DecRef()
			return
		}
		req = redis.CFRequest{ID: msg.Id(), Key: msg.Key(), Val: msg.Val()}
		defer msg.Release()
	default:
		s.Errors++
		body.DecRef()
		return
	}

	m.SetCategory(costmodel.CatApp)
	reply := s.R.HandleCF(op, req)
	m.SetCategory(costmodel.CatSerialize)
	switch {
	case reply.OK:
		resp := msgs.NewPutResp(ctx)
		resp.SetId(reply.ID)
		resp.SetOk(1)
		s.send(resp.Obj())
		resp.Release()
	case reply.Multi:
		resp := msgs.NewGetListResp(ctx)
		resp.SetId(reply.ID)
		for _, v := range reply.Vals {
			if v != nil {
				resp.AppendVals(ctx.NewCFPtr(v.Bytes()))
			}
		}
		s.send(resp.Obj())
		resp.Release()
	default:
		resp := msgs.NewGetResp(ctx)
		resp.SetId(reply.ID)
		if len(reply.Vals) == 1 && reply.Vals[0] != nil {
			resp.SetVal(ctx.NewCFPtr(reply.Vals[0].Bytes()))
		}
		s.send(resp.Obj())
		resp.Release()
	}
	m.SetCategory(costmodel.CatTx)
}

func (s *RedisServer) send(obj core.Obj) {
	if err := s.N.UDP.SendObject(obj); err != nil {
		s.Errors++
	}
}

// RedisClient encodes workload requests as Redis commands for either mode.
type RedisClient struct {
	Mode redis.Mode
	N    *Node
}

// NewRedisClient builds the codec.
func NewRedisClient(n *Node, mode redis.Mode) *RedisClient {
	return &RedisClient{Mode: mode, N: n}
}

// Steps implements loadgen.Client.
func (c *RedisClient) Steps(workloads.Request) int { return 1 }

// BuildStep implements loadgen.Client.
func (c *RedisClient) BuildStep(id uint64, req workloads.Request, _ int) []byte {
	m := c.N.Meter
	if c.Mode == redis.ModeRESP {
		switch req.Op {
		case workloads.OpGet:
			return redis.EncodeRESPRequest(m, id, []byte("GET"), req.Keys[0])
		case workloads.OpGetM:
			args := append([][]byte{[]byte("MGET")}, req.Keys...)
			return redis.EncodeRESPRequest(m, id, args...)
		case workloads.OpGetList:
			return redis.EncodeRESPRequest(m, id, []byte("LRANGE"), req.Keys[0], []byte("0"), []byte("-1"))
		default: // put
			return redis.EncodeRESPRequest(m, id, []byte("SET"), req.Keys[0], req.Vals[0])
		}
	}
	ctx := c.N.Ctx
	defer c.N.Arena.Reset()
	switch req.Op {
	case workloads.OpGet:
		msg := msgs.NewGetReq(ctx)
		msg.SetId(id)
		msg.SetKey(ctx.NewCFPtr(req.Keys[0]))
		return append([]byte{redis.CmdGet}, core.Marshal(msg.Obj())...)
	case workloads.OpGetM:
		msg := msgs.NewGetM(ctx)
		msg.SetId(id)
		for _, k := range req.Keys {
			msg.AppendKeys(ctx.NewCFPtr(k))
		}
		return append([]byte{redis.CmdMGet}, core.Marshal(msg.Obj())...)
	case workloads.OpGetList:
		msg := msgs.NewGetReq(ctx)
		msg.SetId(id)
		msg.SetKey(ctx.NewCFPtr(req.Keys[0]))
		return append([]byte{redis.CmdLRange}, core.Marshal(msg.Obj())...)
	default:
		msg := msgs.NewPutReq(ctx)
		msg.SetId(id)
		msg.SetKey(ctx.NewCFPtr(req.Keys[0]))
		msg.SetVal(ctx.NewCFPtr(req.Vals[0]))
		return append([]byte{redis.CmdSet}, core.Marshal(msg.Obj())...)
	}
}

// ResponseID implements loadgen.Client.
func (c *RedisClient) ResponseID(p []byte) (uint64, error) {
	if c.Mode == redis.ModeRESP {
		if len(p) < 8 {
			return 0, fmt.Errorf("driver: short redis response")
		}
		return wire.GetU64(p), nil
	}
	id, ok := core.PeekID(p)
	if !ok {
		return 0, fmt.Errorf("driver: bad cornflakes redis response")
	}
	return id, nil
}

// ParseRESPReply decodes a framed RESP reply for validation in tests.
func ParseRESPReply(m *costmodel.Meter, p []byte) (uint64, baselines.RESPValue, error) {
	if len(p) < 9 {
		return 0, baselines.RESPValue{}, fmt.Errorf("short reply")
	}
	id := wire.GetU64(p)
	v, _, err := baselines.RESPParse(p[8:], m)
	return id, v, err
}
