package driver

import (
	"fmt"

	"cornflakes/internal/baselines"
	"cornflakes/internal/core"
	"cornflakes/internal/msgs"
	"cornflakes/internal/workloads"
)

// KVClient encodes workload requests and decodes response ids for one
// serialization system; it plugs into loadgen.Run. The load generator
// machine is not the measured resource (§6.1.1), so client-side encoding
// costs land on the client node's meter and are not reported.
type KVClient struct {
	Sys System
	N   *Node
}

// NewKVClient builds a codec over the client node.
func NewKVClient(n *Node, sys System) *KVClient {
	return &KVClient{Sys: sys, N: n}
}

// Steps implements loadgen.Client: indexed-get requests (the CDN workload)
// fetch req.Index sub-objects sequentially; everything else is one
// exchange.
func (c *KVClient) Steps(req workloads.Request) int {
	if req.Op == workloads.OpGetIndex && req.Index > 1 {
		return req.Index
	}
	return 1
}

// opByte maps a workload op to the request framing byte.
func opByte(op workloads.Op) byte {
	switch op {
	case workloads.OpGet:
		return OpByteGet
	case workloads.OpGetM:
		return OpByteGetM
	case workloads.OpGetList:
		return OpByteGetList
	case workloads.OpGetIndex:
		return OpByteGetIndex
	default:
		return OpBytePut
	}
}

// BuildStep implements loadgen.Client.
func (c *KVClient) BuildStep(id uint64, req workloads.Request, step int) []byte {
	ob := opByte(req.Op)
	if c.Sys == SysCornflakes {
		return append([]byte{ob}, c.buildCF(id, req, step)...)
	}
	return append([]byte{ob}, c.buildDoc(id, req, step)...)
}

func (c *KVClient) buildCF(id uint64, req workloads.Request, step int) []byte {
	ctx := c.N.Ctx
	defer c.N.Arena.Reset()
	switch req.Op {
	case workloads.OpGet:
		m := msgs.NewGetReq(ctx)
		m.SetId(id)
		m.SetKey(ctx.NewCFPtr(req.Keys[0]))
		return core.Marshal(m.Obj())
	case workloads.OpGetM:
		m := msgs.NewGetM(ctx)
		m.SetId(id)
		for _, k := range req.Keys {
			m.AppendKeys(ctx.NewCFPtr(k))
		}
		return core.Marshal(m.Obj())
	case workloads.OpGetList:
		m := msgs.NewGetListReq(ctx)
		m.SetId(id)
		m.SetKey(ctx.NewCFPtr(req.Keys[0]))
		return core.Marshal(m.Obj())
	case workloads.OpGetIndex:
		m := msgs.NewGetListReq(ctx)
		m.SetId(id)
		m.SetKey(ctx.NewCFPtr(req.Keys[0]))
		m.SetIndex(uint64(step))
		return core.Marshal(m.Obj())
	default: // put
		m := msgs.NewPutReq(ctx)
		m.SetId(id)
		m.SetKey(ctx.NewCFPtr(req.Keys[0]))
		m.SetVal(ctx.NewCFPtr(req.Vals[0]))
		return core.Marshal(m.Obj())
	}
}

func (c *KVClient) buildDoc(id uint64, req workloads.Request, step int) []byte {
	var d *baselines.Doc
	switch req.Op {
	case workloads.OpGet:
		d = baselines.NewDoc(msgs.GetReqSchema)
		d.SetInt(0, id)
		d.SetBytes(1, req.Keys[0], 0)
	case workloads.OpGetM:
		d = baselines.NewDoc(msgs.GetMSchema)
		d.SetInt(0, id)
		for _, k := range req.Keys {
			d.AddBytes(1, k, 0)
		}
	case workloads.OpGetList:
		d = baselines.NewDoc(msgs.GetListReqSchema)
		d.SetInt(0, id)
		d.SetBytes(1, req.Keys[0], 0)
	case workloads.OpGetIndex:
		d = baselines.NewDoc(msgs.GetListReqSchema)
		d.SetInt(0, id)
		d.SetBytes(1, req.Keys[0], 0)
		d.SetInt(2, uint64(step))
	default:
		d = baselines.NewDoc(msgs.PutReqSchema)
		d.SetInt(0, id)
		d.SetBytes(1, req.Keys[0], 0)
		d.SetBytes(2, req.Vals[0], 0)
	}
	m := c.N.Meter
	switch c.Sys {
	case SysProtobuf:
		buf := make([]byte, baselines.ProtoSize(d, m))
		n := baselines.ProtoMarshal(d, buf, m.AllocSimAddr(len(buf)), m)
		return buf[:n]
	case SysFlatBuffers:
		return baselines.FBBuild(d, m)
	default:
		cm := baselines.CapnpBuild(d, m)
		segs, _ := baselines.CapnpFlatten(cm)
		var out []byte
		for _, s := range segs {
			out = append(out, s...)
		}
		return out
	}
}

// ResponseID implements loadgen.Client.
func (c *KVClient) ResponseID(p []byte) (uint64, error) {
	var (
		id uint64
		ok bool
	)
	switch c.Sys {
	case SysCornflakes:
		id, ok = core.PeekID(p)
	case SysProtobuf:
		id, ok = baselines.ProtoPeekID(p)
	case SysFlatBuffers:
		id, ok = baselines.FBPeekID(p)
	default:
		id, ok = baselines.CapnpPeekID(p)
	}
	if !ok {
		return 0, fmt.Errorf("driver: cannot extract id from %s response", c.Sys)
	}
	return id, nil
}
