package driver

import (
	"fmt"
	"testing"

	"math/rand/v2"

	"cornflakes/internal/core"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// runKV wires a testbed with the given system and workload, runs a short
// load, and returns the result plus the server for inspection.
func runKV(t *testing.T, sys System, gen workloads.Generator, rate float64) (loadgen.Result, *KVServer) {
	t.Helper()
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewKVServer(tb.Server, sys)
	srv.Preload(gen.Records())
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: NewKVClient(tb.Client, sys),
		RatePerS: rate, Warmup: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 42,
	})
	return res, srv
}

func TestKVEndToEndAllSystems(t *testing.T) {
	gen := workloads.NewYCSB(200, 1024, 2)
	for _, sys := range AllSystems() {
		t.Run(sys.String(), func(t *testing.T) {
			res, srv := runKV(t, sys, gen, 30_000)
			if srv.Errors != 0 {
				t.Errorf("server errors: %d", srv.Errors)
			}
			if res.BadResponses != 0 {
				t.Errorf("bad responses: %d", res.BadResponses)
			}
			if res.Completed == 0 {
				t.Fatal("no requests completed")
			}
			if res.AchievedRps < 0.9*res.OfferedRps {
				t.Errorf("%s underload run achieved %.0f of %.0f rps", sys, res.AchievedRps, res.OfferedRps)
			}
		})
	}
}

func TestKVTwitterWithPuts(t *testing.T) {
	gen := workloads.NewTwitter(500, 3)
	for _, sys := range []System{SysCornflakes, SysProtobuf} {
		res, srv := runKV(t, sys, gen, 30_000)
		if srv.Errors != 0 || res.BadResponses != 0 {
			t.Errorf("%s: errors=%d bad=%d", sys, srv.Errors, res.BadResponses)
		}
		if srv.Store.Puts == 0 {
			t.Errorf("%s: no puts reached the store", sys)
		}
		if res.Completed == 0 {
			t.Errorf("%s: nothing completed", sys)
		}
	}
}

func TestKVGetMMultipleKeys(t *testing.T) {
	// Drive GetM through a custom generator issuing multi-key requests.
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewKVServer(tb.Server, SysCornflakes)
	var recs []workloads.KV
	for i := 0; i < 10; i++ {
		recs = append(recs, workloads.KV{
			Key:  []byte(fmt.Sprintf("key-%02d", i)),
			Vals: [][]byte{make([]byte, 2048)},
		})
	}
	srv.Preload(recs)
	gen := &getmGen{nKeys: 10, perReq: 2}
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: NewKVClient(tb.Client, SysCornflakes),
		RatePerS: 20_000, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 1,
	})
	if srv.Errors != 0 || res.BadResponses != 0 || res.Completed == 0 {
		t.Errorf("errors=%d bad=%d completed=%d", srv.Errors, res.BadResponses, res.Completed)
	}
	if srv.N.UDP.TxZCEntries == 0 {
		t.Error("2048-byte values should go out as zero-copy entries")
	}
}

type getmGen struct {
	nKeys, perReq int
	i             int
}

func (g *getmGen) Name() string            { return "getm" }
func (g *getmGen) Records() []workloads.KV { return nil }
func (g *getmGen) Next(_ *rand.Rand) workloads.Request {
	keys := make([][]byte, g.perReq)
	for j := range keys {
		keys[j] = []byte(fmt.Sprintf("key-%02d", (g.i+j)%g.nKeys))
	}
	g.i++
	return workloads.Request{Op: workloads.OpGetM, Keys: keys}
}

func TestKVCDNMultiStep(t *testing.T) {
	gen := workloads.NewCDN(50, 8000, 64<<10, 7)
	res, srv := runKV(t, SysCornflakes, gen, 5_000)
	if srv.Errors != 0 || res.BadResponses != 0 {
		t.Errorf("errors=%d bad=%d", srv.Errors, res.BadResponses)
	}
	if res.Completed == 0 {
		t.Fatal("no objects completed")
	}
	// Multi-segment objects mean more packets than objects.
	if srv.Handled <= res.Completed {
		t.Errorf("handled %d packets for %d objects; expected more", srv.Handled, res.Completed)
	}
}

func TestKVThresholdKnobs(t *testing.T) {
	gen := workloads.NewYCSB(100, 1024, 2)
	for _, th := range []int{core.ThresholdAllZeroCopy, core.DefaultThreshold, core.ThresholdAllCopy} {
		tb := NewTestbed(nic.MellanoxCX6())
		srv := NewKVServer(tb.Server, SysCornflakes)
		tb.Server.Ctx.Threshold = th
		srv.Preload(gen.Records())
		res := loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: gen, Client: NewKVClient(tb.Client, SysCornflakes),
			RatePerS: 10_000, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 9,
		})
		if srv.Errors != 0 || res.BadResponses != 0 || res.Completed == 0 {
			t.Errorf("threshold %d: errors=%d bad=%d done=%d", th, srv.Errors, res.BadResponses, res.Completed)
		}
		zc := srv.N.UDP.TxZCEntries
		if th == core.ThresholdAllCopy && zc != 0 {
			t.Errorf("copy-only config posted %d ZC entries", zc)
		}
		if th != core.ThresholdAllCopy && zc == 0 {
			t.Errorf("threshold %d posted no ZC entries", th)
		}
	}
}

func TestKVSGArrayAblationPath(t *testing.T) {
	gen := workloads.NewYCSB(100, 1024, 2)
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewKVServer(tb.Server, SysCornflakes)
	srv.UseSGArray = true
	srv.Preload(gen.Records())
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: NewKVClient(tb.Client, SysCornflakes),
		RatePerS: 10_000, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 10,
	})
	if srv.Errors != 0 || res.BadResponses != 0 || res.Completed == 0 {
		t.Errorf("SG-array path: errors=%d bad=%d done=%d", srv.Errors, res.BadResponses, res.Completed)
	}
}

func TestEchoAllModes(t *testing.T) {
	modes := []struct {
		mode EchoMode
		sys  System
	}{
		{EchoNoSer, SysCornflakes},
		{EchoZeroCopy, SysCornflakes},
		{EchoOneCopy, SysCornflakes},
		{EchoTwoCopy, SysCornflakes},
		{EchoLib, SysCornflakes},
		{EchoLib, SysProtobuf},
		{EchoLib, SysFlatBuffers},
		{EchoLib, SysCapnProto},
	}
	for _, tc := range modes {
		name := tc.mode.String()
		if tc.mode == EchoLib {
			name = tc.sys.String()
		}
		t.Run(name, func(t *testing.T) {
			tb := NewTestbed(nic.MellanoxCX6())
			srv := NewEchoServer(tb.Server, tc.mode, tc.sys, 2048, 2)
			client := &EchoClient{Mode: tc.mode, Sys: tc.sys, N: tb.Client, FieldSize: 2048, NumFields: 2}
			res := loadgen.Run(loadgen.Config{
				Eng: tb.Eng, EP: tb.Client.UDP,
				Gen: genNop{}, Client: client,
				RatePerS: 20_000, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 3,
			})
			if srv.Errors != 0 {
				t.Errorf("server errors: %d", srv.Errors)
			}
			if res.BadResponses != 0 {
				t.Errorf("bad responses: %d", res.BadResponses)
			}
			if res.Completed == 0 {
				t.Fatal("nothing completed")
			}
		})
	}
}

// Echo cost ordering (the Figure 2 story): no-ser < zero-copy < one-copy <
// two-copy < libraries, measured as max sustainable throughput proxies via
// p50 latency at fixed moderate load.
func TestEchoModeOrdering(t *testing.T) {
	serviceCost := func(mode EchoMode, sys System) float64 {
		tb := NewTestbed(nic.MellanoxCX6())
		NewEchoServer(tb.Server, mode, sys, 2048, 2)
		client := &EchoClient{Mode: mode, Sys: sys, N: tb.Client, FieldSize: 2048, NumFields: 2}
		loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: genNop{}, Client: client,
			RatePerS: 20_000, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 4,
		})
		// Busy time per handled request is the service cost.
		return float64(tb.Server.Core.BusyTime) / float64(tb.Server.Core.JobsDone)
	}
	noSer := serviceCost(EchoNoSer, SysCornflakes)
	zc := serviceCost(EchoZeroCopy, SysCornflakes)
	oneCopy := serviceCost(EchoOneCopy, SysCornflakes)
	twoCopy := serviceCost(EchoTwoCopy, SysCornflakes)
	proto := serviceCost(EchoLib, SysProtobuf)
	fb := serviceCost(EchoLib, SysFlatBuffers)
	if !(noSer <= zc && zc < oneCopy && oneCopy < twoCopy) {
		t.Errorf("manual path ordering broken: noser=%.0f zc=%.0f 1copy=%.0f 2copy=%.0f",
			noSer, zc, oneCopy, twoCopy)
	}
	if proto <= twoCopy {
		t.Errorf("protobuf (%.0f) should cost more than bare two-copy (%.0f)", proto, twoCopy)
	}
	if fb <= twoCopy {
		t.Errorf("flatbuffers (%.0f) should cost more than bare two-copy (%.0f)", fb, twoCopy)
	}
}

func TestTCPEchoModes(t *testing.T) {
	for _, mode := range []TCPEchoMode{TCPEchoRaw, TCPEchoFlatBuffers, TCPEchoCornflakes} {
		t.Run(mode.String(), func(t *testing.T) {
			tb := NewTCPTestbed(nic.MellanoxCX6())
			srv := NewTCPEchoServer(tb.Server, mode)
			var client loadgen.Client
			switch mode {
			case TCPEchoRaw:
				client = &EchoClient{Mode: EchoNoSer, N: tb.Client, FieldSize: 2048, NumFields: 2}
			case TCPEchoFlatBuffers:
				client = &EchoClient{Mode: EchoLib, Sys: SysFlatBuffers, N: tb.Client, FieldSize: 2048, NumFields: 2}
			default:
				client = &EchoClient{Mode: EchoLib, Sys: SysCornflakes, N: tb.Client, FieldSize: 2048, NumFields: 2}
			}
			res := loadgen.Run(loadgen.Config{
				Eng: tb.Eng, EP: tb.Client.TCP,
				Gen: genNop{}, Client: client,
				RatePerS: 5_000, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 5,
			})
			if srv.Errors != 0 || res.BadResponses != 0 || res.Completed == 0 {
				t.Errorf("errors=%d bad=%d done=%d", srv.Errors, res.BadResponses, res.Completed)
			}
			if tb.Client.TCP.Retransmits != 0 || tb.Server.TCP.Retransmits != 0 {
				t.Error("unexpected retransmissions on a clean link")
			}
		})
	}
}

// genNop emits empty requests (the echo client ignores them).
type genNop struct{}

func (genNop) Name() string                      { return "nop" }
func (genNop) Records() []workloads.KV           { return nil }
func (genNop) Next(*rand.Rand) workloads.Request { return workloads.Request{} }
