package driver

import (
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

func runMulti(t *testing.T, nCores int, rate float64) (loadgen.Result, *MultiKVServer) {
	t.Helper()
	gen := workloads.NewTwitter(800, 20)
	eng := sim.NewEngine()
	prof := nic.MellanoxCX6()
	pc, ps := nic.Link(eng, prof, prof, 1500*sim.Nanosecond)
	clientNode := NewNode(eng, pc, false)
	srv := NewMultiKVServer(eng, ps, nCores, SysCornflakes, cachesim.DefaultConfig())
	srv.Preload(gen.Records())
	res := loadgen.Run(loadgen.Config{
		Eng: eng, EP: clientNode.UDP,
		Gen: gen,
		Client: &MultiKVClient{
			Inner:  NewKVClient(clientNode, SysCornflakes),
			NCores: nCores,
		},
		RatePerS: rate, Warmup: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 21,
	})
	return res, srv
}

func TestMultiKVServerCorrectness(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		res, srv := runMulti(t, cores, 100_000)
		if srv.Errors() != 0 {
			t.Errorf("%d cores: server errors %d", cores, srv.Errors())
		}
		if res.BadResponses != 0 {
			t.Errorf("%d cores: bad responses %d", cores, res.BadResponses)
		}
		if res.Completed == 0 || res.AchievedRps < 0.9*res.SentRps {
			t.Errorf("%d cores: achieved %.0f of %.0f rps", cores, res.AchievedRps, res.SentRps)
		}
	}
}

func TestMultiKVShardingIsBalancedEnough(t *testing.T) {
	_, srv := runMulti(t, 4, 200_000)
	var handled []uint64
	total := uint64(0)
	for _, c := range srv.Cores {
		handled = append(handled, c.Handled)
		total += c.Handled
	}
	if total == 0 {
		t.Fatal("no requests handled")
	}
	// Zipf traffic concentrates on hot keys, so shards are uneven — but no
	// shard should be completely idle or own everything.
	for i, h := range handled {
		frac := float64(h) / float64(total)
		if frac == 0 || frac > 0.9 {
			t.Errorf("shard %d handled %.0f%% of traffic: %v", i, frac*100, handled)
		}
	}
}

func TestMultiKVMoreCoresMoreThroughput(t *testing.T) {
	// At an offered load above one core's capacity, four cores complete
	// far more requests.
	res1, _ := runMulti(t, 1, 4_000_000)
	res4, _ := runMulti(t, 4, 4_000_000)
	if res4.AchievedRps < 2*res1.AchievedRps {
		t.Errorf("4 cores achieved %.0f vs 1 core %.0f rps; expected >2x",
			res4.AchievedRps, res1.AchievedRps)
	}
}

func TestShardOfDeterministic(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("user123"), []byte("tw000042")}
	for _, k := range keys {
		if shardOf(k, 4) != shardOf(k, 4) {
			t.Error("shardOf not deterministic")
		}
		if shardOf(k, 4) >= 4 {
			t.Error("shardOf out of range")
		}
	}
}
