package driver

import (
	"testing"

	"cornflakes/internal/costmodel"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// Regression pin for shed metering. Admission control runs at
// frame-delivery time, when the meter still carries whatever category the
// previous request left active; before shedReplyTo set an explicit
// category, those cycles smeared into neighbouring buckets and corrupted
// the Fig 11-style breakdown exactly in the overload regime where shedding
// dominates. A shed-everything run must bill its reply work to CatShed and
// leave the serving categories untouched.
func TestShedWorkBilledToShedCategory(t *testing.T) {
	gen := workloads.NewYCSB(50, 512, 1)
	tb := NewTestbed(nic.MellanoxCX6())
	srv := NewKVServer(tb.Server, SysCornflakes)
	srv.Preload(gen.Records())
	// Cap the pool (occupancy is defined only against a cap) and set the
	// shed threshold below the preloaded occupancy, so every request is
	// rejected at delivery: the run exercises only the shed fast path.
	tb.Server.Alloc.SetCap(tb.Server.Alloc.Stats().SlotsInUse + 64)
	srv.ShedWater = 1e-9

	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: gen, Client: NewKVClient(tb.Client, SysCornflakes),
		RatePerS: 20_000, Warmup: 0, Measure: 2 * sim.Millisecond, Seed: 3,
		Retry:  loadgen.RetryPolicy{Deadline: 300 * sim.Microsecond},
		ShedID: ShedID,
	})
	tb.Eng.Run()

	if srv.Shed == 0 || res.Shed == 0 {
		t.Fatalf("expected shedding: server shed %d, client classified %d", srv.Shed, res.Shed)
	}
	if srv.Handled != 0 {
		t.Fatalf("no request should have been served, handled %d", srv.Handled)
	}

	rec := tb.Server.Meter.TakeReceipt()
	if rec.Cycles[costmodel.CatShed] == 0 {
		t.Error("shed replies produced no CatShed cycles")
	}
	if rec.Cycles[costmodel.CatRx] == 0 {
		t.Error("frame reception produced no CatRx cycles")
	}
	for _, cat := range []costmodel.Category{
		costmodel.CatDeserialize, costmodel.CatApp, costmodel.CatSerialize, costmodel.CatTx,
	} {
		if cy := rec.Cycles[cat]; cy != 0 {
			t.Errorf("%v cycles = %.1f on a shed-only run, want 0 (shed work leaked)", cat, cy)
		}
	}
}
