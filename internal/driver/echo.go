package driver

import (
	"cornflakes/internal/baselines"
	"cornflakes/internal/core"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
	"cornflakes/internal/workloads"
)

// EchoMode selects the echo server's datapath, covering the manual
// approaches of Figure 1 and the serialization libraries of Figure 2.
type EchoMode int

const (
	// EchoNoSer echoes the received pinned buffer with no serialization at
	// all — the 77 Gbps upper bound of Figure 2.
	EchoNoSer EchoMode = iota
	// EchoZeroCopy posts the id and each field as separate scatter-gather
	// entries on the zero-copy stack (Figure 1 "Zero-Copy": the NIC
	// coalesces with extra PCIe requests). Like the §2.2 prototype stack it
	// includes use-after-free protection, so each entry pays the refcount
	// bookkeeping.
	EchoZeroCopy
	// EchoOneCopy copies the payload once, directly into pinned memory.
	EchoOneCopy
	// EchoTwoCopy copies into a contiguous staging buffer and then into
	// pinned memory — what a copy-based library's datapath does.
	EchoTwoCopy
	// EchoLib deserializes and reserializes with the configured System.
	EchoLib
)

func (m EchoMode) String() string {
	switch m {
	case EchoNoSer:
		return "No serialization"
	case EchoZeroCopy:
		return "Zero-copy"
	case EchoOneCopy:
		return "One-copy"
	case EchoTwoCopy:
		return "Two-copy"
	default:
		return "library"
	}
}

// EchoServer is the echo application of §2.2 and §6.1.2: almost no
// application processing; the server deserializes and reserializes a list
// of fixed-size fields.
type EchoServer struct {
	N         *Node
	Mode      EchoMode
	Sys       System // for EchoLib
	FieldSize int
	NumFields int

	Handled, Errors uint64
}

// NewEchoServer attaches an echo server to the node's UDP stack.
func NewEchoServer(n *Node, mode EchoMode, sys System, fieldSize, numFields int) *EchoServer {
	s := &EchoServer{N: n, Mode: mode, Sys: sys, FieldSize: fieldSize, NumFields: numFields}
	n.UDP.SetRecvHandler(s.onPayload)
	return s
}

func (s *EchoServer) onPayload(p *mem.Buf) {
	ok := s.N.Core.Submit(sim.Job{Run: func() sim.Time {
		s.handle(p)
		s.N.Arena.Reset()
		return s.N.Meter.DrainTime()
	}})
	if !ok {
		p.DecRef()
	}
}

func (s *EchoServer) handle(p *mem.Buf) {
	s.Handled++
	m := s.N.Meter
	switch s.Mode {
	case EchoNoSer:
		// Bounce the pinned RX buffer straight back.
		if err := s.N.UDP.SendPinned([]*mem.Buf{p}, true); err != nil {
			s.Errors++
		}
		p.DecRef()

	case EchoZeroCopy:
		// Respond with id + each field as its own raw gather entry.
		want := 8 + s.FieldSize*s.NumFields
		if p.Len() < want {
			s.Errors++
			p.DecRef()
			return
		}
		bufs := make([]*mem.Buf, 0, 1+s.NumFields)
		bufs = append(bufs, p.SubView(0, 8))
		for i := 0; i < s.NumFields; i++ {
			bufs = append(bufs, p.SubView(8+i*s.FieldSize, s.FieldSize))
		}
		if err := s.N.UDP.SendPinned(bufs, true); err != nil {
			s.Errors++
		}
		for _, b := range bufs {
			b.DecRef() // our view references; the NIC holds its own
		}
		p.DecRef()

	case EchoOneCopy:
		if err := s.N.UDP.SendContiguous(p.Bytes(), p.SimAddr()); err != nil {
			s.Errors++
		}
		p.DecRef()

	case EchoTwoCopy:
		// First copy into a contiguous staging buffer, second copy into
		// DMA memory inside SendContiguous. The second copy reads a cached
		// source (§2.2).
		staging := s.N.Arena.Alloc(p.Len())
		m.Charge(m.CPU.ArenaAllocCy)
		m.Copy(p.SimAddr(), staging.Sim, p.Len())
		copy(staging.Data, p.Bytes())
		if err := s.N.UDP.SendContiguous(staging.Data, staging.Sim); err != nil {
			s.Errors++
		}
		p.DecRef()

	case EchoLib:
		s.handleLib(p)
	}
}

// handleLib deserializes the GetM echo message and reserializes it with
// the configured library.
func (s *EchoServer) handleLib(p *mem.Buf) {
	ctx := s.N.Ctx
	m := s.N.Meter
	if s.Sys == SysCornflakes {
		req, err := msgs.DeserializeGetM(ctx, p)
		if err != nil {
			s.Errors++
			p.DecRef()
			return
		}
		resp := msgs.NewGetM(ctx)
		resp.SetId(req.Id())
		n := req.ValsLen()
		for j := 0; j < n; j++ {
			// Views into the received pinned buffer: fields at or above
			// the threshold recover the RX RcBuf and echo zero-copy.
			resp.AppendVals(ctx.NewCFPtr(req.Vals(j)))
		}
		if err := s.N.UDP.SendObject(resp.Obj()); err != nil {
			s.Errors++
		}
		resp.Release()
		req.Release()
		return
	}

	defer p.DecRef()
	var (
		req *baselines.Doc
		err error
	)
	switch s.Sys {
	case SysProtobuf:
		req, err = baselines.ProtoUnmarshal(msgs.GetMSchema, p.Bytes(), p.SimAddr(), m)
	case SysFlatBuffers:
		req, err = baselines.FBDecode(msgs.GetMSchema, p.Bytes(), p.SimAddr(), m)
	default:
		req, err = baselines.CapnpDecode(msgs.GetMSchema, p.Bytes(), p.SimAddr(), m)
	}
	if err != nil {
		s.Errors++
		return
	}
	resp := baselines.NewDoc(msgs.GetMSchema)
	resp.SetInt(0, req.F[0].I)
	for j, v := range req.F[2].B {
		resp.AddBytes(2, v, req.F[2].Sim[j])
	}
	switch s.Sys {
	case SysProtobuf:
		size := baselines.ProtoSize(resp, m)
		err = s.N.UDP.SendWith(size, func(dst []byte, dstSim uint64) int {
			return baselines.ProtoMarshal(resp, dst, dstSim, m)
		})
	case SysFlatBuffers:
		buf, bufSim := baselines.FBBuildSim(resp, m)
		err = s.N.UDP.SendContiguous(buf, bufSim)
	default:
		cm := baselines.CapnpBuild(resp, m)
		segs, sims := baselines.CapnpFlatten(cm)
		err = s.N.UDP.SendSegments(segs, sims)
	}
	if err != nil {
		s.Errors++
	}
}

// EchoClient builds echo requests and extracts response ids.
type EchoClient struct {
	Mode      EchoMode
	Sys       System
	N         *Node
	FieldSize int
	NumFields int
}

// Steps implements loadgen.Client.
func (c *EchoClient) Steps(workloads.Request) int { return 1 }

// BuildStep implements loadgen.Client.
func (c *EchoClient) BuildStep(id uint64, _ workloads.Request, _ int) []byte {
	if c.Mode != EchoLib {
		b := make([]byte, 8+c.FieldSize*c.NumFields)
		wire.PutU64(b, id)
		for i := range b[8:] {
			b[8+i] = byte(i)
		}
		return b
	}
	// Library echo: a GetM with NumFields values of FieldSize bytes.
	field := make([]byte, c.FieldSize)
	for i := range field {
		field[i] = byte(i)
	}
	if c.Sys == SysCornflakes {
		ctx := c.N.Ctx
		defer c.N.Arena.Reset()
		msg := msgs.NewGetM(ctx)
		msg.SetId(id)
		for i := 0; i < c.NumFields; i++ {
			msg.AppendVals(ctx.NewCFPtr(field))
		}
		return core.Marshal(msg.Obj())
	}
	d := baselines.NewDoc(msgs.GetMSchema)
	d.SetInt(0, id)
	for i := 0; i < c.NumFields; i++ {
		d.AddBytes(2, field, 0)
	}
	m := c.N.Meter
	switch c.Sys {
	case SysProtobuf:
		buf := make([]byte, baselines.ProtoSize(d, m))
		n := baselines.ProtoMarshal(d, buf, m.AllocSimAddr(len(buf)), m)
		return buf[:n]
	case SysFlatBuffers:
		return baselines.FBBuild(d, m)
	default:
		cm := baselines.CapnpBuild(d, m)
		segs, _ := baselines.CapnpFlatten(cm)
		var out []byte
		for _, seg := range segs {
			out = append(out, seg...)
		}
		return out
	}
}

// ResponseID implements loadgen.Client.
func (c *EchoClient) ResponseID(p []byte) (uint64, error) {
	if c.Mode != EchoLib {
		if len(p) < 8 {
			return 0, errShortResponse
		}
		return wire.GetU64(p), nil
	}
	var (
		id uint64
		ok bool
	)
	switch c.Sys {
	case SysCornflakes:
		id, ok = core.PeekID(p)
	case SysProtobuf:
		id, ok = baselines.ProtoPeekID(p)
	case SysFlatBuffers:
		id, ok = baselines.FBPeekID(p)
	default:
		id, ok = baselines.CapnpPeekID(p)
	}
	if !ok {
		return 0, errShortResponse
	}
	return id, nil
}

type shortResponseError struct{}

func (shortResponseError) Error() string { return "driver: short echo response" }

var errShortResponse = shortResponseError{}
