package baselines

import (
	"testing"

	"cornflakes/internal/core"
)

func idSchema() *core.Schema {
	return &core.Schema{Name: "R", Fields: []core.Field{
		{Name: "id", Kind: core.KindInt},
		{Name: "val", Kind: core.KindBytes},
	}}
}

func TestProtoPeekID(t *testing.T) {
	m := testMeter()
	d := NewDoc(idSchema())
	d.SetInt(0, 0xDEADBEEF12345)
	d.SetBytes(1, []byte("some value payload"), 0)
	buf := make([]byte, ProtoSize(d, m))
	ProtoMarshal(d, buf, 0, m)
	id, ok := ProtoPeekID(buf)
	if !ok || id != 0xDEADBEEF12345 {
		t.Errorf("ProtoPeekID = (%x, %v)", id, ok)
	}
	if _, ok := ProtoPeekID(nil); ok {
		t.Error("empty input accepted")
	}
	if _, ok := ProtoPeekID([]byte{0x12}); ok { // field 2, wrong leading field
		t.Error("wrong leading field accepted")
	}
}

func TestFBPeekID(t *testing.T) {
	m := testMeter()
	d := NewDoc(idSchema())
	d.SetInt(0, 777)
	d.SetBytes(1, []byte("v"), 0)
	buf := FBBuild(d, m)
	id, ok := FBPeekID(buf)
	if !ok || id != 777 {
		t.Errorf("FBPeekID = (%d, %v)", id, ok)
	}
	if _, ok := FBPeekID([]byte{1, 2}); ok {
		t.Error("short input accepted")
	}
	// Field 0 absent.
	d2 := NewDoc(idSchema())
	d2.SetBytes(1, []byte("v"), 0)
	if _, ok := FBPeekID(FBBuild(d2, m)); ok {
		t.Error("absent id accepted")
	}
}

func TestCapnpPeekID(t *testing.T) {
	m := testMeter()
	d := NewDoc(idSchema())
	d.SetInt(0, 31337)
	cm := CapnpBuild(d, m)
	segs, _ := CapnpFlatten(cm)
	var wire []byte
	for _, s := range segs {
		wire = append(wire, s...)
	}
	id, ok := CapnpPeekID(wire)
	if !ok || id != 31337 {
		t.Errorf("CapnpPeekID = (%d, %v)", id, ok)
	}
	if _, ok := CapnpPeekID([]byte{0, 0}); ok {
		t.Error("short input accepted")
	}
	// Field 0 absent.
	d2 := NewDoc(idSchema())
	d2.SetBytes(1, []byte("x"), 0)
	cm2 := CapnpBuild(d2, m)
	segs2, _ := CapnpFlatten(cm2)
	var wire2 []byte
	for _, s := range segs2 {
		wire2 = append(wire2, s...)
	}
	if _, ok := CapnpPeekID(wire2); ok {
		t.Error("absent id accepted")
	}
}
