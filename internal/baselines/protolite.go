package baselines

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
)

// protolite implements the Protocol Buffers wire format: each field is a
// varint tag (field number << 3 | wire type) followed by a varint scalar
// (wire type 0) or a length-delimited payload (wire type 2). Field numbers
// are schema index + 1. Repeated integers are packed; repeated
// bytes/strings/messages repeat the tag. Like real Protobuf, serialization
// is two passes: a recursive size pass, then a write pass.

const (
	wireVarint = 0
	wireBytes  = 2
)

// varintLen returns the encoded size of v.
func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// putVarint encodes v into dst and returns the byte count.
func putVarint(dst []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		dst[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	dst[i] = byte(v)
	return i + 1
}

// getVarint decodes a varint, returning the value and byte count (0 on
// truncation or overlong input).
func getVarint(src []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(src) && i < 10; i++ {
		v |= uint64(src[i]&0x7F) << (7 * i)
		if src[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func tag(fieldIdx, wt int) uint64 { return uint64(fieldIdx+1)<<3 | uint64(wt) }

// ProtoSize computes the serialized size of d (the Protobuf size pass),
// charging per-field bookkeeping.
func ProtoSize(d *Doc, m *costmodel.Meter) int {
	size := 0
	for i := range d.F {
		fv := &d.F[i]
		if !fv.Set {
			continue
		}
		m.Charge(m.CPU.PerFieldCy)
		t := varintLen(tag(i, 0)) // tag size is wire-type independent here
		switch d.Schema.Fields[i].Kind {
		case core.KindInt:
			size += t + varintLen(fv.I)
		case core.KindBytes, core.KindString:
			size += t + varintLen(uint64(len(fv.B[0]))) + len(fv.B[0])
		case core.KindBytesList, core.KindStringList:
			for _, b := range fv.B {
				size += t + varintLen(uint64(len(b))) + len(b)
			}
		case core.KindIntList:
			p := 0
			for _, v := range fv.IL {
				p += varintLen(v)
			}
			size += t + varintLen(uint64(p)) + p
		case core.KindNested:
			n := ProtoSize(fv.M[0], m)
			size += t + varintLen(uint64(n)) + n
		case core.KindNestedList:
			for _, sub := range fv.M {
				n := ProtoSize(sub, m)
				size += t + varintLen(uint64(n)) + n
			}
		}
	}
	return size
}

// ProtoMarshal writes d into dst (which must have ProtoSize bytes),
// charging varint work and data copies. dstSim is dst's simulated address.
// It returns the bytes written.
func ProtoMarshal(d *Doc, dst []byte, dstSim uint64, m *costmodel.Meter) int {
	cur := 0
	putV := func(v uint64) {
		n := putVarint(dst[cur:], v)
		m.Charge(float64(n) * m.CPU.VarintCyPerByte)
		cur += n
	}
	for i := range d.F {
		fv := &d.F[i]
		if !fv.Set {
			continue
		}
		m.Charge(m.CPU.PerFieldCy)
		switch d.Schema.Fields[i].Kind {
		case core.KindInt:
			putV(tag(i, wireVarint))
			putV(fv.I)
		case core.KindBytes, core.KindString:
			putV(tag(i, wireBytes))
			putV(uint64(len(fv.B[0])))
			m.Copy(fv.Sim[0], dstSim+uint64(cur), len(fv.B[0]))
			cur += copy(dst[cur:], fv.B[0])
		case core.KindBytesList, core.KindStringList:
			for j, b := range fv.B {
				putV(tag(i, wireBytes))
				putV(uint64(len(b)))
				m.Copy(fv.Sim[j], dstSim+uint64(cur), len(b))
				cur += copy(dst[cur:], b)
			}
		case core.KindIntList:
			putV(tag(i, wireBytes))
			p := 0
			for _, v := range fv.IL {
				p += varintLen(v)
			}
			putV(uint64(p))
			for _, v := range fv.IL {
				putV(v)
			}
		case core.KindNested:
			putV(tag(i, wireBytes))
			sub := fv.M[0]
			n := protoSizeQuiet(sub)
			putV(uint64(n))
			cur += ProtoMarshal(sub, dst[cur:], dstSim+uint64(cur), m)
		case core.KindNestedList:
			for _, sub := range fv.M {
				putV(tag(i, wireBytes))
				n := protoSizeQuiet(sub)
				putV(uint64(n))
				cur += ProtoMarshal(sub, dst[cur:], dstSim+uint64(cur), m)
			}
		}
	}
	return cur
}

// protoSizeQuiet is the size pass without metering, used inside the write
// pass where sizes were already charged (real Protobuf caches sizes from
// the first pass).
func protoSizeQuiet(d *Doc) int {
	noop := costmodel.NewMeter(costmodel.CPU{FreqGHz: 1}, nil)
	return ProtoSize(d, noop)
}

// ProtoUnmarshal parses Protobuf bytes into a Doc. Like real Protobuf, it
// materialises field data into freshly allocated memory (deserialization
// copies) and validates string fields eagerly — costs Cornflakes avoids.
func ProtoUnmarshal(schema *core.Schema, data []byte, srcSim uint64, m *costmodel.Meter) (*Doc, error) {
	d := NewDoc(schema)
	cur := 0
	for cur < len(data) {
		t, n := getVarint(data[cur:])
		if n == 0 {
			return nil, fmt.Errorf("protolite: truncated tag at %d", cur)
		}
		m.Charge(float64(n) * m.CPU.VarintCyPerByte)
		cur += n
		idx := int(t>>3) - 1
		wt := int(t & 7)
		if idx < 0 || idx >= len(schema.Fields) {
			return nil, fmt.Errorf("protolite: unknown field number %d", idx+1)
		}
		f := schema.Fields[idx]
		m.Charge(m.CPU.PerFieldCy)
		switch wt {
		case wireVarint:
			if f.Kind != core.KindInt {
				return nil, fmt.Errorf("protolite: field %s has wire type 0 but kind %v", f.Name, f.Kind)
			}
			v, n := getVarint(data[cur:])
			if n == 0 {
				return nil, fmt.Errorf("protolite: truncated varint")
			}
			m.Charge(float64(n) * m.CPU.VarintCyPerByte)
			cur += n
			d.SetInt(idx, v)
		case wireBytes:
			ln, n := getVarint(data[cur:])
			if n == 0 {
				return nil, fmt.Errorf("protolite: truncated length")
			}
			m.Charge(float64(n) * m.CPU.VarintCyPerByte)
			cur += n
			if uint64(cur)+ln > uint64(len(data)) {
				return nil, fmt.Errorf("protolite: payload overruns buffer")
			}
			payload := data[cur : cur+int(ln)]
			paySim := srcSim + uint64(cur)
			cur += int(ln)
			switch f.Kind {
			case core.KindBytes, core.KindString, core.KindBytesList, core.KindStringList:
				// Deserialization copy into library-owned memory.
				cp := make([]byte, len(payload))
				cpSim := m.AllocSimAddr(len(payload))
				m.Charge(m.CPU.HeapAllocCy)
				m.Copy(paySim, cpSim, len(payload))
				copy(cp, payload)
				if f.Kind == core.KindString || f.Kind == core.KindStringList {
					m.Charge(float64(len(cp)) * m.CPU.UTF8ValidateCyPerByte)
				}
				if f.Kind == core.KindBytes || f.Kind == core.KindString {
					d.SetBytes(idx, cp, cpSim)
				} else {
					d.AddBytes(idx, cp, cpSim)
				}
			case core.KindIntList:
				p := 0
				for p < len(payload) {
					v, n := getVarint(payload[p:])
					if n == 0 {
						return nil, fmt.Errorf("protolite: truncated packed int")
					}
					m.Charge(float64(n) * m.CPU.VarintCyPerByte)
					p += n
					d.AddInt(idx, v)
				}
			case core.KindNested, core.KindNestedList:
				sub, err := ProtoUnmarshal(f.Nested, payload, paySim, m)
				if err != nil {
					return nil, err
				}
				if f.Kind == core.KindNested {
					d.SetNested(idx, sub)
				} else {
					d.AddNested(idx, sub)
				}
			default:
				return nil, fmt.Errorf("protolite: field %s has wire type 2 but kind %v", f.Name, f.Kind)
			}
		default:
			return nil, fmt.Errorf("protolite: unsupported wire type %d", wt)
		}
	}
	return d, nil
}
