package baselines

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
)

func testMeter() *costmodel.Meter {
	return costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
}

func nestedSchema() (*core.Schema, *core.Schema) {
	inner := &core.Schema{Name: "Inner", Fields: []core.Field{
		{Name: "x", Kind: core.KindInt},
		{Name: "blob", Kind: core.KindBytes},
	}}
	outer := &core.Schema{Name: "Outer", Fields: []core.Field{
		{Name: "id", Kind: core.KindInt},
		{Name: "name", Kind: core.KindString},
		{Name: "keys", Kind: core.KindBytesList},
		{Name: "tags", Kind: core.KindStringList},
		{Name: "nums", Kind: core.KindIntList},
		{Name: "one", Kind: core.KindNested, Nested: inner},
		{Name: "many", Kind: core.KindNestedList, Nested: inner},
	}}
	return outer, inner
}

func sampleDoc() *Doc {
	outer, inner := nestedSchema()
	d := NewDoc(outer)
	d.SetInt(0, 1234567890123)
	d.SetBytes(1, []byte("hello-name"), 0)
	d.AddBytes(2, []byte("key-a"), 0)
	d.AddBytes(2, bytes.Repeat([]byte{0xAB}, 300), 0)
	d.AddBytes(3, []byte("tag-one"), 0)
	d.AddInt(4, 7)
	d.AddInt(4, 1<<40)
	sub := NewDoc(inner)
	sub.SetInt(0, 99)
	sub.SetBytes(1, []byte("inner-blob"), 0)
	d.SetNested(5, sub)
	for i := 0; i < 3; i++ {
		e := NewDoc(inner)
		e.SetInt(0, uint64(i))
		e.SetBytes(1, bytes.Repeat([]byte{byte(i)}, 20+i*13), 0)
		d.AddNested(6, e)
	}
	return d
}

func randomDoc(r *rand.Rand) *Doc {
	outer, inner := nestedSchema()
	d := NewDoc(outer)
	if r.IntN(2) == 0 {
		d.SetInt(0, r.Uint64())
	}
	if r.IntN(2) == 0 {
		d.SetBytes(1, []byte("name"), 0)
	}
	for i := 0; i < r.IntN(4); i++ {
		b := make([]byte, r.IntN(600))
		for j := range b {
			b[j] = byte(r.Uint32())
		}
		d.AddBytes(2, b, 0)
	}
	for i := 0; i < r.IntN(3); i++ {
		d.AddInt(4, r.Uint64())
	}
	if r.IntN(2) == 0 {
		sub := NewDoc(inner)
		sub.SetInt(0, r.Uint64())
		d.SetNested(5, sub)
	}
	for i := 0; i < r.IntN(3); i++ {
		e := NewDoc(inner)
		e.SetBytes(1, []byte{byte(i), 2, 3}, 0)
		d.AddNested(6, e)
	}
	return d
}

// --- varint ---

func TestVarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 14, 1<<64 - 1}
	buf := make([]byte, 10)
	for _, v := range cases {
		n := putVarint(buf, v)
		if n != varintLen(v) {
			t.Errorf("varintLen(%d) = %d but wrote %d", v, varintLen(v), n)
		}
		got, gn := getVarint(buf[:n])
		if got != v || gn != n {
			t.Errorf("varint %d -> %d (%d bytes)", v, got, gn)
		}
	}
}

func TestVarintTruncated(t *testing.T) {
	buf := make([]byte, 10)
	n := putVarint(buf, 1<<40)
	if _, gn := getVarint(buf[:n-1]); gn != 0 {
		t.Error("truncated varint accepted")
	}
}

func TestVarintProperty(t *testing.T) {
	buf := make([]byte, 10)
	f := func(v uint64) bool {
		n := putVarint(buf, v)
		got, gn := getVarint(buf[:n])
		return got == v && gn == n && n == varintLen(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- protolite ---

func TestProtoRoundTrip(t *testing.T) {
	m := testMeter()
	d := sampleDoc()
	size := ProtoSize(d, m)
	buf := make([]byte, size)
	n := ProtoMarshal(d, buf, mem.UnpinnedSimAddr(buf), m)
	if n != size {
		t.Fatalf("wrote %d bytes, size pass said %d", n, size)
	}
	got, err := ProtoUnmarshal(d.Schema, buf, mem.UnpinnedSimAddr(buf), m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Errorf("round trip mismatch:\n in: %v\nout: %v", d, got)
	}
}

func TestProtoEmptyDoc(t *testing.T) {
	m := testMeter()
	outer, _ := nestedSchema()
	d := NewDoc(outer)
	size := ProtoSize(d, m)
	if size != 0 {
		t.Errorf("empty doc size %d", size)
	}
	got, err := ProtoUnmarshal(outer, nil, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Error("empty doc mismatch")
	}
}

func TestProtoRejectsCorrupt(t *testing.T) {
	m := testMeter()
	d := sampleDoc()
	buf := make([]byte, ProtoSize(d, m))
	ProtoMarshal(d, buf, 0, m)
	for i := 0; i < len(buf); i += 7 {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0xFF
		// Must never panic; error or lossy parse both acceptable.
		ProtoUnmarshal(d.Schema, bad, 0, m)
	}
	// Truncations.
	for n := 0; n < len(buf); n += 11 {
		ProtoUnmarshal(d.Schema, buf[:n], 0, m)
	}
}

func TestProtoRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	m := testMeter()
	for i := 0; i < 50; i++ {
		d := randomDoc(r)
		buf := make([]byte, ProtoSize(d, m))
		n := ProtoMarshal(d, buf, 0, m)
		got, err := ProtoUnmarshal(d.Schema, buf[:n], 0, m)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if !d.Equal(got) {
			t.Fatalf("doc %d mismatch", i)
		}
	}
}

func TestProtoChargesVarintWork(t *testing.T) {
	m := testMeter()
	d := sampleDoc()
	buf := make([]byte, ProtoSize(d, m))
	m.Drain()
	ProtoMarshal(d, buf, 0, m)
	if m.Drain() <= 0 {
		t.Error("marshal charged nothing")
	}
}

// --- fblite ---

func TestFBRoundTrip(t *testing.T) {
	m := testMeter()
	d := sampleDoc()
	buf := FBBuild(d, m)
	got, err := FBDecode(d.Schema, buf, mem.UnpinnedSimAddr(buf), m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Errorf("round trip mismatch:\n in: %v\nout: %v", d, got)
	}
}

func TestFBRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	m := testMeter()
	for i := 0; i < 50; i++ {
		d := randomDoc(r)
		buf := FBBuild(d, m)
		got, err := FBDecode(d.Schema, buf, 0, m)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if !d.Equal(got) {
			t.Fatalf("doc %d mismatch", i)
		}
	}
}

func TestFBRejectsCorrupt(t *testing.T) {
	m := testMeter()
	d := sampleDoc()
	buf := FBBuild(d, m)
	for i := 0; i < len(buf); i += 5 {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0xFF
		FBDecode(d.Schema, bad, 0, m) // must not panic
	}
	for n := 0; n < len(buf); n += 13 {
		FBDecode(d.Schema, buf[:n], 0, m)
	}
}

func TestFBBuilderGrowth(t *testing.T) {
	m := testMeter()
	outer, _ := nestedSchema()
	d := NewDoc(outer)
	// Force multiple builder reallocations with a large payload.
	d.AddBytes(2, bytes.Repeat([]byte{1}, 5000), 0)
	buf := FBBuild(d, m)
	got, err := FBDecode(outer, buf, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Error("mismatch after builder growth")
	}
}

// --- capnplite ---

func capnpWire(t *testing.T, d *Doc, m *costmodel.Meter) []byte {
	t.Helper()
	cm := CapnpBuild(d, m)
	segs, _ := CapnpFlatten(cm)
	var out []byte
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

func TestCapnpRoundTrip(t *testing.T) {
	m := testMeter()
	d := sampleDoc()
	data := capnpWire(t, d, m)
	got, err := CapnpDecode(d.Schema, data, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Errorf("round trip mismatch:\n in: %v\nout: %v", d, got)
	}
}

func TestCapnpMultiSegment(t *testing.T) {
	m := testMeter()
	outer, _ := nestedSchema()
	d := NewDoc(outer)
	// Payloads larger than one segment force multiple segments.
	for i := 0; i < 4; i++ {
		d.AddBytes(2, bytes.Repeat([]byte{byte(i)}, 3000), 0)
	}
	cm := CapnpBuild(d, m)
	if len(cm.Segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(cm.Segs))
	}
	data := capnpWire(t, d, m)
	got, err := CapnpDecode(outer, data, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Error("multi-segment mismatch")
	}
}

func TestCapnpRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	m := testMeter()
	for i := 0; i < 50; i++ {
		d := randomDoc(r)
		data := capnpWire(t, d, m)
		got, err := CapnpDecode(d.Schema, data, 0, m)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if !d.Equal(got) {
			t.Fatalf("doc %d mismatch", i)
		}
	}
}

func TestCapnpRejectsCorrupt(t *testing.T) {
	m := testMeter()
	d := sampleDoc()
	data := capnpWire(t, d, m)
	for i := 0; i < len(data); i += 9 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0xFF
		CapnpDecode(d.Schema, bad, 0, m) // must not panic
	}
	for n := 0; n < len(data); n += 17 {
		CapnpDecode(d.Schema, data[:n], 0, m)
	}
}

func TestCapnpWordAlignmentOverhead(t *testing.T) {
	m := testMeter()
	outer, _ := nestedSchema()
	d := NewDoc(outer)
	d.AddBytes(2, []byte("x"), 0) // 1 byte pads to a word
	cm := CapnpBuild(d, m)
	if cm.TotalLen()%8 != 0 {
		t.Errorf("total length %d not word aligned", cm.TotalLen())
	}
}

// --- doc ---

func TestDocEqual(t *testing.T) {
	a, b := sampleDoc(), sampleDoc()
	if !a.Equal(b) {
		t.Error("identical docs not equal")
	}
	b.SetInt(0, 999)
	if a.Equal(b) {
		t.Error("different docs equal")
	}
	if a.Equal(nil) {
		t.Error("nil comparison wrong")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

// --- RESP ---

func TestRESPRoundTrip(t *testing.T) {
	m := testMeter()
	w := NewRESPWriter(m)
	w.WriteArrayHeader(4)
	w.WriteSimple("OK")
	w.WriteInteger(-42)
	w.WriteBulk([]byte("hello\r\nworld"), 0)
	w.WriteNull()

	v, n, err := RESPParse(w.Buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(w.Buf) {
		t.Errorf("consumed %d of %d", n, len(w.Buf))
	}
	if v.Type != RESPArray || len(v.Array) != 4 {
		t.Fatalf("parsed %+v", v)
	}
	if string(v.Array[0].Str) != "OK" {
		t.Error("simple string wrong")
	}
	if v.Array[1].Int != -42 {
		t.Error("integer wrong")
	}
	if string(v.Array[2].Str) != "hello\r\nworld" {
		t.Error("bulk with CRLF wrong")
	}
	if v.Array[3].Type != RESPNull {
		t.Error("null wrong")
	}
}

func TestRESPCommand(t *testing.T) {
	m := testMeter()
	cmd := RESPEncodeCommand(m, []byte("GET"), []byte("key1"))
	v, _, err := RESPParse(cmd, m)
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != RESPArray || len(v.Array) != 2 ||
		string(v.Array[0].Str) != "GET" || string(v.Array[1].Str) != "key1" {
		t.Errorf("command parsed as %+v", v)
	}
}

func TestRESPError(t *testing.T) {
	m := testMeter()
	w := NewRESPWriter(m)
	w.WriteError("ERR no such key")
	v, _, err := RESPParse(w.Buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != RESPError || string(v.Str) != "ERR no such key" {
		t.Errorf("error parsed as %+v", v)
	}
}

func TestRESPRejectsCorrupt(t *testing.T) {
	m := testMeter()
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("$5\r\nab\r\n"),    // short bulk
		[]byte("$abc\r\n"),        // bad length
		[]byte(":not-an-int\r\n"), // bad integer
		[]byte("*2\r\n+a\r\n"),    // short array
		[]byte("+no-terminator"),
	}
	for i, c := range cases {
		if _, _, err := RESPParse(c, m); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

// Property: any sequence of bulk strings round-trips through a command
// encoding.
func TestRESPCommandProperty(t *testing.T) {
	m := testMeter()
	f := func(args [][]byte) bool {
		if len(args) == 0 {
			return true
		}
		cmd := RESPEncodeCommand(m, args...)
		v, n, err := RESPParse(cmd, m)
		if err != nil || n != len(cmd) || v.Type != RESPArray || len(v.Array) != len(args) {
			return false
		}
		for i := range args {
			if !bytes.Equal(v.Array[i].Str, args[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Cross-library property: all three general-purpose baselines preserve the
// same documents.
func TestAllBaselinesAgree(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	m := testMeter()
	for i := 0; i < 25; i++ {
		d := randomDoc(r)
		pbuf := make([]byte, ProtoSize(d, m))
		ProtoMarshal(d, pbuf, 0, m)
		pd, err := ProtoUnmarshal(d.Schema, pbuf, 0, m)
		if err != nil {
			t.Fatal(err)
		}
		fbuf := FBBuild(d, m)
		fd, err := FBDecode(d.Schema, fbuf, 0, m)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := CapnpDecode(d.Schema, capnpWire(t, d, m), 0, m)
		if err != nil {
			t.Fatal(err)
		}
		if !pd.Equal(fd) || !fd.Equal(cd) || !cd.Equal(d) {
			t.Fatalf("doc %d: libraries disagree", i)
		}
	}
}
