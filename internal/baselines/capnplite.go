package baselines

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/wire"
)

// capnplite implements a Cap'n Proto-style format: word (8-byte) aligned
// structs built into fixed-size segments, with inter-object pointers that
// name a (segment, word offset, length). Like Cap'n Proto, integers are
// stored raw (no varint encoding) and the message is produced as a list of
// non-contiguous segment buffers, which is exactly the network datapath the
// paper gives it: "Cap'n Proto provides a non-contiguous list of buffers
// that represent the object" (§6.1.3).
//
// Struct layout per message: one word per schema field (present or not):
//
//	int fields:   u64 value
//	data fields:  pointer word {u16 seg | u16 wordOff*8→u32 | u32 byteLen}
//	lists:        pointer word to a run of element words
//
// A pointer word packs: bits 0..15 segment, 16..47 byte offset within the
// segment, 48..63 low 16 bits of length — with a second length word for
// blobs (keeps the format simple while staying word-aligned).
const capnpSegSize = 4096

// CapnpMessage is a built message: a list of segments.
type CapnpMessage struct {
	Segs [][]byte
	Sims []uint64
}

// TotalLen returns the summed segment length.
func (cm *CapnpMessage) TotalLen() int {
	n := 0
	for _, s := range cm.Segs {
		n += len(s)
	}
	return n
}

type capnpBuilder struct {
	segs [][]byte
	sims []uint64 // scratch slot per segment, assigned at allocation
	m    *costmodel.Meter
}

// allocWords reserves n 8-byte words, returning (segment, byte offset).
// Runs larger than a segment get a dedicated segment.
func (b *capnpBuilder) allocWords(n int) (int, int) {
	need := n * 8
	if len(b.segs) == 0 || len(b.segs[len(b.segs)-1])+need > cap(b.segs[len(b.segs)-1]) {
		size := capnpSegSize
		if need > size {
			size = need
		}
		b.segs = append(b.segs, make([]byte, 0, size))
		// Segments are appended to while the message is built, so their
		// addresses must not depend on their contents; each segment keeps
		// the address assigned when its chunk was allocated.
		b.sims = append(b.sims, b.m.AllocSimAddr(size))
		b.m.Charge(b.m.CPU.HeapAllocCy)
	}
	si := len(b.segs) - 1
	off := len(b.segs[si])
	b.segs[si] = b.segs[si][:off+need]
	return si, off
}

func capnpPtr(seg, off, length int) uint64 {
	return uint64(uint16(seg)) | uint64(uint32(off))<<16 | uint64(uint16(length))<<48
}

func capnpUnptr(w uint64) (seg, off, length int) {
	return int(uint16(w)), int(uint32(w >> 16)), int(uint16(w >> 48))
}

// CapnpBuild serializes d into segments.
func CapnpBuild(d *Doc, m *costmodel.Meter) *CapnpMessage {
	b := &capnpBuilder{m: m}
	b.writeStruct(d)
	cm := &CapnpMessage{Segs: b.segs, Sims: b.sims}
	return cm
}

// writeStruct emits d's struct words and returns (segment, byte offset).
func (b *capnpBuilder) writeStruct(d *Doc) (int, int) {
	m := b.m
	nf := len(d.Schema.Fields)
	if nf > 64 {
		panic("capnplite: schemas with more than 64 fields are not supported (single presence word)")
	}
	// One presence word + one word per field.
	seg, off := b.allocWords(1 + nf)
	words := b.segs[seg]
	var presence uint64
	for i := range d.F {
		if d.F[i].Set {
			presence |= 1 << i
		}
	}
	wire.PutU64(words[off:], presence)

	putWord := func(i int, v uint64) { wire.PutU64(words[off+8+8*i:], v) }
	// Blobs are written after the struct words; pointer words reference
	// them. A blob occupies ceil(len/8)+1 words: one length word plus data.
	putBlob := func(data []byte, sim uint64) uint64 {
		w := (len(data) + 7) / 8
		bs, bo := b.allocWords(w + 1)
		wire.PutU64(b.segs[bs][bo:], uint64(len(data)))
		m.Copy(sim, b.sims[bs]+uint64(bo)+8, len(data))
		copy(b.segs[bs][bo+8:], data)
		return capnpPtr(bs, bo, 0)
	}

	for i := range d.F {
		fv := &d.F[i]
		if !fv.Set {
			continue
		}
		m.Charge(m.CPU.PerFieldCy)
		switch d.Schema.Fields[i].Kind {
		case core.KindInt:
			putWord(i, fv.I)
		case core.KindBytes, core.KindString:
			putWord(i, putBlob(fv.B[0], fv.Sim[0]))
		case core.KindBytesList, core.KindStringList:
			ls, lo := b.allocWords(1 + len(fv.B))
			wire.PutU64(b.segs[ls][lo:], uint64(len(fv.B)))
			for j, bb := range fv.B {
				p := putBlob(bb, fv.Sim[j])
				wire.PutU64(b.segs[ls][lo+8+8*j:], p)
			}
			putWord(i, capnpPtr(ls, lo, 0))
		case core.KindIntList:
			ls, lo := b.allocWords(1 + len(fv.IL))
			wire.PutU64(b.segs[ls][lo:], uint64(len(fv.IL)))
			for j, v := range fv.IL {
				wire.PutU64(b.segs[ls][lo+8+8*j:], v)
			}
			putWord(i, capnpPtr(ls, lo, 0))
		case core.KindNested:
			ss, so := b.writeStruct(fv.M[0])
			putWord(i, capnpPtr(ss, so, 0))
		case core.KindNestedList:
			ls, lo := b.allocWords(1 + len(fv.M))
			wire.PutU64(b.segs[ls][lo:], uint64(len(fv.M)))
			for j, sub := range fv.M {
				ss, so := b.writeStruct(sub)
				wire.PutU64(b.segs[ls][lo+8+8*j:], capnpPtr(ss, so, 0))
			}
			putWord(i, capnpPtr(ls, lo, 0))
		}
	}
	return seg, off
}

// CapnpFlatten frames the segments into one contiguous byte stream for
// transmission: u32 segment count, u32 per-segment length, segment bytes.
// (The builder output stays segmented; the netstack copies the segments
// into a DMA buffer in this framing.)
func CapnpFlatten(cm *CapnpMessage) ([][]byte, []uint64) {
	hdr := make([]byte, 4+4*len(cm.Segs))
	wire.PutU32(hdr, uint32(len(cm.Segs)))
	for i, s := range cm.Segs {
		wire.PutU32(hdr[4+4*i:], uint32(len(s)))
	}
	segs := append([][]byte{hdr}, cm.Segs...)
	sims := append([]uint64{mem.UnpinnedSimAddr(hdr)}, cm.Sims...)
	return segs, sims
}

// CapnpDecode parses a framed capnplite message into a Doc with zero-copy
// views, validating structure and (eagerly) UTF-8 in string fields.
func CapnpDecode(schema *core.Schema, data []byte, sim uint64, m *costmodel.Meter) (*Doc, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("capnplite: short message")
	}
	nseg := int(wire.GetU32(data))
	if nseg <= 0 || nseg > 1<<16 {
		return nil, fmt.Errorf("capnplite: bad segment count %d", nseg)
	}
	hdrLen := 4 + 4*nseg
	if len(data) < hdrLen {
		return nil, fmt.Errorf("capnplite: truncated segment table")
	}
	m.Access(sim, hdrLen)
	segs := make([][]byte, nseg)
	sims := make([]uint64, nseg)
	cur := hdrLen
	for i := 0; i < nseg; i++ {
		n := int(wire.GetU32(data[4+4*i:]))
		if cur+n > len(data) {
			return nil, fmt.Errorf("capnplite: segment %d overruns message", i)
		}
		segs[i] = data[cur : cur+n : cur+n]
		sims[i] = sim + uint64(cur)
		cur += n
	}
	return capnpDecodeStruct(schema, segs, sims, 0, 0, m, 0)
}

func capnpDecodeStruct(schema *core.Schema, segs [][]byte, sims []uint64, seg, off int, m *costmodel.Meter, depth int) (*Doc, error) {
	if depth > fbMaxDepth {
		return nil, fmt.Errorf("capnplite: nesting too deep")
	}
	nf := len(schema.Fields)
	if seg >= len(segs) || off < 0 || off+8*(1+nf) > len(segs[seg]) {
		return nil, fmt.Errorf("capnplite: struct pointer out of range (seg %d off %d)", seg, off)
	}
	m.Access(sims[seg]+uint64(off), 8*(1+nf))
	words := segs[seg]
	presence := wire.GetU64(words[off:])

	blob := func(p uint64) ([]byte, uint64, error) {
		bs, bo, _ := capnpUnptr(p)
		if bs >= len(segs) || bo < 0 || bo+8 > len(segs[bs]) {
			return nil, 0, fmt.Errorf("capnplite: blob pointer out of range")
		}
		n64 := wire.GetU64(segs[bs][bo:])
		// Compare in uint64 space: a hostile length must not overflow the
		// int arithmetic of the bounds check.
		if n64 > uint64(len(segs[bs])) || bo+8+int(n64) > len(segs[bs]) {
			return nil, 0, fmt.Errorf("capnplite: blob overruns segment")
		}
		n := int(n64)
		return segs[bs][bo+8 : bo+8+n : bo+8+n], sims[bs] + uint64(bo) + 8, nil
	}
	list := func(p uint64) (int, int, int, error) { // seg, elem0 offset, count
		ls, lo, _ := capnpUnptr(p)
		if ls >= len(segs) || lo < 0 || lo+8 > len(segs[ls]) {
			return 0, 0, 0, fmt.Errorf("capnplite: list pointer out of range")
		}
		c64 := wire.GetU64(segs[ls][lo:])
		if c64 > uint64(len(segs[ls]))/8 || lo+8+8*int(c64) > len(segs[ls]) {
			return 0, 0, 0, fmt.Errorf("capnplite: list overruns segment")
		}
		return ls, lo + 8, int(c64), nil
	}

	d := NewDoc(schema)
	for i, f := range schema.Fields {
		if presence&(1<<i) == 0 {
			continue
		}
		m.Charge(m.CPU.PerFieldCy)
		w := wire.GetU64(words[off+8+8*i:])
		switch f.Kind {
		case core.KindInt:
			d.SetInt(i, w)
		case core.KindBytes, core.KindString:
			bb, bsim, err := blob(w)
			if err != nil {
				return nil, err
			}
			if f.Kind == core.KindString {
				m.Charge(float64(len(bb)) * m.CPU.UTF8ValidateCyPerByte)
				m.Access(bsim, len(bb))
			}
			d.SetBytes(i, bb, bsim)
		case core.KindBytesList, core.KindStringList:
			ls, e0, count, err := list(w)
			if err != nil {
				return nil, err
			}
			for j := 0; j < count; j++ {
				bb, bsim, err := blob(wire.GetU64(segs[ls][e0+8*j:]))
				if err != nil {
					return nil, err
				}
				if f.Kind == core.KindStringList {
					m.Charge(float64(len(bb)) * m.CPU.UTF8ValidateCyPerByte)
				}
				d.AddBytes(i, bb, bsim)
			}
		case core.KindIntList:
			ls, e0, count, err := list(w)
			if err != nil {
				return nil, err
			}
			for j := 0; j < count; j++ {
				d.AddInt(i, wire.GetU64(segs[ls][e0+8*j:]))
			}
		case core.KindNested:
			ss, so, _ := capnpUnptr(w)
			sub, err := capnpDecodeStruct(f.Nested, segs, sims, ss, so, m, depth+1)
			if err != nil {
				return nil, err
			}
			d.SetNested(i, sub)
		case core.KindNestedList:
			ls, e0, count, err := list(w)
			if err != nil {
				return nil, err
			}
			for j := 0; j < count; j++ {
				ss, so, _ := capnpUnptr(wire.GetU64(segs[ls][e0+8*j:]))
				sub, err := capnpDecodeStruct(f.Nested, segs, sims, ss, so, m, depth+1)
				if err != nil {
					return nil, err
				}
				d.AddNested(i, sub)
			}
		}
	}
	return d, nil
}
