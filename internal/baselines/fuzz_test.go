package baselines

import (
	"testing"

	"cornflakes/internal/core"
)

// Native fuzz targets for every decoder: the seeds run under plain
// `go test`; fuzz further with e.g.
//
//	go test -fuzz FuzzProtoUnmarshal -fuzztime 30s ./internal/baselines
//
// The invariant in every case: arbitrary input may be rejected but must
// never panic or read out of bounds.

func fuzzSchema() *core.Schema {
	inner := &core.Schema{Name: "I", Fields: []core.Field{
		{Name: "x", Kind: core.KindInt},
		{Name: "b", Kind: core.KindBytes},
	}}
	return &core.Schema{Name: "F", Fields: []core.Field{
		{Name: "id", Kind: core.KindInt},
		{Name: "s", Kind: core.KindString},
		{Name: "blobs", Kind: core.KindBytesList},
		{Name: "nums", Kind: core.KindIntList},
		{Name: "sub", Kind: core.KindNested, Nested: inner},
		{Name: "subs", Kind: core.KindNestedList, Nested: inner},
	}}
}

func fuzzSeed() []byte {
	m := testMeter()
	d := NewDoc(fuzzSchema())
	d.SetInt(0, 42)
	d.SetBytes(1, []byte("seed-string"), 0)
	d.AddBytes(2, []byte("blob"), 0)
	d.AddInt(3, 7)
	sub := NewDoc(fuzzSchema().Fields[4].Nested)
	sub.SetInt(0, 1)
	d.SetNested(4, sub)
	buf := make([]byte, ProtoSize(d, m))
	ProtoMarshal(d, buf, 0, m)
	return buf
}

func FuzzProtoUnmarshal(f *testing.F) {
	f.Add(fuzzSeed())
	f.Add([]byte{})
	f.Add([]byte{0x08, 0x96, 0x01})
	schema := fuzzSchema()
	f.Fuzz(func(t *testing.T, data []byte) {
		m := testMeter()
		doc, err := ProtoUnmarshal(schema, data, 0, m)
		if err == nil && doc == nil {
			t.Fatal("nil doc without error")
		}
	})
}

func FuzzFBDecode(f *testing.F) {
	m := testMeter()
	d := NewDoc(fuzzSchema())
	d.SetInt(0, 1)
	d.AddBytes(2, []byte("x"), 0)
	f.Add(FBBuild(d, m))
	f.Add([]byte{0, 0, 0, 0})
	schema := fuzzSchema()
	f.Fuzz(func(t *testing.T, data []byte) {
		mm := testMeter()
		doc, err := FBDecode(schema, data, 0, mm)
		if err == nil && doc == nil {
			t.Fatal("nil doc without error")
		}
	})
}

func FuzzCapnpDecode(f *testing.F) {
	m := testMeter()
	d := NewDoc(fuzzSchema())
	d.SetInt(0, 1)
	d.AddBytes(2, []byte("y"), 0)
	cm := CapnpBuild(d, m)
	segs, _ := CapnpFlatten(cm)
	var wire []byte
	for _, s := range segs {
		wire = append(wire, s...)
	}
	f.Add(wire)
	f.Add([]byte{1, 0, 0, 0, 8, 0, 0, 0})
	schema := fuzzSchema()
	f.Fuzz(func(t *testing.T, data []byte) {
		mm := testMeter()
		doc, err := CapnpDecode(schema, data, 0, mm)
		if err == nil && doc == nil {
			t.Fatal("nil doc without error")
		}
	})
}

func FuzzRESPParse(f *testing.F) {
	m := testMeter()
	f.Add(RESPEncodeCommand(m, []byte("GET"), []byte("key")))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"))
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		mm := testMeter()
		RESPParse(data, mm) // must not panic
	})
}
