package baselines

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/wire"
)

// fblite implements a FlatBuffers-style format: tables of fields located
// through per-table vtables, with all variable-length data serialized into
// one contiguous buffer by a builder. Numbers are little-endian and never
// encoded (like FlatBuffers). The builder copies every payload once into
// its buffer; the networking stack then copies the finished buffer into
// DMA-safe memory — the two-copy datapath of §6.1.3.
//
// Layout (simplified relative to real FlatBuffers, which builds
// back-to-front with relative offsets; this builder uses absolute u32
// offsets from the buffer start):
//
//	buffer  := u32 rootTableOff | data... | tables...
//	table   := u32 vtableOff | fieldSlots...
//	vtable  := u16 numFields | u16 slotOff per field (0xFFFF = absent)
//	scalar  : u64 inline in slot
//	blob    : u32 off → u32 len | bytes
//	vector  : u32 off → u32 count | (u64 ints | u32 blob offs | u32 table offs)
//	nested  : u32 off → table
type fbBuilder struct {
	buf  []byte
	base uint64 // simulated address of buf, reassigned on regrow
	m    *costmodel.Meter
}

// sim is the address assigned when buf was (re)allocated — the buffer
// mutates as the message is built, so its address cannot track contents.
func (b *fbBuilder) sim() uint64 { return b.base }

func (b *fbBuilder) grow(n int) int {
	off := len(b.buf)
	if off+n > cap(b.buf) {
		// Builder reallocation: real FlatBuffers doubles its buffer and
		// copies — charge that move.
		newCap := cap(b.buf) * 2
		if newCap < off+n {
			newCap = (off + n) * 2
		}
		nb := make([]byte, off, newCap)
		b.m.Charge(b.m.CPU.HeapAllocCy)
		old := b.base
		b.base = b.m.AllocSimAddr(newCap)
		b.m.Copy(old, b.base, off)
		copy(nb, b.buf)
		b.buf = nb
	}
	b.buf = b.buf[:off+n]
	return off
}

func (b *fbBuilder) putBlob(data []byte, sim uint64) uint32 {
	off := b.grow(4 + len(data))
	wire.PutU32(b.buf[off:], uint32(len(data)))
	b.m.Copy(sim, b.sim()+uint64(off)+4, len(data))
	copy(b.buf[off+4:], data)
	return uint32(off)
}

// FBBuild serializes d into a fresh contiguous buffer.
func FBBuild(d *Doc, m *costmodel.Meter) []byte {
	buf, _ := FBBuildSim(d, m)
	return buf
}

// FBBuildSim is FBBuild but also returns the simulated address the builder
// left the bytes at, so a send can read the lines the build just wrote.
func FBBuildSim(d *Doc, m *costmodel.Meter) ([]byte, uint64) {
	b := &fbBuilder{buf: make([]byte, 0, 256), base: m.AllocSimAddr(256), m: m}
	m.Charge(m.CPU.HeapAllocCy)
	b.grow(4) // room for the root offset
	root := b.table(d)
	wire.PutU32(b.buf[0:], root)
	return b.buf, b.sim()
}

func (b *fbBuilder) table(d *Doc) uint32 {
	m := b.m
	nf := len(d.Schema.Fields)

	// Serialize out-of-line parts first, remembering each slot value.
	slots := make([]uint64, nf)
	present := make([]bool, nf)
	for i := range d.F {
		fv := &d.F[i]
		if !fv.Set {
			continue
		}
		m.Charge(m.CPU.PerFieldCy)
		present[i] = true
		switch d.Schema.Fields[i].Kind {
		case core.KindInt:
			slots[i] = fv.I
		case core.KindBytes, core.KindString:
			slots[i] = uint64(b.putBlob(fv.B[0], fv.Sim[0]))
		case core.KindBytesList, core.KindStringList:
			offs := make([]uint32, len(fv.B))
			for j, bb := range fv.B {
				offs[j] = b.putBlob(bb, fv.Sim[j])
			}
			v := b.grow(4 + 4*len(offs))
			wire.PutU32(b.buf[v:], uint32(len(offs)))
			for j, o := range offs {
				wire.PutU32(b.buf[v+4+4*j:], o)
			}
			slots[i] = uint64(v)
		case core.KindIntList:
			v := b.grow(4 + 8*len(fv.IL))
			wire.PutU32(b.buf[v:], uint32(len(fv.IL)))
			for j, x := range fv.IL {
				wire.PutU64(b.buf[v+4+8*j:], x)
			}
			slots[i] = uint64(v)
		case core.KindNested:
			slots[i] = uint64(b.table(fv.M[0]))
		case core.KindNestedList:
			offs := make([]uint32, len(fv.M))
			for j, sub := range fv.M {
				offs[j] = b.table(sub)
			}
			v := b.grow(4 + 4*len(offs))
			wire.PutU32(b.buf[v:], uint32(len(offs)))
			for j, o := range offs {
				wire.PutU32(b.buf[v+4+4*j:], o)
			}
			slots[i] = uint64(v)
		}
	}

	// vtable: u16 count + u16 slot offset per field.
	vt := b.grow(2 + 2*nf)
	b.buf[vt] = byte(nf)
	b.buf[vt+1] = byte(nf >> 8)
	// table: u32 vtable offset + slots for present fields.
	slotBytes := 0
	for i := 0; i < nf; i++ {
		if present[i] {
			slotBytes += 8
		}
	}
	tbl := b.grow(4 + slotBytes)
	wire.PutU32(b.buf[tbl:], uint32(vt))
	cur := 4
	for i := 0; i < nf; i++ {
		so := 0xFFFF
		if present[i] {
			so = cur
			wire.PutU64(b.buf[tbl+cur:], slots[i])
			cur += 8
		}
		b.buf[vt+2+2*i] = byte(so)
		b.buf[vt+2+2*i+1] = byte(so >> 8)
	}
	return uint32(tbl)
}

// fbView is a decoded table view.
type fbView struct {
	buf    []byte
	sim    uint64
	schema *core.Schema
	tbl    int
	vt     int
	m      *costmodel.Meter
}

// FBDecode parses an fblite buffer into a zero-copy accessor, validating
// structure eagerly (including UTF-8 for string fields, which FlatBuffers
// verifiers do at deserialization time, unlike Cornflakes).
func FBDecode(schema *core.Schema, data []byte, sim uint64, m *costmodel.Meter) (*Doc, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("fblite: short buffer")
	}
	root := int(wire.GetU32(data))
	return fbDecodeTable(schema, data, sim, root, m, 0)
}

const fbMaxDepth = 64

func fbDecodeTable(schema *core.Schema, data []byte, sim uint64, tbl int, m *costmodel.Meter, depth int) (*Doc, error) {
	if depth > fbMaxDepth {
		return nil, fmt.Errorf("fblite: nesting too deep")
	}
	if tbl < 0 || tbl+4 > len(data) {
		return nil, fmt.Errorf("fblite: table offset %d out of range", tbl)
	}
	m.Access(sim+uint64(tbl), 4)
	vt := int(wire.GetU32(data[tbl:]))
	if vt < 0 || vt+2 > len(data) {
		return nil, fmt.Errorf("fblite: vtable offset %d out of range", vt)
	}
	nf := int(data[vt]) | int(data[vt+1])<<8
	if nf != len(schema.Fields) {
		return nil, fmt.Errorf("fblite: vtable has %d fields, schema %s has %d", nf, schema.Name, len(schema.Fields))
	}
	if vt+2+2*nf > len(data) {
		return nil, fmt.Errorf("fblite: truncated vtable")
	}
	m.Access(sim+uint64(vt), 2+2*nf)

	d := NewDoc(schema)
	blob := func(off int) ([]byte, error) {
		if off < 0 || off+4 > len(data) {
			return nil, fmt.Errorf("fblite: blob offset %d out of range", off)
		}
		n := int(wire.GetU32(data[off:]))
		if off+4+n > len(data) {
			return nil, fmt.Errorf("fblite: blob overruns buffer")
		}
		return data[off+4 : off+4+n : off+4+n], nil
	}
	for i, f := range schema.Fields {
		so := int(data[vt+2+2*i]) | int(data[vt+2+2*i+1])<<8
		if so == 0xFFFF {
			continue
		}
		m.Charge(m.CPU.PerFieldCy)
		if tbl+so+8 > len(data) {
			return nil, fmt.Errorf("fblite: slot for %s overruns table", f.Name)
		}
		slot := wire.GetU64(data[tbl+so:])
		switch f.Kind {
		case core.KindInt:
			d.SetInt(i, slot)
		case core.KindBytes, core.KindString:
			bb, err := blob(int(slot))
			if err != nil {
				return nil, err
			}
			if f.Kind == core.KindString {
				m.Charge(float64(len(bb)) * m.CPU.UTF8ValidateCyPerByte)
				m.Access(sim+uint64(int(slot)+4), len(bb))
			}
			d.SetBytes(i, bb, sim+uint64(int(slot)+4))
		case core.KindBytesList, core.KindStringList:
			off := int(slot)
			if off < 0 || off+4 > len(data) {
				return nil, fmt.Errorf("fblite: vector offset out of range")
			}
			count := int(wire.GetU32(data[off:]))
			if off+4+4*count > len(data) {
				return nil, fmt.Errorf("fblite: vector overruns buffer")
			}
			for j := 0; j < count; j++ {
				bo := int(wire.GetU32(data[off+4+4*j:]))
				bb, err := blob(bo)
				if err != nil {
					return nil, err
				}
				if f.Kind == core.KindStringList {
					m.Charge(float64(len(bb)) * m.CPU.UTF8ValidateCyPerByte)
				}
				d.AddBytes(i, bb, sim+uint64(bo+4))
			}
		case core.KindIntList:
			off := int(slot)
			if off < 0 || off+4 > len(data) {
				return nil, fmt.Errorf("fblite: int vector offset out of range")
			}
			count := int(wire.GetU32(data[off:]))
			if off+4+8*count > len(data) {
				return nil, fmt.Errorf("fblite: int vector overruns buffer")
			}
			for j := 0; j < count; j++ {
				d.AddInt(i, wire.GetU64(data[off+4+8*j:]))
			}
		case core.KindNested:
			sub, err := fbDecodeTable(f.Nested, data, sim, int(slot), m, depth+1)
			if err != nil {
				return nil, err
			}
			d.SetNested(i, sub)
		case core.KindNestedList:
			off := int(slot)
			if off < 0 || off+4 > len(data) {
				return nil, fmt.Errorf("fblite: table vector offset out of range")
			}
			count := int(wire.GetU32(data[off:]))
			if off+4+4*count > len(data) {
				return nil, fmt.Errorf("fblite: table vector overruns buffer")
			}
			for j := 0; j < count; j++ {
				sub, err := fbDecodeTable(f.Nested, data, sim, int(wire.GetU32(data[off+4+4*j:])), m, depth+1)
				if err != nil {
					return nil, err
				}
				d.AddNested(i, sub)
			}
		}
	}
	return d, nil
}
