// Package baselines implements the serialization libraries Cornflakes is
// evaluated against (§6.1.3), from scratch:
//
//   - protolite: Protobuf-style tag/varint/length-delimited encoding with a
//     size pass followed by a write pass. Its network datapath serializes
//     directly into DMA-safe memory (one copy of field data).
//   - fblite: FlatBuffers-style vtable format built into a single
//     contiguous buffer (one copy), which the stack then copies into a DMA
//     buffer (second copy).
//   - capnplite: Cap'n Proto-style word-aligned segmented format (one copy
//     into segments) which the stack gathers into a DMA buffer (second
//     copy).
//   - resp: the Redis serialization protocol, used by the mini-Redis
//     integration.
//
// All encoders move real bytes and round-trip through real parsers; their
// data movement and per-field encoding work is charged through the shared
// cost model, which is what makes them honest baselines for Figures 2, 6–9
// and Tables 1–3.
package baselines

import (
	"bytes"
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/mem"
)

// Doc is the library-independent logical message: the same document can be
// serialized by every baseline and by Cornflakes, so experiments compare
// identical data.
type Doc struct {
	Schema *core.Schema
	F      []FV
}

// FV holds one field's value.
type FV struct {
	Set bool
	I   uint64
	// B holds bytes/string payloads: one element for scalar fields, n for
	// repeated fields. Sim carries each payload's simulated address (0 →
	// derived from the real address).
	B   [][]byte
	Sim []uint64
	IL  []uint64
	M   []*Doc
}

// NewDoc returns an empty document for the schema.
func NewDoc(s *core.Schema) *Doc {
	return &Doc{Schema: s, F: make([]FV, len(s.Fields))}
}

// SetInt sets an integer field.
func (d *Doc) SetInt(i int, v uint64) {
	d.F[i].Set = true
	d.F[i].I = v
}

// SetBytes sets a scalar bytes/string field.
func (d *Doc) SetBytes(i int, b []byte, sim uint64) {
	d.F[i].Set = true
	d.F[i].B = append(d.F[i].B[:0], b)
	d.F[i].Sim = append(d.F[i].Sim[:0], simOr(b, sim))
}

// AddBytes appends to a repeated bytes/string field.
func (d *Doc) AddBytes(i int, b []byte, sim uint64) {
	d.F[i].Set = true
	d.F[i].B = append(d.F[i].B, b)
	d.F[i].Sim = append(d.F[i].Sim, simOr(b, sim))
}

// AddInt appends to a repeated integer field.
func (d *Doc) AddInt(i int, v uint64) {
	d.F[i].Set = true
	d.F[i].IL = append(d.F[i].IL, v)
}

// SetNested sets a nested message field.
func (d *Doc) SetNested(i int, sub *Doc) {
	d.F[i].Set = true
	d.F[i].M = append(d.F[i].M[:0], sub)
}

// AddNested appends to a repeated nested field.
func (d *Doc) AddNested(i int, sub *Doc) {
	d.F[i].Set = true
	d.F[i].M = append(d.F[i].M, sub)
}

func simOr(b []byte, sim uint64) uint64 {
	if sim != 0 {
		return sim
	}
	return mem.UnpinnedSimAddr(b)
}

// Equal reports whether two documents carry identical data.
func (d *Doc) Equal(o *Doc) bool {
	if d == nil || o == nil {
		return d == o
	}
	if d.Schema.Name != o.Schema.Name || len(d.F) != len(o.F) {
		return false
	}
	for i := range d.F {
		a, b := &d.F[i], &o.F[i]
		if a.Set != b.Set {
			return false
		}
		if !a.Set {
			continue
		}
		switch d.Schema.Fields[i].Kind {
		case core.KindInt:
			if a.I != b.I {
				return false
			}
		case core.KindBytes, core.KindString, core.KindBytesList, core.KindStringList:
			if len(a.B) != len(b.B) {
				return false
			}
			for j := range a.B {
				if !bytes.Equal(a.B[j], b.B[j]) {
					return false
				}
			}
		case core.KindIntList:
			if len(a.IL) != len(b.IL) {
				return false
			}
			for j := range a.IL {
				if a.IL[j] != b.IL[j] {
					return false
				}
			}
		case core.KindNested, core.KindNestedList:
			if len(a.M) != len(b.M) {
				return false
			}
			for j := range a.M {
				if !a.M[j].Equal(b.M[j]) {
					return false
				}
			}
		}
	}
	return true
}

func (d *Doc) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s{", d.Schema.Name)
	for i := range d.F {
		if !d.F[i].Set {
			continue
		}
		f := d.Schema.Fields[i]
		switch f.Kind {
		case core.KindInt:
			fmt.Fprintf(&b, "%s=%d ", f.Name, d.F[i].I)
		case core.KindBytes, core.KindString:
			fmt.Fprintf(&b, "%s=%q ", f.Name, d.F[i].B[0])
		case core.KindBytesList, core.KindStringList:
			fmt.Fprintf(&b, "%s=%d-elems ", f.Name, len(d.F[i].B))
		case core.KindIntList:
			fmt.Fprintf(&b, "%s=%v ", f.Name, d.F[i].IL)
		case core.KindNested:
			fmt.Fprintf(&b, "%s=%v ", f.Name, d.F[i].M[0])
		case core.KindNestedList:
			fmt.Fprintf(&b, "%s=%d-msgs ", f.Name, len(d.F[i].M))
		}
	}
	b.WriteString("}")
	return b.String()
}
