package baselines

import (
	"fmt"
	"strconv"

	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
)

// RESP implements the Redis serialization protocol (RESP2), the
// application-specific serialization Cornflakes is compared against inside
// Redis (§6.2.2). Replies are composed into a contiguous output buffer —
// Redis's handwritten serialization copies every value into its client
// output buffer — which the netstack then copies into DMA memory.

// RESPType enumerates RESP2 value types.
type RESPType int

const (
	RESPSimple RESPType = iota
	RESPError
	RESPInteger
	RESPBulk
	RESPArray
	RESPNull
)

// RESPValue is one decoded RESP value.
type RESPValue struct {
	Type  RESPType
	Str   []byte // simple/error/bulk payload (view into the input)
	Int   int64
	Array []RESPValue
}

// RESPWriter composes RESP replies into a growing contiguous buffer,
// metering the data copies.
type RESPWriter struct {
	Buf []byte
	sim uint64
	m   *costmodel.Meter
}

// NewRESPWriter returns a writer with a warm initial buffer.
func NewRESPWriter(m *costmodel.Meter) *RESPWriter {
	m.Charge(m.CPU.HeapAllocCy)
	return &RESPWriter{
		Buf: make([]byte, 0, 256),
		sim: m.AllocSimAddr(256),
		m:   m,
	}
}

// Sim returns the output buffer's simulated address, assigned when the
// buffer was allocated — the buffer is mutated in place (and reused
// across messages via Reset), so its address cannot track contents. A
// long-lived server writer keeps one address and stays warm across
// replies, as its real buffer does.
func (w *RESPWriter) Sim() uint64 { return w.sim }

// Reset clears the buffer for reuse.
func (w *RESPWriter) Reset() { w.Buf = w.Buf[:0] }

func (w *RESPWriter) raw(s string) {
	w.m.Charge(float64(len(s)) * 0.2) // formatting cost
	w.Buf = append(w.Buf, s...)
}

// WriteSimple writes a simple string reply ("+OK\r\n").
func (w *RESPWriter) WriteSimple(s string) { w.raw("+" + s + "\r\n") }

// WriteError writes an error reply.
func (w *RESPWriter) WriteError(s string) { w.raw("-" + s + "\r\n") }

// WriteInteger writes an integer reply.
func (w *RESPWriter) WriteInteger(v int64) { w.raw(":" + strconv.FormatInt(v, 10) + "\r\n") }

// WriteNull writes a null bulk string.
func (w *RESPWriter) WriteNull() { w.raw("$-1\r\n") }

// WriteBulk writes a bulk string, copying the payload into the reply
// buffer (this copy is what the Cornflakes Redis integration eliminates).
func (w *RESPWriter) WriteBulk(data []byte, sim uint64) {
	w.raw("$" + strconv.Itoa(len(data)) + "\r\n")
	w.m.Copy(sim, w.Sim()+uint64(len(w.Buf)), len(data))
	w.Buf = append(w.Buf, data...)
	w.raw("\r\n")
}

// WriteArrayHeader writes an array header for n elements.
func (w *RESPWriter) WriteArrayHeader(n int) { w.raw("*" + strconv.Itoa(n) + "\r\n") }

// RESPParse decodes one RESP value from data, returning the value and the
// bytes consumed. Bulk payloads are zero-copy views into data.
func RESPParse(data []byte, m *costmodel.Meter) (RESPValue, int, error) {
	return respParse(data, m, 0)
}

const respMaxDepth = 32

func respParse(data []byte, m *costmodel.Meter, depth int) (RESPValue, int, error) {
	if depth > respMaxDepth {
		return RESPValue{}, 0, fmt.Errorf("resp: nesting too deep")
	}
	if len(data) == 0 {
		return RESPValue{}, 0, fmt.Errorf("resp: empty input")
	}
	line, n, err := respLine(data)
	if err != nil {
		return RESPValue{}, 0, err
	}
	m.Charge(float64(n) * 0.2) // line scan
	switch data[0] {
	case '+':
		return RESPValue{Type: RESPSimple, Str: line}, n, nil
	case '-':
		return RESPValue{Type: RESPError, Str: line}, n, nil
	case ':':
		v, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return RESPValue{}, 0, fmt.Errorf("resp: bad integer %q", line)
		}
		return RESPValue{Type: RESPInteger, Int: v}, n, nil
	case '$':
		ln, err := strconv.Atoi(string(line))
		if err != nil {
			return RESPValue{}, 0, fmt.Errorf("resp: bad bulk length %q", line)
		}
		if ln == -1 {
			return RESPValue{Type: RESPNull}, n, nil
		}
		if ln < 0 || n+ln+2 > len(data) {
			return RESPValue{}, 0, fmt.Errorf("resp: truncated bulk string")
		}
		if data[n+ln] != '\r' || data[n+ln+1] != '\n' {
			return RESPValue{}, 0, fmt.Errorf("resp: bulk string missing terminator")
		}
		return RESPValue{Type: RESPBulk, Str: data[n : n+ln : n+ln]}, n + ln + 2, nil
	case '*':
		count, err := strconv.Atoi(string(line))
		if err != nil || count < -1 {
			return RESPValue{}, 0, fmt.Errorf("resp: bad array length %q", line)
		}
		if count == -1 {
			return RESPValue{Type: RESPNull}, n, nil
		}
		v := RESPValue{Type: RESPArray}
		cur := n
		for i := 0; i < count; i++ {
			elem, en, err := respParse(data[cur:], m, depth+1)
			if err != nil {
				return RESPValue{}, 0, err
			}
			v.Array = append(v.Array, elem)
			cur += en
		}
		return v, cur, nil
	default:
		return RESPValue{}, 0, fmt.Errorf("resp: unknown type byte %q", data[0])
	}
}

// respLine returns the bytes between the type byte and CRLF, plus the total
// bytes consumed including CRLF.
func respLine(data []byte) ([]byte, int, error) {
	for i := 1; i+1 < len(data); i++ {
		if data[i] == '\r' && data[i+1] == '\n' {
			return data[1:i:i], i + 2, nil
		}
	}
	return nil, 0, fmt.Errorf("resp: missing CRLF")
}

// RESPEncodeCommand encodes a client command (array of bulk strings), the
// format Redis clients always use.
func RESPEncodeCommand(m *costmodel.Meter, args ...[]byte) []byte {
	w := NewRESPWriter(m)
	w.WriteArrayHeader(len(args))
	for _, a := range args {
		w.WriteBulk(a, mem.UnpinnedSimAddr(a))
	}
	return w.Buf
}
