package baselines

import "cornflakes/internal/wire"

// The Peek helpers extract the id convention (field 0 / field number 1,
// an integer, always set first) from each wire format without full
// decoding. Load generators use them to match responses to requests.

// ProtoPeekID reads the leading "field 1, varint" entry.
func ProtoPeekID(data []byte) (uint64, bool) {
	t, n := getVarint(data)
	if n == 0 || t != tag(0, wireVarint) {
		return 0, false
	}
	v, vn := getVarint(data[n:])
	if vn == 0 {
		return 0, false
	}
	return v, true
}

// FBPeekID walks root table → vtable → slot 0.
func FBPeekID(data []byte) (uint64, bool) {
	if len(data) < 4 {
		return 0, false
	}
	tbl := int(wire.GetU32(data))
	if tbl < 0 || tbl+4 > len(data) {
		return 0, false
	}
	vt := int(wire.GetU32(data[tbl:]))
	if vt < 0 || vt+4 > len(data) {
		return 0, false
	}
	so := int(data[vt+2]) | int(data[vt+3])<<8
	if so == 0xFFFF || tbl+so+8 > len(data) {
		return 0, false
	}
	return wire.GetU64(data[tbl+so:]), true
}

// CapnpPeekID reads the root struct's presence word and first field word
// from segment 0 of a framed message.
func CapnpPeekID(data []byte) (uint64, bool) {
	if len(data) < 8 {
		return 0, false
	}
	nseg := int(wire.GetU32(data))
	if nseg <= 0 || nseg > 1<<16 {
		return 0, false
	}
	hdrLen := 4 + 4*nseg
	if len(data) < hdrLen+16 {
		return 0, false
	}
	seg0 := data[hdrLen:]
	presence := wire.GetU64(seg0)
	if presence&1 == 0 {
		return 0, false
	}
	return wire.GetU64(seg0[8:]), true
}
