package faults

import (
	"fmt"
	"testing"

	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

// linkPair builds a port pair and returns them with the engine.
func linkPair() (*sim.Engine, *nic.Port, *nic.Port) {
	eng := sim.NewEngine()
	a, b := nic.Link(eng, nic.MellanoxCX6(), nic.MellanoxCX6(), sim.FromNanos(1000))
	return eng, a, b
}

// blast sends n small frames A→B and returns how many arrived at B.
func blast(eng *sim.Engine, a, b *nic.Port, n int) int {
	got := 0
	b.SetHandler(func(*nic.Frame) { got++ })
	for i := 0; i < n; i++ {
		frame := []byte(fmt.Sprintf("frame-%04d-padding-padding", i))
		if err := a.Send([]nic.SGEntry{{Data: frame}}); err != nil {
			panic(err)
		}
	}
	eng.Run()
	return got
}

func TestApplySameSeedSameSchedule(t *testing.T) {
	plan := Plan{Seed: 31, AtoB: Dir{
		Loss: 0.2, BurstLoss: 0.05, BurstLen: 3, Reorder: 0.2,
		ReorderDelay: 20 * sim.Microsecond, Duplicate: 0.1,
		Jitter: 2 * sim.Microsecond, Corrupt: 0.1,
	}}
	run := func() (Stats, int) {
		eng, a, b := linkPair()
		ab, _ := Apply(plan, a, b)
		got := blast(eng, a, b, 500)
		return ab.Stats, got
	}
	s1, g1 := run()
	s2, g2 := run()
	if s1 != s2 || g1 != g2 {
		t.Errorf("same seed diverged:\n  %v (got %d)\n  %v (got %d)", s1, g1, s2, g2)
	}
	// The adversarial plan actually did something in every category.
	if s1.Dropped == 0 || s1.BurstDropped == 0 || s1.Reordered == 0 ||
		s1.Duplicated == 0 || s1.Corrupted == 0 {
		t.Errorf("plan left a fault mode idle: %v", s1)
	}
	if s3, _ := func() (Stats, int) {
		eng, a, b := linkPair()
		p2 := plan
		p2.Seed = 32
		ab, _ := Apply(p2, a, b)
		return ab.Stats, blast(eng, a, b, 500)
	}(); s3 == s1 {
		t.Error("different seeds produced identical stats")
	}
}

func TestLossRate(t *testing.T) {
	eng, a, b := linkPair()
	ab, _ := Apply(Plan{Seed: 1, AtoB: Dir{Loss: 0.3}}, a, b)
	got := blast(eng, a, b, 2000)
	if ab.Stats.Frames != 2000 {
		t.Fatalf("injector saw %d frames", ab.Stats.Frames)
	}
	// 30% ± generous tolerance.
	if ab.Stats.Dropped < 450 || ab.Stats.Dropped > 750 {
		t.Errorf("dropped %d of 2000 at p=0.3", ab.Stats.Dropped)
	}
	if got != 2000-int(ab.Stats.Dropped) {
		t.Errorf("delivered %d, stats say %d dropped", got, ab.Stats.Dropped)
	}
}

func TestBurstLossRunsBackToBack(t *testing.T) {
	eng, a, b := linkPair()
	ab, _ := Apply(Plan{Seed: 5, AtoB: Dir{BurstLoss: 0.02, BurstLen: 4}}, a, b)
	blast(eng, a, b, 3000)
	if ab.Stats.BurstDropped == 0 {
		t.Fatal("no burst losses at p=0.02 over 3000 frames")
	}
	// Mean burst length 4 ⇒ burst drops should far outnumber burst starts.
	// With ~60 expected bursts, expect roughly 240 dropped frames.
	if ab.Stats.BurstDropped < 100 {
		t.Errorf("burst dropped only %d frames — bursts not extending", ab.Stats.BurstDropped)
	}
	if ab.Stats.Dropped != 0 {
		t.Errorf("independent drops %d, want 0 (Loss unset)", ab.Stats.Dropped)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	eng, a, b := linkPair()
	ab, _ := Apply(Plan{Seed: 9, AtoB: Dir{Duplicate: 1.0}}, a, b)
	got := blast(eng, a, b, 100)
	if ab.Stats.Duplicated != 100 {
		t.Fatalf("duplicated %d of 100 at p=1", ab.Stats.Duplicated)
	}
	if got != 200 {
		t.Errorf("delivered %d frames, want 200", got)
	}
}

func TestCorruptionDroppedByNIC(t *testing.T) {
	eng, a, b := linkPair()
	ab, _ := Apply(Plan{Seed: 13, AtoB: Dir{Corrupt: 1.0}}, a, b)
	got := blast(eng, a, b, 100)
	if ab.Stats.Corrupted != 100 {
		t.Fatalf("corrupted %d of 100 at p=1", ab.Stats.Corrupted)
	}
	if got != 0 {
		t.Errorf("%d corrupted frames slipped past the FCS", got)
	}
	if b.RxFCSErrors != 100 {
		t.Errorf("RxFCSErrors = %d, want 100", b.RxFCSErrors)
	}
}

func TestComposesWithInjectLoss(t *testing.T) {
	eng, a, b := linkPair()
	// InjectLoss drops every even frame before the injector runs.
	n := 0
	a.InjectLoss = func([]byte) bool { n++; return n%2 == 1 }
	ab, _ := Apply(Plan{Seed: 17, AtoB: Dir{}}, a, b)
	got := blast(eng, a, b, 100)
	if ab.Stats.Frames != 50 {
		t.Errorf("injector saw %d frames, want 50 (InjectLoss runs first)", ab.Stats.Frames)
	}
	if got != 50 {
		t.Errorf("delivered %d, want 50", got)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	eng, a, b := linkPair()
	ab, ba := Apply(Plan{Seed: 21, AtoB: Dir{Loss: 1.0}}, a, b)
	gotA := 0
	a.SetHandler(func(*nic.Frame) { gotA++ })
	gotB := 0
	b.SetHandler(func(*nic.Frame) { gotB++ })
	for i := 0; i < 20; i++ {
		a.Send([]nic.SGEntry{{Data: []byte("a-to-b-frame")}})
		b.Send([]nic.SGEntry{{Data: []byte("b-to-a-frame")}})
	}
	eng.Run()
	if gotB != 0 {
		t.Errorf("A→B delivered %d at Loss=1", gotB)
	}
	if gotA != 20 {
		t.Errorf("B→A (clean Dir) delivered %d of 20", gotA)
	}
	if ab.Stats.Dropped != 20 || ba.Stats.Dropped != 0 {
		t.Errorf("stats crossed directions: ab=%v ba=%v", ab.Stats, ba.Stats)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Frames: 1, Dropped: 2, BurstDropped: 3, Reordered: 4, Duplicated: 5, Corrupted: 6}
	want := "frames=1 drop=2 burst=3 reorder=4 dup=5 corrupt=6"
	if s.String() != want {
		t.Errorf("String() = %q, want %q", s.String(), want)
	}
}
