// Package faults is a seeded, deterministic link-fault model for the
// simulated NIC. It turns the single hand-rolled nic.Port.InjectLoss hook
// into a composable adversary: per-direction random loss, bursty
// (Gilbert-style) loss, reordering, duplication, delay jitter, and
// payload corruption, all driven by a sim.Rand so a scenario is replayable
// from its seed alone.
//
// The model attaches to the wire path via nic.Port's Interceptor hook, so
// it composes with an existing InjectLoss function (a frame must survive
// both) and never interferes with buffer release: by the time the
// interceptor sees a frame the DMA engine has read and released the
// transmit buffers, which is exactly the window in which Cornflakes'
// use-after-free guarantee must hold the application's data alive for
// retransmission (§3).
//
// Corrupted copies are detected and dropped by the receiving NIC's frame
// check sequence (see nic.Port.RxFCSErrors), so from the transport's point
// of view corruption is one more loss mode — which is how real Ethernet
// behaves.
package faults

import (
	"fmt"

	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

// Dir configures the faults applied to one direction of a link. The zero
// value is a clean wire.
type Dir struct {
	// Loss is the independent per-frame drop probability.
	Loss float64
	// BurstLoss is the per-frame probability of entering a loss burst; once
	// in a burst, frames are dropped back to back until the burst length —
	// geometric with mean BurstLen (≥ 1) — is exhausted. This is the
	// classic two-state Gilbert channel, the pattern that exposes
	// retransmission-backoff bugs single-frame loss cannot.
	BurstLoss float64
	BurstLen  float64
	// Reorder is the probability a frame is held back by ReorderDelay,
	// letting frames sent after it arrive first.
	Reorder      float64
	ReorderDelay sim.Time
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Jitter adds a uniform [0, Jitter) delay to every delivery.
	Jitter sim.Time
	// Corrupt is the probability one payload byte of a delivered copy is
	// flipped on the wire.
	Corrupt float64
}

// Plan is a whole-link fault scenario: one seed, one Dir per direction.
// A→B is the direction from the first port passed to Apply.
type Plan struct {
	Seed uint64
	AtoB Dir
	BtoA Dir
}

// Stats counts what one direction's injector did to the traffic.
type Stats struct {
	Frames       uint64 // frames offered to the injector
	Dropped      uint64 // independent random losses
	BurstDropped uint64 // losses inside a burst
	Reordered    uint64
	Duplicated   uint64
	Corrupted    uint64
}

func (s Stats) String() string {
	return fmt.Sprintf("frames=%d drop=%d burst=%d reorder=%d dup=%d corrupt=%d",
		s.Frames, s.Dropped, s.BurstDropped, s.Reordered, s.Duplicated, s.Corrupted)
}

// Injector applies one direction's Dir to every frame crossing it.
type Injector struct {
	dir       Dir
	rng       *sim.Rand
	burstLeft int

	Stats Stats
}

// Apply installs the plan on a port pair (as returned by nic.Link) and
// returns the two per-direction injectors for stats inspection. Any
// InjectLoss hook already present on either port keeps working: the NIC
// consults it before the injector.
func Apply(plan Plan, a, b *nic.Port) (ab, ba *Injector) {
	root := sim.NewRand(plan.Seed)
	ab = &Injector{dir: plan.AtoB, rng: root.Fork(0)}
	ba = &Injector{dir: plan.BtoA, rng: root.Fork(1)}
	a.Interceptor = ab.intercept
	b.Interceptor = ba.intercept
	return ab, ba
}

// intercept implements nic.Interceptor. Draw order is fixed — burst, loss,
// reorder, corrupt, duplicate, then per-copy jitter — so a scenario's
// schedule depends only on the seed and the frame sequence.
func (in *Injector) intercept(data []byte) []nic.Delivery {
	in.Stats.Frames++
	if in.burstLeft > 0 {
		in.burstLeft--
		in.Stats.BurstDropped++
		return nil
	}
	if in.dir.BurstLoss > 0 && in.rng.Float64() < in.dir.BurstLoss {
		// This frame opens the burst; the geometric tail eats successors.
		in.burstLeft = in.geometricLen() - 1
		in.Stats.BurstDropped++
		return nil
	}
	if in.dir.Loss > 0 && in.rng.Float64() < in.dir.Loss {
		in.Stats.Dropped++
		return nil
	}

	var extra sim.Time
	if in.dir.Reorder > 0 && in.rng.Float64() < in.dir.Reorder {
		in.Stats.Reordered++
		extra = in.dir.ReorderDelay
	}
	first := nic.Delivery{Data: data, Delay: extra + in.jitter()}
	if in.dir.Corrupt > 0 && in.rng.Float64() < in.dir.Corrupt {
		in.Stats.Corrupted++
		first.Data = in.corrupt(data)
	}
	out := []nic.Delivery{first}
	if in.dir.Duplicate > 0 && in.rng.Float64() < in.dir.Duplicate {
		in.Stats.Duplicated++
		// The copy always carries the pristine bytes: duplication models a
		// switch re-forwarding the frame, not a second corruption event.
		out = append(out, nic.Delivery{Data: data, Delay: extra + in.jitter()})
	}
	return out
}

// geometricLen draws a geometric burst length with mean max(BurstLen, 1).
func (in *Injector) geometricLen() int {
	mean := in.dir.BurstLen
	if mean < 1 {
		mean = 1
	}
	// P(continue) = 1 - 1/mean gives a geometric with the requested mean.
	n := 1
	for in.rng.Float64() < 1-1/mean && n < 64 {
		n++
	}
	return n
}

// jitter draws one delivery's delay jitter.
func (in *Injector) jitter() sim.Time {
	if in.dir.Jitter <= 0 {
		return 0
	}
	return in.rng.Duration(in.dir.Jitter)
}

// corrupt returns a copy of frame with one byte flipped (never to its
// original value, so the receiving NIC's FCS always detects it).
func (in *Injector) corrupt(frame []byte) []byte {
	c := append([]byte(nil), frame...)
	if len(c) == 0 {
		return c
	}
	i := in.rng.Intn(len(c))
	c[i] ^= byte(1 + in.rng.Intn(255))
	return c
}
