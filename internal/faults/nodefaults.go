// Node- and fabric-level faults: where faults.Plan models an adversarial
// wire, NodeFaultPlan models an adversarial *rack* — whole shards crashing
// and rebooting cold, nodes limping through gray failure at k× their
// modelled service cost, and switch ports flapping administratively up and
// down. Like the link plans, a node plan is seeded and replayable: every
// jittered transition is drawn from a sim.Rand at schedule time, so the
// exact same storm replays from (plan, topology) alone.
//
// The plan drives the topology through two small interfaces rather than
// concrete driver/fabric types, keeping this package's dependencies where
// they are (nic + sim only): driver.KVServer implements FaultNode,
// fabric.Switch implements PortAdmin.
package faults

import (
	"sync"

	"cornflakes/internal/sim"
)

// FaultNode is the node-level fault surface a plan drives. Crash kills the
// node (arriving traffic discarded, accepted-but-unserved work dropped);
// Recover restarts it cold (caches flushed — a rebooted machine has no
// warm lines); SetGray(k) makes it serve at k× its modelled cost (k ≤ 1
// restores healthy service).
type FaultNode interface {
	Crash()
	Recover()
	SetGray(slowdown float64)
}

// PortAdmin flips fabric switch ports administratively up and down.
type PortAdmin interface {
	SetPortAdmin(addr byte, up bool)
}

// NodeCrash schedules one crash (and optionally the recovery) of a node.
type NodeCrash struct {
	// Node indexes into the node slice given to ScheduleNodePlan.
	Node int
	// At is the crash instant.
	At sim.Time
	// Downtime is how long the node stays dead before recovering cold.
	// Zero means it never comes back.
	Downtime sim.Time
}

// GrayFailure schedules a degraded-but-alive window on a node: it keeps
// answering, just at Slowdown× the modelled service time — the failure
// mode plain timeouts handle worst, because nothing ever times the node
// out decisively.
type GrayFailure struct {
	Node int
	At   sim.Time
	// Duration bounds the gray window; zero means the rest of the run.
	Duration sim.Time
	// Slowdown is the service-time multiplier (≥ 1).
	Slowdown float64
}

// PortFlap schedules Count down/up cycles of one switch port.
type PortFlap struct {
	// Addr is the fabric address whose port flaps.
	Addr byte
	// At is the first down transition.
	At sim.Time
	// Down is how long the port stays down each cycle.
	Down sim.Time
	// Count is the number of down/up cycles (≥ 1).
	Count int
	// Period is the cycle start-to-start spacing; it is clamped to exceed
	// Down so consecutive cycles cannot overlap.
	Period sim.Time
	// Jitter perturbs every transition by a seeded uniform [0, Jitter)
	// draw, so a storm's edges are irregular but replayable.
	Jitter sim.Time
}

// NodeFaultPlan is a whole-rack fault scenario: one seed, any mix of
// crashes, gray windows and port flaps.
type NodeFaultPlan struct {
	Seed    uint64
	Crashes []NodeCrash
	Grays   []GrayFailure
	Flaps   []PortFlap
}

// NodeSchedule counts the transitions a scheduled plan executed, for
// asserting a scenario actually engaged.
type NodeSchedule struct {
	Crashes, Recoveries uint64
	GraysOn, GraysOff   uint64
	FlapsDown, FlapsUp  uint64
}

// ScheduleNodePlan maps the plan onto engine timers against the given
// nodes and switch, returning the transition counters (live — they
// increment as the engine executes the plan). Out-of-range node indexes,
// sub-1 slowdowns and zero-count flaps are skipped; a nil sw skips flaps.
// All jitter is drawn here, at schedule time, in plan order, so the
// realized storm depends only on (Seed, plan) — never on traffic.
func ScheduleNodePlan(eng *sim.Engine, plan NodeFaultPlan, nodes []FaultNode, sw PortAdmin) *NodeSchedule {
	engs := make([]*sim.Engine, len(nodes))
	for i := range engs {
		engs[i] = eng
	}
	return ScheduleNodePlanOn(engs, eng, plan, nodes, sw)
}

// ScheduleNodePlanOn is ScheduleNodePlan for topologies whose nodes live on
// separate engine shards (parallel-in-time mode): each node's transitions
// arm on that node's engine — crashing a node mutates its stack and cache,
// which only its own partition may touch mid-run — and port flaps arm on
// the switch's engine, which owns the admin state. engs is index-aligned
// with nodes. The counters are mutex-guarded because transitions on
// different shards can execute in the same barrier window; read them only
// after the run returns (the run's completion orders all increments).
// With every engine the same this is exactly ScheduleNodePlan.
func ScheduleNodePlanOn(engs []*sim.Engine, swEng *sim.Engine, plan NodeFaultPlan, nodes []FaultNode, sw PortAdmin) *NodeSchedule {
	ns := &NodeSchedule{}
	var mu sync.Mutex
	count := func(c *uint64) {
		mu.Lock()
		*c++
		mu.Unlock()
	}
	rng := sim.NewRand(plan.Seed ^ 0xF1A_BEEF)
	at := func(eng *sim.Engine, t sim.Time, fn func()) {
		if t <= eng.Now() {
			t = eng.Now() + 1
		}
		eng.At(t, fn)
	}
	for _, cr := range plan.Crashes {
		if cr.Node < 0 || cr.Node >= len(nodes) {
			continue
		}
		n, eng := nodes[cr.Node], engs[cr.Node]
		at(eng, cr.At, func() { n.Crash(); count(&ns.Crashes) })
		if cr.Downtime > 0 {
			at(eng, cr.At+cr.Downtime, func() { n.Recover(); count(&ns.Recoveries) })
		}
	}
	for _, g := range plan.Grays {
		if g.Node < 0 || g.Node >= len(nodes) || g.Slowdown <= 1 {
			continue
		}
		n, eng := nodes[g.Node], engs[g.Node]
		k := g.Slowdown
		at(eng, g.At, func() { n.SetGray(k); count(&ns.GraysOn) })
		if g.Duration > 0 {
			at(eng, g.At+g.Duration, func() { n.SetGray(1); count(&ns.GraysOff) })
		}
	}
	for _, fl := range plan.Flaps {
		if sw == nil || fl.Count < 1 || fl.Down <= 0 {
			continue
		}
		period := fl.Period
		if period <= fl.Down {
			period = fl.Down + 1
		}
		addr := fl.Addr
		t := fl.At
		for k := 0; k < fl.Count; k++ {
			downAt := t + rng.Duration(fl.Jitter)
			upAt := t + fl.Down + rng.Duration(fl.Jitter)
			if upAt <= downAt {
				upAt = downAt + 1
			}
			at(swEng, downAt, func() { sw.SetPortAdmin(addr, false); count(&ns.FlapsDown) })
			at(swEng, upAt, func() { sw.SetPortAdmin(addr, true); count(&ns.FlapsUp) })
			t += period
		}
	}
	return ns
}
