package faults

import (
	"fmt"
	"testing"

	"cornflakes/internal/sim"
)

// recNode records every fault transition with its engine timestamp.
type recNode struct {
	eng *sim.Engine
	log *[]string
	id  int
}

func (n *recNode) Crash()   { *n.log = append(*n.log, fmt.Sprintf("%d crash @%d", n.id, n.eng.Now())) }
func (n *recNode) Recover() { *n.log = append(*n.log, fmt.Sprintf("%d recover @%d", n.id, n.eng.Now())) }
func (n *recNode) SetGray(k float64) {
	*n.log = append(*n.log, fmt.Sprintf("%d gray %.1f @%d", n.id, k, n.eng.Now()))
}

// recSwitch records admin transitions with timestamps.
type recSwitch struct {
	eng *sim.Engine
	log *[]string
}

func (s *recSwitch) SetPortAdmin(addr byte, up bool) {
	*s.log = append(*s.log, fmt.Sprintf("port %d up=%v @%d", addr, up, s.eng.Now()))
}

func runPlan(plan NodeFaultPlan, nNodes int) ([]string, *NodeSchedule) {
	eng := sim.NewEngine()
	var log []string
	nodes := make([]FaultNode, nNodes)
	for i := range nodes {
		nodes[i] = &recNode{eng: eng, log: &log, id: i}
	}
	ns := ScheduleNodePlan(eng, plan, nodes, &recSwitch{eng: eng, log: &log})
	eng.Run()
	return log, ns
}

func TestNodePlanCrashRecovery(t *testing.T) {
	log, ns := runPlan(NodeFaultPlan{
		Seed: 1,
		Crashes: []NodeCrash{
			{Node: 0, At: 100, Downtime: 50},
			{Node: 1, At: 200}, // Downtime 0: never recovers
		},
	}, 2)
	want := []string{"0 crash @100", "0 recover @150", "1 crash @200"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
	if ns.Crashes != 2 || ns.Recoveries != 1 {
		t.Errorf("schedule = %+v, want 2 crashes / 1 recovery", ns)
	}
}

func TestNodePlanGrayWindow(t *testing.T) {
	log, ns := runPlan(NodeFaultPlan{
		Seed: 1,
		Grays: []GrayFailure{
			{Node: 0, At: 100, Duration: 300, Slowdown: 6},
			{Node: 1, At: 200, Slowdown: 4}, // Duration 0: rest of run
		},
	}, 2)
	want := []string{"0 gray 6.0 @100", "1 gray 4.0 @200", "0 gray 1.0 @400"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", log, want)
	}
	if ns.GraysOn != 2 || ns.GraysOff != 1 {
		t.Errorf("schedule = %+v, want 2 on / 1 off", ns)
	}
}

func TestNodePlanFlapCycles(t *testing.T) {
	log, ns := runPlan(NodeFaultPlan{
		Seed: 1,
		Flaps: []PortFlap{{Addr: 3, At: 1000, Down: 100, Count: 3, Period: 500}},
	}, 1)
	if ns.FlapsDown != 3 || ns.FlapsUp != 3 {
		t.Fatalf("schedule = %+v, want 3 down / 3 up", ns)
	}
	want := []string{
		"port 3 up=false @1000", "port 3 up=true @1100",
		"port 3 up=false @1500", "port 3 up=true @1600",
		"port 3 up=false @2000", "port 3 up=true @2100",
	}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

// Jittered flap edges must replay identically from the same seed and
// diverge across seeds.
func TestNodePlanJitterSeeded(t *testing.T) {
	flaps := []PortFlap{{Addr: 2, At: 1000, Down: 200, Count: 4, Period: 1000, Jitter: 150}}
	a, _ := runPlan(NodeFaultPlan{Seed: 7, Flaps: flaps}, 1)
	b, _ := runPlan(NodeFaultPlan{Seed: 7, Flaps: flaps}, 1)
	c, _ := runPlan(NodeFaultPlan{Seed: 8, Flaps: flaps}, 1)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different storms:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced an identical jittered storm")
	}
}

// Invalid plan entries are skipped rather than panicking or firing.
func TestNodePlanSkipsInvalid(t *testing.T) {
	log, ns := runPlan(NodeFaultPlan{
		Seed:    1,
		Crashes: []NodeCrash{{Node: -1, At: 10}, {Node: 5, At: 10}},
		Grays:   []GrayFailure{{Node: 0, At: 10, Slowdown: 1.0}, {Node: 9, At: 10, Slowdown: 3}},
		Flaps:   []PortFlap{{Addr: 1, At: 10, Down: 100, Count: 0}, {Addr: 1, At: 10, Down: 0, Count: 2}},
	}, 2)
	if len(log) != 0 {
		t.Errorf("invalid entries fired: %v", log)
	}
	if *ns != (NodeSchedule{}) {
		t.Errorf("schedule = %+v, want all-zero", ns)
	}
}

// A nil PortAdmin skips flaps without touching the node entries.
func TestNodePlanNilSwitch(t *testing.T) {
	eng := sim.NewEngine()
	var log []string
	nodes := []FaultNode{&recNode{eng: eng, log: &log, id: 0}}
	ns := ScheduleNodePlan(eng, NodeFaultPlan{
		Crashes: []NodeCrash{{Node: 0, At: 50, Downtime: 10}},
		Flaps:   []PortFlap{{Addr: 1, At: 10, Down: 5, Count: 3, Period: 20}},
	}, nodes, nil)
	eng.Run()
	if ns.FlapsDown != 0 || ns.FlapsUp != 0 {
		t.Errorf("flaps fired with nil switch: %+v", ns)
	}
	if ns.Crashes != 1 || ns.Recoveries != 1 {
		t.Errorf("crash entries lost: %+v", ns)
	}
}

// Transitions scheduled at or before "now" are clamped just after now, so a
// plan armed mid-run never tries to rewind the engine.
func TestNodePlanClampsPastTimes(t *testing.T) {
	eng := sim.NewEngine()
	var log []string
	nodes := []FaultNode{&recNode{eng: eng, log: &log, id: 0}}
	eng.After(500, func() {
		ScheduleNodePlan(eng, NodeFaultPlan{
			Crashes: []NodeCrash{{Node: 0, At: 100, Downtime: 1}},
		}, nodes, nil)
	})
	eng.Run()
	// Both edges are in the past; both clamp to now+1 and fire in plan
	// order — crash strictly before recovery.
	want := []string{"0 crash @501", "0 recover @501"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

// Period ≤ Down is clamped so consecutive cycles cannot overlap: every down
// edge must come strictly after the previous up edge.
func TestNodePlanPeriodClamp(t *testing.T) {
	log, ns := runPlan(NodeFaultPlan{
		Seed:  3,
		Flaps: []PortFlap{{Addr: 1, At: 100, Down: 50, Count: 3, Period: 10}},
	}, 1)
	if ns.FlapsDown != 3 || ns.FlapsUp != 3 {
		t.Fatalf("schedule = %+v, want 3/3", ns)
	}
	// The recSwitch log is in execution order; alternating down/up proves
	// no overlap.
	for i, e := range log {
		wantUp := i%2 == 1
		if got := e[len("port 1 up=")] == 't'; got != wantUp {
			t.Fatalf("log[%d] = %q breaks down/up alternation (%v)", i, e, log)
		}
	}
}
