package rpc

import (
	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/driver"
	"cornflakes/internal/fabric"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/trace"
)

// ChainConfig describes a service-chain topology: a client calling a
// linear chain of Depth tiers, with the last tier optionally fanning out
// to Fanout leaf backends, plus an optional one-way notification sink fed
// by the frontend. The shape models the client → frontend → backends call
// graphs of datacenter microservices.
type ChainConfig struct {
	Sys     driver.System
	Profile nic.Profile
	Cache   cachesim.Config
	Fabric  fabric.Config

	// Depth is the number of chained tiers (≥ 1). Fanout adds that many
	// leaf backends under the deepest tier (0 = the deepest tier is the
	// leaf itself).
	Depth  int
	Fanout int

	// AppCycles is the per-tier application work; ReqBytes / FwdBytes /
	// RespBytes size the client call, inter-tier call, and reply payloads.
	AppCycles float64
	ReqBytes  int
	FwdBytes  int
	RespBytes int

	// CallTimeout is each tier's fan-in deadline (zero disables —
	// sensible only when the client's retry deadline bounds the wait).
	CallTimeout sim.Time
	// ShedQueue arms per-tier admission control (zero disables).
	ShedQueue int

	// Offload gives every tier a NIC-side serialization engine: reply and
	// forward marshalling leaves the host cores.
	Offload bool
	// Notify makes the frontend emit a one-way completion event to a
	// dedicated sink node per reply.
	Notify bool

	// Tracer receives per-hop phase marks on all tiers.
	Tracer *trace.Tracer

	// Partition builds the chain on a partitioned rack: every tier, leaf,
	// sink and the client gets its own event-queue shard and the run uses
	// all host cores between lookahead barriers (drive it via Rack.Exec).
	// Fingerprint-identical to the serial build.
	Partition bool
}

// Chain is a built topology: the rack, the tiers in hop order (chain tiers
// first, then the fan-out leaves), the optional sink, and the client.
type Chain struct {
	*driver.Rack
	Services []*Service // chain tiers then leaves, in hop order
	Leaves   []*Service // the fan-out subset of Services (if any)
	Sink     *Service   // notification sink (nil unless cfg.Notify)
	Client   *Client
}

// NewChain builds the call graph on a fresh Rack. Plug-in order — tiers,
// leaves, sink, client — is part of the deterministic identity of a run,
// exactly like ClusterTestbed's servers-then-clients order.
func NewChain(cfg ChainConfig) *Chain {
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	rack := driver.NewRack(cfg.Fabric)
	if cfg.Partition {
		rack = driver.NewRackPartitioned(cfg.Fabric)
	}
	c := &Chain{Rack: rack}

	mk := func(name string, hop int) *Service {
		n, addr := c.AddNode(cfg.Profile, cfg.Cache)
		s := NewService(n, cfg.Sys, name, hop, addr)
		s.CallTimeout = cfg.CallTimeout
		s.AppCycles = cfg.AppCycles
		s.ShedQueue = cfg.ShedQueue
		s.Tracer = cfg.Tracer
		if cfg.FwdBytes > 0 {
			s.FwdBytes = cfg.FwdBytes
		}
		if cfg.RespBytes > 0 {
			s.RespBytes = cfg.RespBytes
		}
		c.Services = append(c.Services, s)
		return s
	}

	tiers := make([]*Service, cfg.Depth)
	for i := 0; i < cfg.Depth; i++ {
		tiers[i] = mk("t"+string('0'+byte(i+1)), i+1)
	}
	for i := 0; i < cfg.Depth-1; i++ {
		tiers[i].Backends = []byte{tiers[i+1].Addr}
	}
	for j := 0; j < cfg.Fanout; j++ {
		leaf := mk("leaf"+string('0'+byte(j)), cfg.Depth+1)
		c.Leaves = append(c.Leaves, leaf)
		tiers[cfg.Depth-1].Backends = append(tiers[cfg.Depth-1].Backends, leaf.Addr)
	}
	if cfg.Notify {
		c.Sink = mk("sink", cfg.Depth+2)
		tiers[0].NotifyAddr = c.Sink.Addr
	}
	if cfg.Offload {
		for _, s := range c.Services {
			if s == c.Sink {
				continue // the sink only consumes; nothing to offload
			}
			// The offload engine is part of the tier's NIC: it must live on
			// the tier's own engine, not the rack's — on a partitioned rack
			// the rack engine is the switch's shard, and a tier scheduling
			// offload work there from its own shard would race. (On a serial
			// rack the two engines are the same, so this is also the fix for
			// a latent wrong-engine wart.)
			off := sim.NewCore(s.N.Eng)
			off.MaxQueue = 1024
			s.Offload = off
		}
	}

	cn, _ := c.AddNode(cfg.Profile, cachesim.DefaultConfig())
	c.Client = NewClient(cn, cfg.Sys, tiers[0].Addr)
	if cfg.ReqBytes > 0 {
		c.Client.ReqBytes = cfg.ReqBytes
	}
	return c
}

// Hops is the end-to-end tier count of a request's critical path
// (chain depth plus the fan-out layer if present).
func (c *Chain) Hops() int {
	if len(c.Leaves) > 0 {
		return len(c.Services) - len(c.Leaves) + 1
	}
	n := len(c.Services)
	if c.Sink != nil {
		n--
	}
	return n
}

// HostReceipt sums the host-core receipts over every tier (not the sink)
// and the handled-call count; OffloadReceipt does the same for the
// NIC-side engines. Both feed the serialization-share and offload-benefit
// observables.
func (c *Chain) HostReceipt() (costmodel.Receipt, uint64) { return c.receipts(false) }

// OffloadReceipt sums the offload-engine receipts over every tier.
func (c *Chain) OffloadReceipt() (costmodel.Receipt, uint64) { return c.receipts(true) }

func (c *Chain) receipts(off bool) (costmodel.Receipt, uint64) {
	var rec costmodel.Receipt
	var n uint64
	for _, s := range c.Services {
		if s == c.Sink {
			continue
		}
		if off {
			rec.Add(s.OffRec)
		} else {
			rec.Add(s.HostRec)
		}
		n += s.Handled
	}
	return rec, n
}

// ChildLedgersExact verifies every tier's fan-out disposal invariant.
func (c *Chain) ChildLedgersExact() bool {
	for _, s := range c.Services {
		if !s.ChildLedgerExact() || s.PendingChildren() != 0 {
			return false
		}
	}
	return true
}
