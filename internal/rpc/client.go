package rpc

import (
	"errors"

	"cornflakes/internal/driver"
	"cornflakes/internal/workloads"
)

// Client adapts the RPC protocol to loadgen.Client: every generated
// request becomes one KindCall to the frontend service, with the flow's
// wire id as both call id and root id (hop 0), so the frontend's eventual
// KindReply — or the shed frame a failing tier propagated up — resolves
// the flow directly. Service-side call ids live in the high byte-tagged
// space (addr<<56), far above loadgen's per-client id ranges, so the two
// id spaces can never collide.
type Client struct {
	N   *driver.Node
	Sys driver.System
	// Frontend is the fabric address of the chain's first tier.
	Frontend byte
	// Method tags outgoing calls (one RPC method in this harness).
	Method byte
	// ReqBytes sizes the call payload the client marshals per attempt.
	ReqBytes int

	codec  codec
	keyBuf []byte
	valBuf []byte
}

// NewClient builds the load-generator endpoint on a rack node.
func NewClient(n *driver.Node, sys driver.System, frontend byte) *Client {
	return &Client{
		N: n, Sys: sys, Frontend: frontend, Method: 1, ReqBytes: 64,
		codec:  codec{sys: sys, n: n},
		keyBuf: []byte("rpc"),
	}
}

// Steps implements loadgen.Client: every RPC is one exchange.
func (c *Client) Steps(workloads.Request) int { return 1 }

// BuildStep implements loadgen.Client: marshal one call frame aimed at the
// frontend. Like ClusterKVClient, addressing is a build-time side effect on
// the node's UDP stack.
func (c *Client) BuildStep(id uint64, _ workloads.Request, _ int) []byte {
	if c.valBuf == nil {
		c.valBuf = make([]byte, c.ReqBytes)
	}
	h := Header{Kind: KindCall, Method: c.Method, Hop: 0, CallID: id, RootID: id}
	frame := c.codec.buildCall(h, c.keyBuf, c.valBuf)
	c.N.Arena.Reset()
	c.N.UDP.DstAddr = c.Frontend
	return frame
}

// ResponseID implements loadgen.Client: the root id rides in the header of
// every frame, so no deserialization is needed to resolve the flow. Shed
// frames (0xEE + id) are the generator's ShedID path, not ours.
func (c *Client) ResponseID(p []byte) (uint64, error) {
	id, ok := PeekRootID(p)
	if !ok {
		return 0, errors.New("rpc: short reply frame")
	}
	return id, nil
}
