package rpc

import (
	"testing"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/sim"
)

// Satellite: the fan-out/fan-in wasted-work ledger, pinned as a property
// over a grid of fanouts, leaf slowdowns, deadlines, and rates.
//
// The invariant under test: a backend reply that arrives after its parent
// already gave up (fan-in timeout or a sibling's failure) is WASTED work —
// it must be classified as a late child reply, never double-counted as a
// fan-in, and never resurrect the parent call. Exactly:
//
//	ChildCalls == ChildReplies + ChildSheds + ChildAbandoned   (disposal)
//	LateChildReplies ≤ ChildAbandoned                          (waste bound)
//	pending table empty after quiesce                          (no leaks)
//
// and the client's own disposal ledger stays exact through it all.
func TestFanInLateReplyProperty(t *testing.T) {
	type grid struct {
		fanout    int
		slowLeafs int      // how many leaves get pathological app cost
		slowCy    float64  // their per-call app cycles
		deadline  sim.Time // parent fan-in deadline
		rate      float64
		seed      uint64
	}
	cases := []grid{
		{fanout: 2, slowLeafs: 1, slowCy: 400_000, deadline: 100 * sim.Microsecond, rate: 30_000, seed: 11},
		{fanout: 3, slowLeafs: 1, slowCy: 900_000, deadline: 150 * sim.Microsecond, rate: 40_000, seed: 12},
		{fanout: 4, slowLeafs: 2, slowCy: 600_000, deadline: 80 * sim.Microsecond, rate: 50_000, seed: 13},
		{fanout: 2, slowLeafs: 0, slowCy: 0, deadline: 500 * sim.Microsecond, rate: 20_000, seed: 14},
		{fanout: 3, slowLeafs: 3, slowCy: 700_000, deadline: 60 * sim.Microsecond, rate: 60_000, seed: 15},
	}
	var sawLate, sawTimeout bool
	for _, g := range cases {
		cfg := chainCfg(driver.SysCornflakes, 1, g.fanout)
		cfg.CallTimeout = g.deadline
		c := NewChain(cfg)
		for i := 0; i < g.slowLeafs; i++ {
			c.Leaves[i].AppCycles = g.slowCy
		}
		res := loadgen.Run(loadgen.Config{
			Eng: c.Eng, EP: c.Client.N.UDP,
			Gen: genConst{}, Client: c.Client,
			RatePerS: g.rate,
			Warmup:   100 * sim.Microsecond,
			Measure:  1 * sim.Millisecond,
			Seed:     g.seed,
			Retry:    loadgen.RetryPolicy{Deadline: 2 * sim.Millisecond},
			ShedID:   driver.ShedID,
		})
		c.Eng.Run() // every straggler reply and armed timer resolves

		assertDisposalExact(t, res)
		assertLedgers(t, c)
		parent := c.Services[0]
		if parent.LateChildReplies > parent.ChildAbandoned {
			t.Errorf("fanout=%d: %d late replies exceed %d abandoned children",
				g.fanout, parent.LateChildReplies, parent.ChildAbandoned)
		}
		// A late reply must not complete the parent: completions require a
		// full fan-in, so the client can never see more completions than
		// the parent fully-fanned-in calls.
		full := parent.Handled - parent.ChildTimeouts
		if res.Completed > full {
			t.Errorf("fanout=%d: %d completions exceed %d fully fanned-in calls",
				g.fanout, res.Completed, full)
		}
		sawLate = sawLate || parent.LateChildReplies > 0
		sawTimeout = sawTimeout || parent.ChildTimeouts > 0
	}
	// The grid must actually exercise the phenomenon, or the property is
	// vacuous.
	if !sawLate {
		t.Error("no grid case produced a late child reply")
	}
	if !sawTimeout {
		t.Error("no grid case produced a fan-in timeout")
	}
}

// A sibling's failure abandons the rest of the fan-out: their replies are
// wasted work, and exactly one upstream failure is sent per parent call.
func TestFanInSiblingFailureAbandonsRest(t *testing.T) {
	cfg := chainCfg(driver.SysCornflakes, 1, 3)
	cfg.CallTimeout = 2 * sim.Millisecond // generous: failures, not timeouts
	c := NewChain(cfg)
	// One leaf is slow with a one-deep admission bound: once its queue
	// backs up it sheds fast, so a failing parent call sees one quick
	// failure plus two healthy (now pointless) replies.
	c.Leaves[0].ShedQueue = 1
	c.Leaves[0].AppCycles = 300_000
	res := loadgen.Run(loadgen.Config{
		Eng: c.Eng, EP: c.Client.N.UDP,
		Gen: genConst{}, Client: c.Client,
		RatePerS: 40_000,
		Warmup:   100 * sim.Microsecond,
		Measure:  1 * sim.Millisecond,
		Seed:     21,
		Retry:    loadgen.RetryPolicy{Deadline: 3 * sim.Millisecond},
		ShedID:   driver.ShedID,
	})
	c.Eng.Run()

	parent := c.Services[0]
	if parent.ChildSheds == 0 {
		t.Fatal("no child ever shed")
	}
	assertDisposalExact(t, res)
	assertLedgers(t, c)
	// Each failed parent call wrote off its outstanding siblings; their
	// replies arrived anyway and were classified as waste.
	if parent.ChildAbandoned == 0 || parent.LateChildReplies == 0 {
		t.Fatalf("sibling failure produced no abandoned/late children (abandoned=%d late=%d)",
			parent.ChildAbandoned, parent.LateChildReplies)
	}
	if res.Shed == 0 {
		t.Fatal("client never saw the propagated failure")
	}
}
