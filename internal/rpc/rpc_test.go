package rpc

import (
	"math/rand/v2"
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/driver"
	"cornflakes/internal/fabric"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

type genConst struct{}

func (genConst) Name() string                      { return "const" }
func (genConst) Records() []workloads.KV           { return nil }
func (genConst) Next(*rand.Rand) workloads.Request { return workloads.Request{Op: workloads.OpGet} }

func chainCfg(sys driver.System, depth, fanout int) ChainConfig {
	return ChainConfig{
		Sys: sys, Profile: nic.MellanoxCX6(), Cache: cachesim.DefaultConfig(),
		Fabric:    fabric.Config{},
		Depth:     depth, Fanout: fanout,
		AppCycles: 1500, ReqBytes: 64, FwdBytes: 64, RespBytes: 128,
	}
}

func runChain(t *testing.T, c *Chain, rate float64, retry loadgen.RetryPolicy, hedge loadgen.HedgePolicy) loadgen.Result {
	t.Helper()
	res := loadgen.Run(loadgen.Config{
		Eng: c.Eng, EP: c.Client.N.UDP,
		Gen: genConst{}, Client: c.Client,
		RatePerS: rate,
		Warmup:   200 * sim.Microsecond,
		Measure:  2 * sim.Millisecond,
		Seed:     7,
		Retry:    retry,
		Hedge:    hedge,
		ShedID:   driver.ShedID,
	})
	c.Eng.Run() // quiesce: fan-in timers and stragglers resolve
	return res
}

func assertDisposalExact(t *testing.T, res loadgen.Result) {
	t.Helper()
	if res.Sent != res.Completed+res.Shed+res.TimedOut+res.Unresolved {
		t.Fatalf("disposal gap: sent=%d done=%d shed=%d to=%d unres=%d",
			res.Sent, res.Completed, res.Shed, res.TimedOut, res.Unresolved)
	}
}

func assertLedgers(t *testing.T, c *Chain) {
	t.Helper()
	for _, s := range c.Services {
		if !s.ChildLedgerExact() {
			t.Errorf("%s: child ledger gap: calls=%d replies=%d sheds=%d abandoned=%d late=%d",
				s.Name, s.ChildCalls, s.ChildReplies, s.ChildSheds, s.ChildAbandoned, s.LateChildReplies)
		}
		if n := s.PendingChildren(); n != 0 {
			t.Errorf("%s: %d children still pending after quiesce", s.Name, n)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Kind: KindReply, Method: 7, Hop: 3, CallID: 0xDEADBEEF01, RootID: 0x1CEB00DA02}
	var b [HeaderLen]byte
	h.EncodeTo(b[:])
	if got := DecodeHeader(b[:]); got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
	id, ok := PeekRootID(b[:])
	if !ok || id != h.RootID {
		t.Fatalf("PeekRootID = %x, %v", id, ok)
	}
	if _, ok := PeekRootID(b[:HeaderLen-1]); ok {
		t.Fatal("PeekRootID accepted a short frame")
	}
}

// Every serialization system must carry a call through a single hop and
// back, with real (metered) marshalling on the service.
func TestSingleHopAllSystems(t *testing.T) {
	for _, sys := range driver.AllSystems() {
		t.Run(sys.String(), func(t *testing.T) {
			c := NewChain(chainCfg(sys, 1, 0))
			res := runChain(t, c, 40_000, loadgen.RetryPolicy{}, loadgen.HedgePolicy{})
			if res.Completed == 0 {
				t.Fatal("no calls completed")
			}
			assertDisposalExact(t, res)
			svc := c.Services[0]
			if svc.Errors != 0 {
				t.Fatalf("service errors: %d", svc.Errors)
			}
			if svc.RepliesSent != svc.Handled {
				t.Fatalf("replies %d != handled %d", svc.RepliesSent, svc.Handled)
			}
			rec, n := c.HostReceipt()
			if n == 0 || rec.Cycles[costmodel.CatSerialize] <= 0 || rec.Cycles[costmodel.CatDeserialize] <= 0 {
				t.Fatalf("marshalling not metered: n=%d ser=%.0f des=%.0f",
					n, rec.Cycles[costmodel.CatSerialize], rec.Cycles[costmodel.CatDeserialize])
			}
		})
	}
}

// Chaining tiers compounds marshalling: total host serialization cycles
// per completed call must grow roughly linearly with hop count.
func TestSerializationCompoundsPerHop(t *testing.T) {
	perCall := func(depth int) float64 {
		c := NewChain(chainCfg(driver.SysProtobuf, depth, 0))
		res := runChain(t, c, 30_000, loadgen.RetryPolicy{}, loadgen.HedgePolicy{})
		if res.Completed == 0 {
			t.Fatalf("depth %d: nothing completed", depth)
		}
		rec, _ := c.HostReceipt()
		ser := rec.Cycles[costmodel.CatSerialize] + rec.Cycles[costmodel.CatDeserialize]
		return ser / float64(res.Completed)
	}
	d1, d3 := perCall(1), perCall(3)
	if d3 < 2*d1 {
		t.Fatalf("ser/des per call did not compound with depth: d1=%.0f d3=%.0f", d1, d3)
	}
}

// A mid-chain admission shed must propagate hop by hop to the client and
// classify as Shed there, leaving the disposal ledger exact.
func TestShedPropagatesUpstream(t *testing.T) {
	cfg := chainCfg(driver.SysCornflakes, 2, 0)
	cfg.CallTimeout = 200 * sim.Microsecond
	c := NewChain(cfg)
	// Choke the deepest tier only: the frontend stays healthy, so every
	// client-visible shed had to ride through it.
	c.Services[1].ShedQueue = 1
	c.Services[1].AppCycles = 200_000
	res := runChain(t, c, 60_000,
		loadgen.RetryPolicy{Deadline: 2 * sim.Millisecond}, loadgen.HedgePolicy{})
	if res.Shed == 0 {
		t.Fatal("no sheds reached the client")
	}
	if c.Services[0].ChildSheds == 0 {
		t.Fatal("frontend never saw a backend shed")
	}
	assertDisposalExact(t, res)
	assertLedgers(t, c)
}

// One-way notifications: the frontend emits one per reply, the sink
// processes every one that the fabric delivered, and nobody answers them.
func TestNotifySink(t *testing.T) {
	cfg := chainCfg(driver.SysCornflakes, 1, 0)
	cfg.Notify = true
	c := NewChain(cfg)
	res := runChain(t, c, 30_000, loadgen.RetryPolicy{}, loadgen.HedgePolicy{})
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	front := c.Services[0]
	if front.NotifiesSent == 0 {
		t.Fatal("frontend sent no notifies")
	}
	if c.Sink.NotifiesRecv != front.NotifiesSent {
		t.Fatalf("sink processed %d of %d notifies", c.Sink.NotifiesRecv, front.NotifiesSent)
	}
	if c.Sink.RepliesSent != 0 {
		t.Fatal("sink answered a one-way frame")
	}
}

// The RPCAcc-style offload engine must move serialization cycles off the
// host cores: host-side ser/des per handled call drops to the header-only
// residue, and the moved cycles show up on the offload receipts instead.
func TestOffloadMovesSerializationOffHost(t *testing.T) {
	hostSer := func(off bool) (perCall float64, c *Chain) {
		cfg := chainCfg(driver.SysProtobuf, 2, 0)
		cfg.Offload = off
		c = NewChain(cfg)
		res := runChain(t, c, 30_000, loadgen.RetryPolicy{}, loadgen.HedgePolicy{})
		if res.Completed == 0 {
			t.Fatalf("offload=%v: nothing completed", off)
		}
		rec, n := c.HostReceipt()
		return rec.Cycles[costmodel.CatSerialize] / float64(n), c
	}
	on, con := hostSer(true)
	off, _ := hostSer(false)
	if off <= 0 {
		t.Fatalf("baseline host serialization is zero (%.1f)", off)
	}
	if on > off/2 {
		t.Fatalf("offload left %.1f ser cycles/call on host (baseline %.1f)", on, off)
	}
	orec, _ := con.OffloadReceipt()
	if orec.Cycles[costmodel.CatSerialize] <= 0 {
		t.Fatal("offload engine recorded no serialization cycles")
	}
}

// Same seed, same config → byte-identical outcome counters and latency
// quantiles. The RPC layer must not leak map iteration or pointer order
// into the simulation.
func TestChainDeterminism(t *testing.T) {
	type fp struct {
		sent, done, shed, to uint64
		p50, p99             sim.Time
		handled              uint64
	}
	run := func() fp {
		cfg := chainCfg(driver.SysCornflakes, 3, 2)
		cfg.CallTimeout = 300 * sim.Microsecond
		c := NewChain(cfg)
		res := runChain(t, c, 50_000,
			loadgen.RetryPolicy{Deadline: 600 * sim.Microsecond, MaxRetries: 1, Backoff: 50 * sim.Microsecond},
			loadgen.HedgePolicy{})
		var h uint64
		for _, s := range c.Services {
			h += s.Handled
		}
		return fp{res.Sent, res.Completed, res.Shed, res.TimedOut, res.P50(), res.P99(), h}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic chain run:\n  a=%+v\n  b=%+v", a, b)
	}
}
