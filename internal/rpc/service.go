package rpc

import (
	"cornflakes/internal/costmodel"
	"cornflakes/internal/driver"
	"cornflakes/internal/mem"
	"cornflakes/internal/sim"
	"cornflakes/internal/trace"
)

// Service is one tier of a call graph: it serves KindCall frames on its
// node's core, optionally fans out to backend services and fans the
// replies back in, and answers its caller with a KindReply (or a shed
// frame when it rejects, a backend fails, or its fan-in deadline fires).
// All serialization work — decoding calls, encoding downstream calls and
// upstream replies — runs through the node's costmodel meter, so a chain
// of Services reproduces per-hop marshalling cost end to end.
type Service struct {
	N    *driver.Node
	Sys  driver.System
	Name string
	// Hop is this tier's depth in the graph (1 = frontend). Stamped into
	// outgoing frames and trace phase labels.
	Hop int
	// Addr is this service's fabric address (for diagnostics).
	Addr byte

	// Backends are the fabric addresses this tier calls before it can
	// answer. Empty means leaf: the tier replies directly.
	Backends []byte
	// CallTimeout bounds the fan-in wait for backend replies. Zero waits
	// forever (the client's own retry deadline is then the only bound).
	CallTimeout sim.Time
	// AppCycles is the modelled application work per handled call, charged
	// to CatApp between deserialize and the downstream/reply serialize.
	AppCycles float64
	// FwdBytes / RespBytes size the payloads of downstream calls and
	// upstream replies.
	FwdBytes  int
	RespBytes int
	// ShedQueue is the admission bound on the host core's queue depth
	// (driver.KVServer's ShedQueue, applied to RPC calls). Zero disables.
	ShedQueue int
	// NotifyAddr, when nonzero, makes this tier emit a one-way KindNotify
	// frame (NotifyBytes of payload) to that address after every reply it
	// sends — completion events feeding a logging/metrics sink.
	NotifyAddr  byte
	NotifyBytes int
	// Offload, when set, is a NIC-side serialization engine (its own
	// sim.Core on the same engine): the host core still pays RX, header
	// dispatch, deserialize, and app work, but reply/forward marshalling
	// and TX posting run — and queue — on the offload core. This is the
	// RPCAcc/Dagger deployment point: the hardware sits between the host
	// and the wire, so ser/des cycles leave the host's capacity budget.
	Offload *sim.Core
	// Tracer, when set, receives per-hop phase marks attributed to the
	// frame's root id ("rpc.h2.handle", "rpc.h2.reply"). Marks for
	// unsampled roots are dropped by the tracer itself.
	Tracer *trace.Tracer

	codec codec

	// pend maps outstanding downstream call ids to their fan-in state;
	// expired remembers call ids abandoned by a fan-in timeout or sibling
	// failure so their late replies can be told apart from garbage.
	pend     map[uint64]*inflight
	expired  map[uint64]struct{}
	nextCall uint64

	// Stats. The child-call ledger is exact after the engine quiesces:
	// ChildCalls == ChildReplies + ChildSheds + ChildAbandoned, and
	// LateChildReplies ≤ ChildAbandoned (a late reply is the wasted work
	// of an abandoned child arriving anyway).
	Handled          uint64 // calls admitted to the host core
	Shed             uint64 // calls rejected at admission
	Errors           uint64 // malformed frames, decode/send failures
	RepliesSent      uint64 // KindReply frames sent upstream
	FailsSent        uint64 // shed frames sent upstream (timeout/backend failure)
	NotifiesSent     uint64
	NotifiesRecv     uint64 // one-way frames processed as a sink
	ChildCalls       uint64
	ChildReplies     uint64 // backend replies fanned in while still wanted
	ChildSheds       uint64 // backend rejections/failures fanned in
	ChildAbandoned   uint64 // children written off by fan-in timeout or sibling failure
	ChildTimeouts    uint64 // fan-in deadlines that fired
	LateChildReplies uint64 // replies from abandoned children (wasted work)

	// HostRec / OffRec accumulate the cycle receipts drained on the host
	// core vs the offload engine, over RecN handled calls — the
	// serialization-share and offload-benefit observables.
	HostRec costmodel.Receipt
	OffRec  costmodel.Receipt
	RecN    uint64

	fwdBuf  []byte
	respBuf []byte
	noteBuf []byte
	keyBuf  []byte
}

// inflight is the fan-in state for one upstream call awaiting backends.
type inflight struct {
	h        Header // the upstream call being served
	src      byte   // who to answer
	await    int
	failed   bool
	timer    sim.Timer
	children []uint64
}

// NewService wires a Service onto a node's UDP stack. The node must come
// from the same Rack as its peers; backends and timeouts are configured on
// the returned value before load starts.
func NewService(n *driver.Node, sys driver.System, name string, hop int, addr byte) *Service {
	s := &Service{
		N: n, Sys: sys, Name: name, Hop: hop, Addr: addr,
		FwdBytes: 64, RespBytes: 64, NotifyBytes: 32,
		codec:   codec{sys: sys, n: n},
		pend:    make(map[uint64]*inflight),
		expired: make(map[uint64]struct{}),
		keyBuf:  []byte(name),
	}
	n.UDP.SetRecvHandler(s.onPayload)
	return s
}

func (s *Service) newCallID() uint64 {
	s.nextCall++
	return uint64(s.Addr)<<56 | s.nextCall
}

func (s *Service) phase(what string) string {
	return "rpc.h" + string('0'+byte(s.Hop)) + "." + what
}

// onPayload dispatches one delivered frame. Header inspection and fan-in
// bookkeeping run unmetered at frame-delivery time (they model the id-peek
// a real server does before committing a core to the request); everything
// serialized goes through a metered core job.
func (s *Service) onPayload(p *mem.Buf) {
	src := s.N.UDP.RxSrc
	b := p.Bytes()
	if id, ok := driver.ShedID(b); ok {
		p.DecRef()
		s.onChildFailure(id)
		return
	}
	if len(b) < HeaderLen {
		s.Errors++
		p.DecRef()
		return
	}
	h := DecodeHeader(b)
	switch h.Kind {
	case KindCall:
		s.onCall(h, p, src)
	case KindReply:
		s.onChildReply(h, p)
	case KindNotify:
		s.onNotify(p)
	default:
		s.Errors++
		p.DecRef()
	}
}

// onCall admits or sheds an incoming call, then serves it on the host core.
func (s *Service) onCall(h Header, p *mem.Buf, src byte) {
	if s.ShedQueue > 0 && s.N.Core.QueueLen() >= s.ShedQueue {
		s.failTo(h.CallID, h.RootID, src, "shed")
		s.Shed++
		p.DecRef()
		return
	}
	ok := s.N.Core.Submit(sim.Job{
		Start: func(sim.Time) {
			if s.Tracer != nil {
				s.Tracer.Mark(h.RootID, s.N.Eng.Now(), s.phase("handle"))
			}
		},
		Run: func() sim.Time { return s.serveCall(h, p, src) },
	})
	if !ok {
		p.DecRef()
	}
}

// serveCall is the host core's work for one call: metered deserialize, app
// work, then either the reply (leaf) or the downstream fan-out. The drain
// at the end charges exactly this call's host-side cycles to the core.
func (s *Service) serveCall(h Header, p *mem.Buf, src byte) sim.Time {
	m := s.N.Meter
	s.Handled++
	m.SetCategory(costmodel.CatDeserialize)
	if err := s.codec.decodeBody(p, false); err != nil {
		s.Errors++
	}
	m.SetCategory(costmodel.CatApp)
	m.Charge(s.AppCycles)
	if len(s.Backends) == 0 {
		s.finishCall(h, src)
	} else {
		s.callChildren(h, src)
	}
	s.N.Arena.Reset()
	d := m.DrainTime()
	s.HostRec.Add(m.TakeReceipt())
	s.RecN++
	m.SetCategory(costmodel.CatRx)
	return d
}

// finishCall sends the upstream reply (and the optional one-way notify).
// With an offload engine configured, the marshalling runs there instead of
// on the host core — the host's receipt for this call is already closed by
// the time the offload job executes, so the cycles land in OffRec.
func (s *Service) finishCall(h Header, src byte) {
	if s.Offload == nil {
		s.emitReply(h, src)
		return
	}
	ok := s.Offload.Submit(sim.Job{Run: func() sim.Time {
		m := s.N.Meter
		prev := m.SetCategory(costmodel.CatSerialize)
		s.emitReply(h, src)
		d := m.DrainTime()
		s.OffRec.Add(m.TakeReceipt())
		m.SetCategory(prev)
		return d
	}})
	if !ok {
		// Offload ring overflow: the reply is never built; the caller's
		// deadline machinery covers it.
		s.Errors++
	}
}

func (s *Service) emitReply(h Header, src byte) {
	m := s.N.Meter
	m.SetCategory(costmodel.CatSerialize)
	if s.respBuf == nil {
		s.respBuf = make([]byte, s.RespBytes)
	}
	rh := Header{Kind: KindReply, Method: h.Method, Hop: byte(s.Hop), CallID: h.CallID, RootID: h.RootID}
	frame := s.codec.buildReply(rh, s.respBuf)
	m.SetCategory(costmodel.CatTx)
	s.N.UDP.DstAddr = src
	if err := s.N.UDP.SendContiguous(frame, mem.UnpinnedSimAddr(frame)); err != nil {
		s.Errors++
	} else {
		s.RepliesSent++
	}
	if s.Tracer != nil {
		s.Tracer.Mark(h.RootID, s.N.Eng.Now(), s.phase("reply"))
	}
	if s.NotifyAddr != 0 {
		if s.noteBuf == nil {
			s.noteBuf = make([]byte, s.NotifyBytes)
		}
		m.SetCategory(costmodel.CatSerialize)
		nh := Header{Kind: KindNotify, Method: h.Method, Hop: byte(s.Hop), CallID: s.newCallID(), RootID: h.RootID}
		nf := s.codec.buildCall(nh, s.keyBuf, s.noteBuf)
		m.SetCategory(costmodel.CatTx)
		s.N.UDP.DstAddr = s.NotifyAddr
		if err := s.N.UDP.SendContiguous(nf, mem.UnpinnedSimAddr(nf)); err != nil {
			s.Errors++
		} else {
			s.NotifiesSent++
		}
	}
	s.N.Arena.Reset()
}

// callChildren fans the call out to every backend with fresh call ids and
// arms the fan-in deadline. With offload, the downstream marshalling and
// TX run on the offload engine (the pending-table registration rides along
// — single-threaded engine, so the bookkeeping is safe there).
func (s *Service) callChildren(h Header, src byte) {
	if s.Offload == nil {
		s.dispatchChildren(h, src)
		return
	}
	ok := s.Offload.Submit(sim.Job{Run: func() sim.Time {
		m := s.N.Meter
		prev := m.SetCategory(costmodel.CatSerialize)
		s.dispatchChildren(h, src)
		d := m.DrainTime()
		s.OffRec.Add(m.TakeReceipt())
		m.SetCategory(prev)
		return d
	}})
	if !ok {
		s.Errors++
	}
}

func (s *Service) dispatchChildren(h Header, src byte) {
	m := s.N.Meter
	if s.fwdBuf == nil {
		s.fwdBuf = make([]byte, s.FwdBytes)
	}
	inf := &inflight{h: h, src: src, await: len(s.Backends)}
	for _, addr := range s.Backends {
		cid := s.newCallID()
		inf.children = append(inf.children, cid)
		s.pend[cid] = inf
		s.ChildCalls++
		ch := Header{Kind: KindCall, Method: h.Method, Hop: byte(s.Hop), CallID: cid, RootID: h.RootID}
		m.SetCategory(costmodel.CatSerialize)
		frame := s.codec.buildCall(ch, s.keyBuf, s.fwdBuf)
		m.SetCategory(costmodel.CatTx)
		s.N.UDP.DstAddr = addr
		if err := s.N.UDP.SendContiguous(frame, mem.UnpinnedSimAddr(frame)); err != nil {
			s.Errors++
		}
	}
	s.N.Arena.Reset()
	if s.CallTimeout > 0 {
		inf.timer = s.N.Eng.After(s.CallTimeout, func() { s.onFanInTimeout(inf) })
	}
}

// onChildReply resolves a backend reply against the pending table. Replies
// for abandoned children are classified as late — the wasted-work ledger —
// and dropped at the header peek, before any deserialize is paid (the
// pending-table miss is exactly the cheap check a real fan-in does first).
func (s *Service) onChildReply(h Header, p *mem.Buf) {
	inf, ok := s.pend[h.CallID]
	if !ok {
		if _, late := s.expired[h.CallID]; late {
			delete(s.expired, h.CallID)
			s.LateChildReplies++
		} else {
			s.Errors++
		}
		p.DecRef()
		return
	}
	delete(s.pend, h.CallID)
	s.ChildReplies++
	inf.await--
	done := inf.await == 0
	if done {
		inf.timer.Cancel()
	}
	submitted := s.N.Core.Submit(sim.Job{Run: func() sim.Time {
		m := s.N.Meter
		m.SetCategory(costmodel.CatDeserialize)
		if err := s.codec.decodeBody(p, true); err != nil {
			s.Errors++
		}
		if done {
			s.finishCall(inf.h, inf.src)
		}
		s.N.Arena.Reset()
		d := m.DrainTime()
		s.HostRec.Add(m.TakeReceipt())
		m.SetCategory(costmodel.CatRx)
		return d
	}})
	if !submitted {
		// Host ring overflow at fan-in: the reply is lost after being
		// counted; the upstream caller's own deadline covers the call.
		p.DecRef()
	}
}

// onChildFailure handles a shed frame from a backend: the call tree under
// this request cannot complete, so fail fast — cancel the deadline, write
// off the surviving siblings, and propagate the failure upstream.
func (s *Service) onChildFailure(id uint64) {
	inf, ok := s.pend[id]
	if !ok {
		if _, late := s.expired[id]; late {
			delete(s.expired, id)
			s.LateChildReplies++
		} else {
			s.Errors++
		}
		return
	}
	delete(s.pend, id)
	s.ChildSheds++
	inf.await--
	if inf.failed {
		return
	}
	inf.failed = true
	inf.timer.Cancel()
	s.abandonSiblings(inf)
	s.failTo(inf.h.CallID, inf.h.RootID, inf.src, "fail")
}

// onFanInTimeout fires when backends are too slow: every still-pending
// child is abandoned (its eventual reply becomes late/wasted work) and the
// upstream caller gets a failure instead of silence.
func (s *Service) onFanInTimeout(inf *inflight) {
	if inf.await == 0 || inf.failed {
		return
	}
	inf.failed = true
	s.ChildTimeouts++
	s.abandonSiblings(inf)
	s.failTo(inf.h.CallID, inf.h.RootID, inf.src, "timeout")
}

func (s *Service) abandonSiblings(inf *inflight) {
	for _, cid := range inf.children {
		if s.pend[cid] == inf {
			delete(s.pend, cid)
			s.expired[cid] = struct{}{}
			s.ChildAbandoned++
			inf.await--
		}
	}
}

// failTo sends the 9-byte shed frame for an upstream call id — billed to
// CatShed like KVServer's rejections, since it runs at frame-delivery or
// timer time under whatever category the last drained job left behind.
func (s *Service) failTo(callID, rootID uint64, src byte, why string) {
	m := s.N.Meter
	prev := m.SetCategory(costmodel.CatShed)
	defer m.SetCategory(prev)
	if s.Tracer != nil {
		s.Tracer.Mark(rootID, s.N.Eng.Now(), s.phase(why))
	}
	reply := driver.ShedReply(callID)
	s.N.UDP.DstAddr = src
	if err := s.N.UDP.SendPrebuilt(reply, mem.UnpinnedSimAddr(reply)); err != nil {
		s.Errors++
	} else {
		s.FailsSent++
	}
}

// onNotify processes a one-way frame as a sink: the decode still costs host
// cycles (a metered core job), there is just nothing to answer.
func (s *Service) onNotify(p *mem.Buf) {
	ok := s.N.Core.Submit(sim.Job{Run: func() sim.Time {
		m := s.N.Meter
		m.SetCategory(costmodel.CatDeserialize)
		if err := s.codec.decodeBody(p, false); err != nil {
			s.Errors++
		}
		s.NotifiesRecv++
		s.N.Arena.Reset()
		d := m.DrainTime()
		s.HostRec.Add(m.TakeReceipt())
		m.SetCategory(costmodel.CatRx)
		return d
	}})
	if !ok {
		p.DecRef()
	}
}

// PendingChildren reports the outstanding fan-in entries (zero once the
// engine quiesces and every call tree resolved or timed out).
func (s *Service) PendingChildren() int { return len(s.pend) }

// ChildLedgerExact verifies the fan-out disposal invariant after quiesce.
func (s *Service) ChildLedgerExact() bool {
	return s.ChildCalls == s.ChildReplies+s.ChildSheds+s.ChildAbandoned &&
		s.LateChildReplies <= s.ChildAbandoned
}
