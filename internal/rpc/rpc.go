// Package rpc layers a small remote-procedure-call protocol over the
// generated serializers: request/response framing with per-call wire ids,
// one-way notifications, and fan-out/fan-in — the building blocks of the
// microservice call graphs where, at microsecond scale, (de)serialization
// and stack overhead stop being noise and start dominating end-to-end
// latency (Dagger, arXiv:2106.01482). Services compose behind the fabric
// switch on a driver.Rack exactly like ClusterTestbed shards do, and every
// hop marshals and unmarshals its frames through internal/costmodel, so
// serialization cost compounds per hop of a chain.
//
// Wire format: a 19-byte plain header — kind, method, hop, call id, root
// id — followed by a body serialized with the system under test (a PutReq
// shape for calls and notifications, a GetResp shape for replies). The
// root id is the originating client's wire id: it rides every hop
// unchanged, so replies resolve the client's flow and per-hop trace marks
// attribute to it, while each hop's calls get fresh call ids for their own
// pending tables. Admission rejections and downstream failures reuse the
// 9-byte driver.ShedReply framing (distinguishable by length and leading
// byte), so a mid-chain shed propagates upstream hop by hop until the
// client classifies it exactly like a single-server shed.
package rpc

import (
	"fmt"

	"cornflakes/internal/baselines"
	"cornflakes/internal/core"
	"cornflakes/internal/driver"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/wire"
)

// Frame kinds. Values stay clear of driver.ShedByte (0xEE) so a shed
// frame's leading byte can never alias a kind.
const (
	KindCall   byte = 0x01 // expects a KindReply or a shed frame back
	KindReply  byte = 0x02 // resolves the caller's pending call id
	KindNotify byte = 0x03 // one-way: processed, never answered
)

// HeaderLen is the fixed framing prefix ahead of the serialized body:
// kind(1) method(1) hop(1) callID(8) rootID(8).
const HeaderLen = 19

// Header is the per-frame RPC envelope.
type Header struct {
	Kind   byte
	Method byte
	// Hop is the sender's hop index (0 = the client).
	Hop byte
	// CallID names this call in the sender's pending table; replies echo it.
	CallID uint64
	// RootID is the originating client's wire id, constant across the
	// whole call tree.
	RootID uint64
}

// EncodeTo writes the header into b[0:HeaderLen].
func (h Header) EncodeTo(b []byte) {
	b[0] = h.Kind
	b[1] = h.Method
	b[2] = h.Hop
	wire.PutU64(b[3:], h.CallID)
	wire.PutU64(b[11:], h.RootID)
}

// DecodeHeader parses the framing prefix. The caller has checked length.
func DecodeHeader(b []byte) Header {
	return Header{
		Kind:   b[0],
		Method: b[1],
		Hop:    b[2],
		CallID: wire.GetU64(b[3:]),
		RootID: wire.GetU64(b[11:]),
	}
}

// PeekRootID extracts the root id from any RPC frame — the client's
// loadgen.Client.ResponseID, and cheap enough to run before deciding
// whether a full (metered) deserialization is worth paying for.
func PeekRootID(p []byte) (uint64, bool) {
	if len(p) < HeaderLen {
		return 0, false
	}
	return wire.GetU64(p[11:]), true
}

// codec builds and decodes RPC frames for one serialization system on one
// node, charging that node's meter — serialization is modelled work here,
// not bookkeeping. Calls and notifications carry a PutReq-shaped body
// (id, key, val); replies carry a GetResp-shaped body (id, val).
type codec struct {
	sys driver.System
	n   *driver.Node
}

// buildCall serializes a call or notify frame: header + PutReq body.
func (c codec) buildCall(h Header, key, val []byte) []byte {
	if c.sys == driver.SysCornflakes {
		ctx := c.n.Ctx
		m := msgs.NewPutReq(ctx)
		m.SetId(h.CallID)
		m.SetKey(ctx.NewCFPtr(key))
		m.SetVal(ctx.NewCFPtr(val))
		body := core.Marshal(m.Obj())
		m.Release()
		return c.frame(h, body)
	}
	d := baselines.NewDoc(msgs.PutReqSchema)
	d.SetInt(0, h.CallID)
	d.SetBytes(1, key, 0)
	d.SetBytes(2, val, 0)
	return c.buildDoc(h, d)
}

// buildReply serializes a reply frame: header + GetResp body.
func (c codec) buildReply(h Header, val []byte) []byte {
	if c.sys == driver.SysCornflakes {
		ctx := c.n.Ctx
		m := msgs.NewGetResp(ctx)
		m.SetId(h.CallID)
		m.SetVal(ctx.NewCFPtr(val))
		body := core.Marshal(m.Obj())
		m.Release()
		return c.frame(h, body)
	}
	d := baselines.NewDoc(msgs.GetRespSchema)
	d.SetInt(0, h.CallID)
	d.SetBytes(1, val, 0)
	return c.buildDoc(h, d)
}

func (c codec) frame(h Header, body []byte) []byte {
	out := make([]byte, HeaderLen+len(body))
	h.EncodeTo(out)
	copy(out[HeaderLen:], body)
	return out
}

func (c codec) buildDoc(h Header, d *baselines.Doc) []byte {
	m := c.n.Meter
	switch c.sys {
	case driver.SysProtobuf:
		size := baselines.ProtoSize(d, m)
		out := make([]byte, HeaderLen+size)
		h.EncodeTo(out)
		n := baselines.ProtoMarshal(d, out[HeaderLen:], m.AllocSimAddr(size), m)
		return out[:HeaderLen+n]
	case driver.SysFlatBuffers:
		return c.frame(h, baselines.FBBuild(d, m))
	default:
		cm := baselines.CapnpBuild(d, m)
		segs, _ := baselines.CapnpFlatten(cm)
		var body []byte
		for _, s := range segs {
			body = append(body, s...)
		}
		return c.frame(h, body)
	}
}

// decodeBody deserializes a frame's body through the metered path and
// discards the result: an RPC hop pays the full parse cost even though the
// modelled services have no application state to keep. reply selects the
// GetResp shape over the PutReq shape. Consumes p.
func (c codec) decodeBody(p *mem.Buf, reply bool) error {
	if c.sys == driver.SysCornflakes {
		body := p.SubView(HeaderLen, p.Len()-HeaderLen)
		p.DecRef()
		if reply {
			r, err := msgs.DeserializeGetResp(c.n.Ctx, body)
			if err != nil {
				body.DecRef()
				return err
			}
			r.Release()
			return nil
		}
		r, err := msgs.DeserializePutReq(c.n.Ctx, body)
		if err != nil {
			body.DecRef()
			return err
		}
		r.Release()
		return nil
	}
	defer p.DecRef()
	data := p.Bytes()[HeaderLen:]
	simAddr := p.SimAddr() + HeaderLen
	schema := msgs.PutReqSchema
	if reply {
		schema = msgs.GetRespSchema
	}
	var err error
	switch c.sys {
	case driver.SysProtobuf:
		_, err = baselines.ProtoUnmarshal(schema, data, simAddr, c.n.Meter)
	case driver.SysFlatBuffers:
		_, err = baselines.FBDecode(schema, data, simAddr, c.n.Meter)
	default:
		_, err = baselines.CapnpDecode(schema, data, simAddr, c.n.Meter)
	}
	if err != nil {
		return fmt.Errorf("rpc: decode %s body: %w", c.sys, err)
	}
	return nil
}
