package experiments

// All maps experiment ids to their implementations, one per table/figure
// in the paper's evaluation. The per-experiment index in DESIGN.md mirrors
// this map.
func All() map[string]func(Scale) *Report {
	return map[string]func(Scale) *Report{
		"fig2":  Fig2,
		"fig3":  Fig3,
		"fig5":  Fig5,
		"fig6":  Fig6,
		"fig7":  Fig7,
		"fig8":  Fig8,
		"fig9":  Fig9,
		"fig10": Fig10,
		"fig11": Fig11,
		"fig12": Fig12,
		"fig13": Fig13,
		"tab1":  Tab1,
		"tab2":  Tab2,
		"tab3":  Tab3,
		"tab4":  Tab4,
		"tab5":  Tab5,
		// Extensions beyond the paper's evaluation (§7 future work and the
		// Table 1 arena footnote).
		"ext-adaptive":  ExtAdaptive,
		"ext-arena":     ExtArena,
		"ext-segment":   ExtSegment,
		"ext-multicore": ExtMulticore,
		// Robustness: the fault-injection soak for TCP-lite (not a paper
		// figure; the §3 safety claim exercised under adversarial links) and
		// the overload sweep for the graceful-degradation ladder.
		"soak":     Soak,
		"overload": Overload,
		// Observability: the tracing layer's contracts, checked end to end on
		// a traced overload run (exports a Chrome trace-event artifact).
		"trace": TraceExp,
		// Datapath: the batched RX/TX sweep — burst cap × offered load, with
		// the adaptive-burst and doorbell-amortization contracts checked.
		"batching": Batching,
		// Scale-out: the sharded rack behind a simulated ToR switch —
		// node-count × per-node-load grid with hot-shard skew checks.
		"cluster": Cluster,
		// Chaos: node crash/recovery, port flaps, and gray failure against
		// failover routing and hedged requests, with an exact frame ledger.
		"chaos": Chaos,
		// RPC: serializer-aware microservice call graphs over the rack —
		// chain depth × load, per-hop marshalling share, fan-out/fan-in,
		// NIC-side serialization offload, and per-hop trace spans.
		"rpc": RPC,
	}
}
