package experiments

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Parallel sweep execution.
//
// Every sweep point in this package is measured on a freshly built
// driver.Testbed: its own sim.Engine, allocator, caches, meters, and
// tracer. Nothing mutable is shared between points — workload generators
// are immutable after construction, nic.Profile is a plain value, and
// there is no package-level RNG or counter — so independent points can run
// on separate host goroutines without synchronization. That is the
// isolation contract parallelism rests on (DESIGN.md §13); the race
// detector smoke in scripts/check.sh enforces it.
//
// Determinism is preserved by construction: each point's entire
// computation (including every floating-point operation) happens on one
// goroutine exactly as it would serially, and results land in a pre-sized
// slice at the point's index, so reports are assembled in loop order no
// matter which worker finished first. The fingerprint gate
// (determinism_test.go, scripts/check.sh) pins serial and parallel reports
// byte-identical.

// workers resolves the fan-out width for this scale: at least 1, and never
// more than useful.
func (sc Scale) workers() int {
	if sc.Workers <= 1 {
		return 1
	}
	return sc.Workers
}

// WorkersFromEnv resolves a fan-out width from the CF_PARALLEL environment
// variable: unset or 0 means GOMAXPROCS, 1 forces serial, anything else is
// the explicit width. bench_test.go and scripts/bench.sh use it to compare
// serial and parallel runs of the same suite.
func WorkersFromEnv() int {
	if v := os.Getenv("CF_PARALLEL"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// PartitionFromEnv resolves the partitioned-engine knob from the
// CF_PARTITION environment variable: any value other than empty or "0"
// turns Scale.Partition on. bench_test.go and scripts/bench.sh use it to
// compare serial and partitioned runs of the same suite.
func PartitionFromEnv() bool {
	v := os.Getenv("CF_PARTITION")
	return v != "" && v != "0"
}

// forEach runs fn(i) for every i in [0, n), fanning the calls across up to
// w worker goroutines. Work is handed out by an atomic counter; callers
// write results into slot i of a pre-sized slice, which makes the merge
// order the loop order regardless of scheduling. It returns only when all
// calls have finished. With w ≤ 1 it degenerates to a plain loop on the
// calling goroutine.
func forEach(w, n int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
