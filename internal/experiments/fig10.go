package experiments

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/driver"
	"cornflakes/internal/nic"
	"cornflakes/internal/workloads"
)

// Fig10 reproduces Figure 10: generality of the 512-byte threshold across
// NICs. For payloads totalling 1024 bytes split into 1–6 scatter-gather
// values (the Intel E810 allows at most 8 entries, §6.3), it compares
// all-SG vs all-copy on both an Intel E810 and a Mellanox CX-6 profile.
// Paper: on both NICs, scatter-gather wins exactly when values are 512
// bytes or larger.
func Fig10(sc Scale) *Report {
	r := &Report{
		ID:     "fig10",
		Title:  "1024B payload across NICs: %Δ max tput, all-SG vs all-copy",
		Header: []string{"NIC", "1x1024", "2x512", "4x256", "6x170"},
	}
	const total = 1024
	entries := []int{1, 2, 4, 6}
	profiles := []nic.Profile{nic.IntelE810(), nic.MellanoxCX6()}
	// 2 NICs × 4 entry counts; each cell measures an independent
	// SG-vs-copy pair plus the RPCAcc-style offload variant (serialization
	// charged to a NIC-side engine instead of the host core).
	type cell struct {
		sgVsCopy float64 // %Δ max tput, all-SG vs all-copy, host serialization
		offGain  float64 // %Δ max tput, NIC-offloaded vs host all-SG
	}
	grid := make([]cell, len(profiles)*len(entries))
	forEach(sc.workers(), len(grid), func(i int) {
		prof, k := profiles[i/len(entries)], entries[i%len(entries)]
		seg := total / k
		keys := (16 << 20) / total
		if keys > 16*sc.StoreKeys {
			keys = 16 * sc.StoreKeys
		}
		gen := workloads.NewYCSB(keys, seg, k)
		sg := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: gen, Profile: prof, SmallCache: true,
			Threshold: core.ThresholdAllZeroCopy, ThresholdSet: true, Scale: sc, Seed: 110,
		})
		cp := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: gen, Profile: prof, SmallCache: true,
			Threshold: core.ThresholdAllCopy, ThresholdSet: true, Scale: sc, Seed: 110,
		})
		off := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: gen, Profile: prof, SmallCache: true,
			Threshold: core.ThresholdAllZeroCopy, ThresholdSet: true, Offload: true,
			Scale: sc, Seed: 110,
		})
		grid[i] = cell{
			sgVsCopy: pct(sg.AchievedRps, cp.AchievedRps),
			offGain:  pct(off.AchievedRps, sg.AchievedRps),
		}
	})
	diffs := map[string]map[int]cell{}
	for pi, prof := range profiles {
		row := []string{prof.Name}
		offRow := []string{prof.Name + " offl"}
		diffs[prof.Name] = map[int]cell{}
		for ki, k := range entries {
			c := grid[pi*len(entries)+ki]
			diffs[prof.Name][k] = c
			row = append(row, fmt.Sprintf("%+.1f%%", c.sgVsCopy))
			offRow = append(offRow, fmt.Sprintf("%+.1f%%", c.offGain))
		}
		r.Rows = append(r.Rows, row, offRow)
	}
	for _, prof := range profiles {
		d := diffs[prof.Name]
		r.AddCheck(fmt.Sprintf("%s: SG wins at 512B+ values", prof.Name),
			d[1].sgVsCopy > 0 && d[2].sgVsCopy > 0,
			"1024B %+.1f%%, 512B %+.1f%%", d[1].sgVsCopy, d[2].sgVsCopy)
		r.AddCheck(fmt.Sprintf("%s: copy wins below 512B values", prof.Name),
			d[6].sgVsCopy < 0,
			"170B %+.1f%% (256B %+.1f%%)", d[6].sgVsCopy, d[4].sgVsCopy)
		r.AddCheck(fmt.Sprintf("%s: NIC-side serialization never costs host capacity", prof.Name),
			d[1].offGain > -2 && d[2].offGain > -2 && d[4].offGain > -2 && d[6].offGain > -2,
			"offload gains %+.1f%% / %+.1f%% / %+.1f%% / %+.1f%%",
			d[1].offGain, d[2].offGain, d[4].offGain, d[6].offGain)
	}
	r.Notes = append(r.Notes,
		"E810 supports at most 8 SG entries, so only up to 6 values are compared (§6.3)",
		"paper: the 512-byte threshold is consistent across both NICs",
		"'offl' rows: RPCAcc-style NIC-side serialization engine vs host all-SG serialization")
	return r
}
