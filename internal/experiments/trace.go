package experiments

import (
	"encoding/json"
	"fmt"

	"cornflakes/internal/costmodel"
	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/sim"
	"cornflakes/internal/trace"
)

// The trace experiment: run the overload configuration at 1.5× measured
// capacity with the per-request tracing layer attached end to end, and
// check the tracer's core contracts against the run's own accounting:
//
//  1. exactness — every retained flow's span timeline is gapless and sums
//     to its end-to-end latency to the picosecond;
//  2. tail capture — the K slowest measured requests are retained even at
//     1-in-N sampling, and the slowest retained flow is at least as slow
//     as the latency histogram's observed maximum;
//  3. receipt conservation — summing the tracer's per-request receipts
//     reproduces the server's run-level Fig 11 cycle breakdown exactly
//     (same floats, not approximately);
//  4. the overload machinery actually engaged (sheds happened and were
//     metered under their own CatShed category);
//  5. the exported Chrome trace-event document is valid JSON.
//
// The report's table is the phase-time breakdown over retained flows — the
// where-did-the-microseconds-go view the tracer exists to provide — and
// the export itself is attached as a report artifact.

// Tracing parameters for the experiment: retain 1 in 16 measured flows
// plus the 8 slowest, and snapshot the server gauges every 100 µs.
const (
	traceSampleEvery = 16
	traceSlowestK    = 8
)

const traceGaugeEvery = 100 * sim.Microsecond

// TracedRun bundles one traced overload run's outputs.
type TracedRun struct {
	Res    loadgen.Result
	Tracer *trace.Tracer
	Reg    *trace.Registry
	// JSON is the Chrome trace-event export of the run.
	JSON []byte
	// RunReceipt and RunReceipts are the ground truth the tracer's
	// aggregate is checked against: an independent KVServer.OnReceipt
	// accumulator over every request the server handled.
	RunReceipt  costmodel.Receipt
	RunReceipts uint64
}

// TracedOverloadRun runs one offered-load point of the overload
// configuration with a tracer wired through every layer: the loadgen marks
// sends, backoffs and outcomes; the NIC observers mark DMA, wire and
// delivery instants; the server marks dispatch and shed decisions and
// attributes per-request receipts; and a gauge registry samples server
// health at a fixed cadence.
func TracedOverloadRun(sc Scale, rate float64, tcfg trace.Config) TracedRun {
	o := overloadOpts(sc)
	tb, srv, client, _, _ := newOverloadTestbed(o)

	tcfg.CPU = tb.Server.Meter.CPU
	tr := trace.New(tcfg)
	driver.AttachKVTracer(tb, srv, tr)

	var out TracedRun
	srv.OnReceipt = func(r costmodel.Receipt) {
		out.RunReceipt.Add(r)
		out.RunReceipts++
	}

	reg := trace.NewRegistry()
	driver.RegisterServerGauges(reg, tb, srv)
	reg.SampleUntil(tb.Eng, traceGaugeEvery, sim.Time(sc.WarmupMs+sc.MeasureMs)*sim.Millisecond)

	out.Res = loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: o.Gen, Client: client,
		RatePerS: rate,
		Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
		Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
		Seed:     o.Seed + 1,
		Retry:    overloadRetry,
		ShedID:   driver.ShedID,
		Tracer:   tr,
	})
	// Drain as the untraced overload points do, so queued work finishes and
	// every late receipt reaches both accumulators before export.
	tb.Eng.Run()

	out.Tracer = tr
	out.Reg = reg
	out.JSON = trace.Export(tr, reg)
	return out
}

// tracePhases is the fixed display order for the phase breakdown table.
var tracePhases = []string{
	"pre", trace.PhaseSend, trace.PhaseReqWire, trace.PhaseReqProp,
	trace.PhaseQueue, trace.PhaseHandle, trace.PhaseShed,
	trace.PhaseRspWire, trace.PhaseRspProp, trace.PhaseBackoff, "untraced",
}

// tileError checks one flow's span-tiling invariant and returns a
// description of the first violation, or "" when the timeline is gapless
// and sums exactly to the flow's end-to-end latency.
func tileError(f *trace.Flow) string {
	spans := f.Spans()
	if len(spans) == 0 {
		return "no spans"
	}
	if spans[0].Start != f.Start {
		return fmt.Sprintf("first span starts at %v, flow at %v", spans[0].Start, f.Start)
	}
	if spans[len(spans)-1].End != f.End {
		return fmt.Sprintf("last span ends at %v, flow at %v", spans[len(spans)-1].End, f.End)
	}
	var sum sim.Time
	for i, s := range spans {
		if s.End < s.Start {
			return fmt.Sprintf("span %d (%s) has negative length", i, s.Label)
		}
		if i > 0 && s.Start != spans[i-1].End {
			return fmt.Sprintf("gap before span %d (%s)", i, s.Label)
		}
		sum += s.Dur()
	}
	if sum != f.Dur() {
		return fmt.Sprintf("spans sum to %v, latency is %v", sum, f.Dur())
	}
	return ""
}

// TraceExp is the "trace" experiment.
func TraceExp(sc Scale) *Report {
	r := &Report{
		ID:     "trace",
		Title:  "Per-request span timelines under overload (tracing layer contracts)",
		Header: []string{"phase", "spans", "total µs", "mean µs", "share %"},
	}
	o := overloadOpts(sc)
	capRps := kvCapacity(o).AchievedRps
	if capRps <= 0 {
		r.AddCheck("capacity: estimator produced a usable operating point", false,
			"capacity estimate %.0f rps", capRps)
		return r
	}
	rate := 1.5 * capRps
	run := TracedOverloadRun(sc, rate, trace.Config{
		SampleEvery: traceSampleEvery, SlowestK: traceSlowestK,
	})
	retained := run.Tracer.Retained()

	// Phase breakdown over retained flows.
	count := map[string]int{}
	total := map[string]sim.Time{}
	var grand sim.Time
	for _, f := range retained {
		for _, s := range f.Spans() {
			count[s.Label]++
			total[s.Label] += s.Dur()
			grand += s.Dur()
		}
	}
	for _, ph := range tracePhases {
		n := count[ph]
		if n == 0 {
			continue
		}
		tot := total[ph]
		r.Rows = append(r.Rows, []string{
			ph,
			fmt.Sprint(n),
			f1(tot.Seconds() * 1e6),
			f2(tot.Seconds() * 1e6 / float64(n)),
			f1(float64(tot) / float64(grand) * 100),
		})
	}

	r.Notes = append(r.Notes,
		fmt.Sprintf("capacity estimate %.0f rps; traced at %.0f rps (1.5×); sampling 1/%d + slowest %d",
			capRps, rate, traceSampleEvery, traceSlowestK),
		fmt.Sprintf("retained %d of %d measured flows; %d dropped marks (late/duplicate frames)",
			len(retained), run.Res.Sent, run.Tracer.DroppedMarks))
	for i, f := range run.Tracer.Slowest() {
		if i >= 3 {
			break
		}
		r.Notes = append(r.Notes, "slowest: "+trace.Summary(f))
	}

	// 1. Exactness: every retained timeline is gapless and sums to its
	// end-to-end latency with no rounding at all (the virtual clock is
	// exact, so the contract is equality, not within-a-bucket).
	bad := 0
	for _, f := range retained {
		if msg := tileError(f); msg != "" {
			bad++
			r.Notes = append(r.Notes, fmt.Sprintf("tiling violation in req %d: %s", f.Seq, msg))
		}
	}
	r.AddCheck("exact: every retained span timeline is gapless and sums to its latency",
		bad == 0, "%d of %d flows violate", bad, len(retained))

	// 2. Tail capture: the slowest-K heap is full and its head is at least
	// as slow as the completed-latency histogram's observed maximum (the
	// tracer also sees shed and timed-out flows, which can only be slower).
	slow := run.Tracer.Slowest()
	tail := len(slow) == traceSlowestK && slow[0].Dur() >= run.Res.Latency.Max()
	var slowest sim.Time
	if len(slow) > 0 {
		slowest = slow[0].Dur()
	}
	r.AddCheck("tail: slowest-K retained despite 1/N sampling, covering the observed max",
		tail, "kept %d, slowest %v vs histogram max %v", len(slow), slowest, run.Res.Latency.Max())

	// 3. Receipt conservation: the tracer fed every server receipt into its
	// aggregate exactly once, so it must equal the independent OnReceipt
	// accumulator float-for-float — the run-level Fig 11 breakdown.
	agg, n := run.Tracer.Aggregate()
	r.AddCheck("receipts: tracer aggregate reproduces the run-level cycle breakdown exactly",
		agg == run.RunReceipt && n == run.RunReceipts,
		"%d receipts, %.0f cycles (accumulator: %d, %.0f)",
		n, agg.Total(), run.RunReceipts, run.RunReceipt.Total())

	// 4. The overload machinery engaged, and its work was metered under its
	// own category rather than polluting a neighbour's bucket.
	r.AddCheck("overload: shedding engaged and was metered under its own category",
		run.Res.Shed > 0 && agg.Cycles[costmodel.CatShed] > 0,
		"shed %d requests, %.0f shed-category cycles",
		run.Res.Shed, agg.Cycles[costmodel.CatShed])

	// 5. The export is a well-formed Chrome trace-event document.
	r.AddCheck("export: Chrome trace-event document is valid JSON",
		json.Valid(run.JSON), "%d bytes, %d gauge samples",
		len(run.JSON), len(run.Reg.Samples()))

	r.AddArtifact("trace.json", run.JSON)
	return r
}
