package experiments

import (
	"fmt"
	"math/rand/v2"

	"cornflakes/internal/loadgen"
	"cornflakes/internal/redis"
	"cornflakes/internal/workloads"
)

// Fig8 reproduces Figure 8: the Twitter trace served by mini-Redis with
// its handwritten RESP serialization vs Cornflakes serialization, both on
// the same UDP stack. Paper: +8.8% throughput at the 59 µs p99 SLO.
func Fig8(sc Scale) *Report {
	r := &Report{
		ID:     "fig8",
		Title:  "Redis on the Twitter trace: max throughput per serialization",
		Header: []string{"serialization", "max krps", "p99 us @ max"},
	}
	modes := []redis.Mode{redis.ModeRESP, redis.ModeCornflakes}
	type modeRes struct {
		cap    loadgen.Result
		points []loadgen.Result
	}
	perMode := make([]modeRes, len(modes))
	forEach(sc.workers(), len(modes), func(i int) {
		o := redisOpts{Mode: modes[i], Gen: twitterGen(sc, 90), Scale: sc, Seed: 91}
		res := redisCapacity(o)
		// Curve points below capacity, as the paper's figure shows.
		points, _ := redisSweep(o, res.AchievedRps/8, res.AchievedRps*0.7, sc.SweepPoints/2)
		perMode[i] = modeRes{cap: res, points: points}
	})
	best := map[redis.Mode]float64{}
	for i, mode := range modes {
		res := perMode[i].cap
		best[mode] = res.AchievedRps
		for _, p := range perMode[i].points {
			r.Rows = append(r.Rows, []string{
				mode.String() + " @" + f1(p.OfferedRps/1000) + "k",
				f1(p.AchievedRps / 1000),
				f1(p.Latency.Quantile(0.99).Microseconds()),
			})
		}
		r.Rows = append(r.Rows, []string{
			mode.String() + " capacity", f1(res.AchievedRps / 1000),
			f1(res.Latency.Quantile(0.99).Microseconds()),
		})
	}
	gain := pct(best[redis.ModeCornflakes], best[redis.ModeRESP])
	r.AddCheck("Cornflakes serialization improves Redis throughput",
		best[redis.ModeCornflakes] > best[redis.ModeRESP],
		"CF %.0f vs RESP %.0f rps (%+.1f%%)", best[redis.ModeCornflakes], best[redis.ModeRESP], gain)
	r.AddCheck("gain is single-to-low-double digits (paper: +8.8%)",
		gain > 2 && gain < 40, "measured %+.1f%%", gain)
	return r
}

// tab3Gen builds the YCSB-derived workloads of Table 3: payloads totalling
// 4096 bytes, as one 4096B value (get), two 2048B values via MGET
// (mget-2), or two 2048B list elements via LRANGE (lrange-2).
type tab3Shape struct {
	name string
	gen  workloads.Generator
}

// mgetGen issues 2-key MGETs over a YCSB store.
type mgetGen struct {
	inner *workloads.YCSB
}

func (g *mgetGen) Name() string            { return "ycsb-mget2" }
func (g *mgetGen) Records() []workloads.KV { return g.inner.Records() }
func (g *mgetGen) Next(r *rand.Rand) workloads.Request {
	a := g.inner.Next(r)
	b := g.inner.Next(r)
	return workloads.Request{Op: workloads.OpGetM, Keys: [][]byte{a.Keys[0], b.Keys[0]}}
}

// getGen converts a list workload to single gets.
type getGen struct {
	inner *workloads.YCSB
}

func (g *getGen) Name() string            { return "ycsb-get" }
func (g *getGen) Records() []workloads.KV { return g.inner.Records() }
func (g *getGen) Next(r *rand.Rand) workloads.Request {
	q := g.inner.Next(r)
	return workloads.Request{Op: workloads.OpGet, Keys: q.Keys}
}

// Tab3 reproduces Table 3: GET, MGET-2 and LRANGE-2 in Redis, payloads
// totalling 4096 bytes, comparing serializations. Paper: Cornflakes is
// +15% (get), +15.9% (mget-2) and +40.1% (lrange-2) ahead.
func Tab3(sc Scale) *Report {
	r := &Report{
		ID:     "tab3",
		Title:  "Redis commands on YCSB (4096B payloads): max krps",
		Header: []string{"command", "Redis", "Redis+Cornflakes", "gain"},
	}
	keys := 2 * sc.StoreKeys
	shapes := []tab3Shape{
		{"get", &getGen{workloads.NewYCSB(keys, 4096, 1)}},
		{"mget-2", &mgetGen{workloads.NewYCSB(keys, 2048, 1)}},
		{"lrange-2", workloads.NewYCSB(keys, 2048, 2)},
	}
	// 3 command shapes × 2 serializations = 6 independent capacity probes.
	cells := make([]loadgen.Result, 2*len(shapes))
	forEach(sc.workers(), len(cells), func(i int) {
		mode := redis.ModeRESP
		if i%2 == 1 {
			mode = redis.ModeCornflakes
		}
		cells[i] = redisCapacity(redisOpts{Mode: mode, Gen: shapes[i/2].gen, Scale: sc, Seed: 92})
	})
	gains := map[string]float64{}
	for si, sh := range shapes {
		resp, cf := cells[2*si], cells[2*si+1]
		g := pct(cf.AchievedRps, resp.AchievedRps)
		gains[sh.name] = g
		r.Rows = append(r.Rows, []string{
			sh.name, f1(resp.AchievedRps / 1000), f1(cf.AchievedRps / 1000),
			fmt.Sprintf("%+.1f%%", g),
		})
	}
	r.AddCheck("Cornflakes wins on every command",
		gains["get"] > 0 && gains["mget-2"] > 0 && gains["lrange-2"] > 0,
		"get %+.1f%%, mget-2 %+.1f%%, lrange-2 %+.1f%%", gains["get"], gains["mget-2"], gains["lrange-2"])
	r.AddCheck("gains are double digit for 4096B payloads (paper: +15-40.1%)",
		gains["get"] > 8, "get %+.1f%%", gains["get"])
	r.Notes = append(r.Notes,
		"paper: get +15%, mget-2 +15.9%, lrange-2 +40.1%")
	return r
}
