package experiments

import (
	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
)

// Fig2 reproduces Figure 2: p99 latency vs achieved load for the echo
// server (two 2048-byte fields) across no-serialization, zero-copy,
// one-copy, two-copy, and the three software libraries. The paper's
// ordering: no-ser (77 Gbps) > zero-copy (48) > one-copy (28) > two-copy
// (23) > libraries (13–15).
func Fig2(sc Scale) *Report {
	r := &Report{
		ID:     "fig2",
		Title:  "Echo server: max achieved load per approach (two 2048B fields)",
		Header: []string{"approach", "max Gbps", "p99 us @ max"},
	}
	type arm struct {
		name string
		mode driver.EchoMode
		sys  driver.System
	}
	arms := []arm{
		{"No serialization", driver.EchoNoSer, driver.SysCornflakes},
		{"Zero-copy", driver.EchoZeroCopy, driver.SysCornflakes},
		{"One-copy", driver.EchoOneCopy, driver.SysCornflakes},
		{"Two-copy", driver.EchoTwoCopy, driver.SysCornflakes},
		{"Protobuf", driver.EchoLib, driver.SysProtobuf},
		{"FlatBuffers", driver.EchoLib, driver.SysFlatBuffers},
		{"Cap'n Proto", driver.EchoLib, driver.SysCapnProto},
	}
	results := make([]loadgen.Result, len(arms))
	forEach(sc.workers(), len(arms), func(i int) {
		a := arms[i]
		results[i] = echoCapacity(echoOpts{Mode: a.mode, Sys: a.sys, FieldSize: 2048, NumFields: 2, Scale: sc, Seed: 20})
	})
	gbps := map[string]float64{}
	for i, a := range arms {
		res := results[i]
		gbps[a.name] = res.AchievedGbps
		r.Rows = append(r.Rows, []string{a.name, f1(res.AchievedGbps), f1(res.Latency.Quantile(0.99).Microseconds())})
	}
	r.AddCheck("no-serialization is the upper bound",
		gbps["No serialization"] > gbps["Zero-copy"],
		"no-ser %.1f vs zero-copy %.1f Gbps", gbps["No serialization"], gbps["Zero-copy"])
	r.AddCheck("zero-copy beats one-copy",
		gbps["Zero-copy"] > gbps["One-copy"],
		"%.1f vs %.1f Gbps", gbps["Zero-copy"], gbps["One-copy"])
	r.AddCheck("one-copy beats two-copy",
		gbps["One-copy"] > gbps["Two-copy"],
		"%.1f vs %.1f Gbps", gbps["One-copy"], gbps["Two-copy"])
	r.AddCheck("two-copy beats every library",
		gbps["Two-copy"] > gbps["Protobuf"] && gbps["Two-copy"] > gbps["FlatBuffers"] && gbps["Two-copy"] > gbps["Cap'n Proto"],
		"two-copy %.1f vs libs %.1f/%.1f/%.1f", gbps["Two-copy"], gbps["Protobuf"], gbps["FlatBuffers"], gbps["Cap'n Proto"])
	r.AddCheck("zero-copy gains are large (paper: ~2x libraries)",
		gbps["Zero-copy"] > 1.7*gbps["FlatBuffers"],
		"zero-copy %.1f vs FlatBuffers %.1f", gbps["Zero-copy"], gbps["FlatBuffers"])
	r.Notes = append(r.Notes,
		"paper: no-ser 77, zero-copy 48, one-copy 28, two-copy 23, libraries 13-15 Gbps")
	return r
}
