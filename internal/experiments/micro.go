package experiments

import (
	"fmt"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/mem"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
	"cornflakes/internal/workloads"
)

// The scatter-gather microbenchmark of §2.4 (Figure 3) and §6.6
// (Figure 13): a server holds a large array of non-contiguous pinned
// buffers, several times larger than L3; requests name a run of buffers
// and the server concatenates them into the response, either by copying or
// by scatter-gather.

// microMode selects the response datapath.
type microMode int

const (
	microCopy   microMode = iota // copy every buffer into the DMA payload
	microSGSafe                  // scatter-gather with safety/transparency bookkeeping
	microSGRaw                   // raw scatter-gather (upper bound, §2.4)
)

func (m microMode) String() string {
	switch m {
	case microCopy:
		return "copy"
	case microSGSafe:
		return "sg+overheads"
	default:
		return "raw sg"
	}
}

// expCacheConfig shrinks the modelled L3 so scaled-down working sets keep
// the paper's working-set-to-cache ratios (their 1M-key stores are many
// times larger than the L3; our stores are many times this 2 MB L3).
func expCacheConfig() cachesim.Config {
	cfg := cachesim.DefaultConfig()
	cfg.L3.Size = 2 << 20
	return cfg
}

// microServer serves the microbenchmark on one or more cores sharing one
// NIC port. The buffer array is sharded across cores; requests address
// (shard, start) and the port handler demultiplexes to the owning core,
// each with private L1/L2 and a shared L3 (§6.6).
type microServer struct {
	eng     *sim.Engine
	port    *nic.Port
	alloc   *mem.Allocator
	cores   []*sim.Core
	meters  []*costmodel.Meter
	shards  [][]*mem.Buf
	mode    microMode
	segSize int
	count   int // buffers per request

	// Per-core completion releasers (see microSafeRel/microCopyRel) and the
	// serve-path scratch. The engine is serial, and serve runs to completion
	// inside one core job, so one scratch per server never aliases; the NIC
	// copies the gather list at post time.
	safeRels []microSafeRel
	copyRels []microCopyRel
	segs     []*mem.Buf
	entries  []nic.SGEntry
	jobPool  []*microJob
}

// microJob is a pooled serve request: onFrame fills one in and submits its
// pre-bound run closure, so the steady-state dispatch path allocates
// nothing per frame.
type microJob struct {
	s            *microServer
	m            *costmodel.Meter
	shard, start int
	id           uint64
	run          func() sim.Time
}

func (j *microJob) exec() sim.Time {
	j.s.serve(j.m, j.shard, j.start, j.id)
	t := j.m.DrainTime()
	j.s.jobPool = append(j.s.jobPool, j)
	return t
}

func (s *microServer) getJob() *microJob {
	if k := len(s.jobPool); k > 0 {
		j := s.jobPool[k-1]
		s.jobPool = s.jobPool[:k-1]
		return j
	}
	j := &microJob{s: s}
	j.run = j.exec
	return j
}

// microSafeRel is the DMA-completion hook of the safe scatter-gather mode:
// completion charge, refcount metadata access, decref — on the owning
// core's meter (§2.3).
type microSafeRel struct{ m *costmodel.Meter }

func (r *microSafeRel) ReleaseSG(arg any) {
	b := arg.(*mem.Buf)
	r.m.Charge(r.m.CPU.CompletionCy)
	r.m.MetadataAccess(b.RefcountSimAddr())
	b.DecRef()
}

// microCopyRel is the copy mode's completion hook: the completion charge
// without safety metadata (there is no shared buffer to protect).
type microCopyRel struct{ m *costmodel.Meter }

func (r *microCopyRel) ReleaseSG(arg any) {
	b := arg.(*mem.Buf)
	r.m.Charge(r.m.CPU.CompletionCy)
	b.DecRef()
}

// microRawRel drops the in-flight reference with no charges: the raw
// scatter-gather upper bound (§2.4) pays for nothing it can avoid.
type microRawRel struct{}

func (microRawRel) ReleaseSG(arg any) { arg.(*mem.Buf).DecRef() }

var microRaw microRawRel

// request layout (UDP payload): u64 id | u32 shard | u32 start.
const microReqLen = 16

func newMicroServer(eng *sim.Engine, port *nic.Port, nCores int, mode microMode,
	segSize, count, workingSet int, cacheCfg cachesim.Config) *microServer {

	s := &microServer{
		eng: eng, port: port, alloc: mem.NewAllocator(),
		mode: mode, segSize: segSize, count: count,
	}
	base := cachesim.New(cacheCfg)
	for i := 0; i < nCores; i++ {
		cache := base
		if i > 0 {
			cache = cachesim.NewShared(cacheCfg, base)
		}
		s.meters = append(s.meters, costmodel.NewMeter(costmodel.DefaultCPU(), cache))
		core := sim.NewCore(eng)
		core.MaxQueue = 1024
		s.cores = append(s.cores, core)
	}
	for i := 0; i < nCores; i++ {
		s.safeRels = append(s.safeRels, microSafeRel{m: s.meters[i]})
		s.copyRels = append(s.copyRels, microCopyRel{m: s.meters[i]})
	}
	s.segs = make([]*mem.Buf, count)
	perShard := workingSet / nCores / segSize
	if perShard < count {
		perShard = count
	}
	for i := 0; i < nCores; i++ {
		shard := make([]*mem.Buf, perShard)
		for j := range shard {
			b := s.alloc.Alloc(segSize)
			for k := 0; k < segSize; k += 64 {
				b.Bytes()[k] = byte(i + j + k)
			}
			shard[j] = b
		}
		s.shards = append(s.shards, shard)
	}
	port.SetHandler(s.onFrame)
	return s
}

func (s *microServer) perShard() int { return len(s.shards[0]) }

func (s *microServer) onFrame(f *nic.Frame) {
	if len(f.Data) < netstack.PacketHeaderLen+microReqLen {
		return
	}
	req := f.Data[netstack.PacketHeaderLen:]
	id := wire.GetU64(req)
	shard := int(wire.GetU32(req[8:])) % len(s.shards)
	start := int(wire.GetU32(req[12:])) % len(s.shards[shard])
	j := s.getJob()
	j.m = s.meters[shard]
	j.shard, j.start, j.id = shard, start, id
	s.cores[shard].Submit(sim.Job{Run: j.run})
}

// serve builds and posts the response, charging the owning core's meter.
// The response payload is [u64 id | buffer data...].
func (s *microServer) serve(m *costmodel.Meter, shard, start int, id uint64) {
	cpu := m.CPU
	m.Charge(cpu.RxPacketCy)
	bufs := s.shards[shard]
	segs := s.segs
	for i := range segs {
		segs[i] = bufs[(start+i)%len(bufs)]
	}

	if s.mode == microCopy {
		total := 8 + s.count*s.segSize
		out := s.alloc.Alloc(netstack.PacketHeaderLen + total)
		m.Charge(cpu.DMABufAllocCy + cpu.PktHeaderCy)
		m.Access(out.SimAddr(), netstack.PacketHeaderLen)
		wire.PutU64(out.Bytes()[netstack.PacketHeaderLen:], id)
		cur := netstack.PacketHeaderLen + 8
		for _, b := range segs {
			m.Copy(b.SimAddr(), out.SimAddr()+uint64(cur), b.Len())
			copy(out.Bytes()[cur:], b.Bytes())
			cur += b.Len()
		}
		m.Charge(cpu.TxDescCy)
		s.entries = append(s.entries[:0], nic.SGEntry{
			Data: out.Bytes(), Sim: out.SimAddr(),
			Rel:    &s.copyRels[shard],
			RelArg: out,
		})
		s.port.Send(s.entries)
		return
	}

	hdr := s.alloc.Alloc(netstack.PacketHeaderLen + 8)
	m.Charge(cpu.DMABufAllocCy + cpu.PktHeaderCy)
	m.Access(hdr.SimAddr(), netstack.PacketHeaderLen)
	wire.PutU64(hdr.Bytes()[netstack.PacketHeaderLen:], id)
	entries := append(s.entries[:0], nic.SGEntry{
		Data: hdr.Bytes(), Sim: hdr.SimAddr(),
		Rel: microRaw, RelArg: hdr,
	})
	m.Charge(cpu.TxDescCy)
	for _, b := range segs {
		b.IncRef() // the NIC's in-flight reference
		m.SGPost()
		e := nic.SGEntry{Data: b.Bytes(), Sim: b.SimAddr(), RelArg: b}
		if s.mode == microSGSafe {
			// Memory transparency + safety: pinned-range lookup, refcount
			// update now and at completion (§2.3).
			m.Charge(cpu.RegistryLookupCy)
			m.MetadataAccess(b.RefcountSimAddr())
			e.Rel = &s.safeRels[shard]
		} else {
			e.Rel = microRaw // raw: physics only, no charges
		}
		entries = append(entries, e)
	}
	s.entries = entries[:0]
	if err := s.port.Send(entries); err != nil {
		panic(fmt.Sprintf("microbench: %v", err))
	}
}

// microClient drives the microbenchmark through loadgen. Shard and start
// are derived deterministically from the request id.
type microClient struct {
	shards, perShard int
	// buf is the request scratch: the transport copies the payload into the
	// DMA buffer before SendContiguous returns, so one buffer serves every
	// request.
	buf [microReqLen]byte
}

func (c *microClient) Steps(workloads.Request) int { return 1 }

func (c *microClient) BuildStep(id uint64, _ workloads.Request, _ int) []byte {
	b := c.buf[:]
	wire.PutU64(b, id)
	h := splitmix(id)
	wire.PutU32(b[8:], uint32(h%uint64(c.shards)))
	wire.PutU32(b[12:], uint32((h>>20)%uint64(c.perShard)))
	return b
}

func (c *microClient) ResponseID(p []byte) (uint64, error) {
	if len(p) < 8 {
		return 0, fmt.Errorf("short microbench response")
	}
	return wire.GetU64(p), nil
}

// splitmix is SplitMix64: a deterministic id → pseudo-random mapping.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// microMaxGbps measures the highest achieved response throughput for one
// microbenchmark configuration.
func microMaxGbps(mode microMode, nCores, segSize, count, workingSet int, sc Scale, seed uint64) float64 {
	run := func(rate float64) loadgen.Result {
		eng := sim.NewEngine()
		prof := nic.MellanoxCX5Ex()
		pc, ps := nic.Link(eng, prof, prof, 1500*sim.Nanosecond)
		clientAlloc := mem.NewAllocator()
		clientMeter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
		clientUDP := netstack.NewUDP(eng, pc, clientAlloc, clientMeter)
		srv := newMicroServer(eng, ps, nCores, mode, segSize, count, workingSet, expCacheConfig())
		return loadgen.Run(loadgen.Config{
			Eng: eng, EP: clientUDP,
			Gen:      nopGen{},
			Client:   &microClient{shards: nCores, perShard: srv.perShard()},
			RatePerS: rate,
			Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
			Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
			Seed:     seed,
		})
	}
	rate := 150_000 * float64(nCores)
	lastGood := rate / 2
	best := 0.0
	saturated := false
	for i := 0; i < 9; i++ {
		res := run(rate)
		if res.AchievedGbps > best {
			best = res.AchievedGbps
		}
		if res.AchievedRps < 0.90*res.SentRps {
			saturated = true
			break
		}
		lastGood = rate
		rate *= 2
	}
	if saturated {
		for _, r := range loadgen.GeometricRates(lastGood*1.15, rate*0.85, 3) {
			if res := run(r); res.AchievedGbps > best {
				best = res.AchievedGbps
			}
		}
	}
	return best
}
