package experiments

import (
	"cornflakes/internal/costmodel"
	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// Fig11 reproduces Figure 11: average CPU cycles per request on the CDN
// trace, broken down into receive, deserialize, get, and serialize+send,
// at a fixed moderate load. Paper: Cornflakes' deserialization slice is
// shorter (deferred UTF-8 validation) and its serialize+send slice shrinks
// because zero-copy avoids touching value bytes.
func Fig11(sc Scale) *Report {
	r := &Report{
		ID:     "fig11",
		Title:  "CDN trace: avg cycles per request by phase",
		Header: []string{"system", "rx", "deserialize", "get", "serialize+tx", "total"},
	}
	measure := func(sys driver.System) costmodel.Receipt {
		tb := driver.NewTestbedCfg(kvProfile(), expCacheConfig())
		srv := driver.NewKVServer(tb.Server, sys)
		var sum costmodel.Receipt
		var n float64
		srv.OnReceipt = func(rec costmodel.Receipt) {
			sum.Add(rec)
			n++
		}
		gen := workloads.NewCDN(sc.StoreKeys, 8000, 256<<10, 120)
		srv.Preload(gen.Records())
		loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: gen, Client: driver.NewKVClient(tb.Client, sys),
			RatePerS: 20_000,
			Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
			Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
			Seed:     121,
		})
		sum.Scale(n)
		return sum
	}
	systems := []driver.System{driver.SysCornflakes, driver.SysFlatBuffers, driver.SysProtobuf}
	perSys := make([]costmodel.Receipt, len(systems))
	forEach(sc.workers(), len(systems), func(i int) {
		perSys[i] = measure(systems[i])
	})
	recs := map[driver.System]costmodel.Receipt{}
	for i, sys := range systems {
		rec := perSys[i]
		recs[sys] = rec
		ser := rec.Cycles[costmodel.CatSerialize] + rec.Cycles[costmodel.CatTx]
		r.Rows = append(r.Rows, []string{
			sys.String(),
			f1(rec.Cycles[costmodel.CatRx]),
			f1(rec.Cycles[costmodel.CatDeserialize]),
			f1(rec.Cycles[costmodel.CatApp]),
			f1(ser),
			f1(rec.Total()),
		})
	}
	cf, fb, pb := recs[driver.SysCornflakes], recs[driver.SysFlatBuffers], recs[driver.SysProtobuf]
	serOf := func(rec costmodel.Receipt) float64 {
		return rec.Cycles[costmodel.CatSerialize] + rec.Cycles[costmodel.CatTx]
	}
	r.AddCheck("Cornflakes serializes in far fewer cycles (zero-copy)",
		serOf(cf) < 0.7*serOf(fb) && serOf(cf) < 0.7*serOf(pb),
		"CF %.0f vs FB %.0f vs PB %.0f cycles", serOf(cf), serOf(fb), serOf(pb))
	r.AddCheck("Cornflakes total per-request cycles lowest",
		cf.Total() < fb.Total() && cf.Total() < pb.Total(),
		"CF %.0f vs FB %.0f vs PB %.0f", cf.Total(), fb.Total(), pb.Total())
	r.AddCheck("Cornflakes deserialization not slower (deferred UTF-8)",
		cf.Cycles[costmodel.CatDeserialize] <= fb.Cycles[costmodel.CatDeserialize]*1.1,
		"CF %.0f vs FB %.0f", cf.Cycles[costmodel.CatDeserialize], fb.Cycles[costmodel.CatDeserialize])
	r.Notes = append(r.Notes,
		"minimum object size 1 kB, so Cornflakes always uses zero-copy here (§6.4)")
	return r
}
