package experiments

import (
	"fmt"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// ExtMulticore is the "full multicore implementation" the paper leaves to
// future work (§6.6): the complete end-to-end KV application — not just
// the copy/SG microbenchmark of Figure 13 — running on 1–8 cores with a
// key-sharded store, private L1/L2 per core, a shared L3 and one shared
// NIC port. It verifies the paper's extrapolation claim: end-to-end
// Cornflakes throughput scales near-linearly until the NIC binds.
func ExtMulticore(sc Scale) *Report {
	r := &Report{
		ID:     "ext-multicore",
		Title:  "Extension (§6.6): end-to-end multicore KV server (Twitter trace)",
		Header: []string{"cores", "max krps", "scaling"},
	}
	measure := func(nCores int) float64 {
		gen := workloads.NewTwitter(8*sc.StoreKeys, 190)
		run := func(rate float64) (loadgen.Result, float64) {
			eng := sim.NewEngine()
			prof := nic.MellanoxCX6()
			pc, ps := nic.Link(eng, prof, prof, 1500*sim.Nanosecond)
			clientNode := driver.NewNode(eng, pc, false)
			srv := driver.NewMultiKVServer(eng, ps, nCores, driver.SysCornflakes, expCacheConfig())
			srv.Preload(gen.Records())
			res := loadgen.Run(loadgen.Config{
				Eng: eng, EP: clientNode.UDP,
				Gen: gen,
				Client: &driver.MultiKVClient{
					Inner:  driver.NewKVClient(clientNode, driver.SysCornflakes),
					NCores: nCores,
				},
				RatePerS: rate,
				Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
				Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
				Seed:     191,
			})
			return res, srv.Utilization()
		}
		// Capacity via the utilization method, generalized to K cores.
		rate := 150_000.0 * float64(nCores)
		best := 0.0
		for i := 0; i < 6; i++ {
			res, u := run(rate)
			if res.Completed == 0 || u <= 0 {
				rate /= 2
				continue
			}
			if u > 0.80 {
				rate *= 0.3
				continue
			}
			capRps := res.AchievedRps / u
			best = capRps
			if u >= 0.25 {
				break
			}
			rate = 0.5 * capRps
		}
		return best
	}

	cores := []int{1, 2, 4}
	if sc.Cores >= 8 {
		cores = append(cores, 8)
	}
	perCore := make([]float64, len(cores))
	forEach(sc.workers(), len(cores), func(i int) {
		perCore[i] = measure(cores[i])
	})
	caps := map[int]float64{}
	for i, k := range cores {
		caps[k] = perCore[i]
	}
	for _, k := range cores {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", k), f1(caps[k] / 1000),
			fmt.Sprintf("x%.2f", caps[k]/caps[1]),
		})
	}
	r.AddCheck("end-to-end throughput scales near-linearly to 4 cores (paper's §6.6 extrapolation)",
		caps[4] > 3.2*caps[1],
		"1 core %.0f, 4 cores %.0f rps (x%.2f)", caps[1], caps[4], caps[4]/caps[1])
	r.AddCheck("2-core step is clean",
		caps[2] > 1.7*caps[1],
		"x%.2f", caps[2]/caps[1])
	r.Notes = append(r.Notes,
		"key-sharded stores, private L1/L2, shared L3, one shared 100Gbps port",
		"the paper's §6.6 microbenchmark scales linearly; this verifies the same for the full application")
	return r
}
