package experiments

import (
	"fmt"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/sim"
	"cornflakes/internal/trace"
	"cornflakes/internal/workloads"
)

// The batching experiment: sweep the server's RX/TX burst cap against an
// offered-load ladder and measure what doorbell/poll amortization buys.
// Batching is the classic throughput-for-latency trade; the adaptive
// burst policy (serve whatever backlog exists, up to the cap) is supposed
// to collapse the trade at low load. The sweep checks both sides:
//
//  1. at the deepest point of the ladder (1.5× the unbatched capacity)
//     the batched server delivers ≥ 10% more goodput than burst cap 1;
//  2. at the lightest point (0.2× capacity) its p99 stays within 5% of
//     the unbatched baseline, because bursts collapse to one;
//  3. the adaptation is visible in the burst statistics — mean burst ≈ 1
//     at low load, growing toward the cap past saturation;
//  4. the mechanism is the claimed one: doorbells per posted frame fall
//     well below 1 at the deepest point;
//  5. the batched datapath is deterministic — re-running the deepest
//     point reproduces the result fingerprint exactly.
//
// The workload uses small (128 B) values so fixed per-packet costs — the
// RX poll and TX doorbell shares batching amortizes — dominate the
// per-request budget; large values would bury the effect under copy and
// DMA time that batching cannot touch.

// batchingBursts is the burst-cap ladder. 1 is the degenerate cap (the
// legacy datapath, bit-identical by construction) and serves as the
// baseline; 16 is comfortably past the knee of the amortization curve.
var batchingBursts = []int{1, 4, 16}

// batchingOpts is the KV configuration under test: Cornflakes over UDP
// with 128 B values at the given burst cap.
func batchingOpts(sc Scale, burst int) kvOpts {
	sc.Batch = burst
	return kvOpts{
		Sys:   driver.SysCornflakes,
		Gen:   workloads.NewYCSB(sc.StoreKeys, 128, 1),
		Scale: sc,
		Seed:  11,
	}
}

// BatchPoint is one (burst cap, offered load) outcome, exposing the
// server's burst statistics and the NIC's doorbell accounting alongside
// the loadgen result.
type BatchPoint struct {
	Res   loadgen.Result
	Burst int
	// Batches and BatchedReqs are the server's drain statistics; their
	// ratio is the mean realized burst. MaxBatch is the largest burst any
	// single drain served.
	Batches, BatchedReqs uint64
	MaxBatch             int
	// TxDoorbells and TxFrames are the server port's post-time counters;
	// doorbells per frame is the TX amortization actually realized.
	TxDoorbells, TxFrames uint64
}

// MeanBurst returns the mean realized burst, 0 before any drain ran.
func (p BatchPoint) MeanBurst() float64 {
	if p.Batches == 0 {
		return 0
	}
	return float64(p.BatchedReqs) / float64(p.Batches)
}

// DoorbellsPerFrame returns TX doorbells per posted frame (1.0 on the
// unbatched path).
func (p BatchPoint) DoorbellsPerFrame() float64 {
	if p.TxFrames == 0 {
		return 0
	}
	return float64(p.TxDoorbells) / float64(p.TxFrames)
}

// BatchingAt runs one point of the burst × load grid.
func BatchingAt(sc Scale, burst int, rate float64) BatchPoint {
	o := batchingOpts(sc, burst)
	tb, srv, client := newKVTestbed(o)
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: o.Gen, Client: client,
		RatePerS: rate,
		Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
		Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
		Seed:     o.Seed + 1,
	})
	// Run the engine dry so queued bursts finish and the RX ring empties.
	tb.Eng.Run()
	port := tb.Server.UDP.Port
	return BatchPoint{
		Res: res, Burst: burst,
		Batches: srv.Batches, BatchedReqs: srv.BatchedReqs, MaxBatch: srv.MaxBatch,
		TxDoorbells: port.TxDoorbells, TxFrames: port.TxFrames,
	}
}

// fingerprint summarizes a point for the determinism check: every field
// that could move if the batched datapath ordered work differently.
func (p BatchPoint) fingerprint() string {
	return fmt.Sprintf("sent=%d completed=%d bad=%d achieved=%.6f p50=%d p99=%d max=%d batches=%d batched=%d maxbatch=%d doorbells=%d frames=%d",
		p.Res.Sent, p.Res.Completed, p.Res.BadResponses, p.Res.AchievedRps,
		p.Res.P50(), p.Res.P99(), p.Res.Latency.Max(),
		p.Batches, p.BatchedReqs, p.MaxBatch, p.TxDoorbells, p.TxFrames)
}

// Batching sweeps burst cap × offered load and checks the batched
// datapath's contract: capacity gain under overload, bounded low-load
// latency, visible adaptation, doorbell amortization, and determinism.
func Batching(sc Scale) *Report {
	r := &Report{
		ID:    "batching",
		Title: "Batched RX/TX datapath: burst cap × offered load",
		Header: []string{"burst", "offered rps", "goodput rps", "p50 µs", "p99 µs",
			"mean burst", "max burst", "doorbells/frame"},
	}
	capRps := kvCapacity(batchingOpts(sc, 1)).AchievedRps
	if capRps <= 0 {
		r.AddCheck("capacity: estimator produced a usable operating point", false,
			"capacity estimate %.0f rps", capRps)
		return r
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"unbatched capacity estimate %.0f rps; sweep 0.2×–1.5×; burst caps %v",
		capRps, batchingBursts))

	rates := loadgen.GeometricRates(0.2*capRps, 1.5*capRps, sc.SweepPoints)
	lo, hi := 0, len(rates)-1

	// grid[burst index][rate index]; every cell is an independent testbed,
	// so the whole burst × rate grid fans out at once.
	grid := make([][]BatchPoint, len(batchingBursts))
	for bi := range grid {
		grid[bi] = make([]BatchPoint, len(rates))
	}
	forEach(sc.workers(), len(batchingBursts)*len(rates), func(i int) {
		bi, ri := i/len(rates), i%len(rates)
		grid[bi][ri] = BatchingAt(sc, batchingBursts[bi], rates[ri])
	})
	for bi, burst := range batchingBursts {
		for ri := range rates {
			p := grid[bi][ri]
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(burst),
				fmt.Sprintf("%.0f", p.Res.OfferedRps),
				fmt.Sprintf("%.0f", p.Res.AchievedRps),
				f1(p.Res.P50().Seconds() * 1e6),
				f1(p.Res.P99().Seconds() * 1e6),
				f2(p.MeanBurst()),
				fmt.Sprint(p.MaxBatch),
				f2(p.DoorbellsPerFrame()),
			})
		}
	}
	base, best := grid[0], grid[len(batchingBursts)-1]

	// 1. Capacity gain: at the deepest point of the ladder the widest
	// burst cap out-serves burst cap 1 by ≥ 10%.
	gain := pct(best[hi].Res.AchievedRps, base[hi].Res.AchievedRps)
	r.AddCheck("throughput: ≥10% goodput gain at 1.5× capacity with the widest burst",
		base[hi].Res.AchievedRps > 0 && gain >= 10,
		"burst %d: %.0f rps vs burst 1: %.0f rps (%+.1f%%)",
		best[hi].Burst, best[hi].Res.AchievedRps, base[hi].Res.AchievedRps, gain)

	// 2. Low-load latency: at 0.2× capacity the batched p99 stays within
	// 5% of the unbatched baseline.
	bp99, pp99 := base[lo].Res.P99(), best[lo].Res.P99()
	r.AddCheck("latency: low-load p99 within 5% of the unbatched baseline",
		bp99 > 0 && pp99 <= bp99+bp99/20,
		"burst %d: %v vs burst 1: %v", best[lo].Burst, pp99, bp99)

	// 3. Adaptation: bursts collapse toward 1 when there is no backlog and
	// grow under overload — the policy, observed rather than assumed.
	r.AddCheck("adaptive: bursts collapse at low load and grow past saturation",
		best[lo].MeanBurst() < 2 && best[hi].MeanBurst() > 2 && best[hi].MaxBatch > 2,
		"mean burst %.2f at 0.2×, %.2f (max %d) at 1.5×",
		best[lo].MeanBurst(), best[hi].MeanBurst(), best[hi].MaxBatch)

	// 4. Mechanism: the gain comes from amortization, so doorbells per
	// posted frame must fall well below the unbatched 1.0 at the deepest
	// point.
	r.AddCheck("doorbells: per-frame doorbells fall below 0.75 under overload",
		base[hi].DoorbellsPerFrame() > 0.99 && best[hi].DoorbellsPerFrame() < 0.75,
		"burst 1: %.2f, burst %d: %.2f",
		base[hi].DoorbellsPerFrame(), best[hi].Burst, best[hi].DoorbellsPerFrame())

	// 5. Determinism: the batched datapath replays exactly — same seeds,
	// same fingerprint, bit for bit.
	rerun := BatchingAt(sc, best[hi].Burst, rates[hi])
	f1p, f2p := best[hi].fingerprint(), rerun.fingerprint()
	r.AddCheck("determinism: re-running the deepest batched point reproduces it exactly",
		f1p == f2p, "%s", f1p)
	if f1p != f2p {
		r.Notes = append(r.Notes, "rerun fingerprint: "+f2p)
	}

	// On request (Scale.Trace / cf-bench -trace), re-run an overloaded
	// point with the tracing layer attached and the burst cap enabled, and
	// ship the export as an artifact: the per-request view of batch
	// assembly (queue spans ending at a shared drain instant) and flush.
	if sc.Trace {
		scb := sc
		scb.Batch = batchingBursts[len(batchingBursts)-1]
		tr := TracedOverloadRun(scb, rates[hi], trace.Config{
			SampleEvery: traceSampleEvery, SlowestK: traceSlowestK,
		})
		r.AddArtifact("batching-trace.json", tr.JSON)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"trace artifact batching-trace.json: %d retained flows at %.0f rps, burst cap %d",
			len(tr.Tracer.Retained()), tr.Res.OfferedRps, scb.Batch))
	}

	return r
}
