package experiments

import (
	"fmt"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// Beyond the paper's evaluation, two additional ablations cover design
// choices the paper calls out in passing, plus the §7 dynamic-threshold
// extension implemented in this repository.

// ExtArena ablates the arena allocator behind CFPtr's copied vectors.
// Table 1's footnote attributes part of Cornflakes' 1–16-value win to
// "arena allocation for vectors inside generated data structures"; this
// experiment measures that choice directly by switching the copy path to
// per-field heap allocations.
func ExtArena(sc Scale) *Report {
	r := &Report{
		ID:     "ext-arena",
		Title:  "Ablation: arena vs heap allocation for copied CFPtr vectors (krps)",
		Header: []string{"list shape", "arena", "heap", "arena gain"},
	}
	shapes := []int{4, 16}
	measureShape := func(mv int, disableArena bool) float64 {
		gen := googleGen(sc, mv, 170)
		cfg := expCacheConfig()
		return capacityOf(func(rate float64) (loadgen.Result, *sim.Core) {
			// Rebuild per rate for a clean cache.
			tb := driver.NewTestbedCfg(nic.MellanoxCX6(), cfg)
			srv := driver.NewKVServer(tb.Server, driver.SysCornflakes)
			tb.Server.Ctx.DisableArena = disableArena
			srv.Preload(gen.Records())
			res := loadgen.Run(loadgen.Config{
				Eng: tb.Eng, EP: tb.Client.UDP,
				Gen: gen, Client: driver.NewKVClient(tb.Client, driver.SysCornflakes),
				RatePerS: rate,
				Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
				Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
				Seed:     171,
			})
			return res, tb.Server.Core
		}, 100_000).AchievedRps
	}
	// 2 list shapes × {arena, heap} = 4 independent capacity probes.
	cells := make([]float64, 2*len(shapes))
	forEach(sc.workers(), len(cells), func(i int) {
		cells[i] = measureShape(shapes[i/2], i%2 == 1)
	})
	gains := map[int]float64{}
	for si, mv := range shapes {
		arena, heap := cells[2*si], cells[2*si+1]
		g := pct(arena, heap)
		gains[mv] = g
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("1-%d vals", mv), f1(arena / 1000), f1(heap / 1000),
			fmt.Sprintf("%+.1f%%", g),
		})
	}
	r.AddCheck("arena allocation pays on copy-heavy lists",
		gains[4] > 0 && gains[16] > 0,
		"1-4: %+.1f%%, 1-16: %+.1f%%", gains[4], gains[16])
	r.AddCheck("the win grows with list length (more vectors per request)",
		gains[16] >= gains[4]*0.8,
		"1-4: %+.1f%% vs 1-16: %+.1f%%", gains[4], gains[16])
	r.Notes = append(r.Notes,
		"Table 1 footnote: part of Cornflakes' long-list win comes from arena allocation")
	return r
}

// ExtAdaptive exercises the §7 dynamic-threshold extension: a server with
// a misconfigured threshold self-corrects toward the empirical crossover
// while serving traffic, on both cold and warm working sets.
func ExtAdaptive(sc Scale) *Report {
	r := &Report{
		ID:     "ext-adaptive",
		Title:  "Extension (§7): adaptive zero-copy threshold convergence",
		Header: []string{"scenario", "start", "converged", "adjustments"},
	}
	run := func(name string, start, keys, l3 int) ([]string, int) {
		cfg := cachesim.DefaultConfig()
		cfg.L3.Size = l3
		gen := workloads.NewYCSB(keys, 512, 2)
		tb := driver.NewTestbedCfg(nic.MellanoxCX6(), cfg)
		srv := driver.NewKVServer(tb.Server, driver.SysCornflakes)
		tb.Server.Ctx.Threshold = start
		srv.Adaptive = core.NewAdaptiveThreshold(tb.Server.Ctx)
		srv.Preload(gen.Records())
		loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.UDP,
			Gen: gen, Client: driver.NewKVClient(tb.Client, driver.SysCornflakes),
			RatePerS: 300_000,
			Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
			Measure:  sim.Time(3*sc.MeasureMs) * sim.Millisecond,
			Seed:     172,
		})
		row := []string{
			name, fmt.Sprintf("%d", start), fmt.Sprintf("%d", tb.Server.Ctx.Threshold),
			fmt.Sprintf("%d", srv.Adaptive.Adjustments),
		}
		return row, tb.Server.Ctx.Threshold
	}
	rows := make([][]string, 2)
	converged := make([]int, 2)
	forEach(sc.workers(), 2, func(i int) {
		if i == 0 {
			rows[i], converged[i] = run("cold store, start 64B", 64, 8*sc.StoreKeys, 512<<10)
		} else {
			rows[i], converged[i] = run("warm store, start 4096B", 4096, sc.StoreKeys/2, 16<<20)
		}
	})
	r.Rows = append(r.Rows, rows...)
	cold, warm := converged[0], converged[1]
	r.AddCheck("cold-metadata threshold rises from a too-low start",
		cold >= 256, "64 -> %d", cold)
	r.AddCheck("warm-metadata threshold falls from a too-high start",
		warm <= 2048, "4096 -> %d", warm)
	r.Notes = append(r.Notes,
		"the controller observes metadata miss rates between requests (§3.2.1-compatible)")
	return r
}
