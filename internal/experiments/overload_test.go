package experiments

import "testing"

// TestOverload runs the full graceful-degradation sweep (capacity probe
// plus a load ladder up to 2.5× capacity). -short runs cover the same
// machinery via TestOverloadSmallestPoint below.
func TestOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full overload sweep in -short mode (smallest point still runs)")
	}
	t.Parallel()
	runExperiment(t, "overload")
}

// TestOverloadSmallestPoint runs a single underloaded sweep point even
// under -short (make check-fast), so the bounded-allocator, shed-reply and
// retry paths stay exercised in the fast suite.
func TestOverloadSmallestPoint(t *testing.T) {
	t.Parallel()
	pt := OverloadAt(Quick(), 100_000)
	res := pt.Res
	if res.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if res.Sent != res.Completed+res.Shed+res.TimedOut || res.Unresolved != 0 {
		t.Errorf("accounting: sent=%d completed=%d shed=%d timedout=%d unresolved=%d",
			res.Sent, res.Completed, res.Shed, res.TimedOut, res.Unresolved)
	}
	if pt.PeakSlots > pt.CapSlots {
		t.Errorf("peak %d slots exceeded cap %d", pt.PeakSlots, pt.CapSlots)
	}
	if pt.FinalSlots != pt.BaseSlots {
		t.Errorf("leak: %d slots in use after drain, baseline %d", pt.FinalSlots, pt.BaseSlots)
	}
}
