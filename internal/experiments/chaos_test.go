package experiments

import "testing"

// TestChaosSmoke is the CI smoke point: one kill-one-shard ladder point
// with failover routing, end to end through the fault layer. It stays in
// -short runs (scripts/check.sh) so crash/recovery, failover and the frame
// ledger are always exercised even when the full scenario set is skipped.
func TestChaosSmoke(t *testing.T) {
	t.Parallel()
	p := ChaosCrashPoint(Quick(), 200_000, true)
	if p.Sched.Crashes != 1 || p.Sched.Recoveries != 1 {
		t.Fatalf("schedule = %+v, want 1 crash / 1 recovery", p.Sched)
	}
	if p.Recoveries != 1 {
		t.Errorf("server recoveries = %d, want 1", p.Recoveries)
	}
	// The dead window must have discarded work loudly — at the host NIC,
	// in the server queues, or both.
	if p.DownDrops == 0 && p.Ledger.HostDownDrops == 0 {
		t.Error("crash discarded nothing despite a dead window under load")
	}
	var done, bad uint64
	for _, res := range p.Results {
		done += res.Completed
		bad += res.BadResponses
	}
	if done == 0 || bad != 0 {
		t.Fatalf("completed=%d bad=%d", done, bad)
	}
	if !p.accountingExact() {
		t.Error("per-client disposal accounting does not add up")
	}
	if loss := p.SilentLoss(); loss != 0 {
		t.Errorf("silent frame loss = %d (ledger %+v)", loss, p.Ledger)
	}
	if p.Misrouted != 0 {
		t.Errorf("switch misrouted %d frames", p.Misrouted)
	}
}

// TestChaosDeterministic pins the replay contract at the point level: the
// same (scale, rate, seed) chaos point reproduces its fingerprint exactly.
func TestChaosDeterministic(t *testing.T) {
	t.Parallel()
	a := ChaosCrashPoint(Quick(), 150_000, true)
	b := ChaosCrashPoint(Quick(), 150_000, true)
	if a.fingerprint() != b.fingerprint() {
		t.Errorf("fingerprints differ:\n%s\n%s", a.fingerprint(), b.fingerprint())
	}
}

// TestChaos runs the full experiment — crash ladder, flap storm, gray
// triplet — and requires every check (recovery, failover, conservation,
// hedging, determinism) to pass.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos scenario set; skipped in -short (smoke point still runs)")
	}
	t.Parallel()
	runExperiment(t, "chaos")
}
