package experiments

import "cornflakes/internal/loadgen"

// Shared experiment-check helpers: the cluster, chaos, and rpc scenario
// families all assert the same bookkeeping contracts — exact request
// disposal on every generator, and point-level replay determinism. They
// were separately (and slightly divergently) hand-rolled per experiment;
// factoring them here keeps a new scenario family honest by default.

// disposalExact reports whether every result's request ledger resolves
// exactly: sent = completed + shed + timedout + unresolved. Any gap means
// a flow was double-counted or silently dropped by the harness itself.
func disposalExact(rs ...loadgen.Result) bool {
	for _, r := range rs {
		if r.Completed+r.Shed+r.TimedOut+r.Unresolved != r.Sent {
			return false
		}
	}
	return true
}

// addAccountingCheck records the disposal-exactness check over a set of
// generator results under a scenario-specific scope label.
func addAccountingCheck(r *Report, scope string, exact bool, n int) {
	r.AddCheck("accounting: sent = completed+shed+timedout+unresolved for every client",
		exact, "checked %s (%d results)", scope, n)
}

// addDeterminismCheck re-runs a point via the caller's closure and pins its
// fingerprint against the first run: same seed, same config → byte-equal.
func addDeterminismCheck(r *Report, what, first string, rerun func() string) {
	second := rerun()
	r.AddCheck("determinism: "+what+" replays byte-identically",
		first == second, "fingerprint %q", first)
	if first != second {
		r.Notes = append(r.Notes, "rerun fingerprint: "+second)
	}
}
