package experiments

import "testing"

// TestSoak runs the full 100-scenario fault-injection sweep over both
// workloads (~1 s of real time). It is the acceptance gate for the
// retransmission fixes, so it runs in the default suite; -short skips it.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fault-injection soak in -short mode")
	}
	t.Parallel()
	runExperiment(t, "soak")
}

// TestSoakScenarioReplayable: a single scenario re-run from its seed must
// reproduce the identical outcome, including fault and retransmit counts —
// the property that makes a soak failure debuggable in isolation.
func TestSoakScenarioReplayable(t *testing.T) {
	t.Parallel()
	if a, b := SoakEcho(17), SoakEcho(17); a != b {
		t.Errorf("echo seed 17 not replayable:\n  %v\n  %v", a, b)
	}
	if a, b := SoakKV(23), SoakKV(23); a != b {
		t.Errorf("kv seed 23 not replayable:\n  %v\n  %v", a, b)
	}
}

// TestSoakInvariantsOneScenario spot-checks the per-scenario invariant
// fields directly (the sweep only sees aggregates).
func TestSoakInvariantsOneScenario(t *testing.T) {
	t.Parallel()
	for _, res := range []SoakResult{SoakEcho(3), SoakKV(3)} {
		if !res.OK() {
			t.Errorf("scenario failed: %v", res)
		}
		if res.Completed != res.Total {
			t.Errorf("%s: %d/%d completed", res.Workload, res.Completed, res.Total)
		}
	}
}
