package experiments

import (
	"sync"
	"testing"
)

// TestForEachEdgeCases pins the fan-out boundaries: n=0 must return without
// calling fn (and without spawning workers that would race the empty
// counter), and w>n must clamp to n so no goroutine spins on an exhausted
// counter.
func TestForEachEdgeCases(t *testing.T) {
	t.Run("n=0", func(t *testing.T) {
		for _, w := range []int{0, 1, 4} {
			called := false
			forEach(w, 0, func(i int) { called = true })
			if called {
				t.Errorf("w=%d: fn called for n=0", w)
			}
		}
	})

	t.Run("w>n", func(t *testing.T) {
		var mu sync.Mutex
		seen := map[int]int{}
		forEach(16, 3, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		if len(seen) != 3 {
			t.Fatalf("saw %d distinct indices, want 3: %v", len(seen), seen)
		}
		for i := 0; i < 3; i++ {
			if seen[i] != 1 {
				t.Errorf("index %d called %d times, want exactly once", i, seen[i])
			}
		}
	})

	t.Run("serial order", func(t *testing.T) {
		// w<=1 is the serial degenerate case: loop order, calling goroutine.
		var order []int
		forEach(1, 4, func(i int) { order = append(order, i) })
		for i, v := range order {
			if v != i {
				t.Fatalf("serial forEach out of order: %v", order)
			}
		}
	})
}
