package experiments

import (
	"math/rand/v2"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/redis"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// kvOpts configures one KV-server measurement.
type kvOpts struct {
	Sys driver.System
	Gen workloads.Generator
	// Threshold overrides the zero-copy threshold when ThresholdSet is
	// true (0 is a meaningful value: scatter-gather everything).
	Threshold    int
	ThresholdSet bool
	UseSGArray   bool
	Profile      nic.Profile
	// SmallCache shrinks the modelled L3 (see expCacheConfig) so that
	// scaled-down stores stay DRAM-resident like the paper's.
	SmallCache bool
	// Offload charges (de)serialization to a NIC-side engine instead of
	// the host core (KVServer.OffloadSer) — the RPCAcc-style deployment.
	Offload bool
	Scale   Scale
	Seed    uint64
}

func (o *kvOpts) profile() nic.Profile {
	if o.Profile.Name == "" {
		return nic.MellanoxCX6()
	}
	return o.Profile
}

// newKVTestbed builds the testbed, server and client for the options.
func newKVTestbed(o kvOpts) (*driver.Testbed, *driver.KVServer, *driver.KVClient) {
	cacheCfg := cachesim.DefaultConfig()
	if o.SmallCache {
		cacheCfg = expCacheConfig()
	}
	tb := driver.NewTestbedCfg(o.profile(), cacheCfg)
	srv := driver.NewKVServer(tb.Server, o.Sys)
	if o.ThresholdSet {
		tb.Server.Ctx.Threshold = o.Threshold
	}
	srv.UseSGArray = o.UseSGArray
	srv.OffloadSer = o.Offload
	if o.Scale.Batch > 0 {
		srv.EnableBatching(o.Scale.Batch)
	}
	srv.Preload(o.Gen.Records())
	return tb, srv, driver.NewKVClient(tb.Client, o.Sys)
}

// runKVAt runs one load point, returning the server core for capacity
// accounting.
func runKVAtCore(o kvOpts, rate float64) (loadgen.Result, *sim.Core) {
	tb, _, client := newKVTestbed(o)
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: o.Gen, Client: client,
		RatePerS: rate,
		Warmup:   sim.Time(o.Scale.WarmupMs) * sim.Millisecond,
		Measure:  sim.Time(o.Scale.MeasureMs) * sim.Millisecond,
		Seed:     o.Seed + 1,
	})
	return res, tb.Server.Core
}

// runKVAt runs one load point.
func runKVAt(o kvOpts, rate float64) loadgen.Result {
	res, _ := runKVAtCore(o, rate)
	return res
}

// capacityOf measures a server's service capacity precisely: it finds a
// stable ~70%-utilization operating point and scales the achieved rate by
// the measured core utilization. Unlike overload probing, this estimator
// is insensitive to queueing noise, so it resolves the few-percent
// differences the ablation experiments report (Fig. 12, Tables 4/5).
func capacityOf(run func(rate float64) (loadgen.Result, *sim.Core), start float64) loadgen.Result {
	rate := start
	var out loadgen.Result
	for i := 0; i < 6; i++ {
		res, core := run(rate)
		u := core.Utilization()
		if res.Completed == 0 || u <= 0 {
			rate /= 2
			continue
		}
		if u > 0.80 {
			// Too close to saturation: deep RX queues inflate the buffer
			// working set and distort service times. Back well off.
			rate *= 0.3
			continue
		}
		capRps := res.AchievedRps / u
		out = res
		out.AchievedRps = capRps
		out.AchievedGbps = res.AchievedGbps / u
		if u >= 0.25 {
			break // stable mid-utilization estimate
		}
		rate = 0.5 * capRps
	}
	return out
}

// kvCapacity is capacityOf for a KV configuration.
func kvCapacity(o kvOpts) loadgen.Result {
	return capacityOf(func(rate float64) (loadgen.Result, *sim.Core) {
		return runKVAtCore(o, rate)
	}, 100_000)
}

// maxTput escalates the offered load until the server saturates (achieved
// falls clearly below offered), then refines around the knee, returning the
// highest achieved result — the paper's "highest achieved throughput across
// all offered loads". The knee matters: past saturation the deep RX queue
// inflates the buffer working set and achieved throughput degrades, so the
// peak sits near (not far past) the capacity.
func maxTput(run func(rate float64) loadgen.Result, start float64) loadgen.Result {
	rate := start
	lastGood := start / 2
	var best loadgen.Result
	saturated := false
	for i := 0; i < 9; i++ {
		res := run(rate)
		if res.AchievedRps > best.AchievedRps {
			best = res
		}
		if res.AchievedRps < 0.90*res.SentRps {
			saturated = true
			break
		}
		lastGood = rate
		rate *= 2
	}
	if saturated {
		// Probe between the last underloaded rate and the saturating one.
		for _, r := range loadgen.GeometricRates(lastGood*1.15, rate*0.85, 3) {
			res := run(r)
			if res.AchievedRps > best.AchievedRps {
				best = res
			}
		}
	}
	return best
}

// kvMaxTput measures the highest achieved throughput for one KV config.
func kvMaxTput(o kvOpts) loadgen.Result {
	return maxTput(func(rate float64) loadgen.Result { return runKVAt(o, rate) }, 100_000)
}

// kvSweep runs a ladder of offered loads and returns all points plus the
// best per the 95% rule. Ladder points are independent (fresh testbed
// each), so they fan out across the scale's worker budget.
func kvSweep(o kvOpts, lo, hi float64) ([]loadgen.Result, loadgen.Result) {
	rates := loadgen.GeometricRates(lo, hi, o.Scale.SweepPoints)
	return loadgen.SweepN(rates, o.Scale.workers(), func(rate float64) loadgen.Result {
		return runKVAt(o, rate)
	})
}

// --- Redis runners ---

type redisOpts struct {
	Mode  redis.Mode
	Gen   workloads.Generator
	Scale Scale
	Seed  uint64
}

func runRedisAtCore(o redisOpts, rate float64) (loadgen.Result, *sim.Core) {
	tb := driver.NewTestbed(nic.MellanoxCX6())
	srv := driver.NewRedisServer(tb.Server, o.Mode)
	srv.Preload(o.Gen.Records())
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: o.Gen, Client: driver.NewRedisClient(tb.Client, o.Mode),
		RatePerS: rate,
		Warmup:   sim.Time(o.Scale.WarmupMs) * sim.Millisecond,
		Measure:  sim.Time(o.Scale.MeasureMs) * sim.Millisecond,
		Seed:     o.Seed + 2,
	})
	return res, tb.Server.Core
}

func runRedisAt(o redisOpts, rate float64) loadgen.Result {
	res, _ := runRedisAtCore(o, rate)
	return res
}

// redisCapacity is capacityOf for a Redis configuration.
func redisCapacity(o redisOpts) loadgen.Result {
	return capacityOf(func(rate float64) (loadgen.Result, *sim.Core) {
		return runRedisAtCore(o, rate)
	}, 100_000)
}

func redisMaxTput(o redisOpts) loadgen.Result {
	return maxTput(func(rate float64) loadgen.Result { return runRedisAt(o, rate) }, 100_000)
}

func redisSweep(o redisOpts, lo, hi float64, points int) ([]loadgen.Result, loadgen.Result) {
	rates := loadgen.GeometricRates(lo, hi, points)
	return loadgen.SweepN(rates, o.Scale.workers(), func(rate float64) loadgen.Result {
		return runRedisAt(o, rate)
	})
}

// --- Echo runners ---

type echoOpts struct {
	Mode      driver.EchoMode
	Sys       driver.System
	FieldSize int
	NumFields int
	Scale     Scale
	Seed      uint64
}

func runEchoAtCore(o echoOpts, rate float64) (loadgen.Result, *sim.Core) {
	tb := driver.NewTestbed(nic.MellanoxCX6())
	driver.NewEchoServer(tb.Server, o.Mode, o.Sys, o.FieldSize, o.NumFields)
	client := &driver.EchoClient{Mode: o.Mode, Sys: o.Sys, N: tb.Client, FieldSize: o.FieldSize, NumFields: o.NumFields}
	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: nopGen{}, Client: client,
		RatePerS: rate,
		Warmup:   sim.Time(o.Scale.WarmupMs) * sim.Millisecond,
		Measure:  sim.Time(o.Scale.MeasureMs) * sim.Millisecond,
		Seed:     o.Seed + 3,
	})
	return res, tb.Server.Core
}

func runEchoAt(o echoOpts, rate float64) loadgen.Result {
	res, _ := runEchoAtCore(o, rate)
	return res
}

// echoCapacity is capacityOf for an echo configuration.
func echoCapacity(o echoOpts) loadgen.Result {
	return capacityOf(func(rate float64) (loadgen.Result, *sim.Core) {
		return runEchoAtCore(o, rate)
	}, 200_000)
}

func echoMaxTput(o echoOpts) loadgen.Result {
	return maxTput(func(rate float64) loadgen.Result { return runEchoAt(o, rate) }, 200_000)
}

// nopGen feeds the echo client, which ignores the request shape.
type nopGen struct{}

func (nopGen) Name() string            { return "echo" }
func (nopGen) Records() []workloads.KV { return nil }
func (nopGen) Next(*rand.Rand) workloads.Request {
	return workloads.Request{}
}
