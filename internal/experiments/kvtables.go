package experiments

import (
	"fmt"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/workloads"
)

// googleGen builds the Google-distribution workload at the experiment
// scale. Store sizes are chosen so values are mostly DRAM-resident
// relative to the shrunken L3.
func googleGen(sc Scale, maxVals int, seed uint64) *workloads.Google {
	keys := 4 * sc.StoreKeys
	return workloads.NewGoogle(keys, maxVals, seed)
}

// Tab1 reproduces Table 1: throughput (krps) for the Google bytes-size
// distribution with lists of 1, 1–4, 1–8 and 1–16 values, across the four
// systems. Paper: Cornflakes within ~2% of Protobuf for 1 and 1–4 values,
// ahead of all libraries for 1–8 and 1–16; Cap'n Proto and FlatBuffers
// trail Protobuf.
func Tab1(sc Scale) *Report {
	r := &Report{
		ID:     "tab1",
		Title:  "Google bytes distribution: max throughput (krps) per system",
		Header: []string{"system", "1 val", "1-4 vals", "1-8 vals", "1-16 vals"},
	}
	shapes := []int{1, 4, 8, 16}
	systems := driver.AllSystems()
	// 4 systems × 4 list shapes = 16 independent capacity probes.
	cells := make([]float64, len(systems)*len(shapes))
	forEach(sc.workers(), len(cells), func(i int) {
		sys, mv := systems[i/len(shapes)], shapes[i%len(shapes)]
		res := kvCapacity(kvOpts{
			Sys: sys, Gen: googleGen(sc, mv, 60), SmallCache: true,
			Scale: sc, Seed: 61,
		})
		cells[i] = res.AchievedRps / 1000
	})
	tput := map[driver.System]map[int]float64{}
	for si, sys := range systems {
		tput[sys] = map[int]float64{}
		row := []string{sys.String()}
		for mi, mv := range shapes {
			krps := cells[si*len(shapes)+mi]
			tput[sys][mv] = krps
			row = append(row, f1(krps))
		}
		r.Rows = append(r.Rows, row)
	}
	cf, pb := tput[driver.SysCornflakes], tput[driver.SysProtobuf]
	r.AddCheck("Cornflakes competitive with Protobuf on small-value lists (1, 1-4)",
		cf[1] > 0.90*pb[1] && cf[4] > 0.90*pb[4],
		"1 val: %.1f vs %.1f; 1-4: %.1f vs %.1f krps", cf[1], pb[1], cf[4], pb[4])
	r.AddCheck("Cornflakes leads for longer lists (1-16)",
		cf[16] >= tput[driver.SysProtobuf][16] &&
			cf[16] >= tput[driver.SysFlatBuffers][16] &&
			cf[16] >= tput[driver.SysCapnProto][16],
		"1-16: CF %.1f, PB %.1f, FB %.1f, CP %.1f krps",
		cf[16], pb[16], tput[driver.SysFlatBuffers][16], tput[driver.SysCapnProto][16])
	r.AddCheck("Cap'n Proto trails Protobuf (as in the paper)",
		tput[driver.SysCapnProto][1] < pb[1],
		"1 val: CP %.1f vs PB %.1f", tput[driver.SysCapnProto][1], pb[1])
	r.Notes = append(r.Notes,
		"paper: CF 844.7/727.2/584.5/441.2 vs PB 852.5/741.9/583.8/402.0 krps")
	return r
}

// Fig6 reproduces Figure 6: the throughput/p99 curve for the Google
// distribution with 1–8 values per list. Cornflakes relies on copying here
// and performs as well as Protobuf.
func Fig6(sc Scale) *Report {
	r := &Report{
		ID:     "fig6",
		Title:  "Google 1-8 values: achieved load (krps) vs p99 (us)",
		Header: []string{"system", "offered krps", "achieved krps", "p99 us"},
	}
	systems := driver.AllSystems()
	type sysRes struct {
		points []loadgen.Result
		top    loadgen.Result
	}
	perSys := make([]sysRes, len(systems))
	forEach(sc.workers(), len(systems), func(i int) {
		o := kvOpts{Sys: systems[i], Gen: googleGen(sc, 8, 60), SmallCache: true, Scale: sc, Seed: 62}
		perSys[i].points, perSys[i].top = kvSweep(o, 100_000, 2_500_000)
	})
	best := map[driver.System]float64{}
	for i, sys := range systems {
		for _, p := range perSys[i].points {
			r.Rows = append(r.Rows, []string{
				sys.String(), f1(p.OfferedRps / 1000), f1(p.AchievedRps / 1000),
				f1(p.Latency.Quantile(0.99).Microseconds()),
			})
		}
		best[sys] = perSys[i].top.AchievedRps
	}
	r.AddCheck("Cornflakes performs as well as Protobuf on small values",
		best[driver.SysCornflakes] > 0.90*best[driver.SysProtobuf],
		"best: CF %.0f vs PB %.0f rps", best[driver.SysCornflakes], best[driver.SysProtobuf])
	return r
}

// twitterGen builds the Twitter workload at scale.
func twitterGen(sc Scale, seed uint64) *workloads.Twitter {
	return workloads.NewTwitter(8*sc.StoreKeys, seed)
}

// Fig7 reproduces Figure 7: the Twitter cache trace on the custom KV
// store. Paper: Cornflakes achieves 15.4% higher throughput than Protobuf
// at ~53 µs p99 and beats all other libraries.
func Fig7(sc Scale) *Report {
	r := &Report{
		ID:     "fig7",
		Title:  "Twitter cache trace: throughput vs p99 per system",
		Header: []string{"system", "offered krps", "achieved krps", "p99 us"},
	}
	systems := driver.AllSystems()
	type sysRes struct {
		cap    loadgen.Result
		points []loadgen.Result
	}
	perSys := make([]sysRes, len(systems))
	forEach(sc.workers(), len(systems), func(i int) {
		o := kvOpts{Sys: systems[i], Gen: twitterGen(sc, 70), SmallCache: true, Scale: sc, Seed: 71}
		res := kvCapacity(o)
		// The paper presents this result as a throughput/p99 curve; emit a
		// short sweep up to the measured capacity, then the capacity row.
		points, _ := kvSweep(o, res.AchievedRps/8, res.AchievedRps*0.7)
		perSys[i] = sysRes{cap: res, points: points}
	})
	best := map[driver.System]float64{}
	for i, sys := range systems {
		res := perSys[i].cap
		best[sys] = res.AchievedRps
		for _, p := range perSys[i].points {
			r.Rows = append(r.Rows, []string{
				sys.String(), f1(p.OfferedRps / 1000), f1(p.AchievedRps / 1000),
				f1(p.Latency.Quantile(0.99).Microseconds()),
			})
		}
		r.Rows = append(r.Rows, []string{
			sys.String(), "capacity", f1(res.AchievedRps / 1000),
			f1(res.Latency.Quantile(0.99).Microseconds()),
		})
	}
	cf, pb := best[driver.SysCornflakes], best[driver.SysProtobuf]
	gain := pct(cf, pb)
	r.AddCheck("Cornflakes beats Protobuf on the mixed-size trace",
		cf > pb, "CF %.0f vs PB %.0f rps (%+.1f%%)", cf, pb, gain)
	r.AddCheck("gain is in the paper's ballpark (paper: +15.4%)",
		gain > 5 && gain < 45, "measured %+.1f%%", gain)
	r.AddCheck("Cornflakes beats every library",
		cf > best[driver.SysFlatBuffers] && cf > best[driver.SysCapnProto],
		"CF %.0f, FB %.0f, CP %.0f rps", cf, best[driver.SysFlatBuffers], best[driver.SysCapnProto])
	r.Notes = append(r.Notes, "~32% of requests touch values >= 512B; 8% puts (§6.1.4)")
	return r
}

// Tab2 reproduces Table 2: the CDN image trace, reported in thousands of
// whole objects per second. Paper: Cornflakes is 97–128% ahead of every
// baseline because every field is at least 1 kB.
func Tab2(sc Scale) *Report {
	r := &Report{
		ID:     "tab2",
		Title:  "CDN image trace: max throughput (kobjects/s) per system",
		Header: []string{"system", "kobj/s"},
	}
	systems := driver.AllSystems()
	caps := make([]loadgen.Result, len(systems))
	forEach(sc.workers(), len(systems), func(i int) {
		gen := workloads.NewCDN(sc.StoreKeys, 8000, 256<<10, 80)
		caps[i] = kvCapacity(kvOpts{Sys: systems[i], Gen: gen, SmallCache: true, Scale: sc, Seed: 81})
	})
	best := map[driver.System]float64{}
	for i, sys := range systems {
		best[sys] = caps[i].AchievedRps
		r.Rows = append(r.Rows, []string{sys.String(), f2(caps[i].AchievedRps / 1000)})
	}
	cf := best[driver.SysCornflakes]
	worstGain, bestGain := 1e18, 0.0
	for _, sys := range []driver.System{driver.SysProtobuf, driver.SysFlatBuffers, driver.SysCapnProto} {
		g := pct(cf, best[sys])
		if g < worstGain {
			worstGain = g
		}
		if g > bestGain {
			bestGain = g
		}
	}
	r.AddCheck("Cornflakes roughly doubles every baseline (paper: +97-128%)",
		worstGain > 50, "gains span %+.0f%% to %+.0f%%", worstGain, bestGain)
	r.Notes = append(r.Notes,
		"objects are vectors of jumbo-frame sub-objects; throughput counts whole objects (§6.1.4)",
		fmt.Sprintf("paper: CF 366.5 vs CP 161.0 / FB 181.2 / PB 186.1 kobj/s"))
	return r
}
