// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §5, §6) on the simulated substrate. Each experiment
// returns a Report: the table/series data in the same shape the paper
// presents, plus shape checks asserting the paper's qualitative claims
// (who wins, rough factors, where crossovers fall). cmd/cf-bench prints
// reports; bench_test.go wraps each one in a testing.B benchmark; and the
// integration tests assert the checks pass.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// CSV renders the report's table as RFC-4180-ish CSV (for plotting
// scripts). Cells containing commas or quotes are quoted.
func (r *Report) CSV() string {
	var b strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	row(r.Header)
	for _, cells := range r.Rows {
		row(cells)
	}
	return b.String()
}

// Report is one regenerated table or figure.
type Report struct {
	ID     string // e.g. "fig2", "tab1"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Checks []Check
	// Artifacts holds binary side outputs keyed by suggested filename —
	// e.g. the Chrome trace JSON of a traced run. cf-bench writes them out
	// when given an artifact directory.
	Artifacts map[string][]byte
}

// AddArtifact records a binary side output under a suggested filename.
func (r *Report) AddArtifact(name string, data []byte) {
	if r.Artifacts == nil {
		r.Artifacts = map[string][]byte{}
	}
	r.Artifacts[name] = data
}

// Check is one shape assertion derived from the paper's claims.
type Check struct {
	Name string
	Pass bool
	Got  string
}

// AddCheck records a shape assertion.
func (r *Report) AddCheck(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Got: fmt.Sprintf(format, args...)})
}

// Failed returns the names of failing checks.
func (r *Report) Failed() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, fmt.Sprintf("%s (%s)", c.Name, c.Got))
		}
	}
	return out
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "check [%s] %s: %s\n", status, c.Name, c.Got)
	}
	return b.String()
}

// Fingerprint hashes everything externally observable about the report —
// the rendered table, notes, checks, and every artifact byte — into a
// stable 64-bit FNV-1a digest. The serial-vs-parallel determinism gate
// compares fingerprints, so anything that could differ between runs must
// feed the hash.
func (r *Report) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // terminator so field boundaries can't alias
		h *= prime64
	}
	mix(r.String())
	names := make([]string, 0, len(r.Artifacts))
	for name := range r.Artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mix(name)
		mix(string(r.Artifacts[name]))
	}
	return h
}

// Scale controls experiment size so tests can run quickly while cf-bench
// runs the full versions.
type Scale struct {
	// StoreKeys scales preloaded key counts.
	StoreKeys int
	// MeasureMs is the measurement window per load point, in sim ms.
	MeasureMs int
	// WarmupMs is the warmup window.
	WarmupMs int
	// SweepPoints is the offered-load ladder length for curve experiments.
	SweepPoints int
	// Cores caps Fig 13's core count.
	Cores int
	// Trace asks experiments that support it to attach a per-request trace
	// artifact (Chrome trace-event JSON) to the report.
	Trace bool
	// Batch, when ≥ 1, enables the server's batched RX/TX datapath with
	// this burst cap (KVServer.EnableBatching). 1 is the adaptive floor —
	// batching "on" but serving every request in its own burst, which the
	// determinism gate pins as bit-identical to the unbatched path. 0
	// leaves batching off entirely.
	Batch int
	// Workers is the sweep fan-out width: how many independent sweep points
	// (each a fresh engine + testbed) may run concurrently on host
	// goroutines. 0 or 1 means serial. Results are always merged in point
	// order, so reports are byte-identical at every width — see
	// parallel.go for the isolation contract.
	Workers int
	// Partition runs each multi-node topology point (cluster, chaos, rpc)
	// on a parallel-in-time partitioned engine: every node gets its own
	// event-queue shard, synchronized by link-lookahead barriers, so a
	// single big topology point uses all host cores — orthogonal to
	// Workers, which fans out *across* points. Reports are byte-identical
	// either way (gated in scripts/check.sh); single-node experiments
	// ignore it.
	Partition bool
}

// Full is the default experiment scale.
func Full() Scale {
	return Scale{StoreKeys: 4000, MeasureMs: 20, WarmupMs: 3, SweepPoints: 8, Cores: 8}
}

// Quick is a reduced scale for tests.
func Quick() Scale {
	return Scale{StoreKeys: 400, MeasureMs: 5, WarmupMs: 1, SweepPoints: 4, Cores: 4}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func pct(new, old float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}
