package experiments

import (
	"fmt"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/driver"
	"cornflakes/internal/fabric"
	"cornflakes/internal/faults"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// The chaos experiment: hurt the PR 6 rack on purpose and check the
// system survives with its books balanced. Three scenarios on the 4-node
// sharded cluster:
//
//  1. Kill-one-shard ladder: crash a shard mid-window, restart it cold a
//     quarter-window later. Failover routing must keep aggregate goodput
//     flowing (retries rotate to live replicas instead of re-hitting the
//     corpse) and goodput must re-converge to ≥ 90% of its pre-crash
//     level by the last quarter of the window. A no-failover control at
//     the same load shows what attempt-blind retries cost.
//  2. Flap storm: two server switch ports flap down/up repeatedly while a
//     lossy, corrupting client link runs underneath. Every frame the storm
//     eats must be counted somewhere — downed-port, wire drop, FCS — with
//     the topology-wide conservation ledger exactly balanced.
//  3. Gray-failure triplet: one node serves at 6× cost instead of dying —
//     the failure plain timeouts handle worst, because the node never
//     fails decisively. Timeout-only routing pays deadline-scale effective
//     p99; hedged requests (second copy to a different replica after a
//     short delay, first reply wins) must cut it ≥ 2× at equal offered
//     load, with exact launched/won/wasted hedge accounting.
//
// Everything is seed-replayable: the fault plan's transitions, the hedge
// jitter, and the routing are all drawn from forked sim.Rand streams, so
// the same storm replays bit for bit (pinned by the fingerprint gate and
// an in-experiment same-seed rerun check).

// chaosRetry is the chaos client policy — same deadline ladder the
// cluster experiment uses, so effective-p99 censoring floors match.
func chaosRetry() loadgen.RetryPolicy { return clusterRetry() }

// chaosBuckets slices the measurement window for the goodput-over-time
// trace the recovery check reads.
const chaosBuckets = 16

// chaosNodes/chaosR fix the stage: 4 shards, R-way replication wide
// enough that every key has a live replica when one node dies.
const (
	chaosNodes = 4
	chaosR     = 2
)

// chaosShedQueue arms PR 2's admission control on every chaos server.
// Under a crash, timed-out attempts re-arrive as retries at the surviving
// replicas; without a queue bound the survivors burn their capacity
// serving work whose client already gave up, and the retry storm is
// self-sustaining (a metastable failure — goodput stays at zero after the
// trigger clears). Shedding keeps queue sojourn under the client deadline,
// so served work is fresh and the rack re-converges after recovery. Sized
// to roughly half a deadline of service backlog.
const chaosShedQueue = 512

// chaosCfg parameterizes one chaos point.
type chaosCfg struct {
	sc            Scale
	nKeys         int
	ratePerClient float64
	theta         float64
	R             int
	seed          uint64
	failover      bool
	hedge         loadgen.HedgePolicy
	plan          faults.NodeFaultPlan
	// linkFault, when non-nil, attaches the link-level injector to client
	// 0's uplink (endpoint port ↔ switch-side port), composing wire faults
	// with the fabric topology.
	linkFault *faults.Plan
}

// ChaosPoint is one chaos scenario outcome: a ClusterPoint plus the fault
// layer's books.
type ChaosPoint struct {
	ClusterPoint
	Label string
	// DownDrops sums server-side work killed by the crash (RX-ring and
	// core-queue requests) — distinct from HostDownDrops, the frames that
	// died at the dead host's NIC.
	DownDrops  uint64
	Recoveries uint64
	// Downed counts frames discarded at admin-down switch ports.
	Downed uint64
	Sched  faults.NodeSchedule
	Ledger driver.FrameLedger
	// Injector books for the optional client-0 link fault.
	DupUp, DupDown           uint64
	InjDropped, InjCorrupted uint64
	// Buckets is the clients' summed completions per measurement-window
	// slice (chaosBuckets slices).
	Buckets []uint64
}

// Hedges/HedgeWins/HedgeWasted sum the clients' hedge accounting.
func (p ChaosPoint) Hedges() (launched, won, wasted uint64) {
	for _, r := range p.Results {
		launched += r.Hedges
		won += r.HedgeWins
		wasted += r.HedgeWasted
	}
	return
}

// SilentLoss is the topology-wide frame conservation gap — zero when every
// posted frame is accounted delivered, dropped, FCS-discarded, downed, or
// host-down dropped.
func (p ChaosPoint) SilentLoss() int64 {
	return p.Ledger.SilentLoss(p.DupUp, p.DupDown)
}

// bucketMean averages buckets [lo, hi).
func (p ChaosPoint) bucketMean(lo, hi int) float64 {
	if lo >= hi {
		return 0
	}
	var sum uint64
	for _, v := range p.Buckets[lo:hi] {
		sum += v
	}
	return float64(sum) / float64(hi-lo)
}

// fingerprint extends the cluster fingerprint with the fault books.
func (p ChaosPoint) fingerprint() string {
	h, w, ww := p.Hedges()
	return fmt.Sprintf("%s %s sched=%+v downed=%d downdrops=%d hedges=%d/%d/%d buckets=%v silent=%d",
		p.Label, p.ClusterPoint.fingerprint(), p.Sched, p.Downed, p.DownDrops,
		h, w, ww, p.Buckets, p.SilentLoss())
}

// runChaos executes one chaos point on a fresh 4-node rack.
func runChaos(cc chaosCfg) ChaosPoint {
	gen := workloads.NewYCSBTheta(cc.nKeys, 128, 1, cc.theta)
	rack := driver.NewRack(fabric.Config{})
	if cc.sc.Partition {
		rack = driver.NewRackPartitioned(fabric.Config{})
	}
	c := driver.NewClusterTestbedOn(rack, chaosNodes, chaosNodes, driver.SysCornflakes,
		nic.MellanoxCX6(), cachesim.DefaultConfig())
	for _, srv := range c.Servers {
		srv.ShedQueue = chaosShedQueue
	}
	c.Preload(gen.Records(), cc.R)

	var injUp, injDown *faults.Injector
	if cc.linkFault != nil {
		// Satellite: the link-level adversary attached *inside* the fabric —
		// client 0's endpoint port and the switch-side port of its link.
		injUp, injDown = faults.Apply(*cc.linkFault,
			c.Clients[0].UDP.Port, c.Switch.LinkPort(c.ClientAddrs[0]))
	}
	// Each node's fault transitions arm on that node's own engine — its
	// shard in partitioned mode, the rack engine otherwise (where this is
	// exactly ScheduleNodePlan). Flaps arm on the switch's engine.
	sched := faults.ScheduleNodePlanOn(c.ServerEngines(), c.Eng, cc.plan, c.FaultNodes(), c.Switch)

	cfgs := make([]loadgen.Config, chaosNodes)
	for i := range cfgs {
		cl := c.NewClient(i, driver.SysCornflakes, cc.R)
		cl.Failover = cc.failover
		cfgs[i] = loadgen.Config{
			Eng: c.Clients[i].Eng, Exec: c.Exec, EP: c.Clients[i].UDP,
			Gen: gen, Client: cl,
			RatePerS: cc.ratePerClient,
			Warmup:   sim.Time(cc.sc.WarmupMs) * sim.Millisecond,
			Measure:  sim.Time(cc.sc.MeasureMs) * sim.Millisecond,
			Seed:     cc.seed + uint64(i),
			ClientID: uint64(i + 1),
			Retry:    chaosRetry(),
			Hedge:    cc.hedge,
			Buckets:  chaosBuckets,
			ShedID:   driver.ShedID,
		}
	}
	results := loadgen.RunMany(cfgs)
	// Quiesce: let frames still inside the switch pipeline or on a wire
	// land, so the conservation ledger reads a settled topology. Results
	// are already captured; post-horizon deliveries only count as Late.
	c.Exec.Run()

	p := ChaosPoint{
		ClusterPoint: ClusterPoint{
			Nodes: chaosNodes, Theta: cc.theta, R: cc.R, Results: results,
		},
		Sched:   *sched,
		Buckets: make([]uint64, chaosBuckets),
	}
	for _, srv := range c.Servers {
		p.Handled = append(p.Handled, srv.Handled)
		p.DownDrops += srv.DownDrops
		p.Recoveries += srv.Recoveries
	}
	p.Misrouted = c.Switch.Misrouted()
	ts := c.Switch.TotalStats()
	p.Drops = ts.EgressDrops
	p.Downed = ts.DownedIngress + ts.DownedEgress
	p.Ledger = c.Ledger()
	if injUp != nil {
		p.DupUp = injUp.Stats.Duplicated
		p.DupDown = injDown.Stats.Duplicated
		p.InjDropped = injUp.Stats.Dropped + injUp.Stats.BurstDropped +
			injDown.Stats.Dropped + injDown.Stats.BurstDropped
		p.InjCorrupted = injUp.Stats.Corrupted + injDown.Stats.Corrupted
	}
	for _, r := range results {
		for i, v := range r.BucketCompleted {
			p.Buckets[i] += v
		}
	}
	return p
}

// crashPlan is the kill-one-shard scenario: node 0 dies a quarter into the
// measurement window and restarts cold a quarter-window later.
func crashPlan(sc Scale, seed uint64) faults.NodeFaultPlan {
	w := sim.Time(sc.WarmupMs) * sim.Millisecond
	m := sim.Time(sc.MeasureMs) * sim.Millisecond
	return faults.NodeFaultPlan{
		Seed:    seed,
		Crashes: []faults.NodeCrash{{Node: 0, At: w + m/4, Downtime: m / 4}},
	}
}

// ChaosCrashPoint runs one kill-one-shard ladder point (exported for the
// check.sh smoke test and the driver-level regression tests).
func ChaosCrashPoint(sc Scale, ratePerClient float64, failover bool) ChaosPoint {
	p := runChaos(chaosCfg{
		sc: sc, nKeys: sc.StoreKeys, ratePerClient: ratePerClient,
		theta: clusterBalancedTheta, R: chaosR, seed: 83,
		failover: failover,
		plan:     crashPlan(sc, 83),
	})
	if failover {
		p.Label = "crash"
	} else {
		p.Label = "crash-ctl"
	}
	return p
}

// flapPlan is the flap storm: two server ports flap three down/up cycles
// each, edges jittered so the storms interleave irregularly.
func flapPlan(sc Scale, addrs []byte, seed uint64) faults.NodeFaultPlan {
	w := sim.Time(sc.WarmupMs) * sim.Millisecond
	m := sim.Time(sc.MeasureMs) * sim.Millisecond
	return faults.NodeFaultPlan{
		Seed: seed,
		Flaps: []faults.PortFlap{
			{Addr: addrs[1], At: w + m/8, Down: m / 16, Count: 3, Period: m / 4, Jitter: m / 64},
			{Addr: addrs[2], At: w + m/6, Down: m / 16, Count: 3, Period: m / 4, Jitter: m / 64},
		},
	}
}

// grayPlan degrades node 0 to 6× service cost for the whole run.
func grayPlan(sc Scale, seed uint64) faults.NodeFaultPlan {
	w := sim.Time(sc.WarmupMs) * sim.Millisecond
	return faults.NodeFaultPlan{
		Seed:  seed,
		Grays: []faults.GrayFailure{{Node: 0, At: w, Slowdown: chaosGraySlowdown}},
	}
}

// chaosGraySlowdown is the gray node's service-cost multiplier: at 0.5×
// capacity load spread R=3-wide, 6× cost pushes the gray node ~3× past
// sustainable — saturated enough that everything routed there stalls, but
// alive enough that it never fails a health check.
const chaosGraySlowdown = 6.0

// chaosHedge is the gray-triplet hedge policy: fire the second copy just
// past the healthy tail, jittered so clients do not hedge in phase.
func chaosHedge() loadgen.HedgePolicy {
	return loadgen.HedgePolicy{Delay: 40 * sim.Microsecond, Jitter: 8 * sim.Microsecond}
}

// Chaos runs the three fault scenarios and checks recovery, conservation,
// hedging, and determinism.
func Chaos(sc Scale) *Report {
	r := &Report{
		ID:    "chaos",
		Title: "Cluster chaos: crash/recovery, port flaps, gray failure + hedging",
		Header: []string{"scenario", "R", "offered/client rps", "agg goodput rps",
			"eff p99 µs", "timeout %", "hedge l/w/w", "downed", "downdrops", "silent"},
	}

	// Per-node capacity probe, identical to the cluster experiment's.
	capRes := capacityOf(func(rate float64) (loadgen.Result, *sim.Core) {
		gen := workloads.NewYCSBTheta(sc.StoreKeys, 128, 1, clusterBalancedTheta)
		c := driver.NewClusterTestbed(1, 1, driver.SysCornflakes,
			nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
		c.Preload(gen.Records(), 1)
		res := loadgen.Run(loadgen.Config{
			Eng: c.Eng, EP: c.Clients[0].UDP,
			Gen: gen, Client: c.NewClient(0, driver.SysCornflakes, 1),
			RatePerS: rate,
			Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
			Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
			Seed:     41, ClientID: 1,
		})
		return res, c.Servers[0].N.Core
	}, 100_000)
	capRps := capRes.AchievedRps
	if capRps <= 0 {
		r.AddCheck("capacity: estimator produced a usable operating point", false,
			"capacity estimate %.0f rps", capRps)
		return r
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"per-node capacity estimate %.0f rps; %d nodes, crash ladder 0.45×/0.6×/0.75×",
		capRps, chaosNodes))

	// Scenario points, all independent racks — fan out across workers.
	// 0-2: crash ladder (failover); 3: no-failover control at the middle
	// rate; 4: same-seed rerun of the middle point (determinism); 5: flap
	// storm; 6-8: gray triplet (healthy / timeout-only / hedged).
	ladderFactors := []float64{0.45, 0.6, 0.75}
	pts := make([]ChaosPoint, 9)
	forEach(sc.workers(), len(pts), func(i int) {
		switch {
		case i < 3:
			pts[i] = ChaosCrashPoint(sc, ladderFactors[i]*capRps, true)
		case i == 3:
			pts[i] = ChaosCrashPoint(sc, ladderFactors[1]*capRps, false)
		case i == 4:
			pts[i] = ChaosCrashPoint(sc, ladderFactors[1]*capRps, true)
		case i == 5:
			// Server fabric addresses are deterministic (servers plug in
			// first, addresses 1..n), so the flap plan can name them before
			// the rack exists.
			pts[i] = runChaos(chaosCfg{
				sc: sc, nKeys: sc.StoreKeys, ratePerClient: 0.4 * capRps,
				theta: clusterBalancedTheta, R: chaosR, seed: 97, failover: true,
				plan: flapPlan(sc, []byte{1, 2, 3, 4}, 97),
				linkFault: &faults.Plan{
					Seed: 97,
					AtoB: faults.Dir{Loss: 0.02},
					BtoA: faults.Dir{Corrupt: 0.02},
				},
			})
			pts[i].Label = "flapstorm"
		default:
			gi := i - 6
			cc := chaosCfg{
				sc: sc, nKeys: sc.StoreKeys, ratePerClient: 0.5 * capRps,
				theta: clusterBalancedTheta, R: 3, seed: 109,
			}
			switch gi {
			case 1: // gray, timeout-only
				cc.plan = grayPlan(sc, 109)
			case 2: // gray, failover + hedged
				cc.plan = grayPlan(sc, 109)
				cc.failover = true
				cc.hedge = chaosHedge()
			}
			pts[i] = runChaos(cc)
			pts[i].Label = []string{"healthy", "gray", "gray+hedge"}[gi]
		}
	})
	ladder, control, rerun, flap := pts[0:3], pts[3], pts[4], pts[5]
	healthy, gray, hedged := pts[6], pts[7], pts[8]

	for _, p := range pts {
		rate := 0.0
		if len(p.Results) > 0 {
			rate = p.Results[0].OfferedRps
		}
		h, w, ww := p.Hedges()
		r.Rows = append(r.Rows, []string{
			p.Label, fmt.Sprint(p.R),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.0f", p.AggGoodput()),
			f1(p.EffectiveP99().Seconds() * 1e6),
			f1(100 * p.TimeoutFrac()),
			fmt.Sprintf("%d/%d/%d", h, w, ww),
			fmt.Sprint(p.Downed),
			fmt.Sprint(p.DownDrops + p.Ledger.HostDownDrops),
			fmt.Sprint(p.SilentLoss()),
		})
	}

	// 1. Crash ladder: the crash engaged (frames died at the dead host,
	// the shard restarted exactly once) and goodput re-converged — the
	// last-quarter bucket mean is ≥ 90% of the pre-crash mean.
	recovered, engaged := true, true
	detail := ""
	for _, p := range ladder {
		pre := p.bucketMean(0, chaosBuckets/4)
		post := p.bucketMean(3*chaosBuckets/4, chaosBuckets)
		if post < 0.9*pre || pre == 0 {
			recovered = false
		}
		if p.Ledger.HostDownDrops == 0 || p.Recoveries != 1 || p.Sched.Crashes != 1 {
			engaged = false
		}
		detail += fmt.Sprintf(" [%.0f→%.0f/bucket dead=%d]", pre, post, p.Ledger.HostDownDrops)
	}
	r.AddCheck("crash ladder: shard dies and restarts cold; goodput re-converges ≥ 90% of pre-crash",
		recovered && engaged, "pre→post completions per bucket:%s", detail)

	// 2. Failover: attempt-indexed rerouting beats attempt-blind retries —
	// fewer requests exhaust their ladder against the dead shard.
	var foTO, ctlTO uint64
	for _, res := range ladder[1].Results {
		foTO += res.TimedOut
	}
	for _, res := range control.Results {
		ctlTO += res.TimedOut
	}
	r.AddCheck("failover: timeouts rotate to live replicas (fewer final timeouts than no-failover control)",
		foTO < ctlTO, "failover %d timed out vs control %d at equal load", foTO, ctlTO)

	// 3. Flap storm: the flaps completed symmetrically, downed ports ate
	// frames loudly, and the link injector's losses and corruptions all
	// showed up in the ledger — conservation exact through the storm.
	r.AddCheck("flap storm: downed-port frames counted, injected wire faults ledgered, zero silent loss",
		flap.Downed > 0 && flap.Sched.FlapsDown == 6 && flap.Sched.FlapsUp == 6 &&
			flap.InjDropped > 0 && flap.InjCorrupted > 0 && flap.Ledger.DownFCS > 0 &&
			flap.SilentLoss() == 0,
		"downed=%d flaps=%d/%d injector dropped=%d corrupted=%d downFCS=%d silent=%d",
		flap.Downed, flap.Sched.FlapsDown, flap.Sched.FlapsUp,
		flap.InjDropped, flap.InjCorrupted, flap.Ledger.DownFCS, flap.SilentLoss())

	// 4. Gray failure engages: the degraded node drags the recovery
	// machinery in — attempts expire and retry (or get shed by the
	// saturated node's admission control) — and inflates the
	// censoring-robust tail well past healthy. It never times out
	// decisively: that is what makes gray failure the hard case.
	engagedOps := func(p ChaosPoint) uint64 {
		var n uint64
		for _, res := range p.Results {
			n += res.Retries + res.Shed + res.TimedOut
		}
		return n
	}
	r.AddCheck("gray failure: 6× degraded node inflates effective p99 ≥ 2× healthy",
		engagedOps(gray) > engagedOps(healthy) &&
			gray.EffectiveP99() >= 2*healthy.EffectiveP99() &&
			healthy.EffectiveP99() > 0,
		"effective p99 %v gray vs %v healthy; retries+sheds+timeouts %d vs %d",
		gray.EffectiveP99(), healthy.EffectiveP99(),
		engagedOps(gray), engagedOps(healthy))

	// 5. Hedging rescues the gray tail: ≥ 2× effective-p99 cut at equal
	// offered load, goodput no worse, and the hedge books exact.
	hl, hw, hww := hedged.Hedges()
	r.AddCheck("hedging: cuts gray effective p99 ≥ 2× vs timeout-only at equal load, books exact",
		2*hedged.EffectiveP99() <= gray.EffectiveP99() &&
			hedged.AggGoodput() >= gray.AggGoodput() &&
			hl > 0 && hw > 0 && hw <= hl,
		"effective p99 %v → %v; goodput %.0f → %.0f rps; hedges launched=%d won=%d wasted=%d",
		gray.EffectiveP99(), hedged.EffectiveP99(),
		gray.AggGoodput(), hedged.AggGoodput(), hl, hw, hww)

	// 6. Conservation: every scenario's frame ledger balances exactly —
	// posted == delivered + dropped + FCS + downed + host-down, topology
	// wide — and nothing was misrouted.
	var silent int64
	var mis uint64
	for _, p := range pts {
		silent += p.SilentLoss()
		mis += p.Misrouted
	}
	r.AddCheck("conservation: zero frames silently lost across every fault scenario",
		silent == 0 && mis == 0, "total gap %d frames, %d misrouted over %d points",
		silent, mis, len(pts))

	// 7. Accounting: every client disposes exactly under every fault —
	// sent == completed + shed + timed-out + unresolved, hedges included.
	exact := true
	for _, p := range pts {
		if !p.accountingExact() {
			exact = false
		}
	}
	r.AddCheck("accounting: disposal exact for every client under every fault scenario",
		exact, "checked %d points × %d clients", len(pts), chaosNodes)

	// 8. Determinism: the same seed replays the same storm byte for byte.
	r.AddCheck("determinism: same-seed crash point replays byte-identical",
		ladder[1].fingerprint() == rerun.fingerprint(),
		"fingerprints match: %v", ladder[1].fingerprint() == rerun.fingerprint())

	return r
}
