package experiments

import (
	"fmt"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/sim"
	"cornflakes/internal/trace"
	"cornflakes/internal/workloads"
)

// The overload experiment: not a paper figure, but the robustness story
// behind one. The paper's throughput curves stop at the knee; this sweep
// pushes offered load to 2.5× the measured capacity and asserts the server
// degrades by policy rather than by accident. The degradation ladder under
// test, in the order it engages:
//
//  1. pressure-aware copy fallback — past Ctx.HighWater occupancy the
//     serializer demotes would-be zero-copy fields to copies, so responses
//     stop pinning store memory that overload would hold hostage;
//  2. admission control — past KVServer.ShedQueue / ShedWater the server
//     answers with an explicit ShedReply instead of queueing;
//  3. the bounded allocator — the hard cap TryAlloc enforces; the sweep
//     asserts peak occupancy never reaches past it;
//  4. client timeouts and retries — the loadgen's RetryPolicy disposes of
//     every request explicitly (completed / shed / timed out), never hangs.

// overloadHeadroom is the pinned-slot budget the server gets beyond its
// preloaded store: the working set for RX frames, queued requests and
// in-flight TX buffers. The fallback and shed thresholds below are set as
// fractions of this headroom so the ladder engages in order: copy fallback
// at 35%, queue shedding at 60% of the headroom expressed as queue depth,
// and occupancy shedding at 85% as a backstop before the hard cap.
const overloadHeadroom = 192

// overloadRetry is the client-side policy for the sweep: one virtual-time
// deadline per attempt, two retries with capped exponential backoff.
var overloadRetry = loadgen.RetryPolicy{
	Deadline:   500 * sim.Microsecond,
	MaxRetries: 2,
	Backoff:    100 * sim.Microsecond,
	MaxBackoff: 400 * sim.Microsecond,
}

// overloadOpts is the KV configuration under test: Cornflakes over UDP with
// 1 KiB values — comfortably above the zero-copy threshold, so the copy
// fallback is a real demotion, not a no-op.
func overloadOpts(sc Scale) kvOpts {
	return kvOpts{
		Sys:   driver.SysCornflakes,
		Gen:   workloads.NewYCSB(sc.StoreKeys, 1024, 1),
		Scale: sc,
		Seed:  7,
	}
}

// OverloadPoint is one sweep point's outcome, exposing the server-side
// gauges alongside the loadgen result.
type OverloadPoint struct {
	Res loadgen.Result
	// BaseSlots is pinned occupancy right after preload; CapSlots the hard
	// cap (base + headroom); PeakSlots the high-water mark over the run;
	// FinalSlots occupancy after drain (== BaseSlots iff nothing leaked).
	BaseSlots, CapSlots, PeakSlots, FinalSlots int64
	// Fallbacks counts fields the serializer demoted to copy encoding under
	// pressure; Shed counts admission-control rejections (server-side, so
	// warmup traffic is included); AllocFailures counts TryAlloc refusals.
	Fallbacks, Shed, ShedReplyErrs, AllocFailures uint64
}

// newOverloadTestbed builds a fresh capped KV testbed with the
// graceful-degradation thresholds derived from its post-preload baseline —
// the shared setup of the overload sweep and the traced overload run. It
// returns the baseline occupancy and the hard cap alongside the testbed.
func newOverloadTestbed(o kvOpts) (tb *driver.Testbed, srv *driver.KVServer,
	client *driver.KVClient, base, capSlots int64) {
	tb, srv, client = newKVTestbed(o)
	base = tb.Server.Alloc.Stats().SlotsInUse
	capSlots = base + overloadHeadroom
	tb.Server.Alloc.SetCap(capSlots)
	tb.Server.Ctx.HighWater = float64(base+overloadHeadroom*35/100) / float64(capSlots)
	srv.ShedQueue = overloadHeadroom * 60 / 100
	srv.ShedWater = float64(base+overloadHeadroom*85/100) / float64(capSlots)
	return tb, srv, client, base, capSlots
}

// OverloadAt runs one offered-load point of the overload sweep: a fresh
// capped server, thresholds derived from its post-preload baseline, and a
// retrying client that classifies shed replies.
func OverloadAt(sc Scale, rate float64) OverloadPoint {
	o := overloadOpts(sc)
	tb, srv, client, base, capSlots := newOverloadTestbed(o)

	res := loadgen.Run(loadgen.Config{
		Eng: tb.Eng, EP: tb.Client.UDP,
		Gen: o.Gen, Client: client,
		RatePerS: rate,
		Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
		Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
		Seed:     o.Seed + 1,
		Retry:    overloadRetry,
		ShedID:   driver.ShedID,
	})
	// Run the engine dry past the loadgen's own drain: the server queue
	// finishes whatever it had admitted (deep-overload jobs carry large
	// metered backlogs) and every buffer returns to the pool.
	tb.Eng.Run()

	st := tb.Server.Alloc.Stats()
	return OverloadPoint{
		Res:       res,
		BaseSlots: base, CapSlots: capSlots,
		PeakSlots: st.PeakSlotsInUse, FinalSlots: st.SlotsInUse,
		Fallbacks: tb.Server.Ctx.Fallbacks,
		Shed:      srv.Shed, ShedReplyErrs: srv.ShedReplyErrs,
		AllocFailures: st.AllocFailures,
	}
}

// Overload sweeps offered load from well under to 2.5× the measured
// capacity and checks the graceful-degradation contract at every point.
func Overload(sc Scale) *Report {
	r := &Report{
		ID:    "overload",
		Title: "Graceful degradation under overload (bounded pool, copy fallback, shedding, retries)",
		Header: []string{"offered rps", "goodput rps", "p99 µs", "shed %", "timeout %",
			"fallbacks", "peak slots", "cap slots"},
	}
	o := overloadOpts(sc)
	capRps := kvCapacity(o).AchievedRps
	if capRps <= 0 {
		r.AddCheck("capacity: estimator produced a usable operating point", false,
			"capacity estimate %.0f rps", capRps)
		return r
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("capacity estimate %.0f rps; sweep 0.3×–2.5×; headroom %d slots over the preloaded base",
			capRps, overloadHeadroom),
		fmt.Sprintf("client retry policy: deadline %v, %d retries, backoff %v capped at %v",
			overloadRetry.Deadline, overloadRetry.MaxRetries, overloadRetry.Backoff, overloadRetry.MaxBackoff))

	rates := loadgen.GeometricRates(0.3*capRps, 2.5*capRps, sc.SweepPoints)
	// Each ladder point is a fresh testbed; fan them out in rate order.
	points := make([]OverloadPoint, len(rates))
	forEach(sc.workers(), len(rates), func(i int) {
		points[i] = OverloadAt(sc, rates[i])
	})

	shedRate := func(p OverloadPoint) float64 {
		if p.Res.Sent == 0 {
			return 0
		}
		return float64(p.Res.Shed) / float64(p.Res.Sent)
	}
	timeoutRate := func(p OverloadPoint) float64 {
		if p.Res.Sent == 0 {
			return 0
		}
		return float64(p.Res.TimedOut) / float64(p.Res.Sent)
	}
	for _, p := range points {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", p.Res.OfferedRps),
			fmt.Sprintf("%.0f", p.Res.AchievedRps),
			f1(p.Res.P99().Seconds() * 1e6),
			f1(shedRate(p) * 100),
			f1(timeoutRate(p) * 100),
			fmt.Sprint(p.Fallbacks),
			fmt.Sprint(p.PeakSlots),
			fmt.Sprint(p.CapSlots),
		})
	}

	// 1. The hard bound held: peak pinned occupancy never exceeded the cap.
	bounded := true
	var worstPeak, capSlots int64
	for _, p := range points {
		capSlots = p.CapSlots
		if p.PeakSlots > worstPeak {
			worstPeak = p.PeakSlots
		}
		if p.PeakSlots > p.CapSlots {
			bounded = false
		}
	}
	r.AddCheck("bounded: peak pinned slots stayed within the cap at every point",
		bounded, "worst peak %d of cap %d", worstPeak, capSlots)

	// 2. Exact disposal: every measured request ended explicitly.
	accounted := true
	for _, p := range points {
		res := p.Res
		if res.Sent != res.Completed+res.Shed+res.TimedOut || res.Unresolved != 0 {
			accounted = false
			r.Notes = append(r.Notes, fmt.Sprintf(
				"unaccounted at %.0f rps: sent=%d completed=%d shed=%d timedout=%d unresolved=%d",
				res.OfferedRps, res.Sent, res.Completed, res.Shed, res.TimedOut, res.Unresolved))
		}
	}
	r.AddCheck("accounting: sent == completed + shed + timed-out at every point, none unresolved",
		accounted, "%d points", len(points))

	// 3. No leaks: after drain the pool is back to its preloaded baseline.
	drained := true
	for _, p := range points {
		if p.FinalSlots != p.BaseSlots {
			drained = false
			r.Notes = append(r.Notes, fmt.Sprintf(
				"leak at %.0f rps: %d slots above the %d baseline after drain",
				p.Res.OfferedRps, p.FinalSlots-p.BaseSlots, p.BaseSlots))
		}
	}
	r.AddCheck("safety: pinned occupancy drained back to the preloaded baseline",
		drained, "%d points", len(points))

	// 4. Shedding ramps with load instead of oscillating: the shed rate is
	// monotone non-decreasing along the ladder (small tolerance for the
	// Poisson noise of short measurement windows).
	monotone := true
	for i := 1; i < len(points); i++ {
		if shedRate(points[i]) < shedRate(points[i-1])-0.02 {
			monotone = false
		}
	}
	r.AddCheck("degradation: shed rate is monotone non-decreasing in offered load",
		monotone, "%.1f%% → %.1f%%", shedRate(points[0])*100, shedRate(points[len(points)-1])*100)

	// 5. The ladder actually engaged: every point past capacity demoted
	// fields to copies and shed load, and at the first point past the knee
	// (before per-packet RX cost alone saturates the core — receive
	// livelock, which no single-core admission control can beat) the server
	// still delivered real goodput alongside the shedding.
	engaged, servedPastKnee := true, false
	first := true
	for _, p := range points {
		if p.Res.OfferedRps <= capRps {
			continue
		}
		if p.Fallbacks == 0 || shedRate(p) == 0 {
			engaged = false
		}
		if first && p.Res.Completed > 0 {
			servedPastKnee = true
		}
		first = false
	}
	top := points[len(points)-1]
	r.AddCheck("degradation: every past-capacity point engaged copy fallback and shedding",
		engaged, "top point: fallbacks=%d shed=%.1f%% timeout=%.1f%%",
		top.Fallbacks, shedRate(top)*100, timeoutRate(top)*100)
	r.AddCheck("degradation: goodput continued at the first past-capacity point",
		servedPastKnee, "capacity %.0f rps", capRps)

	// On request (Scale.Trace / cf-bench -trace), re-run the deepest
	// overload point with the tracing layer attached and ship the export as
	// a report artifact — the per-request view of the shed/retry ladder the
	// table above aggregates away.
	if sc.Trace {
		tr := TracedOverloadRun(sc, rates[len(rates)-1], trace.Config{
			SampleEvery: traceSampleEvery, SlowestK: traceSlowestK,
		})
		r.AddArtifact("overload-trace.json", tr.JSON)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"trace artifact overload-trace.json: %d retained flows at %.0f rps",
			len(tr.Tracer.Retained()), tr.Res.OfferedRps))
	}

	return r
}
