package experiments

import (
	"math/rand/v2"

	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// wholeObjGen converts the CDN workload into whole-object list requests
// (one exchange per object) for the segmented stack.
type wholeObjGen struct{ inner *workloads.CDN }

func (g wholeObjGen) Name() string            { return "cdn-whole-object" }
func (g wholeObjGen) Records() []workloads.KV { return g.inner.Records() }
func (g wholeObjGen) Next(r *rand.Rand) workloads.Request {
	q := g.inner.Next(r)
	return workloads.Request{Op: workloads.OpGetList, Keys: q.Keys}
}

// ExtSegment evaluates the §3.2.3 segmentation extension on the CDN trace:
// the paper's prototype fetches large objects as one request per
// jumbo-frame sub-object (Table 2's methodology); with segmentation the
// whole object ships in a single exchange, amortizing per-request fixed
// costs and round trips.
func ExtSegment(sc Scale) *Report {
	r := &Report{
		ID:     "ext-segment",
		Title:  "Extension (§3.2.3): per-sub-object requests vs segmented whole objects (CDN)",
		Header: []string{"transfer mode", "kobj/s", "p99 us"},
	}
	cdn := workloads.NewCDN(sc.StoreKeys, 8000, 256<<10, 180)

	// Arm A: the paper's methodology — one request per sub-object.
	// Arm B: whole objects over the segmentation layer. The two arms are
	// independent, so they run concurrently under the worker budget.
	var perSeg, whole loadgen.Result
	measureA := func() loadgen.Result {
		return kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: cdn, SmallCache: true, Scale: sc, Seed: 181,
		})
	}
	measureB := func() loadgen.Result {
		return capacityOf(func(rate float64) (loadgen.Result, *sim.Core) {
			tb := driver.NewTestbedCfg(nic.MellanoxCX6(), expCacheConfig())
			srv := driver.NewSegmentedKVServer(tb.Server, driver.SysCornflakes)
			srv.Preload(cdn.Records())
			clientSeg := netstack.NewSegmenter(tb.Client.UDP)
			res := loadgen.Run(loadgen.Config{
				Eng: tb.Eng, EP: clientSeg,
				Gen:      wholeObjGen{cdn},
				Client:   driver.NewKVClient(tb.Client, driver.SysCornflakes),
				RatePerS: rate,
				Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
				Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
				Seed:     182,
			})
			return res, tb.Server.Core
		}, 30_000)
	}
	forEach(sc.workers(), 2, func(i int) {
		if i == 0 {
			perSeg = measureA()
		} else {
			whole = measureB()
		}
	})
	r.Rows = append(r.Rows, []string{
		"per-sub-object (paper)", f2(perSeg.AchievedRps / 1000),
		f1(perSeg.Latency.Quantile(0.99).Microseconds()),
	})
	r.Rows = append(r.Rows, []string{
		"segmented whole object", f2(whole.AchievedRps / 1000),
		f1(whole.Latency.Quantile(0.99).Microseconds()),
	})

	r.AddCheck("segmentation increases whole-object throughput",
		whole.AchievedRps > perSeg.AchievedRps,
		"%.1f vs %.1f kobj/s (%+.0f%%)",
		whole.AchievedRps/1000, perSeg.AchievedRps/1000, pct(whole.AchievedRps, perSeg.AchievedRps))
	r.AddCheck("segmentation cuts whole-object latency (fewer round trips)",
		whole.Latency.Quantile(0.99) < perSeg.Latency.Quantile(0.99),
		"p99 %.1f vs %.1f us",
		whole.Latency.Quantile(0.99).Microseconds(), perSeg.Latency.Quantile(0.99).Microseconds())
	r.Notes = append(r.Notes,
		"per-sub-object: k sequential request/response exchanges per object (§6.1.4)",
		"segmented: one request; the response fragments, zero-copy fields sliced at frame boundaries")
	return r
}
