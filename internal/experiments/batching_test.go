package experiments

import (
	"os"
	"strings"
	"testing"

	"cornflakes/internal/trace"
)

// TestBatchingSmoke is the CI smoke point: the smallest cell of the
// batching grid — lowest rate, widest burst — run end to end. It stays in
// -short runs (scripts/check.sh) so the batched datapath is always
// exercised even when the full sweep is skipped.
func TestBatchingSmoke(t *testing.T) {
	t.Parallel()
	sc := Quick()
	p := BatchingAt(sc, 16, 40_000)
	if p.Res.Completed == 0 || p.Res.BadResponses != 0 {
		t.Fatalf("completed=%d bad=%d", p.Res.Completed, p.Res.BadResponses)
	}
	if p.Batches == 0 || p.BatchedReqs < p.Res.Completed {
		t.Errorf("batch stats: batches=%d batchedReqs=%d completed=%d",
			p.Batches, p.BatchedReqs, p.Res.Completed)
	}
	if p.TxDoorbells == 0 || p.TxDoorbells > p.TxFrames {
		t.Errorf("doorbells=%d frames=%d: want 0 < doorbells ≤ frames",
			p.TxDoorbells, p.TxFrames)
	}
}

// TestBatchingGoldenAtB1 is the determinism gate for the degenerate burst
// cap: with Batch=1 the batched configuration must route through the
// legacy datapath untouched, so the golden trace run reproduces the
// checked-in unbatched export byte for byte. If this fails, burst cap 1
// stopped being a no-op and every unbatched calibration is suspect.
func TestBatchingGoldenAtB1(t *testing.T) {
	t.Parallel()
	sc := Scale{StoreKeys: 200, MeasureMs: 1, WarmupMs: 1, SweepPoints: 2, Cores: 1, Batch: 1}
	got := TracedOverloadRun(sc, 60_000, trace.Config{SampleEvery: 4, SlowestK: 3}).JSON
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("read golden file: %v (regenerate with: UPDATE_GOLDEN=1 go test ./internal/experiments -run TestTraceGoldenExport)", err)
	}
	if string(got) != string(want) {
		t.Errorf("Batch=1 trace export diverged from the unbatched golden %s (got %d bytes, want %d): burst cap 1 must be bit-identical to the unbatched datapath",
			goldenTracePath, len(got), len(want))
	}
}

// TestBatchedTraceProperties re-runs the tracer's exactness contracts with
// the batched datapath enabled and sampling off. This pins the satellite-3
// wait-accounting fix at the observability layer: batching moves dispatch
// into one drainer job per burst, and the per-request span timelines must
// still tile to each flow's latency to the picosecond, with the receipt
// aggregate matching the server's accumulator float for float.
func TestBatchedTraceProperties(t *testing.T) {
	t.Parallel()
	sc := Quick()
	sc.Batch = 8
	run := TracedOverloadRun(sc, 150_000, trace.Config{SampleEvery: 1, SlowestK: 8})
	res := run.Res
	retained := run.Tracer.Retained()

	if got, want := uint64(len(retained)), res.Sent; got != want {
		t.Errorf("retained %d flows, loadgen sent %d measured requests", got, want)
	}
	var completed, shed, timedOut, abandoned uint64
	batchedBursts := 0
	for _, f := range retained {
		if msg := tileError(f); msg != "" {
			t.Errorf("req %d: %s", f.Seq, msg)
		}
		switch f.Outcome {
		case trace.OutcomeCompleted:
			completed++
		case trace.OutcomeShed:
			shed++
		case trace.OutcomeTimedOut:
			timedOut++
		default:
			abandoned++
		}
		for _, n := range f.Notes {
			if strings.HasPrefix(n, "batched:") {
				batchedBursts++
			}
		}
	}
	if completed != res.Completed || shed != res.Shed || timedOut != res.TimedOut || abandoned != res.Unresolved {
		t.Errorf("outcomes completed=%d shed=%d timedout=%d abandoned=%d; loadgen %d/%d/%d/%d",
			completed, shed, timedOut, abandoned,
			res.Completed, res.Shed, res.TimedOut, res.Unresolved)
	}
	if batchedBursts == 0 {
		t.Error("no retained flow carries a batch-assembly note; batching did not engage under overload")
	}

	agg, n := run.Tracer.Aggregate()
	if agg != run.RunReceipt || n != run.RunReceipts {
		t.Errorf("tracer aggregate (%d receipts, %.0f cycles) != OnReceipt accumulator (%d, %.0f)",
			n, agg.Total(), run.RunReceipts, run.RunReceipt.Total())
	}
}
