package experiments

import (
	"strings"
	"testing"
)

// Each experiment runs at Quick scale and must (a) produce a table and
// (b) pass every shape check derived from the paper's claims. These are
// the end-to-end reproduction tests: if a code change breaks a paper
// result — the 512-byte crossover, the hybrid win, the serialize-and-send
// gain — one of these fails.

func runExperiment(t *testing.T, id string) *Report {
	t.Helper()
	fn, ok := All()[id]
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	rep := fn(Quick())
	if rep.ID != id {
		t.Errorf("report id = %q, want %q", rep.ID, id)
	}
	if len(rep.Rows) == 0 {
		t.Error("report has no rows")
	}
	if len(rep.Checks) == 0 {
		t.Error("report has no shape checks")
	}
	for _, f := range rep.Failed() {
		t.Errorf("shape check failed: %s", f)
	}
	if !strings.Contains(rep.String(), rep.Title) {
		t.Error("String() missing title")
	}
	return rep
}

func TestFig2(t *testing.T)  { t.Parallel(); runExperiment(t, "fig2") }
func TestFig3(t *testing.T)  { t.Parallel(); runExperiment(t, "fig3") }
func TestFig5(t *testing.T)  { t.Parallel(); runExperiment(t, "fig5") }
func TestFig6(t *testing.T)  { t.Parallel(); runExperiment(t, "fig6") }
func TestFig7(t *testing.T)  { t.Parallel(); runExperiment(t, "fig7") }
func TestFig8(t *testing.T)  { t.Parallel(); runExperiment(t, "fig8") }
func TestFig9(t *testing.T)  { t.Parallel(); runExperiment(t, "fig9") }
func TestFig10(t *testing.T) { t.Parallel(); runExperiment(t, "fig10") }
func TestFig11(t *testing.T) { t.Parallel(); runExperiment(t, "fig11") }
func TestFig12(t *testing.T) { t.Parallel(); runExperiment(t, "fig12") }
func TestFig13(t *testing.T) { t.Parallel(); runExperiment(t, "fig13") }
func TestTab1(t *testing.T)  { t.Parallel(); runExperiment(t, "tab1") }
func TestTab2(t *testing.T)  { t.Parallel(); runExperiment(t, "tab2") }
func TestTab3(t *testing.T)  { t.Parallel(); runExperiment(t, "tab3") }
func TestTab4(t *testing.T)  { t.Parallel(); runExperiment(t, "tab4") }
func TestTab5(t *testing.T)  { t.Parallel(); runExperiment(t, "tab5") }

func TestTrace(t *testing.T) { t.Parallel(); runExperiment(t, "trace") }

func TestBatching(t *testing.T) { t.Parallel(); runExperiment(t, "batching") }

func TestRpc(t *testing.T) { t.Parallel(); runExperiment(t, "rpc") }

func TestExtAdaptive(t *testing.T)  { t.Parallel(); runExperiment(t, "ext-adaptive") }
func TestExtArena(t *testing.T)     { t.Parallel(); runExperiment(t, "ext-arena") }
func TestExtSegment(t *testing.T)   { t.Parallel(); runExperiment(t, "ext-segment") }
func TestExtMulticore(t *testing.T) { t.Parallel(); runExperiment(t, "ext-multicore") }

func TestAllRegistryComplete(t *testing.T) {
	t.Parallel()
	all := All()
	want := []string{"fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "tab1", "tab2", "tab3", "tab4", "tab5",
		"ext-adaptive", "ext-arena", "ext-segment", "ext-multicore", "soak", "overload",
		"trace", "batching", "cluster", "chaos", "rpc"}
	if len(all) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(all), len(want))
	}
	for _, id := range want {
		if all[id] == nil {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestReportHelpers(t *testing.T) {
	t.Parallel()
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.Rows = append(r.Rows, []string{"1", "2"})
	r.AddCheck("good", true, "fine")
	r.AddCheck("bad", false, "broken %d", 7)
	failed := r.Failed()
	if len(failed) != 1 || !strings.Contains(failed[0], "bad") || !strings.Contains(failed[0], "broken 7") {
		t.Errorf("Failed() = %v", failed)
	}
	out := r.String()
	for _, want := range []string{"PASS", "FAIL", "broken 7", "== x: t =="} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q", want)
		}
	}
	if pct(110, 100) != 10.0 {
		t.Error("pct wrong")
	}
	if pct(1, 0) != 0 {
		t.Error("pct div-by-zero not guarded")
	}
}

func TestScales(t *testing.T) {
	t.Parallel()
	full, quick := Full(), Quick()
	if full.StoreKeys <= quick.StoreKeys || full.MeasureMs <= quick.MeasureMs {
		t.Error("Full scale should exceed Quick scale")
	}
}

func TestReportCSV(t *testing.T) {
	t.Parallel()
	r := &Report{ID: "x", Header: []string{"a", "b"}}
	r.Rows = append(r.Rows, []string{"1", "two, with comma"}, []string{`quo"te`, "3"})
	got := r.CSV()
	want := "a,b\n1,\"two, with comma\"\n\"quo\"\"te\",3\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
