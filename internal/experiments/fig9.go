package experiments

import (
	"cornflakes/internal/driver"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

// Fig9 reproduces Figure 9: echo latency percentiles over the TCP stack
// for raw packet echo, FlatBuffers, and Cornflakes, at a fixed moderate
// load. Paper: Cornflakes sits 18–27.8 µs below FlatBuffers at the tail
// while adding only 4.9–10.8 µs over a raw packet echo.
func Fig9(sc Scale) *Report {
	r := &Report{
		ID:     "fig9",
		Title:  "TCP echo latency percentiles (two 2048B fields)",
		Header: []string{"system", "p5", "p25", "p50", "p75", "p99 (us)"},
	}
	run := func(mode driver.TCPEchoMode) (*loadgen.Histogram, float64) {
		tb := driver.NewTCPTestbed(nic.MellanoxCX6())
		driver.NewTCPEchoServer(tb.Server, mode)
		var client loadgen.Client
		switch mode {
		case driver.TCPEchoRaw:
			client = &driver.EchoClient{Mode: driver.EchoNoSer, N: tb.Client, FieldSize: 2048, NumFields: 2}
		case driver.TCPEchoFlatBuffers:
			client = &driver.EchoClient{Mode: driver.EchoLib, Sys: driver.SysFlatBuffers, N: tb.Client, FieldSize: 2048, NumFields: 2}
		default:
			client = &driver.EchoClient{Mode: driver.EchoLib, Sys: driver.SysCornflakes, N: tb.Client, FieldSize: 2048, NumFields: 2}
		}
		res := loadgen.Run(loadgen.Config{
			Eng: tb.Eng, EP: tb.Client.TCP,
			Gen: nopGen{}, Client: client,
			// Fixed moderate load: the figure reports latency, not
			// saturation ("we encountered an issue sending at high packet
			// rates", §6.2.3 fn.9).
			RatePerS: 40_000,
			Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
			Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
			Seed:     100,
		})
		perReq := float64(tb.Server.Core.BusyTime) / float64(tb.Server.Core.JobsDone)
		return res.Latency, perReq
	}
	modes := []driver.TCPEchoMode{driver.TCPEchoRaw, driver.TCPEchoFlatBuffers, driver.TCPEchoCornflakes}
	type modeRes struct {
		h      *loadgen.Histogram
		perReq float64
	}
	perMode := make([]modeRes, len(modes))
	forEach(sc.workers(), len(modes), func(i int) {
		perMode[i].h, perMode[i].perReq = run(modes[i])
	})
	hists := map[driver.TCPEchoMode]*loadgen.Histogram{}
	service := map[driver.TCPEchoMode]float64{}
	for i, mode := range modes {
		h := perMode[i].h
		hists[mode] = h
		service[mode] = perMode[i].perReq
		r.Rows = append(r.Rows, []string{
			mode.String(),
			f1(h.Quantile(0.05).Microseconds()),
			f1(h.Quantile(0.25).Microseconds()),
			f1(h.Quantile(0.50).Microseconds()),
			f1(h.Quantile(0.75).Microseconds()),
			f1(h.Quantile(0.99).Microseconds()),
		})
	}
	cf99 := hists[driver.TCPEchoCornflakes].Quantile(0.99).Microseconds()
	fb99 := hists[driver.TCPEchoFlatBuffers].Quantile(0.99).Microseconds()
	raw99 := hists[driver.TCPEchoRaw].Quantile(0.99).Microseconds()
	r.AddCheck("Cornflakes tail below FlatBuffers over TCP",
		cf99 < fb99, "p99: CF %.1f vs FB %.1f us", cf99, fb99)
	r.AddCheck("Cornflakes adds modest overhead over raw packet echo",
		cf99 >= raw99 && cf99-raw99 < 40,
		"p99: CF %.1f vs raw %.1f us (+%.1f)", cf99, raw99, cf99-raw99)
	r.AddCheck("server cycles per echo: Cornflakes below FlatBuffers",
		service[driver.TCPEchoCornflakes] < service[driver.TCPEchoFlatBuffers],
		"service: raw %.0f, CF %.0f, FB %.0f ps/req",
		service[driver.TCPEchoRaw], service[driver.TCPEchoCornflakes], service[driver.TCPEchoFlatBuffers])
	return r
}
