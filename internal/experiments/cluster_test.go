package experiments

import "testing"

// TestClusterSmoke is the CI smoke point: one small rack — 2 shards, 2
// clients, a light balanced load — end to end through the switch. It
// stays in -short runs (scripts/check.sh) so the fabric datapath is
// always exercised even when the full grid is skipped.
func TestClusterSmoke(t *testing.T) {
	t.Parallel()
	sc := Quick()
	p := ClusterAt(sc, 2, sc.StoreKeys, 100_000, clusterBalancedTheta, 1, 5)
	var done, bad uint64
	for _, res := range p.Results {
		done += res.Completed
		bad += res.BadResponses
	}
	if done == 0 || bad != 0 {
		t.Fatalf("completed=%d bad=%d", done, bad)
	}
	if p.Misrouted != 0 {
		t.Errorf("switch misrouted %d frames", p.Misrouted)
	}
	if !p.accountingExact() {
		t.Error("per-client accounting does not add up")
	}
	for s, h := range p.Handled {
		if h == 0 {
			t.Errorf("shard %d handled nothing; ring routing is degenerate", s)
		}
	}
}

// TestCluster runs the full experiment at test scale and requires every
// check — scaling, hot-shard tail, read-spread relief, routing,
// accounting — to pass.
func TestCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("full node-count × load grid; skipped in -short")
	}
	t.Parallel()
	r := Cluster(Quick())
	for _, f := range r.Failed() {
		t.Errorf("check failed: %s", f)
	}
	if len(r.Rows) == 0 {
		t.Error("report has no rows")
	}
}
