package experiments

import (
	"sort"
	"testing"
)

// TestSerialPartitionedFingerprints is the determinism gate for the
// parallel-in-time engine: running the multi-node experiments with every
// node on its own event-queue shard (Scale.Partition) must produce reports
// byte-identical to the serial engine's — same tables, same check
// evidence, same artifacts. The partitioned engine's total event order
// (at, schedAt, src, seq) is exactly the serial (at, seq) order, so
// anything but identity is a synchronization bug. scripts/check.sh runs
// this test explicitly (including under -race).
func TestSerialPartitionedFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("run pair per experiment; skipped in -short")
	}
	// The experiments that build multi-node racks — the only ones the
	// Partition knob reaches.
	ids := []string{"cluster", "chaos", "rpc"}
	sort.Strings(ids)
	tiny := Scale{StoreKeys: 200, MeasureMs: 2, WarmupMs: 1, SweepPoints: 2, Cores: 4}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fn := All()[id]
			if fn == nil {
				t.Fatalf("experiment %q not registered", id)
			}
			part := tiny
			part.Partition = true

			repS := fn(tiny)
			repP := fn(part)
			if fpS, fpP := repS.Fingerprint(), repP.Fingerprint(); fpS != fpP {
				t.Errorf("%s: serial fingerprint %016x != partitioned %016x", id, fpS, fpP)
				if s, p := repS.String(), repP.String(); s != p {
					t.Logf("serial report:\n%s\npartitioned report:\n%s", s, p)
				}
				for name, data := range repS.Artifacts {
					if string(repP.Artifacts[name]) != string(data) {
						t.Errorf("%s: artifact %s differs between serial and partitioned", id, name)
					}
				}
			}
		})
	}
}

// TestPartitionComposesWithWorkers pins the two parallelism axes as
// orthogonal: sweep-point fan-out (Workers) across partitioned points
// still reproduces the serial fingerprint.
func TestPartitionComposesWithWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("three cluster sweeps; skipped in -short")
	}
	tiny := Scale{StoreKeys: 200, MeasureMs: 2, WarmupMs: 1, SweepPoints: 2, Cores: 4}
	both := tiny
	both.Partition = true
	both.Workers = 4

	ref := Cluster(tiny).Fingerprint()
	got := Cluster(both).Fingerprint()
	if ref != got {
		t.Errorf("cluster: serial fingerprint %016x != partitioned+workers %016x", ref, got)
	}
}
