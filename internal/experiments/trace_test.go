package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cornflakes/internal/trace"
)

// goldenTraceRun is a tiny, fully deterministic traced overload run: fixed
// scale, fixed rate (not derived from a capacity estimate), fixed sampling.
// Everything downstream — event order, timestamps, gauge samples — is a
// pure function of this configuration, so its export can be pinned byte
// for byte.
func goldenTraceRun() TracedRun {
	sc := Scale{StoreKeys: 200, MeasureMs: 1, WarmupMs: 1, SweepPoints: 2, Cores: 1}
	return TracedOverloadRun(sc, 60_000, trace.Config{SampleEvery: 4, SlowestK: 3})
}

const goldenTracePath = "testdata/trace_golden.json"

// The Chrome trace export must be byte-stable: same run, same bytes. This
// pins the writer's determinism (no map iteration, integer-only timestamp
// math) and the whole traced pipeline's reproducibility at once.
func TestTraceGoldenExport(t *testing.T) {
	t.Parallel()
	got := goldenTraceRun().JSON
	if !json.Valid(got) {
		t.Fatal("export is not valid JSON")
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenTracePath, len(got))
		return
	}
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("read golden file: %v (regenerate with: UPDATE_GOLDEN=1 go test ./internal/experiments -run TestTraceGoldenExport)", err)
	}
	if string(got) != string(want) {
		t.Errorf("trace export diverged from %s (got %d bytes, want %d); if the change is intentional, regenerate with:\n"+
			"  UPDATE_GOLDEN=1 go test ./internal/experiments -run TestTraceGoldenExport",
			goldenTracePath, len(got), len(want))
	}
	// Repeat the run: determinism must hold within a process too, not just
	// against the checked-in file.
	again := goldenTraceRun().JSON
	if string(got) != string(again) {
		t.Error("two identical runs exported different bytes")
	}
}

// With sampling off (retain everything) the tracer must agree with the
// loadgen's own accounting flow for flow: every measured request retained,
// outcomes matching the run counters, every timeline tiling exactly to its
// latency, and the slowest completed flow matching the histogram's maximum.
func TestTraceProperties(t *testing.T) {
	t.Parallel()
	run := TracedOverloadRun(Quick(), 150_000, trace.Config{SampleEvery: 1, SlowestK: 8})
	res := run.Res
	retained := run.Tracer.Retained()

	if got, want := uint64(len(retained)), res.Sent; got != want {
		t.Errorf("retained %d flows, loadgen sent %d measured requests", got, want)
	}

	var completed, shed, timedOut, abandoned uint64
	for _, f := range retained {
		if msg := tileError(f); msg != "" {
			t.Errorf("req %d: %s", f.Seq, msg)
		}
		switch f.Outcome {
		case trace.OutcomeCompleted:
			completed++
		case trace.OutcomeShed:
			shed++
		case trace.OutcomeTimedOut:
			timedOut++
		default:
			abandoned++
		}
	}
	if completed != res.Completed || shed != res.Shed || timedOut != res.TimedOut || abandoned != res.Unresolved {
		t.Errorf("outcomes completed=%d shed=%d timedout=%d abandoned=%d; loadgen %d/%d/%d/%d",
			completed, shed, timedOut, abandoned,
			res.Completed, res.Shed, res.TimedOut, res.Unresolved)
	}

	// The loadgen records a completed flow's latency at the same instant the
	// tracer ends the flow, so the slowest completed timeline must equal the
	// histogram's exact observed maximum — the "within one bucket" criterion
	// holds with zero slack.
	var maxCompleted int64
	for _, f := range retained {
		if f.Outcome == trace.OutcomeCompleted && int64(f.Dur()) > maxCompleted {
			maxCompleted = int64(f.Dur())
		}
	}
	if maxCompleted != int64(res.Latency.Max()) {
		t.Errorf("slowest completed timeline %d ps, histogram max %d ps",
			maxCompleted, int64(res.Latency.Max()))
	}
	if res.Latency.Count() != res.Completed {
		t.Errorf("histogram holds %d samples, %d requests completed", res.Latency.Count(), res.Completed)
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		if q := res.Latency.Quantile(p); q > res.Latency.Max() {
			t.Errorf("Quantile(%v) = %v exceeds Max %v", p, q, res.Latency.Max())
		}
	}

	agg, n := run.Tracer.Aggregate()
	if agg != run.RunReceipt || n != run.RunReceipts {
		t.Errorf("tracer aggregate (%d receipts, %.0f cycles) != OnReceipt accumulator (%d, %.0f)",
			n, agg.Total(), run.RunReceipts, run.RunReceipt.Total())
	}
}
