package experiments

import "fmt"

// Fig3 reproduces Figure 3: highest achieved throughput when querying a
// 2048-byte payload assembled from 32 down to 1 non-contiguous buffers,
// comparing copying, scatter-gather with software overheads, and raw
// scatter-gather. Paper: raw SG strictly beats copy even at 64-byte
// buffers, but with software overheads SG only wins at 512 bytes and up.
func Fig3(sc Scale) *Report {
	r := &Report{
		ID:     "fig3",
		Title:  "2048B payload from k non-contiguous buffers: max Gbps per approach",
		Header: []string{"buffers", "buf bytes", "copy", "sg+overheads", "raw sg"},
	}
	const total = 2048
	workingSet := 5 * (2 << 20) // 5x the modelled L3 (§2.4)
	counts := []int{32, 16, 8, 4, 2, 1}
	type point struct{ copy, sg, raw float64 }
	// Each (count, mode) cell is an independent adaptive probe; fan the
	// flattened grid out and fold back in count order.
	cells := make([]float64, 3*len(counts))
	forEach(sc.workers(), len(cells), func(i int) {
		k := counts[i/3]
		seg := total / k
		switch i % 3 {
		case 0:
			cells[i] = microMaxGbps(microCopy, 1, seg, k, workingSet, sc, 30)
		case 1:
			cells[i] = microMaxGbps(microSGSafe, 1, seg, k, workingSet, sc, 31)
		default:
			cells[i] = microMaxGbps(microSGRaw, 1, seg, k, workingSet, sc, 32)
		}
	})
	points := map[int]point{}
	for ki, k := range counts {
		seg := total / k
		p := point{copy: cells[3*ki], sg: cells[3*ki+1], raw: cells[3*ki+2]}
		points[k] = p
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", k), fmt.Sprintf("%d", seg),
			f1(p.copy), f1(p.sg), f1(p.raw),
		})
	}
	rawAlways := true
	for _, k := range counts {
		if points[k].raw <= points[k].copy {
			rawAlways = false
		}
	}
	r.AddCheck("raw scatter-gather strictly beats copy at every buffer size",
		rawAlways, "raw vs copy at k=32 (64B bufs): %.1f vs %.1f", points[32].raw, points[32].copy)
	r.AddCheck("with software overheads, SG wins for 512B+ buffers",
		points[4].sg > points[4].copy && points[2].sg > points[2].copy && points[1].sg > points[1].copy,
		"512B: %.1f vs %.1f; 1024B: %.1f vs %.1f; 2048B: %.1f vs %.1f",
		points[4].sg, points[4].copy, points[2].sg, points[2].copy, points[1].sg, points[1].copy)
	r.AddCheck("with software overheads, copy wins for small buffers",
		points[32].copy > points[32].sg && points[16].copy > points[16].sg,
		"64B: copy %.1f vs sg %.1f; 128B: copy %.1f vs sg %.1f",
		points[32].copy, points[32].sg, points[16].copy, points[16].sg)
	r.Notes = append(r.Notes,
		"working set 5x L3; server array of non-contiguous pinned buffers (§2.4)")
	return r
}
