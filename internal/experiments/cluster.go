package experiments

import (
	"fmt"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/driver"
	"cornflakes/internal/fabric"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/workloads"
)

// The cluster experiment: scale the single-server testbed out to a rack —
// n sharded KV servers and n clients behind one simulated ToR switch —
// and check that the composition holds up:
//
//  1. aggregate goodput scales with the node count at a fixed per-node
//     load (n=4 delivers ≥ 3× the n=1 goodput);
//  2. a Zipf-skewed workload concentrates load on the hot shard and
//     inflates its clients' tail latency relative to a balanced mix;
//  3. R=2 read spreading relieves the hot shard — lower worst-client p99
//     than the same skewed workload routed owner-only;
//  4. the switch misroutes nothing, and every client's accounting is
//     exact (sent = completed + shed + timed out + unresolved);
//  5. the whole grid is deterministic — serial and parallel sweeps
//     produce byte-identical reports (pinned by the fingerprint gate).
//
// Clients route by the same consistent-hash ring that placed the keys, so
// placement and routing cannot disagree; per-client wire-id spaces and
// retry-jitter sub-streams keep concurrent generators from aliasing.

// clusterNodeLadder returns the node-count ladder, capped by Scale.Cores:
// {1,2,4} at the test scale, {1,2,4,8} at full scale.
func clusterNodeLadder(sc Scale) []int {
	ladder := []int{1, 2, 4}
	if sc.Cores >= 8 {
		ladder = append(ladder, 8)
	}
	return ladder
}

// clusterRetry is the experiment's client retry policy: a deadline a few
// switch round-trips past the saturated-queue regime, with capped
// exponential backoff. Each client jitters from its own sub-stream.
func clusterRetry() loadgen.RetryPolicy {
	return loadgen.RetryPolicy{
		Deadline:   300 * sim.Microsecond,
		MaxRetries: 2,
		Backoff:    30 * sim.Microsecond,
		MaxBackoff: 240 * sim.Microsecond,
	}
}

// ClusterPoint is one (nodes, keyspace, per-client rate, theta, R) outcome.
type ClusterPoint struct {
	Nodes int
	Theta float64
	R     int
	// Results holds each client's loadgen result, in client order.
	Results []loadgen.Result
	// Handled[i] is shard i's handled-request count — the per-shard load
	// split the skew checks read.
	Handled   []uint64
	Misrouted uint64
	Drops     uint64
}

// AggGoodput sums the clients' achieved rates.
func (p ClusterPoint) AggGoodput() float64 {
	var agg float64
	for _, r := range p.Results {
		agg += r.AchievedRps
	}
	return agg
}

// AggOffered sums the clients' offered rates.
func (p ClusterPoint) AggOffered() float64 {
	var agg float64
	for _, r := range p.Results {
		agg += r.OfferedRps
	}
	return agg
}

// WorstP99 returns the worst per-client p99 over completed requests — the
// tail a skewed shard inflicts on the clients unlucky enough to hit it.
func (p ClusterPoint) WorstP99() sim.Time {
	var worst sim.Time
	for _, r := range p.Results {
		if v := r.P99(); v > worst {
			worst = v
		}
	}
	return worst
}

// TimeoutFrac returns timed-out measured requests over all sent.
func (p ClusterPoint) TimeoutFrac() float64 {
	var sent, to uint64
	for _, r := range p.Results {
		sent += r.Sent
		to += r.TimedOut
	}
	if sent == 0 {
		return 0
	}
	return float64(to) / float64(sent)
}

// EffectiveP99 is the censoring-robust tail: the completed-request p99 is
// survivor-biased once requests start timing out (the slow ones never
// complete, so the completed p99 can even shrink under overload). A timed
// out attempt is a latency of at least the retry deadline, so once more
// than 1% of requests time out the true p99 is at least that deadline.
func (p ClusterPoint) EffectiveP99() sim.Time {
	if d := clusterRetry().Deadline; p.TimeoutFrac() > 0.01 && d > p.WorstP99() {
		return d
	}
	return p.WorstP99()
}

// HotShare returns the hottest shard's fraction of all handled requests.
func (p ClusterPoint) HotShare() float64 {
	var total, hot uint64
	for _, h := range p.Handled {
		total += h
		if h > hot {
			hot = h
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hot) / float64(total)
}

// accountingExact reports whether every client's counters add up.
func (p ClusterPoint) accountingExact() bool {
	return disposalExact(p.Results...)
}

// ClusterAt runs one cluster point: nodes servers and nodes clients behind
// the switch, each client offering ratePerClient against a theta-skewed
// YCSB keyspace of nKeys keys, routed with R-way read spreading.
func ClusterAt(sc Scale, nodes, nKeys int, ratePerClient, theta float64, R int, seed uint64) ClusterPoint {
	gen := workloads.NewYCSBTheta(nKeys, 128, 1, theta)
	rack := driver.NewRack(fabric.Config{})
	if sc.Partition {
		rack = driver.NewRackPartitioned(fabric.Config{})
	}
	c := driver.NewClusterTestbedOn(rack, nodes, nodes, driver.SysCornflakes,
		nic.MellanoxCX6(), cachesim.DefaultConfig())
	c.Preload(gen.Records(), R)

	cfgs := make([]loadgen.Config, nodes)
	for i := range cfgs {
		cfgs[i] = loadgen.Config{
			// Each client schedules on its own node's engine (its shard in
			// partitioned mode; the rack engine otherwise) and the run is
			// driven through the rack's Exec.
			Eng: c.Clients[i].Eng, Exec: c.Exec, EP: c.Clients[i].UDP,
			Gen: gen, Client: c.NewClient(i, driver.SysCornflakes, R),
			RatePerS: ratePerClient,
			Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
			Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
			Seed:     seed + uint64(i),
			ClientID: uint64(i + 1),
			Retry:    clusterRetry(),
			ShedID:   driver.ShedID,
		}
	}
	p := ClusterPoint{
		Nodes: nodes, Theta: theta, R: R,
		Results: loadgen.RunMany(cfgs),
	}
	for _, srv := range c.Servers {
		p.Handled = append(p.Handled, srv.Handled)
	}
	p.Misrouted = c.Switch.Misrouted()
	p.Drops = c.Switch.TotalStats().EgressDrops
	return p
}

// fingerprint summarizes a point for the determinism gate.
func (p ClusterPoint) fingerprint() string {
	s := fmt.Sprintf("n=%d theta=%.2f R=%d mis=%d drops=%d handled=%v",
		p.Nodes, p.Theta, p.R, p.Misrouted, p.Drops, p.Handled)
	for _, r := range p.Results {
		s += fmt.Sprintf(" [sent=%d done=%d shed=%d to=%d retr=%d p50=%d p99=%d]",
			r.Sent, r.Completed, r.Shed, r.TimedOut, r.Retries, r.P50(), r.P99())
	}
	return s
}

// clusterBalancedTheta is the near-uniform key skew for the scaling grid
// and the balanced control; clusterSkewTheta is the hot-shard workload.
const (
	clusterBalancedTheta = 0.3
	clusterSkewTheta     = 0.99
)

// The hot-shard triplet runs on a fixed stage — 4 nodes, a 400-key hot
// working set — at every scale. Hotspots are a property of the workload,
// not the store size: growing the keyspace with Scale would dilute the
// per-shard concentration the check is about.
const (
	clusterHotNodes = 4
	clusterHotKeys  = 400
)

// clusterHotFactor positions the triplet's per-client load: at 0.65× the
// per-node capacity the balanced split keeps every shard under its
// sustainable rate, while the Zipf-skewed split pushes the hottest shard
// past it — the regime where routing, not raw capacity, decides the tail.
const clusterHotFactor = 0.65

// Cluster sweeps node count × per-node load across the rack and checks
// scaling, hot-shard tails, read-spread relief, routing, and accounting.
func Cluster(sc Scale) *Report {
	r := &Report{
		ID:    "cluster",
		Title: "Cluster scale-out: sharded KV over a ToR switch",
		Header: []string{"nodes", "theta", "R", "offered/client rps", "agg goodput rps",
			"hot share", "eff p99 µs", "timeout %", "misrouted"},
	}

	// Per-node capacity probe: a 1-server, 1-client rack. The switch adds
	// two port hops and its latency, but capacity stays core-bound, so the
	// estimate transfers to every grid cell.
	capRes := capacityOf(func(rate float64) (loadgen.Result, *sim.Core) {
		gen := workloads.NewYCSBTheta(sc.StoreKeys, 128, 1, clusterBalancedTheta)
		c := driver.NewClusterTestbed(1, 1, driver.SysCornflakes,
			nic.MellanoxCX6(), cachesim.DefaultConfig(), fabric.Config{})
		c.Preload(gen.Records(), 1)
		res := loadgen.Run(loadgen.Config{
			Eng: c.Eng, EP: c.Clients[0].UDP,
			Gen: gen, Client: c.NewClient(0, driver.SysCornflakes, 1),
			RatePerS: rate,
			Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
			Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
			Seed:     41, ClientID: 1,
		})
		return res, c.Servers[0].N.Core
	}, 100_000)
	capRps := capRes.AchievedRps
	if capRps <= 0 {
		r.AddCheck("capacity: estimator produced a usable operating point", false,
			"capacity estimate %.0f rps", capRps)
		return r
	}

	ladder := clusterNodeLadder(sc)
	rates := loadgen.GeometricRates(0.3*capRps, 1.1*capRps, sc.SweepPoints)
	midRate := rates[(len(rates)-1)/2]
	r.Notes = append(r.Notes, fmt.Sprintf(
		"per-node capacity estimate %.0f rps; per-client load ladder 0.3×–1.1×; nodes %v",
		capRps, ladder))

	// The scaling grid: every (nodes, rate) cell is an independent rack on
	// a fresh engine, so the grid fans out across workers.
	grid := make([]ClusterPoint, len(ladder)*len(rates))
	forEach(sc.workers(), len(grid), func(i int) {
		ni, ri := i/len(rates), i%len(rates)
		grid[i] = ClusterAt(sc, ladder[ni], sc.StoreKeys, rates[ri], clusterBalancedTheta, 1, 61)
	})

	// The hot-shard triplet: a balanced control, the same load Zipf-skewed
	// onto the hot shard, and the skewed load again with R=3 read
	// spreading (R=2 leaves too much of the hot keys' traffic in place —
	// the owner keeps half, and ring geometry routes some of the other hot
	// keys' spread traffic right back into the hot shard).
	hotRate := clusterHotFactor * capRps
	hot := make([]ClusterPoint, 3)
	forEach(sc.workers(), len(hot), func(i int) {
		switch i {
		case 0:
			hot[i] = ClusterAt(sc, clusterHotNodes, clusterHotKeys, hotRate, clusterBalancedTheta, 1, 71)
		case 1:
			hot[i] = ClusterAt(sc, clusterHotNodes, clusterHotKeys, hotRate, clusterSkewTheta, 1, 71)
		case 2:
			hot[i] = ClusterAt(sc, clusterHotNodes, clusterHotKeys, hotRate, clusterSkewTheta, 3, 71)
		}
	})
	balanced, skewed, spread := hot[0], hot[1], hot[2]

	row := func(p ClusterPoint, ratePerClient float64) {
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(p.Nodes), f2(p.Theta), fmt.Sprint(p.R),
			fmt.Sprintf("%.0f", ratePerClient),
			fmt.Sprintf("%.0f", p.AggGoodput()),
			f2(p.HotShare()),
			f1(p.EffectiveP99().Seconds() * 1e6),
			f1(100 * p.TimeoutFrac()),
			fmt.Sprint(p.Misrouted),
		})
	}
	for i, p := range grid {
		row(p, rates[i%len(rates)])
	}
	for _, p := range hot {
		row(p, hotRate)
	}

	at := func(nodes int, ri int) ClusterPoint {
		for ni, n := range ladder {
			if n == nodes {
				return grid[ni*len(rates)+ri]
			}
		}
		return ClusterPoint{}
	}
	midIdx := (len(rates) - 1) / 2

	// 1. Scaling: at the fixed mid-ladder per-node load, 4 nodes deliver
	// ≥ 3× the single node's aggregate goodput.
	one, four := at(1, midIdx), at(4, midIdx)
	r.AddCheck("scaling: n=4 aggregate goodput ≥ 3× n=1 at fixed per-node load",
		one.AggGoodput() > 0 && four.AggGoodput() >= 3*one.AggGoodput(),
		"n=1: %.0f rps, n=4: %.0f rps (%.2f×) at %.0f rps/client",
		one.AggGoodput(), four.AggGoodput(),
		four.AggGoodput()/one.AggGoodput(), midRate)

	// 2. Hot shard: the same load that the balanced split absorbs cleanly
	// melts the hottest shard once Zipf-skewed — the timeout path engages
	// and the censoring-robust tail inflates well past the control's.
	r.AddCheck("hot shard: Zipf skew engages timeouts and inflates the effective p99 ≥ 2×",
		skewed.HotShare() > balanced.HotShare() &&
			skewed.TimeoutFrac() >= 0.05 && balanced.TimeoutFrac() < 0.01 &&
			skewed.EffectiveP99() >= 2*balanced.EffectiveP99(),
		"hot share %.2f vs %.2f balanced; timeouts %.1f%% vs %.1f%%; effective p99 %v vs %v",
		skewed.HotShare(), balanced.HotShare(),
		100*skewed.TimeoutFrac(), 100*balanced.TimeoutFrac(),
		skewed.EffectiveP99(), balanced.EffectiveP99())

	// 3. Relief: rotating reads across 3 replicas takes the hot shard back
	// under its sustainable rate — timeouts stop, goodput recovers, and
	// the tail comes back down.
	r.AddCheck("read spread: R=3 recovers goodput and halves the skewed effective p99",
		spread.TimeoutFrac() < 0.01 &&
			spread.AggGoodput() >= 1.2*skewed.AggGoodput() &&
			2*spread.EffectiveP99() <= skewed.EffectiveP99(),
		"timeouts %.1f%% → %.1f%%; goodput %.0f → %.0f rps; effective p99 %v → %v",
		100*skewed.TimeoutFrac(), 100*spread.TimeoutFrac(),
		skewed.AggGoodput(), spread.AggGoodput(),
		skewed.EffectiveP99(), spread.EffectiveP99())

	// 4. Routing: nothing misrouted anywhere on the grid, and the switch
	// kept up (no egress drops at these loads).
	var mis, drops uint64
	for _, p := range grid {
		mis += p.Misrouted
		drops += p.Drops
	}
	for _, p := range hot {
		mis += p.Misrouted
		drops += p.Drops
	}
	r.AddCheck("routing: zero misrouted frames across the whole grid",
		mis == 0, "%d misrouted, %d egress drops", mis, drops)

	// 5. Accounting: every client at every point resolves exactly.
	exact := true
	for _, p := range append(append([]ClusterPoint{}, grid...), hot...) {
		if !p.accountingExact() {
			exact = false
		}
	}
	addAccountingCheck(r, "grid + hot-shard points × per-node clients", exact, len(grid)+len(hot))

	return r
}
