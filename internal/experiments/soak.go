package experiments

import (
	"fmt"

	"cornflakes/internal/driver"
	"cornflakes/internal/faults"
	"cornflakes/internal/mem"
	"cornflakes/internal/msgs"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
	"cornflakes/internal/workloads"
)

// The fault-injection soak: the paper's core safety claim is that
// zero-copy buffers stay alive across "transmission (and potential
// re-transmission)" (§3). This harness makes that claim empirical rather
// than reviewed-by-eye: it drives the echo and KV workloads over TCP-lite
// links wrapped in seeded faults.Plan adversaries (loss up to 30% per
// direction, bursts, reordering, duplication, jitter, corruption) and
// asserts three invariants after drain:
//
//  1. liveness — every request eventually completes (no stall);
//  2. integrity — every received payload byte-matches what was sent;
//  3. safety — every mem.Buf refcount returns to its baseline (no
//     use-after-free, no pinned-memory leak).

// SoakScenarios is the size of the seeded scenario sweep; the acceptance
// bar for the retransmission fixes is all of them passing.
const SoakScenarios = 100

// soakMessages is the closed-loop request count per scenario and
// soakWindow the number kept in flight (deep enough to exercise go-back-N
// with several segments outstanding).
const (
	soakMessages = 24
	soakWindow   = 4
	// soakDeadline caps one scenario's virtual time; a scenario that has
	// not quiesced by then is declared stalled. Fault-free traffic
	// finishes in well under a millisecond, so this is ~3 orders of
	// magnitude of headroom.
	soakDeadline = 500 * sim.Millisecond
)

// soakPlan derives scenario i's fault plan from its seed: every knob is a
// fresh draw, so the sweep covers light jitter-only links through bursty
// corrupting ones at 30% loss, and scenario i is replayable in isolation.
func soakPlan(seed uint64) faults.Plan {
	rng := sim.NewRand(seed)
	dir := func(r *sim.Rand) faults.Dir {
		return faults.Dir{
			Loss:         0.30 * r.Float64(),
			BurstLoss:    0.03 * r.Float64(),
			BurstLen:     1 + 3*r.Float64(),
			Reorder:      0.20 * r.Float64(),
			ReorderDelay: 20 * sim.Microsecond,
			Duplicate:    0.10 * r.Float64(),
			Jitter:       r.Duration(5 * sim.Microsecond),
			Corrupt:      0.10 * r.Float64(),
		}
	}
	return faults.Plan{Seed: seed, AtoB: dir(rng.Fork(2)), BtoA: dir(rng.Fork(3))}
}

// SoakResult is one scenario's outcome.
type SoakResult struct {
	Workload   string
	Seed       uint64
	Completed  int
	Total      int
	Mismatches int
	Stalled    bool
	// LeakedClient/LeakedServer are pinned slots still held beyond the
	// pre-traffic baseline after drain.
	LeakedClient int64
	LeakedServer int64

	Retransmits uint64 // both directions
	WireDrops   uint64
	FCSDrops    uint64
	DupAcks     uint64

	// Conserved reports the NIC frame-conservation law holding in both
	// directions after drain: frames posted plus injector-duplicated
	// copies equal frames delivered intact plus wire drops plus
	// FCS-discarded arrivals. This pins the post-time/delivered counter
	// split — a goodput computed from TxFrames would silently count lost
	// frames; conservation proves the delivered counters account for
	// every posted frame and every extra copy exactly once.
	Conserved bool

	// PeakClient/PeakServer are the pinned-slot high-water marks over the
	// scenario, bounded by CapClient/CapServer (baseline + soakCapHeadroom):
	// retransmission buffering under faults must stay within a fixed
	// budget, not merely drain eventually.
	PeakClient, PeakServer int64
	CapClient, CapServer   int64
}

// OK reports whether all five invariants held.
func (r SoakResult) OK() bool {
	return !r.Stalled && r.Mismatches == 0 && r.LeakedClient == 0 && r.LeakedServer == 0 &&
		r.PeakClient <= r.CapClient && r.PeakServer <= r.CapServer && r.Conserved
}

func (r SoakResult) String() string {
	return fmt.Sprintf("%s seed=%d done=%d/%d mismatch=%d stalled=%v leak=%d/%d rtx=%d drops=%d fcs=%d conserved=%v",
		r.Workload, r.Seed, r.Completed, r.Total, r.Mismatches, r.Stalled,
		r.LeakedClient, r.LeakedServer, r.Retransmits, r.WireDrops, r.FCSDrops, r.Conserved)
}

// soakCapHeadroom is the pinned-slot budget each node gets over its
// pre-traffic baseline. It is generous for the tiny closed-loop window —
// the bound must never perturb the scenario — so the assertion it backs is
// that fault-driven retransmission buffering stays within a fixed budget.
const soakCapHeadroom = 512

// soakBound caps both allocators at baseline + headroom; called once the
// baselines are measured, before traffic starts.
func soakBound(res *SoakResult, tb *driver.Testbed, clientBase, serverBase int64) {
	res.CapClient = clientBase + soakCapHeadroom
	res.CapServer = serverBase + soakCapHeadroom
	tb.Client.Alloc.SetCap(res.CapClient)
	tb.Server.Alloc.SetCap(res.CapServer)
}

// soakFinish drains the scenario and fills in the invariant fields shared
// by both workloads. ab/ba are the injectors faults.Apply installed on the
// client and server ports, for the frame-conservation accounting.
func soakFinish(res *SoakResult, tb *driver.Testbed, clientBase, serverBase int64,
	ab, ba *faults.Injector) {
	tb.Eng.RunUntil(soakDeadline)
	res.PeakClient = tb.Client.Alloc.Stats().PeakSlotsInUse
	res.PeakServer = tb.Server.Alloc.Stats().PeakSlotsInUse
	quiesced := res.Completed == res.Total &&
		tb.Client.TCP.Unacked() == 0 && tb.Server.TCP.Unacked() == 0
	res.Stalled = !quiesced
	res.LeakedClient = tb.Client.Alloc.Stats().SlotsInUse - clientBase
	res.LeakedServer = tb.Server.Alloc.Stats().SlotsInUse - serverBase
	cp, sp := tb.Client.TCP.Port, tb.Server.TCP.Port
	res.Retransmits = tb.Client.TCP.Retransmits + tb.Server.TCP.Retransmits
	res.WireDrops = cp.DroppedFrames + sp.DroppedFrames
	res.FCSDrops = cp.RxFCSErrors + sp.RxFCSErrors
	res.DupAcks = tb.Client.TCP.DupAcks + tb.Server.TCP.DupAcks
	// Frame conservation, per direction: every posted frame and every
	// injector-duplicated copy ends up exactly one of delivered intact,
	// dropped on the wire, or discarded by the receiver's FCS check.
	res.Conserved =
		cp.TxFrames+ab.Stats.Duplicated == cp.DeliveredFrames+cp.DroppedFrames+sp.RxFCSErrors &&
			sp.TxFrames+ba.Stats.Duplicated == sp.DeliveredFrames+sp.DroppedFrames+cp.RxFCSErrors
}

// SoakEcho runs one echo scenario: raw TCP echo of rng-patterned payloads,
// verified byte-for-byte against a recomputation on receipt.
func SoakEcho(seed uint64) SoakResult {
	res := SoakResult{Workload: "echo", Seed: seed, Total: soakMessages}
	tb := driver.NewTCPTestbed(nic.MellanoxCX6())
	driver.NewTCPEchoServer(tb.Server, driver.TCPEchoRaw)
	ab, ba := faults.Apply(soakPlan(seed), tb.Client.TCP.Port, tb.Server.TCP.Port)

	clientBase := tb.Client.Alloc.Stats().SlotsInUse
	serverBase := tb.Server.Alloc.Stats().SlotsInUse
	soakBound(&res, tb, clientBase, serverBase)

	// Payload for request id: 8-byte id then an id-seeded pattern, so the
	// expected bytes are recomputable at verification time without keeping
	// the sent copy around (the application frees immediately after send).
	payload := func(id uint64) []byte {
		prng := sim.NewRand(seed).Fork(1000 + id)
		b := make([]byte, 8+64+prng.Intn(2048))
		wire.PutU64(b, id)
		for i := 8; i < len(b); i++ {
			b[i] = byte(prng.Uint64())
		}
		return b
	}

	var sent uint64
	sendNext := func() {
		if sent >= uint64(res.Total) {
			return
		}
		p := payload(sent)
		sent++
		tb.Client.TCP.SendContiguous(p, mem.UnpinnedSimAddr(p))
	}
	tb.Client.TCP.SetRecvHandler(func(p *mem.Buf) {
		defer p.DecRef()
		if p.Len() < 8 {
			res.Mismatches++
			return
		}
		id := wire.GetU64(p.Bytes())
		if !bytesEqual(p.Bytes(), payload(id)) {
			res.Mismatches++
		}
		res.Completed++
		sendNext()
	})
	for i := 0; i < soakWindow; i++ {
		sendNext()
	}
	soakFinish(&res, tb, clientBase, serverBase, ab, ba)
	return res
}

// SoakKV runs one KV scenario: multi-gets against a preloaded store over
// the TCP stack, responses deserialized and compared against the store's
// ground-truth values (which travel zero-copy out of pinned memory on the
// server, so a use-after-free would surface as a mismatch).
func SoakKV(seed uint64) SoakResult {
	res := SoakResult{Workload: "kv", Seed: seed, Total: soakMessages}
	tb := driver.NewTCPTestbed(nic.MellanoxCX6())
	srv := driver.NewKVServer(tb.Server, driver.SysCornflakes)

	// A small store of 1–2 KiB values: above the zero-copy threshold, so
	// responses pin store memory across retransmission.
	rng := sim.NewRand(seed).Fork(500)
	recs := make([]workloads.KV, 16)
	vals := make([][]byte, len(recs))
	for i := range recs {
		v := make([]byte, 1024+rng.Intn(1024))
		for j := range v {
			v[j] = byte(rng.Uint64())
		}
		recs[i] = workloads.KV{
			Key:  []byte(fmt.Sprintf("soak-key-%04d", i)),
			Vals: [][]byte{v},
		}
		vals[i] = v
	}
	srv.Preload(recs)
	ab, ba := faults.Apply(soakPlan(seed), tb.Client.TCP.Port, tb.Server.TCP.Port)

	clientBase := tb.Client.Alloc.Stats().SlotsInUse
	serverBase := tb.Server.Alloc.Stats().SlotsInUse
	soakBound(&res, tb, clientBase, serverBase)

	codec := driver.NewKVClient(tb.Client, driver.SysCornflakes)
	// keysOf(id) regenerates request id's key set deterministically; like
	// the echo pattern, it makes expected responses recomputable.
	keysOf := func(id uint64) []int {
		r := sim.NewRand(seed).Fork(600 + id)
		ks := make([]int, 1+r.Intn(3))
		for i := range ks {
			ks[i] = r.Intn(len(recs))
		}
		return ks
	}

	var sent uint64
	sendNext := func() {
		if sent >= uint64(res.Total) {
			return
		}
		id := sent
		sent++
		req := workloads.Request{Op: workloads.OpGetM}
		for _, k := range keysOf(id) {
			req.Keys = append(req.Keys, recs[k].Key)
		}
		p := codec.BuildStep(id, req, 0)
		tb.Client.TCP.SendContiguous(p, mem.UnpinnedSimAddr(p))
	}
	tb.Client.TCP.SetRecvHandler(func(p *mem.Buf) {
		m, err := msgs.DeserializeGetM(tb.Client.Ctx, p)
		if err != nil {
			p.DecRef()
			res.Mismatches++
			res.Completed++
			sendNext()
			return
		}
		ks := keysOf(m.Id())
		if m.ValsLen() != len(ks) {
			res.Mismatches++
		} else {
			for j, k := range ks {
				if !bytesEqual(m.Vals(j), vals[k]) {
					res.Mismatches++
					break
				}
			}
		}
		m.Release()
		tb.Client.Arena.Reset()
		res.Completed++
		sendNext()
	})
	for i := 0; i < soakWindow; i++ {
		sendNext()
	}
	soakFinish(&res, tb, clientBase, serverBase, ab, ba)
	return res
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Soak runs the full seeded scenario sweep and reports aggregate fault and
// invariant counts. Scale does not change the sweep — the scenario set IS
// the contract — but Quick keeps per-scenario traffic small enough that
// the whole sweep stays test-suite friendly.
func Soak(sc Scale) *Report {
	r := &Report{
		ID:    "soak",
		Title: fmt.Sprintf("TCP-lite under %d seeded fault scenarios (loss/burst/reorder/dup/jitter/corrupt)", SoakScenarios),
		Header: []string{"workload", "scenarios", "requests", "rtx", "wire drops", "fcs drops", "dup acks",
			"stalls", "mismatches", "leaks"},
	}
	agg := map[string]*SoakResult{}
	order := []string{"echo", "kv"}
	for _, w := range order {
		agg[w] = &SoakResult{Workload: w}
	}
	scenarios := 0
	var failures []string
	capViolations := 0
	unconserved := 0
	var worstHeadroom int64
	// Every (seed, workload) scenario is an independent simulation; run the
	// whole grid concurrently, then aggregate in seed order so failure
	// notes (and the report fingerprint) stay deterministic.
	results := make([]SoakResult, SoakScenarios*len(order))
	forEach(sc.workers(), len(results), func(i int) {
		seed := uint64(i/len(order)) + 1
		if order[i%len(order)] == "echo" {
			results[i] = SoakEcho(seed)
		} else {
			results[i] = SoakKV(seed)
		}
	})
	for seed := uint64(1); seed <= SoakScenarios; seed++ {
		for wi, w := range order {
			res := results[int(seed-1)*len(order)+wi]
			scenarios++
			if res.PeakClient > res.CapClient || res.PeakServer > res.CapServer {
				capViolations++
			}
			if !res.Conserved {
				unconserved++
			}
			// Headroom actually consumed above the pre-traffic baseline.
			for _, used := range []int64{
				res.PeakClient - (res.CapClient - soakCapHeadroom),
				res.PeakServer - (res.CapServer - soakCapHeadroom),
			} {
				if used > worstHeadroom {
					worstHeadroom = used
				}
			}
			a := agg[w]
			a.Total += res.Total
			a.Completed += res.Completed
			a.Mismatches += res.Mismatches
			a.Retransmits += res.Retransmits
			a.WireDrops += res.WireDrops
			a.FCSDrops += res.FCSDrops
			a.DupAcks += res.DupAcks
			a.LeakedClient += res.LeakedClient
			a.LeakedServer += res.LeakedServer
			if res.Stalled {
				a.Stalled = true
			}
			if !res.OK() {
				failures = append(failures, res.String())
			}
		}
	}
	stalls := 0
	for _, w := range order {
		a := agg[w]
		st := 0
		if a.Stalled {
			st = 1
			stalls++
		}
		r.Rows = append(r.Rows, []string{
			w, fmt.Sprint(SoakScenarios), fmt.Sprint(a.Total),
			fmt.Sprint(a.Retransmits), fmt.Sprint(a.WireDrops), fmt.Sprint(a.FCSDrops), fmt.Sprint(a.DupAcks),
			fmt.Sprint(st), fmt.Sprint(a.Mismatches),
			fmt.Sprint(a.LeakedClient + a.LeakedServer),
		})
	}
	for _, f := range failures {
		r.Notes = append(r.Notes, "FAILED: "+f)
	}
	total := agg["echo"].Total + agg["kv"].Total
	done := agg["echo"].Completed + agg["kv"].Completed
	r.AddCheck("liveness: every request completed under faults",
		done == total && len(failures) == 0, "%d/%d completed, %d failing scenarios", done, total, len(failures))
	r.AddCheck("integrity: zero payload mismatches",
		agg["echo"].Mismatches+agg["kv"].Mismatches == 0, "%d mismatches",
		agg["echo"].Mismatches+agg["kv"].Mismatches)
	r.AddCheck("safety: all refcounts drained to baseline",
		agg["echo"].LeakedClient+agg["echo"].LeakedServer+agg["kv"].LeakedClient+agg["kv"].LeakedServer == 0,
		"echo leak %d/%d, kv leak %d/%d",
		agg["echo"].LeakedClient, agg["echo"].LeakedServer, agg["kv"].LeakedClient, agg["kv"].LeakedServer)
	r.AddCheck("bounded: peak pinned occupancy stayed within every scenario's cap",
		capViolations == 0, "%d violations; worst headroom use %d of %d slots",
		capViolations, worstHeadroom, int64(soakCapHeadroom))
	r.AddCheck("conservation: posted + duplicated frames == delivered + dropped + FCS-discarded",
		unconserved == 0, "%d of %d scenarios violated", unconserved, scenarios)
	// The sweep must actually have hurt: a plan generator bug that yields
	// clean links would green-light broken retransmission code.
	r.AddCheck("adversity: wire drops, retransmits, dups and corruption all exercised",
		agg["echo"].WireDrops+agg["kv"].WireDrops > 0 &&
			agg["echo"].Retransmits+agg["kv"].Retransmits > 0 &&
			agg["echo"].FCSDrops+agg["kv"].FCSDrops > 0 &&
			agg["echo"].DupAcks+agg["kv"].DupAcks > 0,
		"drops=%d rtx=%d fcs=%d dupacks=%d",
		agg["echo"].WireDrops+agg["kv"].WireDrops,
		agg["echo"].Retransmits+agg["kv"].Retransmits,
		agg["echo"].FCSDrops+agg["kv"].FCSDrops,
		agg["echo"].DupAcks+agg["kv"].DupAcks)
	return r
}
