package experiments

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/driver"
	"cornflakes/internal/workloads"
)

// Fig5 reproduces Figure 5: the §5 measurement study heatmap. For each
// (total payload size, scatter-gather entry count) cell on the YCSB
// workload, it reports the percent difference in maximum throughput
// between an all-scatter-gather configuration (threshold 0) and an
// all-copy configuration (threshold ∞). The paper's crossover line falls
// where individual fields are about 512 bytes.
func Fig5(sc Scale) *Report {
	r := &Report{
		ID:     "fig5",
		Title:  "%Δ max throughput, all-SG vs all-copy (YCSB); rows: payload, cols: SG entries",
		Header: []string{"payload\\entries", "1", "2", "4", "8", "16"},
	}
	payloads := []int{512, 1024, 2048, 4096, 8192}
	entries := []int{1, 2, 4, 8, 16}
	diff := map[[2]int]float64{}

	// Measure every valid (payload, entries) cell concurrently — each is a
	// pair of independent capacity probes — then fold back in grid order.
	type cellRes struct {
		valid bool
		d     float64
	}
	grid := make([]cellRes, len(payloads)*len(entries))
	forEach(sc.workers(), len(grid), func(i int) {
		total, k := payloads[i/len(entries)], entries[i%len(entries)]
		seg := total / k
		if seg < 64 || total > 8192 {
			return
		}
		// Size the store so values live in DRAM, not cache: at least
		// 8x the 2 MB modelled L3.
		keys := (16 << 20) / total
		if keys < 256 {
			keys = 256
		}
		if keys > 16*sc.StoreKeys {
			keys = 16 * sc.StoreKeys
		}
		gen := workloads.NewYCSB(keys, seg, k)
		sg := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: gen, SmallCache: true,
			Threshold: core.ThresholdAllZeroCopy, ThresholdSet: true, Scale: sc, Seed: 50,
		})
		cp := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: gen, SmallCache: true,
			Threshold: core.ThresholdAllCopy, ThresholdSet: true, Scale: sc, Seed: 50,
		})
		grid[i] = cellRes{valid: true, d: pct(sg.AchievedRps, cp.AchievedRps)}
	})
	for pi, total := range payloads {
		row := []string{fmt.Sprintf("%d", total)}
		for ki, k := range entries {
			c := grid[pi*len(entries)+ki]
			if !c.valid {
				row = append(row, "-")
				continue
			}
			diff[[2]int{total, k}] = c.d
			row = append(row, fmt.Sprintf("%+.1f%%", c.d))
		}
		r.Rows = append(r.Rows, row)
	}

	// The crossover: SG wins when per-entry size >= 512, copy wins when
	// per-entry size <= 256. Walk the grid in order (not the map) so the
	// evidence string — and with it the report fingerprint — is
	// deterministic even when a check fails.
	sgWins, copyWins := true, true
	var sgEvidence, copyEvidence string
	for _, total := range payloads {
		for _, k := range entries {
			d, ok := diff[[2]int{total, k}]
			if !ok {
				continue
			}
			seg := total / k
			if seg >= 1024 && d <= 0 {
				sgWins = false
				sgEvidence = fmt.Sprintf("payload %d x%d entries: %+.1f%%", total, k, d)
			}
			if seg <= 128 && d >= 5 {
				copyWins = false
				copyEvidence = fmt.Sprintf("payload %d x%d entries: %+.1f%%", total, k, d)
			}
		}
	}
	r.AddCheck("scatter-gather wins for fields >= 1024B", sgWins, "%s", orOK(sgEvidence))
	r.AddCheck("no scatter-gather advantage for fields <= 128B (paper: -2 to -10%)",
		copyWins, "%s", orOK(copyEvidence))
	d512 := diff[[2]int{1024, 2}] // 512-byte fields
	r.AddCheck("512B fields are near the crossover (|diff| modest)",
		d512 > -25 && d512 < 60, "at 512B fields: %+.1f%%", d512)
	r.Notes = append(r.Notes,
		"threshold 0 = scatter-gather everything; threshold ∞ = copy everything (§5)",
		"paper: green crossover line at ~512-byte fields")
	return r
}

func orOK(s string) string {
	if s == "" {
		return "ok"
	}
	return s
}
