package experiments

import (
	"sort"
	"testing"
)

// TestSerialParallelFingerprints is the determinism gate for the parallel
// sweep harness: running an experiment serially and with a multi-worker
// fan-out must produce byte-identical reports — same rendered table, same
// check evidence, same trace artifact bytes — because every sweep point is
// computed on exactly one goroutine against its own engine and results
// merge in point order. scripts/check.sh runs this test explicitly so a
// future change cannot silently trade determinism for speed.
func TestSerialParallelFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pair per experiment; skipped in -short")
	}
	// Three experiments run at Quick scale for depth: fig9 exercises the
	// TCP stack, overload the shedding/retry layer (with a traced run so
	// artifact bytes are pinned too), batching the batched RX/TX grid plus
	// its own fingerprint rerun. Everything else in the registry —
	// including cluster's multi-client racks — runs at a reduced scale so
	// the whole registry stays covered without hours of sweep time.
	deep := map[string]bool{"fig9": true, "overload": true, "batching": true}
	traced := map[string]bool{"overload": true, "batching": true}
	tiny := Scale{StoreKeys: 200, MeasureMs: 2, WarmupMs: 1, SweepPoints: 2, Cores: 4}

	ids := make([]string, 0, len(All()))
	for id := range All() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fn := All()[id]
			serial := tiny
			if deep[id] {
				serial = Quick()
			}
			serial.Trace = traced[id]
			parallel := serial
			parallel.Workers = 4

			repS := fn(serial)
			repP := fn(parallel)
			if fpS, fpP := repS.Fingerprint(), repP.Fingerprint(); fpS != fpP {
				t.Errorf("%s: serial fingerprint %016x != parallel %016x", id, fpS, fpP)
				if s, p := repS.String(), repP.String(); s != p {
					t.Logf("serial report:\n%s\nparallel report:\n%s", s, p)
				}
				for name, data := range repS.Artifacts {
					if string(repP.Artifacts[name]) != string(data) {
						t.Errorf("%s: artifact %s differs between serial and parallel", id, name)
					}
				}
			}
		})
	}
}

// TestFingerprintSensitivity guards the gate itself: the fingerprint must
// actually move when any report surface changes.
func TestFingerprintSensitivity(t *testing.T) {
	base := func() *Report {
		r := &Report{ID: "x", Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}
		r.AddCheck("c", true, "ok")
		r.AddArtifact("f.json", []byte("{}"))
		return r
	}
	ref := base().Fingerprint()
	mutations := map[string]func(*Report){
		"row cell":  func(r *Report) { r.Rows[0][0] = "2" },
		"check":     func(r *Report) { r.Checks[0].Pass = false },
		"note":      func(r *Report) { r.Notes = append(r.Notes, "n") },
		"artifact":  func(r *Report) { r.Artifacts["f.json"] = []byte("{ }") },
		"new file":  func(r *Report) { r.AddArtifact("g.json", []byte("{}")) },
		"title":     func(r *Report) { r.Title = "u" },
		"check got": func(r *Report) { r.Checks[0].Got = "nope" },
	}
	for name, mutate := range mutations {
		r := base()
		mutate(r)
		if r.Fingerprint() == ref {
			t.Errorf("fingerprint did not change when %s changed", name)
		}
	}
}
