package experiments

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/driver"
	"cornflakes/internal/nic"
	"cornflakes/internal/workloads"
)

// kvProfile is the default end-to-end NIC.
func kvProfile() nic.Profile { return nic.MellanoxCX6() }

// Fig12 reproduces Figure 12: the Twitter trace under the hybrid
// threshold, only-scatter-gather, and only-copy configurations. Paper: the
// hybrid is 2.3–3.9% ahead of SG-only, and both beat copy-only.
func Fig12(sc Scale) *Report {
	r := &Report{
		ID:     "fig12",
		Title:  "Twitter trace: hybrid vs only-SG vs only-copy (max krps)",
		Header: []string{"config", "max krps"},
	}
	run := func(th int, seed uint64) float64 {
		return kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: twitterGen(sc, 130), SmallCache: true,
			Threshold: th, ThresholdSet: true, Scale: sc, Seed: seed,
		}).AchievedRps
	}
	// All arms share one seed so they serve the identical request sequence.
	arms := []int{core.DefaultThreshold, core.ThresholdAllZeroCopy, core.ThresholdAllCopy}
	caps := make([]float64, len(arms))
	forEach(sc.workers(), len(arms), func(i int) {
		caps[i] = run(arms[i], 131)
	})
	hybrid, sgOnly, copyOnly := caps[0], caps[1], caps[2]
	r.Rows = append(r.Rows,
		[]string{"hybrid (512B)", f1(hybrid / 1000)},
		[]string{"only scatter-gather", f1(sgOnly / 1000)},
		[]string{"only copy", f1(copyOnly / 1000)},
	)
	r.AddCheck("hybrid beats only-scatter-gather (paper: +2.3-3.9%)",
		hybrid > sgOnly, "hybrid %.0f vs sg %.0f rps (%+.1f%%)", hybrid, sgOnly, pct(hybrid, sgOnly))
	r.AddCheck("hybrid beats only-copy",
		hybrid > copyOnly, "hybrid %.0f vs copy %.0f rps", hybrid, copyOnly)
	r.AddCheck("only-SG beats only-copy on this mixed trace",
		sgOnly > copyOnly, "sg %.0f vs copy %.0f rps", sgOnly, copyOnly)
	return r
}

// Tab4 reproduces Table 4: hybrid vs only-scatter-gather on the Google
// distribution. Paper: the hybrid wins by 1.4–14.0% whenever responses
// have more than one scatter-gather entry, because most Google fields are
// tiny and copying them is cheaper than per-field SG bookkeeping.
func Tab4(sc Scale) *Report {
	r := &Report{
		ID:     "tab4",
		Title:  "Google distribution: hybrid vs only-scatter-gather (krps)",
		Header: []string{"list shape", "hybrid", "only-SG", "hybrid gain"},
	}
	shapes := []int{1, 4, 8, 16}
	// 4 list shapes × {hybrid, only-SG} = 8 independent capacity probes.
	cells := make([]float64, 2*len(shapes))
	forEach(sc.workers(), len(cells), func(i int) {
		gen := googleGen(sc, shapes[i/2], 140)
		th := core.DefaultThreshold
		if i%2 == 1 {
			th = core.ThresholdAllZeroCopy
		}
		cells[i] = kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: gen, SmallCache: true,
			Threshold: th, ThresholdSet: true, Scale: sc, Seed: 141,
		}).AchievedRps
	})
	gains := map[int]float64{}
	for si, mv := range shapes {
		hybrid, sgOnly := cells[2*si], cells[2*si+1]
		g := pct(hybrid, sgOnly)
		gains[mv] = g
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("1-%d vals", mv), f1(hybrid / 1000), f1(sgOnly / 1000),
			fmt.Sprintf("%+.1f%%", g),
		})
	}
	r.AddCheck("hybrid beats only-SG for multi-entry lists (paper: +1.4-14.0%)",
		gains[4] > 0 && gains[8] > 0 && gains[16] > 0,
		"1-4: %+.1f%%, 1-8: %+.1f%%, 1-16: %+.1f%%", gains[4], gains[8], gains[16])
	r.AddCheck("gain grows with list length",
		gains[16] > gains[4],
		"1-4: %+.1f%% vs 1-16: %+.1f%%", gains[4], gains[16])
	return r
}

// Tab5 reproduces Table 5: the combined serialize-and-send API vs the
// independent-layer scatter-gather-array path, on Google 1–4, Twitter, and
// YCSB 1024B x 4. Paper: serialize-and-send is worth 7.7–17.4%.
func Tab5(sc Scale) *Report {
	r := &Report{
		ID:     "tab5",
		Title:  "Combined serialize-and-send vs SG-array path (max throughput)",
		Header: []string{"workload", "with s+s", "without s+s", "gain"},
	}
	type wl struct {
		name string
		gen  workloads.Generator
		unit string
	}
	wls := []wl{
		{"Google 1-4 vals", googleGen(sc, 4, 150), "krps"},
		{"Twitter", twitterGen(sc, 151), "krps"},
		{"YCSB 1024x4", workloads.NewYCSB(4*sc.StoreKeys, 1024, 4), "krps"},
	}
	// 3 workloads × {with, without} = 6 independent capacity probes.
	cells := make([]float64, 2*len(wls))
	forEach(sc.workers(), len(cells), func(i int) {
		cells[i] = kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: wls[i/2].gen, SmallCache: true,
			UseSGArray: i%2 == 1, Scale: sc, Seed: 152,
		}).AchievedRps
	})
	gains := map[string]float64{}
	for wi, w := range wls {
		with, without := cells[2*wi], cells[2*wi+1]
		g := pct(with, without)
		gains[w.name] = g
		r.Rows = append(r.Rows, []string{
			w.name, f1(with / 1000), f1(without / 1000), fmt.Sprintf("%+.1f%%", g),
		})
	}
	// Iterate the workload list, not the map: check evidence must never
	// depend on map order.
	allPositive := true
	for _, w := range wls {
		if gains[w.name] <= 0 {
			allPositive = false
		}
	}
	r.AddCheck("serialize-and-send wins on every workload (paper: +7.7-17.4%)",
		allPositive,
		"google %+.1f%%, twitter %+.1f%%, ycsb %+.1f%%",
		gains["Google 1-4 vals"], gains["Twitter"], gains["YCSB 1024x4"])
	r.Notes = append(r.Notes,
		"without s+s: intermediate SG array + separate packet-header entry (§6.5.2)")
	return r
}

// Fig13 reproduces Figure 13: copy vs raw scatter-gather as cores scale,
// on a sharded array ~10x L3 with two 512-byte buffers per request.
// Paper: both scale linearly until they plateau; SG holds a ~33-50% edge.
func Fig13(sc Scale) *Report {
	r := &Report{
		ID:     "fig13",
		Title:  "Multicore microbenchmark (2x512B): max Gbps vs cores",
		Header: []string{"cores", "copy Gbps", "raw sg Gbps"},
	}
	workingSet := 10 * (2 << 20)
	cores := []int{1, 2, 4}
	if sc.Cores >= 8 {
		cores = append(cores, 8)
	}
	// core counts × {copy, raw sg} = up to 8 independent adaptive probes.
	cells := make([]float64, 2*len(cores))
	forEach(sc.workers(), len(cells), func(i int) {
		k := cores[i/2]
		if i%2 == 0 {
			cells[i] = microMaxGbps(microCopy, k, 512, 2, workingSet, sc, 160)
		} else {
			cells[i] = microMaxGbps(microSGRaw, k, 512, 2, workingSet, sc, 161)
		}
	})
	copyG := map[int]float64{}
	sgG := map[int]float64{}
	for ki, k := range cores {
		copyG[k], sgG[k] = cells[2*ki], cells[2*ki+1]
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%d", k), f1(copyG[k]), f1(sgG[k])})
	}
	r.AddCheck("scatter-gather ahead of copy at every core count",
		sgG[1] > copyG[1] && sgG[2] > copyG[2] && sgG[4] > copyG[4],
		"1 core: %.1f vs %.1f; 4 cores: %.1f vs %.1f Gbps", sgG[1], copyG[1], sgG[4], copyG[4])
	r.AddCheck("both scale near-linearly from 1 to 4 cores",
		sgG[4] > 2.8*sgG[1] && copyG[4] > 2.8*copyG[1],
		"sg x%.1f, copy x%.1f", sgG[4]/sgG[1], copyG[4]/copyG[1])
	if len(cores) == 4 {
		r.AddCheck("scaling flattens toward the NIC plateau at 8 cores",
			sgG[8] < 2*sgG[4] || sgG[8] > 60,
			"8 cores: sg %.1f Gbps", sgG[8])
	}
	r.Notes = append(r.Notes,
		"paper: sg 16.8 Gbps/core scaling linearly to a ~73.5 Gbps plateau; copy ~33% lower")
	return r
}
