package experiments

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/driver"
	"cornflakes/internal/nic"
	"cornflakes/internal/workloads"
)

// kvProfile is the default end-to-end NIC.
func kvProfile() nic.Profile { return nic.MellanoxCX6() }

// Fig12 reproduces Figure 12: the Twitter trace under the hybrid
// threshold, only-scatter-gather, and only-copy configurations. Paper: the
// hybrid is 2.3–3.9% ahead of SG-only, and both beat copy-only.
func Fig12(sc Scale) *Report {
	r := &Report{
		ID:     "fig12",
		Title:  "Twitter trace: hybrid vs only-SG vs only-copy (max krps)",
		Header: []string{"config", "max krps"},
	}
	run := func(th int, seed uint64) float64 {
		return kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: twitterGen(sc, 130), SmallCache: true,
			Threshold: th, ThresholdSet: true, Scale: sc, Seed: seed,
		}).AchievedRps
	}
	// All arms share one seed so they serve the identical request sequence.
	hybrid := run(core.DefaultThreshold, 131)
	sgOnly := run(core.ThresholdAllZeroCopy, 131)
	copyOnly := run(core.ThresholdAllCopy, 131)
	r.Rows = append(r.Rows,
		[]string{"hybrid (512B)", f1(hybrid / 1000)},
		[]string{"only scatter-gather", f1(sgOnly / 1000)},
		[]string{"only copy", f1(copyOnly / 1000)},
	)
	r.AddCheck("hybrid beats only-scatter-gather (paper: +2.3-3.9%)",
		hybrid > sgOnly, "hybrid %.0f vs sg %.0f rps (%+.1f%%)", hybrid, sgOnly, pct(hybrid, sgOnly))
	r.AddCheck("hybrid beats only-copy",
		hybrid > copyOnly, "hybrid %.0f vs copy %.0f rps", hybrid, copyOnly)
	r.AddCheck("only-SG beats only-copy on this mixed trace",
		sgOnly > copyOnly, "sg %.0f vs copy %.0f rps", sgOnly, copyOnly)
	return r
}

// Tab4 reproduces Table 4: hybrid vs only-scatter-gather on the Google
// distribution. Paper: the hybrid wins by 1.4–14.0% whenever responses
// have more than one scatter-gather entry, because most Google fields are
// tiny and copying them is cheaper than per-field SG bookkeeping.
func Tab4(sc Scale) *Report {
	r := &Report{
		ID:     "tab4",
		Title:  "Google distribution: hybrid vs only-scatter-gather (krps)",
		Header: []string{"list shape", "hybrid", "only-SG", "hybrid gain"},
	}
	shapes := []int{1, 4, 8, 16}
	gains := map[int]float64{}
	for _, mv := range shapes {
		gen := googleGen(sc, mv, 140)
		hybrid := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: gen, SmallCache: true,
			Threshold: core.DefaultThreshold, ThresholdSet: true, Scale: sc, Seed: 141,
		}).AchievedRps
		sgOnly := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: gen, SmallCache: true,
			Threshold: core.ThresholdAllZeroCopy, ThresholdSet: true, Scale: sc, Seed: 141,
		}).AchievedRps
		g := pct(hybrid, sgOnly)
		gains[mv] = g
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("1-%d vals", mv), f1(hybrid / 1000), f1(sgOnly / 1000),
			fmt.Sprintf("%+.1f%%", g),
		})
	}
	r.AddCheck("hybrid beats only-SG for multi-entry lists (paper: +1.4-14.0%)",
		gains[4] > 0 && gains[8] > 0 && gains[16] > 0,
		"1-4: %+.1f%%, 1-8: %+.1f%%, 1-16: %+.1f%%", gains[4], gains[8], gains[16])
	r.AddCheck("gain grows with list length",
		gains[16] > gains[4],
		"1-4: %+.1f%% vs 1-16: %+.1f%%", gains[4], gains[16])
	return r
}

// Tab5 reproduces Table 5: the combined serialize-and-send API vs the
// independent-layer scatter-gather-array path, on Google 1–4, Twitter, and
// YCSB 1024B x 4. Paper: serialize-and-send is worth 7.7–17.4%.
func Tab5(sc Scale) *Report {
	r := &Report{
		ID:     "tab5",
		Title:  "Combined serialize-and-send vs SG-array path (max throughput)",
		Header: []string{"workload", "with s+s", "without s+s", "gain"},
	}
	type wl struct {
		name string
		gen  workloads.Generator
		unit string
	}
	wls := []wl{
		{"Google 1-4 vals", googleGen(sc, 4, 150), "krps"},
		{"Twitter", twitterGen(sc, 151), "krps"},
		{"YCSB 1024x4", workloads.NewYCSB(4*sc.StoreKeys, 1024, 4), "krps"},
	}
	gains := map[string]float64{}
	for _, w := range wls {
		with := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: w.gen, SmallCache: true,
			Scale: sc, Seed: 152,
		}).AchievedRps
		without := kvCapacity(kvOpts{
			Sys: driver.SysCornflakes, Gen: w.gen, SmallCache: true,
			UseSGArray: true, Scale: sc, Seed: 152,
		}).AchievedRps
		g := pct(with, without)
		gains[w.name] = g
		r.Rows = append(r.Rows, []string{
			w.name, f1(with / 1000), f1(without / 1000), fmt.Sprintf("%+.1f%%", g),
		})
	}
	allPositive := true
	for _, g := range gains {
		if g <= 0 {
			allPositive = false
		}
	}
	r.AddCheck("serialize-and-send wins on every workload (paper: +7.7-17.4%)",
		allPositive,
		"google %+.1f%%, twitter %+.1f%%, ycsb %+.1f%%",
		gains["Google 1-4 vals"], gains["Twitter"], gains["YCSB 1024x4"])
	r.Notes = append(r.Notes,
		"without s+s: intermediate SG array + separate packet-header entry (§6.5.2)")
	return r
}

// Fig13 reproduces Figure 13: copy vs raw scatter-gather as cores scale,
// on a sharded array ~10x L3 with two 512-byte buffers per request.
// Paper: both scale linearly until they plateau; SG holds a ~33-50% edge.
func Fig13(sc Scale) *Report {
	r := &Report{
		ID:     "fig13",
		Title:  "Multicore microbenchmark (2x512B): max Gbps vs cores",
		Header: []string{"cores", "copy Gbps", "raw sg Gbps"},
	}
	workingSet := 10 * (2 << 20)
	cores := []int{1, 2, 4}
	if sc.Cores >= 8 {
		cores = append(cores, 8)
	}
	copyG := map[int]float64{}
	sgG := map[int]float64{}
	for _, k := range cores {
		copyG[k] = microMaxGbps(microCopy, k, 512, 2, workingSet, sc, 160)
		sgG[k] = microMaxGbps(microSGRaw, k, 512, 2, workingSet, sc, 161)
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%d", k), f1(copyG[k]), f1(sgG[k])})
	}
	r.AddCheck("scatter-gather ahead of copy at every core count",
		sgG[1] > copyG[1] && sgG[2] > copyG[2] && sgG[4] > copyG[4],
		"1 core: %.1f vs %.1f; 4 cores: %.1f vs %.1f Gbps", sgG[1], copyG[1], sgG[4], copyG[4])
	r.AddCheck("both scale near-linearly from 1 to 4 cores",
		sgG[4] > 2.8*sgG[1] && copyG[4] > 2.8*copyG[1],
		"sg x%.1f, copy x%.1f", sgG[4]/sgG[1], copyG[4]/copyG[1])
	if len(cores) == 4 {
		r.AddCheck("scaling flattens toward the NIC plateau at 8 cores",
			sgG[8] < 2*sgG[4] || sgG[8] > 60,
			"8 cores: sg %.1f Gbps", sgG[8])
	}
	r.Notes = append(r.Notes,
		"paper: sg 16.8 Gbps/core scaling linearly to a ~73.5 Gbps plateau; copy ~33% lower")
	return r
}
