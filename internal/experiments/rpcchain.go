package experiments

import (
	"bytes"
	"fmt"
	"math/rand/v2"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/driver"
	"cornflakes/internal/fabric"
	"cornflakes/internal/loadgen"
	"cornflakes/internal/nic"
	"cornflakes/internal/rpc"
	"cornflakes/internal/sim"
	"cornflakes/internal/trace"
	"cornflakes/internal/workloads"
)

// RPC runs the serializer-aware microservice call-graph experiment: a
// client calling a chain of tiers over the rack fabric, every hop paying
// its marshalling through the cost model. The grid sweeps chain depth ×
// offered load; dedicated points add fan-out, mid-chain shedding (the
// PR 2 admission-control interplay), hedged requests against the chain
// (the PR 7 interplay), an RPCAcc-style NIC-offload pair, and a traced
// run whose per-hop spans ship as an artifact.
//
// Checks:
//  1. serialized work per request grows superlinearly with chain depth —
//     mid tiers marshal twice (decode call + encode forward, decode reply
//     + encode reply) per one unit of app work, so a depth-4 chain pays
//     14 marshal units per request where depth 1 pays 2: chains amplify
//     exactly the overhead Cornflakes attacks, faster than depth itself;
//  2. tail amplification: the p99−p50 gap at the deepest chain exceeds the
//     single-tier gap at matched per-tier load;
//  3. the NIC-side serialization engine cuts host-core serialize cycles
//     per call ≥ 2× at the deepest chain, and the moved cycles appear on
//     the offload engine's receipts;
//  4. a mid-chain shed propagates hop by hop to the client and the books
//     stay exact;
//  5. hedged requests against the chain keep every ledger exact;
//  6. per-hop spans are present in the trace export;
//  7. fan-in child disposal is exact at every tier of every point;
//  8. accounting and same-seed replay determinism, as for cluster/chaos.
func RPC(sc Scale) *Report {
	r := &Report{
		ID:     "rpc",
		Title:  "RPC chains over the rack: depth × load, serialization share, tail amplification, NIC offload",
		Header: []string{"depth", "fan", "offl", "rate/s", "goodput", "p50µs", "p99µs", "ser%"},
	}

	// Per-tier capacity probe on the single-tier chain.
	capRes := capacityOf(func(rate float64) (loadgen.Result, *sim.Core) {
		p := rpcAt(sc, rpcOpts{Depth: 1, Rate: rate, Seed: 90})
		return p.Res, p.FrontCore
	}, 100_000)
	capRps := capRes.AchievedRps
	if capRps <= 0 {
		r.AddCheck("capacity: estimator produced a usable operating point", false,
			"capacity estimate %.0f rps", capRps)
		return r
	}
	// The estimator extrapolates raw core capacity from a stable
	// mid-utilization point; the chain's usable range sits well below it —
	// past ~0.45× the deep chains tip into a retry/queue spiral (RX-ring
	// drops plus fan-in timeouts) and goodput collapses to zero. The
	// ladder tops out at 0.4× so every grid point operates, and the
	// overload interplay points probe the unstable region deliberately.
	r.Notes = append(r.Notes, fmt.Sprintf("single-tier raw-core capacity estimate %.0f rps; ladder 0.1×–0.4×", capRps))

	depths := []int{1, 2, 4}
	rates := loadgen.GeometricRates(0.1*capRps, 0.4*capRps, sc.SweepPoints)
	grid := make([]rpcPoint, len(depths)*len(rates))
	forEach(sc.workers(), len(grid), func(i int) {
		di, ri := i/len(rates), i%len(rates)
		grid[i] = rpcAt(sc, rpcOpts{Depth: depths[di], Rate: rates[ri], Seed: 91})
	})

	// Special points: NIC offload at the deepest chain, a choked deep tier,
	// hedging against the chain, all with the 2-way fan-out layer.
	// Fan-out points run below the grid top: the extra fan-out marshalling
	// at the deepest tier moves the spiral threshold down to ~0.35×. The
	// shed point deliberately overdrives a choked deep tier at the grid
	// top; the hedge point runs light enough that hedges race genuine
	// stragglers instead of igniting a hedge→retry load spiral.
	topRate := rates[len(rates)-1]
	fanRate := 0.3 * capRps
	special := make([]rpcPoint, 4)
	forEach(sc.workers(), len(special), func(i int) {
		switch i {
		case 0:
			special[i] = rpcAt(sc, rpcOpts{Depth: 4, Fanout: 2, Rate: fanRate, Seed: 92})
		case 1:
			special[i] = rpcAt(sc, rpcOpts{Depth: 4, Fanout: 2, Rate: fanRate, Offload: true, Seed: 92})
		case 2:
			special[i] = rpcAt(sc, rpcOpts{Depth: 2, Fanout: 2, Rate: topRate, ShedQueue: 4, Seed: 93})
		case 3:
			// Hedge-delay calibration, tail-at-scale style: run an unhedged
			// control at the same seed, hedge at its measured p99 so hedges
			// race the genuine straggler tail. A delay picked a priori is
			// fragile — the latency profile shifts with scale — and a delay
			// under the typical latency ignites a metastable spiral (hedges
			// add load, latency crosses the delay for everyone, every flow
			// hedges and retries, the mid tier's RX ring overflows, goodput
			// collapses to zero). The light 0.15× rate leaves ≥2× headroom,
			// so even a full-hedging storm cannot self-sustain.
			ctl := rpcAt(sc, rpcOpts{Depth: 2, Fanout: 2, Rate: 0.15 * capRps, Seed: 94})
			special[i] = rpcAt(sc, rpcOpts{Depth: 2, Fanout: 2, Rate: 0.15 * capRps,
				Hedge: true, HedgeDelay: ctl.Res.P99(), Seed: 94})
		}
	})
	hostPt, offPt, shedPt, hedgePt := special[0], special[1], special[2], special[3]

	row := func(p rpcPoint) {
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(p.Depth), fmt.Sprint(p.Fanout), fmt.Sprintf("%v", p.Offload),
			fmt.Sprintf("%.0f", p.Res.OfferedRps),
			fmt.Sprintf("%.0f", p.Res.AchievedRps),
			f1(p.Res.P50().Seconds() * 1e6),
			f1(p.Res.P99().Seconds() * 1e6),
			f1(100 * p.SerShare()),
		})
	}
	for _, p := range grid {
		row(p)
	}
	for _, p := range special {
		row(p)
	}

	at := func(depth int, ri int) rpcPoint {
		for di, d := range depths {
			if d == depth {
				return grid[di*len(rates)+ri]
			}
		}
		return rpcPoint{}
	}
	topIdx := len(rates) - 1

	// 1. Serialized work per request grows superlinearly with depth: a mid
	// tier marshals twice per unit of app work (call decode + forward
	// encode, reply decode + reply encode), so depth 4 pays 14 marshal
	// units per request against depth 1's 2 — a 7× theoretical ratio for a
	// 4× depth increase. Require clear superlinearity (≥ 5×, > the 4×
	// linear-scaling bound).
	d1, d4 := at(1, topIdx), at(4, topIdx)
	serReq1, serReq4 := d1.SerPerRequest(), d4.SerPerRequest()
	r.AddCheck("serialized work per request grows superlinearly with chain depth (≥5× at 4× depth)",
		serReq1 > 0 && serReq4 >= 5*serReq1,
		"depth 1: %.0f cy/req, depth 4: %.0f cy/req (%.1f×; theoretical 7×)",
		serReq1, serReq4, serReq4/serReq1)

	// 2. Tail amplification: queueing noise stacks per hop, so the deep
	// chain's p99−p50 gap exceeds the single tier's at the same per-tier
	// load.
	gap1 := d1.Res.P99() - d1.Res.P50()
	gap4 := d4.Res.P99() - d4.Res.P50()
	r.AddCheck("tail amplification: depth-4 p99−p50 gap exceeds depth-1's at matched load",
		d1.Res.Completed > 0 && d4.Res.Completed > 0 && gap4 > gap1,
		"depth 1 gap %v, depth 4 gap %v", gap1, gap4)

	// 3. Offload: the NIC-side engine strips host serialize cycles.
	hostSer := hostPt.HostSerPerCall()
	offSer := offPt.HostSerPerCall()
	r.AddCheck("NIC offload cuts host-core serialize cycles/call ≥ 2× at the deepest chain",
		hostSer > 0 && offSer <= hostSer/2 && offPt.OffSerCycles > 0,
		"host %.0f cy/call → offload %.0f cy/call (NIC engine carried %.0f cy total)",
		hostSer, offSer, offPt.OffSerCycles)

	// 4. Mid-chain shedding propagates to the client.
	r.AddCheck("mid-chain shed propagates hop-by-hop to the client and books exactly",
		shedPt.Res.Shed > 0 && shedPt.FrontChildSheds > 0 && disposalExact(shedPt.Res),
		"client sheds %d, frontend saw %d backend sheds", shedPt.Res.Shed, shedPt.FrontChildSheds)

	// 5. Hedging against the chain stays exact.
	r.AddCheck("hedged requests against the chain keep the ledgers exact",
		hedgePt.Res.Hedges > 0 && disposalExact(hedgePt.Res) && hedgePt.ChildLedger,
		"hedges %d, sent %d, completed %d", hedgePt.Res.Hedges, hedgePt.Res.Sent, hedgePt.Res.Completed)

	// 6. Per-hop observability: a traced run's export carries the rpc hop
	// marks, so tail amplification is attributable hop by hop.
	tr := trace.New(trace.Config{SampleEvery: 4, SlowestK: traceSlowestK})
	tp := rpcAt(sc, rpcOpts{Depth: 3, Fanout: 2, Rate: fanRate, Seed: 95, Tracer: tr})
	export := trace.Export(tr, trace.NewRegistry())
	r.AddArtifact("rpc-trace.json", export)
	hasHops := bytes.Contains(export, []byte("rpc.h1.handle")) &&
		bytes.Contains(export, []byte("rpc.h3.handle")) &&
		bytes.Contains(export, []byte("rpc.h1.reply"))
	r.AddCheck("per-hop trace spans present in the export (rpc.h1…h3 marks)",
		tp.Res.Completed > 0 && hasHops,
		"export %d bytes, completed %d", len(export), tp.Res.Completed)

	// 7. Fan-in child disposal exact at every tier of every point.
	ledger := true
	all := append(append([]rpcPoint{}, grid...), special...)
	all = append(all, tp)
	for _, p := range all {
		if !p.ChildLedger {
			ledger = false
		}
	}
	r.AddCheck("fan-out/fan-in child ledger exact at every tier of every point",
		ledger, "checked %d points", len(all))

	// 8. Accounting + replay determinism (shared scenario contracts).
	exact := true
	for _, p := range all {
		if !disposalExact(p.Res) {
			exact = false
		}
	}
	addAccountingCheck(r, "depth×load grid + special points", exact, len(all))
	mid := at(2, (len(rates)-1)/2)
	addDeterminismCheck(r, "the mid-grid rpc point", mid.fingerprint(), func() string {
		return rpcAt(sc, rpcOpts{Depth: 2, Rate: rates[(len(rates)-1)/2], Seed: 91}).fingerprint()
	})

	r.Notes = append(r.Notes,
		"mid tiers marshal twice per app unit (decode+encode on both the call and the reply path)",
		"offl=true charges serialize+TX to a per-tier NIC engine (RPCAcc/Dagger deployment)")
	return r
}

// rpcOpts parameterizes one rpc chain point.
type rpcOpts struct {
	Depth, Fanout int
	Rate          float64
	Offload       bool
	ShedQueue     int // admission bound on the deepest chain tier (0 = off)
	Hedge         bool
	HedgeDelay    sim.Time // hedge launch delay (calibrated to a control run's p99)
	Seed          uint64
	Tracer        *trace.Tracer
}

// rpcPoint is one measured chain point.
type rpcPoint struct {
	Depth, Fanout int
	Offload       bool
	Res           loadgen.Result
	// Host / NIC-engine cycle receipts summed over the tiers, with the
	// handled-call count they cover.
	HostRec      costmodel.Receipt
	OffRec       costmodel.Receipt
	Handled      uint64
	OffSerCycles float64
	// FrontCore is the frontend tier's host core (capacity probe input).
	FrontCore       *sim.Core
	FrontChildSheds uint64
	ChildLedger     bool
	LateReplies     uint64
	PerTierHandled  []uint64
}

// SerShare is the serialized-work share of all host cycles.
func (p rpcPoint) SerShare() float64 {
	total := p.HostRec.Total()
	if total == 0 {
		return 0
	}
	ser := p.HostRec.Cycles[costmodel.CatSerialize] + p.HostRec.Cycles[costmodel.CatDeserialize]
	return ser / total
}

// SerPerRequest is the host serialized work (serialize + deserialize
// cycles, summed over every tier) per completed end-to-end request: the
// per-request marshalling bill the whole chain pays.
func (p rpcPoint) SerPerRequest() float64 {
	if p.Res.Completed == 0 {
		return 0
	}
	ser := p.HostRec.Cycles[costmodel.CatSerialize] + p.HostRec.Cycles[costmodel.CatDeserialize]
	return ser / float64(p.Res.Completed)
}

// HostSerPerCall is the host-core serialize cycles per handled call.
func (p rpcPoint) HostSerPerCall() float64 {
	if p.Handled == 0 {
		return 0
	}
	return p.HostRec.Cycles[costmodel.CatSerialize] / float64(p.Handled)
}

// fingerprint summarizes a point for the determinism gate.
func (p rpcPoint) fingerprint() string {
	return fmt.Sprintf("d=%d f=%d off=%v sent=%d done=%d shed=%d to=%d retr=%d hedge=%d p50=%d p99=%d handled=%v late=%d hostcy=%.0f",
		p.Depth, p.Fanout, p.Offload, p.Res.Sent, p.Res.Completed, p.Res.Shed,
		p.Res.TimedOut, p.Res.Retries, p.Res.Hedges, p.Res.P50(), p.Res.P99(),
		p.PerTierHandled, p.LateReplies, p.HostRec.Total())
}

// rpcRetry is the client-side deadline/retry policy for chain runs; the
// per-tier fan-in deadline sits well inside it so a mid-chain timeout
// reaches the client as an explicit failure, not a silent deadline miss.
func rpcRetry() loadgen.RetryPolicy {
	return loadgen.RetryPolicy{
		Deadline: 800 * sim.Microsecond, MaxRetries: 1,
		Backoff: 60 * sim.Microsecond, MaxBackoff: 240 * sim.Microsecond,
	}
}

const rpcFanInTimeout = 250 * sim.Microsecond

// rpcAt runs one chain point on a fresh rack.
func rpcAt(sc Scale, o rpcOpts) rpcPoint {
	cfg := rpc.ChainConfig{
		Sys: driver.SysCornflakes, Profile: nic.MellanoxCX6(), Cache: cachesim.DefaultConfig(),
		Fabric:      fabric.Config{},
		Depth:       o.Depth, Fanout: o.Fanout,
		AppCycles:   1500, ReqBytes: 64, FwdBytes: 64, RespBytes: 128,
		CallTimeout: rpcFanInTimeout,
		Offload:     o.Offload,
		Tracer:      o.Tracer,
		// A traced point stays serial: one trace.Tracer collects marks from
		// every tier, and that shared sink is the one piece of state the
		// partition isolation contract cannot cover.
		Partition: sc.Partition && o.Tracer == nil,
	}
	c := rpc.NewChain(cfg)
	if o.ShedQueue > 0 {
		// Choke the deepest chain tier only: every shed the client sees
		// had to propagate up through the healthy tiers above it.
		deep := c.Services[o.Depth-1]
		deep.ShedQueue = o.ShedQueue
	}
	lcfg := loadgen.Config{
		Eng: c.Client.N.Eng, Exec: c.Exec, EP: c.Client.N.UDP,
		Gen: rpcGen{}, Client: c.Client,
		RatePerS: o.Rate,
		Warmup:   sim.Time(sc.WarmupMs) * sim.Millisecond,
		Measure:  sim.Time(sc.MeasureMs) * sim.Millisecond,
		Seed:     o.Seed, ClientID: 1,
		Retry:  rpcRetry(),
		ShedID: driver.ShedID,
		Tracer: o.Tracer,
	}
	if o.Hedge {
		lcfg.Hedge = loadgen.HedgePolicy{Delay: o.HedgeDelay}
	}
	res := loadgen.Run(lcfg)
	c.Exec.Run() // quiesce: fan-in timers, stragglers, late replies

	p := rpcPoint{
		Depth: o.Depth, Fanout: o.Fanout, Offload: o.Offload,
		Res:       res,
		FrontCore: c.Services[0].N.Core,
	}
	p.HostRec, p.Handled = c.HostReceipt()
	p.OffRec, _ = c.OffloadReceipt()
	p.OffSerCycles = p.OffRec.Cycles[costmodel.CatSerialize]
	p.FrontChildSheds = c.Services[0].ChildSheds
	p.ChildLedger = c.ChildLedgersExact()
	for _, s := range c.Services {
		p.PerTierHandled = append(p.PerTierHandled, s.Handled)
		p.LateReplies += s.LateChildReplies
	}
	return p
}

// rpcGen drives the generator with a fixed no-op request: the RPC client
// ignores workload content — what is under test is the call graph.
type rpcGen struct{}

func (rpcGen) Name() string                      { return "rpc-const" }
func (rpcGen) Records() []workloads.KV           { return nil }
func (rpcGen) Next(*rand.Rand) workloads.Request { return workloads.Request{Op: workloads.OpGet} }
