// Package fabric simulates a top-of-rack switch connecting many endpoint
// NICs on one engine, in the component/port/connection style of the Akita
// simulator family: the switch is a component owning one switch-side port
// per attached endpoint; PlugIn manufactures the connection (a nic.Link)
// and hands the endpoint its own port.
//
// The model is a store-and-forward output-queued switch:
//
//   - Ingress: a frame arriving on any switch-side port is routed by the
//     destination address byte the netstack writes into the packet header
//     (netstack.HdrDstOff). Unroutable frames are counted and dropped.
//   - Switching latency: a fixed per-frame forwarding delay (pipeline +
//     lookup), configured in nanoseconds.
//   - Egress: the frame is re-posted on the destination's switch-side
//     port, so output contention falls out of the NIC model's FIFO
//     resources — frames to a hot server queue behind each other at that
//     port's line rate while other ports stay idle. Each output queue is
//     bounded; frames beyond the bound are tail-dropped and counted.
//   - Contention accounting: per egress port, the cumulative time frames
//     spent queued beyond the unloaded forwarding cost, measured from the
//     port's transmit records.
//
// Nothing here touches engine-global state: a Switch lives entirely inside
// the engine it was built with, preserving the per-sweep-point isolation
// contract (DESIGN.md §13).
package fabric

import (
	"fmt"

	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

// Config describes the switch.
type Config struct {
	// Port is the profile of every switch-side egress port. The zero value
	// selects TorPortProfile(100). (A zero Profile itself is not a valid
	// port — its rates divide by zero — so the sentinel costs nothing.)
	Port nic.Profile
	// LatencyNs is the fixed store-and-forward switching delay per frame.
	// Zero selects 300 ns, a typical ToR pipeline plus lookup; ExplicitZero
	// (any negative value) selects a genuinely zero-latency cut-through
	// stage, which the zero-as-unset sentinel could not express.
	LatencyNs float64
	// EgressDepth bounds each output queue in frames; beyond it the switch
	// tail-drops. Zero selects 256; ExplicitZero forwards nothing (every
	// frame tail-drops), the degenerate bound a backpressure test wants.
	EgressDepth int
}

// ExplicitZero marks a Config field as deliberately zero where the zero
// value means "unset, use the default". Any negative value works; this
// constant names the intent. New normalizes it to an actual zero.
const ExplicitZero = -1

// DefaultConfig returns the standard 100 Gbps ToR configuration.
func DefaultConfig() Config {
	return Config{Port: TorPortProfile(100), LatencyNs: 300, EgressDepth: 256}
}

// TorPortProfile models one switch egress port at the given line rate: no
// scatter-gather (the switch forwards whole frames), a shallow forwarding
// pipeline, and an internal fabric that moves frames to the output queue
// faster than the line drains it (output-queued switches are built with
// internal speedup for exactly this reason).
func TorPortProfile(linkGbps float64) nic.Profile {
	return nic.Profile{
		Name:              fmt.Sprintf("ToR egress %gG", linkGbps),
		MaxSGEntries:      4,
		LinkGbps:          linkGbps,
		PerEntryDMANs:     0,
		PerPacketNs:       40,
		PacketOccupancyNs: 5,
		EntryOccupancyNs:  0,
		DMAGbps:           4 * linkGbps,
		MaxTxBurst:        8,
	}
}

// PortStats counts one switch-side port's traffic. In* counts frames the
// switch received from the attached endpoint; Out* counts frames forwarded
// *to* the endpoint (posted on this port as egress).
type PortStats struct {
	InFrames, InBytes   uint64
	OutFrames, OutBytes uint64
	// EgressDrops counts frames tail-dropped because this output queue was
	// at EgressDepth.
	EgressDrops uint64
	// DownedIngress counts frames that arrived from the endpoint while the
	// port was administratively down; DownedEgress counts frames that would
	// have been forwarded to the endpoint through a downed port. A flapped
	// port swallows traffic loudly — both sides of the flap are counted, so
	// frame conservation stays exact through any storm.
	DownedIngress uint64
	DownedEgress  uint64
	// MaxBacklog is the deepest this output queue got, in frames.
	MaxBacklog int
	// ContentionNs is the cumulative time forwarded frames waited at this
	// egress beyond the unloaded forwarding cost — the port-contention
	// signal the cluster experiment reports.
	ContentionNs float64
}

// swPort is one switch-side port and its output queue state.
type swPort struct {
	addr        byte
	link        *nic.Port // switch-side end of the link to the endpoint
	outstanding int       // frames posted but not yet off the wire
	adminDown   bool      // administratively downed (port flap)
	stats       PortStats
}

// Switch is the ToR component.
type Switch struct {
	eng    *sim.Engine
	cfg    Config
	ports  []*swPort
	byAddr [256]*swPort

	// misrouted counts frames whose destination byte matched no attached
	// port (or runt frames too short to carry an address).
	misrouted uint64
}

// New builds a switch on eng. Zero-valued Config fields take defaults;
// negative values (ExplicitZero) normalize to an actual zero.
func New(eng *sim.Engine, cfg Config) *Switch {
	if cfg.Port.Name == "" {
		cfg.Port = TorPortProfile(100)
	}
	switch {
	case cfg.LatencyNs < 0:
		cfg.LatencyNs = 0
	case cfg.LatencyNs == 0:
		cfg.LatencyNs = 300
	}
	switch {
	case cfg.EgressDepth < 0:
		cfg.EgressDepth = 0
	case cfg.EgressDepth == 0:
		cfg.EgressDepth = 256
	}
	return &Switch{eng: eng, cfg: cfg}
}

// PlugIn attaches one endpoint: it creates a link between a fresh
// endpoint-side port (with the given NIC profile and one-way propagation
// delay) and a fresh switch-side port, and returns the endpoint port plus
// the fabric address the switch will route to it. Addresses start at 1;
// 0 stays reserved as "unaddressed" so legacy single-link frames (which
// carry zeroed headers) are visibly unroutable rather than silently
// delivered to the first endpoint.
func (s *Switch) PlugIn(prof nic.Profile, propagation sim.Time) (*nic.Port, byte) {
	return s.PlugInOn(s.eng, prof, propagation)
}

// PlugInOn is PlugIn with the endpoint-side port on its own engine — the
// partitioned topology builder places each endpoint on its partition's
// shard while the switch-side ports stay on the switch's shard. With
// epEng == the switch's engine this is exactly PlugIn.
func (s *Switch) PlugInOn(epEng *sim.Engine, prof nic.Profile, propagation sim.Time) (*nic.Port, byte) {
	if len(s.ports) >= 255 {
		panic("fabric: switch port space exhausted")
	}
	addr := byte(len(s.ports) + 1)
	ep, sw := nic.LinkOn(epEng, s.eng, prof, s.cfg.Port, propagation)
	p := &swPort{addr: addr, link: sw}
	sw.SetHandler(func(f *nic.Frame) { s.ingress(p, f) })
	// The switch queues f.Data for egress (store-and-forward); the sending
	// NIC must not recycle delivered frame buffers.
	sw.RetainsRx = true
	sw.Observer = func(rec nic.TxRecord) { s.egressDone(p, rec) }
	s.ports = append(s.ports, p)
	s.byAddr[addr] = p
	return ep, addr
}

// ingress routes one frame arriving from the endpoint behind p.
func (s *Switch) ingress(p *swPort, f *nic.Frame) {
	p.stats.InFrames++
	p.stats.InBytes += uint64(len(f.Data))
	if p.adminDown {
		p.stats.DownedIngress++
		return
	}
	if len(f.Data) <= netstack.HdrDstOff {
		s.misrouted++
		return
	}
	out := s.byAddr[f.Data[netstack.HdrDstOff]]
	if out == nil {
		s.misrouted++
		return
	}
	data := f.Data
	s.eng.After(sim.FromNanos(s.cfg.LatencyNs), func() { s.forward(out, data) })
}

// forward posts one frame on the egress port q, or tail-drops it when the
// output queue is full.
func (s *Switch) forward(q *swPort, data []byte) {
	if q.adminDown {
		q.stats.DownedEgress++
		return
	}
	if q.outstanding >= s.cfg.EgressDepth {
		q.stats.EgressDrops++
		return
	}
	err := q.link.Send([]nic.SGEntry{{Data: data}})
	if err != nil {
		// Only possible if an endpoint somehow sourced a frame the egress
		// port cannot carry; account it as an egress drop, never panic the
		// fabric mid-run.
		q.stats.EgressDrops++
		return
	}
	q.outstanding++
	if q.outstanding > q.stats.MaxBacklog {
		q.stats.MaxBacklog = q.outstanding
	}
	q.stats.OutFrames++
	q.stats.OutBytes += uint64(len(data))
}

// egressDone observes one forwarded frame's transmit record: it drains the
// output-queue bound when the frame leaves the wire and accumulates the
// port-contention time (actual post-to-wire-exit time minus the unloaded
// forwarding cost of a frame that size).
func (s *Switch) egressDone(q *swPort, rec nic.TxRecord) {
	wait := float64(rec.TxDone-rec.Posted)/float64(sim.Nanosecond) -
		unloadedNs(s.cfg.Port, rec.Bytes, rec.Entries)
	if wait > 0 {
		q.stats.ContentionNs += wait
	}
	s.eng.At(rec.TxDone, func() { q.outstanding-- })
}

// unloadedNs returns the post-to-wire-exit time of a lone frame on an idle
// port: doorbell + per-entry + DMA occupancy, plus pipeline latency, plus
// wire serialization — the same terms nic.Port charges, with no queueing.
func unloadedNs(prof nic.Profile, bytes, entries int) float64 {
	db := prof.DoorbellNs
	if db < 0 { // ExplicitZero: genuinely free doorbell
		db = 0
	} else if db == 0 {
		db = prof.PacketOccupancyNs
	}
	occ := db + prof.EntryOccupancyNs*float64(entries) + float64(bytes)*8/prof.DMAGbps
	lat := prof.PerPacketNs + prof.PerEntryDMANs*float64(entries)
	wire := float64(bytes) * 8 / prof.LinkGbps
	return occ + lat + wire
}

// Ports returns the attached fabric addresses in plug-in order.
func (s *Switch) Ports() []byte {
	addrs := make([]byte, len(s.ports))
	for i, p := range s.ports {
		addrs[i] = p.addr
	}
	return addrs
}

// SetPortAdmin flips the administrative state of the port at addr — the
// fault layer's port-flap primitive. While down, frames arriving from the
// endpoint and frames to be forwarded to it are counted
// (DownedIngress/DownedEgress) and discarded: a flap loses traffic
// visibly, never silently. Frames already committed to the egress link
// when the port goes down finish transmitting, like a real cut mid-frame
// finishing from the MAC's FIFO. Unknown addresses are ignored.
func (s *Switch) SetPortAdmin(addr byte, up bool) {
	if p := s.byAddr[addr]; p != nil {
		p.adminDown = !up
	}
}

// PortAdminUp reports the administrative state of the port at addr (true
// for unknown addresses, which cannot be downed).
func (s *Switch) PortAdminUp(addr byte) bool {
	if p := s.byAddr[addr]; p != nil {
		return !p.adminDown
	}
	return true
}

// LinkPort exposes the switch-side nic.Port of the link to the endpoint at
// addr, so link-level adversaries (faults.Apply) can attach per-port loss,
// corruption or reordering inside a fabric topology instead of only on
// point-to-point pairs. Nil for unknown addresses.
func (s *Switch) LinkPort(addr byte) *nic.Port {
	if p := s.byAddr[addr]; p != nil {
		return p.link
	}
	return nil
}

// Stats returns the counters of the port at addr (zero stats for an
// unknown address).
func (s *Switch) Stats(addr byte) PortStats {
	if p := s.byAddr[addr]; p != nil {
		return p.stats
	}
	return PortStats{}
}

// TotalStats sums every port's counters.
func (s *Switch) TotalStats() PortStats {
	var t PortStats
	for _, p := range s.ports {
		t.InFrames += p.stats.InFrames
		t.InBytes += p.stats.InBytes
		t.OutFrames += p.stats.OutFrames
		t.OutBytes += p.stats.OutBytes
		t.EgressDrops += p.stats.EgressDrops
		t.DownedIngress += p.stats.DownedIngress
		t.DownedEgress += p.stats.DownedEgress
		t.ContentionNs += p.stats.ContentionNs
		if p.stats.MaxBacklog > t.MaxBacklog {
			t.MaxBacklog = p.stats.MaxBacklog
		}
	}
	return t
}

// Misrouted returns the count of frames dropped for want of a route.
func (s *Switch) Misrouted() uint64 { return s.misrouted }
