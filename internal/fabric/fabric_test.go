package fabric

import (
	"bytes"
	"fmt"
	"testing"

	"cornflakes/internal/netstack"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

// frame builds a minimal addressed frame: the netstack header shape (42
// bytes, marker + dst + src) followed by payload.
func frame(dst, src byte, payload []byte) []byte {
	f := make([]byte, netstack.PacketHeaderLen+len(payload))
	f[0] = 0x42
	f[netstack.HdrDstOff] = dst
	f[netstack.HdrSrcOff] = src
	copy(f[netstack.PacketHeaderLen:], payload)
	return f
}

func TestSwitchRoutesByAddress(t *testing.T) {
	eng := sim.NewEngine()
	sw := New(eng, Config{})
	epA, addrA := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	epB, addrB := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	epC, _ := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	if addrA == addrB || addrA == 0 || addrB == 0 {
		t.Fatalf("bad addresses %d, %d", addrA, addrB)
	}

	var gotB, gotC [][]byte
	epB.SetHandler(func(f *nic.Frame) { gotB = append(gotB, append([]byte(nil), f.Data...)) })
	epC.SetHandler(func(f *nic.Frame) { gotC = append(gotC, append([]byte(nil), f.Data...)) })

	sent := frame(addrB, addrA, []byte("hello shard B"))
	if err := epA.Send([]nic.SGEntry{{Data: sent}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if len(gotB) != 1 {
		t.Fatalf("B received %d frames, want 1", len(gotB))
	}
	if len(gotC) != 0 {
		t.Fatalf("C received %d frames, want 0", len(gotC))
	}
	if !bytes.Equal(gotB[0], sent) {
		t.Error("frame bytes corrupted in transit")
	}
	if st := sw.Stats(addrA); st.InFrames != 1 {
		t.Errorf("ingress count on A's port = %d, want 1", st.InFrames)
	}
	if st := sw.Stats(addrB); st.OutFrames != 1 {
		t.Errorf("egress count on B's port = %d, want 1", st.OutFrames)
	}
	if sw.Misrouted() != 0 {
		t.Errorf("misrouted = %d, want 0", sw.Misrouted())
	}
}

func TestSwitchDropsUnroutable(t *testing.T) {
	eng := sim.NewEngine()
	sw := New(eng, Config{})
	epA, addrA := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	epB, _ := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	received := 0
	epB.SetHandler(func(f *nic.Frame) { received++ })

	// Address 0 is reserved-unroutable; 200 is unassigned.
	epA.Send([]nic.SGEntry{{Data: frame(0, addrA, []byte("nowhere"))}})
	epA.Send([]nic.SGEntry{{Data: frame(200, addrA, []byte("nobody"))}})
	eng.Run()

	if received != 0 {
		t.Errorf("unroutable frames delivered: %d", received)
	}
	if sw.Misrouted() != 2 {
		t.Errorf("misrouted = %d, want 2", sw.Misrouted())
	}
}

// Many senders converging on one egress port must queue behind each other
// at that port's line rate: the fabric's whole reason to exist.
func TestSwitchEgressContention(t *testing.T) {
	eng := sim.NewEngine()
	sw := New(eng, Config{})
	const senders = 4
	var eps []*nic.Port
	var addrs []byte
	for i := 0; i < senders; i++ {
		ep, a := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
		eps = append(eps, ep)
		addrs = append(addrs, a)
	}
	hot, hotAddr := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	var arrivals []sim.Time
	hot.SetHandler(func(f *nic.Frame) { arrivals = append(arrivals, eng.Now()) })

	const perSender = 25
	payload := make([]byte, 4000)
	for i, ep := range eps {
		for k := 0; k < perSender; k++ {
			if err := ep.Send([]nic.SGEntry{{Data: frame(hotAddr, addrs[i], payload)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Run()

	if len(arrivals) != senders*perSender {
		t.Fatalf("delivered %d frames, want %d", len(arrivals), senders*perSender)
	}
	st := sw.Stats(hotAddr)
	if st.OutFrames != senders*perSender {
		t.Errorf("egress frames = %d", st.OutFrames)
	}
	if st.MaxBacklog < 2 {
		t.Errorf("max backlog = %d, want ≥ 2 under 4-way convergence", st.MaxBacklog)
	}
	if st.ContentionNs <= 0 {
		t.Errorf("contention = %v ns, want > 0 under convergence", st.ContentionNs)
	}
	// The cold senders' own egress queues saw nothing.
	for _, a := range addrs {
		if cs := sw.Stats(a); cs.OutFrames != 0 || cs.ContentionNs != 0 {
			t.Errorf("cold port %d has egress traffic: %+v", a, cs)
		}
	}
}

func TestSwitchBoundedEgressQueue(t *testing.T) {
	eng := sim.NewEngine()
	// A 10G egress fed by a 100G sender: the output queue must fill and
	// tail-drop once it hits the 4-frame bound.
	sw := New(eng, Config{Port: TorPortProfile(10), EgressDepth: 4})
	src, srcAddr := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	dst, dstAddr := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	received := 0
	dst.SetHandler(func(f *nic.Frame) { received++ })

	const blast = 80
	payload := make([]byte, 8000)
	for k := 0; k < blast; k++ {
		if err := src.Send([]nic.SGEntry{{Data: frame(dstAddr, srcAddr, payload)}}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()

	st := sw.Stats(dstAddr)
	if st.EgressDrops == 0 {
		t.Error("no egress drops despite 80-frame blast into a 4-deep queue")
	}
	if uint64(received) != st.OutFrames {
		t.Errorf("delivered %d but egress posted %d", received, st.OutFrames)
	}
	if got := st.OutFrames + st.EgressDrops; got != blast {
		t.Errorf("out+drops = %d, want %d (conservation)", got, blast)
	}
	if st.MaxBacklog > 4 {
		t.Errorf("backlog %d exceeded the 4-frame bound", st.MaxBacklog)
	}
}

// An admin-downed port swallows traffic loudly in both directions: frames
// from the endpoint count as DownedIngress, frames to it as DownedEgress,
// and the handler is never invoked — then delivery resumes after re-up.
func TestSwitchAdminDown(t *testing.T) {
	eng := sim.NewEngine()
	sw := New(eng, Config{})
	epA, addrA := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	epB, addrB := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	received := 0
	epB.SetHandler(func(f *nic.Frame) { received++ })

	if !sw.PortAdminUp(addrA) || !sw.PortAdminUp(addrB) {
		t.Fatal("ports should start admin-up")
	}

	// Down A's port: A's sends die at ingress.
	sw.SetPortAdmin(addrA, false)
	if sw.PortAdminUp(addrA) {
		t.Fatal("PortAdminUp after SetPortAdmin(false)")
	}
	epA.Send([]nic.SGEntry{{Data: frame(addrB, addrA, []byte("into the void"))}})
	eng.Run()
	if received != 0 {
		t.Errorf("frame delivered through a downed ingress: %d", received)
	}
	sa := sw.Stats(addrA)
	if sa.DownedIngress != 1 || sa.InFrames != 1 {
		t.Errorf("A stats = %+v, want InFrames=1 DownedIngress=1", sa)
	}

	// Re-up A, down B: the frame routes but dies at B's egress.
	sw.SetPortAdmin(addrA, true)
	sw.SetPortAdmin(addrB, false)
	epA.Send([]nic.SGEntry{{Data: frame(addrB, addrA, []byte("still lost"))}})
	eng.Run()
	if received != 0 {
		t.Errorf("frame delivered through a downed egress: %d", received)
	}
	if sb := sw.Stats(addrB); sb.DownedEgress != 1 {
		t.Errorf("B stats = %+v, want DownedEgress=1", sb)
	}

	// Both up again: traffic flows.
	sw.SetPortAdmin(addrB, true)
	epA.Send([]nic.SGEntry{{Data: frame(addrB, addrA, []byte("back online"))}})
	eng.Run()
	if received != 1 {
		t.Errorf("delivered %d after re-up, want 1", received)
	}

	// Conservation across the whole episode.
	ts := sw.TotalStats()
	// 3 in = 1 downed-in + 1 downed-out + 1 forwarded.
	if got := ts.DownedIngress + ts.DownedEgress + ts.OutFrames; got != ts.InFrames {
		t.Errorf("conservation: in=%d downedIn=%d downedOut=%d out=%d",
			ts.InFrames, ts.DownedIngress, ts.DownedEgress, ts.OutFrames)
	}

	// Unknown addresses are inert.
	sw.SetPortAdmin(200, false)
	if !sw.PortAdminUp(200) {
		t.Error("unknown address reports admin-down")
	}
	if sw.LinkPort(200) != nil {
		t.Error("LinkPort for unknown address should be nil")
	}
	if sw.LinkPort(addrB) == nil {
		t.Error("LinkPort for a known address should be non-nil")
	}
}

func TestSwitchDeterministic(t *testing.T) {
	run := func() string {
		eng := sim.NewEngine()
		sw := New(eng, Config{EgressDepth: 8})
		var eps []*nic.Port
		var addrs []byte
		for i := 0; i < 3; i++ {
			ep, a := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
			eps = append(eps, ep)
			addrs = append(addrs, a)
		}
		for i, ep := range eps {
			for k := 0; k < 30; k++ {
				target := addrs[(i+1+k)%3]
				ep.Send([]nic.SGEntry{{Data: frame(target, addrs[i], make([]byte, 100+i*13+k*7))}})
			}
		}
		eng.Run()
		out := ""
		for _, a := range sw.Ports() {
			out += fmt.Sprintf("%d:%+v\n", a, sw.Stats(a))
		}
		return out + fmt.Sprintf("mis=%d total=%+v", sw.Misrouted(), sw.TotalStats())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("switch stats differ across identical runs:\n%s\n----\n%s", a, b)
	}
}

// deliveryTime sends one frame A→B through a switch built with cfg and
// returns the simulated time at which B's handler ran.
func deliveryTime(t *testing.T, cfg Config) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	sw := New(eng, cfg)
	epA, addrA := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	epB, addrB := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	var at sim.Time
	epB.SetHandler(func(f *nic.Frame) { at = eng.Now() })
	if err := epA.Send([]nic.SGEntry{{Data: frame(addrB, addrA, []byte("probe"))}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if at == 0 {
		t.Fatal("frame was not delivered")
	}
	return at
}

// TestConfigExplicitZeroLatency is the regression test for the explicit-zero
// config bug: LatencyNs == 0 means "unset, use 300 ns", so a deliberately
// zero-latency cut-through stage was silently inflated by the default. The
// ExplicitZero sentinel must yield a switch that is exactly the 300 ns
// default faster than the zero-value config.
func TestConfigExplicitZeroLatency(t *testing.T) {
	def := deliveryTime(t, Config{})                       // zero value → 300 ns default
	pinned := deliveryTime(t, Config{LatencyNs: 300})      // explicit default
	cut := deliveryTime(t, Config{LatencyNs: ExplicitZero}) // genuinely zero
	if def != pinned {
		t.Errorf("zero-value LatencyNs delivered at %v, explicit 300 at %v; zero must mean the 300 ns default", def, pinned)
	}
	if want := def - sim.FromNanos(300); cut != want {
		t.Errorf("ExplicitZero latency delivered at %v, want %v (exactly 300 ns ahead of the default)", cut, want)
	}
}

// TestConfigExplicitZeroEgressDepth pins the other sentinel: a zero-frame
// output queue (the degenerate bound a backpressure test wants) must
// tail-drop everything, while the zero value still means the 256 default.
func TestConfigExplicitZeroEgressDepth(t *testing.T) {
	eng := sim.NewEngine()
	sw := New(eng, Config{EgressDepth: ExplicitZero})
	epA, addrA := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	epB, addrB := sw.PlugIn(nic.MellanoxCX6(), sim.Microsecond)
	received := 0
	epB.SetHandler(func(f *nic.Frame) { received++ })
	for i := 0; i < 3; i++ {
		if err := epA.Send([]nic.SGEntry{{Data: frame(addrB, addrA, []byte("drop me"))}}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if received != 0 {
		t.Errorf("zero-depth egress delivered %d frames, want 0", received)
	}
	if st := sw.Stats(addrB); st.EgressDrops != 3 {
		t.Errorf("EgressDrops = %d, want all 3 frames tail-dropped", st.EgressDrops)
	}
}
