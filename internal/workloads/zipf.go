// Package workloads implements the paper's four workloads (§6.1.4) as
// deterministic generators: YCSB-C (Zipf 0.99), the Google fleetwide
// Protobuf bytes-size distribution, the Twitter cache trace mixture, and
// the Tragen-style CDN image-object distribution.
package workloads

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Zipf samples ranks in [0, n) with the YCSB zipfian generator (Gray et
// al.), which supports theta < 1 — the stdlib Zipf requires s > 1 and so
// cannot express the paper's 0.99 coefficient.
type Zipf struct {
	n               uint64
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
}

// NewZipf builds a generator over n items with the given theta (0 < theta
// < 1; YCSB-C uses 0.99).
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 || theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workloads: NewZipf(%d, %v)", n, theta))
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next samples a rank; rank 0 is the most popular item.
func (z *Zipf) Next(r *rand.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		// For u within one ulp of 1, eta*u-eta+1 rounds to exactly 1.0 and
		// the product lands on n, one past the valid range.
		rank = z.n - 1
	}
	return rank
}

// SizeDist is a piecewise-uniform size distribution defined by CDF points:
// P(size <= Bound[i]) = CDF[i]. Sampling picks the bucket by cumulative
// probability and draws uniformly within it.
type SizeDist struct {
	Bounds []int
	CDF    []float64
}

// Sample draws one size.
func (d *SizeDist) Sample(r *rand.Rand) int {
	u := r.Float64()
	lo := 1
	for i, c := range d.CDF {
		if u <= c {
			hi := d.Bounds[i]
			if hi <= lo {
				return hi
			}
			return lo + r.IntN(hi-lo+1)
		}
		lo = d.Bounds[i] + 1
	}
	return d.Bounds[len(d.Bounds)-1]
}

// FracAbove estimates P(size > threshold) analytically from the CDF.
func (d *SizeDist) FracAbove(threshold int) float64 {
	prev := 0.0
	lo := 1
	for i, c := range d.CDF {
		hi := d.Bounds[i]
		if threshold < lo {
			return 1 - prev
		}
		if threshold <= hi {
			// fraction of this bucket above the threshold
			frac := float64(hi-threshold) / float64(hi-lo+1)
			return (c-prev)*frac + (1 - c)
		}
		prev = c
		lo = hi + 1
	}
	return 0
}

// GoogleBytesDist approximates Figure 4c of Google's fleetwide Protobuf
// study as the paper uses it: "34% of the sampled field sizes are 8 bytes
// or less and 94.9% are 512 or less" (§6.1.4).
func GoogleBytesDist() *SizeDist {
	return &SizeDist{
		Bounds: []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192},
		CDF:    []float64{0.34, 0.46, 0.57, 0.67, 0.79, 0.885, 0.949, 0.975, 0.99, 0.997, 1.0},
	}
}

// TwitterValueDist approximates the Twitter cache trace #4 value sizes:
// a mixture of small and large buffers with about 32% of requests querying
// objects of 512 bytes or larger (§6.1.4).
func TwitterValueDist() *SizeDist {
	return &SizeDist{
		Bounds: []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192},
		CDF:    []float64{0.08, 0.16, 0.28, 0.44, 0.58, 0.68, 0.80, 0.89, 0.95, 1.0},
	}
}
