package workloads

import (
	"math"
	"math/rand/v2"
	"testing"
)

// maxSource drives rand.Float64 to its largest representable value
// ((2^53-1)/2^53), the edge where the YCSB formula can round to rank n.
type maxSource struct{}

func (maxSource) Uint64() uint64 { return ^uint64(0) }

func TestZipfMaxUniformStaysInRange(t *testing.T) {
	r := rand.New(maxSource{})
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 20} {
		z := NewZipf(n, 0.99)
		for i := 0; i < 4; i++ {
			if rank := z.Next(r); rank >= n {
				t.Fatalf("n=%d: rank %d out of range at u≈1", n, rank)
			}
		}
	}
}

func TestZipfSingleKey(t *testing.T) {
	z := NewZipf(1, 0.99)
	r := rand.New(rand.NewPCG(21, 21))
	for i := 0; i < 1000; i++ {
		if rank := z.Next(r); rank != 0 {
			t.Fatalf("n=1 must always sample rank 0, got %d", rank)
		}
	}
}

func TestZipfSmallN(t *testing.T) {
	for _, n := range []uint64{2, 3, 5} {
		z := NewZipf(n, 0.99)
		r := rand.New(rand.NewPCG(22, 22))
		counts := make([]int, n)
		const draws = 50000
		for i := 0; i < draws; i++ {
			rank := z.Next(r)
			if rank >= n {
				t.Fatalf("n=%d: rank %d out of range", n, rank)
			}
			counts[rank]++
		}
		for rank, c := range counts {
			if c == 0 {
				t.Errorf("n=%d: rank %d never sampled", n, rank)
			}
			if rank > 0 && counts[rank] > counts[0] {
				t.Errorf("n=%d: rank %d (%d) more popular than rank 0 (%d)",
					n, rank, counts[rank], counts[0])
			}
		}
	}
}

// Rank-frequency on a log-log scale should be a line of slope ≈ -theta:
// p(rank) ∝ rank^-theta is the defining property of the generator.
func TestZipfRankFrequencySlope(t *testing.T) {
	for _, theta := range []float64{0.6, 0.8, 0.99} {
		const n = 1000
		z := NewZipf(n, theta)
		r := rand.New(rand.NewPCG(23, 23))
		counts := make([]int, n)
		const draws = 400000
		for i := 0; i < draws; i++ {
			counts[z.Next(r)]++
		}
		// Least-squares fit of log(count) vs log(rank) over the head, where
		// counts are large enough for sampling noise to be small.
		var sx, sy, sxx, sxy float64
		m := 0
		for rank := 0; rank < 100; rank++ {
			if counts[rank] < 10 {
				continue
			}
			x := math.Log(float64(rank + 1))
			y := math.Log(float64(counts[rank]))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			m++
		}
		slope := (float64(m)*sxy - sx*sy) / (float64(m)*sxx - sx*sx)
		if math.Abs(slope+theta) > 0.12 {
			t.Errorf("theta=%v: rank-frequency slope = %v, want ≈ %v", theta, slope, -theta)
		}
	}
}

// The identity of the hot keys is a property of the distribution, not the
// seed: any seed must agree on which ranks dominate. The cluster hot-shard
// check leans on this — shard 0 stays hot no matter the per-client seeds.
func TestZipfHotSetStableUnderReseeding(t *testing.T) {
	const n = 500
	z := NewZipf(n, 0.99)
	for _, seed := range []uint64{1, 7, 99, 12345} {
		r := rand.New(rand.NewPCG(seed, seed^0xABCD))
		counts := make([]int, n)
		const draws = 120000
		for i := 0; i < draws; i++ {
			counts[z.Next(r)]++
		}
		for rank := 1; rank < 3; rank++ {
			if counts[rank] >= counts[rank-1] {
				t.Errorf("seed %d: rank %d (%d) out-drew rank %d (%d)",
					seed, rank, counts[rank], rank-1, counts[rank-1])
			}
		}
		top3 := counts[0] + counts[1] + counts[2]
		for rank := 3; rank < n; rank++ {
			if counts[rank] > counts[2] {
				t.Errorf("seed %d: rank %d (%d) broke into the top-3 (3rd = %d)",
					seed, rank, counts[rank], counts[2])
			}
		}
		if frac := float64(top3) / draws; frac < 0.15 {
			t.Errorf("seed %d: top-3 fraction = %v, want > 0.15", seed, frac)
		}
	}
}

func TestYCSBTheta(t *testing.T) {
	y := NewYCSBTheta(400, 256, 2, 0.2)
	if y.Name() != "ycsb-256x2" {
		t.Errorf("name = %q", y.Name())
	}
	r := rand.New(rand.NewPCG(31, 31))
	counts := map[string]int{}
	const draws = 80000
	for i := 0; i < draws; i++ {
		counts[string(y.Next(r).Keys[0])]++
	}
	// theta=0.2 over 400 keys is near-uniform: no key should take even 2%.
	for k, c := range counts {
		if frac := float64(c) / draws; frac > 0.02 {
			t.Errorf("theta=0.2 key %q got %v of traffic, want near-uniform", k, frac)
		}
	}
}
