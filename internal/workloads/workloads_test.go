package workloads

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 0.99)
	r := rand.New(rand.NewPCG(1, 1))
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		rank := z.Next(r)
		if rank >= 1000 {
			t.Fatalf("rank %d out of range", rank)
		}
		counts[rank]++
	}
	// Rank 0 should dominate: with theta=0.99 over 1000 items, the top item
	// gets ≈13% of traffic.
	if frac := float64(counts[0]) / n; frac < 0.08 || frac > 0.2 {
		t.Errorf("rank-0 fraction = %v, want ~0.13", frac)
	}
	// Popularity must be monotone-ish: top 10 >> bottom 500.
	top := 0
	for _, c := range counts[:10] {
		top += c
	}
	bottom := 0
	for _, c := range counts[500:] {
		bottom += c
	}
	if top < bottom {
		t.Errorf("top-10 (%d) should exceed bottom-500 (%d)", top, bottom)
	}
}

func TestZipfDeterministic(t *testing.T) {
	draw := func() []uint64 {
		z := NewZipf(100, 0.99)
		r := rand.New(rand.NewPCG(7, 7))
		out := make([]uint64, 50)
		for i := range out {
			out[i] = z.Next(r)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zipf not deterministic")
		}
	}
}

func TestZipfInvalidParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 0.99) },
		func() { NewZipf(10, 0) },
		func() { NewZipf(10, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid params accepted")
				}
			}()
			f()
		}()
	}
}

func TestGoogleDistMatchesPaperFractions(t *testing.T) {
	d := GoogleBytesDist()
	r := rand.New(rand.NewPCG(2, 2))
	const n = 200000
	le8, le512 := 0, 0
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s <= 0 {
			t.Fatalf("non-positive size %d", s)
		}
		if s <= 8 {
			le8++
		}
		if s <= 512 {
			le512++
		}
	}
	// Paper: 34% ≤ 8 bytes, 94.9% ≤ 512 bytes.
	if f := float64(le8) / n; math.Abs(f-0.34) > 0.02 {
		t.Errorf("P(size<=8) = %v, want ~0.34", f)
	}
	if f := float64(le512) / n; math.Abs(f-0.949) > 0.02 {
		t.Errorf("P(size<=512) = %v, want ~0.949", f)
	}
}

func TestTwitterDistLargeFraction(t *testing.T) {
	d := TwitterValueDist()
	r := rand.New(rand.NewPCG(3, 3))
	const n = 200000
	big := 0
	for i := 0; i < n; i++ {
		if d.Sample(r) >= 512 {
			big++
		}
	}
	// Paper: about 32% of requests query objects ≥ 512 bytes.
	if f := float64(big) / n; math.Abs(f-0.32) > 0.03 {
		t.Errorf("P(size>=512) = %v, want ~0.32", f)
	}
}

func TestFracAbove(t *testing.T) {
	d := TwitterValueDist()
	if f := d.FracAbove(512); math.Abs(f-0.32) > 0.02 {
		t.Errorf("FracAbove(512) = %v", f)
	}
	if f := d.FracAbove(0); f != 1.0 {
		t.Errorf("FracAbove(0) = %v", f)
	}
	if f := d.FracAbove(8192); f != 0 {
		t.Errorf("FracAbove(max) = %v", f)
	}
}

func TestYCSB(t *testing.T) {
	y := NewYCSB(100, 512, 4)
	recs := y.Records()
	if len(recs) != 100 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, rec := range recs[:5] {
		if len(rec.Key) != 30 {
			t.Errorf("key width %d, want 30", len(rec.Key))
		}
		if len(rec.Vals) != 4 {
			t.Errorf("segments %d, want 4", len(rec.Vals))
		}
		for _, v := range rec.Vals {
			if len(v) != 512 {
				t.Errorf("segment size %d, want 512", len(v))
			}
		}
	}
	r := rand.New(rand.NewPCG(4, 4))
	req := y.Next(r)
	if req.Op != OpGetList || len(req.Keys) != 1 {
		t.Errorf("request = %+v", req)
	}
	if y.Name() != "ycsb-512x4" {
		t.Errorf("name = %q", y.Name())
	}
}

func TestGoogleWorkload(t *testing.T) {
	g := NewGoogle(200, 8, 1)
	recs := g.Records()
	if len(recs) != 200 {
		t.Fatal("wrong record count")
	}
	for _, rec := range recs {
		if len(rec.Vals) < 1 || len(rec.Vals) > 8 {
			t.Errorf("list length %d outside [1,8]", len(rec.Vals))
		}
		total := 0
		for _, v := range rec.Vals {
			total += len(v)
		}
		if total > 8000 {
			t.Errorf("object %d bytes exceeds MTU budget", total)
		}
		if len(rec.Key) != 64 {
			t.Errorf("key width %d, want 64", len(rec.Key))
		}
	}
	r := rand.New(rand.NewPCG(5, 5))
	if req := g.Next(r); req.Op != OpGetList {
		t.Error("google request op wrong")
	}
}

func TestTwitterWorkload(t *testing.T) {
	w := NewTwitter(500, 9)
	recs := w.Records()
	if len(recs) != 500 {
		t.Fatal("wrong record count")
	}
	r := rand.New(rand.NewPCG(6, 6))
	puts, gets := 0, 0
	for i := 0; i < 20000; i++ {
		req := w.Next(r)
		switch req.Op {
		case OpPut:
			puts++
			if len(req.Vals) != 1 || len(req.Vals[0]) == 0 {
				t.Fatal("put without value")
			}
		case OpGet:
			gets++
		default:
			t.Fatalf("unexpected op %v", req.Op)
		}
	}
	if f := float64(puts) / float64(puts+gets); math.Abs(f-0.08) > 0.01 {
		t.Errorf("put fraction = %v, want ~0.08", f)
	}
}

func TestCDNWorkload(t *testing.T) {
	c := NewCDN(300, 8192, 1<<20, 11)
	recs := c.Records()
	totalBytes, totalSegs := 0, 0
	for i, rec := range recs {
		objBytes := 0
		for _, v := range rec.Vals {
			if len(v) > 8192 {
				t.Errorf("segment larger than jumbo budget: %d", len(v))
			}
			objBytes += len(v)
		}
		if objBytes < 1000 {
			t.Errorf("object %d is %d bytes, below the 1000-byte floor", i, objBytes)
		}
		if c.SegmentsOf(i) != len(rec.Vals) {
			t.Errorf("SegmentsOf(%d) = %d, want %d", i, c.SegmentsOf(i), len(rec.Vals))
		}
		totalBytes += objBytes
		totalSegs += len(rec.Vals)
	}
	mean := float64(totalBytes) / float64(len(recs))
	if mean < 8000 || mean > 60000 {
		t.Errorf("mean object size = %v, want ≈20000", mean)
	}
	r := rand.New(rand.NewPCG(8, 8))
	req := c.Next(r)
	if req.Op != OpGetIndex || req.Index < 1 {
		t.Errorf("cdn request = %+v", req)
	}
}

func TestOpStrings(t *testing.T) {
	for _, op := range []Op{OpGet, OpGetM, OpGetList, OpGetIndex, OpPut} {
		if op.String() == "" {
			t.Error("empty op string")
		}
	}
	if Op(77).String() != "Op(77)" {
		t.Error("unknown op string")
	}
}

// Determinism: generators built with the same seed produce identical
// records and request streams — the foundation of reproducible experiments.
func TestGeneratorsDeterministic(t *testing.T) {
	gA, gB := NewGoogle(100, 8, 42), NewGoogle(100, 8, 42)
	for i := range gA.Records() {
		a, b := gA.Records()[i], gB.Records()[i]
		if string(a.Key) != string(b.Key) || len(a.Vals) != len(b.Vals) {
			t.Fatalf("google record %d differs", i)
		}
		for j := range a.Vals {
			if len(a.Vals[j]) != len(b.Vals[j]) {
				t.Fatalf("google record %d val %d differs", i, j)
			}
		}
	}
	tA, tB := NewTwitter(100, 42), NewTwitter(100, 42)
	for i := range tA.Records() {
		if len(tA.Records()[i].Vals[0]) != len(tB.Records()[i].Vals[0]) {
			t.Fatalf("twitter record %d differs", i)
		}
	}
	cA, cB := NewCDN(50, 8000, 1<<20, 42), NewCDN(50, 8000, 1<<20, 42)
	for i := range cA.Records() {
		if cA.SegmentsOf(i) != cB.SegmentsOf(i) {
			t.Fatalf("cdn record %d differs", i)
		}
	}
	rA := rand.New(rand.NewPCG(9, 9))
	rB := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 100; i++ {
		qa, qb := tA.Next(rA), tB.Next(rB)
		if qa.Op != qb.Op || string(qa.Keys[0]) != string(qb.Keys[0]) {
			t.Fatalf("twitter request %d differs", i)
		}
	}
}
