package workloads

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
)

// Op enumerates the request types the key-value applications serve.
type Op int

const (
	OpGet      Op = iota // single value
	OpGetM               // multiple keys, multiple values
	OpGetList            // entire list/vector value for one key
	OpGetIndex           // one element of a vector value
	OpPut                // replace a value
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpGetM:
		return "getm"
	case OpGetList:
		return "getlist"
	case OpGetIndex:
		return "getindex"
	case OpPut:
		return "put"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is one client operation.
type Request struct {
	Op    Op
	Keys  [][]byte
	Vals  [][]byte // payloads for OpPut
	Index int      // for OpGetIndex
}

// KV is one preloaded record.
type KV struct {
	Key  []byte
	Vals [][]byte
}

// Generator produces the preload set and a request stream.
type Generator interface {
	Name() string
	// Records returns the data to preload into the store.
	Records() []KV
	// Next draws the next request.
	Next(r *rand.Rand) Request
}

// key formats the canonical fixed-width key used by all workloads: the
// paper's YCSB keys are 30–31 bytes, Google/CDN keys 64 bytes. Formatted by
// hand — one allocation, no fmt machinery — because preload emits one key
// per record and the request path one per draw.
func key(prefix string, width, i int) []byte {
	b := make([]byte, width)
	copy(b, prefix)
	v := i
	for j := width - 1; j >= len(prefix); j-- {
		b[j] = byte('0' + v%10)
		v /= 10
	}
	if v > 0 {
		// The id overflows the digit field; defer to fmt's widening rather
		// than silently truncating (no workload reaches this).
		return []byte(fmt.Sprintf("%s%0*d", prefix, width-len(prefix), i))
	}
	return b
}

// --- YCSB (read-only, §5 and §6.1.4) ---

// YCSB models the YCSB-C trace: nKeys keys, Zipf(0.99) popularity,
// constant-shape values of nSegments buffers of segmentSize bytes each.
// The §5 measurement study varies nSegments and segmentSize.
type YCSB struct {
	NKeys       int
	SegmentSize int
	NSegments   int
	zipf        *Zipf
	recOnce     sync.Once
	records     []KV
}

// NewYCSB builds the workload. Key width is 30 bytes as in the paper.
func NewYCSB(nKeys, segmentSize, nSegments int) *YCSB {
	return NewYCSBTheta(nKeys, segmentSize, nSegments, 0.99)
}

// NewYCSBTheta is NewYCSB with an explicit Zipf skew. The cluster
// experiment contrasts a near-uniform popularity (low theta) against the
// paper's 0.99 to isolate hot-shard effects from serialization effects.
func NewYCSBTheta(nKeys, segmentSize, nSegments int, theta float64) *YCSB {
	return &YCSB{
		NKeys:       nKeys,
		SegmentSize: segmentSize,
		NSegments:   nSegments,
		zipf:        NewZipf(uint64(nKeys), theta),
	}
}

func (y *YCSB) Name() string {
	return fmt.Sprintf("ycsb-%dx%d", y.SegmentSize, y.NSegments)
}

// Records memoizes the preload set: capacity probes rebuild the testbed —
// and re-preload — once per load point, and the record bytes are a pure
// function of the workload parameters. Consumers copy values into pinned
// store memory, so sharing one generation across probes is safe; sweep
// points run on worker goroutines, hence the Once.
func (y *YCSB) Records() []KV {
	y.recOnce.Do(y.buildRecords)
	return y.records
}

func (y *YCSB) buildRecords() {
	recs := make([]KV, y.NKeys)
	for i := range recs {
		k := key("user", 30, i)
		vals := make([][]byte, y.NSegments)
		for j := range vals {
			v := make([]byte, y.SegmentSize)
			for b := range v {
				v[b] = byte(i + j + b)
			}
			vals[j] = v
		}
		recs[i] = KV{Key: k, Vals: vals}
	}
	y.records = recs
}

func (y *YCSB) Next(r *rand.Rand) Request {
	k := key("user", 30, int(y.zipf.Next(r)))
	return Request{Op: OpGetList, Keys: [][]byte{k}}
}

// --- Google Protobuf bytes-size distribution (read-only, Table 1/Fig 6) ---

// Google serves linked lists whose element sizes are drawn from the Google
// fleetwide distribution; list lengths are uniform in [1, MaxVals]. Most
// fields are below 512 B, so Cornflakes mostly copies (§6.2.1).
type Google struct {
	NKeys   int
	MaxVals int
	dist    *SizeDist
	zipf    *Zipf
	records []KV
}

// NewGoogle builds the workload with the given list-length range (1, 1–4,
// 1–8, 1–16 in Table 1). Keys are 64 bytes. Objects exceeding the MTU are
// resampled, as in the paper.
func NewGoogle(nKeys, maxVals int, seed uint64) *Google {
	g := &Google{NKeys: nKeys, MaxVals: maxVals, dist: GoogleBytesDist(), zipf: NewZipf(uint64(nKeys), 0.99)}
	r := rand.New(rand.NewPCG(seed, 0x6006))
	const mtuBudget = 8000
	g.records = make([]KV, nKeys)
	for i := range g.records {
		k := key("gkey", 64, i)
		for {
			n := 1 + r.IntN(maxVals)
			vals := make([][]byte, n)
			total := 0
			for j := range vals {
				sz := g.dist.Sample(r)
				total += sz
				v := make([]byte, sz)
				for b := 0; b < len(v); b += 97 {
					v[b] = byte(i + j)
				}
				vals[j] = v
			}
			if total <= mtuBudget {
				g.records[i] = KV{Key: k, Vals: vals}
				break
			}
		}
	}
	return g
}

func (g *Google) Name() string { return fmt.Sprintf("google-1to%d", g.MaxVals) }

func (g *Google) Records() []KV { return g.records }

func (g *Google) Next(r *rand.Rand) Request {
	k := key("gkey", 64, int(g.zipf.Next(r)))
	return Request{Op: OpGetList, Keys: [][]byte{k}}
}

// --- Twitter cache trace (read-write, Fig 7/8/12) ---

// Twitter models cache trace #4: value sizes from a mixed distribution
// (≈32% of requests touch objects ≥512 B), 8% puts, Zipf popularity.
type Twitter struct {
	NKeys   int
	PutFrac float64
	dist    *SizeDist
	zipf    *Zipf
	records []KV
}

// NewTwitter builds the workload with the paper's 8% put fraction.
func NewTwitter(nKeys int, seed uint64) *Twitter {
	t := &Twitter{NKeys: nKeys, PutFrac: 0.08, dist: TwitterValueDist(), zipf: NewZipf(uint64(nKeys), 0.99)}
	r := rand.New(rand.NewPCG(seed, 0x7717))
	t.records = make([]KV, nKeys)
	for i := range t.records {
		sz := t.dist.Sample(r)
		v := make([]byte, sz)
		for b := 0; b < len(v); b += 89 {
			v[b] = byte(i)
		}
		t.records[i] = KV{Key: key("tw", 30, i), Vals: [][]byte{v}}
	}
	return t
}

func (t *Twitter) Name() string { return "twitter" }

func (t *Twitter) Records() []KV { return t.records }

func (t *Twitter) Next(r *rand.Rand) Request {
	k := key("tw", 30, int(t.zipf.Next(r)))
	if r.Float64() < t.PutFrac {
		v := make([]byte, t.dist.Sample(r))
		for b := 0; b < len(v); b += 83 {
			v[b] = 0xD1
		}
		return Request{Op: OpPut, Keys: [][]byte{k}, Vals: [][]byte{v}}
	}
	return Request{Op: OpGet, Keys: [][]byte{k}}
}

// --- CDN image-object distribution (read-only, Table 2/Fig 11) ---

// CDN models the Tragen "image" trace class: large objects (1 kB up to
// many MB, mean ≈20 kB) stored as vectors of jumbo-frame-sized sub-objects.
// A client request fetches one sub-object; the harness issues all
// sub-objects of an object sequentially and reports whole objects (§6.1.4).
type CDN struct {
	NObjects int
	SegSize  int
	records  []KV
	segCount []int
	zipf     *Zipf
}

// NewCDN builds the workload. maxObject caps the tail (the paper's trace
// reaches 116 MB; the simulated store scales the tail down, preserving the
// "every field ≥ 1 kB, mean ≈ 20 kB" property that drives the result).
func NewCDN(nObjects, segSize, maxObject int, seed uint64) *CDN {
	c := &CDN{NObjects: nObjects, SegSize: segSize, zipf: NewZipf(uint64(nObjects), 0.99)}
	r := rand.New(rand.NewPCG(seed, 0xCD17))
	c.records = make([]KV, nObjects)
	c.segCount = make([]int, nObjects)
	for i := range c.records {
		size := sampleLogNormalSize(r, maxObject)
		nSegs := (size + segSize - 1) / segSize
		vals := make([][]byte, nSegs)
		rem := size
		for j := range vals {
			n := segSize
			if rem < n {
				n = rem
			}
			v := make([]byte, n)
			for b := 0; b < len(v); b += 101 {
				v[b] = byte(i + j)
			}
			vals[j] = v
			rem -= n
		}
		c.records[i] = KV{Key: key("cdn", 64, i), Vals: vals}
		c.segCount[i] = nSegs
	}
	return c
}

// sampleLogNormalSize draws an object size with median ≈8 kB and a heavy
// tail, clipped to [1000, maxObject]; the resulting mean is ≈20 kB for
// maxObject ≥ 1 MB, matching the Tragen image class as the paper reports.
func sampleLogNormalSize(r *rand.Rand, maxObject int) int {
	s := int(8900 * expApprox(r.NormFloat64()*1.1))
	if s < 1000 {
		s = 1000
	}
	if s > maxObject {
		s = maxObject
	}
	return s
}

func expApprox(x float64) float64 { return math.Exp(x) }

func (c *CDN) Name() string { return "cdn-image" }

func (c *CDN) Records() []KV { return c.records }

// Next returns a request for one whole object: the harness expands it into
// per-sub-object requests.
func (c *CDN) Next(r *rand.Rand) Request {
	i := int(c.zipf.Next(r))
	return Request{Op: OpGetIndex, Keys: [][]byte{key("cdn", 64, i)}, Index: c.segCount[i]}
}

// SegmentsOf returns the number of sub-objects of object i.
func (c *CDN) SegmentsOf(i int) int { return c.segCount[i] }
