package netstack

import (
	"bytes"
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

type node struct {
	alloc *mem.Allocator
	arena *mem.Arena
	meter *costmodel.Meter
	ctx   *core.Ctx
}

func newNode() *node {
	alloc := mem.NewAllocator()
	arena := mem.NewArena(64 << 10)
	meter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	return &node{alloc: alloc, arena: arena, meter: meter, ctx: core.NewCtx(alloc, arena, meter)}
}

func testSchema() *core.Schema {
	return &core.Schema{Name: "GetM", Fields: []core.Field{
		{Name: "id", Kind: core.KindInt},
		{Name: "keys", Kind: core.KindBytesList},
		{Name: "vals", Kind: core.KindBytesList},
	}}
}

func udpPair(prof nic.Profile) (*sim.Engine, *UDP, *UDP, *node, *node) {
	eng := sim.NewEngine()
	pa, pb := nic.Link(eng, prof, prof, sim.FromNanos(1000))
	na, nb := newNode(), newNode()
	ua := NewUDP(eng, pa, na.alloc, na.meter)
	ub := NewUDP(eng, pb, nb.alloc, nb.meter)
	return eng, ua, ub, na, nb
}

func TestUDPSendObjectRoundTrip(t *testing.T) {
	eng, ua, ub, na, nb := udpPair(nic.MellanoxCX6())
	s := testSchema()

	val := na.alloc.Alloc(2048)
	for i := range val.Bytes() {
		val.Bytes()[i] = byte(i % 251)
	}
	msg := core.NewMessage(s, na.ctx)
	msg.SetInt(0, 77)
	msg.AppendBytes(1, na.ctx.NewCFPtr([]byte("some-key")))
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	if msg.Layout().NumZC != 1 {
		t.Fatal("expected one zero-copy entry")
	}

	var got *core.Message
	ub.SetRecvHandler(func(p *mem.Buf) {
		m, err := nb.ctx.Deserialize(s, p)
		if err != nil {
			t.Errorf("deserialize: %v", err)
			p.DecRef()
			return
		}
		got = m
	})
	if err := ua.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got == nil {
		t.Fatal("no message delivered")
	}
	if got.GetInt(0) != 77 {
		t.Errorf("id = %d", got.GetInt(0))
	}
	if string(got.GetBytesElem(1, 0)) != "some-key" {
		t.Errorf("key = %q", got.GetBytesElem(1, 0))
	}
	if !bytes.Equal(got.GetBytesElem(2, 0), val.Bytes()) {
		t.Error("value corrupted in flight")
	}
	if ua.TxZCEntries != 1 {
		t.Errorf("TxZCEntries = %d", ua.TxZCEntries)
	}
}

func TestUDPZeroCopyRefcountLifecycle(t *testing.T) {
	eng, ua, _, na, _ := udpPair(nic.MellanoxCX6())
	val := na.alloc.Alloc(1024)
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	if val.Refcount() != 2 { // app + CFPtr
		t.Fatalf("refcount = %d before send", val.Refcount())
	}
	if err := ua.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	// NIC's in-flight reference is held until DMA completes.
	if val.Refcount() != 3 {
		t.Fatalf("refcount = %d during flight, want 3", val.Refcount())
	}
	// The application can release immediately after send — this is the
	// use-after-free guarantee: the buffer stays alive for the DMA.
	msg.Release()
	if val.Refcount() != 2 {
		t.Fatalf("refcount = %d after app release, want 2", val.Refcount())
	}
	eng.Run()
	if val.Refcount() != 1 {
		t.Errorf("refcount = %d after DMA completion, want 1 (app's own)", val.Refcount())
	}
}

func TestUDPFreeBeforeDMAKeepsDataIntact(t *testing.T) {
	eng, ua, ub, na, _ := udpPair(nic.MellanoxCX6())
	val := na.alloc.Alloc(600)
	for i := range val.Bytes() {
		val.Bytes()[i] = 0x5A
	}
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	want := append([]byte(nil), val.Bytes()...)

	var gotPayload []byte
	ub.SetRecvHandler(func(p *mem.Buf) {
		gotPayload = append([]byte(nil), p.Bytes()...)
		p.DecRef()
	})
	ua.SendObject(msg)
	// App frees both its own handle and the message's references before the
	// DMA event fires. Allocating and scribbling over new buffers must not
	// corrupt the in-flight data, because the slot cannot be reused yet.
	msg.Release()
	val.DecRef()
	scribble := na.alloc.Alloc(600)
	for i := range scribble.Bytes() {
		scribble.Bytes()[i] = 0xFF
	}
	eng.Run()
	if gotPayload == nil {
		t.Fatal("nothing delivered")
	}
	if !bytes.Contains(gotPayload, want) {
		t.Error("in-flight data was corrupted after app free (use-after-free)")
	}
}

func TestUDPObjectTooLarge(t *testing.T) {
	_, ua, _, na, _ := udpPair(nic.MellanoxCX6())
	val := na.alloc.Alloc(10000)
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	err := ua.SendObject(msg)
	if _, ok := err.(*ErrTooLarge); !ok {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestUDPSGLimitOverflow(t *testing.T) {
	// Intel E810: 8 entries max. An object with 10 zero-copy fields must
	// still arrive intact via the extension-buffer fallback.
	eng, ua, ub, na, nb := udpPair(nic.IntelE810())
	s := testSchema()
	msg := core.NewMessage(s, na.ctx)
	var want [][]byte
	for i := 0; i < 10; i++ {
		v := na.alloc.Alloc(600)
		for j := range v.Bytes() {
			v.Bytes()[j] = byte(i)
		}
		want = append(want, append([]byte(nil), v.Bytes()...))
		msg.AppendBytes(2, na.ctx.NewCFPtr(v.Bytes()))
	}
	var got *core.Message
	ub.SetRecvHandler(func(p *mem.Buf) {
		m, err := nb.ctx.Deserialize(s, p)
		if err != nil {
			t.Errorf("deserialize: %v", err)
			p.DecRef()
			return
		}
		got = m
	})
	if err := ua.SendObject(msg); err != nil {
		t.Fatalf("SendObject on E810: %v", err)
	}
	eng.Run()
	if got == nil {
		t.Fatal("not delivered")
	}
	for i := range want {
		if !bytes.Equal(got.GetBytesElem(2, i), want[i]) {
			t.Errorf("val %d corrupted", i)
		}
	}
}

func TestUDPSendObjectViaSGArrayEquivalent(t *testing.T) {
	send := func(viaArray bool) []byte {
		eng, ua, ub, na, _ := udpPair(nic.MellanoxCX6())
		s := testSchema()
		val := na.alloc.Alloc(1024)
		for i := range val.Bytes() {
			val.Bytes()[i] = byte(i)
		}
		msg := core.NewMessage(s, na.ctx)
		msg.SetInt(0, 5)
		msg.AppendBytes(1, na.ctx.NewCFPtr([]byte("k")))
		msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
		var got []byte
		ub.SetRecvHandler(func(p *mem.Buf) {
			got = append([]byte(nil), p.Bytes()...)
			p.DecRef()
		})
		var err error
		if viaArray {
			err = ua.SendObjectViaSGArray(msg)
		} else {
			err = ua.SendObject(msg)
		}
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return got
	}
	if !bytes.Equal(send(false), send(true)) {
		t.Error("SG-array path produced different wire bytes than serialize-and-send")
	}
}

func TestUDPSGArrayPathCostsMore(t *testing.T) {
	cost := func(viaArray bool) float64 {
		_, ua, _, na, _ := udpPair(nic.MellanoxCX6())
		val := na.alloc.Alloc(1024)
		msg := core.NewMessage(testSchema(), na.ctx)
		msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
		na.meter.Drain()
		if viaArray {
			ua.SendObjectViaSGArray(msg)
		} else {
			ua.SendObject(msg)
		}
		return na.meter.Drain()
	}
	if cost(true) <= cost(false) {
		t.Errorf("SG-array path (%.0f cy) should cost more than serialize-and-send (%.0f cy)",
			cost(true), cost(false))
	}
}

func TestUDPBaselineSendPaths(t *testing.T) {
	eng, ua, ub, na, _ := udpPair(nic.MellanoxCX6())
	var got [][]byte
	ub.SetRecvHandler(func(p *mem.Buf) {
		got = append(got, append([]byte(nil), p.Bytes()...))
		p.DecRef()
	})
	payload := []byte("contiguous-payload")
	if err := ua.SendContiguous(payload, mem.UnpinnedSimAddr(payload)); err != nil {
		t.Fatal(err)
	}
	if err := ua.SendWith(32, func(dst []byte, sim uint64) int {
		return copy(dst, "filled-directly")
	}); err != nil {
		t.Fatal(err)
	}
	segs := [][]byte{[]byte("seg-one|"), []byte("seg-two")}
	if err := ua.SendSegments(segs, []uint64{0x1000, 0x2000}); err != nil {
		t.Fatal(err)
	}
	pinned := na.alloc.Alloc(64)
	copy(pinned.Bytes(), "pinned-zero-copy")
	if err := ua.SendPinned([]*mem.Buf{pinned}, true); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %d payloads, want 4", len(got))
	}
	if string(got[0]) != "contiguous-payload" {
		t.Errorf("contiguous = %q", got[0])
	}
	if string(got[1]) != "filled-directly" {
		t.Errorf("sendwith = %q", got[1])
	}
	if string(got[2]) != "seg-one|seg-two" {
		t.Errorf("segments = %q", got[2])
	}
	if !bytes.HasPrefix(got[3], []byte("pinned-zero-copy")) {
		t.Errorf("pinned = %q", got[3])
	}
	if pinned.Refcount() != 1 {
		t.Errorf("pinned refcount = %d after completion", pinned.Refcount())
	}
}

func TestUDPSendPinnedRawVsSafeCost(t *testing.T) {
	cost := func(safe bool) float64 {
		_, ua, _, na, _ := udpPair(nic.MellanoxCX6())
		bufs := []*mem.Buf{na.alloc.Alloc(512), na.alloc.Alloc(512)}
		na.meter.Drain()
		ua.SendPinned(bufs, safe)
		return na.meter.Drain()
	}
	if cost(true) <= cost(false) {
		t.Error("safe scatter-gather should cost more than raw scatter-gather")
	}
}

// --- TCP ---

func tcpPair() (*sim.Engine, *TCPConn, *TCPConn, *node, *node, *nic.Port) {
	eng := sim.NewEngine()
	pa, pb := nic.Link(eng, nic.MellanoxCX6(), nic.MellanoxCX6(), sim.FromNanos(1000))
	na, nb := newNode(), newNode()
	ca := NewTCPConn(eng, pa, na.alloc, na.meter)
	cb := NewTCPConn(eng, pb, nb.alloc, nb.meter)
	return eng, ca, cb, na, nb, pa
}

func TestTCPInOrderDelivery(t *testing.T) {
	eng, ca, cb, na, _, _ := tcpPair()
	s := testSchema()
	var payloads [][]byte
	cb.SetRecvHandler(func(p *mem.Buf) {
		payloads = append(payloads, append([]byte(nil), p.Bytes()...))
		p.DecRef()
	})
	for i := 0; i < 5; i++ {
		msg := core.NewMessage(s, na.ctx)
		msg.SetInt(0, uint64(i))
		if err := ca.SendObject(msg); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(payloads) != 5 {
		t.Fatalf("delivered %d messages", len(payloads))
	}
	for i, p := range payloads {
		buf := newNode()
		b := buf.alloc.Alloc(len(p))
		copy(b.Bytes(), p)
		m, err := buf.ctx.Deserialize(s, b)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m.GetInt(0) != uint64(i) {
			t.Errorf("msg %d has id %d (out of order?)", i, m.GetInt(0))
		}
	}
	if ca.Unacked() != 0 {
		t.Errorf("unacked = %d after full run", ca.Unacked())
	}
	if ca.Retransmits != 0 {
		t.Errorf("unexpected retransmits: %d", ca.Retransmits)
	}
}

func TestTCPRetransmitOnLoss(t *testing.T) {
	eng, ca, cb, na, _, pa := tcpPair()
	var delivered [][]byte
	cb.SetRecvHandler(func(p *mem.Buf) {
		delivered = append(delivered, append([]byte(nil), p.Bytes()...))
		p.DecRef()
	})
	// Drop the first data frame only.
	drops := 0
	pa.InjectLoss = func(data []byte) bool {
		if drops == 0 && len(data) > TCPHeaderLen {
			drops++
			return true
		}
		return false
	}
	val := na.alloc.Alloc(2048)
	for i := range val.Bytes() {
		val.Bytes()[i] = 0x3C
	}
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	if err := ca.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	// Application releases immediately; retransmission must still have the
	// data because the connection retains references until ACK.
	msg.Release()
	eng.Run()
	if ca.Retransmits == 0 {
		t.Fatal("no retransmission happened")
	}
	if len(delivered) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(delivered))
	}
	if !bytes.Contains(delivered[0], val.Bytes()) {
		t.Error("retransmitted payload corrupted")
	}
	if val.Refcount() != 1 {
		t.Errorf("refcount = %d after ack, want 1", val.Refcount())
	}
	if ca.Unacked() != 0 {
		t.Error("segment still unacked after retransmission round")
	}
}

func TestTCPRefsHeldUntilAck(t *testing.T) {
	eng, ca, cb, na, _, _ := tcpPair()
	cb.SetRecvHandler(func(p *mem.Buf) { p.DecRef() })
	val := na.alloc.Alloc(1024)
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	ca.SendObject(msg)
	msg.Release()
	// Before any events: connection retention + NIC in-flight + app = 3.
	if val.Refcount() != 3 {
		t.Fatalf("refcount = %d right after send, want 3", val.Refcount())
	}
	eng.Run()
	// After ack: only the app's handle remains.
	if val.Refcount() != 1 {
		t.Errorf("refcount = %d after ack, want 1", val.Refcount())
	}
}

func TestTCPDuplicateDataReAcked(t *testing.T) {
	eng, ca, cb, na, _, pa := tcpPair()
	got := 0
	cb.SetRecvHandler(func(p *mem.Buf) { got++; p.DecRef() })
	// Drop the first ACK so the sender retransmits an already-delivered
	// segment; the receiver must not deliver it twice.
	ackDrops := 0
	pb := pa // sender side loss only affects data frames
	_ = pb
	cbPort := cb.Port
	cbPort.InjectLoss = func(data []byte) bool {
		if ackDrops == 0 && len(data) >= TCPHeaderLen && data[tcpOffFlags]&flagData == 0 {
			ackDrops++
			return true
		}
		return false
	}
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.SetInt(0, 1)
	ca.SendObject(msg)
	eng.Run()
	if got != 1 {
		t.Errorf("delivered %d times, want exactly once", got)
	}
	if cb.DupAcks == 0 {
		t.Error("receiver never re-acked the duplicate")
	}
	if ca.Retransmits == 0 {
		t.Error("sender never retransmitted after lost ack")
	}
}

func TestTCPSendContiguous(t *testing.T) {
	eng, ca, cb, _, _, _ := tcpPair()
	var got []byte
	cb.SetRecvHandler(func(p *mem.Buf) {
		got = append([]byte(nil), p.Bytes()...)
		p.DecRef()
	})
	payload := bytes.Repeat([]byte("fb"), 512)
	if err := ca.SendContiguous(payload, mem.UnpinnedSimAddr(payload)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Error("contiguous TCP payload corrupted")
	}
}

func TestTCPTooLarge(t *testing.T) {
	_, ca, _, na, _, _ := tcpPair()
	val := na.alloc.Alloc(9000)
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	if _, ok := ca.SendObject(msg).(*ErrTooLarge); !ok {
		t.Error("oversized TCP object accepted")
	}
}
