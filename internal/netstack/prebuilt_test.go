package netstack

import (
	"bytes"
	"testing"

	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
)

// SendPrebuilt must deliver its payload like SendContiguous does — the
// receiver cannot tell the paths apart.
func TestSendPrebuiltDelivers(t *testing.T) {
	eng, ua, ub, na, _ := udpPair(nic.MellanoxCX6())
	payload := []byte{0xEE, 1, 2, 3, 4, 5, 6, 7, 8}
	var got []byte
	ub.SetRecvHandler(func(p *mem.Buf) {
		got = append([]byte(nil), p.Bytes()...)
		p.DecRef()
	})
	if err := ua.SendPrebuilt(payload, mem.UnpinnedSimAddr(payload)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %x, want %x", got, payload)
	}
	if ua.TxPackets != 1 {
		t.Errorf("TxPackets = %d, want 1", ua.TxPackets)
	}
	if in := na.alloc.Stats().SlotsInUse; in != 0 {
		t.Errorf("%d TX slots still held after completion", in)
	}
}

// The point of the prebuilt path: a rejection reply must cost a small
// fraction of a regular contiguous send, or shedding cannot relieve an
// overloaded core.
func TestSendPrebuiltIsCheap(t *testing.T) {
	_, ua, _, na, _ := udpPair(nic.MellanoxCX6())
	payload := make([]byte, 9)

	na.meter.DrainTime()
	if err := ua.SendContiguous(payload, mem.UnpinnedSimAddr(payload)); err != nil {
		t.Fatal(err)
	}
	full := na.meter.DrainTime()

	if err := ua.SendPrebuilt(payload, mem.UnpinnedSimAddr(payload)); err != nil {
		t.Fatal(err)
	}
	cheap := na.meter.DrainTime()

	if cheap <= 0 {
		t.Fatal("prebuilt send charged nothing — shedding must not be free")
	}
	// The cold-cache payload copy dominates both paths, so the ratio is
	// ~3× rather than the descriptor amortization factor; half is the
	// threshold below which shedding stops paying for itself.
	if cheap*2 > full {
		t.Errorf("prebuilt send costs %v vs %v contiguous; want ≤ 1/2", cheap, full)
	}
}

// A capped-out pool fails the prebuilt send explicitly.
func TestSendPrebuiltNoMem(t *testing.T) {
	_, ua, _, na, _ := udpPair(nic.MellanoxCX6())
	na.alloc.SetCap(1)
	held := na.alloc.Alloc(64) // fill the only slot
	defer held.DecRef()
	if err := ua.SendPrebuilt(make([]byte, 9), 0); err == nil {
		t.Fatal("expected ErrNoMem with the pool capped out")
	}
	if ua.TxNoMem != 1 {
		t.Errorf("TxNoMem = %d, want 1", ua.TxNoMem)
	}
}
