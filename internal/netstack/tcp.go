package netstack

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
)

// TCPHeaderLen is Ethernet (14) + IPv4 (20) + TCP (20).
const TCPHeaderLen = 54

// TCP header field offsets within the frame (the rest of the 54 bytes model
// the usual MAC/IP fields).
const (
	tcpOffSeq   = 42
	tcpOffAck   = 46
	tcpOffFlags = 50
	flagData    = 1
	flagAck     = 2
)

// defaultRTO is the initial retransmission timeout. Datacenter RTTs here
// are a few microseconds, so a fixed small RTO with exponential backoff is
// adequate for the echo experiments and loss tests.
const defaultRTO = 100 * sim.Microsecond

// maxRTO caps the exponential backoff. Without a cap, a loss burst of k
// frames pushes the next retransmit out by defaultRTO·2^k — tens of
// virtual seconds after a dozen losses — so a connection that could
// recover in microseconds appears stalled. 1.6 ms is 4 doublings: deep
// enough to shed load under persistent loss, shallow enough that recovery
// after a burst is prompt.
const maxRTO = 1600 * sim.Microsecond

// Retransmission state machine (RTO arm / re-arm / cancel rules)
//
// The connection keeps go-back-N state: unacked[0] is the oldest
// unacknowledged segment and the only one the timer ever retransmits.
// The RTO timer obeys four rules:
//
//  1. Arm: armRTO schedules onRTO after the current backoff iff no timer
//     is pending and at least one segment is unacked. It is called after
//     every successful first transmission and after every cumulative-ack
//     advance.
//  2. Fire: onRTO retransmits unacked[0], doubles the backoff (capped at
//     maxRTO), and ALWAYS re-arms — even when the retransmit itself fails
//     (NIC TX ring full, gather-list overflow). A failed retransmit is
//     indistinguishable from a lost one; the next timeout retries it.
//     Re-arming only on success (the pre-fix behaviour) deadlocks the
//     connection: no timer, no future transmission, unacked forever.
//  3. Cancel + re-arm: when a cumulative ack advances sendUna, the backoff
//     resets to defaultRTO, the pending timer (timing the old oldest
//     segment) is cancelled, and armRTO starts a fresh timer iff segments
//     remain in flight.
//  4. Drain: when the last segment is acked, rule 3's armRTO finds
//     unacked empty and leaves the timer off — an idle connection
//     schedules no events, letting the simulation drain.

// segment is one in-flight TCP segment retained for retransmission.
type segment struct {
	seq    uint32
	length int
	// first is the DMA buffer holding packet header + object header +
	// copied data; zc are the zero-copy application buffers. The
	// connection holds one reference on each until the segment is
	// cumulatively acknowledged — this is the "transmission (and potential
	// re-transmission)" extension of the use-after-free guarantee (§3).
	first *mem.Buf
	zc    []*mem.Buf
}

// TCPConn is one endpoint of a TCP-lite connection (a limited integration
// in the spirit of the paper's Demikernel TCP port, §4). Segments carry
// whole messages: one SendObject produces one segment, and in-order
// delivery hands each segment's payload to the receive handler. Go-back-N:
// out-of-order segments are dropped and recovered by retransmission.
type TCPConn struct {
	Eng   *sim.Engine
	Port  *nic.Port
	Alloc *mem.Allocator
	Meter *costmodel.Meter

	sendSeq  uint32
	sendUna  uint32
	recvSeq  uint32
	unacked  []*segment
	rto      sim.Time
	rtoTimer sim.Timer

	recv func(payload *mem.Buf)

	// OnRetransmit, when set, is called with the segment's message payload
	// just before each RTO retransmission, so a tracer can annotate the
	// request whose request or response frame was lost. The payload must
	// not be retained.
	OnRetransmit func(payload []byte)

	// Stats.
	TxSegments, RxSegments uint64
	Retransmits            uint64
	DupAcks                uint64
	// RtxSendErrors counts retransmission attempts the NIC refused; the
	// segment stays queued and the next RTO retries it.
	RtxSendErrors uint64
	// AckSendErrors counts ACK frames the NIC refused to post. The ACK is
	// simply not sent — the peer's retransmission will solicit another.
	AckSendErrors uint64
	// EmptyDataSegs counts received data-flagged segments with a
	// zero-length payload, which are dropped: they carry no sequence space
	// and a zero-byte RX buffer has no slot identity to deliver.
	EmptyDataSegs uint64
	// TxNoMem counts sends refused because the pinned pool could not
	// supply the segment's first DMA buffer; RxNoMem counts in-order data
	// segments dropped (without advancing recvSeq or acknowledging) for
	// want of an RX buffer — the peer's RTO retransmits them.
	TxNoMem, RxNoMem uint64
}

// NewTCPConn attaches a TCP endpoint to a NIC port. Both ends of a link
// must run TCP; the connection is modelled as pre-established.
func NewTCPConn(eng *sim.Engine, port *nic.Port, alloc *mem.Allocator, meter *costmodel.Meter) *TCPConn {
	c := &TCPConn{Eng: eng, Port: port, Alloc: alloc, Meter: meter, rto: defaultRTO}
	port.SetHandler(c.onFrame)
	return c
}

// SetRecvHandler installs the message payload handler (payload in a pinned
// RX buffer owned by the callee).
func (c *TCPConn) SetRecvHandler(fn func(payload *mem.Buf)) { c.recv = fn }

func (c *TCPConn) writeTCPHeader(hdr []byte, seq, ack uint32, flags byte) {
	for i := range hdr[:TCPHeaderLen] {
		hdr[i] = 0
	}
	hdr[0] = 0x42
	wire.PutU32(hdr[tcpOffSeq:], seq)
	wire.PutU32(hdr[tcpOffAck:], ack)
	hdr[tcpOffFlags] = flags
	c.Meter.Charge(c.Meter.CPU.PktHeaderCy + 10) // +seq/ack state updates
}

// SendObject serializes obj into one TCP segment using the same combined
// serialize-and-send layout as the UDP stack, and retains buffer references
// until the segment is acknowledged.
func (c *TCPConn) SendObject(obj core.Obj) error {
	m := c.Meter
	l := obj.Layout()
	if TCPHeaderLen+l.ObjectLen() > JumboFrame {
		return &ErrTooLarge{Size: TCPHeaderLen + l.ObjectLen()}
	}

	first, err := c.Alloc.TryAlloc(TCPHeaderLen + l.HeaderLen + l.CopyLen)
	if err != nil {
		// Failing here is clean: no sequence space consumed, no references
		// taken — the caller sees the error before anything is queued.
		c.TxNoMem++
		return err
	}
	m.Charge(m.CPU.DMABufAllocCy)
	c.writeTCPHeader(first.Bytes(), c.sendSeq, c.recvSeq, flagData|flagAck)
	m.Access(first.SimAddr(), TCPHeaderLen)
	dst := first.Bytes()[TCPHeaderLen:]
	obj.WriteHeader(dst)
	m.Charge(float64(l.Fields)*m.CPU.PerFieldCy + float64(l.Elems)*2)
	m.Access(first.SimAddr()+TCPHeaderLen, l.HeaderLen)
	cur := l.HeaderLen
	obj.IterateCopyEntries(func(data []byte, sim uint64) {
		m.Copy(sim, first.SimAddr()+uint64(TCPHeaderLen+cur), len(data))
		copy(dst[cur:], data)
		cur += len(data)
	})

	seg := &segment{seq: c.sendSeq, length: l.ObjectLen(), first: first}
	obj.IterateZCEntries(func(buf *mem.Buf) {
		// One reference for retransmission retention...
		m.MetadataAccess(buf.RefcountSimAddr())
		buf.IncRef()
		seg.zc = append(seg.zc, buf)
	})
	c.sendSeq += uint32(seg.length)
	c.unacked = append(c.unacked, seg)
	c.TxSegments++
	if err := c.transmit(seg); err != nil {
		c.rollback(seg)
		return err
	}
	c.armRTO()
	return nil
}

// rollback removes a just-queued segment whose first transmission the NIC
// rejected, releasing the retention references and restoring the sequence
// space.
func (c *TCPConn) rollback(seg *segment) {
	c.unacked = c.unacked[:len(c.unacked)-1]
	c.sendSeq = seg.seq
	seg.first.DecRef()
	for _, b := range seg.zc {
		b.DecRef()
	}
	c.TxSegments--
}

// SendContiguous sends an already-serialized payload over the connection
// (used by the FlatBuffers echo baseline in Figure 9).
func (c *TCPConn) SendContiguous(payload []byte, sim uint64) error {
	m := c.Meter
	first, err := c.Alloc.TryAlloc(TCPHeaderLen + len(payload))
	if err != nil {
		c.TxNoMem++
		return err
	}
	m.Charge(m.CPU.DMABufAllocCy)
	c.writeTCPHeader(first.Bytes(), c.sendSeq, c.recvSeq, flagData|flagAck)
	m.Access(first.SimAddr(), TCPHeaderLen)
	m.Copy(sim, first.SimAddr()+TCPHeaderLen, len(payload))
	copy(first.Bytes()[TCPHeaderLen:], payload)

	seg := &segment{seq: c.sendSeq, length: len(payload), first: first}
	c.sendSeq += uint32(seg.length)
	c.unacked = append(c.unacked, seg)
	c.TxSegments++
	if err := c.transmit(seg); err != nil {
		c.rollback(seg)
		return err
	}
	c.armRTO()
	return nil
}

// transmit posts one segment to the NIC, taking per-post references for the
// DMA engine.
func (c *TCPConn) transmit(seg *segment) error {
	m := c.Meter
	m.Charge(m.CPU.TxDescCy)
	entries := make([]nic.SGEntry, 0, 1+len(seg.zc))
	seg.first.IncRef() // NIC's reference on the header+copy buffer
	entries = append(entries, nic.SGEntry{
		Data: seg.first.Bytes(),
		Sim:  seg.first.SimAddr(),
		Release: func() {
			m.Charge(m.CPU.CompletionCy)
			seg.first.DecRef()
		},
	})
	for _, b := range seg.zc {
		m.SGPost()
		b.IncRef() // NIC's reference
		buf := b
		entries = append(entries, nic.SGEntry{
			Data: buf.Bytes(),
			Sim:  buf.SimAddr(),
			Release: func() {
				m.Charge(m.CPU.CompletionCy)
				m.MetadataAccess(buf.RefcountSimAddr())
				buf.DecRef()
			},
		})
	}
	if err := c.Port.Send(entries); err != nil {
		// Undo the per-post NIC references: the hardware never saw them.
		seg.first.DecRef()
		for _, b := range seg.zc {
			b.DecRef()
		}
		return err
	}
	return nil
}

func (c *TCPConn) armRTO() {
	if c.rtoTimer.Pending() || len(c.unacked) == 0 {
		return
	}
	c.rtoTimer = c.Eng.After(c.rto, c.onRTO)
}

func (c *TCPConn) onRTO() {
	if len(c.unacked) == 0 {
		return
	}
	// Go-back-N: retransmit the oldest unacked segment; its buffers are
	// still alive because the connection held references.
	c.Retransmits++
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	if c.OnRetransmit != nil {
		first := c.unacked[0].first.Bytes()
		if len(first) > TCPHeaderLen {
			c.OnRetransmit(first[TCPHeaderLen:])
		}
	}
	if err := c.transmit(c.unacked[0]); err != nil {
		c.RtxSendErrors++
	}
	// Re-arm unconditionally (rule 2): a refused post must be retried at
	// the next timeout, not abandoned with the segment stuck in flight.
	c.rtoTimer = c.Eng.After(c.rto, c.onRTO)
}

// sendAck emits a header-only ACK frame. ACKs are fire-and-forget: if the
// NIC refuses the post, the buffer's reference is dropped here (a refused
// post never runs the Release hook) and the peer's retransmission will
// solicit a fresh ACK.
func (c *TCPConn) sendAck() {
	m := c.Meter
	buf, err := c.Alloc.TryAlloc(TCPHeaderLen)
	if err != nil {
		// No buffer for the ACK: skip it. Fire-and-forget semantics make
		// this safe — the peer retransmits and solicits another ACK once
		// pressure subsides.
		c.AckSendErrors++
		return
	}
	m.Charge(m.CPU.DMABufAllocCy)
	c.writeTCPHeader(buf.Bytes(), c.sendSeq, c.recvSeq, flagAck)
	m.Charge(m.CPU.TxDescCy)
	err = c.Port.Send([]nic.SGEntry{{
		Data:    buf.Bytes(),
		Sim:     buf.SimAddr(),
		Release: func() { buf.DecRef() },
	}})
	if err != nil {
		c.AckSendErrors++
		buf.DecRef()
	}
}

func (c *TCPConn) onFrame(f *nic.Frame) {
	m := c.Meter
	m.Charge(m.CPU.RxPacketCy)
	if len(f.Data) < TCPHeaderLen {
		return
	}
	seq := wire.GetU32(f.Data[tcpOffSeq:])
	ack := wire.GetU32(f.Data[tcpOffAck:])
	flags := f.Data[tcpOffFlags]

	if flags&flagAck != 0 {
		c.processAck(ack)
	}
	if flags&flagData == 0 {
		return
	}
	payload := f.Data[TCPHeaderLen:]
	if len(payload) == 0 {
		// A data-flagged segment with no payload consumes no sequence
		// space and has nothing to deliver (a zero-byte pinned RX buffer
		// has no slot identity); drop it. Its ACK field was processed
		// above, so a corrupted or degenerate peer cannot stall us.
		c.EmptyDataSegs++
		return
	}
	switch {
	case seq == c.recvSeq:
		buf, err := c.Alloc.TryAlloc(len(payload))
		if err != nil {
			// No RX buffer: the segment is effectively lost at the ring.
			// Critically, recvSeq does NOT advance and no ACK is sent, so
			// the peer's RTO retransmits into (hopefully) freed memory.
			c.RxNoMem++
			return
		}
		c.recvSeq += uint32(len(payload))
		c.RxSegments++
		copy(buf.Bytes(), payload) // DMA write
		c.sendAck()
		if c.recv != nil {
			c.recv(buf)
		} else {
			buf.DecRef()
		}
	default:
		// Duplicate or out-of-order: drop and re-advertise our position.
		c.DupAcks++
		c.sendAck()
	}
}

// processAck releases segments fully covered by the cumulative ack.
func (c *TCPConn) processAck(ack uint32) {
	m := c.Meter
	advanced := false
	for len(c.unacked) > 0 {
		seg := c.unacked[0]
		if int32(ack-seg.seq) < int32(seg.length) {
			break
		}
		// Fully acknowledged: drop the retention references. Only now can
		// the application's data truly be freed.
		m.Charge(m.CPU.CompletionCy)
		seg.first.DecRef()
		for _, b := range seg.zc {
			m.MetadataAccess(b.RefcountSimAddr())
			b.DecRef()
		}
		c.unacked = c.unacked[1:]
		c.sendUna = seg.seq + uint32(seg.length)
		advanced = true
	}
	if advanced {
		c.rto = defaultRTO
		c.rtoTimer.Cancel()
		c.armRTO()
	}
}

// Unacked returns the number of in-flight segments (for tests).
func (c *TCPConn) Unacked() int { return len(c.unacked) }

// String summarises connection state.
func (c *TCPConn) String() string {
	return fmt.Sprintf("tcp{seq=%d una=%d rcv=%d inflight=%d rtx=%d}",
		c.sendSeq, c.sendUna, c.recvSeq, len(c.unacked), c.Retransmits)
}
