package netstack

import (
	"bytes"
	"testing"

	"cornflakes/internal/core"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
)

func TestSegmentedSmallObjectSingleFragment(t *testing.T) {
	eng, ua, ub, na, nb := udpPair(nic.MellanoxCX6())
	sa, sb := NewSegmenter(ua), NewSegmenter(ub)
	s := testSchema()
	msg := core.NewMessage(s, na.ctx)
	msg.SetInt(0, 5)
	msg.AppendBytes(2, na.ctx.NewCFPtr(bytes.Repeat([]byte{1}, 1000)))

	var got *core.Message
	sb.SetRecvHandler(func(p *mem.Buf) {
		m, err := nb.ctx.Deserialize(s, p)
		if err != nil {
			t.Errorf("deserialize: %v", err)
			p.DecRef()
			return
		}
		got = m
	})
	if err := sa.SendObjectSegmented(msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got == nil || got.GetInt(0) != 5 {
		t.Fatal("small object not delivered via single fragment")
	}
	if sa.TxFragments != 1 || sb.Reassembled != 1 {
		t.Errorf("fragments=%d reassembled=%d, want 1/1", sa.TxFragments, sb.Reassembled)
	}
}

func TestSegmentedLargeObjectZeroCopy(t *testing.T) {
	eng, ua, ub, na, nb := udpPair(nic.MellanoxCX6())
	sa, sb := NewSegmenter(ua), NewSegmenter(ub)
	s := testSchema()

	// A 64 KB pinned value: far beyond one jumbo frame.
	const valSize = 64 << 10
	val := na.alloc.Alloc(valSize)
	for i := range val.Bytes() {
		val.Bytes()[i] = byte(i * 7)
	}
	msg := core.NewMessage(s, na.ctx)
	msg.SetInt(0, 99)
	msg.AppendBytes(1, na.ctx.NewCFPtr([]byte("big-object-key")))
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))

	copiedBefore := na.meter.BytesCopied
	var got *core.Message
	sb.SetRecvHandler(func(p *mem.Buf) {
		m, err := nb.ctx.Deserialize(s, p)
		if err != nil {
			t.Errorf("deserialize: %v", err)
			p.DecRef()
			return
		}
		got = m
	})
	if err := sa.SendObjectSegmented(msg); err != nil {
		t.Fatal(err)
	}
	msg.Release() // immediate free: fragments hold their own references
	eng.Run()

	if got == nil {
		t.Fatal("large object not reassembled")
	}
	if got.GetInt(0) != 99 || string(got.GetBytesElem(1, 0)) != "big-object-key" {
		t.Error("header fields corrupted")
	}
	if !bytes.Equal(got.GetBytesElem(2, 0), val.Bytes()) {
		t.Fatal("64KB value corrupted across fragments")
	}
	if sa.TxFragments < 7 {
		t.Errorf("TxFragments = %d, want >= 7 for 64KB", sa.TxFragments)
	}
	// Zero-copy property: the sender CPU never copied the 64 KB value —
	// only the small key went through the arena.
	if copied := na.meter.BytesCopied - copiedBefore; copied > 2048 {
		t.Errorf("sender copied %d bytes; the large value should cross with no CPU copies", copied)
	}
	if val.Refcount() != 1 {
		t.Errorf("value refcount = %d after completion, want 1", val.Refcount())
	}
	got.Release()
	if nb.alloc.Stats().SlotsInUse != 0 {
		t.Error("receiver leaked the reassembly buffer")
	}
}

func TestSegmentedLossDiscardsMessage(t *testing.T) {
	eng, ua, ub, na, nb := udpPair(nic.MellanoxCX6())
	sa, sb := NewSegmenter(ua), NewSegmenter(ub)
	_ = nb
	s := testSchema()

	// Drop exactly one data fragment.
	dropped := false
	ua.Port.InjectLoss = func(data []byte) bool {
		if !dropped && len(data) > PacketHeaderLen+FragHeaderLen+1000 {
			dropped = true
			return true
		}
		return false
	}
	val := na.alloc.Alloc(32 << 10)
	msg := core.NewMessage(s, na.ctx)
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	delivered := 0
	sb.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })
	if err := sa.SendObjectSegmented(msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !dropped {
		t.Fatal("loss injection never fired")
	}
	if delivered != 0 {
		t.Error("incomplete message delivered")
	}
	if sb.Reassembled != 0 {
		t.Error("reassembled despite loss")
	}
}

func TestSegmenterEviction(t *testing.T) {
	eng, ua, ub, na, nb := udpPair(nic.MellanoxCX6())
	sa, sb := NewSegmenter(ua), NewSegmenter(ub)
	sb.MaxInflight = 2
	s := testSchema()

	// Drop the LAST fragment of every message: reassemblies pile up.
	ua.Port.InjectLoss = func(data []byte) bool {
		// Fragment index is in the payload; drop small (final, partial)
		// fragments heuristically by size.
		return len(data) < PacketHeaderLen+FragHeaderLen+8000 && len(data) > PacketHeaderLen+FragHeaderLen
	}
	for i := 0; i < 5; i++ {
		val := na.alloc.Alloc(20 << 10)
		msg := core.NewMessage(s, na.ctx)
		msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
		if err := sa.SendObjectSegmented(msg); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if sb.Evicted == 0 {
		t.Error("no evictions despite MaxInflight=2 and 5 stuck reassemblies")
	}
	if len(sb.inflight) > sb.MaxInflight {
		t.Errorf("inflight = %d exceeds bound %d", len(sb.inflight), sb.MaxInflight)
	}
	_ = nb
}

func TestSegmentedManySizesRoundTrip(t *testing.T) {
	s := testSchema()
	for _, size := range []int{100, 8000, 8943, 9000, 17000, 40000, 200_000} {
		eng, ua, ub, na, nb := udpPair(nic.MellanoxCX6())
		sa, sb := NewSegmenter(ua), NewSegmenter(ub)
		val := na.alloc.Alloc(size)
		for i := 0; i < size; i += 251 {
			val.Bytes()[i] = byte(i)
		}
		msg := core.NewMessage(s, na.ctx)
		msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
		var got *core.Message
		sb.SetRecvHandler(func(p *mem.Buf) {
			m, err := nb.ctx.Deserialize(s, p)
			if err != nil {
				t.Errorf("size %d: %v", size, err)
				p.DecRef()
				return
			}
			got = m
		})
		if err := sa.SendObjectSegmented(msg); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		eng.Run()
		if got == nil {
			t.Fatalf("size %d: not delivered", size)
		}
		if !bytes.Equal(got.GetBytesElem(2, 0), val.Bytes()) {
			t.Fatalf("size %d: corrupted", size)
		}
	}
}
