package netstack

import (
	"bytes"
	"testing"

	"cornflakes/internal/core"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

func TestUDPRuntFrameIgnored(t *testing.T) {
	eng := sim.NewEngine()
	pa, pb := nic.Link(eng, nic.MellanoxCX6(), nic.MellanoxCX6(), 0)
	na := newNode()
	nb := newNode()
	NewUDP(eng, pa, na.alloc, na.meter)
	ub := NewUDP(eng, pb, nb.alloc, nb.meter)
	delivered := 0
	ub.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })
	// A frame shorter than the packet header must be dropped without
	// reaching the handler.
	pa.Send([]nic.SGEntry{{Data: make([]byte, PacketHeaderLen-1)}})
	eng.Run()
	if delivered != 0 {
		t.Error("runt frame delivered")
	}
	if nb.alloc.Stats().SlotsInUse != 0 {
		t.Error("runt frame leaked a buffer")
	}
}

func TestUDPNoHandlerNoLeak(t *testing.T) {
	eng, ua, _, _, nb := udpPair(nic.MellanoxCX6())
	ua.SendContiguous([]byte("payload-without-handler"), 0)
	eng.Run()
	if nb.alloc.Stats().SlotsInUse != 0 {
		t.Errorf("slots in use = %d; payload leaked with no handler", nb.alloc.Stats().SlotsInUse)
	}
}

func TestUDPSendWithShrink(t *testing.T) {
	eng, ua, ub, _, _ := udpPair(nic.MellanoxCX6())
	var got []byte
	ub.SetRecvHandler(func(p *mem.Buf) { got = append([]byte(nil), p.Bytes()...); p.DecRef() })
	// Reserve 100 bytes but only fill 10: the frame must shrink.
	ua.SendWith(100, func(dst []byte, _ uint64) int {
		return copy(dst, "ten-bytes!")
	})
	eng.Run()
	if string(got) != "ten-bytes!" {
		t.Errorf("got %q (len %d), want exactly the filled bytes", got, len(got))
	}
}

func TestUDPMaxPayloadBoundary(t *testing.T) {
	eng, ua, ub, _, _ := udpPair(nic.MellanoxCX6())
	ok := 0
	ub.SetRecvHandler(func(p *mem.Buf) { ok++; p.DecRef() })
	if err := ua.SendContiguous(make([]byte, MaxPayload), 0); err != nil {
		t.Errorf("MaxPayload-sized payload rejected: %v", err)
	}
	if err := ua.SendContiguous(make([]byte, MaxPayload+1), 0); err == nil {
		t.Error("payload above MaxPayload accepted")
	}
	eng.Run()
	if ok != 1 {
		t.Errorf("delivered %d frames, want 1", ok)
	}
}

func TestUDPDMABufferReuse(t *testing.T) {
	eng, ua, ub, na, _ := udpPair(nic.MellanoxCX6())
	ub.SetRecvHandler(func(p *mem.Buf) { p.DecRef() })
	for i := 0; i < 50; i++ {
		ua.SendContiguous(make([]byte, 1000), 0)
		eng.Run() // complete each send: the DMA buffer returns to the free list
	}
	st := na.alloc.Stats()
	if st.SlotsInUse != 0 {
		t.Errorf("slots in use = %d after all completions", st.SlotsInUse)
	}
	// The pinned footprint must stay bounded: buffers are recycled, not
	// accumulated.
	if st.BytesPinned > 4<<20 {
		t.Errorf("pinned footprint grew to %d bytes over 50 sends", st.BytesPinned)
	}
}

func TestTCPRTOBackoffAndRecovery(t *testing.T) {
	eng, ca, cb, na, _, pa := tcpPair()
	delivered := 0
	cb.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })
	// Drop the first three data transmissions: two RTO doublings, then
	// success.
	drops := 0
	pa.InjectLoss = func(data []byte) bool {
		if len(data) > TCPHeaderLen && drops < 3 {
			drops++
			return true
		}
		return false
	}
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.SetInt(0, 1)
	if err := ca.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 after three losses", delivered)
	}
	if ca.Retransmits != 3 {
		t.Errorf("retransmits = %d, want 3", ca.Retransmits)
	}
	if ca.Unacked() != 0 {
		t.Error("segment still outstanding")
	}
}

func TestTCPManyMessagesWithRandomLoss(t *testing.T) {
	eng, ca, cb, na, _, pa := tcpPair()
	var got []uint64
	cb.SetRecvHandler(func(p *mem.Buf) {
		id, ok := core.PeekID(p.Bytes())
		if !ok {
			t.Error("bad payload")
		}
		got = append(got, id)
		p.DecRef()
	})
	// Deterministic pseudo-random ~20% loss on data frames.
	n := uint64(0)
	pa.InjectLoss = func(data []byte) bool {
		if len(data) <= TCPHeaderLen {
			return false
		}
		n = n*6364136223846793005 + 1442695040888963407
		return n>>60 < 3
	}
	const msgs = 40
	for i := 0; i < msgs; i++ {
		m := core.NewMessage(testSchema(), na.ctx)
		m.SetInt(0, uint64(i))
		m.AppendBytes(2, na.ctx.NewCFPtr(bytes.Repeat([]byte{byte(i)}, 1024)))
		if err := ca.SendObject(m); err != nil {
			t.Fatal(err)
		}
		m.Release()
		na.arena.Reset()
	}
	eng.Run()
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d messages", len(got), msgs)
	}
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("message %d arrived with id %d (ordering violated)", i, id)
		}
	}
	if ca.Retransmits == 0 {
		t.Error("expected retransmissions under 20% loss")
	}
	if ca.Unacked() != 0 {
		t.Error("unacked segments remain")
	}
}

func TestSendObjectManyZCEntriesWithinLimit(t *testing.T) {
	eng, ua, ub, na, nb := udpPair(nic.MellanoxCX6())
	s := testSchema()
	msg := core.NewMessage(s, na.ctx)
	// 8 zero-copy fields of 600B: well within the Mellanox 64-entry limit,
	// total 4800B within a jumbo frame.
	var want [][]byte
	for i := 0; i < 8; i++ {
		v := na.alloc.Alloc(600)
		for j := range v.Bytes() {
			v.Bytes()[j] = byte(i*31 + j)
		}
		want = append(want, append([]byte(nil), v.Bytes()...))
		msg.AppendBytes(2, na.ctx.NewCFPtr(v.Bytes()))
	}
	var got *core.Message
	ub.SetRecvHandler(func(p *mem.Buf) {
		m, err := nb.ctx.Deserialize(s, p)
		if err != nil {
			t.Errorf("deserialize: %v", err)
			p.DecRef()
			return
		}
		got = m
	})
	if err := ua.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got == nil {
		t.Fatal("not delivered")
	}
	for i := range want {
		if !bytes.Equal(got.GetBytesElem(2, i), want[i]) {
			t.Errorf("field %d corrupted", i)
		}
	}
	if ua.TxZCEntries != 8 {
		t.Errorf("TxZCEntries = %d, want 8", ua.TxZCEntries)
	}
}
