package netstack

import (
	"testing"

	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
)

// TestTxBatchFlushPostsAll: frames posted inside a Begin/Flush bracket are
// delivered together under amortized doorbells, with TxPackets counted at
// flush.
func TestTxBatchFlushPostsAll(t *testing.T) {
	eng, ua, ub, _, _ := udpPair(nic.MellanoxCX6())
	var got []string
	ub.SetRecvHandler(func(p *mem.Buf) { got = append(got, string(p.Bytes())); p.DecRef() })

	ua.BeginTxBatch()
	for _, s := range []string{"one", "two", "three"} {
		if err := ua.SendContiguous([]byte(s), 0); err != nil {
			t.Fatal(err)
		}
	}
	if ua.TxPackets != 0 {
		t.Errorf("TxPackets = %d before flush, want 0 (counted at flush)", ua.TxPackets)
	}
	if err := ua.FlushTx(); err != nil {
		t.Fatal(err)
	}
	if ua.TxPackets != 3 {
		t.Errorf("TxPackets = %d after flush, want 3", ua.TxPackets)
	}
	if ua.Port.TxDoorbells != 1 {
		t.Errorf("TxDoorbells = %d, want 1 for a 3-frame burst", ua.Port.TxDoorbells)
	}
	eng.Run()
	if len(got) != 3 || got[0] != "one" || got[1] != "two" || got[2] != "three" {
		t.Errorf("delivered %q, want the three frames in order", got)
	}
}

// TestTxBatchFlushEmpty: flushing with nothing queued is a no-op.
func TestTxBatchFlushEmpty(t *testing.T) {
	_, ua, _, _, _ := udpPair(nic.MellanoxCX6())
	ua.BeginTxBatch()
	if err := ua.FlushTx(); err != nil {
		t.Fatalf("empty flush: %v", err)
	}
	if ua.Port.TxDoorbells != 0 || ua.TxPackets != 0 {
		t.Errorf("empty flush did work: doorbells=%d packets=%d", ua.Port.TxDoorbells, ua.TxPackets)
	}
}

// TestTxBatchOversizeFailsAtQueueTime: a frame violating limits inside a
// batch fails its own post() — releases run immediately, the rest of the
// batch is unaffected.
func TestTxBatchOversizeFailsAtQueueTime(t *testing.T) {
	eng, ua, ub, na, _ := udpPair(nic.MellanoxCX6())
	delivered := 0
	ub.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })

	ua.BeginTxBatch()
	if err := ua.SendContiguous(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if err := ua.SendContiguous(make([]byte, MaxPayload+1), 0); err == nil {
		t.Error("oversize frame accepted into batch")
	}
	if err := ua.FlushTx(); err != nil {
		t.Fatalf("flush after rejected frame: %v", err)
	}
	eng.Run()
	if delivered != 1 {
		t.Errorf("delivered %d frames, want 1 (good frame only)", delivered)
	}
	if st := na.alloc.Stats(); st.SlotsInUse != 0 {
		t.Errorf("slots in use = %d; rejected frame leaked a buffer", st.SlotsInUse)
	}
}

// TestTxBatchEntryLimitFailsAtQueueTime: a frame exceeding MaxSGEntries is
// rejected when queued, not at flush — SendBatch never sees it.
func TestTxBatchEntryLimitFailsAtQueueTime(t *testing.T) {
	eng, ua, ub, na, _ := udpPair(nic.IntelE810()) // 8-entry limit
	delivered := 0
	ub.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })

	var bufs []*mem.Buf
	for i := 0; i < 9; i++ { // 9 pinned entries + header = 10 > 8
		bufs = append(bufs, na.alloc.Alloc(64))
	}
	ua.BeginTxBatch()
	err := ua.SendPinned(bufs, true)
	if _, ok := err.(*nic.ErrTooManyEntries); !ok {
		t.Errorf("error %T %v, want *ErrTooManyEntries at queue time", err, err)
	}
	if err := ua.FlushTx(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for _, b := range bufs {
		b.DecRef() // drop the caller's own references
	}
	eng.Run()
	if delivered != 0 {
		t.Errorf("delivered %d frames, want 0", delivered)
	}
	if st := na.alloc.Stats(); st.SlotsInUse != 0 {
		t.Errorf("slots in use = %d; DMA references leaked", st.SlotsInUse)
	}
}

// TestTxBatchFlushErrUnwinds: a ring-full error partway through a flush
// posts the earlier frames, unwinds the rest, and counts them.
func TestTxBatchFlushErrUnwinds(t *testing.T) {
	eng, ua, ub, na, _ := udpPair(nic.MellanoxCX6())
	delivered := 0
	ub.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })

	calls := 0
	ua.Port.InjectSendErr = func() error {
		calls++
		if calls == 3 { // refuse the third frame of the flush
			return mem.ErrNoMem
		}
		return nil
	}
	ua.BeginTxBatch()
	for i := 0; i < 4; i++ {
		if err := ua.SendContiguous(make([]byte, 100), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := ua.FlushTx(); err == nil {
		t.Fatal("flush succeeded despite refused send")
	}
	if ua.TxPackets != 2 {
		t.Errorf("TxPackets = %d, want 2 (posted before the failure)", ua.TxPackets)
	}
	if ua.TxFlushErrs != 2 {
		t.Errorf("TxFlushErrs = %d, want 2 (failing frame + trailing frame)", ua.TxFlushErrs)
	}
	eng.Run()
	if delivered != 2 {
		t.Errorf("delivered %d frames, want 2", delivered)
	}
	if st := na.alloc.Stats(); st.SlotsInUse != 0 {
		t.Errorf("slots in use = %d; unwound frames leaked buffers", st.SlotsInUse)
	}
}

// TestRxBatchedChargeSplit: with RxBatched set, onFrame charges only the
// per-frame remainder of RxPacketCy; the poll share is the drainer's to
// pay. The two paths must sum to the same total so calibration is
// preserved.
func TestRxBatchedChargeSplit(t *testing.T) {
	run := func(batched bool) float64 {
		eng, ua, ub, _, nb := udpPair(nic.MellanoxCX6())
		ub.RxBatched = batched
		ub.SetRecvHandler(func(p *mem.Buf) { p.DecRef() })
		if err := ua.SendContiguous([]byte("x"), 0); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		nb.meter.SetCategory(0)
		return nb.meter.Drain()
	}
	cpu := newNode().meter.CPU
	unb := run(false)
	bat := run(true)
	if got := unb - bat; got != cpu.RxPollCy {
		t.Errorf("batched RX charges %v fewer cycles, want exactly RxPollCy=%v", got, cpu.RxPollCy)
	}
}
