// Package netstack implements the Cornflakes networking stacks: a
// kernel-bypass-style UDP datagram stack and a TCP-lite stack, both running
// over the simulated scatter-gather NIC.
//
// The UDP stack is co-designed with the serialization library: SendObject
// accepts a core.Obj directly and serializes it straight into transmit
// descriptors — the combined serialize-and-send API of §3.2.3. The
// SendObjectViaSGArray path materialises the intermediate scatter-gather
// array instead, reproducing the "without serialize-and-send" ablation of
// Table 5. Raw building blocks (SendContiguous, SendWith, SendPinned,
// SendSegments) give the baseline serializers exactly the datapaths §6.1.3
// describes for each library.
package netstack

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

const (
	// PacketHeaderLen is Ethernet (14) + IPv4 (20) + UDP (8).
	PacketHeaderLen = 42
	// HdrDstOff/HdrSrcOff locate the fabric addresses inside the packet
	// header (standing in for destination/source IP). A switch routes on
	// the destination byte without parsing past the header.
	HdrDstOff = 1
	HdrSrcOff = 2
	// JumboFrame is the maximum frame size; the paper targets data
	// structures that fit in one jumbo frame (§2.1).
	JumboFrame = 9000
	// MaxPayload is the application payload budget per datagram.
	MaxPayload = JumboFrame - PacketHeaderLen
)

// ErrTooLarge reports an object that does not fit a jumbo frame. The
// prototype, like the paper's, does not segment UDP payloads (§4); callers
// split objects at a higher level (as the CDN and Twitter workloads do).
type ErrTooLarge struct{ Size int }

func (e *ErrTooLarge) Error() string {
	return fmt.Sprintf("netstack: %d-byte frame exceeds %d-byte jumbo frame", e.Size, JumboFrame)
}

// UDP is one endpoint of the datagram stack.
type UDP struct {
	Eng   *sim.Engine
	Port  *nic.Port
	Alloc *mem.Allocator
	Meter *costmodel.Meter

	// LocalAddr and DstAddr are fabric port addresses stamped into every
	// outgoing packet header (HdrSrcOff/HdrDstOff): LocalAddr identifies
	// this endpoint, DstAddr selects the switch egress for the next send.
	// Both default to zero, which leaves the header bytes exactly as the
	// single-link testbeds always wrote them — no fabric, no change.
	LocalAddr, DstAddr byte
	// RxSrc is the source address of the frame most recently delivered to
	// the recv handler; servers read it to address their reply.
	RxSrc byte

	// recv is invoked for each delivered payload, already placed in a
	// pinned RX buffer (the NIC DMA-writes received frames into pre-posted
	// DMA-safe buffers). The callee owns the buffer reference.
	recv func(payload *mem.Buf)

	// OnDrop, when set, is called for frames the RX path discards before
	// the handler sees them (runt frames, RX buffer exhaustion), with the
	// raw frame payload and a reason tag. The tracer uses it to annotate
	// the request a drop silenced; the payload must not be retained.
	OnDrop func(payload []byte, reason string)

	// Down marks the host as crashed: frames still arrive (the NIC and wire
	// do not know the host died) but the stack discards them, counted in
	// RxDownDrops — a dead node loses traffic loudly, never silently, so the
	// cluster frame ledger stays exact through a crash.
	Down        bool
	RxDownDrops uint64

	// RxBatched marks that the server above drains requests in bursts: the
	// poll-loop share of the per-packet RX cost (RxPollCy) is then charged
	// once per drained burst by the drainer, so onFrame charges only the
	// per-frame remainder. Leave false for the unbatched datapath, which
	// keeps the full legacy RxPacketCy per frame.
	RxBatched bool

	// txOpen/txStore/txLens implement TX batching: between BeginTxBatch and
	// FlushTx, post() copies gather lists into the flat txStore (frame i
	// owns txLens[i] consecutive entries) instead of handing each to the
	// NIC, and FlushTx posts them all through Port.SendBatch under
	// amortized doorbells. The flat store means queued frames never alias
	// the caller's (reused) entry scratch, and the batch costs zero
	// allocations once the store has grown to the burst high-water mark.
	txOpen  bool
	txStore []nic.SGEntry
	txLens  []int
	// txFrames is FlushTx's scratch for the per-frame subslice headers
	// SendBatch consumes; txEntries is the gather-list scratch the send
	// paths build each frame in (safe to reuse: the NIC copies the list at
	// post time, and batched posts copy it into txStore).
	txFrames  [][]nic.SGEntry
	txEntries []nic.SGEntry

	// Stats.
	TxPackets, RxPackets uint64
	TxZCEntries          uint64
	// TxNoMem counts sends that failed because the pinned pool could not
	// supply a transmit buffer; RxNoMem counts received frames dropped for
	// want of an RX buffer (the NIC would have overrun its posted ring).
	TxNoMem, RxNoMem uint64
	// TxFlushErrs counts frames unwound because a batched flush failed
	// partway (each unposted frame of the failing flush counts once).
	TxFlushErrs uint64
}

// NewUDP attaches a UDP endpoint to a NIC port.
func NewUDP(eng *sim.Engine, port *nic.Port, alloc *mem.Allocator, meter *costmodel.Meter) *UDP {
	u := &UDP{Eng: eng, Port: port, Alloc: alloc, Meter: meter}
	port.SetHandler(u.onFrame)
	return u
}

// SetRecvHandler installs the payload handler. The handler runs at frame
// delivery time; servers typically enqueue work onto a sim.Core from it.
func (u *UDP) SetRecvHandler(fn func(payload *mem.Buf)) { u.recv = fn }

// onFrame models the RX datapath: the NIC has DMA-written the frame into a
// pre-posted pinned buffer; the host poll loop pays the fixed per-packet RX
// cost and strips the packet header.
func (u *UDP) onFrame(f *nic.Frame) {
	if u.Down {
		// Crashed host: the frame reached the NIC but no software is alive
		// to poll it. No CPU is charged (there is no CPU), the buffer is
		// never allocated, and the loss is counted.
		u.RxDownDrops++
		if u.OnDrop != nil {
			u.OnDrop(f.Data, "host-down")
		}
		return
	}
	u.RxPackets++
	cy := u.Meter.CPU.RxPacketCy
	if u.RxBatched {
		// The poll-loop share is paid once per drained burst (see
		// RxBatched); only the per-frame remainder lands here.
		cy -= u.Meter.CPU.RxPollCy
	}
	u.Meter.Charge(cy)
	if len(f.Data) <= PacketHeaderLen {
		if u.OnDrop != nil {
			u.OnDrop(f.Data, "runt")
		}
		return // runt frame
	}
	u.RxSrc = f.Data[HdrSrcOff]
	payload := f.Data[PacketHeaderLen:]
	buf, err := u.Alloc.TryAlloc(len(payload))
	if err != nil {
		// No pinned buffer to DMA into: the frame is lost, exactly as a
		// real NIC drops when the posted RX ring is empty. Counted, never
		// silent — the transport (TCP-lite RTO, client retry) recovers.
		u.RxNoMem++
		if u.OnDrop != nil {
			u.OnDrop(payload, "rx-nomem")
		}
		return
	}
	copy(buf.Bytes(), payload) // DMA write: no CPU charge
	if u.recv == nil {
		buf.DecRef()
		return
	}
	u.recv(buf)
}

// txPrep allocates a pinned transmit buffer with n bytes after the packet
// header and writes the header. It fails with mem.ErrNoMem (counted in
// TxNoMem) when the pinned pool is exhausted.
func (u *UDP) txPrep(n int) (*mem.Buf, error) {
	m := u.Meter
	buf, err := u.Alloc.TryAlloc(PacketHeaderLen + n)
	if err != nil {
		u.TxNoMem++
		return nil, err
	}
	m.Charge(m.CPU.DMABufAllocCy)
	hdr := buf.Bytes()[:PacketHeaderLen]
	for i := range hdr {
		hdr[i] = 0
	}
	hdr[0] = 0x42 // marker: a real stack writes MACs/IPs/ports here
	hdr[HdrDstOff] = u.DstAddr
	hdr[HdrSrcOff] = u.LocalAddr
	m.Charge(m.CPU.PktHeaderCy)
	m.Access(buf.SimAddr(), PacketHeaderLen)
	return buf, nil
}

// post hands the gather list to the NIC, charging the base descriptor cost
// plus one SGPost per entry beyond the first. On failure every entry's
// Release hook runs immediately so buffer references are not leaked.
//
// Inside a TX batch (BeginTxBatch…FlushTx) the gather list is queued
// instead of posted: the doorbell share of the descriptor cost is deferred
// to the flush (where it amortizes per chunk), size/entry-limit violations
// are still detected — and unwound — here at queue time, and
// TxPackets/TxZCEntries are counted at flush for frames actually posted.
func (u *UDP) post(entries []nic.SGEntry) error {
	m := u.Meter
	if u.txOpen {
		m.Charge(m.CPU.TxDescCy - m.CPU.TxDoorbellCy)
	} else {
		m.Charge(m.CPU.TxDescCy)
	}
	for i := 1; i < len(entries); i++ {
		m.SGPost()
	}
	total := 0
	for _, e := range entries {
		total += len(e.Data)
	}
	err := error(nil)
	switch {
	case total > JumboFrame:
		err = &ErrTooLarge{Size: total}
	case u.txOpen && len(entries) > u.Port.Profile().MaxSGEntries:
		// Validate at queue time what Port.Send would reject, so a bad
		// frame fails its own post instead of poisoning the whole flush.
		err = &nic.ErrTooManyEntries{Entries: len(entries), Max: u.Port.Profile().MaxSGEntries}
	case u.txOpen:
		u.txStore = append(u.txStore, entries...)
		u.txLens = append(u.txLens, len(entries))
		return nil
	default:
		err = u.Port.Send(entries)
	}
	if err != nil {
		// A refused post unwinds inline: the completion charges the release
		// hooks pay belong to the transmit attempt, not to whatever category
		// the serializer happened to leave active.
		prev := m.SetCategory(costmodel.CatTx)
		fireReleases(entries)
		m.SetCategory(prev)
		return err
	}
	u.TxPackets++
	u.TxZCEntries += uint64(len(entries) - 1)
	return nil
}

// fireReleases runs every completion hook of a gather list that will never
// reach the NIC — the unwind path of a refused or failed post.
func fireReleases(entries []nic.SGEntry) {
	for i := range entries {
		e := &entries[i]
		if e.Release != nil {
			e.Release()
		}
		if e.Rel != nil {
			e.Rel.ReleaseSG(e.RelArg)
		}
	}
}

// BeginTxBatch opens a TX batch: subsequent post()s queue their gather
// lists until FlushTx. The server's batch drainer brackets each drained
// burst with Begin/Flush so all replies of the burst share doorbells.
func (u *UDP) BeginTxBatch() { u.txOpen = true }

// FlushTx closes the TX batch and posts the queued frames through
// Port.SendBatch, charging one TxDoorbellCy per MaxTxBurst chunk — the
// deferred doorbell share of the descriptor costs post() withheld. On a
// mid-batch send failure the remaining frames are unwound (references
// released under CatTx, counted in TxFlushErrs) and the error returned;
// frames already posted stay posted.
func (u *UDP) FlushTx() error {
	u.txOpen = false
	if len(u.txLens) == 0 {
		return nil
	}
	m := u.Meter
	// Rebuild the per-frame views over the flat store. The subslice headers
	// live in the reused txFrames scratch; the store itself is stable for
	// the duration of the flush (nothing appends mid-SendBatch).
	frames := u.txFrames[:0]
	off := 0
	for _, n := range u.txLens {
		frames = append(frames, u.txStore[off:off+n:off+n])
		off += n
	}
	burst := u.Port.Profile().MaxTxBurst
	if burst < 1 {
		burst = 1
	}
	chunks := (len(frames) + burst - 1) / burst
	m.Charge(float64(chunks) * m.CPU.TxDoorbellCy)
	posted, err := u.Port.SendBatch(frames)
	for i := 0; i < posted; i++ {
		u.TxPackets++
		u.TxZCEntries += uint64(len(frames[i]) - 1)
	}
	if err != nil {
		prev := m.SetCategory(costmodel.CatTx)
		for _, f := range frames[posted:] {
			u.TxFlushErrs++
			fireReleases(f)
		}
		m.SetCategory(prev)
	}
	// Drop the stored buffer references so the scratch arrays do not pin
	// DMA buffers past the flush.
	clear(u.txStore)
	u.txStore = u.txStore[:0]
	u.txLens = u.txLens[:0]
	clear(frames)
	u.txFrames = frames[:0]
	return err
}

// ReleaseSG implements nic.SGReleaser: the NIC calls it at DMA completion
// for every entry posted with Rel=u, RelArg=buf. It pays the completion
// cost and drops the buffer reference — the same hook releaseBuf used to
// close over, without the per-entry closure allocation (a *mem.Buf in an
// `any` is a plain pointer store).
func (u *UDP) ReleaseSG(arg any) {
	buf := arg.(*mem.Buf)
	m := u.Meter
	m.Charge(m.CPU.CompletionCy)
	m.MetadataAccess(buf.RefcountSimAddr())
	buf.DecRef()
}

// rawReleaser drops a buffer reference with no metered cost: the prebuilt
// fast path amortizes its completion share up front, and the raw
// scatter-gather upper bound (§2.4) charges no bookkeeping at all.
type rawReleaser struct{}

func (rawReleaser) ReleaseSG(arg any) { arg.(*mem.Buf).DecRef() }

var rawRel rawReleaser

// SendObject is the combined serialize-and-send path (§3.2.3): the packet
// header, object header and copied fields share the first scatter-gather
// entry; each zero-copy field adds one entry pointing directly at pinned
// application memory, with the refcount held until DMA completion.
func (u *UDP) SendObject(obj core.Obj) error {
	m := u.Meter
	l := obj.Layout()
	if PacketHeaderLen+l.ObjectLen() > JumboFrame {
		return &ErrTooLarge{Size: PacketHeaderLen + l.ObjectLen()}
	}

	// First entry: packet header + object header region + copied data.
	first, err := u.txPrep(l.HeaderLen + l.CopyLen)
	if err != nil {
		return err
	}
	dst := first.Bytes()[PacketHeaderLen:]
	obj.WriteHeader(dst)
	m.Charge(float64(l.Fields)*m.CPU.PerFieldCy + float64(l.Elems)*2)
	m.Access(first.SimAddr()+PacketHeaderLen, l.HeaderLen)

	cur := l.HeaderLen
	obj.IterateCopyEntries(func(data []byte, sim uint64) {
		// The second copy of the copied path: arena → DMA buffer, cheap
		// because the source was just written (§2.2, §3.2.2).
		m.Copy(sim, first.SimAddr()+uint64(PacketHeaderLen+cur), len(data))
		copy(dst[cur:], data)
		cur += len(data)
	})

	entries := append(u.txEntries[:0], nic.SGEntry{
		Data:   first.Bytes(),
		Sim:    first.SimAddr(),
		Rel:    u,
		RelArg: first,
	})
	// Entries available for zero-copy data after the header entry; when the
	// object exceeds the hardware limit, reserve one slot for the
	// extension buffer that absorbs the overflow.
	zcCap := u.Port.Profile().MaxSGEntries - 1
	if l.NumZC > zcCap {
		zcCap--
	}
	var overflow []*mem.Buf
	taken := 0
	obj.IterateZCEntries(func(buf *mem.Buf) {
		if taken < zcCap {
			taken++
			// The NIC reads application memory asynchronously: take a
			// reference on behalf of the DMA, released at completion.
			m.MetadataAccess(buf.RefcountSimAddr())
			buf.IncRef()
			entries = append(entries, nic.SGEntry{
				Data:   buf.Bytes(),
				Sim:    buf.SimAddr(),
				Rel:    u,
				RelArg: buf,
			})
		} else {
			overflow = append(overflow, buf)
		}
	})
	if len(overflow) > 0 {
		// Hardware SG limit reached (e.g. Intel E810's 8 entries): copy the
		// remaining zero-copy fields into one extension buffer. Order is
		// preserved because overflow entries are the last in layout order.
		total := 0
		for _, b := range overflow {
			total += b.Len()
		}
		ext, err := u.Alloc.TryAlloc(total)
		if err != nil {
			// Release the references already taken for the built entries
			// before reporting failure — no refs may leak on this path, and
			// the unwind is billed to the transmit attempt.
			u.TxNoMem++
			prev := m.SetCategory(costmodel.CatTx)
			fireReleases(entries)
			m.SetCategory(prev)
			u.txEntries = entries[:0]
			return err
		}
		m.Charge(m.CPU.DMABufAllocCy)
		cur := 0
		for _, b := range overflow {
			m.Copy(b.SimAddr(), ext.SimAddr()+uint64(cur), b.Len())
			copy(ext.Bytes()[cur:], b.Bytes())
			cur += b.Len()
		}
		entries = append(entries, nic.SGEntry{
			Data:   ext.Bytes(),
			Sim:    ext.SimAddr(),
			Rel:    u,
			RelArg: ext,
		})
	}
	u.txEntries = entries[:0]
	return u.post(entries)
}

// SendObjectViaSGArray is the ablation path for Table 5: serialization and
// networking are independent layers, so the library materialises an
// intermediate scatter-gather array (header+copied data as its first
// element, zero-copy fields after), and the stack prepends its own packet
// header entry and re-walks the array. Costs: one vector allocation, one
// extra scatter-gather entry, and a second pass over the array.
func (u *UDP) SendObjectViaSGArray(obj core.Obj) error {
	m := u.Meter
	l := obj.Layout()
	if PacketHeaderLen+l.ObjectLen() > JumboFrame {
		return &ErrTooLarge{Size: PacketHeaderLen + l.ObjectLen()}
	}

	// --- Serialization layer: build the SG array. ---
	m.Charge(m.CPU.HeapAllocCy) // the intermediate array allocation
	type sge struct {
		data []byte
		sim  uint64
		buf  *mem.Buf
	}
	arr := make([]sge, 0, 1+l.NumZC)

	objBuf, err := u.Alloc.TryAlloc(l.HeaderLen + l.CopyLen)
	if err != nil {
		u.TxNoMem++
		return err
	}
	m.Charge(m.CPU.DMABufAllocCy)
	obj.WriteHeader(objBuf.Bytes())
	m.Charge(float64(l.Fields)*m.CPU.PerFieldCy + float64(l.Elems)*2)
	m.Access(objBuf.SimAddr(), l.HeaderLen)
	cur := l.HeaderLen
	obj.IterateCopyEntries(func(data []byte, sim uint64) {
		m.Copy(sim, objBuf.SimAddr()+uint64(cur), len(data))
		copy(objBuf.Bytes()[cur:], data)
		cur += len(data)
	})
	arr = append(arr, sge{data: objBuf.Bytes(), sim: objBuf.SimAddr(), buf: objBuf})
	obj.IterateZCEntries(func(buf *mem.Buf) {
		m.MetadataAccess(buf.RefcountSimAddr())
		buf.IncRef()
		arr = append(arr, sge{data: buf.Bytes(), sim: buf.SimAddr(), buf: buf})
	})

	// --- Networking layer: walk the array again, prepend header entry. ---
	hdrBuf, err := u.txPrep(0)
	if err != nil {
		// Drop the references the serialization layer took into the array.
		for _, e := range arr {
			e.buf.DecRef()
		}
		return err
	}
	entries := append(u.txEntries[:0], nic.SGEntry{
		Data:   hdrBuf.Bytes(),
		Sim:    hdrBuf.SimAddr(),
		Rel:    u,
		RelArg: hdrBuf,
	})
	for i := range arr {
		e := arr[i]
		m.Charge(5) // per-element transform while re-walking the array
		entries = append(entries, nic.SGEntry{
			Data:   e.data,
			Sim:    e.sim,
			Rel:    u,
			RelArg: e.buf,
		})
	}
	m.Access(mem.UnpinnedSimAddr(objBuf.Bytes()), len(arr)*24) // array touch
	u.txEntries = entries[:0]
	if len(entries) > u.Port.Profile().MaxSGEntries {
		fireReleases(entries)
		return &nic.ErrTooManyEntries{Entries: len(entries), Max: u.Port.Profile().MaxSGEntries}
	}
	return u.post(entries)
}

// prebuiltBatch is the descriptor/completion amortization factor of the
// prebuilt-reply fast path: an overloaded server posts and reaps its
// rejection replies in batches, so the fixed per-packet NIC costs spread
// over the batch.
const prebuiltBatch = 16

// SendPrebuilt transmits a tiny prebuilt reply (an admission-control
// rejection) on the fast path an overload-hardened server must have:
// the reply lives in a ring of recycled template buffers whose packet
// headers are preformatted, and descriptor posting and completion reaping
// amortize across a batch. Only the payload copy plus the amortized share
// of the alloc/descriptor/completion costs hit the meter — shedding has to
// be far cheaper than serving, or admission control would be
// self-defeating at the load levels where it matters.
func (u *UDP) SendPrebuilt(payload []byte, sim uint64) error {
	m := u.Meter
	buf, err := u.Alloc.TryAlloc(PacketHeaderLen + len(payload))
	if err != nil {
		u.TxNoMem++
		return err
	}
	hdr := buf.Bytes()[:PacketHeaderLen]
	for i := range hdr {
		hdr[i] = 0
	}
	hdr[0] = 0x42
	hdr[HdrDstOff] = u.DstAddr
	hdr[HdrSrcOff] = u.LocalAddr
	m.Charge((m.CPU.DMABufAllocCy + m.CPU.TxDescCy + m.CPU.CompletionCy) / prebuiltBatch)
	m.Copy(sim, buf.SimAddr()+PacketHeaderLen, len(payload))
	copy(buf.Bytes()[PacketHeaderLen:], payload)
	// Completion cost amortized above, so the raw (uncharged) releaser.
	u.txEntries = append(u.txEntries[:0], nic.SGEntry{
		Data: buf.Bytes(), Sim: buf.SimAddr(), Rel: rawRel, RelArg: buf,
	})
	err = u.Port.Send(u.txEntries)
	if err != nil {
		buf.DecRef()
		return err
	}
	u.TxPackets++
	return nil
}

// SendContiguous transmits an already-serialized contiguous payload by
// copying it into a DMA buffer (the FlatBuffers and Redis datapath:
// "FlatBuffers and Redis use a contiguous buffer", §6.1.3).
func (u *UDP) SendContiguous(payload []byte, sim uint64) error {
	buf, err := u.txPrep(len(payload))
	if err != nil {
		return err
	}
	u.Meter.Copy(sim, buf.SimAddr()+PacketHeaderLen, len(payload))
	copy(buf.Bytes()[PacketHeaderLen:], payload)
	u.txEntries = append(u.txEntries[:0], nic.SGEntry{Data: buf.Bytes(), Sim: buf.SimAddr(), Rel: u, RelArg: buf})
	return u.post(u.txEntries)
}

// SendWith allocates a DMA buffer of the given payload size and lets fill
// serialize directly into it (the Protobuf datapath: "Protobuf serializes
// from Protobuf structs into DMA-safe memory directly", §6.1.3). fill
// returns the actual payload length.
func (u *UDP) SendWith(size int, fill func(dst []byte, dstSim uint64) int) error {
	buf, err := u.txPrep(size)
	if err != nil {
		return err
	}
	n := fill(buf.Bytes()[PacketHeaderLen:], buf.SimAddr()+PacketHeaderLen)
	if n < size {
		buf.Resize(PacketHeaderLen + n)
	}
	u.txEntries = append(u.txEntries[:0], nic.SGEntry{Data: buf.Bytes(), Sim: buf.SimAddr(), Rel: u, RelArg: buf})
	return u.post(u.txEntries)
}

// SendSegments copies a list of segments into one DMA buffer (the Cap'n
// Proto datapath: "a non-contiguous list of buffers that represent the
// object", §6.1.3).
func (u *UDP) SendSegments(segs [][]byte, sims []uint64) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	buf, err := u.txPrep(total)
	if err != nil {
		return err
	}
	cur := PacketHeaderLen
	for i, s := range segs {
		u.Meter.Copy(sims[i], buf.SimAddr()+uint64(cur), len(s))
		copy(buf.Bytes()[cur:], s)
		cur += len(s)
	}
	u.txEntries = append(u.txEntries[:0], nic.SGEntry{Data: buf.Bytes(), Sim: buf.SimAddr(), Rel: u, RelArg: buf})
	return u.post(u.txEntries)
}

// SendPinned transmits pinned buffers zero-copy, one SG entry each, after a
// header entry. With safe=true it performs (and charges) the full
// memory-safety protocol: registry lookup, refcount increment now,
// metered decrement at completion. With safe=false it models the "raw
// scatter-gather" upper bound of §2.4: the buffers are still held until
// DMA completes (that is physics, not software), but none of the software
// bookkeeping is charged. The caller's own references are untouched.
func (u *UDP) SendPinned(bufs []*mem.Buf, safe bool) error {
	m := u.Meter
	hdrBuf, err := u.txPrep(0)
	if err != nil {
		return err
	}
	entries := append(u.txEntries[:0],
		nic.SGEntry{Data: hdrBuf.Bytes(), Sim: hdrBuf.SimAddr(), Rel: u, RelArg: hdrBuf})
	for _, b := range bufs {
		e := nic.SGEntry{Data: b.Bytes(), Sim: b.SimAddr(), RelArg: b}
		b.IncRef()
		if safe {
			m.Charge(m.CPU.RegistryLookupCy)
			m.MetadataAccess(b.RefcountSimAddr())
			e.Rel = u
		} else {
			e.Rel = rawRel // uncharged: raw upper bound
		}
		entries = append(entries, e)
	}
	u.txEntries = entries[:0]
	return u.post(entries)
}
