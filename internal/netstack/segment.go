package netstack

import (
	"fmt"

	"cornflakes/internal/core"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/wire"
)

// Segmentation: the paper's prototype sends only single-jumbo-frame
// objects, but §3.2.3 sketches the extension — "the copy and zero-copy
// iterators could take in start and end offsets so they only operate on
// entries within the specified range; the networking stack could call the
// iterators for each message frame until the entire object has been
// written". This file implements that extension.
//
// SendObjectSegmented serializes an object of any size across multiple
// frames. The first fragment carries the object header region and copied
// fields in the DMA buffer; zero-copy fields are posted as scatter-gather
// entries, sliced at frame boundaries with refcounted sub-views — so even
// a multi-megabyte pinned value crosses the wire without a single CPU
// copy. Each fragment is prefixed by a 16-byte fragment header:
//
//	u64 message id | u16 fragment index | u16 fragment count | u32 total object bytes
//
// The receiving stack reassembles fragments (NIC DMA writes them into
// place in a single pinned buffer) and delivers the complete object to the
// normal receive handler, so applications are oblivious to segmentation.
// UDP gives no delivery guarantee: losing any fragment discards the
// message (stale partial messages are evicted LRU-style).
const FragHeaderLen = 16

// fragKey identifies an in-progress reassembly.
type reassembly struct {
	buf      *mem.Buf
	received map[uint16]bool
	count    uint16
	total    uint32
}

// Segmenter extends a UDP endpoint with fragmentation and reassembly.
type Segmenter struct {
	U *UDP
	// MaxInflight bounds concurrent reassemblies; beyond it the oldest is
	// evicted (loss recovery is the application's concern over UDP).
	MaxInflight int

	nextMsgID uint64
	inflight  map[uint64]*reassembly
	order     []uint64

	recv func(payload *mem.Buf)

	// Stats.
	TxFragments, RxFragments uint64
	Reassembled, Evicted     uint64
}

// NewSegmenter wraps a UDP endpoint. It takes over the endpoint's receive
// handler: fragments are reassembled, anything else is passed through.
func NewSegmenter(u *UDP) *Segmenter {
	s := &Segmenter{U: u, MaxInflight: 64, inflight: make(map[uint64]*reassembly)}
	u.SetRecvHandler(s.onPayload)
	return s
}

// SetRecvHandler installs the reassembled-object handler.
func (s *Segmenter) SetRecvHandler(fn func(payload *mem.Buf)) { s.recv = fn }

// fragPayloadBudget is the object bytes carried per fragment.
const fragPayloadBudget = MaxPayload - FragHeaderLen

// SendObjectSegmented serializes obj across as many frames as needed.
// Objects that fit one frame still use the single-fragment format so the
// receiver path is uniform.
func (s *Segmenter) SendObjectSegmented(obj core.Obj) error {
	m := s.U.Meter
	l := obj.Layout()
	total := l.ObjectLen()
	count := (total + fragPayloadBudget - 1) / fragPayloadBudget
	if count == 0 {
		count = 1
	}
	if count > 0xFFFF {
		return fmt.Errorf("netstack: object of %d bytes needs %d fragments (max 65535)", total, count)
	}
	msgID := s.nextMsgID
	s.nextMsgID++

	// Serialize the header region + copied fields once, into a pinned
	// staging buffer; fragment 0 (and possibly more) carry slices of it.
	front, err := s.U.Alloc.TryAlloc(l.HeaderLen + l.CopyLen)
	if err != nil {
		s.U.TxNoMem++
		return err
	}
	m.Charge(m.CPU.DMABufAllocCy)
	obj.WriteHeader(front.Bytes())
	m.Charge(float64(l.Fields)*m.CPU.PerFieldCy + float64(l.Elems)*2)
	m.Access(front.SimAddr(), l.HeaderLen)
	cur := l.HeaderLen
	obj.IterateCopyEntries(func(data []byte, sim uint64) {
		m.Copy(sim, front.SimAddr()+uint64(cur), len(data))
		copy(front.Bytes()[cur:], data)
		cur += len(data)
	})

	// The object is the concatenation of `front` and the zero-copy
	// buffers; walk it emitting fragments.
	type piece struct{ buf *mem.Buf }
	pieces := []piece{{front}}
	obj.IterateZCEntries(func(b *mem.Buf) { pieces = append(pieces, piece{b}) })

	pieceIdx, pieceOff := 0, 0
	var firstErr error
	for frag := 0; frag < count; frag++ {
		budget := fragPayloadBudget
		if rem := total - frag*fragPayloadBudget; rem < budget {
			budget = rem
		}
		// Fragment header + any copied slice of `front` share the first
		// entry; zero-copy pieces get their own (sliced) entries.
		head, err := s.U.txPrep(FragHeaderLen)
		if err != nil {
			// Later fragments of this message cannot be sent either; the
			// receiver's reassembly eviction reclaims the partial message.
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		fh := head.Bytes()[PacketHeaderLen:]
		wire.PutU64(fh, msgID)
		wire.PutU32(fh[8:], uint32(frag)|uint32(count)<<16)
		wire.PutU32(fh[12:], uint32(total))
		m.Access(head.SimAddr()+PacketHeaderLen, FragHeaderLen)

		entries := []nic.SGEntry{{
			Data: head.Bytes(), Sim: head.SimAddr(), Rel: s.U, RelArg: head,
		}}
		for budget > 0 {
			p := pieces[pieceIdx].buf
			n := p.Len() - pieceOff
			if n > budget {
				n = budget
			}
			// A refcounted sub-view: zero-copy even mid-buffer. The
			// sub-view holds one reference released at DMA completion.
			view := p.SubView(pieceOff, n)
			if pieceIdx > 0 {
				// Zero-copy piece: charge the scatter-gather bookkeeping
				// once per entry posted.
				m.Charge(m.CPU.RegistryLookupCy)
				m.MetadataAccess(p.RefcountSimAddr())
			}
			entries = append(entries, nic.SGEntry{
				Data: view.Bytes(), Sim: view.SimAddr(), Rel: s.U, RelArg: view,
			})
			budget -= n
			pieceOff += n
			if pieceOff == p.Len() {
				pieceIdx++
				pieceOff = 0
			}
		}
		s.TxFragments++
		if err := s.U.post(entries); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	front.DecRef() // fragments hold their own sub-view references
	return firstErr
}

// SendContiguous sends an already-serialized payload as a single-fragment
// message, so a Segmenter endpoint is a drop-in transport (it satisfies
// loadgen.Endpoint): plain requests and segmented responses share the
// fragment framing.
func (s *Segmenter) SendContiguous(payload []byte, sim uint64) error {
	if FragHeaderLen+len(payload) > MaxPayload {
		return &ErrTooLarge{Size: PacketHeaderLen + FragHeaderLen + len(payload)}
	}
	m := s.U.Meter
	msgID := s.nextMsgID
	s.nextMsgID++
	buf, err := s.U.txPrep(FragHeaderLen + len(payload))
	if err != nil {
		return err
	}
	fh := buf.Bytes()[PacketHeaderLen:]
	wire.PutU64(fh, msgID)
	wire.PutU32(fh[8:], 0|1<<16) // fragment 0 of 1
	wire.PutU32(fh[12:], uint32(len(payload)))
	m.Copy(sim, buf.SimAddr()+PacketHeaderLen+FragHeaderLen, len(payload))
	copy(buf.Bytes()[PacketHeaderLen+FragHeaderLen:], payload)
	s.TxFragments++
	s.U.txEntries = append(s.U.txEntries[:0], nic.SGEntry{
		Data: buf.Bytes(), Sim: buf.SimAddr(), Rel: s.U, RelArg: buf,
	})
	return s.U.post(s.U.txEntries)
}

// onPayload reassembles fragments and passes complete objects up.
func (s *Segmenter) onPayload(p *mem.Buf) {
	if p.Len() < FragHeaderLen {
		p.DecRef()
		return
	}
	s.RxFragments++
	fh := p.Bytes()
	msgID := wire.GetU64(fh)
	idxCount := wire.GetU32(fh[8:])
	idx := uint16(idxCount)
	count := uint16(idxCount >> 16)
	total := wire.GetU32(fh[12:])
	if count == 0 || int(idx) >= int(count) || total == 0 ||
		int(total) > int(count)*fragPayloadBudget {
		p.DecRef()
		return // malformed
	}

	r := s.inflight[msgID]
	if r == nil {
		rbuf, err := s.U.Alloc.TryAlloc(int(total))
		if err != nil {
			// No room to start a reassembly: drop the fragment as an RX
			// overrun; the sender's recovery layer retries the message.
			s.U.RxNoMem++
			p.DecRef()
			return
		}
		r = &reassembly{
			buf:      rbuf,
			received: make(map[uint16]bool),
			count:    count,
			total:    total,
		}
		s.inflight[msgID] = r
		s.order = append(s.order, msgID)
		s.evictIfNeeded()
	}
	if r.count != count || r.total != total || r.received[idx] {
		p.DecRef()
		return // inconsistent or duplicate
	}
	off := int(idx) * fragPayloadBudget
	frag := p.Bytes()[FragHeaderLen:]
	if off+len(frag) > int(total) {
		p.DecRef()
		return
	}
	// The NIC DMA-writes the fragment into place: no CPU charge.
	copy(r.buf.Bytes()[off:], frag)
	r.received[idx] = true
	p.DecRef()

	if len(r.received) == int(r.count) {
		delete(s.inflight, msgID)
		s.removeOrder(msgID)
		s.Reassembled++
		if s.recv != nil {
			s.recv(r.buf)
		} else {
			r.buf.DecRef()
		}
	}
}

func (s *Segmenter) evictIfNeeded() {
	for len(s.inflight) > s.MaxInflight && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		if r, ok := s.inflight[victim]; ok {
			r.buf.DecRef()
			delete(s.inflight, victim)
			s.Evicted++
		}
	}
}

func (s *Segmenter) removeOrder(id uint64) {
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}
