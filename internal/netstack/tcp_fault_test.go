package netstack

import (
	"errors"
	"testing"

	"cornflakes/internal/core"
	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
	"cornflakes/internal/wire"
)

// Regression tests for the retransmission-path bugs found under fault
// injection. Each reproduces its pre-fix failure deterministically: on the
// seed code, TestTCPRTORearmAfterFailedRetransmit stalls (segment never
// delivered), TestTCPAckSendErrorReleasesBuffer leaks a pinned slot, and
// TestTCPEmptyDataSegmentDropped panics in the zero-byte allocator call.

var errTxRingFull = errors.New("tx ring full")

// failNextSends returns an InjectSendErr hook refusing the next n posts.
func failNextSends(n int) func() error {
	return func() error {
		if n > 0 {
			n--
			return errTxRingFull
		}
		return nil
	}
}

// TestTCPRTORearmAfterFailedRetransmit: the first data frame is lost on
// the wire and the first retransmission attempt is refused by the NIC
// (TX ring full). Pre-fix, onRTO only re-armed the timer when transmit
// succeeded, so the connection stalled forever with the segment unacked;
// post-fix the next timeout retries and the transfer completes.
func TestTCPRTORearmAfterFailedRetransmit(t *testing.T) {
	eng, ca, cb, na, _, pa := tcpPair()
	delivered := 0
	cb.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })

	drops := 0
	pa.InjectLoss = func(data []byte) bool {
		if drops == 0 && len(data) > TCPHeaderLen {
			drops++
			return true
		}
		return false
	}

	msg := core.NewMessage(testSchema(), na.ctx)
	msg.SetInt(0, 42)
	if err := ca.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	msg.Release()
	// The first transmission has been posted (and will be lost); now make
	// the NIC refuse the next post, which is the first RTO retransmit.
	pa.InjectSendErr = failNextSends(1)

	eng.Run()

	if ca.RtxSendErrors != 1 {
		t.Errorf("RtxSendErrors = %d, want 1", ca.RtxSendErrors)
	}
	if pa.RefusedSends != 1 {
		t.Errorf("port RefusedSends = %d, want 1", pa.RefusedSends)
	}
	if ca.Retransmits < 2 {
		t.Errorf("Retransmits = %d, want >= 2 (refused attempt plus the retry)", ca.Retransmits)
	}
	// The pre-fix stall: engine drains with the segment still in flight
	// and nothing delivered.
	if ca.Unacked() != 0 {
		t.Fatalf("connection stalled: %d segments unacked after drain", ca.Unacked())
	}
	if delivered != 1 {
		t.Fatalf("delivered %d messages, want 1", delivered)
	}
}

// TestTCPAckSendErrorReleasesBuffer: the receiver's first ACK post is
// refused by the NIC. Pre-fix the ACK buffer's reference was never
// dropped — one pinned slot leaked per failed ACK; post-fix the slot is
// released and the error surfaces in AckSendErrors.
func TestTCPAckSendErrorReleasesBuffer(t *testing.T) {
	eng, ca, cb, na, nb, _ := tcpPair()
	delivered := 0
	cb.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })

	// Refuse the receiver's first post: that is the ACK for the first data
	// frame (the receiver sends nothing else).
	cb.Port.InjectSendErr = failNextSends(1)

	msg := core.NewMessage(testSchema(), na.ctx)
	msg.SetInt(0, 7)
	if err := ca.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	msg.Release()
	eng.Run()

	if cb.AckSendErrors != 1 {
		t.Errorf("AckSendErrors = %d, want 1", cb.AckSendErrors)
	}
	if delivered != 1 {
		t.Errorf("delivered %d, want 1", delivered)
	}
	// The lost ACK forces a retransmit, whose duplicate is re-acked.
	if ca.Retransmits == 0 {
		t.Error("sender never retransmitted after the ACK was refused")
	}
	if got := nb.alloc.Stats().SlotsInUse; got != 0 {
		t.Errorf("receiver pinned slots in use after drain = %d, want 0 (ACK buffer leak)", got)
	}
	if got := na.alloc.Stats().SlotsInUse; got != 0 {
		t.Errorf("sender pinned slots in use after drain = %d, want 0", got)
	}
}

// TestTCPRTOBackoffCapped: under a long loss burst the backoff must stop
// doubling at maxRTO, so recovery after the burst is prompt instead of
// seconds of virtual time out.
func TestTCPRTOBackoffCapped(t *testing.T) {
	eng, ca, cb, na, _, pa := tcpPair()
	cb.SetRecvHandler(func(p *mem.Buf) { p.DecRef() })

	// Drop the first 8 data frames: initial send plus 7 retransmits.
	drops := 0
	pa.InjectLoss = func(data []byte) bool {
		if drops < 8 && len(data) > TCPHeaderLen {
			drops++
			return true
		}
		return false
	}
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.SetInt(0, 9)
	if err := ca.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	msg.Release()
	start := eng.Now()
	eng.Run()

	if ca.rto > maxRTO {
		t.Errorf("rto = %v, exceeds cap %v", ca.rto, maxRTO)
	}
	if ca.Unacked() != 0 {
		t.Fatal("segment never recovered after burst")
	}
	// Uncapped doubling would need 100us * (2^9 - 1) ≈ 51 ms to reach the
	// 8th retransmit; capped backoff recovers within a few maxRTO periods.
	elapsed := eng.Now() - start
	if elapsed > 20*sim.Millisecond {
		t.Errorf("recovery took %v — backoff looks uncapped", elapsed)
	}
	if ca.Retransmits < 8 {
		t.Errorf("Retransmits = %d, want >= 8", ca.Retransmits)
	}
}

// TestTCPEmptyDataSegmentDropped: a data-flagged segment with a zero-byte
// payload must be counted and dropped, not delivered. Pre-fix this path
// called Alloc(0), which panics.
func TestTCPEmptyDataSegmentDropped(t *testing.T) {
	eng, _, cb, _, _, _ := tcpPair()
	delivered := 0
	cb.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })

	// Craft a header-only frame carrying the data flag at exactly the
	// receiver's expected sequence number.
	frame := make([]byte, TCPHeaderLen)
	frame[0] = 0x42
	wire.PutU32(frame[tcpOffSeq:], cb.recvSeq)
	wire.PutU32(frame[tcpOffAck:], cb.sendSeq)
	frame[tcpOffFlags] = flagData | flagAck

	before := cb.recvSeq
	cb.onFrame(&nic.Frame{Data: frame})
	eng.Run()

	if cb.EmptyDataSegs != 1 {
		t.Errorf("EmptyDataSegs = %d, want 1", cb.EmptyDataSegs)
	}
	if delivered != 0 {
		t.Errorf("empty segment delivered %d payloads, want 0", delivered)
	}
	if cb.recvSeq != before {
		t.Errorf("recvSeq advanced by empty segment: %d -> %d", before, cb.recvSeq)
	}
}

// TestTCPSendObjectRefusedRollsBack: a refused first transmission must
// roll the segment back out of the send queue and release every retention
// reference, leaving the connection consistent for a later retry.
func TestTCPSendObjectRefusedRollsBack(t *testing.T) {
	eng, ca, cb, na, _, pa := tcpPair()
	delivered := 0
	cb.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })

	pa.InjectSendErr = failNextSends(1)

	val := na.alloc.Alloc(1024)
	msg := core.NewMessage(testSchema(), na.ctx)
	msg.AppendBytes(2, na.ctx.NewCFPtr(val.Bytes()))
	if err := ca.SendObject(msg); err == nil {
		t.Fatal("expected refused send to surface an error")
	}
	if ca.Unacked() != 0 {
		t.Fatalf("rolled-back segment still queued: %d", ca.Unacked())
	}
	if val.Refcount() != 2 { // app handle + message CFPtr
		t.Fatalf("refcount = %d after rollback, want 2", val.Refcount())
	}

	// Retry succeeds and the sequence space was restored.
	if err := ca.SendObject(msg); err != nil {
		t.Fatal(err)
	}
	msg.Release()
	eng.Run()
	if delivered != 1 || ca.Unacked() != 0 {
		t.Fatalf("retry after rollback: delivered=%d unacked=%d", delivered, ca.Unacked())
	}
	if val.Refcount() != 1 {
		t.Errorf("refcount = %d after ack, want 1", val.Refcount())
	}
}
