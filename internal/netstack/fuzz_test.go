package netstack

// Fuzz target for the UDP RX path: arbitrary wire bytes must never panic
// the stack, runt frames must be dropped before the handler, and no code
// path may leak a pinned buffer reference. Run long with:
//
//	go test -fuzz FuzzUDPOnFrame -fuzztime 30s ./internal/netstack

import (
	"bytes"
	"testing"

	"cornflakes/internal/mem"
	"cornflakes/internal/nic"
	"cornflakes/internal/sim"
)

func FuzzUDPOnFrame(f *testing.F) {
	f.Add([]byte{})                                  // empty frame
	f.Add([]byte{0x42})                              // single byte
	f.Add(make([]byte, PacketHeaderLen-1))           // one short of the header
	f.Add(make([]byte, PacketHeaderLen))             // exactly the header: still runt
	f.Add(make([]byte, PacketHeaderLen+1))           // minimal deliverable frame
	f.Add(bytes.Repeat([]byte{0xEE}, JumboFrame))    // jumbo shed-marker bytes
	f.Add(append(make([]byte, PacketHeaderLen), 'x', 'y', 'z'))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, batched := range []bool{false, true} {
			eng := sim.NewEngine()
			pa, _ := nic.Link(eng, nic.MellanoxCX6(), nic.MellanoxCX6(), 0)
			n := newNode()
			u := NewUDP(eng, pa, n.alloc, n.meter)
			u.RxBatched = batched
			var got []byte
			delivered := 0
			u.SetRecvHandler(func(p *mem.Buf) {
				delivered++
				got = append([]byte(nil), p.Bytes()...)
				p.DecRef()
			})
			u.onFrame(&nic.Frame{Data: data})
			if len(data) <= PacketHeaderLen {
				if delivered != 0 {
					t.Fatalf("runt %d-byte frame delivered", len(data))
				}
			} else {
				if delivered != 1 {
					t.Fatalf("%d-byte frame not delivered", len(data))
				}
				if !bytes.Equal(got, data[PacketHeaderLen:]) {
					t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(data)-PacketHeaderLen)
				}
			}
			if st := n.alloc.Stats(); st.SlotsInUse != 0 {
				t.Fatalf("slots in use = %d after frame (leak)", st.SlotsInUse)
			}
		}
	})
}

// FuzzUDPOnFrameNoMem drives the same path with a zero-capacity pool so the
// rx-nomem branch is exercised: drops must be counted, reported through
// OnDrop, and leak-free.
func FuzzUDPOnFrameNoMem(f *testing.F) {
	f.Add(make([]byte, PacketHeaderLen+100))
	f.Add(make([]byte, JumboFrame))
	f.Fuzz(func(t *testing.T, data []byte) {
		eng := sim.NewEngine()
		pa, _ := nic.Link(eng, nic.MellanoxCX6(), nic.MellanoxCX6(), 0)
		n := newNode()
		n.alloc.SetCap(1)                // a single slot…
		hold, err := n.alloc.TryAlloc(1) // …held here, so the RX alloc must fail
		if err != nil {
			t.Fatal(err)
		}
		defer hold.DecRef()
		u := NewUDP(eng, pa, n.alloc, n.meter)
		dropped := ""
		u.OnDrop = func(_ []byte, reason string) { dropped = reason }
		delivered := 0
		u.SetRecvHandler(func(p *mem.Buf) { delivered++; p.DecRef() })
		u.onFrame(&nic.Frame{Data: data})
		if len(data) > PacketHeaderLen {
			if delivered != 0 {
				t.Fatal("frame delivered despite exhausted pool")
			}
			if u.RxNoMem != 1 || dropped != "rx-nomem" {
				t.Fatalf("RxNoMem=%d reason=%q, want 1/rx-nomem", u.RxNoMem, dropped)
			}
		} else if delivered != 0 {
			t.Fatal("runt delivered")
		}
	})
}
